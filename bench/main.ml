(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section.

   - Table 1's time column is a *timing* result: one Bechamel benchmark
     per domain times semantic mapping generation over the domain's
     benchmark cases (group "table1-time"); the RIC-based baseline gets
     a benchmark per domain too, for the "comparable, both < 1 s" claim
     (group "baseline-time").
   - Figures 6 and 7 are *quality* results: the harness recomputes and
     prints the per-domain precision/recall series alongside.

   Output: the Table 1 / Figure 6 / Figure 7 reproductions, followed by
   the Bechamel timings (ns per full domain run). *)

open Bechamel
open Toolkit

let scenarios = lazy (Smg_eval.Datasets.all ())

let semantic_run (scen : Smg_eval.Scenario.t) () =
  List.iter
    (fun case ->
      ignore
        (Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
           case))
    scen.Smg_eval.Scenario.cases

let ric_run (scen : Smg_eval.Scenario.t) () =
  List.iter
    (fun case ->
      ignore
        (Smg_eval.Experiments.run_method Smg_eval.Experiments.Ric_based scen
           case))
    scen.Smg_eval.Scenario.cases

(* chase-based data exchange at increasing source sizes: discover the
   books M5 mapping once, then execute it over generated instances *)
let exchange_fixture =
  lazy
    (let scen =
       List.find
         (fun s -> s.Smg_eval.Scenario.scen_name = "DBLP")
         (Lazy.force scenarios)
     in
     let case = List.hd scen.Smg_eval.Scenario.cases in
     let m =
       List.hd
         (Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
            case)
     in
     (scen, m))

let exchange_sizes = [ 2; 8; 32 ]

(* generated source instances are cached per size so the timed closures
   measure the exchange itself — populating the source used to dominate
   both the chase and the engine rows at the larger sizes *)
let exchange_instances : (int, Smg_relational.Instance.t) Hashtbl.t =
  Hashtbl.create 8

let exchange_instance rows =
  match Hashtbl.find_opt exchange_instances rows with
  | Some inst -> inst
  | None ->
      let scen, _ = Lazy.force exchange_fixture in
      let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
      let inst =
        Smg_eval.Witness.populate ~rows_per_table:rows ~seed:1 source
      in
      Hashtbl.replace exchange_instances rows inst;
      inst

let exchange_run rows () =
  let scen, m = Lazy.force exchange_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  let inst = exchange_instance rows in
  match
    Smg_cq.Chase.exchange ~source ~target
      ~mappings:[ Smg_cq.Mapping.to_tgd m ]
      inst
  with
  | Smg_cq.Chase.Saturated _ | Smg_cq.Chase.Bounded _ -> ()
  | Smg_cq.Chase.Failed msg -> failwith msg

(* the same mapping and sizes through the plan-based engine *)
let exchange_engine_run rows () =
  let scen, m = Lazy.force exchange_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  let inst = exchange_instance rows in
  match
    Smg_exchange.Engine.run ~laconic:true ~source ~target
      ~mappings:[ Smg_cq.Mapping.to_tgd m ]
      inst
  with
  | Ok _ -> ()
  | Error msg -> failwith msg

(* composition: the DBLP round-trip chain (discovered mapping followed
   by its quasi-inverse into a primed source copy) run both ways —
   hop by hop, and in one shot through the composed mapping. The
   composed clause set is built once in the fixture; only execution is
   timed, so the pair measures the materialization saving of
   composing. *)
let compose_fixture =
  lazy
    (let scen, m = Lazy.force exchange_fixture in
     let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
     let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
     let m12 = [ Smg_cq.Mapping.to_tgd m ] in
     let primed = Smg_compose.Invert.prime_schema ~suffix:"_rt" source in
     let hops =
       [
         {
           Smg_compose.Pipeline.h_source = source;
           h_target = target;
           h_tgds = m12;
         };
         {
           Smg_compose.Pipeline.h_source = target;
           h_target = primed;
           h_tgds = Smg_compose.Invert.quasi_inverse ~prime:"_rt" m12;
         };
       ]
     in
     let r = Smg_compose.Pipeline.compose_chain hops in
     (source, primed, hops, r.Smg_compose.Compose.c_exec))

let compose_sequential_run rows () =
  let source, _, hops, _ = Lazy.force compose_fixture in
  let inst = Smg_eval.Witness.populate ~rows_per_table:rows ~seed:1 source in
  match Smg_compose.Pipeline.sequential hops inst with
  | Ok _ -> ()
  | Error _ -> failwith "compose bench: sequential leg failed"

let compose_one_shot_run rows () =
  let source, primed, _, exec = Lazy.force compose_fixture in
  let inst = Smg_eval.Witness.populate ~rows_per_table:rows ~seed:1 source in
  match Smg_compose.Pipeline.one_shot ~source ~target:primed ~exec inst with
  | Ok _ -> ()
  | Error _ -> failwith "compose bench: one-shot leg failed"

(* verification-layer latency on the largest scenario (Mondial):
   chase-based mapping-equivalence checks across the two methods'
   candidates, and core computation over a chased exchange result *)
let verify_fixture =
  lazy
    (let scen =
       List.find
         (fun s -> s.Smg_eval.Scenario.scen_name = "Mondial")
         (Lazy.force scenarios)
     in
     let case = List.hd scen.Smg_eval.Scenario.cases in
     let sem =
       Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen case
     in
     let ric =
       Smg_eval.Experiments.run_method Smg_eval.Experiments.Ric_based scen case
     in
     (scen, sem, ric))

let hom_check_run () =
  let scen, sem, ric = Lazy.force verify_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          ignore (Smg_verify.Mapverify.equivalent ~source ~target s r))
        sem)
    ric

let core_fixture =
  lazy
    (let scen, sem, ric = Lazy.force verify_fixture in
     let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
     let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
     let tgds = List.map Smg_cq.Mapping.to_tgd (sem @ ric) in
     match
       Smg_verify.Mapverify.chase_canonical ~source ~target ~by:tgds
         (List.hd tgds)
     with
     | Some out -> out
     | None -> failwith "mondial canonical chase failed")

let core_run () = ignore (Smg_verify.Icore.core (Lazy.force core_fixture))

(* budget-check overhead: the same Mondial semantic discovery with and
   without a (never-exhausted) budget threaded through the Steiner DP
   and path search. The guarded run exercises every fuel check but
   never degrades, so the delta is pure bookkeeping cost. *)
let robust_fixture =
  lazy
    (List.find
       (fun s -> s.Smg_eval.Scenario.scen_name = "Mondial")
       (Lazy.force scenarios))

let robust_unguarded_run () =
  let scen = Lazy.force robust_fixture in
  List.iter
    (fun case ->
      ignore
        (Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
           case))
    scen.Smg_eval.Scenario.cases

let robust_guarded_run () =
  let scen = Lazy.force robust_fixture in
  List.iter
    (fun case ->
      let budget = Smg_robust.Budget.create ~fuel:max_int () in
      ignore (Smg_eval.Experiments.run_semantic_bounded ~budget scen case))
    scen.Smg_eval.Scenario.cases

(* pooled vs sequential runs of the same discovery and exchange
   workloads. The pool is created once and kept for the whole process —
   Bechamel re-runs the staged closures many times and per-iteration
   pool setup would dominate. The pooled entries produce identical
   results (the pool's determinism guarantee), so the pairs measure
   dispatch overhead on a single core and speedup on a multicore
   host. *)
let parallel_pool =
  lazy
    (Smg_parallel.Pool.create ~domains:(Smg_parallel.Pool.default_domains ()))

let parallel_discover_run pool () =
  let scen = Lazy.force robust_fixture in
  let pool = if pool then Some (Lazy.force parallel_pool) else None in
  List.iter
    (fun case ->
      ignore (Smg_eval.Experiments.run_semantic_bounded ?pool scen case))
    scen.Smg_eval.Scenario.cases

(* the witness instance is part of the fixture, not the workload:
   populating it inside the staged closure would bill source-data
   synthesis to the engine. Built once per rows count and reused —
   the engine never mutates its source instance. *)
let parallel_engine_inst =
  let tbl = Hashtbl.create 4 in
  fun rows ->
    match Hashtbl.find_opt tbl rows with
    | Some inst -> inst
    | None ->
        let scen, _ = Lazy.force exchange_fixture in
        let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
        let inst =
          Smg_eval.Witness.populate ~rows_per_table:rows ~seed:1 source
        in
        Hashtbl.add tbl rows inst;
        inst

let parallel_engine_run pool rows () =
  let scen, m = Lazy.force exchange_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  let inst = parallel_engine_inst rows in
  let pool = if pool then Some (Lazy.force parallel_pool) else None in
  match
    Smg_exchange.Engine.run ?pool ~source ~target
      ~mappings:[ Smg_cq.Mapping.to_tgd m ]
      inst
  with
  | Ok _ -> ()
  | Error msg -> failwith msg

(* the shard count each row actually runs with, resolved exactly like
   the engine resolves it (SMG_SHARDS > pool size > 1), so the
   recorded row names carry the partition configuration *)
let bench_shards ~pooled =
  match Option.bind (Sys.getenv_opt "SMG_SHARDS") int_of_string_opt with
  | Some s when s > 0 -> s
  | _ -> if pooled then Smg_parallel.Pool.default_domains () else 1

(* generated-scenario workloads (lib/generate): parameter vector →
   scenario synthesis, seeded witness population at 10k tuples, and
   per-case discovery over the frozen mid-size shape *)
let generate_params =
  lazy
    (Smg_generate.Params.clamp
       {
         Smg_generate.Params.seed = 7;
         isa_depth = 2;
         n_roots = 3;
         reify = 2;
         partof = 1;
         attrs_per_class = 2;
         corr_density = 0.8;
         scale = 10_000;
       })

let generate_scenario =
  lazy (Smg_generate.Gen.build (Lazy.force generate_params))

let generate_build_run () =
  ignore (Smg_generate.Gen.build (Lazy.force generate_params))

let generate_populate_run () =
  ignore (Smg_generate.Gen.source_instance (Lazy.force generate_scenario))

let generate_discover_run () =
  let g = Lazy.force generate_scenario in
  List.iter
    (fun (_, corrs) ->
      ignore
        (Smg_core.Discover.discover ~source:g.Smg_generate.Gen.g_source
           ~target:g.Smg_generate.Gen.g_target ~corrs ()))
    g.Smg_generate.Gen.g_cases

let ablation_run (v : Smg_eval.Ablation.variant) () =
  List.iter
    (fun (scen : Smg_eval.Scenario.t) ->
      List.iter
        (fun case ->
          ignore
            (Smg_core.Discover.discover ~options:v.Smg_eval.Ablation.v_options
               ~source:scen.Smg_eval.Scenario.source
               ~target:scen.Smg_eval.Scenario.target
               ~corrs:case.Smg_eval.Scenario.corrs ()))
        scen.Smg_eval.Scenario.cases)
    (Lazy.force scenarios)

let tests () =
  let scens = Lazy.force scenarios in
  let sem =
    Test.make_grouped ~name:"table1-time"
      (List.map
         (fun s ->
           Test.make
             ~name:s.Smg_eval.Scenario.scen_name
             (Staged.stage (semantic_run s)))
         scens)
  in
  let ric =
    Test.make_grouped ~name:"baseline-time"
      (List.map
         (fun s ->
           Test.make
             ~name:s.Smg_eval.Scenario.scen_name
             (Staged.stage (ric_run s)))
         scens)
  in
  let exchange =
    Test.make_grouped ~name:"exchange-scale"
      (List.map
         (fun rows ->
           Test.make
             ~name:(Printf.sprintf "rows=%d" rows)
             (Staged.stage (exchange_run rows)))
         exchange_sizes)
  in
  let exchange_engine =
    Test.make_grouped ~name:"exchange-engine"
      (List.map
         (fun rows ->
           Test.make
             ~name:(Printf.sprintf "rows=%d" rows)
             (Staged.stage (exchange_engine_run rows)))
         exchange_sizes)
  in
  let compose =
    Test.make_grouped ~name:"compose"
      (List.concat_map
         (fun rows ->
           [
             Test.make
               ~name:(Printf.sprintf "sequential/rows=%d" rows)
               (Staged.stage (compose_sequential_run rows));
             Test.make
               ~name:(Printf.sprintf "composed/rows=%d" rows)
               (Staged.stage (compose_one_shot_run rows));
           ])
         exchange_sizes)
  in
  let ablation =
    Test.make_grouped ~name:"ablation-time"
      (List.map
         (fun (v : Smg_eval.Ablation.variant) ->
           Test.make ~name:v.Smg_eval.Ablation.v_name
             (Staged.stage (ablation_run v)))
         Smg_eval.Ablation.variants)
  in
  let verify =
    Test.make_grouped ~name:"verify"
      [
        Test.make ~name:"mondial-hom-equivalence" (Staged.stage hom_check_run);
        Test.make ~name:"mondial-core" (Staged.stage core_run);
      ]
  in
  let robust =
    Test.make_grouped ~name:"robust"
      [
        Test.make ~name:"mondial-unguarded"
          (Staged.stage robust_unguarded_run);
        Test.make ~name:"mondial-guarded" (Staged.stage robust_guarded_run);
      ]
  in
  let generate =
    Test.make_grouped ~name:"generate"
      [
        Test.make ~name:"build/mid" (Staged.stage generate_build_run);
        Test.make ~name:"populate/10k" (Staged.stage generate_populate_run);
        Test.make ~name:"discover/cases" (Staged.stage generate_discover_run);
      ]
  in
  let parallel =
    let domains = Smg_parallel.Pool.default_domains () in
    let name fmt = Printf.sprintf fmt in
    Test.make_grouped ~name:"parallel"
      [
        Test.make
          ~name:(name "mondial-discover-seq/domains=1/shards=%d"
                   (bench_shards ~pooled:false))
          (Staged.stage (parallel_discover_run false));
        Test.make
          ~name:(name "mondial-discover-pool/domains=%d/shards=%d" domains
                   (bench_shards ~pooled:true))
          (Staged.stage (parallel_discover_run true));
        Test.make
          ~name:(name "dblp-engine-seq/rows=32/domains=1/shards=%d"
                   (bench_shards ~pooled:false))
          (Staged.stage (parallel_engine_run false 32));
        Test.make
          ~name:(name "dblp-engine-pool/rows=32/domains=%d/shards=%d" domains
                   (bench_shards ~pooled:true))
          (Staged.stage (parallel_engine_run true 32));
      ]
  in
  Test.make_grouped ~name:"smg"
    [
      sem;
      ric;
      exchange;
      exchange_engine;
      compose;
      ablation;
      verify;
      robust;
      generate;
      parallel;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare

(* --json: the exchange measurements as BENCH_exchange.json rows. The
   Bechamel estimate gives ns/run; source and output cardinalities come
   from one untimed execution per size. *)
let exchange_meta () =
  let scen, m = Lazy.force exchange_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  let mappings = [ Smg_cq.Mapping.to_tgd m ] in
  List.map
    (fun rows ->
      let inst =
        Smg_eval.Witness.populate ~rows_per_table:rows ~seed:1 source
      in
      let src_n = Smg_relational.Instance.total_tuples inst in
      let chase_out =
        match Smg_exchange.Naive.exchange ~source ~target ~mappings inst with
        | Smg_cq.Chase.Saturated out | Smg_cq.Chase.Bounded out ->
            Smg_relational.Instance.total_tuples out
        | Smg_cq.Chase.Failed msg -> failwith msg
      in
      let engine_out =
        match
          Smg_exchange.Engine.run ~laconic:true ~source ~target ~mappings inst
        with
        | Ok rep ->
            Smg_relational.Instance.total_tuples rep.Smg_exchange.Engine.r_target
        | Error msg -> failwith msg
      in
      (rows, src_n, chase_out, engine_out))
    exchange_sizes

let bench_json results =
  let meta = exchange_meta () in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let rows =
    List.filter_map
      (fun (name, ols) ->
        match Bechamel.Analyze.OLS.estimates ols with
        | Some [ est ] when contains name "exchange" ->
            let engine = contains name "exchange-engine" in
            List.find_map
              (fun (rows, src_n, chase_out, engine_out) ->
                if contains name (Printf.sprintf "rows=%d" rows) then
                  let out = if engine then engine_out else chase_out in
                  Some
                    {
                      Smg_exchange.Obs.br_name =
                        (if engine then "bench-engine/dblp"
                         else "bench-chase/dblp");
                      br_size = src_n;
                      br_ns_per_run = est;
                      br_tuples_per_s = float_of_int out /. (est /. 1e9);
                    }
                else None)
              meta
        | _ -> None)
      results
  in
  Smg_exchange.Obs.write_bench_json ~path:"BENCH_exchange.json" rows;
  Fmt.pr "@.wrote BENCH_exchange.json (%d rows)@." (List.length rows)

(* --json also records the budget-check overhead pair so the <2%
   Steiner-DP fuel-check claim in DESIGN.md stays measurable. [size] is
   the number of Mondial benchmark cases per run; the throughput field
   is cases per second. *)
let robust_json results =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let estimate needle =
    List.find_map
      (fun (name, ols) ->
        if contains name "robust" && contains name needle then
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Some est
          | Some _ | None -> None
        else None)
      results
  in
  let cases =
    List.length (Lazy.force robust_fixture).Smg_eval.Scenario.cases
  in
  let row name est =
    {
      Smg_exchange.Obs.br_name = name;
      br_size = cases;
      br_ns_per_run = est;
      br_tuples_per_s = float_of_int cases /. (est /. 1e9);
    }
  in
  match (estimate "mondial-unguarded", estimate "mondial-guarded") with
  | Some plain, Some guarded ->
      let rows =
        [
          row "bench-discover-unguarded/mondial" plain;
          row "bench-discover-guarded/mondial" guarded;
        ]
      in
      Smg_exchange.Obs.write_bench_json ~path:"BENCH_robust.json" rows;
      Fmt.pr "wrote BENCH_robust.json (%d rows); budget overhead %+.2f%%@."
        (List.length rows)
        ((guarded -. plain) /. plain *. 100.)
  | _ -> Fmt.pr "robust bench estimates missing; BENCH_robust.json skipped@."

let () =
  let json = Array.exists (fun a -> a = "--json") Sys.argv in
  (* quality series: Figures 6 and 7, plus the Table 1 characteristics *)
  let results = Smg_eval.Experiments.run_all (Lazy.force scenarios) in
  Fmt.pr "%a@.@." Smg_eval.Experiments.pp_table1 results;
  Fmt.pr "%a@.@." Smg_eval.Experiments.pp_fig6 results;
  Fmt.pr "%a@.@." Smg_eval.Experiments.pp_fig7 results;
  (* timing: the Table 1 "time" column, measured properly *)
  Fmt.pr "Bechamel timings (full domain runs):@.";
  let timed = benchmark () in
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "  %-28s %12.0f ns/run@." name est
      | Some _ | None -> Fmt.pr "  %-28s (no estimate)@." name)
    timed;
  if json then (
    bench_json timed;
    robust_json timed)
