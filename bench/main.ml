(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section.

   - Table 1's time column is a *timing* result: one Bechamel benchmark
     per domain times semantic mapping generation over the domain's
     benchmark cases (group "table1-time"); the RIC-based baseline gets
     a benchmark per domain too, for the "comparable, both < 1 s" claim
     (group "baseline-time").
   - Figures 6 and 7 are *quality* results: the harness recomputes and
     prints the per-domain precision/recall series alongside.

   Output: the Table 1 / Figure 6 / Figure 7 reproductions, followed by
   the Bechamel timings (ns per full domain run). *)

open Bechamel
open Toolkit

let scenarios = lazy (Smg_eval.Datasets.all ())

let semantic_run (scen : Smg_eval.Scenario.t) () =
  List.iter
    (fun case ->
      ignore
        (Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
           case))
    scen.Smg_eval.Scenario.cases

let ric_run (scen : Smg_eval.Scenario.t) () =
  List.iter
    (fun case ->
      ignore
        (Smg_eval.Experiments.run_method Smg_eval.Experiments.Ric_based scen
           case))
    scen.Smg_eval.Scenario.cases

(* chase-based data exchange at increasing source sizes: discover the
   books M5 mapping once, then execute it over generated instances *)
let exchange_fixture =
  lazy
    (let scen =
       List.find
         (fun s -> s.Smg_eval.Scenario.scen_name = "DBLP")
         (Lazy.force scenarios)
     in
     let case = List.hd scen.Smg_eval.Scenario.cases in
     let m =
       List.hd
         (Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
            case)
     in
     (scen, m))

let exchange_run rows () =
  let scen, m = Lazy.force exchange_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  let inst = Smg_eval.Witness.populate ~rows_per_table:rows ~seed:1 source in
  match
    Smg_cq.Chase.exchange ~source ~target
      ~mappings:[ Smg_cq.Mapping.to_tgd m ]
      inst
  with
  | Smg_cq.Chase.Saturated _ | Smg_cq.Chase.Bounded _ -> ()
  | Smg_cq.Chase.Failed msg -> failwith msg

(* verification-layer latency on the largest scenario (Mondial):
   chase-based mapping-equivalence checks across the two methods'
   candidates, and core computation over a chased exchange result *)
let verify_fixture =
  lazy
    (let scen =
       List.find
         (fun s -> s.Smg_eval.Scenario.scen_name = "Mondial")
         (Lazy.force scenarios)
     in
     let case = List.hd scen.Smg_eval.Scenario.cases in
     let sem =
       Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen case
     in
     let ric =
       Smg_eval.Experiments.run_method Smg_eval.Experiments.Ric_based scen case
     in
     (scen, sem, ric))

let hom_check_run () =
  let scen, sem, ric = Lazy.force verify_fixture in
  let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          ignore (Smg_verify.Mapverify.equivalent ~source ~target s r))
        sem)
    ric

let core_fixture =
  lazy
    (let scen, sem, ric = Lazy.force verify_fixture in
     let source = scen.Smg_eval.Scenario.source.Smg_core.Discover.schema in
     let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
     let tgds = List.map Smg_cq.Mapping.to_tgd (sem @ ric) in
     match
       Smg_verify.Mapverify.chase_canonical ~source ~target ~by:tgds
         (List.hd tgds)
     with
     | Some out -> out
     | None -> failwith "mondial canonical chase failed")

let core_run () = ignore (Smg_verify.Icore.core (Lazy.force core_fixture))

let ablation_run (v : Smg_eval.Ablation.variant) () =
  List.iter
    (fun (scen : Smg_eval.Scenario.t) ->
      List.iter
        (fun case ->
          ignore
            (Smg_core.Discover.discover ~options:v.Smg_eval.Ablation.v_options
               ~source:scen.Smg_eval.Scenario.source
               ~target:scen.Smg_eval.Scenario.target
               ~corrs:case.Smg_eval.Scenario.corrs ()))
        scen.Smg_eval.Scenario.cases)
    (Lazy.force scenarios)

let tests () =
  let scens = Lazy.force scenarios in
  let sem =
    Test.make_grouped ~name:"table1-time"
      (List.map
         (fun s ->
           Test.make
             ~name:s.Smg_eval.Scenario.scen_name
             (Staged.stage (semantic_run s)))
         scens)
  in
  let ric =
    Test.make_grouped ~name:"baseline-time"
      (List.map
         (fun s ->
           Test.make
             ~name:s.Smg_eval.Scenario.scen_name
             (Staged.stage (ric_run s)))
         scens)
  in
  let exchange =
    Test.make_grouped ~name:"exchange-scale"
      (List.map
         (fun rows ->
           Test.make
             ~name:(Printf.sprintf "rows=%d" rows)
             (Staged.stage (exchange_run rows)))
         [ 2; 8; 32 ])
  in
  let ablation =
    Test.make_grouped ~name:"ablation-time"
      (List.map
         (fun (v : Smg_eval.Ablation.variant) ->
           Test.make ~name:v.Smg_eval.Ablation.v_name
             (Staged.stage (ablation_run v)))
         Smg_eval.Ablation.variants)
  in
  let verify =
    Test.make_grouped ~name:"verify"
      [
        Test.make ~name:"mondial-hom-equivalence" (Staged.stage hom_check_run);
        Test.make ~name:"mondial-core" (Staged.stage core_run);
      ]
  in
  Test.make_grouped ~name:"smg" [ sem; ric; exchange; ablation; verify ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare

let () =
  (* quality series: Figures 6 and 7, plus the Table 1 characteristics *)
  let results = Smg_eval.Experiments.run_all (Lazy.force scenarios) in
  Fmt.pr "%a@.@." Smg_eval.Experiments.pp_table1 results;
  Fmt.pr "%a@.@." Smg_eval.Experiments.pp_fig6 results;
  Fmt.pr "%a@.@." Smg_eval.Experiments.pp_fig7 results;
  (* timing: the Table 1 "time" column, measured properly *)
  Fmt.pr "Bechamel timings (full domain runs):@.";
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "  %-28s %12.0f ns/run@." name est
      | Some _ | None -> Fmt.pr "  %-28s (no estimate)@." name)
    (benchmark ())
