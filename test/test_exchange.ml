(* Tests for Smg_exchange: the plan compiler, the hash-join execution
   engine, the laconic preparation/sweep, and their agreement with the
   naive chase — qcheck properties over random ground sources plus
   alcotest fixtures for all seven built-in evaluation domains. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase
module Mapping = Smg_cq.Mapping
module Hom = Smg_verify.Hom
module Icore = Smg_verify.Icore
module Plan = Smg_exchange.Plan
module Engine = Smg_exchange.Engine
module Laconic = Smg_exchange.Laconic
module Scenario = Smg_eval.Scenario
module Datasets = Smg_eval.Datasets
module Witness = Smg_eval.Witness

let v = Atom.v
let a = Atom.atom
let vs s = Value.VString s

(* ---- helpers ----------------------------------------------------------- *)

(* The naive chase merges both schemas into one namespace, so domains
   whose sides share table names (Mondial) need the target renamed
   before the comparison run; Smg_exchange.Naive does that renaming.
   The engine itself keeps the sides in separate stores. *)
let naive_exchange = Smg_exchange.Naive.exchange

let hom_into = Smg_verify.Equiv.hom_into
let hom_equiv = Smg_verify.Equiv.equivalent

(* The instance as atoms with labelled nulls kept as constants — the
   reading needed when checking that a (source, target) pair satisfies a
   tgd, where nulls are ordinary values. *)
let const_atoms inst =
  List.concat_map
    (fun name ->
      match Instance.relation inst name with
      | None -> []
      | Some r ->
          List.map
            (fun tup ->
              Atom.atom name (List.map Atom.c (Array.to_list tup)))
            r.Instance.tuples)
    (Instance.names inst)

(* (source, target) ⊨ tgd: every lhs match over the source extends to an
   rhs match over the target (existentials as wildcards). *)
let satisfies_tgd src_inst tgt_inst (t : Dependency.tgd) =
  let src_atoms = const_atoms src_inst in
  let tgt_atoms = const_atoms tgt_inst in
  Hom.all ~rigid:src_atoms t.Dependency.lhs
  |> List.for_all (fun s ->
         let universals = Dependency.universal_vars t in
         let init =
           List.fold_left
             (fun acc x ->
               match Atom.Subst.find s x with
               | Some term -> Atom.Subst.bind acc x term
               | None -> acc)
             Atom.Subst.empty universals
         in
         Hom.holds ~init ~rigid:tgt_atoms t.Dependency.rhs)

(* ---- fixed property-test mapping --------------------------------------- *)

let psource =
  Schema.make ~name:"psrc"
    [
      Schema.table "r" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "u" [ ("b", Schema.TString) ];
    ]
    []

let ptarget =
  Schema.make ~name:"ptgt"
    [
      Schema.table ~key:[ "a" ] "s"
        [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "t" [ ("b", Schema.TString); ("c", Schema.TString) ];
    ]
    []

let ptgds =
  [
    Dependency.tgd ~name:"m1"
      ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "x"; v "y" ] ];
    Dependency.tgd ~name:"m2"
      ~lhs:[ a "u" [ v "y" ] ]
      [ a "t" [ v "y"; v "z" ] ];
    Dependency.tgd ~name:"m3"
      ~lhs:[ a "r" [ v "x"; v "y" ]; a "u" [ v "y" ] ]
      [ a "s" [ v "x"; v "w" ]; a "t" [ v "w"; v "c" ] ];
  ]

let inst_of (rs, us) =
  let i =
    List.fold_left
      (fun i (x, y) ->
        Instance.add_tuple i "r" ~header:[ "a"; "b" ] [| vs x; vs y |])
      Instance.empty rs
  in
  List.fold_left
    (fun i y -> Instance.add_tuple i "u" ~header:[ "b" ] [| vs y |])
    i us

let arb_src =
  let open QCheck in
  let pool = Gen.oneofl [ "p"; "q"; "w"; "z" ] in
  let gen =
    Gen.pair
      (Gen.list_size (Gen.int_bound 6) (Gen.pair pool pool))
      (Gen.list_size (Gen.int_bound 6) pool)
  in
  let print (rs, us) =
    Printf.sprintf "r=[%s] u=[%s]"
      (String.concat ";" (List.map (fun (x, y) -> x ^ "," ^ y) rs))
      (String.concat ";" us)
  in
  make ~print gen

let engine_run ?laconic inst =
  Engine.run ?laconic ~source:psource ~target:ptarget ~mappings:ptgds inst

(* (a) the engine's output, joined with the source, satisfies every tgd *)
let prop_satisfies =
  QCheck.Test.make ~name:"engine output satisfies every tgd" ~count:100 arb_src
    (fun src ->
      let inst = inst_of src in
      match engine_run inst with
      | Error _ -> true (* key conflict: no solution exists *)
      | Ok rep ->
          List.for_all (satisfies_tgd inst rep.Engine.r_target) ptgds)

(* (b) homomorphically equivalent to the naive-chase solution *)
let prop_chase_equiv =
  QCheck.Test.make ~name:"engine ≡hom naive chase" ~count:100 arb_src
    (fun src ->
      let inst = inst_of src in
      let fast = engine_run inst in
      let naive =
        naive_exchange ~source:psource ~target:ptarget ~mappings:ptgds inst
      in
      match (fast, naive) with
      | Ok rep, Chase.Saturated i -> hom_equiv rep.Engine.r_target i
      | Error _, Chase.Failed _ -> true
      | _ -> false)

(* (c) the laconic path's output embeds into the naive core *)
let prop_laconic_embeds =
  QCheck.Test.make ~name:"laconic output embeds into naive core" ~count:100
    arb_src (fun src ->
      let inst = inst_of src in
      match
        ( engine_run ~laconic:true inst,
          naive_exchange ~source:psource ~target:ptarget ~mappings:ptgds inst )
      with
      | Ok rep, Chase.Saturated i ->
          let core = Icore.core i in
          hom_into rep.Engine.r_target core && hom_into core rep.Engine.r_target
      | Error _, Chase.Failed _ -> true
      | _ -> false)

(* ---- plan compiler fixtures -------------------------------------------- *)

let test_plan_shape () =
  let p = Plan.compile ~source:psource ~target:ptarget (List.nth ptgds 2) in
  Alcotest.(check int) "two scans" 2 (List.length p.Plan.p_scans);
  (match p.Plan.p_scans with
  | [ first; second ] ->
      Alcotest.(check bool) "first scan has no probe key" true
        (first.Plan.sc_eqs = []);
      Alcotest.(check bool) "second scan probes the join attribute" true
        (second.Plan.sc_eqs <> [])
  | _ -> Alcotest.fail "expected two scans");
  Alcotest.(check int) "two existential wildcards" 2 p.Plan.p_nex;
  Alcotest.(check int) "two fresh nulls per trigger" 2 p.Plan.p_nnulls;
  (* smoke the EXPLAIN printer *)
  Alcotest.(check bool) "pp renders" true
    (String.length (Fmt.str "%a" Plan.pp p) > 0)

let test_plan_join_order () =
  (* with cardinalities, the smaller relation drives the join *)
  let card = function "r" -> 1000 | _ -> 1 in
  let p = Plan.compile ~card ~source:psource ~target:ptarget (List.nth ptgds 2) in
  match p.Plan.p_scans with
  | first :: _ ->
      Alcotest.(check string) "small relation first" "u" first.Plan.sc_pred
  | [] -> Alcotest.fail "no scans"

let test_plan_rejects_bad_arity () =
  let bad =
    Dependency.tgd ~name:"bad" ~lhs:[ a "r" [ v "x" ] ] [ a "s" [ v "x"; v "y" ] ]
  in
  match Plan.compile ~source:psource ~target:ptarget bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch must be rejected"

(* ---- engine fixtures ---------------------------------------------------- *)

let test_engine_simple () =
  let inst = inst_of ([ ("1", "2") ], [ "2" ]) in
  match engine_run inst with
  | Error m -> Alcotest.fail m
  | Ok rep ->
      Alcotest.(check int) "one s row" 1
        (Instance.cardinality rep.Engine.r_target "s");
      Alcotest.(check int) "one t row (m2's; m3 satisfied)" 1
        (Instance.cardinality rep.Engine.r_target "t");
      Alcotest.(check bool) "complete" true rep.Engine.r_complete

let test_engine_key_conflict () =
  (* two r rows with the same key column and different b: s's key egd
     equates the constants "2" and "3" *)
  let inst = inst_of ([ ("1", "2"); ("1", "3") ], []) in
  match engine_run inst with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a key-egd conflict"

let test_engine_egd_merges_null () =
  (* m3 invents w for s(x,w); m1's s(x,y) forces w := y through the key,
     and the substituted t row then carries the constant *)
  let inst = inst_of ([ ("1", "2") ], [ "2" ]) in
  match engine_run inst with
  | Error m -> Alcotest.fail m
  | Ok rep -> (
      match Instance.relation rep.Engine.r_target "s" with
      | Some { Instance.tuples = [ tup ]; _ } ->
          Alcotest.(check bool) "s row is ground" true
            (Value.equal tup.(0) (vs "1") && Value.equal tup.(1) (vs "2"))
      | _ -> Alcotest.fail "expected exactly one s row")

let test_engine_stats () =
  let inst = inst_of ([ ("1", "2"); ("3", "4") ], [ "2"; "4" ]) in
  match engine_run inst with
  | Error m -> Alcotest.fail m
  | Ok rep ->
      Alcotest.(check int) "one stats row per tgd" 3
        (List.length rep.Engine.r_stats);
      let total_emitted =
        List.fold_left
          (fun acc (_, st) -> acc + st.Smg_exchange.Obs.n_emitted)
          0 rep.Engine.r_stats
      in
      Alcotest.(check int) "emitted = target tuples" total_emitted
        (Instance.total_tuples rep.Engine.r_target);
      Alcotest.(check bool) "pp_report renders" true
        (String.length (Fmt.str "%a" Engine.pp_report rep) > 0)

let test_skolem_merge () =
  (* two tgds emitting the same Skolem term produce one merged row, and
     the engine's value is identical to the chase's *)
  let source =
    Schema.make ~name:"sk-src"
      [
        Schema.table "r" [ ("a", Schema.TString) ];
        Schema.table "u" [ ("a", Schema.TString) ];
      ]
      []
  in
  let target =
    Schema.make ~name:"sk-tgt"
      [
        Schema.table ~key:[ "a" ] "s"
          [ ("a", Schema.TString); ("c", Schema.TString) ];
      ]
      []
  in
  let sk = Chase.skolem_var ~f:"addr" ~args:[ "x" ] in
  let tgds =
    [
      Dependency.tgd ~name:"k1" ~lhs:[ a "r" [ v "x" ] ]
        [ a "s" [ v "x"; v sk ] ];
      Dependency.tgd ~name:"k2" ~lhs:[ a "u" [ v "x" ] ]
        [ a "s" [ v "x"; v sk ] ];
    ]
  in
  let inst =
    Instance.add_tuple Instance.empty "r" ~header:[ "a" ] [| vs "1" |]
    |> fun i -> Instance.add_tuple i "u" ~header:[ "a" ] [| vs "1" |]
  in
  match Engine.run ~source ~target ~mappings:tgds inst with
  | Error m -> Alcotest.fail m
  | Ok rep -> (
      Alcotest.(check int) "one merged row" 1
        (Instance.cardinality rep.Engine.r_target "s");
      match naive_exchange ~source ~target ~mappings:tgds inst with
      | Chase.Saturated i ->
          Alcotest.(check bool) "identical to the chase (ground skolems)"
            true
            (Instance.equal rep.Engine.r_target i)
      | _ -> Alcotest.fail "chase should saturate")

(* ---- laconic fixtures --------------------------------------------------- *)

let test_laconic_prepare_dedups () =
  let t1 =
    Dependency.tgd ~name:"d1" ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "x"; v "y" ] ]
  in
  let t2 =
    (* same dependency, renamed variables *)
    Dependency.tgd ~name:"d2" ~lhs:[ a "r" [ v "p"; v "q" ] ]
      [ a "s" [ v "p"; v "q" ] ]
  in
  Alcotest.(check int) "equivalent tgds collapse" 1
    (List.length (Laconic.prepare [ t1; t2 ]))

let test_laconic_prepare_minimizes () =
  (* a redundant lhs atom folds away *)
  let t =
    Dependency.tgd ~name:"redundant"
      ~lhs:[ a "r" [ v "x"; v "y" ]; a "r" [ v "x"; v "y2" ] ]
      [ a "s" [ v "x"; v "x" ] ]
  in
  match Laconic.prepare [ t ] with
  | [ t' ] ->
      Alcotest.(check int) "one lhs atom left" 1
        (List.length t'.Dependency.lhs)
  | _ -> Alcotest.fail "expected one tgd"

let test_laconic_sweep () =
  let n1 = Value.fresh_null () and n2 = Value.fresh_null () in
  let i =
    Instance.add_tuple Instance.empty "t" ~header:[ "a"; "b" ]
      [| vs "1"; vs "c" |]
    |> fun i ->
    Instance.add_tuple i "t" ~header:[ "a"; "b" ] [| vs "1"; n1 |]
    |> fun i ->
    (* n2 is shared across two tuples: neither may be dropped *)
    Instance.add_tuple i "t" ~header:[ "a"; "b" ] [| vs "2"; n2 |]
    |> fun i -> Instance.add_tuple i "u" ~header:[ "b" ] [| n2 |]
  in
  let swept, dropped = Laconic.sweep i in
  Alcotest.(check int) "one tuple folded" 1 dropped;
  Alcotest.(check int) "t keeps two rows" 2 (Instance.cardinality swept "t");
  Alcotest.(check int) "u untouched" 1 (Instance.cardinality swept "u")

let test_laconic_near_core () =
  (* on the fixed mapping the laconic path should produce exactly the
     core-sized instance *)
  let inst = inst_of ([ ("1", "2"); ("3", "4") ], [ "2"; "9" ]) in
  match engine_run ~laconic:true inst with
  | Error m -> Alcotest.fail m
  | Ok rep -> (
      match
        naive_exchange ~source:psource ~target:ptarget ~mappings:ptgds inst
      with
      | Chase.Saturated i ->
          let core = Icore.core i in
          Alcotest.(check int) "laconic output is core-sized"
            (Instance.total_tuples core)
            (Instance.total_tuples rep.Engine.r_target);
          Alcotest.(check bool) "and hom-equivalent to it" true
            (hom_equiv rep.Engine.r_target core)
      | _ -> Alcotest.fail "chase should saturate")

(* ---- seven built-in domains -------------------------------------------- *)

let scenario_tgds (scen : Scenario.t) =
  List.concat_map
    (fun (c : Scenario.case) -> List.map Mapping.to_tgd c.Scenario.benchmark)
    scen.Scenario.cases

let check_domain ~laconic (scen : Scenario.t) () =
  let source = scen.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Scenario.target.Smg_core.Discover.schema in
  let mappings = scenario_tgds scen in
  let inst = Witness.populate ~rows_per_table:3 ~seed:7 source in
  let fast = Engine.run ~laconic ~source ~target ~mappings inst in
  let naive = naive_exchange ~source ~target ~mappings inst in
  match (fast, naive) with
  | Ok rep, Chase.Saturated i ->
      Alcotest.(check bool)
        (scen.Scenario.scen_name ^ ": engine ≡hom chase")
        true
        (hom_equiv rep.Engine.r_target i)
  | Error _, Chase.Failed _ -> ()
  | Ok _, Chase.Failed m ->
      Alcotest.fail (Printf.sprintf "chase failed (%s) but engine succeeded" m)
  | Error m, _ -> Alcotest.fail ("engine failed: " ^ m)
  | _, Chase.Bounded _ -> Alcotest.fail "chase did not saturate"

let test_outer_variants () =
  (* Example 1.2's outer mapping realised as Skolemized variants: the
     engine must reproduce the chase's full-outer-join result *)
  let ms =
    Smg_core.Discover.discover
      ~source:(Fixtures.Employees.source ())
      ~target:(Fixtures.Employees.target ())
      ~corrs:Fixtures.Employees.corrs ()
  in
  let m = List.hd ms in
  let tgds =
    Mapping.outer_variants ~target:Fixtures.Employees.target_schema m
  in
  let i =
    Instance.add_tuple Instance.empty "programmer"
      ~header:[ "ssn"; "name"; "acnt" ]
      [| vs "1"; vs "ada"; vs "acnt1" |]
    |> fun i ->
    Instance.add_tuple i "engineer" ~header:[ "ssn"; "name"; "site" ]
      [| vs "1"; vs "ada"; vs "site1" |]
    |> fun i ->
    Instance.add_tuple i "engineer" ~header:[ "ssn"; "name"; "site" ]
      [| vs "2"; vs "bob"; vs "site2" |]
  in
  let source = Fixtures.Employees.source_schema in
  let target = Fixtures.Employees.target_schema in
  match
    ( Engine.run ~source ~target ~mappings:tgds i,
      naive_exchange ~source ~target ~mappings:tgds i )
  with
  | Ok rep, Chase.Saturated out ->
      Alcotest.(check int) "two employees (ada merged, bob kept)" 2
        (Instance.cardinality rep.Engine.r_target "employee");
      Alcotest.(check bool) "engine ≡hom chase" true
        (hom_equiv rep.Engine.r_target out)
  | Error m, _ -> Alcotest.fail ("engine failed: " ^ m)
  | _ -> Alcotest.fail "chase should saturate"

let domain_tests =
  List.concat_map
    (fun (scen : Scenario.t) ->
      [
        Alcotest.test_case
          (scen.Scenario.scen_name ^ " engine ≡hom chase")
          `Quick
          (check_domain ~laconic:false scen);
        Alcotest.test_case
          (scen.Scenario.scen_name ^ " laconic ≡hom chase")
          `Quick
          (check_domain ~laconic:true scen);
      ])
    (Datasets.all ())

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "exchange plan",
      [
        Alcotest.test_case "plan shape" `Quick test_plan_shape;
        Alcotest.test_case "join order" `Quick test_plan_join_order;
        Alcotest.test_case "bad arity" `Quick test_plan_rejects_bad_arity;
      ] );
    ( "exchange engine",
      [
        Alcotest.test_case "simple run" `Quick test_engine_simple;
        Alcotest.test_case "key conflict" `Quick test_engine_key_conflict;
        Alcotest.test_case "egd merges null" `Quick test_engine_egd_merges_null;
        Alcotest.test_case "stats" `Quick test_engine_stats;
        Alcotest.test_case "skolem merge" `Quick test_skolem_merge;
        Alcotest.test_case "outer variants" `Quick test_outer_variants;
        q prop_satisfies;
        q prop_chase_equiv;
      ] );
    ( "exchange laconic",
      [
        Alcotest.test_case "prepare dedups" `Quick test_laconic_prepare_dedups;
        Alcotest.test_case "prepare minimizes" `Quick
          test_laconic_prepare_minimizes;
        Alcotest.test_case "sweep" `Quick test_laconic_sweep;
        Alcotest.test_case "near-core" `Quick test_laconic_near_core;
        q prop_laconic_embeds;
      ] );
    ("exchange domains", domain_tests);
  ]
