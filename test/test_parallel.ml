(* The work-stealing domain pool: deque semantics under concurrent
   steals, pool determinism and fault propagation, budget split/absorb
   accounting, and the end-to-end invariance guarantees — byte-identical
   discovery and hom-equivalent exchange for any domain count. *)

module Deque = Smg_parallel.Deque
module Pool = Smg_parallel.Pool
module Budget = Smg_robust.Budget
module Discover = Smg_core.Discover
module Mapping = Smg_cq.Mapping
module Engine = Smg_exchange.Engine
module Instance = Smg_relational.Instance
module Equiv = Smg_verify.Equiv

(* ---- deque ------------------------------------------------------------- *)

let test_deque_lifo () =
  let d = Deque.create () in
  for i = 1 to 5 do
    Deque.push d i
  done;
  Alcotest.(check int) "size" 5 (Deque.size d);
  for i = 5 downto 1 do
    Alcotest.(check (option int)) "pop order" (Some i) (Deque.pop d)
  done;
  Alcotest.(check (option int)) "empty" None (Deque.pop d)

let test_deque_steal_fifo () =
  let d = Deque.create () in
  for i = 1 to 5 do
    Deque.push d i
  done;
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "steal next" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "pop newest" (Some 5) (Deque.pop d);
  Alcotest.(check (option int)) "steal third" (Some 3) (Deque.steal d);
  Alcotest.(check (option int)) "pop last" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "drained (steal)" None (Deque.steal d);
  Alcotest.(check (option int)) "drained (pop)" None (Deque.pop d)

let test_deque_grows () =
  (* push far past the initial 32-slot buffer, through several growths *)
  let d = Deque.create () in
  let n = 10_000 in
  for i = 1 to n do
    Deque.push d i
  done;
  let sum = ref 0 in
  let rec drain () =
    match Deque.pop d with
    | Some v ->
        sum := !sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "every element survived growth" (n * (n + 1) / 2) !sum

(* every pushed element is taken exactly once, split between the owner
   popping and concurrent thieves on real domains *)
let test_deque_concurrent_steal () =
  let d = Deque.create () in
  let n = 20_000 and thieves = 3 in
  let stolen = Array.init thieves (fun _ -> Atomic.make 0) in
  let live = Atomic.make true in
  let domains =
    Array.init thieves (fun t ->
        Domain.spawn (fun () ->
            let continue = ref true in
            while !continue do
              match Deque.steal d with
              | Some v -> Atomic.set stolen.(t) (Atomic.get stolen.(t) + v)
              | None -> if not (Atomic.get live) then continue := false
            done))
  in
  let popped = ref 0 in
  for i = 1 to n do
    Deque.push d i;
    (* interleave pops so owner and thieves race on the same elements *)
    if i mod 2 = 0 then
      match Deque.pop d with Some v -> popped := !popped + v | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
        popped := !popped + v;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set live false;
  Array.iter Domain.join domains;
  let total =
    Array.fold_left (fun acc a -> acc + Atomic.get a) !popped stolen
  in
  Alcotest.(check int) "each element taken exactly once" (n * (n + 1) / 2)
    total

(* ---- pool -------------------------------------------------------------- *)

let test_pool_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 1000 Fun.id in
      let out = Pool.map pool (fun i -> i * i) input in
      Alcotest.(check bool) "squares in order" true
        (out = Array.map (fun i -> i * i) input))

let test_pool_map_uneven () =
  (* skewed task costs exercise stealing; order must still hold *)
  Pool.with_pool ~domains:4 (fun pool ->
      let work i =
        let n = if i mod 97 = 0 then 20_000 else 10 in
        let acc = ref i in
        for _ = 1 to n do
          acc := (!acc * 7) mod 1_000_003
        done;
        (i, !acc)
      in
      let out = Pool.map pool ~chunk:1 work (Array.init 500 Fun.id) in
      let seq = Array.map work (Array.init 500 Fun.id) in
      Alcotest.(check bool) "matches sequential" true (out = seq))

let test_pool_single_domain () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size 1" 1 (Pool.size pool);
      let out = Pool.map pool (fun i -> i + 1) (Array.init 10 Fun.id) in
      Alcotest.(check bool) "sequential fallback" true
        (out = Array.init 10 (fun i -> i + 1)))

exception Boom

let test_pool_exception () =
  Pool.with_pool ~domains:4 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map pool ~chunk:1
               (fun i -> if i = 37 then raise Boom else i)
               (Array.init 100 Fun.id));
          false
        with Boom -> true
      in
      Alcotest.(check bool) "task exception re-raised after join" true raised;
      (* the pool survives a faulted section *)
      let out = Pool.map pool (fun i -> i * 2) (Array.init 8 Fun.id) in
      Alcotest.(check bool) "pool usable afterwards" true
        (out = Array.init 8 (fun i -> i * 2)))

let test_pool_nested_inline () =
  (* a task re-entering the pool must run its section inline, not
     deadlock waiting for workers that are all busy *)
  Pool.with_pool ~domains:2 (fun pool ->
      let out =
        Pool.map pool ~chunk:1
          (fun i ->
            let inner =
              Pool.map pool (fun j -> j + i) (Array.init 4 Fun.id)
            in
            Array.fold_left ( + ) 0 inner)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check bool) "nested sections complete" true
        (out = Array.init 8 (fun i -> 6 + (4 * i))))

let test_pool_for () =
  Pool.with_pool ~domains:4 (fun pool ->
      let slots = Array.make 256 (-1) in
      Pool.for_ pool 0 256 (fun i -> slots.(i) <- i);
      Alcotest.(check bool) "every index visited once" true
        (slots = Array.init 256 Fun.id))

(* ---- budget split / absorb -------------------------------------------- *)

let test_budget_split_shares () =
  let b = Budget.create ~fuel:10 () in
  let subs = Budget.split b ~parts:3 in
  Alcotest.(check (list (option int)))
    "4,3,3 fuel shares"
    [ Some 4; Some 3; Some 3 ]
    (List.map Budget.remaining_fuel subs)

let test_budget_split_unlimited () =
  let b = Budget.unlimited () in
  let subs = Budget.split b ~parts:4 in
  Alcotest.(check bool) "children unlimited" true
    (List.for_all (fun s -> Budget.remaining_fuel s = None) subs)

let test_budget_absorb_accounting () =
  let b = Budget.create ~fuel:10 () in
  let subs = Budget.split b ~parts:2 in
  (* child 0 burns 3 of its 5; child 1 untouched *)
  ignore (Budget.burn (List.nth subs 0) 3);
  List.iter (Budget.absorb b) subs;
  Alcotest.(check (option int)) "parent charged what children consumed"
    (Some 7) (Budget.remaining_fuel b);
  Alcotest.(check bool) "parent not spent" true (Budget.exhausted b = None)

let test_budget_absorb_exhaustion () =
  let b = Budget.create ~fuel:4 () in
  let subs = Budget.split b ~parts:2 in
  List.iter (fun s -> ignore (Budget.burn s 2)) subs;
  List.iter (Budget.absorb b) subs;
  Alcotest.(check (option int)) "all fuel consumed" (Some 0)
    (Budget.remaining_fuel b);
  Alcotest.(check bool) "parent spent by fuel" true
    (Budget.exhausted b = Some Budget.Fuel)

let test_budget_absorb_child_fuel_not_sticky () =
  (* a child hitting its own share does not spend the parent while the
     parent still has fuel left overall *)
  let b = Budget.create ~fuel:10 () in
  let subs = Budget.split b ~parts:2 in
  let c0 = List.nth subs 0 in
  Alcotest.(check bool) "child exhausts its share" false (Budget.burn c0 6);
  List.iter (Budget.absorb b) subs;
  Alcotest.(check (option int)) "parent keeps the rest" (Some 5)
    (Budget.remaining_fuel b);
  Alcotest.(check bool) "parent not spent" true (Budget.exhausted b = None)

(* worker budget exhaustion through the pool: tasks burn per-task
   shares; exhausted tasks report partial results and the parent
   absorbs a consistent total *)
let test_pool_worker_exhaustion () =
  Pool.with_pool ~domains:4 (fun pool ->
      let b = Budget.create ~fuel:40 () in
      let n = 8 in
      let subs = Array.of_list (Budget.split b ~parts:n) in
      let results =
        Pool.map pool ~chunk:1
          (fun i ->
            let sub = subs.(i) in
            (* each task wants 10 units but holds a share of 5 *)
            let done_ = ref 0 in
            (try
               for _ = 1 to 10 do
                 Budget.tick_exn sub;
                 incr done_
               done
             with Budget.Exhausted _ -> ());
            !done_)
          (Array.init n Fun.id)
      in
      Array.iter (Budget.absorb b) subs;
      Alcotest.(check bool) "every task did its share and no more" true
        (Array.for_all (fun d -> d = 5) results);
      Alcotest.(check (option int)) "parent fully charged" (Some 0)
        (Budget.remaining_fuel b);
      Alcotest.(check bool) "parent spent" true
        (Budget.exhausted b = Some Budget.Fuel))

(* ---- end-to-end invariance -------------------------------------------- *)

let datasets = lazy (Smg_eval.Datasets.all ())

let scenario name =
  List.find
    (fun s -> s.Smg_eval.Scenario.scen_name = name)
    (Lazy.force datasets)

let fingerprint (o : Discover.outcome) =
  List.map
    (fun (m : Mapping.t) ->
      ( m.Mapping.m_name,
        m.Mapping.score,
        Fmt.str "%a" Smg_cq.Dependency.pp_tgd (Mapping.to_tgd m) ))
    o.Discover.o_mappings

let discover_at ?fuel domains (scen : Smg_eval.Scenario.t)
    (case : Smg_eval.Scenario.case) =
  let budget = Option.map (fun fuel -> Budget.create ~fuel ()) fuel in
  let run pool =
    Discover.discover_bounded ?budget ?pool ~source:scen.Smg_eval.Scenario.source
      ~target:scen.Smg_eval.Scenario.target ~corrs:case.Smg_eval.Scenario.corrs
      ()
  in
  if domains <= 1 then run None
  else Pool.with_pool ~domains (fun pool -> run (Some pool))

let dblp_engine_inputs =
  lazy
    (let scen = scenario "DBLP" in
     let source = scen.Smg_eval.Scenario.source.Discover.schema in
     let target = scen.Smg_eval.Scenario.target.Discover.schema in
     let mappings =
       List.concat_map
         (fun (case : Smg_eval.Scenario.case) ->
           match
             Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen
               case
           with
           | [] -> []
           | best :: _ ->
               if best.Mapping.outer then Mapping.outer_variants ~target best
               else [ Mapping.to_tgd best ])
         scen.Smg_eval.Scenario.cases
     in
     (source, target, mappings))

let engine_at ?budget domains inst =
  let source, target, mappings = Lazy.force dblp_engine_inputs in
  let run pool = Engine.run_bounded ?budget ?pool ~source ~target ~mappings inst in
  if domains <= 1 then run None
  else Pool.with_pool ~domains (fun pool -> run (Some pool))

(* qcheck: for any curated case and any domain count in {1,2,4}, pooled
   discovery returns the byte-identical ranked list *)
let prop_discover_identical =
  let cases =
    List.concat_map
      (fun (s : Smg_eval.Scenario.t) ->
        List.map (fun c -> (s, c)) s.Smg_eval.Scenario.cases)
      (Lazy.force datasets)
  in
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair (int_range 0 (List.length cases - 1)) (oneofl [ 2; 4 ]))
      ~print:(fun (i, d) ->
        let s, c = List.nth cases i in
        Printf.sprintf "%s/%s at %d domain(s)" s.Smg_eval.Scenario.scen_name
          c.Smg_eval.Scenario.case_name d)
  in
  QCheck.Test.make ~name:"pooled discovery is byte-identical" ~count:12 arb
    (fun (i, domains) ->
      let scen, case = List.nth cases i in
      fingerprint (discover_at 1 scen case)
      = fingerprint (discover_at domains scen case))

(* qcheck: pooled exchange is hom-equivalent to the sequential run for
   any domain count and source size *)
let prop_engine_equivalent =
  let arb =
    QCheck.make
      QCheck.Gen.(triple (oneofl [ 2; 4 ]) (int_range 2 12) (int_range 0 99))
      ~print:(fun (d, rows, seed) ->
        Printf.sprintf "%d domain(s), %d rows/table, seed %d" d rows seed)
  in
  QCheck.Test.make ~name:"pooled exchange is hom-equivalent" ~count:8 arb
    (fun (domains, rows, seed) ->
      let source, _, _ = Lazy.force dblp_engine_inputs in
      let inst = Smg_eval.Witness.populate ~rows_per_table:rows ~seed source in
      match (engine_at 1 inst, engine_at domains inst) with
      | Engine.Complete a, Engine.Complete b ->
          Equiv.equivalent a.Engine.r_target b.Engine.r_target
      | _ -> false)

(* a pooled run out of fuel still yields a sound partial prefix: it
   maps homomorphically into the complete sequential output *)
let test_engine_pool_partial_prefix () =
  let source, _, _ = Lazy.force dblp_engine_inputs in
  let inst = Smg_eval.Witness.populate ~rows_per_table:16 ~seed:7 source in
  let full =
    match engine_at 1 inst with
    | Engine.Complete rep -> rep.Engine.r_target
    | _ -> Alcotest.fail "unbudgeted run should complete"
  in
  let checked = ref 0 in
  List.iter
    (fun fuel ->
      match engine_at ~budget:(Budget.create ~fuel ()) 4 inst with
      | Engine.Budget_exhausted (_, rep) ->
          incr checked;
          Alcotest.(check bool)
            (Printf.sprintf "prefix at fuel %d embeds into the full output"
               fuel)
            true
            (Equiv.hom_into rep.Engine.r_target full)
      | Engine.Complete rep ->
          (* enough fuel: then it must be the full answer *)
          Alcotest.(check bool)
            (Printf.sprintf "complete at fuel %d is hom-equivalent" fuel)
            true
            (Equiv.equivalent rep.Engine.r_target full)
      | Engine.Failed msg -> Alcotest.fail msg)
    [ 50; 200; 800; 1_000_000 ];
  Alcotest.(check bool) "at least one budgeted run was partial" true
    (!checked > 0)

(* fuel-budgeted pooled discovery is still deterministic: the per-task
   split makes accounting independent of the steal schedule *)
let test_discover_budget_deterministic () =
  let scen = scenario "Mondial" in
  let case = List.hd scen.Smg_eval.Scenario.cases in
  List.iter
    (fun fuel ->
      let a = fingerprint (discover_at ~fuel 4 scen case) in
      let b = fingerprint (discover_at ~fuel 4 scen case) in
      let c = fingerprint (discover_at ~fuel 2 scen case) in
      Alcotest.(check bool)
        (Printf.sprintf "stable at fuel %d" fuel)
        true
        (a = b && a = c))
    [ 100; 10_000 ]

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "parallel.deque",
      [
        Alcotest.test_case "owner pop is LIFO" `Quick test_deque_lifo;
        Alcotest.test_case "steal is FIFO" `Quick test_deque_steal_fifo;
        Alcotest.test_case "growth keeps elements" `Quick test_deque_grows;
        Alcotest.test_case "concurrent steals take each element once" `Quick
          test_deque_concurrent_steal;
      ] );
    ( "parallel.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
        Alcotest.test_case "map under skewed load" `Quick test_pool_map_uneven;
        Alcotest.test_case "domains=1 sequential fallback" `Quick
          test_pool_single_domain;
        Alcotest.test_case "task exception propagates" `Quick
          test_pool_exception;
        Alcotest.test_case "nested sections run inline" `Quick
          test_pool_nested_inline;
        Alcotest.test_case "for_ covers the range" `Quick test_pool_for;
      ] );
    ( "parallel.budget",
      [
        Alcotest.test_case "split shares fuel" `Quick test_budget_split_shares;
        Alcotest.test_case "split of unlimited" `Quick
          test_budget_split_unlimited;
        Alcotest.test_case "absorb charges consumption" `Quick
          test_budget_absorb_accounting;
        Alcotest.test_case "absorb detects exhaustion" `Quick
          test_budget_absorb_exhaustion;
        Alcotest.test_case "child share is not parent exhaustion" `Quick
          test_budget_absorb_child_fuel_not_sticky;
        Alcotest.test_case "worker exhaustion is a sound partial" `Quick
          test_pool_worker_exhaustion;
      ] );
    ( "parallel.invariance",
      [
        q prop_discover_identical;
        q prop_engine_equivalent;
        Alcotest.test_case "pooled partial prefix is sound" `Quick
          test_engine_pool_partial_prefix;
        Alcotest.test_case "budgeted pooled discovery deterministic" `Quick
          test_discover_budget_deterministic;
      ] );
  ]
