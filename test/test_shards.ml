(* Tests for the interned columnar substrate and its shard partitioning:
   the Intern code/value round-trip, Colstore semantics at several shard
   counts, the engine's shard-invariance matrix (shards {1,3,4,7} ×
   domains {1,4}), and a differential against the frozen boxed-value
   reference engine. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Intern = Smg_relational.Intern
module Colstore = Smg_relational.Colstore
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Engine = Smg_exchange.Engine
module Refengine = Smg_exchange.Refengine
module Pool = Smg_parallel.Pool
module Render = Smg_serve.Render
module Equiv = Smg_verify.Equiv

let v = Atom.v
let a = Atom.atom
let vs s = Value.VString s
let shard_counts = [ 1; 3; 4; 7 ]

(* ---- intern round-trip -------------------------------------------------- *)

(* nan is deliberately absent: the pool's structural equality cannot
   identify a value that is not equal to itself *)
let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.VInt i) int;
        map (fun s -> Value.VString s) (string_size (int_bound 12));
        map (fun i -> Value.VFloat (float_of_int i /. 8.)) int;
        map (fun b -> Value.VBool b) bool;
        map (fun n -> Value.VNull n) (int_bound 10_000);
      ])

let arb_value =
  QCheck.make gen_value ~print:(fun x -> Fmt.str "%a" Value.pp x)

let prop_intern_roundtrip =
  QCheck.Test.make ~name:"intern: value -> code -> value round-trips"
    ~count:500 arb_value (fun x ->
      let c = Intern.code x in
      Value.equal (Intern.value c) x
      && Intern.code x = c
      && Intern.find x = Some c
      && Value.is_null x = Intern.is_null_code c)

let prop_intern_rows =
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair (int_range 1 4) (list_size (int_bound 40) (array_size (return 4) gen_value)))
      ~print:(fun (ar, rows) -> Fmt.str "arity %d, %d rows" ar (List.length rows))
  in
  QCheck.Test.make
    ~name:"intern: bulk code_rows agrees with per-value code" ~count:100 arb
    (fun (arity, rows) ->
      let rows = List.map (fun r -> Array.sub r 0 arity) rows in
      let n, data = Intern.code_rows ~arity rows in
      n = List.length rows
      && Array.length data >= 16 * arity
      && List.for_all2
           (fun i row ->
             Array.for_all Fun.id
               (Array.mapi
                  (fun j x -> data.((i * arity) + j) = Intern.code x)
                  row))
           (List.init n Fun.id) rows)

let test_intern_nulls () =
  Alcotest.(check int) "null code is arithmetic" (-8) (Intern.null_code 7);
  Alcotest.(check bool) "null codes are negative" true
    (Intern.is_null_code (Intern.code (Value.VNull 3)));
  Alcotest.(check int) "label recovered" 3
    (Intern.null_label (Intern.code (Value.VNull 3)));
  let tup = [| vs "a"; Value.VNull 5; Value.VInt 9 |] in
  Alcotest.(check bool) "tuple round-trips" true
    (Array.for_all2 Value.equal (Intern.decode_tuple (Intern.code_tuple tup)) tup)

(* ---- colstore ----------------------------------------------------------- *)

let row3 i = [| Intern.code (vs (Printf.sprintf "k%d" (i mod 17))); i; i * i |]

let live_rows cs =
  List.rev (Colstore.fold_live cs (fun acc r -> Colstore.row_cells cs r :: acc) [])

let test_colstore_shard_invariant () =
  (* duplicates included: every fifth row repeats an earlier one *)
  let rows = List.init 60 (fun i -> row3 (if i mod 5 = 4 then i - 4 else i)) in
  let reference = ref None in
  List.iter
    (fun shards ->
      let cs = Colstore.of_rows ~shards ~arity:3 rows in
      Alcotest.(check int)
        (Printf.sprintf "dedup at %d shard(s)" shards)
        48 (Colstore.count cs);
      Alcotest.(check bool) "all rows members" true
        (List.for_all (Colstore.mem cs) rows);
      Alcotest.(check int)
        (Printf.sprintf "shard_live sums to count at %d" shards)
        (Colstore.count cs)
        (Array.fold_left ( + ) 0 (Colstore.shard_live cs));
      let order = live_rows cs in
      (match !reference with
      | None -> reference := Some order
      | Some expected ->
          Alcotest.(check bool)
            (Printf.sprintf "iteration order at %d shard(s)" shards)
            true
            (List.for_all2 (fun x y -> x = y) expected order));
      (* remove one row, reinsert it: membership and counters track *)
      let victim = List.hd rows in
      (match Colstore.remove cs victim with
      | None -> Alcotest.fail "victim not found"
      | Some _ -> ());
      Alcotest.(check bool) "removed" false (Colstore.mem cs victim);
      Alcotest.(check int) "one rot" 1
        (Array.fold_left ( + ) 0 (Colstore.shard_rot cs));
      ignore (Colstore.insert cs victim);
      Alcotest.(check bool) "back" true (Colstore.mem cs victim))
    shard_counts

let test_colstore_of_flat () =
  let tuples =
    List.init 25 (fun i -> [| vs (string_of_int i); Value.VInt i |])
  in
  let n, data = Intern.code_rows ~arity:2 tuples in
  let cs = Colstore.of_flat ~shards:3 ~arity:2 ~rows:n data in
  Alcotest.(check int) "count" 25 (Colstore.count cs);
  Alcotest.(check bool) "untracked" false (Colstore.tracked cs);
  Alcotest.(check bool) "cells readable" true
    (List.for_all2
       (fun r tup ->
         Colstore.get cs r 0 = Intern.code tup.(0)
         && Colstore.get cs r 1 = Intern.code tup.(1))
       (List.init n Fun.id) tuples);
  (* untracked membership degrades to a scan but stays correct *)
  Alcotest.(check bool) "mem by scan" true
    (Colstore.mem cs (Intern.code_tuple (List.nth tuples 13)));
  Alcotest.(check bool) "absent row" false
    (Colstore.mem cs [| Intern.code (vs "nope"); Intern.code (Value.VInt 99) |])

(* ---- engine shard invariance -------------------------------------------- *)

let esource =
  Schema.make ~name:"ssrc"
    [
      Schema.table "r" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "u" [ ("b", Schema.TString) ];
    ]
    []

let etarget =
  Schema.make ~name:"stgt"
    [
      Schema.table ~key:[ "a" ] "s"
        [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "t" [ ("b", Schema.TString); ("c", Schema.TString) ];
    ]
    []

let etgds =
  [
    Dependency.tgd ~name:"m1"
      ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "x"; v "y" ] ];
    Dependency.tgd ~name:"m2"
      ~lhs:[ a "u" [ v "y" ] ]
      [ a "t" [ v "y"; v "z" ] ];
    Dependency.tgd ~name:"m3"
      ~lhs:[ a "r" [ v "x"; v "y" ]; a "u" [ v "y" ] ]
      [ a "s" [ v "x"; v "w" ]; a "t" [ v "w"; v "c" ] ];
  ]

(* joins, skolems and key egds all live: r/u overlap on b so m3 fires
   and the key on s merges its nulls against m1's facts *)
let einst =
  let add name header tup acc = Instance.add_tuple acc name ~header tup in
  let acc = ref Instance.empty in
  for i = 0 to 119 do
    acc :=
      add "r" [ "a"; "b" ]
        [| vs (Printf.sprintf "a%d" i); vs (Printf.sprintf "b%d" (i mod 40)) |]
        !acc;
    if i mod 3 = 0 then
      acc := add "u" [ "b" ] [| vs (Printf.sprintf "b%d" (i mod 40)) |] !acc
  done;
  !acc

let engine_doc ?pool ?shards () =
  match
    Engine.run ?pool ?shards ~source:esource ~target:etarget ~mappings:etgds
      einst
  with
  | Error m -> Alcotest.failf "engine: %s" m
  | Ok rep ->
      ( Render.exchange_json ~head:[] ~laconic:false rep,
        rep.Engine.r_target,
        rep.Engine.r_shards )

let test_engine_shard_matrix () =
  let base_doc, base_target, _ = engine_doc ~shards:1 () in
  List.iter
    (fun shards ->
      (* sequential: partitioning must be invisible to the bytes *)
      let doc, _, sv = engine_doc ~shards () in
      Alcotest.(check string)
        (Printf.sprintf "sequential doc at %d shard(s)" shards)
        base_doc doc;
      Alcotest.(check int)
        (Printf.sprintf "report carries %d shard(s)" shards)
        shards sv.Smg_exchange.Obs.sv_shards;
      Alcotest.(check bool) "intern pool visible" true
        (sv.Smg_exchange.Obs.sv_intern_pool > 0);
      (* pooled: hom-equivalent at every shard count *)
      Pool.with_pool ~domains:4 (fun pool ->
          let _, target, _ = engine_doc ~pool ~shards () in
          Alcotest.(check bool)
            (Printf.sprintf "pooled target ≡hom at %d shard(s)" shards)
            true
            (Equiv.equivalent base_target target)))
    shard_counts

(* ---- boxed reference differential --------------------------------------- *)

let test_boxed_differential () =
  let boxed =
    match
      Refengine.run ~source:esource ~target:etarget ~mappings:etgds einst
    with
    | Error m -> Alcotest.failf "refengine: %s" m
    | Ok rep ->
        Alcotest.(check bool) "boxed run complete" true rep.Refengine.r_complete;
        rep.Refengine.r_target
  in
  List.iter
    (fun shards ->
      let _, target, _ = engine_doc ~shards () in
      Alcotest.(check bool)
        (Printf.sprintf "interned ≡hom boxed at %d shard(s)" shards)
        true
        (Equiv.equivalent boxed target))
    shard_counts;
  (* and under the laconic sweep, both engines still agree *)
  let lrun laconic_boxed =
    if laconic_boxed then
      match
        Refengine.run ~laconic:true ~source:esource ~target:etarget
          ~mappings:etgds einst
      with
      | Ok rep -> rep.Refengine.r_target
      | Error m -> Alcotest.failf "refengine laconic: %s" m
    else
      match
        Engine.run ~laconic:true ~shards:3 ~source:esource ~target:etarget
          ~mappings:etgds einst
      with
      | Ok rep -> rep.Engine.r_target
      | Error m -> Alcotest.failf "engine laconic: %s" m
  in
  Alcotest.(check bool) "laconic targets ≡hom" true
    (Equiv.equivalent (lrun true) (lrun false))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "shards",
      [
        q prop_intern_roundtrip;
        q prop_intern_rows;
        Alcotest.test_case "intern null arithmetic" `Quick test_intern_nulls;
        Alcotest.test_case "colstore invariant across shard counts" `Quick
          test_colstore_shard_invariant;
        Alcotest.test_case "colstore adopts a flat arena" `Quick
          test_colstore_of_flat;
        Alcotest.test_case "engine matrix: shards {1,3,4,7} × domains {1,4}"
          `Quick test_engine_shard_matrix;
        Alcotest.test_case "interned engine tracks the boxed reference" `Quick
          test_boxed_differential;
      ] );
  ]
