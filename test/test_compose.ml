(* Tests for Smg_compose: FKPT composition of s-t tgd sets, the
   quasi-inverse, and multi-hop pipelines. Fixtures exercise the
   resolution engine (drop rule, residual second-order clauses, budget
   exhaustion); qcheck properties check that exchanging with the
   composed mapping is hom-equivalent to exchanging hop by hop — over a
   fixed two-hop mapping with random sources, and over round-trip
   chains (benchmark mapping followed by its quasi-inverse) for all
   seven built-in evaluation domains. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase
module Sotgd = Smg_cq.Sotgd
module Mapping = Smg_cq.Mapping
module Budget = Smg_robust.Budget
module Mapverify = Smg_verify.Mapverify
module Compose = Smg_compose.Compose
module Invert = Smg_compose.Invert
module Pipeline = Smg_compose.Pipeline
module Scenario = Smg_eval.Scenario
module Datasets = Smg_eval.Datasets
module Witness = Smg_eval.Witness

let v = Atom.v
let a = Atom.atom
let vs s = Value.VString s

let tgd = Dependency.tgd

(* ---- Skolem codec ------------------------------------------------------ *)

let test_skolem_codec_roundtrip () =
  let cases =
    [
      ("f", []);
      ("f", [ "x" ]);
      ("sk3_z", [ "x"; "y" ]);
      ("weird!fn", [ "a,b"; "c\\d" ]);
      ("f", [ "sk!g!x"; "y" ]);
      (* nested application riding as an argument *)
      ("f", [ Chase.skolem_var ~f:"g" ~args:[ "x"; "=i42" ] ]);
    ]
  in
  List.iter
    (fun (f, args) ->
      match Chase.parse_skolem_var (Chase.skolem_var ~f ~args) with
      | Some (f', args') ->
          Alcotest.(check string) "function survives" f f';
          Alcotest.(check (list string)) "arguments survive" args args'
      | None -> Alcotest.fail "skolem var did not parse back")
    cases

let test_skolem_arg_codec () =
  let cases =
    [
      Chase.Sk_var "x";
      Chase.Sk_cst (Value.VInt 42);
      Chase.Sk_cst (vs "hello, world!");
      Chase.Sk_cst (Value.VFloat 3.25);
      Chase.Sk_cst (Value.VBool true);
    ]
  in
  List.iter
    (fun arg ->
      let got = Chase.decode_skolem_arg (Chase.encode_skolem_arg arg) in
      Alcotest.(check bool) "argument round-trips" true (got = arg))
    cases

(* ---- unification ------------------------------------------------------- *)

let tv x = Sotgd.TVar x
let tapp f args = Sotgd.TApp (f, args)

let test_unify_basic () =
  match Sotgd.unify Sotgd.subst_empty (tapp "f" [ tv "x"; tapp "g" [ tv "y" ] ])
          (tapp "f" [ Sotgd.TCst (Value.VInt 1); tv "z" ])
  with
  | None -> Alcotest.fail "unifiable terms did not unify"
  | Some s ->
      Alcotest.(check bool) "x bound to 1" true
        (Sotgd.apply_term s (tv "x") = Sotgd.TCst (Value.VInt 1));
      Alcotest.(check bool) "z bound to g(y)" true
        (Sotgd.apply_term s (tv "z") = tapp "g" [ tv "y" ])

let test_unify_occurs_check () =
  Alcotest.(check bool) "x against f(x) fails" true
    (Sotgd.unify Sotgd.subst_empty (tv "x") (tapp "f" [ tv "x" ]) = None);
  Alcotest.(check bool) "function clash fails" true
    (Sotgd.unify Sotgd.subst_empty (tapp "f" [ tv "x" ]) (tapp "g" [ tv "x" ])
    = None)

(* ---- Skolemization and de-Skolemization -------------------------------- *)

let test_skolemize_deskolemize () =
  let t =
    tgd ~name:"m"
      ~lhs:[ a "p" [ v "x"; v "y" ] ]
      [ a "q" [ v "x"; v "z" ] ]
  in
  match Sotgd.skolemize_set [ t ] with
  | [ so ] -> (
      Alcotest.(check int) "one function invented" 1
        (List.length (Sotgd.functions so));
      let { Sotgd.ds_plain; ds_residual } = Sotgd.deskolemize [ so ] in
      Alcotest.(check int) "no residual" 0 (List.length ds_residual);
      match ds_plain with
      | [ t' ] ->
          Alcotest.(check bool) "plain form is the original tgd" true
            (Dependency.equal_tgd t t')
      | _ -> Alcotest.fail "expected one plain tgd")
  | _ -> Alcotest.fail "expected one clause"

let test_deskolemize_shared_function_residual () =
  (* z is shared between the two conclusion atoms: after Skolemization
     both carry f(x), and splitting them into two clauses makes the
     function shared — neither clause may be lowered to a plain ∃,
     because that would forget the atoms agree on the null. *)
  let clause rhs_pred =
    {
      Sotgd.so_name = "c_" ^ rhs_pred;
      so_lhs = [ a "p" [ v "x" ] ];
      so_rhs =
        [ { Sotgd.s_pred = rhs_pred; s_args = [ tv "x"; tapp "f" [ tv "x" ] ] } ];
    }
  in
  let { Sotgd.ds_plain; ds_residual } =
    Sotgd.deskolemize [ clause "q"; clause "r" ]
  in
  Alcotest.(check int) "no plain clauses" 0 (List.length ds_plain);
  Alcotest.(check int) "both clauses residual" 2 (List.length ds_residual)

(* ---- binary composition fixtures --------------------------------------- *)

let test_compose_simple () =
  (* p(x,y) → ∃z q(x,z) composed with q(u,v) → r(u,v):
     p(x,y) → ∃z r(x,z), recovered as a plain tgd. *)
  let m12 =
    [ tgd ~name:"m12" ~lhs:[ a "p" [ v "x"; v "y" ] ] [ a "q" [ v "x"; v "z" ] ] ]
  in
  let m23 =
    [ tgd ~name:"m23" ~lhs:[ a "q" [ v "u"; v "v" ] ] [ a "r" [ v "u"; v "v" ] ] ]
  in
  let r = Compose.compose ~m12 ~m23 () in
  Alcotest.(check bool) "exact" true r.Compose.c_exact;
  Alcotest.(check int) "one clause" 1 (List.length r.Compose.c_clauses);
  Alcotest.(check int) "no residual" 0 (List.length r.Compose.c_residual);
  match r.Compose.c_plain with
  | [ t ] ->
      Alcotest.(check int) "one existential" 1
        (List.length (Dependency.existential_vars t));
      Alcotest.(check bool) "conclusion is r" true
        (List.for_all
           (fun (at : Atom.t) -> at.Atom.pred = "r")
           t.Dependency.rhs)
  | _ -> Alcotest.fail "expected one plain tgd"

let test_compose_drop_rule () =
  (* Joining q's second column against q's first column forces a hop-1
     premise variable onto a Skolem application in some branches; those
     are unsatisfiable over ground sources and must be dropped, while
     the t1;t2 branch survives. *)
  let m12 =
    [
      tgd ~name:"t1" ~lhs:[ a "p" [ v "x" ] ] [ a "q" [ v "x"; v "z" ] ];
      tgd ~name:"t2" ~lhs:[ a "s" [ v "y" ] ] [ a "q" [ v "w"; v "y" ] ];
    ]
  in
  let m23 =
    [
      tgd ~name:"chain"
        ~lhs:[ a "q" [ v "a"; v "b" ]; a "q" [ v "b"; v "c" ] ]
        [ a "r" [ v "a"; v "c" ] ];
    ]
  in
  let r = Compose.compose ~m12 ~m23 () in
  Alcotest.(check bool) "exact" true r.Compose.c_exact;
  Alcotest.(check bool) "some branches dropped" true (r.Compose.c_dropped > 0);
  Alcotest.(check bool) "a surviving clause exists" true
    (r.Compose.c_clauses <> []);
  List.iter
    (fun (t : Dependency.tgd) ->
      List.iter
        (fun (at : Atom.t) ->
          Alcotest.(check bool) "premises read hop-1 source tables" true
            (List.mem at.Atom.pred [ "p"; "s" ]))
        t.Dependency.lhs)
    r.Compose.c_exec

let test_compose_residual_execution () =
  (* The shared-null mapping: p(x) → ∃z q(x,z) ∧ t(x,z), with hop 2
     copying q and t through separate clauses. The composition splits
     the shared Skolem term across two clauses — genuinely second-order
     — and executing [c_exec] must still merge the two copies on the
     same null. *)
  let m12 =
    [
      tgd ~name:"m" ~lhs:[ a "p" [ v "x" ] ]
        [ a "q" [ v "x"; v "z" ]; a "t" [ v "x"; v "z" ] ];
    ]
  in
  let m23 =
    [
      tgd ~name:"cq" ~lhs:[ a "q" [ v "u"; v "w" ] ] [ a "q2" [ v "u"; v "w" ] ];
      tgd ~name:"ct" ~lhs:[ a "t" [ v "u"; v "w" ] ] [ a "t2" [ v "u"; v "w" ] ];
    ]
  in
  let r = Compose.compose ~m12 ~m23 () in
  Alcotest.(check int) "both clauses residual" 2
    (List.length r.Compose.c_residual);
  Alcotest.(check int) "no plain clause" 0 (List.length r.Compose.c_plain);
  (* execute on p(1): q2 and t2 must share one labelled null *)
  let source = Schema.make ~name:"A" [ Schema.table "p" [ ("x", Schema.TString) ] ] [] in
  let target =
    Schema.make ~name:"C"
      [
        Schema.table "q2" [ ("x", Schema.TString); ("z", Schema.TString) ];
        Schema.table "t2" [ ("x", Schema.TString); ("z", Schema.TString) ];
      ]
      []
  in
  let inst = Instance.add_tuple Instance.empty "p" ~header:[ "x" ] [| vs "1" |] in
  match
    Pipeline.one_shot ~source ~target ~exec:r.Compose.c_exec inst
  with
  | Error _ -> Alcotest.fail "one-shot execution failed"
  | Ok out -> (
      let cell pred =
        match Instance.relation out pred with
        | Some { Instance.tuples = [ tup ]; _ } -> tup.(1)
        | _ -> Alcotest.fail ("expected exactly one " ^ pred ^ " tuple")
      in
      match (cell "q2", cell "t2") with
      | (Value.VNull _ as n1), n2 ->
          Alcotest.(check bool) "q2 and t2 share the invented value" true
            (Value.equal n1 n2)
      | _ -> Alcotest.fail "expected a labelled null in q2")

let test_compose_budget_exhaustion () =
  let m12 =
    [ tgd ~name:"m12" ~lhs:[ a "p" [ v "x"; v "y" ] ] [ a "q" [ v "x"; v "z" ] ] ]
  in
  let m23 =
    [ tgd ~name:"m23" ~lhs:[ a "q" [ v "u"; v "v" ] ] [ a "r" [ v "u"; v "v" ] ] ]
  in
  let budget = Budget.create ~fuel:0 ~interval:1 () in
  let r = Compose.compose ~budget ~m12 ~m23 () in
  Alcotest.(check bool) "inexact under exhausted budget" false
    r.Compose.c_exact;
  Alcotest.(check bool) "budget reason recorded" true
    (r.Compose.c_budget <> None)

(* ---- quasi-inverse ----------------------------------------------------- *)

let test_reverse_involution () =
  let t =
    tgd ~name:"m"
      ~lhs:[ a "p" [ v "x"; v "y" ] ]
      [ a "q" [ v "x"; v "z" ] ]
  in
  let back = Invert.reverse_tgd (Invert.reverse_tgd t) in
  Alcotest.(check bool) "reverse is an involution up to renaming" true
    (Dependency.equal_tgd t back)

let test_prime_schema () =
  let s =
    Schema.make ~name:"A"
      [ Schema.table ~key:[ "x" ] "p" [ ("x", Schema.TString) ] ]
      []
  in
  let s' = Invert.prime_schema ~suffix:"_p" s in
  Alcotest.(check (list string)) "tables renamed" [ "p_p" ]
    (List.map (fun tb -> tb.Schema.tbl_name) s'.Schema.tables)

(* ---- fixed two-hop property -------------------------------------------- *)

let psource =
  Schema.make ~name:"A"
    [
      Schema.table "r" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "u" [ ("b", Schema.TString) ];
    ]
    []

let pmid =
  Schema.make ~name:"B"
    [
      Schema.table "s" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "t" [ ("b", Schema.TString); ("c", Schema.TString) ];
    ]
    []

let ptarget =
  Schema.make ~name:"C"
    [
      Schema.table "w" [ ("a", Schema.TString); ("c", Schema.TString) ];
      Schema.table "k" [ ("c", Schema.TString); ("d", Schema.TString) ];
    ]
    []

let pm12 =
  [
    tgd ~name:"m1" ~lhs:[ a "r" [ v "x"; v "y" ] ] [ a "s" [ v "x"; v "y" ] ];
    tgd ~name:"m2" ~lhs:[ a "u" [ v "y" ] ] [ a "t" [ v "y"; v "z" ] ];
  ]

let pm23 =
  [
    tgd ~name:"n1"
      ~lhs:[ a "s" [ v "x"; v "y" ]; a "t" [ v "y"; v "c" ] ]
      [ a "w" [ v "x"; v "c" ] ];
    tgd ~name:"n2" ~lhs:[ a "t" [ v "y"; v "c" ] ] [ a "k" [ v "c"; v "d" ] ];
  ]

let phops =
  [
    { Pipeline.h_source = psource; h_target = pmid; h_tgds = pm12 };
    { Pipeline.h_source = pmid; h_target = ptarget; h_tgds = pm23 };
  ]

let inst_of (rs, us) =
  let i =
    List.fold_left
      (fun i (x, y) ->
        Instance.add_tuple i "r" ~header:[ "a"; "b" ] [| vs x; vs y |])
      Instance.empty rs
  in
  List.fold_left
    (fun i y -> Instance.add_tuple i "u" ~header:[ "b" ] [| vs y |])
    i us

let arb_src =
  let open QCheck in
  let pool = Gen.oneofl [ "p"; "q"; "w"; "z" ] in
  let gen =
    Gen.pair
      (Gen.list_size (Gen.int_bound 6) (Gen.pair pool pool))
      (Gen.list_size (Gen.int_bound 6) pool)
  in
  make ~print:Print.(pair (list (pair string string)) (list string)) gen

let pcomposed = lazy (Pipeline.compose_chain phops)

let prop_composed_equiv_sequential =
  QCheck.Test.make ~name:"composed one-shot ≡hom sequential two-hop"
    ~count:60 arb_src (fun src ->
      let r = Lazy.force pcomposed in
      match Pipeline.verify phops ~exec:r.Compose.c_exec (inst_of src) with
      | Ok vd -> vd.Pipeline.vd_equiv
      | Error _ -> QCheck.Test.fail_report "pipeline execution failed")

(* ---- seven-domain round-trip chains ------------------------------------ *)

let scenario_tgds (scen : Scenario.t) =
  List.concat_map
    (fun (c : Scenario.case) -> List.map Mapping.to_tgd c.Scenario.benchmark)
    scen.Scenario.cases

(* Chain each domain's benchmark mapping S → T with its quasi-inverse
   T → S′ (a primed copy of the source schema), so every domain yields
   a genuine two-hop pipeline without hand-writing second hops. *)
let domain_chain (scen : Scenario.t) =
  let source = scen.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Scenario.target.Smg_core.Discover.schema in
  let m12 = scenario_tgds scen in
  let primed = Invert.prime_schema ~suffix:"_rt" source in
  let m23 = Invert.quasi_inverse ~prime:"_rt" m12 in
  [
    { Pipeline.h_source = source; h_target = target; h_tgds = m12 };
    { Pipeline.h_source = target; h_target = primed; h_tgds = m23 };
  ]

let check_domain_roundtrip (scen : Scenario.t) () =
  let hops = domain_chain scen in
  Alcotest.(check (list string)) "hops are compatible" [] (Pipeline.check hops);
  let r = Pipeline.compose_chain ~max_clauses:1024 hops in
  Alcotest.(check bool) (scen.Scenario.scen_name ^ ": composition exact") true
    r.Compose.c_exact;
  let inst =
    Witness.populate ~rows_per_table:3 ~seed:7
      (List.hd hops).Pipeline.h_source
  in
  match Pipeline.verify hops ~exec:r.Compose.c_exec inst with
  | Ok vd ->
      Alcotest.(check bool)
        (scen.Scenario.scen_name ^ ": composed ≡hom sequential")
        true vd.Pipeline.vd_equiv
  | Error (Pipeline.Failed msg) -> Alcotest.fail ("pipeline failed: " ^ msg)
  | Error (Pipeline.Exhausted _) -> Alcotest.fail "pipeline exhausted budget"

(* invert(invert(M)) ⊑ M: double reversal returns each tgd up to
   renaming, so the original set must logically imply it. *)
let check_domain_inverse_sanity (scen : Scenario.t) () =
  let source = scen.Scenario.source.Smg_core.Discover.schema in
  let target = scen.Scenario.target.Smg_core.Discover.schema in
  let m = scenario_tgds scen in
  let back = Invert.quasi_inverse (Invert.quasi_inverse m) in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (scen.Scenario.scen_name ^ ": " ^ t.Dependency.tgd_name
       ^ " implied by original")
        true
        (Mapverify.tgd_implied_by ~source ~target ~by:m t))
    back

let domain_tests =
  List.concat_map
    (fun (scen : Scenario.t) ->
      [
        Alcotest.test_case
          (scen.Scenario.scen_name ^ " round-trip chain")
          `Quick
          (check_domain_roundtrip scen);
        Alcotest.test_case
          (scen.Scenario.scen_name ^ " invert∘invert ⊑ id")
          `Quick
          (check_domain_inverse_sanity scen);
      ])
    (Datasets.all ())

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "compose codec",
      [
        Alcotest.test_case "skolem var round-trip" `Quick
          test_skolem_codec_roundtrip;
        Alcotest.test_case "skolem arg round-trip" `Quick test_skolem_arg_codec;
        Alcotest.test_case "unify" `Quick test_unify_basic;
        Alcotest.test_case "occurs check" `Quick test_unify_occurs_check;
        Alcotest.test_case "skolemize/deskolemize" `Quick
          test_skolemize_deskolemize;
        Alcotest.test_case "shared function residual" `Quick
          test_deskolemize_shared_function_residual;
      ] );
    ( "compose binary",
      [
        Alcotest.test_case "simple" `Quick test_compose_simple;
        Alcotest.test_case "drop rule" `Quick test_compose_drop_rule;
        Alcotest.test_case "residual execution" `Quick
          test_compose_residual_execution;
        Alcotest.test_case "budget exhaustion" `Quick
          test_compose_budget_exhaustion;
        q prop_composed_equiv_sequential;
      ] );
    ( "compose invert",
      [
        Alcotest.test_case "reverse involution" `Quick test_reverse_involution;
        Alcotest.test_case "prime schema" `Quick test_prime_schema;
      ] );
    ("compose domains", domain_tests);
  ]
