(* Tests for Smg_verify: the fail-first homomorphism engine, CQ
   containment/equivalence/minimization over canonical instances,
   chase-based mapping implication and dedup, and core computation —
   hand-checked fixtures plus qcheck properties. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Dependency = Smg_cq.Dependency
module Mapping = Smg_cq.Mapping
module Hom = Smg_verify.Hom
module Contain = Smg_verify.Contain
module Mapverify = Smg_verify.Mapverify
module Icore = Smg_verify.Icore

let v = Atom.v
let a = Atom.atom
let q ?name ~head body = Query.make ?name ~head body

(* ---- homomorphism engine ----- *)

let fact p xs = a p (List.map Atom.str xs)

let test_hom_find () =
  let subst = Hom.find ~rigid:[ fact "r" [ "a"; "b" ] ] [ a "r" [ v "x"; v "y" ] ] in
  match subst with
  | None -> Alcotest.fail "expected a homomorphism"
  | Some s ->
      Alcotest.(check bool) "x -> a" true
        (Atom.Subst.find s "x" = Some (Atom.str "a"));
      Alcotest.(check bool) "y -> b" true
        (Atom.Subst.find s "y" = Some (Atom.str "b"))

let test_hom_all_count () =
  let homs =
    Hom.all
      ~rigid:[ fact "r" [ "a"; "b" ]; fact "r" [ "a"; "c" ] ]
      [ a "r" [ v "x"; v "y" ] ]
  in
  Alcotest.(check int) "two images" 2 (List.length homs)

let test_hom_limit () =
  let homs =
    Hom.all ~limit:1
      ~rigid:[ fact "r" [ "a"; "b" ]; fact "r" [ "a"; "c" ] ]
      [ a "r" [ v "x"; v "y" ] ]
  in
  Alcotest.(check int) "limit respected" 1 (List.length homs)

let test_hom_forward_check () =
  (* s(y) has no image at all: the search must fail, not enumerate r's *)
  Alcotest.(check bool) "no homomorphism" false
    (Hom.holds
       ~rigid:[ fact "r" [ "a"; "b" ] ]
       [ a "r" [ v "x"; v "y" ]; a "s" [ v "y" ] ])

let test_hom_init_pins () =
  let init = Atom.Subst.of_list [ ("x", Atom.str "z") ] in
  Alcotest.(check bool) "pre-binding blocks" false
    (Hom.holds ~init ~rigid:[ fact "r" [ "a"; "b" ] ] [ a "r" [ v "x"; v "y" ] ]);
  Alcotest.(check bool) "pre-binding satisfiable" true
    (Hom.holds ~init
       ~rigid:[ fact "r" [ "a"; "b" ]; fact "r" [ "z"; "b" ] ]
       [ a "r" [ v "x"; v "y" ] ])

let test_hom_shared_var_join () =
  (* r(x,y), r(y,z): y must take the same value in both atoms *)
  Alcotest.(check bool) "join respected" true
    (Hom.holds
       ~rigid:[ fact "r" [ "a"; "b" ]; fact "r" [ "b"; "c" ] ]
       [ a "r" [ v "x"; v "y" ]; a "r" [ v "y"; v "z" ] ]);
  Alcotest.(check bool) "broken join rejected" false
    (Hom.holds
       ~rigid:[ fact "r" [ "a"; "b" ]; fact "r" [ "c"; "d" ] ]
       [ a "r" [ v "x"; v "y" ]; a "r" [ v "y"; v "z" ] ])

(* ---- containment / equivalence / minimization ----- *)

(* q1(x) :- r(x,y), r(y,z)   q2(x) :- r(x,y)   q1 ⊆ q2 *)
let q_path = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ]; a "r" [ v "y"; v "z" ] ]
let q_edge = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ] ]

let test_containment_basic () =
  Alcotest.(check bool) "path ⊆ edge" true (Contain.contained_in q_path q_edge);
  Alcotest.(check bool) "edge ⊄ path" false (Contain.contained_in q_edge q_path)

let test_containment_heads () =
  let qa = q ~head:[ v "x"; v "y" ] [ a "r" [ v "x"; v "y" ] ] in
  let qb = q ~head:[ v "y"; v "x" ] [ a "r" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "swapped heads differ" false (Contain.contained_in qa qb)

let test_containment_constants () =
  let qc = q ~head:[ v "x" ] [ a "r" [ v "x"; Atom.str "fixed" ] ] in
  Alcotest.(check bool) "constant query ⊆ general" true
    (Contain.contained_in qc q_edge);
  Alcotest.(check bool) "general ⊄ constant" false
    (Contain.contained_in q_edge qc)

let test_equivalence_alpha () =
  let qa = q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ] ] in
  let qb = q ~head:[ v "u" ] [ a "r" [ v "u"; v "w" ] ] in
  Alcotest.(check bool) "alpha-equivalent" true (Contain.equivalent qa qb);
  Alcotest.(check bool) "inequivalent" false (Contain.equivalent qa q_path)

let test_minimize_folds () =
  let qq =
    q ~head:[ v "x" ] [ a "r" [ v "x"; v "y" ]; a "r" [ v "x"; v "z" ] ]
  in
  let m = Contain.minimize qq in
  Alcotest.(check int) "one atom after minimization" 1 (List.length m.Query.body);
  Alcotest.(check bool) "still equivalent" true (Contain.equivalent m qq);
  Alcotest.(check bool) "result minimal" true (Contain.is_minimal m)

let test_minimize_keeps_core () =
  let m = Contain.minimize q_path in
  Alcotest.(check int) "path query is its own core" 2 (List.length m.Query.body);
  Alcotest.(check bool) "already minimal" true (Contain.is_minimal q_path)

(* ---- mapping implication, dedup ----- *)

let src_schema =
  Schema.make ~name:"src"
    [ Schema.table "s" [ ("a", Schema.TString); ("b", Schema.TString) ] ]
    []

(* the target deliberately reuses the source's table name [s]: implication
   must namespace the sides apart (the Mondial pair does this for real) *)
let tgt_schema =
  Schema.make ~name:"tgt"
    [
      Schema.table "t" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "s" [ ("a", Schema.TString) ];
    ]
    []

(* copy: s(x,y) -> t(x,y);  weak: s(x,y) -> ∃w t(x,w) *)
let tgd_copy =
  Dependency.tgd ~name:"copy"
    ~lhs:[ a "s" [ v "x"; v "y" ] ]
    [ a "t" [ v "x"; v "y" ] ]

let tgd_weak =
  Dependency.tgd ~name:"weak"
    ~lhs:[ a "s" [ v "x"; v "y" ] ]
    [ a "t" [ v "x"; v "w" ] ]

let implied t ~by =
  Mapverify.tgd_implied_by ~source:src_schema ~target:tgt_schema ~by t

let test_tgd_implication () =
  Alcotest.(check bool) "copy implies weak" true (implied tgd_weak ~by:[ tgd_copy ]);
  Alcotest.(check bool) "weak does not imply copy" false
    (implied tgd_copy ~by:[ tgd_weak ]);
  Alcotest.(check bool) "self-implication" true (implied tgd_copy ~by:[ tgd_copy ])

let test_tgd_implication_shared_names () =
  (* lhs and rhs both mention a table called [s]; without namespacing the
     chase would conflate them (or refuse the combined schema) *)
  let t =
    Dependency.tgd ~name:"shared"
      ~lhs:[ a "s" [ v "x"; v "y" ] ]
      [ a "s" [ v "x" ] ]
  in
  Alcotest.(check bool) "distinct sides" true (implied t ~by:[ t ]);
  Alcotest.(check bool) "copy does not give target s" false
    (implied t ~by:[ tgd_copy ])

let test_chase_canonical_has_nulls () =
  match
    Mapverify.chase_canonical ~source:src_schema ~target:tgt_schema
      ~by:[ tgd_weak ] tgd_weak
  with
  | None -> Alcotest.fail "chase failed"
  | Some out ->
      Alcotest.(check bool) "existential became a labelled null" true
        (List.exists
           (fun name ->
             match Instance.relation out name with
             | Some r ->
                 List.exists (fun tup -> Array.exists Value.is_null tup) r.Instance.tuples
             | None -> false)
           (Instance.names out))

let mapping name score ~covered ~src ~tgt =
  Mapping.rename name
    (Mapping.make ~score ~src_query:src ~tgt_query:tgt ~covered ())

let corr_a = Mapping.corr ~src:("s", "a") ~tgt:("t", "a")
let corr_b = Mapping.corr ~src:("s", "b") ~tgt:("t", "b")

let m_copy =
  mapping "m-copy" 0.1 ~covered:[ corr_a; corr_b ]
    ~src:(q ~head:[ v "x"; v "y" ] [ a "s" [ v "x"; v "y" ] ])
    ~tgt:(q ~head:[ v "x"; v "y" ] [ a "t" [ v "x"; v "y" ] ])

(* alpha-renamed copy: same logical content, worse score *)
let m_copy' =
  mapping "m-copy-renamed" 0.2 ~covered:[ corr_a; corr_b ]
    ~src:(q ~head:[ v "u"; v "w" ] [ a "s" [ v "u"; v "w" ] ])
    ~tgt:(q ~head:[ v "u"; v "w" ] [ a "t" [ v "u"; v "w" ] ])

(* projection: strictly weaker than copy *)
let m_weak =
  mapping "m-weak" 0.3 ~covered:[ corr_a ]
    ~src:(q ~head:[ v "x" ] [ a "s" [ v "x"; v "y" ] ])
    ~tgt:(q ~head:[ v "x" ] [ a "t" [ v "x"; v "w" ] ])

let test_mapping_implies () =
  let implies = Mapverify.implies ~source:src_schema ~target:tgt_schema in
  Alcotest.(check bool) "copy implies projection" true (implies m_copy m_weak);
  Alcotest.(check bool) "projection does not imply copy" false
    (implies m_weak m_copy);
  Alcotest.(check bool) "alpha-variants equivalent" true
    (Mapverify.equivalent ~source:src_schema ~target:tgt_schema m_copy m_copy')

let test_dedup_report () =
  let r =
    Mapverify.dedup ~source:src_schema ~target:tgt_schema
      [ m_copy; m_copy'; m_weak ]
  in
  Alcotest.(check int) "3 in" 3 r.Mapverify.rp_in;
  Alcotest.(check int) "2 classes" 2 (Mapverify.n_classes r);
  Alcotest.(check int) "1 collapsed" 1 (Mapverify.n_collapsed r);
  Alcotest.(check int) "1 subsumed" 1 (Mapverify.n_subsumed r);
  match r.Mapverify.rp_kept with
  | [ first; second ] ->
      Alcotest.(check string) "best survives first" "m-copy"
        first.Mapping.m_name;
      Alcotest.(check bool) "absorption recorded" true
        (List.exists
           (fun note -> String.length note > 0 && note.[0] = 'd')
           first.Mapping.provenance);
      Alcotest.(check string) "subsumed survivor kept" "m-weak"
        second.Mapping.m_name
  | kept ->
      Alcotest.failf "expected 2 kept, got %d" (List.length kept)

(* ---- core computation ----- *)

let inst_of_tuples tuples =
  List.fold_left
    (fun i tup -> Instance.add_tuple i "r" ~header:[ "a"; "b" ] tup)
    Instance.empty tuples

let vi n = Value.VInt n
let vn k = Value.VNull k

let test_core_folds_redundant_null () =
  (* (1,2) and (1,N0): N0 folds onto 2 *)
  let i = inst_of_tuples [ [| vi 1; vi 2 |]; [| vi 1; vn 0 |] ] in
  let c = Icore.core i in
  Alcotest.(check int) "one tuple left" 1 (Instance.total_tuples c);
  Alcotest.(check bool) "ground tuple kept" true
    (match Instance.relation c "r" with
    | Some r -> Instance.mem_tuple r [| vi 1; vi 2 |]
    | None -> false);
  Alcotest.(check bool) "result is a core" true (Icore.is_core c)

let test_core_keeps_needed_null () =
  (* (1,N0) alone: nothing to fold onto *)
  let i = inst_of_tuples [ [| vi 1; vn 0 |] ] in
  let c = Icore.core i in
  Alcotest.(check bool) "unchanged" true (Instance.equal i c);
  Alcotest.(check bool) "is core" true (Icore.is_core i)

let test_core_chain () =
  (* (1,N0),(N0,N1),(1,2),(2,3): the null chain retracts onto the
     ground path *)
  let i =
    inst_of_tuples
      [ [| vi 1; vn 0 |]; [| vn 0; vn 1 |]; [| vi 1; vi 2 |]; [| vi 2; vi 3 |] ]
  in
  let c = Icore.core i in
  Alcotest.(check int) "only the ground path remains" 2
    (Instance.total_tuples c);
  Alcotest.(check bool) "no nulls left" true
    (match Instance.relation c "r" with
    | Some r ->
        List.for_all
          (fun tup -> not (Array.exists Value.is_null tup))
          r.Instance.tuples
    | None -> false)

let test_core_of_chase () =
  (* chase s(x,y) with s(x,y) -> ∃w1 w2. t(x,w1), t(x,w2): the canonical
     solution has two interchangeable nulls; its core has one tuple *)
  let redundant =
    Dependency.tgd ~name:"redundant"
      ~lhs:[ a "s" [ v "x"; v "y" ] ]
      [ a "t" [ v "x"; v "w1" ]; a "t" [ v "x"; v "w2" ] ]
  in
  match
    Mapverify.chase_canonical ~source:src_schema ~target:tgt_schema
      ~by:[ redundant ] redundant
  with
  | None -> Alcotest.fail "chase failed"
  | Some out ->
      let tgt_tuples inst =
        List.fold_left
          (fun acc name ->
            if String.length name > 0 && name.[0] = 't' then
              acc + Instance.cardinality inst name
            else acc)
          0 (Instance.names inst)
      in
      Alcotest.(check int) "chase produced both variants" 2 (tgt_tuples out);
      let c = Icore.core out in
      Alcotest.(check int) "core folded them to one" 1 (tgt_tuples c);
      Alcotest.(check bool) "idempotent here" true
        (Instance.equal c (Icore.core c))

(* ---- qcheck properties ----- *)

(* random safe CQs over r/2, s/2: args drawn from a small variable pool
   (plus an occasional constant), head = up to two body variables *)
let gen_query =
  QCheck.Gen.(
    let var = map (Printf.sprintf "x%d") (int_range 0 3) in
    let term =
      frequency [ (5, map Atom.v var); (1, map Atom.str (oneofl [ "c"; "d" ])) ]
    in
    let atom =
      let* p = oneofl [ "r"; "s" ] in
      let* t1 = map Atom.v var in
      let* t2 = term in
      return (a p [ t1; t2 ])
    in
    let* body = list_size (int_range 1 4) atom in
    let bv = Atom.vars_of_list body in
    let* n_head = int_range 1 (min 2 (List.length bv)) in
    let head = List.filteri (fun i _ -> i < n_head) bv |> List.map Atom.v in
    return (q ~head body))

let gen_extension body =
  QCheck.Gen.(
    let var =
      oneofl
        (match Atom.vars_of_list body with [] -> [ "x0" ] | vs -> vs)
    in
    let atom =
      let* p = oneofl [ "r"; "s" ] in
      let* t1 = map Atom.v var in
      let* t2 = map Atom.v var in
      return (a p [ t1; t2 ])
    in
    list_size (int_range 0 2) atom)

let arb_query = QCheck.make gen_query ~print:(Fmt.str "%a" Query.pp)

let arb_query_chain =
  (* q3 ⊆ q2 ⊆ q1 by construction: each extends the previous body *)
  let gen =
    QCheck.Gen.(
      let* q1 = gen_query in
      let* e1 = gen_extension q1.Query.body in
      let q2 = { q1 with Query.body = q1.Query.body @ e1 } in
      let* e2 = gen_extension q2.Query.body in
      let q3 = { q2 with Query.body = q2.Query.body @ e2 } in
      return (q1, q2, q3))
  in
  QCheck.make gen ~print:(fun (q1, q2, q3) ->
      Fmt.str "%a@.%a@.%a" Query.pp q1 Query.pp q2 Query.pp q3)

let prop_containment_reflexive =
  QCheck.Test.make ~name:"containment is reflexive" ~count:100 arb_query
    (fun qq -> Contain.contained_in qq qq)

let prop_containment_transitive =
  QCheck.Test.make ~name:"containment is transitive along extension chains"
    ~count:100 arb_query_chain (fun (q1, q2, q3) ->
      (* the chain is contained by construction; transitivity closes it *)
      Contain.contained_in q3 q2
      && Contain.contained_in q2 q1
      && Contain.contained_in q3 q1)

let prop_equivalence_symmetric =
  QCheck.Test.make ~name:"equivalence is symmetric" ~count:60
    (QCheck.pair arb_query arb_query) (fun (qa, qb) ->
      Contain.equivalent qa qb = Contain.equivalent qb qa)

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimize q is equivalent to q and minimal"
    ~count:60 arb_query (fun qq ->
      let m = Contain.minimize qq in
      Contain.equivalent m qq && Contain.is_minimal m)

(* random instances over r/2 with a small pool of constants and nulls *)
let gen_instance =
  QCheck.Gen.(
    let value =
      frequency
        [
          (2, map (fun i -> Value.VInt i) (int_range 0 2));
          (1, map (fun k -> Value.VNull k) (int_range 0 2));
        ]
    in
    let* tuples = list_size (int_range 0 6) (pair value value) in
    return
      (List.fold_left
         (fun i (x, y) ->
           Instance.add_tuple i "r" ~header:[ "a"; "b" ] [| x; y |])
         Instance.empty tuples))

let arb_instance = QCheck.make gen_instance ~print:(Fmt.str "%a" Instance.pp)

let prop_core_idempotent =
  QCheck.Test.make ~name:"core is idempotent" ~count:100 arb_instance
    (fun i ->
      let c = Icore.core i in
      Icore.is_core c && Instance.equal (Icore.core c) c)

let prop_core_shrinks =
  QCheck.Test.make ~name:"core never grows the instance" ~count:100
    arb_instance (fun i ->
      Instance.total_tuples (Icore.core i) <= Instance.total_tuples i)

(* ---- suite ----- *)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  let p = QCheck_alcotest.to_alcotest in
  [
    ( "verify-hom",
      [
        t "find binds" test_hom_find;
        t "all counts" test_hom_all_count;
        t "limit" test_hom_limit;
        t "forward check" test_hom_forward_check;
        t "init pins" test_hom_init_pins;
        t "shared-variable join" test_hom_shared_var_join;
      ] );
    ( "verify-contain",
      [
        t "basic containment" test_containment_basic;
        t "heads respected" test_containment_heads;
        t "constants" test_containment_constants;
        t "alpha equivalence" test_equivalence_alpha;
        t "minimize folds" test_minimize_folds;
        t "minimize keeps core" test_minimize_keeps_core;
      ] );
    ( "verify-mapping",
      [
        t "tgd implication" test_tgd_implication;
        t "shared table names" test_tgd_implication_shared_names;
        t "canonical chase has nulls" test_chase_canonical_has_nulls;
        t "mapping implication" test_mapping_implies;
        t "dedup report" test_dedup_report;
      ] );
    ( "verify-core",
      [
        t "folds redundant null" test_core_folds_redundant_null;
        t "keeps needed null" test_core_keeps_needed_null;
        t "null chain retracts" test_core_chain;
        t "core of chase" test_core_of_chase;
      ] );
    ( "verify-props",
      [
        p prop_containment_reflexive;
        p prop_containment_transitive;
        p prop_equivalence_symmetric;
        p prop_minimize_equivalent;
        p prop_core_idempotent;
        p prop_core_shrinks;
      ] );
  ]
