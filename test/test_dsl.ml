(* Tests for the scenario DSL: lexer, parser, printer round-trips. *)

module Lexer = Smg_dsl.Lexer
module Parser = Smg_dsl.Parser
module Printer = Smg_dsl.Printer
module Ast = Smg_dsl.Ast
module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml

let sample =
  {|
# a comment
schema s {
  table person {
    col pname : string;
    col age : int;
    key (pname);
  }
  ric r1 : person(age) -> person(age);
}

cm c {
  class Person { attrs (pname, age); id (pname); }
  class Dept { attrs (dname); id (dname); }
  rel worksIn : Person (0..1) -- (0..*) Dept;
  partof chairOf : Dept (0..1) -- (0..*) Person;
  reified meeting {
    role who : Person (0..*);
    role where : Dept (1..*);
    attrs (room);
  }
  isa Person < Person;
  disjoint (Person, Dept);
  cover Person = (Person);
}

semantics person {
  node Person;
  node Dept;
  anchor Person;
  edge Person -rel worksIn-> Dept;
  col pname -> Person.pname;
  col age -> Person.age;
  id Person (pname);
}

corr person.pname <-> person.pname;
|}

let test_lexer_tokens () =
  let toks = Lexer.tokenize "foo { } ( ) : ; , . .. * -> <-> -- - < = 42" in
  let kinds = List.map (fun l -> l.Lexer.tok) toks in
  Alcotest.(check int) "token count" 19 (List.length kinds);
  Alcotest.(check bool) "ident" true (List.hd kinds = Lexer.IDENT "foo");
  Alcotest.(check bool) "int" true (List.nth kinds 17 = Lexer.INT 42);
  Alcotest.(check bool) "eof last" true (List.nth kinds 18 = Lexer.EOF)

let test_lexer_comments () =
  let toks = Lexer.tokenize "a # comment until eol\nb" in
  Alcotest.(check int) "two idents + eof" 3 (List.length toks)

let test_lexer_error () =
  match Lexer.tokenize "a ? b" with
  | exception Lexer.Error (_, 1, 3) -> ()
  | exception Lexer.Error (_, l, c) ->
      Alcotest.failf "wrong location %d:%d" l c
  | _ -> Alcotest.fail "expected a lexer error"

let test_parse_sample () =
  let doc = Parser.parse sample in
  Alcotest.(check int) "one schema" 1 (List.length doc.Ast.doc_schemas);
  Alcotest.(check int) "one cm" 1 (List.length doc.Ast.doc_cms);
  Alcotest.(check int) "one semantics" 1 (List.length doc.Ast.doc_semantics);
  Alcotest.(check int) "one corr" 1 (List.length doc.Ast.doc_corrs);
  let s = List.hd doc.Ast.doc_schemas in
  let t = Schema.find_table_exn s "person" in
  Alcotest.(check (list string)) "columns" [ "pname"; "age" ]
    (Schema.column_names t);
  Alcotest.(check bool) "int type" true
    (Schema.column_type t "age" = Some Schema.TInt);
  let cm = List.hd doc.Ast.doc_cms in
  Alcotest.(check int) "two binaries" 2 (List.length cm.Cml.binaries);
  Alcotest.(check bool) "partof parsed" true
    (List.exists (fun r -> r.Cml.rel_kind = Cml.PartOf) cm.Cml.binaries);
  Alcotest.(check int) "one reified" 1 (List.length cm.Cml.reified);
  let rr = List.hd cm.Cml.reified in
  Alcotest.(check (list string)) "reified attrs" [ "room" ] rr.Cml.rr_attributes

let test_parse_error_location () =
  match Parser.parse "schema s { table t { col x } }" with
  | exception Parser.Error (msg, line, col) ->
      Alcotest.(check bool) "has a message" true (String.length msg > 0);
      Alcotest.(check int) "line" 1 line;
      Alcotest.(check bool) "plausible column" true (col > 1)
  | _ -> Alcotest.fail "expected a parse error"

let test_noderef_copies () =
  let doc =
    Parser.parse
      {|
cm c { class A { attrs (x); id (x); } rel r : A (0..1) -- (0..*) A; }
schema s { table t { col x : string; col y : string; key (x); } }
semantics t {
  node A;
  node A~1;
  anchor A;
  edge A -rel r-> A~1;
  col x -> A.x;
  col y -> A~1.x;
  id A (x);
  id A~1 (y);
}
|}
  in
  let st = (List.hd doc.Ast.doc_semantics).Ast.sem_stree in
  Alcotest.(check int) "two nodes" 2 (List.length st.Smg_semantics.Stree.st_nodes);
  let copies =
    List.map (fun n -> n.Smg_semantics.Stree.nr_copy) st.Smg_semantics.Stree.st_nodes
  in
  Alcotest.(check (list int)) "copies" [ 0; 1 ] copies

let test_data_blocks () =
  let doc =
    Parser.parse
      {|
schema s { table t { col a : string; col b : int; } }
data t {
  row ("hello \"world\"", 42);
  row ("x", null);
}
|}
  in
  match doc.Ast.doc_data with
  | [ ("t", [ row1; row2 ]) ] ->
      Alcotest.(check bool) "escaped string" true
        (List.hd row1 = Smg_relational.Value.VString "hello \"world\"");
      Alcotest.(check bool) "int" true
        (List.nth row1 1 = Smg_relational.Value.VInt 42);
      Alcotest.(check bool) "null" true
        (Smg_relational.Value.is_null (List.nth row2 1));
      (* build the instance *)
      let inst = Ast.instance_of doc (List.hd doc.Ast.doc_schemas) in
      Alcotest.(check int) "two tuples" 2
        (Smg_relational.Instance.cardinality inst "t")
  | _ -> Alcotest.fail "expected one data block with two rows"

let test_data_roundtrip () =
  let doc =
    Parser.parse
      {|
schema s { table t { col a : string; } }
data t { row ("a"); row ("b"); }
|}
  in
  let doc2 = Parser.parse (Printer.to_string doc) in
  Alcotest.(check bool) "data round-trips" true
    (doc.Ast.doc_data = doc2.Ast.doc_data)

let test_roundtrip_sample () =
  let doc = Parser.parse sample in
  let printed = Printer.to_string doc in
  let doc2 = Parser.parse printed in
  Alcotest.(check bool) "schemas equal" true
    (doc.Ast.doc_schemas = doc2.Ast.doc_schemas);
  Alcotest.(check bool) "cms equal" true (doc.Ast.doc_cms = doc2.Ast.doc_cms);
  Alcotest.(check bool) "semantics equal" true
    (doc.Ast.doc_semantics = doc2.Ast.doc_semantics);
  Alcotest.(check bool) "corrs equal" true (doc.Ast.doc_corrs = doc2.Ast.doc_corrs)

let test_roundtrip_books_scenario () =
  (* tests run from _build/default/test under dune runtest, from the
     repo root under dune exec *)
  let path =
    if Sys.file_exists "scenarios/books.smg" then "scenarios/books.smg"
    else "../../../scenarios/books.smg"
  in
  let doc = Parser.parse_file path in
  let doc2 = Parser.parse (Printer.to_string doc) in
  Alcotest.(check bool) "books round-trips" true (doc = doc2);
  Alcotest.(check int) "five source tables + one target" 2
    (List.length doc.Ast.doc_schemas);
  Alcotest.(check int) "six semantics blocks" 6
    (List.length doc.Ast.doc_semantics)

(* property: printing any er2rel-designed scenario reparses equal *)
let test_roundtrip_er2rel () =
  let cm = Smg_eval.Dataset_hotel.(ignore scenario); () in
  ignore cm;
  let cml =
    Cml.make ~name:"rt"
      ~binaries:[ Cml.functional "f" ~src:"A" ~dst:"B" ]
      ~reified:
        [
          Smg_cm.Cml.reified ~attrs:[ "w" ] "r"
            [
              ("ra", "A", Smg_cm.Cardinality.many);
              ("rb", "B", Smg_cm.Cardinality.many);
            ];
        ]
      [
        Cml.cls ~id:[ "a" ] "A" [ "a" ];
        Cml.cls ~id:[ "b" ] "B" [ "b" ];
      ]
  in
  let schema, strees = Smg_er2rel.Design.design cml in
  let doc =
    {
      Ast.doc_schemas = [ schema ];
      doc_cms = [ cml ];
      doc_semantics =
        List.map
          (fun st -> { Ast.sem_table = st.Smg_semantics.Stree.st_table; sem_stree = st })
          strees;
      doc_corrs = [];
      doc_tgds = [];
      doc_data = [];
    }
  in
  let doc2 = Parser.parse (Printer.to_string doc) in
  Alcotest.(check bool) "er2rel scenario round-trips" true (doc = doc2)

let test_roundtrip_all_eval_scenarios () =
  (* every benchmark scenario exports to the DSL and reparses equal —
     the printer/parser pair covers all constructs the datasets use *)
  List.iter
    (fun (scen : Smg_eval.Scenario.t) ->
      let to_doc (side : Smg_core.Discover.side) other_corrs =
        {
          Ast.doc_schemas = [ side.Smg_core.Discover.schema ];
          doc_cms = [ Smg_cm.Cm_graph.cm side.Smg_core.Discover.cmg ];
          doc_semantics =
            List.map
              (fun st ->
                { Ast.sem_table = st.Smg_semantics.Stree.st_table; sem_stree = st })
              side.Smg_core.Discover.strees;
          doc_corrs = other_corrs;
          doc_tgds = [];
          doc_data = [];
        }
      in
      let corrs =
        List.concat_map (fun c -> c.Smg_eval.Scenario.corrs) scen.Smg_eval.Scenario.cases
        |> List.sort_uniq compare
      in
      List.iter
        (fun doc ->
          let doc' = Parser.parse (Printer.to_string doc) in
          Alcotest.(check bool)
            (scen.Smg_eval.Scenario.scen_name ^ " round-trips")
            true (doc = doc'))
        [ to_doc scen.Smg_eval.Scenario.source corrs;
          to_doc scen.Smg_eval.Scenario.target [] ])
    (Smg_eval.Datasets.all ())

(* ---- tgd blocks -------------------------------------------------------- *)

let tgd_doc tgds = { Ast.empty with Ast.doc_tgds = tgds }

let test_tgd_block_parse () =
  let doc =
    Parser.parse
      {|tgd "m" { lhs p(x, 3, "lit"), u(x); rhs q(x, sk f(x), var "odd name"); }|}
  in
  match doc.Ast.doc_tgds with
  | [ t ] ->
      Alcotest.(check string) "name" "m" t.Smg_cq.Dependency.tgd_name;
      Alcotest.(check int) "two premise atoms" 2
        (List.length t.Smg_cq.Dependency.lhs);
      Alcotest.(check int) "one conclusion atom" 1
        (List.length t.Smg_cq.Dependency.rhs)
  | _ -> Alcotest.fail "expected one tgd"

let test_tgd_roundtrip_handmade () =
  (* exercises every escape hatch: composition-suffixed variable names,
     nested Skolem applications with embedded constants, exact floats,
     and string literals with quotes *)
  let open Smg_cq in
  let v = Atom.v and a = Atom.atom and c = Atom.c in
  let nested =
    Chase.skolem_var ~f:"f"
      ~args:[ "x!1"; "=i3"; Chase.skolem_var ~f:"g" ~args:[ "x!1" ] ]
  in
  let tgds =
    [
      Dependency.tgd ~name:"weird"
        ~lhs:
          [
            a "p"
              [
                v "x!1";
                c (Smg_relational.Value.VFloat 0.1);
                c (Smg_relational.Value.VString "a\"b\\c");
              ];
          ]
        [ a "q" [ v nested; v "z" ] ];
    ]
  in
  let doc = tgd_doc tgds in
  let doc' = Parser.parse (Printer.to_string doc) in
  Alcotest.(check bool) "handmade tgd round-trips" true (doc = doc')

let test_tgd_roundtrip_discovered () =
  (* printing then reparsing any tgd the discovery pipeline produces is
     the identity — inner-join readings and Skolemized outer variants
     alike, across every benchmark domain *)
  List.iter
    (fun (scen : Smg_eval.Scenario.t) ->
      let target = scen.Smg_eval.Scenario.target.Smg_core.Discover.schema in
      List.iter
        (fun (cs : Smg_eval.Scenario.case) ->
          let tgds =
            List.concat_map
              (fun m ->
                Smg_cq.Mapping.to_tgd m
                :: Smg_cq.Mapping.outer_variants ~target m)
              cs.Smg_eval.Scenario.benchmark
          in
          let doc = tgd_doc tgds in
          let doc' = Parser.parse (Printer.to_string doc) in
          Alcotest.(check bool)
            (scen.Smg_eval.Scenario.scen_name ^ "/" ^ cs.Smg_eval.Scenario.case_name
           ^ " tgds round-trip")
            true (doc = doc'))
        scen.Smg_eval.Scenario.cases)
    (Smg_eval.Datasets.all ())

let suite =
  [
    ( "dsl.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer_tokens;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "error location" `Quick test_lexer_error;
      ] );
    ( "dsl.parser",
      [
        Alcotest.test_case "sample document" `Quick test_parse_sample;
        Alcotest.test_case "error location" `Quick test_parse_error_location;
        Alcotest.test_case "node copies" `Quick test_noderef_copies;
        Alcotest.test_case "data blocks" `Quick test_data_blocks;
        Alcotest.test_case "data round-trip" `Quick test_data_roundtrip;
      ] );
    ( "dsl.roundtrip",
      [
        Alcotest.test_case "sample" `Quick test_roundtrip_sample;
        Alcotest.test_case "books scenario file" `Quick test_roundtrip_books_scenario;
        Alcotest.test_case "er2rel output" `Quick test_roundtrip_er2rel;
        Alcotest.test_case "all evaluation scenarios" `Slow
          test_roundtrip_all_eval_scenarios;
      ] );
    ( "dsl.tgd",
      [
        Alcotest.test_case "tgd block parses" `Quick test_tgd_block_parse;
        Alcotest.test_case "handmade round-trip" `Quick
          test_tgd_roundtrip_handmade;
        Alcotest.test_case "discovered tgds round-trip" `Quick
          test_tgd_roundtrip_discovered;
      ] );
  ]
