(* The scenario generator: determinism, structural invariants over
   thousands of generated scenarios (valid acyclic RICs after lowering,
   witness data satisfying keys and RICs, budgeted discovery that never
   crashes and is byte-identical across domain counts, DSL round-trips),
   plus the frozen mid-size fixture's full battery — discovery vs the
   RIC baseline, engine ≡hom naive chase, served byte-parity. *)

module Params = Smg_generate.Params
module Gen = Smg_generate.Gen
module Data = Smg_generate.Data
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Discover = Smg_core.Discover
module Mapping = Smg_cq.Mapping
module Chase = Smg_cq.Chase
module Budget = Smg_robust.Budget
module Pool = Smg_parallel.Pool
module Engine = Smg_exchange.Engine
module Render = Smg_serve.Render
module Registry = Smg_serve.Registry
module Server = Smg_serve.Server

(* CI shrinks property volumes via SMG_FUZZ_COUNT; the defaults below
   sum to >1000 generated scenarios per full run. *)
let fuzz_count default =
  match Sys.getenv_opt "SMG_FUZZ_COUNT" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> min default n
      | _ -> default)
  | None -> default

(* ---- helpers ----------------------------------------------------------- *)

let rics_acyclic (schema : Schema.t) =
  let order = Data.topo_tables schema in
  let pos t =
    let rec go i = function
      | [] -> -1
      | x :: _ when String.equal x t -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  List.for_all
    (fun (r : Schema.ric) -> pos r.Schema.to_table < pos r.Schema.from_table)
    schema.Schema.rics

let instance_consistent (schema : Schema.t) inst =
  Instance.check_rics schema inst = [] && Instance.check_keys schema inst = []

let corr_well_formed (g : Gen.t) (c : Mapping.corr) =
  let has (schema : Schema.t) (t, col) =
    match Schema.find_table schema t with
    | Some tbl -> Schema.has_column tbl col
    | None -> false
  in
  has g.Gen.g_source.Discover.schema c.Mapping.c_src
  && has g.Gen.g_target.Discover.schema c.Mapping.c_tgt

(* ---- deterministic unit tests ------------------------------------------ *)

let test_deterministic () =
  let p = { Params.default with seed = 1234; scale = 60 } in
  let a = Gen.build p and b = Gen.build p in
  Alcotest.(check string)
    "same params, same DSL" (Gen.dsl ~with_data:true a)
    (Gen.dsl ~with_data:true b);
  Alcotest.(check bool)
    "same params, same data" true
    (Instance.equal (Gen.source_instance a) (Gen.source_instance b))

let test_scale_population () =
  (* a mid-size population stays linear-time and constraint-clean *)
  let g = Gen.build { Params.default with seed = 11; scale = 20_000 } in
  let inst = Gen.source_instance g in
  let total = Instance.total_tuples inst in
  Alcotest.(check bool)
    (Printf.sprintf "scale honored (%d tuples)" total)
    true (total >= 10_000);
  Alcotest.(check int) "no RIC violations" 0
    (List.length (Instance.check_rics g.Gen.g_source.Discover.schema inst));
  Alcotest.(check int) "no key violations" 0
    (List.length (Instance.check_keys g.Gen.g_source.Discover.schema inst))

let test_clamp () =
  let wild =
    {
      Params.seed = -3;
      isa_depth = 99;
      n_roots = 0;
      reify = -1;
      partof = 77;
      attrs_per_class = 0;
      corr_density = 7.0;
      scale = 1;
    }
  in
  let g = Gen.build wild in
  Alcotest.(check bool) "clamped vector builds" true (g.Gen.g_corrs <> [])

(* ---- frozen fixture ---------------------------------------------------- *)

(* scenarios/generated_mid.smg is minted by
   [mapdisc generate --seed 7 --isa-depth 2 --roots 3 --reify 2
    --partof 1 --attrs 2 --corr-density 0.8 --scale 5000 --emit-dsl];
   the test pins the generator to the checked-in bytes. *)
let fixture_params =
  {
    Params.seed = 7;
    isa_depth = 2;
    n_roots = 3;
    reify = 2;
    partof = 1;
    attrs_per_class = 2;
    corr_density = 0.8;
    scale = 5000;
  }

let fixture_path =
  if Sys.file_exists "scenarios/generated_mid.smg" then
    "scenarios/generated_mid.smg"
  else "../../../scenarios/generated_mid.smg"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_fixture_frozen () =
  let text = read_file fixture_path in
  Alcotest.(check string)
    "generator reproduces the checked-in fixture byte for byte" text
    (Gen.dsl (Gen.build fixture_params))

let fixture = lazy (Gen.build fixture_params)

let test_fixture_discover_vs_ric () =
  let g = Lazy.force fixture in
  let sem =
    Discover.discover ~source:g.Gen.g_source ~target:g.Gen.g_target
      ~corrs:g.Gen.g_corrs ()
  in
  let ric =
    Smg_ric.Baseline.generate ~source:g.Gen.g_source.Discover.schema
      ~target:g.Gen.g_target.Discover.schema ~corrs:g.Gen.g_corrs
  in
  Alcotest.(check bool) "semantic discovery finds candidates" true (sem <> []);
  Alcotest.(check bool) "RIC baseline finds candidates" true (ric <> []);
  (* the verification layer can compare the two candidate sets without
     tripping over the generated queries *)
  let report =
    Smg_verify.Mapverify.dedup ~source:g.Gen.g_source.Discover.schema
      ~target:g.Gen.g_target.Discover.schema (sem @ ric)
  in
  Alcotest.(check int)
    "dedup examined the union"
    (List.length sem + List.length ric)
    report.Smg_verify.Mapverify.rp_in

let fixture_tgds (g : Gen.t) =
  match
    Discover.discover ~source:g.Gen.g_source ~target:g.Gen.g_target
      ~corrs:g.Gen.g_corrs ()
  with
  | [] -> Alcotest.fail "no mapping discovered on the fixture"
  | best :: _ ->
      if best.Mapping.outer then
        Mapping.outer_variants ~target:g.Gen.g_target.Discover.schema best
      else [ Mapping.to_tgd best ]

let test_fixture_engine_vs_chase () =
  let g = Lazy.force fixture in
  let source = g.Gen.g_source.Discover.schema
  and target = g.Gen.g_target.Discover.schema in
  let tgds = fixture_tgds g in
  let inst = Gen.source_instance ~scale:300 g in
  match
    ( Engine.run ~source ~target ~mappings:tgds inst,
      Smg_exchange.Naive.exchange ~source ~target ~mappings:tgds inst )
  with
  | Ok rep, Chase.Saturated naive ->
      Alcotest.(check bool)
        "engine ≡hom naive chase on generated data" true
        (Smg_verify.Equiv.equivalent rep.Engine.r_target naive)
  | Ok _, _ -> Alcotest.fail "naive chase did not saturate"
  | Error msg, _ -> Alcotest.failf "engine failed: %s" msg

(* minimal HTTP client against a local server, as in test_serve *)
let http_request ~port meth path body =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      let _ = Unix.write_substring sock req 0 (String.length req) in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status = int_of_string (String.sub raw 9 3) in
      let body =
        let rec find i =
          if i + 4 > String.length raw then ""
          else if String.sub raw i 4 = "\r\n\r\n" then
            String.sub raw (i + 4) (String.length raw - i - 4)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

let test_fixture_serve_parity () =
  let g = Lazy.force fixture in
  let text = Gen.dsl g in
  let name = "generated_mid" in
  let cfg = { Server.default_config with Server.port = 0; domains = 1 } in
  let srv = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      ignore (Domain.join d))
    (fun () ->
      let port = Server.port srv in
      let status, _ = http_request ~port "PUT" ("/scenarios/" ^ name) text in
      Alcotest.(check int) "put created" 201 status;
      let expected =
        (Render.discover_json ~file:name ~source:g.Gen.g_source
           ~target:g.Gen.g_target ~corrs:g.Gen.g_corrs ())
          .Render.dj_json
      in
      let s1, cold =
        http_request ~port "POST" ("/scenarios/" ^ name ^ "/discover") ""
      in
      let s2, warm =
        http_request ~port "POST" ("/scenarios/" ^ name ^ "/discover") ""
      in
      Alcotest.(check int) "cold 200" 200 s1;
      Alcotest.(check int) "warm 200" 200 s2;
      Alcotest.(check string) "cold parity" expected cold;
      Alcotest.(check string) "warm parity" expected warm)

(* ---- properties -------------------------------------------------------- *)

let gen_params =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* isa_depth = int_bound 2 in
    let* n_roots = int_range 1 4 in
    let* reify = int_bound 2 in
    let* partof = int_bound 2 in
    let* attrs_per_class = int_range 1 3 in
    let* dens = int_range 3 10 in
    let* scale = int_range 20 80 in
    return
      {
        Params.seed;
        isa_depth;
        n_roots;
        reify;
        partof;
        attrs_per_class;
        corr_density = float_of_int dens /. 10.;
        scale;
      })

let arb_params = QCheck.make gen_params ~print:(fun p -> Fmt.str "%a" Params.pp p)

let prop_lowering_and_data =
  QCheck.Test.make
    ~name:"generated scenarios lower to valid acyclic RICs with clean data"
    ~count:(fuzz_count 500) arb_params (fun p ->
      (* Gen.build itself runs Discover.side validation on both sides *)
      let g = Gen.build p in
      let src = g.Gen.g_source.Discover.schema
      and tgt = g.Gen.g_target.Discover.schema in
      rics_acyclic src && rics_acyclic tgt
      && g.Gen.g_corrs <> []
      && List.for_all (corr_well_formed g) g.Gen.g_corrs
      && instance_consistent src (Gen.source_instance g)
      && instance_consistent tgt (Gen.target_instance g))

let prop_dsl_roundtrip =
  QCheck.Test.make
    ~name:"emitted .smg text is a print→parse→print fixpoint"
    ~count:(fuzz_count 350) arb_params (fun p ->
      let g = Gen.build p in
      let with_data = p.Params.scale <= 40 in
      let text = Gen.dsl ~with_data g in
      match Smg_dsl.Parser.parse_result text with
      | Error d -> QCheck.Test.fail_reportf "parse: %a" Smg_robust.Diag.pp d
      | Ok doc ->
          String.equal text (Smg_dsl.Printer.to_string doc)
          && Result.is_ok (Registry.sides_of_doc doc))

let prop_discovery_budgeted =
  QCheck.Test.make
    ~name:"budgeted discovery never crashes; 4 domains ≡ 1 domain bytes"
    ~count:(fuzz_count 250) arb_params (fun p ->
      let g = Gen.build p in
      let run domains =
        Pool.with_pool ~domains (fun pool ->
            (Render.discover_json
               ~budget:(Budget.create ~fuel:150_000 ())
               ~pool ~file:"gen" ~source:g.Gen.g_source ~target:g.Gen.g_target
               ~corrs:g.Gen.g_corrs ())
              .Render.dj_json)
      in
      String.equal (run 1) (run 4))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "generate",
      [
        Alcotest.test_case "deterministic rebuild" `Quick test_deterministic;
        Alcotest.test_case "20k-tuple population is clean" `Quick
          test_scale_population;
        Alcotest.test_case "wild vectors clamp" `Quick test_clamp;
        Alcotest.test_case "fixture is frozen" `Quick test_fixture_frozen;
        Alcotest.test_case "fixture: discover vs RIC baseline" `Quick
          test_fixture_discover_vs_ric;
        Alcotest.test_case "fixture: engine ≡hom chase" `Quick
          test_fixture_engine_vs_chase;
        Alcotest.test_case "fixture: served byte-parity" `Quick
          test_fixture_serve_parity;
        q prop_lowering_and_data;
        q prop_dsl_roundtrip;
        q prop_discovery_budgeted;
      ] );
  ]
