(* The HTTP service: strict parser behaviour on hostile input (fixtures
   and random fuzz — never an exception, always a definite status),
   registry caching semantics, CLI/served JSON byte-parity for every
   built-in domain warm and cold, admission control, budget-exhausted
   responses, and metrics integrity under concurrent client domains. *)

module Http = Smg_serve.Http
module Render = Smg_serve.Render
module Registry = Smg_serve.Registry
module Server = Smg_serve.Server
module Metrics = Smg_serve.Metrics
module Engine = Smg_exchange.Engine
module Discover = Smg_core.Discover
module Scenario = Smg_eval.Scenario

let in_tree path =
  if Sys.file_exists path then path else Filename.concat "../../.." path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let books_src = lazy (read_file (in_tree "scenarios/books.smg"))

(* ---- parser: well-formed input ------------------------------------------ *)

let parse_one ?limits ?chunk s = Http.next_request (Http.of_string ?limits ?chunk s)

let get_request = function
  | Http.Request rq -> rq
  | Http.Reject rj -> Alcotest.failf "rejected: %d %s" rj.Http.rj_status rj.Http.rj_reason
  | Http.Eof -> Alcotest.fail "eof"

let reject_status = function
  | Http.Reject rj -> rj.Http.rj_status
  | Http.Request _ -> Alcotest.fail "parsed instead of rejected"
  | Http.Eof -> Alcotest.fail "eof instead of reject"

let test_parse_get () =
  let rq =
    get_request
      (parse_one "GET /scenarios/dblp?method=both&dedup=true HTTP/1.1\r\nHost: x\r\n\r\n")
  in
  Alcotest.(check bool) "meth" true (rq.Http.rq_meth = Http.GET);
  Alcotest.(check (list string)) "segments" [ "scenarios"; "dblp" ] rq.Http.rq_segments;
  Alcotest.(check (option string)) "query" (Some "both") (Http.query rq "method");
  Alcotest.(check (option string)) "query2" (Some "true") (Http.query rq "dedup");
  Alcotest.(check string) "body" "" rq.Http.rq_body;
  Alcotest.(check bool) "keep-alive" true (Http.keep_alive rq)

let test_parse_percent_decode () =
  let rq =
    get_request (parse_one "PUT /scenarios/scenarios%2Fbooks.smg HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check (list string)) "decoded segment"
    [ "scenarios"; "scenarios/books.smg" ]
    rq.Http.rq_segments

let test_parse_body () =
  let rq =
    get_request
      (parse_one "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
  in
  Alcotest.(check string) "body" "hello" rq.Http.rq_body

let test_parse_missing_length_means_empty () =
  let rq = get_request (parse_one "POST /x HTTP/1.1\r\n\r\n") in
  Alcotest.(check string) "empty body" "" rq.Http.rq_body

let test_parse_byte_at_a_time () =
  (* the buffered reader must reassemble a request delivered one byte
     per read call *)
  let rq =
    get_request
      (parse_one ~chunk:1 "POST /x/y HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc")
  in
  Alcotest.(check string) "body" "abc" rq.Http.rq_body;
  Alcotest.(check (list string)) "segments" [ "x"; "y" ] rq.Http.rq_segments

let test_parse_pipelined () =
  let r =
    Http.of_string
      "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\nConnection: close\r\n\r\n"
  in
  let a = get_request (Http.next_request r) in
  let b = get_request (Http.next_request r) in
  let c = get_request (Http.next_request r) in
  Alcotest.(check (list string)) "first" [ "a" ] a.Http.rq_segments;
  Alcotest.(check string) "second body" "hi" b.Http.rq_body;
  Alcotest.(check bool) "third closes" false (Http.keep_alive c);
  Alcotest.(check bool) "eof after" true (Http.next_request r = Http.Eof)

let test_keep_alive_rules () =
  let ka s = Http.keep_alive (get_request (parse_one s)) in
  Alcotest.(check bool) "1.1 default" true (ka "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "1.1 close" false
    (ka "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 keep-alive" true
    (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

(* ---- parser: hostile input ---------------------------------------------- *)

let test_reject_malformed_line () =
  List.iter
    (fun s -> Alcotest.(check int) s 400 (reject_status (parse_one s)))
    [
      "GET\r\n\r\n";
      "GET /\r\n\r\n";
      "GET / HTTP/1.1 extra\r\n\r\n";
      "GET nopath HTTP/1.1\r\n\r\n";
      "GET / HTTP/2.0\r\n\r\n";
      "GET / FTP/1.1\r\n\r\n";
      " / HTTP/1.1\r\n\r\n";
    ]

let test_reject_unknown_method () =
  Alcotest.(check int) "PATCH" 405
    (reject_status (parse_one "PATCH /x HTTP/1.1\r\n\r\n"));
  Alcotest.(check int) "lowercase" 405
    (reject_status (parse_one "get /x HTTP/1.1\r\n\r\n"))

let test_reject_bad_escape () =
  Alcotest.(check int) "bad hex" 400
    (reject_status (parse_one "GET /a%zz HTTP/1.1\r\n\r\n"));
  Alcotest.(check int) "truncated" 400
    (reject_status (parse_one "GET /a%2 HTTP/1.1\r\n\r\n"));
  Alcotest.(check int) "encoded control" 400
    (reject_status (parse_one "GET /a%00b HTTP/1.1\r\n\r\n"))

let test_reject_long_line () =
  let s = "GET /" ^ String.make 10_000 'a' ^ " HTTP/1.1\r\n\r\n" in
  Alcotest.(check int) "413" 413 (reject_status (parse_one s))

let test_reject_header_bomb () =
  let headers =
    String.concat "" (List.init 100 (fun i -> Printf.sprintf "H%d: v\r\n" i))
  in
  Alcotest.(check int) "too many headers" 413
    (reject_status (parse_one ("GET / HTTP/1.1\r\n" ^ headers ^ "\r\n")))

let test_reject_bad_content_length () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check int) name 400 (reject_status (parse_one s)))
    [
      ("not a number", "POST / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n");
      ("negative", "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n");
      ( "duplicated",
        "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab" );
      ("chunked", "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
      ("truncated body", "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
      ("malformed header", "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
    ]

let test_reject_oversized_body () =
  let limits = { Http.default_limits with Http.max_body = 100 } in
  Alcotest.(check int) "declared too large" 413
    (reject_status
       (parse_one ~limits "POST / HTTP/1.1\r\nContent-Length: 101\r\n\r\n"))

let prop_parser_never_raises =
  (* whatever the wire bytes, the parser returns events — it never
     raises, and rejects carry a definite 4xx status *)
  QCheck.Test.make ~name:"http parser total on random bytes" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 512) Gen.char)
    (fun s ->
      let r = Http.of_string ~chunk:7 s in
      let rec drain n =
        if n > 64 then true
        else
          match Http.next_request r with
          | Http.Eof -> true
          | Http.Reject rj ->
              rj.Http.rj_status >= 400 && rj.Http.rj_status < 500
          | Http.Request _ -> drain (n + 1)
      in
      drain 0)

let prop_parser_roundtrip =
  (* a well-formed request with a random body always parses back to the
     same method, path, and body, at any read-chunk granularity *)
  QCheck.Test.make ~name:"http parser roundtrip" ~count:200
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_range 0 200) Gen.printable)
        (int_range 1 16))
    (fun (body, chunk) ->
      let s =
        Printf.sprintf "POST /a/b?k=v HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
          (String.length body) body
      in
      match Http.next_request (Http.of_string ~chunk s) with
      | Http.Request rq ->
          rq.Http.rq_meth = Http.POST
          && rq.Http.rq_segments = [ "a"; "b" ]
          && rq.Http.rq_body = body
      | _ -> false)

(* ---- registry ----------------------------------------------------------- *)

let test_registry_put_hash_dedup () =
  let reg = Registry.create () in
  let text = Lazy.force books_src in
  let e1, cached1 =
    match Registry.put reg ~name:"books" ~text with
    | Ok r -> r
    | Error d -> Alcotest.failf "put: %s" d.Smg_robust.Diag.d_message
  in
  Alcotest.(check bool) "first put is new" false cached1;
  let e2, cached2 =
    match Registry.put reg ~name:"books" ~text with
    | Ok r -> r
    | Error d -> Alcotest.failf "re-put: %s" d.Smg_robust.Diag.d_message
  in
  Alcotest.(check bool) "same content hits" true cached2;
  Alcotest.(check string) "same hash" e1.Registry.en_hash e2.Registry.en_hash;
  (* different content under the same name replaces the entry *)
  let e3, cached3 =
    match Registry.put reg ~name:"books" ~text:(text ^ "\n# touched\n") with
    | Ok r -> r
    | Error d -> Alcotest.failf "replace: %s" d.Smg_robust.Diag.d_message
  in
  Alcotest.(check bool) "changed content misses" false cached3;
  Alcotest.(check bool) "hash changed" true
    (e1.Registry.en_hash <> e3.Registry.en_hash)

let test_registry_put_rejects_garbage () =
  let reg = Registry.create () in
  (match Registry.put reg ~name:"bad" ~text:"schema only {" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error accepted");
  match Registry.put reg ~name:"half" ~text:"schema s { table t { col x : int; } }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "one-sided scenario accepted"

let test_registry_discover_cache () =
  let reg = Registry.create () in
  let entry =
    match Registry.put reg ~name:"books" ~text:(Lazy.force books_src) with
    | Ok (e, _) -> e
    | Error d -> Alcotest.failf "put: %s" d.Smg_robust.Diag.d_message
  in
  let out1, hit1 = Registry.discover reg ~meth:`Both ~dedup:false entry in
  let out2, hit2 = Registry.discover reg ~meth:`Both ~dedup:false entry in
  Alcotest.(check bool) "cold misses" true (hit1 = `Miss);
  Alcotest.(check bool) "warm hits" true (hit2 = `Hit);
  Alcotest.(check string) "same bytes" out1.Render.dj_json out2.Render.dj_json;
  let _, hit3 = Registry.discover reg ~meth:`Semantic ~dedup:false entry in
  Alcotest.(check bool) "distinct variant misses" true (hit3 = `Miss)

let test_registry_exchange_cache_and_bytes () =
  let reg = Registry.create () in
  Registry.preload_builtins reg;
  let entry = Option.get (Registry.find reg "dblp") in
  let body1, hit1 =
    match Registry.exchange reg ~size:64 entry with
    | Registry.Ex_ok (b, h) -> (b, h)
    | _ -> Alcotest.fail "cold exchange failed"
  in
  let body2, hit2 =
    match Registry.exchange reg ~size:64 entry with
    | Registry.Ex_ok (b, h) -> (b, h)
    | _ -> Alcotest.fail "warm exchange failed"
  in
  Alcotest.(check bool) "cold compiles" true (hit1 = `Miss);
  Alcotest.(check bool) "warm reuses the plan" true (hit2 = `Hit);
  Alcotest.(check string) "byte-identical warm vs cold" body1 body2

(* ---- server over real sockets ------------------------------------------- *)

let http_request ~port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
          meth path (String.length body) body
      in
      let n = String.length req in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write_substring fd req !off (n - !off)
      done;
      let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status = int_of_string (String.sub raw 9 3) in
      let body =
        let rec find i =
          if i + 4 > String.length raw then ""
          else if String.sub raw i 4 = "\r\n\r\n" then
            String.sub raw (i + 4) (String.length raw - i - 4)
          else find (i + 1)
        in
        find 0
      in
      (status, body))

let with_server ?(domains = 1) ?(cfg = Server.default_config) f =
  let cfg = { cfg with Server.port = 0; domains } in
  let srv = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      ignore (Domain.join d))
    (fun () -> f srv (Server.port srv))

(* The CLI's exchange --json path, computed in-process: the same
   discovery, witness, engine, and Render calls `mapdisc exchange
   --scenario NAME --size N --json` makes. Byte-equality against the
   served body is the CLI/server parity contract. *)
let cli_exchange_bytes (scen : Scenario.t) ~size ~seed =
  let source = scen.Scenario.source.Discover.schema
  and target = scen.Scenario.target.Discover.schema in
  let mappings = Registry.scenario_tgds scen in
  let n_tables = max 1 (List.length source.Smg_relational.Schema.tables) in
  let rows = max 1 (size / n_tables) in
  let inst = Smg_eval.Witness.populate ~rows_per_table:rows ~seed source in
  let head =
    [
      ("scenario", Render.json_str scen.Scenario.scen_name);
      ("size", string_of_int size);
      ("seed", string_of_int seed);
    ]
  in
  match Engine.run_bounded ~laconic:true ~source ~target ~mappings inst with
  | Engine.Complete rep -> Render.exchange_json ~head ~laconic:true rep
  | _ -> Alcotest.failf "reference exchange failed for %s" scen.Scenario.scen_name

let test_served_exchange_parity_all_domains () =
  (* every built-in domain: served body == CLI bytes, cold and warm *)
  with_server @@ fun _srv port ->
  List.iter
    (fun (scen : Scenario.t) ->
      let name = String.lowercase_ascii scen.Scenario.scen_name in
      let path = Printf.sprintf "/scenarios/%s/exchange?size=64" name in
      let expected = cli_exchange_bytes scen ~size:64 ~seed:42 in
      let status_cold, cold = http_request ~port "POST" path "" in
      let status_warm, warm = http_request ~port "POST" path "" in
      Alcotest.(check int) (name ^ " cold status") 200 status_cold;
      Alcotest.(check int) (name ^ " warm status") 200 status_warm;
      Alcotest.(check string) (name ^ " cold parity") expected cold;
      Alcotest.(check string) (name ^ " warm parity") expected warm)
    (Smg_eval.Datasets.all ())

let test_served_discover_parity () =
  (* a PUT scenario's discover body == the CLI's --json bytes for the
     same file content (the file field carries the PUT name) *)
  with_server @@ fun _srv port ->
  let text = Lazy.force books_src in
  let name = "scenarios/books.smg" in
  let status, _ = http_request ~port "PUT" "/scenarios/scenarios%2Fbooks.smg" text in
  Alcotest.(check int) "put created" 201 status;
  let doc = Smg_dsl.Parser.parse text in
  let source, target = Result.get_ok (Registry.sides_of_doc doc) in
  let expected =
    (Render.discover_json ~file:name ~source ~target
       ~corrs:doc.Smg_dsl.Ast.doc_corrs ())
      .Render.dj_json
  in
  let s1, cold = http_request ~port "POST" "/scenarios/scenarios%2Fbooks.smg/discover" "" in
  let s2, warm = http_request ~port "POST" "/scenarios/scenarios%2Fbooks.smg/discover" "" in
  Alcotest.(check int) "cold 200" 200 s1;
  Alcotest.(check int) "warm 200" 200 s2;
  Alcotest.(check string) "cold parity" expected cold;
  Alcotest.(check string) "warm parity" expected warm

let test_served_budget_exhaustion () =
  with_server @@ fun _srv port ->
  let status, body =
    http_request ~port "POST" "/scenarios/dblp/exchange?size=64&fuel=10" ""
  in
  Alcotest.(check int) "503 partial prefix" 503 status;
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length body
      && (String.sub body i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "incomplete" true (contains "\"complete\": false");
  Alcotest.(check bool) "diagnostic attached" true (contains "budget exhausted")

let test_served_errors () =
  with_server @@ fun _srv port ->
  let status, _ = http_request ~port "POST" "/scenarios/nosuch/exchange" "" in
  Alcotest.(check int) "unknown scenario" 404 status;
  let status, _ = http_request ~port "GET" "/nosuch" "" in
  Alcotest.(check int) "unknown route" 404 status;
  let status, _ = http_request ~port "POST" "/scenarios" "" in
  Alcotest.(check int) "bad method" 405 status;
  let status, _ =
    http_request ~port "POST" "/scenarios/dblp/exchange?size=banana" ""
  in
  Alcotest.(check int) "bad query int" 400 status;
  let status, _ = http_request ~port "PUT" "/scenarios/junk" "schema {" in
  Alcotest.(check int) "unparsable PUT" 400 status

let test_admission_control () =
  (* hold one connection open without sending anything; with
     max_inflight 1 the next connection must be answered 429 *)
  let cfg =
    {
      Server.default_config with
      Server.port = 0;
      domains = 2;
      max_inflight = 1;
    }
  in
  let srv = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      ignore (Domain.join d))
    (fun () ->
      let port = Server.port srv in
      let holder = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close holder with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect holder (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* wait until the server has actually admitted the held
             connection *)
          let gauge = Metrics.inflight (Server.metrics srv) in
          let deadline = Unix.gettimeofday () +. 5.0 in
          while Atomic.get gauge < 1 && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.01
          done;
          Alcotest.(check int) "one connection admitted" 1 (Atomic.get gauge);
          (* the server answers 429 on accept without reading, then
             closes; send nothing so its close cannot RST away the
             response before we read it *)
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let buf = Buffer.create 256 and chunk = Bytes.create 256 in
              let rec drain () =
                match Unix.read fd chunk 0 256 with
                | 0 -> ()
                | k ->
                    Buffer.add_subbytes buf chunk 0 k;
                    drain ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
              in
              drain ();
              let raw = Buffer.contents buf in
              let status =
                if String.length raw >= 12 then
                  int_of_string (String.sub raw 9 3)
                else -1
              in
              Alcotest.(check int) "second connection rejected" 429 status)))

let test_concurrent_load_and_metrics () =
  (* hammer one warmed scenario from several client domains at
     --domains 4; every response is 200 and the request counter adds up
     exactly — concurrent handlers never corrupt the metrics *)
  with_server ~domains:4 @@ fun srv port ->
  let path = "/scenarios/dblp/exchange?size=64" in
  let s0, reference = http_request ~port "POST" path "" in
  Alcotest.(check int) "warmup" 200 s0;
  let clients = 4 and per_client = 8 in
  let workers =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            let ok = ref 0 in
            for _ = 1 to per_client do
              let status, body = http_request ~port "POST" path "" in
              if status = 200 && String.equal body reference then incr ok
            done;
            !ok))
  in
  let ok = List.fold_left (fun acc d -> acc + Domain.join d) 0 workers in
  Alcotest.(check int) "all responses 200 and byte-identical"
    (clients * per_client) ok;
  let json = Metrics.to_json (Server.metrics srv) ~scenarios:7 in
  let key = "\"exchange\": {\"requests\": " in
  let recorded =
    let rec find i =
      if i + String.length key > String.length json then -1
      else if String.sub json i (String.length key) = key then begin
        let j = ref (i + String.length key) in
        let k = ref !j in
        while
          !k < String.length json && json.[!k] >= '0' && json.[!k] <= '9'
        do
          incr k
        done;
        int_of_string (String.sub json !j (!k - !j))
      end
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check int) "metrics counted every request"
    (1 + (clients * per_client))
    recorded

(* ---- robustness: journal, faults, breaker, chaos ------------------------ *)

module Journal = Smg_serve.Journal
module Chaos = Smg_serve.Chaos
module Fault = Smg_robust.Fault
module Breaker = Smg_robust.Breaker

let contains_sub s needle =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* like http_request, but keeps the raw response so headers are
   checkable *)
let http_request_raw ~port meth path body =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
          meth path (String.length body) body
      in
      let n = String.length req in
      let off = ref 0 in
      while !off < n do
        off := !off + Unix.write_substring fd req !off (n - !off)
      done;
      let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf)

let tmp_journal () = Filename.temp_file "smg_test_journal" ".j"

let test_journal_roundtrip () =
  let path = tmp_journal () in
  let ops =
    [
      Journal.Put { name = "a"; text = "schema s {}" };
      Journal.Delete "a";
      Journal.Put { name = "weird/name\n"; text = String.make 5000 'z' };
    ]
  in
  let j = Journal.open_append path in
  List.iter (Journal.append j) ops;
  Journal.close j;
  let got, clean = Journal.replay path in
  Alcotest.(check bool) "ops replay in order" true (got = ops);
  Alcotest.(check int) "clean prefix is the whole file" clean
    (Unix.stat path).Unix.st_size;
  Sys.remove path

let test_journal_corrupt_record_drops_tail () =
  let path = tmp_journal () in
  let ops =
    [
      Journal.Put { name = "one"; text = "alpha" };
      Journal.Put { name = "two"; text = "beta" };
      Journal.Put { name = "three"; text = "gamma" };
    ]
  in
  let r1 = Journal.encode (List.nth ops 0) in
  let full = String.concat "" (List.map Journal.encode ops) in
  (* flip a byte inside the second record's payload *)
  let bytes = Bytes.of_string full in
  let pos = String.length r1 + 10 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  let got, clean = Journal.replay path in
  Alcotest.(check bool) "only the intact prefix survives" true
    (got = [ List.nth ops 0 ]);
  Alcotest.(check int) "clean offset ends before the damage"
    (String.length r1) clean;
  (* open_append truncates the garbage and appends cleanly after it *)
  let j = Journal.open_append path in
  Journal.append j (Journal.Delete "one");
  Journal.close j;
  let got2, _ = Journal.replay path in
  Alcotest.(check bool) "append after truncation" true
    (got2 = [ List.nth ops 0; Journal.Delete "one" ]);
  Sys.remove path

let prop_journal_torn_tail =
  (* crash-window exhaustion: truncating the journal at EVERY byte
     offset recovers exactly the records wholly before the cut *)
  QCheck.Test.make ~name:"journal: every truncation yields the committed prefix"
    ~count:15
    QCheck.(
      small_list
        (pair
           (string_gen_of_size (Gen.int_range 1 8) Gen.printable)
           (string_gen_of_size (Gen.int_range 0 24) Gen.printable)))
    (fun pairs ->
      let ops =
        List.map
          (fun (name, text) ->
            if String.length text mod 3 = 0 then Journal.Delete name
            else Journal.Put { name; text })
          pairs
      in
      let encoded = List.map Journal.encode ops in
      let full = String.concat "" encoded in
      let sizes = List.map String.length encoded in
      let path = tmp_journal () in
      let ok = ref true in
      for cut = 0 to String.length full do
        let oc = open_out_bin path in
        output_string oc (String.sub full 0 cut);
        close_out oc;
        let got, clean = Journal.replay path in
        let rec committed k off = function
          | sz :: rest when off + sz <= cut -> committed (k + 1) (off + sz) rest
          | _ -> (k, off)
        in
        let k, off = committed 0 0 sizes in
        let expect = List.filteri (fun i _ -> i < k) ops in
        if got <> expect || clean <> off then ok := false
      done;
      Sys.remove path;
      !ok)

let test_journal_recovery_byte_identity () =
  (* a journaled server is stopped; its successor must recover every
     scenario and serve warm bytes identical to the original's *)
  let path = tmp_journal () in
  Sys.remove path;
  let cfg =
    { Server.default_config with Server.preload = false; journal = Some path }
  in
  let text = Lazy.force books_src in
  let before =
    with_server ~cfg @@ fun _srv port ->
    let status, _ = http_request ~port "PUT" "/scenarios/books" text in
    Alcotest.(check int) "put journaled" 201 status;
    let s1, _ = http_request ~port "PUT" "/scenarios/doomed" text in
    Alcotest.(check int) "second put" 201 s1;
    let s2, _ = http_request ~port "DELETE" "/scenarios/doomed" "" in
    Alcotest.(check int) "delete journaled" 200 s2;
    let s3, body = http_request ~port "POST" "/scenarios/books/discover" "" in
    Alcotest.(check int) "discover before" 200 s3;
    body
  in
  with_server ~cfg @@ fun srv port ->
  let met = Server.metrics srv in
  Alcotest.(check int) "one scenario recovered (delete replayed)" 1
    (Metrics.recovered_count met);
  Alcotest.(check bool) "recovery latency recorded" true
    (Metrics.recovery_ms met > 0.);
  let s, names = http_request ~port "GET" "/scenarios" "" in
  Alcotest.(check int) "list after restart" 200 s;
  Alcotest.(check bool) "books recovered" true (contains_sub names "books");
  Alcotest.(check bool) "doomed stayed deleted" false
    (contains_sub names "doomed");
  let s4, after = http_request ~port "POST" "/scenarios/books/discover" "" in
  Alcotest.(check int) "discover after" 200 s4;
  Alcotest.(check string) "byte-identical across the restart" before after;
  Sys.remove path

let test_journal_delta_roundtrip () =
  (* the Delta op frames like the others, interleaves with them, and
     [position] tracks the committed byte offset through appends *)
  let path = tmp_journal () in
  let ops =
    [
      Journal.Put { name = "s"; text = "schema s {}" };
      Journal.Delta { name = "s"; text = "# key 64 42\n+ person(\"hopper\")\n" };
      Journal.Delta { name = "s"; text = "- soldAt(\"taocp\", \"strand\")\n" };
      Journal.Delete "s";
    ]
  in
  let j = Journal.open_append path in
  List.iter (Journal.append j) ops;
  let pos = Journal.position j in
  Journal.close j;
  Alcotest.(check int) "position is the file size" pos
    (Unix.stat path).Unix.st_size;
  let got, clean = Journal.replay path in
  Alcotest.(check bool) "delta ops replay in order" true (got = ops);
  Alcotest.(check int) "clean prefix is the whole file" clean pos;
  Sys.remove path

(* one batch against the books scenario: a new author picks up an
   existing book, and one listing goes away *)
let books_batch =
  "# grow the bookstore graph\n\
   + person(\"hopper\")\n\
   + writes(\"hopper\", \"taocp\")\n\
   - soldAt(\"discipline\", \"powell\")\n"

let test_served_delta_endpoint () =
  with_server @@ fun _srv port ->
  let s0, _ = http_request ~port "PUT" "/scenarios/books" (Lazy.force books_src) in
  Alcotest.(check int) "put" 201 s0;
  let s1, body = http_request ~port "POST" "/scenarios/books/delta" books_batch in
  Alcotest.(check int) "delta applied" 200 s1;
  Alcotest.(check bool) "counters in the head" true
    (contains_sub body "\"src_inserted\": 2, \"src_deleted\": 1");
  Alcotest.(check bool) "batch sequence" true (contains_sub body "\"batch\": 1");
  Alcotest.(check bool) "new author reached the target" true
    (contains_sub body "hopper");
  (* an empty batch is a consistent read of the maintained document *)
  let s2, read = http_request ~port "POST" "/scenarios/books/delta" "" in
  Alcotest.(check int) "empty batch reads" 200 s2;
  Alcotest.(check bool) "read sees the maintained data" true
    (contains_sub read "hopper");
  let s3, bad =
    http_request ~port "POST" "/scenarios/books/delta" "+ nosuch(\"x\")\n"
  in
  Alcotest.(check int) "unknown table rejected" 400 s3;
  Alcotest.(check bool) "diagnostic names the table" true
    (contains_sub bad "nosuch")

(* The counters head carries the batch's wall-clock, the one
   legitimately non-deterministic byte span in a maintained document —
   blank it so the rest can be compared exactly. *)
let scrub_seconds body =
  match String.index_opt body 's' with
  | None -> body
  | Some _ ->
      let needle = "\"seconds\": " in
      let nl = String.length needle in
      let b = Buffer.create (String.length body) in
      let i = ref 0 in
      let n = String.length body in
      while !i < n do
        if !i + nl <= n && String.sub body !i nl = needle then begin
          Buffer.add_string b needle;
          Buffer.add_char b '_';
          i := !i + nl;
          while !i < n && body.[!i] <> '}' do incr i done
        end
        else begin
          Buffer.add_char b body.[!i];
          incr i
        end
      done;
      Buffer.contents b

let test_delta_journal_recovery_byte_identity () =
  (* a journaled delta must survive kill/restart: the successor replays
     the PUT and the delta and serves the maintained document with the
     same bytes *)
  let path = tmp_journal () in
  Sys.remove path;
  let cfg =
    { Server.default_config with Server.preload = false; journal = Some path }
  in
  let before =
    with_server ~cfg @@ fun _srv port ->
    let s0, _ =
      http_request ~port "PUT" "/scenarios/books" (Lazy.force books_src)
    in
    Alcotest.(check int) "put journaled" 201 s0;
    let s1, _ = http_request ~port "POST" "/scenarios/books/delta" books_batch in
    Alcotest.(check int) "delta journaled" 200 s1;
    let s2, read = http_request ~port "POST" "/scenarios/books/delta" "" in
    Alcotest.(check int) "read before" 200 s2;
    read
  in
  with_server ~cfg @@ fun _srv port ->
  let s3, after = http_request ~port "POST" "/scenarios/books/delta" "" in
  Alcotest.(check int) "read after restart" 200 s3;
  Alcotest.(check bool) "maintained data recovered" true
    (contains_sub after "hopper");
  Alcotest.(check string) "byte-identical across the restart"
    (scrub_seconds before) (scrub_seconds after);
  Sys.remove path

let test_slowloris_408 () =
  (* a connection that sends half a request and goes idle must be
     answered 408 and closed at the deadline, not parked forever *)
  let cfg =
    {
      Server.default_config with
      Server.preload = false;
      idle_timeout_s = 0.3;
    }
  in
  with_server ~cfg @@ fun srv port ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let partial = "GET /healthz HTT" in
      ignore (Unix.write_substring fd partial 0 (String.length partial));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let buf = Buffer.create 256 and chunk = Bytes.create 256 in
      let rec drain () =
        match Unix.read fd chunk 0 256 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      let raw = Buffer.contents buf in
      Alcotest.(check bool) "408 answered" true
        (contains_sub raw "HTTP/1.1 408");
      Alcotest.(check bool) "reason in body" true
        (contains_sub raw "idle past the read deadline"));
  Alcotest.(check int) "timeout counted" 1
    (Metrics.timeout_count (Server.metrics srv))

let test_supervised_parse_fault () =
  (* a certain parse fault becomes a diagnosed 500 on that request;
     the server keeps answering afterwards *)
  let fault =
    Fault.create ~seed:3
      [ (Fault.Parse, { Fault.quiet with Fault.p_raise = 1.0 }) ]
  in
  let cfg =
    { Server.default_config with Server.preload = false; fault = Some fault }
  in
  with_server ~cfg @@ fun srv port ->
  let status, body =
    http_request ~port "PUT" "/scenarios/x" (Lazy.force books_src)
  in
  Alcotest.(check int) "supervised 500" 500 status;
  Alcotest.(check bool) "diagnostic attached" true
    (contains_sub body "\"diagnostics\"");
  Alcotest.(check bool) "names the injection" true
    (contains_sub body "parse");
  let s2, _ = http_request ~port "GET" "/healthz" "" in
  Alcotest.(check int) "server alive after the fault" 200 s2;
  Alcotest.(check bool) "supervision counted" true
    (Metrics.supervised_count (Server.metrics srv) >= 1)

let test_breaker_sheds_with_retry_after () =
  (* every engine step raises: two 500s trip the scenario's breaker,
     the third request sheds 503 with Retry-After without touching the
     engine *)
  let fault =
    Fault.create ~seed:5
      [ (Fault.Engine_step, { Fault.quiet with Fault.p_raise = 1.0 }) ]
  in
  let cfg =
    {
      Server.default_config with
      Server.fault = Some fault;
      breaker = { Breaker.threshold = 2; cooldown_s = 60. };
    }
  in
  with_server ~cfg @@ fun srv port ->
  let p = "/scenarios/dblp/exchange?size=24" in
  let s1, _ = http_request ~port "POST" p "" in
  let s2, _ = http_request ~port "POST" p "" in
  Alcotest.(check (list int)) "two supervised 500s" [ 500; 500 ] [ s1; s2 ];
  let raw = http_request_raw ~port "POST" p "" in
  Alcotest.(check bool) "third sheds 503" true
    (contains_sub raw "HTTP/1.1 503");
  Alcotest.(check bool) "retry-after header" true
    (contains_sub raw "Retry-After:");
  Alcotest.(check bool) "circuit named" true (contains_sub raw "circuit open");
  let met = Server.metrics srv in
  Alcotest.(check bool) "trip counted" true (Metrics.breaker_trips met >= 1);
  Alcotest.(check bool) "shed counted" true
    (Metrics.breaker_shed_count met >= 1);
  (* an unrelated scenario's breaker is untouched: its requests still
     reach the (failing) engine rather than shedding *)
  let s4, _ = http_request ~port "POST" "/scenarios/mondial/exchange?size=24" "" in
  Alcotest.(check int) "other scenario not shed" 500 s4

let chaos_deterministic_report ~seed ~domains =
  let cfg =
    {
      (Chaos.config ~seed ~requests:40 ~domains ()) with
      Chaos.c_plan = Chaos.no_delay_plan;
      c_breaker = { Breaker.threshold = 3; cooldown_s = 0. };
    }
  in
  Chaos.run cfg

let prop_chaos_deterministic =
  (* the tentpole determinism property: the same fault seed yields a
     byte-identical failure schedule and outcome classification whether
     the server runs 1 domain or 4 — and the survival contract holds *)
  QCheck.Test.make ~name:"chaos: seed replays identically at 1 and 4 domains"
    ~count:2
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let a = chaos_deterministic_report ~seed ~domains:1 in
      let b = chaos_deterministic_report ~seed ~domains:4 in
      Chaos.ok a && Chaos.ok b
      && String.equal a.Chaos.r_schedule_digest b.Chaos.r_schedule_digest
      && String.equal a.Chaos.r_outcome_digest b.Chaos.r_outcome_digest)

let test_chaos_journaled_run () =
  (* a small end-to-end chaos run with the kill-and-recover phase *)
  let journal = tmp_journal () in
  let cfg = Chaos.config ~journal ~seed:11 ~requests:60 ~domains:2 () in
  let r = Chaos.run cfg in
  (try Sys.remove journal with Sys_error _ -> ());
  Alcotest.(check int) "no hangs" 0 r.Chaos.r_hangs;
  Alcotest.(check int) "no crashes" 0 r.Chaos.r_crashes;
  Alcotest.(check int) "no corrupt bodies" 0 r.Chaos.r_corrupt;
  Alcotest.(check bool) "recovery byte-identical" true r.Chaos.r_recovery_ok;
  Alcotest.(check bool) "both scenarios recovered" true (r.Chaos.r_recovered >= 2);
  Alcotest.(check bool) "drains quiesced" true r.Chaos.r_drained;
  Alcotest.(check bool) "verdict" true (Chaos.ok r)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "serve-http",
      [
        Alcotest.test_case "parse GET" `Quick test_parse_get;
        Alcotest.test_case "percent decode" `Quick test_parse_percent_decode;
        Alcotest.test_case "body" `Quick test_parse_body;
        Alcotest.test_case "missing length = empty" `Quick
          test_parse_missing_length_means_empty;
        Alcotest.test_case "byte at a time" `Quick test_parse_byte_at_a_time;
        Alcotest.test_case "pipelined" `Quick test_parse_pipelined;
        Alcotest.test_case "keep-alive rules" `Quick test_keep_alive_rules;
        Alcotest.test_case "malformed lines" `Quick test_reject_malformed_line;
        Alcotest.test_case "unknown method" `Quick test_reject_unknown_method;
        Alcotest.test_case "bad escapes" `Quick test_reject_bad_escape;
        Alcotest.test_case "long line" `Quick test_reject_long_line;
        Alcotest.test_case "header bomb" `Quick test_reject_header_bomb;
        Alcotest.test_case "bad content-length" `Quick
          test_reject_bad_content_length;
        Alcotest.test_case "oversized body" `Quick test_reject_oversized_body;
        q prop_parser_never_raises;
        q prop_parser_roundtrip;
      ] );
    ( "serve-registry",
      [
        Alcotest.test_case "put hash dedup" `Quick test_registry_put_hash_dedup;
        Alcotest.test_case "put rejects garbage" `Quick
          test_registry_put_rejects_garbage;
        Alcotest.test_case "discover cache" `Quick test_registry_discover_cache;
        Alcotest.test_case "exchange cache + bytes" `Quick
          test_registry_exchange_cache_and_bytes;
      ] );
    ( "serve-server",
      [
        Alcotest.test_case "exchange parity, 7 domains, warm+cold" `Slow
          test_served_exchange_parity_all_domains;
        Alcotest.test_case "discover parity" `Quick test_served_discover_parity;
        Alcotest.test_case "budget exhaustion 503" `Quick
          test_served_budget_exhaustion;
        Alcotest.test_case "error statuses" `Quick test_served_errors;
        Alcotest.test_case "delta endpoint" `Quick test_served_delta_endpoint;
        Alcotest.test_case "admission control 429" `Quick test_admission_control;
        Alcotest.test_case "concurrent load, domains=4" `Slow
          test_concurrent_load_and_metrics;
      ] );
    ( "serve-journal",
      [
        Alcotest.test_case "append/replay roundtrip" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "corrupt record drops tail" `Quick
          test_journal_corrupt_record_drops_tail;
        q prop_journal_torn_tail;
        Alcotest.test_case "restart recovers byte-identical" `Quick
          test_journal_recovery_byte_identity;
        Alcotest.test_case "delta op roundtrip + position" `Quick
          test_journal_delta_roundtrip;
        Alcotest.test_case "delta restart recovers byte-identical" `Quick
          test_delta_journal_recovery_byte_identity;
      ] );
    ( "serve-robust",
      [
        Alcotest.test_case "slowloris answered 408" `Quick test_slowloris_408;
        Alcotest.test_case "parse fault supervised to 500" `Quick
          test_supervised_parse_fault;
        Alcotest.test_case "breaker sheds with retry-after" `Quick
          test_breaker_sheds_with_retry_after;
      ] );
    ( "serve-chaos",
      [
        q prop_chaos_deterministic;
        Alcotest.test_case "journaled chaos run survives" `Slow
          test_chaos_journaled_run;
      ] );
  ]
