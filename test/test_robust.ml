(* Robustness suite: resource budgets, typed diagnostics, degradation
   ladders, and never-crash fuzzing over malformed inputs.

   The fuzz volumes scale with SMG_FUZZ_COUNT (default 1000 mutations);
   CI smoke runs set it low, nightly/thorough runs raise it. *)

module Budget = Smg_robust.Budget
module Diag = Smg_robust.Diag
module Digraph = Smg_graph.Digraph
module Steiner = Smg_graph.Steiner
module Paths = Smg_graph.Paths
module Schema = Smg_relational.Schema
module Parser = Smg_dsl.Parser
module Ast = Smg_dsl.Ast
module Design = Smg_er2rel.Design
module Discover = Smg_core.Discover
module Mapping = Smg_cq.Mapping
module Engine = Smg_exchange.Engine

let fuzz_count =
  match Sys.getenv_opt "SMG_FUZZ_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1000)
  | None -> 1000

(* ---- budgets ----------------------------------------------------------- *)

let test_budget_fuel () =
  let b = Budget.create ~fuel:5 () in
  Alcotest.(check (option int)) "full tank" (Some 5) (Budget.remaining_fuel b);
  for _ = 1 to 5 do
    Alcotest.(check bool) "within fuel" true (Budget.tick b)
  done;
  Alcotest.(check bool) "sixth tick exhausts" false (Budget.tick b);
  Alcotest.(check bool) "sticky" false (Budget.tick b);
  Alcotest.(check bool) "exhausted by fuel" true
    (Budget.exhausted b = Some Budget.Fuel)

let test_budget_burn () =
  let b = Budget.create ~fuel:100 () in
  Alcotest.(check bool) "burn within" true (Budget.burn b 100);
  Alcotest.(check bool) "burn past" false (Budget.burn b 1);
  let b2 = Budget.create ~fuel:10 () in
  Alcotest.(check bool) "overdraft in one burn" false (Budget.burn b2 11)

let test_budget_deadline () =
  (* a deadline strictly in the past trips at the first wall-clock check
     (0. could compare equal within the clock's quantum) *)
  let b = Budget.create ~deadline_ms:(-1.) ~interval:1 () in
  ignore (Budget.tick b);
  Alcotest.(check bool) "deadline trips" true
    (Budget.exhausted b = Some Budget.Deadline);
  Alcotest.(check bool) "ok reports it" false (Budget.ok b)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 10_000 do
    ignore (Budget.tick b)
  done;
  Alcotest.(check bool) "never exhausts" true (Budget.exhausted b = None);
  Alcotest.(check (option int)) "no fuel gauge" None (Budget.remaining_fuel b)

let test_budget_exn () =
  let b = Budget.create ~fuel:3 () in
  (match Budget.burn_exn b 10 with
  | () -> Alcotest.fail "expected Exhausted"
  | exception Budget.Exhausted Budget.Fuel -> ());
  match Budget.tick_exn b with
  | () -> Alcotest.fail "stays exhausted"
  | exception Budget.Exhausted Budget.Fuel -> ()

(* ---- diagnostics ------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_diag_render () =
  let d =
    Diag.errorf
      ~loc:(Diag.loc ~file:"x.smg" ~line:3 ~col:7 ())
      ~subject:"table t" Diag.Parse "unexpected %s" "token"
  in
  let s = Fmt.str "%a" Diag.pp d in
  Alcotest.(check bool) "located" true
    (String.length s >= 10 && String.sub s 0 10 = "x.smg:3:7:");
  Alcotest.(check bool) "carries subject and message" true
    (contains ~sub:"table t" s && contains ~sub:"unexpected token" s)

let test_diag_counts () =
  let ds =
    [
      Diag.errorf Diag.Parse "e1";
      Diag.warnf Diag.Discover "w1";
      Diag.infof Diag.Exchange "i1";
      Diag.errorf Diag.Validate "e2";
    ]
  in
  Alcotest.(check bool) "counts" true (Diag.count ds = (2, 1, 1));
  Alcotest.(check bool) "has errors" true (Diag.has_errors ds);
  Alcotest.(check int) "exit code" 2 (Diag.exit_code ds);
  Alcotest.(check int) "clean exit" 0
    (Diag.exit_code [ Diag.warnf Diag.Discover "w" ])

let test_diag_of_exn () =
  let d = Diag.of_exn ~subject:"s" Diag.Discover (Invalid_argument "boom") in
  Alcotest.(check bool) "error severity" true (Diag.is_error d);
  Alcotest.(check bool) "carries message" true
    (contains ~sub:"boom" d.Diag.d_message)

let test_diag_collector () =
  let c = Diag.collector () in
  Diag.add c (Diag.warnf Diag.Verify "first");
  Diag.add c (Diag.errorf Diag.Verify "second");
  match Diag.diags c with
  | [ a; b ] ->
      Alcotest.(check bool) "emission order" true
        (a.Diag.d_message = "first" && b.Diag.d_message = "second")
  | _ -> Alcotest.fail "expected two diagnostics"

(* ---- Steiner degradation ---------------------------------------------- *)

(* path graph 0 -> 1 -> 2 -> 3 with unit costs, plus a direct 0 -> 3 *)
let line_graph () =
  Digraph.make ~n:4 [ (0, 1, ()); (1, 2, ()); (2, 3, ()); (0, 3, ()) ]

let unit_cost _ = Some 1.

let test_arborescence_empty_terminals () =
  let g = line_graph () in
  Alcotest.(check bool) "None, not Invalid_argument" true
    (Steiner.arborescence g ~cost:unit_cost ~root:0 ~terminals:[] = None)

let test_minimal_trees_empty () =
  let g = line_graph () in
  let sol =
    Steiner.minimal_trees_bounded g ~cost:unit_cost ~roots:[ 0 ] ~terminals:[]
  in
  Alcotest.(check bool) "empty and exact" true
    (sol.Steiner.trees = [] && sol.Steiner.exact)

let test_steiner_fallback () =
  let g = line_graph () in
  (* fuel too small for the DP but enough for Dijkstra fallback *)
  let b = Budget.create ~fuel:1 () in
  let sol =
    Steiner.minimal_trees_bounded ~budget:b g ~cost:unit_cost ~roots:[ 0 ]
      ~terminals:[ 2; 3 ]
  in
  Alcotest.(check bool) "degraded" true (not sol.Steiner.exact);
  Alcotest.(check bool) "still produces a tree" true (sol.Steiner.trees <> []);
  List.iter
    (fun (t : Steiner.tree) ->
      let nodes = Steiner.tree_nodes g t in
      Alcotest.(check bool) "covers terminals" true
        (List.mem 2 nodes && List.mem 3 nodes))
    sol.Steiner.trees

let test_steiner_bounded_matches_exact () =
  let g = line_graph () in
  let exact =
    Steiner.minimal_trees g ~cost:unit_cost ~roots:[ 0 ] ~terminals:[ 2; 3 ]
  in
  let sol =
    Steiner.minimal_trees_bounded
      ~budget:(Budget.create ~fuel:1_000_000 ())
      g ~cost:unit_cost ~roots:[ 0 ] ~terminals:[ 2; 3 ]
  in
  Alcotest.(check bool) "ample budget stays exact" true sol.Steiner.exact;
  Alcotest.(check bool) "same trees" true (sol.Steiner.trees = exact)

let test_paths_budget_truncates () =
  let g = line_graph () in
  let b = Budget.create ~fuel:0 () in
  let ps =
    Paths.simple_paths ~budget:b g ~src:0 ~dst:3 ~max_len:5 ~ok:(fun _ -> true)
  in
  Alcotest.(check bool) "no crash, truncated enumeration" true
    (List.length ps
    <= List.length
         (Paths.simple_paths g ~src:0 ~dst:3 ~max_len:5 ~ok:(fun _ -> true)))

(* ---- provenance flag --------------------------------------------------- *)

let test_mark_approximate () =
  let q =
    Smg_cq.Query.make
      ~head:[ Smg_cq.Atom.Var "x" ]
      [ Smg_cq.Atom.atom "t" [ Smg_cq.Atom.Var "x" ] ]
  in
  let m =
    Mapping.make ~name:"m" ~src_query:q ~tgt_query:q
      ~covered:[ Mapping.corr ~src:("t", "x") ~tgt:("t", "x") ]
      ()
  in
  Alcotest.(check bool) "initially exact" false (Mapping.is_approximate m);
  let m1 = Mapping.mark_approximate "budget ran dry" m in
  Alcotest.(check bool) "flagged" true (Mapping.is_approximate m1);
  let m2 = Mapping.mark_approximate "again" m1 in
  Alcotest.(check bool) "idempotent" true
    (m2.Mapping.provenance = m1.Mapping.provenance);
  let m3 = Mapping.rename "other" m1 in
  Alcotest.(check bool) "survives rename" true (Mapping.is_approximate m3)

(* ---- parser fuzzing ---------------------------------------------------- *)

(* tests run from _build/default/test under [dune runtest], from the
   project root under [dune exec] — probe both *)
let in_tree path =
  if Sys.file_exists path then path else Filename.concat "../../.." path

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let books_src = lazy (read_file (in_tree "scenarios/books.smg"))

(* parse_result must never raise, whatever the input *)
let never_raises src =
  match Parser.parse_result ~file:"fuzz.smg" src with
  | Ok _ -> true
  | Error d -> d.Diag.d_severity = Diag.Error && d.Diag.d_stage = Diag.Parse
  | exception e ->
      Alcotest.failf "escaped exception %s on %S" (Printexc.to_string e)
        (String.sub src 0 (min 80 (String.length src)))

let test_fuzz_truncations () =
  let src = Lazy.force books_src in
  let n = String.length src in
  let step = max 1 (n / 400) in
  let i = ref 0 in
  while !i <= n do
    ignore (never_raises (String.sub src 0 !i));
    i := !i + step
  done

(* deterministic LCG so failures reproduce *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := (!state * 1103515245) + 12345;
    (!state lsr 16) mod bound

let test_fuzz_mutations () =
  let src = Lazy.force books_src in
  let rand = lcg 0x5eed in
  let n = String.length src in
  for _ = 1 to fuzz_count do
    let b = Bytes.of_string src in
    (* 1-4 byte mutations: overwrite with arbitrary bytes *)
    for _ = 0 to rand 4 do
      Bytes.set b (rand n) (Char.chr (rand 256))
    done;
    ignore (never_raises (Bytes.to_string b))
  done

let corpus_dir () = in_tree "test/corpus"

let test_fuzz_corpus () =
  let dir = corpus_dir () in
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".smg")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (List.length entries >= 8);
  List.iter
    (fun f -> ignore (never_raises (read_file (Filename.concat dir f))))
    entries

let test_corpus_crash_classes () =
  (* the known-bad fixtures must fail as *located parse* diagnostics *)
  let expect_error f =
    let src = read_file (Filename.concat (corpus_dir ()) f) in
    match Parser.parse_result ~file:f src with
    | Ok _ -> Alcotest.failf "%s unexpectedly parsed" f
    | Error d ->
        Alcotest.(check bool) (f ^ " is an error") true (Diag.is_error d)
  in
  List.iter expect_error
    [
      "truncated_schema.smg";
      "bad_char.smg";
      "bad_copy_index.smg";
      "missing_type.smg";
      "dup_table.smg";
      "unbalanced.smg";
      "stray_bytes.smg";
    ]

let test_corpus_validate_classes () =
  (* fixtures that parse fine but must be caught by the validate stage *)
  let parse f =
    match
      Parser.parse_result ~file:f (read_file (Filename.concat (corpus_dir ()) f))
    with
    | Ok doc -> doc
    | Error d -> Alcotest.failf "%s should parse: %a" f Diag.pp d
  in
  (* semantics over a class absent from the CM *)
  let doc = parse "unknown_class.smg" in
  let cmg = Smg_cm.Cm_graph.compile (List.hd doc.Ast.doc_cms) in
  let tbl = List.hd (List.hd doc.Ast.doc_schemas).Schema.tables in
  let st = (List.hd doc.Ast.doc_semantics).Ast.sem_stree in
  (match Smg_semantics.Stree.validate_result cmg tbl st with
  | Ok () -> Alcotest.fail "unknown class should not validate"
  | Error msg ->
      Alcotest.(check bool) "diagnosed" true (String.length msg > 0));
  (* correspondence over a column no s-tree maps: caught by lint *)
  let doc = parse "unknown_corr_column.smg" in
  match (doc.Ast.doc_schemas, doc.Ast.doc_cms, doc.Ast.doc_semantics) with
  | [ s_schema; t_schema ], [ s_cm; t_cm ], sems ->
      let strees_for (schema : Schema.t) =
        List.filter_map
          (fun (b : Ast.semantics_block) ->
            if
              List.exists
                (fun (t : Schema.table) ->
                  String.equal t.Schema.tbl_name b.Ast.sem_table)
                schema.Schema.tables
            then Some b.Ast.sem_stree
            else None)
          sems
      in
      let source =
        Discover.side ~schema:s_schema ~cm:s_cm (strees_for s_schema)
      in
      let target =
        Discover.side ~schema:t_schema ~cm:t_cm (strees_for t_schema)
      in
      let ds = Discover.lint ~source ~target ~corrs:doc.Ast.doc_corrs in
      Alcotest.(check bool) "lint flags the correspondence" true
        (Diag.has_errors ds)
  | _ -> Alcotest.fail "unexpected fixture shape"

(* ---- end-to-end: parse → validate → discover → exchange never crashes -- *)

let corrupt_corrs rand (src : Schema.t) (tgt : Schema.t) =
  let columns (s : Schema.t) =
    List.concat_map
      (fun (t : Schema.table) ->
        List.map (fun c -> (t.Schema.tbl_name, c)) (Schema.column_names t))
      s.Schema.tables
  in
  let sc = Array.of_list (columns src) and tc = Array.of_list (columns tgt) in
  let pick arr junk =
    (* mostly real columns, sometimes garbage that must be diagnosed *)
    if Array.length arr = 0 || rand 4 = 0 then junk
    else arr.(rand (Array.length arr))
  in
  List.init
    (1 + rand 3)
    (fun i ->
      Mapping.corr
        ~src:(pick sc ("ghost_table", Printf.sprintf "ghost%d" i))
        ~tgt:(pick tc ("phantom", "col")))
  |> List.sort_uniq compare

let prop_pipeline_never_crashes =
  QCheck.Test.make ~name:"bounded pipeline never crashes, respects deadline"
    ~count:(max 20 (fuzz_count / 20))
    Test_fuzz.arb_scenario
    (fun (src_cm, tgt_cm, src_cfg, tgt_cfg, seed) ->
      let src_schema, src_strees = Design.design ~config:src_cfg src_cm in
      let tgt_schema, tgt_strees = Design.design ~config:tgt_cfg tgt_cm in
      let source = Discover.side ~schema:src_schema ~cm:src_cm src_strees in
      let target = Discover.side ~schema:tgt_schema ~cm:tgt_cm tgt_strees in
      let rand = lcg seed in
      let corrs = corrupt_corrs rand src_schema tgt_schema in
      QCheck.assume (corrs <> []);
      (* lint never raises *)
      let (_ : Diag.t list) = Discover.lint ~source ~target ~corrs in
      let deadline_ms = 150. in
      let budget =
        Budget.create ~deadline_ms ~fuel:(500 + rand 5_000) ()
      in
      let t0 = Unix.gettimeofday () in
      let o = Discover.discover_bounded ~budget ~source ~target ~corrs () in
      let elapsed_ms = 1000. *. (Unix.gettimeofday () -. t0) in
      (* generous slack: the point is "no unbounded overrun", checked at
         interval granularity, not hard real-time *)
      if elapsed_ms > deadline_ms +. 2_000. then
        QCheck.Test.fail_reportf "deadline overrun: %.0f ms" elapsed_ms;
      (* a clean run must report exactness; a degraded one must not *)
      if Budget.exhausted budget = None && o.Discover.o_diags = [] then
        assert o.Discover.o_exact;
      (* exchange the best candidate under a tiny budget: must complete
         or stop cleanly, never raise *)
      (match o.Discover.o_mappings with
      | [] -> ()
      | best :: _ ->
          let inst =
            Smg_eval.Witness.populate ~rows_per_table:5 ~seed src_schema
          in
          let eb = Budget.create ~fuel:2_000 () in
          match
            Engine.run_bounded ~budget:eb ~source:src_schema
              ~target:tgt_schema
              ~mappings:[ Mapping.to_tgd best ]
              inst
          with
          | Engine.Complete _ | Engine.Budget_exhausted _ | Engine.Failed _ ->
              ());
      true)

(* ---- acceptance: tiny fuel on a real domain ---------------------------- *)

let test_tiny_fuel_mondial () =
  let scen =
    List.find
      (fun (s : Smg_eval.Scenario.t) ->
        s.Smg_eval.Scenario.scen_name = "Mondial")
      (Smg_eval.Datasets.all ())
  in
  let case = List.hd scen.Smg_eval.Scenario.cases in
  let budget = Budget.create ~fuel:200 () in
  let o =
    Discover.discover_bounded ~budget ~source:scen.Smg_eval.Scenario.source
      ~target:scen.Smg_eval.Scenario.target
      ~corrs:case.Smg_eval.Scenario.corrs ()
  in
  Alcotest.(check bool) "budget exhausted" true
    (Budget.exhausted budget <> None);
  Alcotest.(check bool) "still returns candidates" true
    (o.Discover.o_mappings <> []);
  Alcotest.(check bool) "not exact" false o.Discover.o_exact;
  Alcotest.(check bool) "degraded candidates flagged approximate" true
    (List.exists Mapping.is_approximate o.Discover.o_mappings);
  Alcotest.(check bool) "summarized in diagnostics" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.d_severity = Diag.Warning)
       o.Discover.o_diags)

let test_unbounded_equals_legacy () =
  let scen =
    List.find
      (fun (s : Smg_eval.Scenario.t) -> s.Smg_eval.Scenario.scen_name = "DBLP")
      (Smg_eval.Datasets.all ())
  in
  let case = List.hd scen.Smg_eval.Scenario.cases in
  let source = scen.Smg_eval.Scenario.source
  and target = scen.Smg_eval.Scenario.target in
  let corrs = case.Smg_eval.Scenario.corrs in
  let legacy = Discover.discover ~source ~target ~corrs () in
  let o = Discover.discover_bounded ~source ~target ~corrs () in
  Alcotest.(check bool) "exact without budget" true o.Discover.o_exact;
  Alcotest.(check int) "same candidate count" (List.length legacy)
    (List.length o.Discover.o_mappings);
  Alcotest.(check bool) "same scores" true
    (List.for_all2
       (fun (a : Mapping.t) (b : Mapping.t) ->
         a.Mapping.score = b.Mapping.score)
       legacy o.Discover.o_mappings)

let test_lint_clean_scenario () =
  let scen =
    List.find
      (fun (s : Smg_eval.Scenario.t) -> s.Smg_eval.Scenario.scen_name = "DBLP")
      (Smg_eval.Datasets.all ())
  in
  let case = List.hd scen.Smg_eval.Scenario.cases in
  let ds =
    Discover.lint ~source:scen.Smg_eval.Scenario.source
      ~target:scen.Smg_eval.Scenario.target
      ~corrs:case.Smg_eval.Scenario.corrs
  in
  Alcotest.(check bool) "no errors on a curated scenario" false
    (Diag.has_errors ds)

let test_lint_flags_bad_corr () =
  let scen =
    List.find
      (fun (s : Smg_eval.Scenario.t) -> s.Smg_eval.Scenario.scen_name = "DBLP")
      (Smg_eval.Datasets.all ())
  in
  let ds =
    Discover.lint ~source:scen.Smg_eval.Scenario.source
      ~target:scen.Smg_eval.Scenario.target
      ~corrs:[ Mapping.corr ~src:("nope", "x") ~tgt:("nada", "y") ]
  in
  Alcotest.(check bool) "bad correspondence diagnosed" true
    (Diag.has_errors ds)

(* ---- exchange budgets -------------------------------------------------- *)

let test_exchange_budget () =
  let scen =
    List.find
      (fun (s : Smg_eval.Scenario.t) -> s.Smg_eval.Scenario.scen_name = "DBLP")
      (Smg_eval.Datasets.all ())
  in
  let source = scen.Smg_eval.Scenario.source.Discover.schema
  and target = scen.Smg_eval.Scenario.target.Discover.schema in
  let case = List.hd scen.Smg_eval.Scenario.cases in
  let mappings =
    match
      Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen case
    with
    | [] -> Alcotest.fail "no mapping discovered for DBLP"
    | best :: _ -> [ Mapping.to_tgd best ]
  in
  let inst = Smg_eval.Witness.populate ~rows_per_table:30 ~seed:7 source in
  (* ample budget: same result as the unbounded run *)
  (match
     Engine.run_bounded
       ~budget:(Budget.create ~fuel:10_000_000 ())
       ~source ~target ~mappings inst
   with
  | Engine.Complete rep ->
      let unbounded =
        match Engine.run ~source ~target ~mappings inst with
        | Ok r -> r
        | Error msg -> Alcotest.failf "unbounded run failed: %s" msg
      in
      Alcotest.(check int) "same target size"
        (Smg_relational.Instance.total_tuples
           unbounded.Engine.r_target)
        (Smg_relational.Instance.total_tuples rep.Engine.r_target)
  | Engine.Budget_exhausted _ -> Alcotest.fail "ample budget exhausted"
  | Engine.Failed msg -> Alcotest.failf "exchange failed: %s" msg);
  (* starvation budget: clean partial stop *)
  match
    Engine.run_bounded
      ~budget:(Budget.create ~fuel:50 ())
      ~source ~target ~mappings inst
  with
  | Engine.Budget_exhausted (Budget.Fuel, rep) ->
      Alcotest.(check bool) "partial flagged incomplete" false
        rep.Engine.r_complete
  | Engine.Budget_exhausted (Budget.Deadline, _) ->
      Alcotest.fail "expected fuel exhaustion"
  | Engine.Complete _ -> Alcotest.fail "tiny budget completed"
  | Engine.Failed msg -> Alcotest.failf "exchange failed: %s" msg

(* ---- fault plane -------------------------------------------------------- *)

module Fault = Smg_robust.Fault
module Retry = Smg_robust.Retry
module Breaker = Smg_robust.Breaker

let test_fault_replay () =
  (* the same seed replays the same schedule, consultation by
     consultation, whatever the interleaving of other points *)
  let plan =
    [
      (Fault.Parse, { Fault.p_raise = 0.3; p_delay = 0.2; delay_s = 0.; p_short = 0.1 });
      (Fault.Engine_step, { Fault.p_raise = 0.5; p_delay = 0.; delay_s = 0.; p_short = 0. });
    ]
  in
  let consult f =
    for i = 1 to 200 do
      ignore (Fault.decide f Fault.Parse);
      if i mod 3 = 0 then ignore (Fault.decide f Fault.Engine_step)
    done
  in
  let a = Fault.create ~seed:99 plan and b = Fault.create ~seed:99 plan in
  consult a;
  consult b;
  Alcotest.(check string) "same digest" (Fault.schedule_digest a)
    (Fault.schedule_digest b);
  Alcotest.(check bool) "schedules equal" true
    (Fault.schedule a = Fault.schedule b);
  let c = Fault.create ~seed:100 plan in
  consult c;
  Alcotest.(check bool) "different seed diverges" true
    (Fault.schedule_digest a <> Fault.schedule_digest c)

let test_fault_bounds () =
  let n = 2000 in
  let consult_all f p = for _ = 1 to n do ignore (Fault.decide f p) done in
  (* p = 0: never fires; absent from the plan: never fires *)
  let never = Fault.create ~seed:1 [ (Fault.Parse, Fault.quiet) ] in
  consult_all never Fault.Parse;
  consult_all never Fault.Pool_task;
  Alcotest.(check int) "quiet never fires" 0 (Fault.total_injected never);
  Alcotest.(check int) "consultations counted" n
    (Fault.decisions never Fault.Parse);
  (* p = 1: always fires, and fire raises Injected *)
  let always =
    Fault.create ~seed:1
      [ (Fault.Parse, { Fault.quiet with Fault.p_raise = 1.0 }) ]
  in
  consult_all always Fault.Parse;
  Alcotest.(check int) "certain always fires" n
    (Fault.injected always Fault.Parse);
  (match Fault.fire always Fault.Parse with
  | () -> Alcotest.fail "expected Injected"
  | exception Fault.Injected Fault.Parse -> ());
  (* p = 0.5: the stream is statistically plausible *)
  let half =
    Fault.create ~seed:7
      [ (Fault.Parse, { Fault.quiet with Fault.p_raise = 0.5 }) ]
  in
  consult_all half Fault.Parse;
  let k = Fault.injected half Fault.Parse in
  Alcotest.(check bool) "half fires about half the time" true
    (k > (n * 2 / 5) && k < (n * 3 / 5))

let test_retry_backoff () =
  (* jitter 0 makes the sequence the pure clamped exponential *)
  let p =
    {
      Retry.attempts = 4;
      base_delay_s = 0.01;
      multiplier = 2.;
      max_delay_s = 0.04;
      jitter = 0.;
      seed = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "retry 1" 0.01 (Retry.delay_s p ~retry:1);
  Alcotest.(check (float 1e-9)) "retry 2" 0.02 (Retry.delay_s p ~retry:2);
  Alcotest.(check (float 1e-9)) "retry 3" 0.04 (Retry.delay_s p ~retry:3);
  Alcotest.(check (float 1e-9)) "capped" 0.04 (Retry.delay_s p ~retry:9);
  let sleeps = ref [] in
  let fails = ref 2 in
  let o =
    Retry.run
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      p
      ~retryable:(fun _ -> true)
      (fun () ->
        if !fails > 0 then begin
          decr fails;
          failwith "transient"
        end;
        42)
  in
  Alcotest.(check bool) "succeeds" true (o.Retry.result = Ok 42);
  Alcotest.(check int) "three tries" 3 o.Retry.tries;
  Alcotest.(check (list (float 1e-9))) "exact backoff sleeps" [ 0.01; 0.02 ]
    (List.rev !sleeps)

let test_retry_gives_up () =
  let p = { Retry.default with Retry.attempts = 3; jitter = 0. } in
  let tries = ref 0 in
  let o =
    Retry.run
      ~sleep:(fun _ -> ())
      p
      ~retryable:(fun _ -> true)
      (fun () -> incr tries; failwith "always")
  in
  Alcotest.(check bool) "error result" true (Result.is_error o.Retry.result);
  Alcotest.(check int) "all attempts used" 3 o.Retry.tries;
  Alcotest.(check int) "thunk ran each time" 3 !tries;
  (* a non-retryable exception ends the loop on the first try *)
  let o2 =
    Retry.run
      ~sleep:(fun _ -> ())
      p
      ~retryable:(fun _ -> false)
      (fun () -> raise Exit)
  in
  Alcotest.(check int) "non-retryable stops" 1 o2.Retry.tries;
  Alcotest.(check bool) "carries the exn" true (o2.Retry.result = Error Exit)

let test_breaker_fsm () =
  (* fake clock: the whole FSM is driven without sleeping *)
  let br = Breaker.create ~config:{ Breaker.threshold = 2; cooldown_s = 10. } () in
  let t0 = 1000. in
  Alcotest.(check bool) "starts closed" true (Breaker.state br = `Closed);
  Alcotest.(check bool) "closed admits" true (Breaker.admit br ~now:t0 = Breaker.Allow);
  Breaker.failure br ~now:t0;
  Alcotest.(check bool) "below threshold stays closed" true
    (Breaker.state br = `Closed);
  Breaker.failure br ~now:t0;
  Alcotest.(check bool) "threshold opens" true (Breaker.state br = `Open);
  Alcotest.(check int) "one trip" 1 (Breaker.trips br);
  (match Breaker.admit br ~now:(t0 +. 5.) with
  | Breaker.Shed ra -> Alcotest.(check bool) "retry-after positive" true (ra >= 1)
  | Breaker.Allow -> Alcotest.fail "open must shed inside the cooldown");
  (* past the cooldown: one probe is admitted, duplicates shed *)
  Alcotest.(check bool) "half-open probe" true
    (Breaker.admit br ~now:(t0 +. 11.) = Breaker.Allow);
  Alcotest.(check bool) "half-open state" true (Breaker.state br = `Half_open);
  Alcotest.(check bool) "second probe sheds" true
    (Breaker.admit br ~now:(t0 +. 11.) <> Breaker.Allow);
  Breaker.failure br ~now:(t0 +. 11.);
  Alcotest.(check bool) "failed probe re-opens" true (Breaker.state br = `Open);
  Alcotest.(check int) "second trip" 2 (Breaker.trips br);
  Alcotest.(check bool) "probe again later" true
    (Breaker.admit br ~now:(t0 +. 22.) = Breaker.Allow);
  Breaker.success br;
  Alcotest.(check bool) "successful probe closes" true
    (Breaker.state br = `Closed);
  Alcotest.(check bool) "closed again admits" true
    (Breaker.admit br ~now:(t0 +. 23.) = Breaker.Allow)

let test_budget_wall_allowance () =
  (* the relative allowance drains against real elapsed time; interval 1
     checks the clock on every tick *)
  let b = Budget.create ~deadline_ms:30. ~interval:1 () in
  let ticks = ref 0 in
  while Budget.tick b && !ticks < 1000 do
    incr ticks;
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "deadline fired" true
    (Budget.exhausted b = Some Budget.Deadline);
  Alcotest.(check bool) "fired in bounded ticks" true (!ticks < 1000);
  (* children of a split inherit only the remaining allowance *)
  let parent = Budget.create ~deadline_ms:30. ~interval:1 () in
  Unix.sleepf 0.05;
  match Budget.split parent ~parts:2 with
  | [ c1; c2 ] ->
      Alcotest.(check bool) "spent parent's children are born spent" false
        (Budget.ok c1 && Budget.ok c2)
  | _ -> Alcotest.fail "split arity"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "robust.budget",
      [
        Alcotest.test_case "fuel" `Quick test_budget_fuel;
        Alcotest.test_case "burn" `Quick test_budget_burn;
        Alcotest.test_case "deadline" `Quick test_budget_deadline;
        Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
        Alcotest.test_case "exceptions" `Quick test_budget_exn;
        Alcotest.test_case "wall allowance" `Quick test_budget_wall_allowance;
      ] );
    ( "robust.fault",
      [
        Alcotest.test_case "seeded replay" `Quick test_fault_replay;
        Alcotest.test_case "probability bounds" `Quick test_fault_bounds;
      ] );
    ( "robust.retry",
      [
        Alcotest.test_case "exact backoff" `Quick test_retry_backoff;
        Alcotest.test_case "gives up" `Quick test_retry_gives_up;
      ] );
    ( "robust.breaker",
      [ Alcotest.test_case "state machine" `Quick test_breaker_fsm ] );
    ( "robust.diag",
      [
        Alcotest.test_case "render" `Quick test_diag_render;
        Alcotest.test_case "counts and exit codes" `Quick test_diag_counts;
        Alcotest.test_case "of_exn" `Quick test_diag_of_exn;
        Alcotest.test_case "collector order" `Quick test_diag_collector;
      ] );
    ( "robust.steiner",
      [
        Alcotest.test_case "empty terminals" `Quick
          test_arborescence_empty_terminals;
        Alcotest.test_case "empty bounded solution" `Quick
          test_minimal_trees_empty;
        Alcotest.test_case "fallback on exhaustion" `Quick
          test_steiner_fallback;
        Alcotest.test_case "ample budget exact" `Quick
          test_steiner_bounded_matches_exact;
        Alcotest.test_case "path budget truncates" `Quick
          test_paths_budget_truncates;
      ] );
    ( "robust.provenance",
      [ Alcotest.test_case "approximate flag" `Quick test_mark_approximate ] );
    ( "robust.fuzz",
      [
        Alcotest.test_case "truncations" `Quick test_fuzz_truncations;
        Alcotest.test_case "byte mutations" `Slow test_fuzz_mutations;
        Alcotest.test_case "regression corpus" `Quick test_fuzz_corpus;
        Alcotest.test_case "corpus crash classes" `Quick
          test_corpus_crash_classes;
        Alcotest.test_case "corpus validate classes" `Quick
          test_corpus_validate_classes;
        q prop_pipeline_never_crashes;
      ] );
    ( "robust.pipeline",
      [
        Alcotest.test_case "tiny fuel on Mondial" `Quick
          test_tiny_fuel_mondial;
        Alcotest.test_case "unbounded equals legacy" `Quick
          test_unbounded_equals_legacy;
        Alcotest.test_case "lint accepts curated scenario" `Quick
          test_lint_clean_scenario;
        Alcotest.test_case "lint flags bad correspondence" `Quick
          test_lint_flags_bad_corr;
        Alcotest.test_case "exchange budgets" `Quick test_exchange_budget;
      ] );
  ]
