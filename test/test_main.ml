(* Aggregates every test suite into one alcotest binary. *)

let () =
  Alcotest.run "smg"
    (Test_graph.suite @ Test_relational.suite @ Test_cq.suite @ Test_cm.suite
   @ Test_semantics.suite @ Test_ric.suite @ Test_er2rel.suite
   @ Test_discover.suite @ Test_dsl.suite @ Test_matching.suite
   @ Test_eval.suite @ Test_cm_discover.suite @ Test_fuzz.suite @ Test_sql.suite
   @ Test_verify.suite @ Test_exchange.suite @ Test_robust.suite
   @ Test_compose.suite @ Test_parallel.suite @ Test_serve.suite
   @ Test_generate.suite @ Test_delta.suite @ Test_shards.suite)
