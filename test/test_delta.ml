(* Tests for Smg_delta: the batch wire format, skolemization, and
   incremental maintenance — counting retraction, null collection, the
   key-egd layer under inserts and deletes — against the oracle of a
   full re-chase of the maintained source, plus a qcheck property over
   generated scenarios at 1 and 4 domains. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Engine = Smg_exchange.Engine
module Plan = Smg_exchange.Plan
module Batch = Smg_delta.Batch
module Maintain = Smg_delta.Maintain
module Skolemize = Smg_delta.Skolemize
module Pool = Smg_parallel.Pool
module Render = Smg_serve.Render
module Gen = Smg_generate.Gen
module Params = Smg_generate.Params

let v = Atom.v
let a = Atom.atom
let vs s = Value.VString s
let hom_equiv = Smg_verify.Equiv.equivalent

let contains_sub s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let fuzz_count default =
  match Sys.getenv_opt "SMG_FUZZ_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n -> min n default | None -> default)
  | None -> default

(* ---- fixture ------------------------------------------------------------ *)

let fsource =
  Schema.make ~name:"dsrc"
    [
      Schema.table "r" [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "u" [ ("b", Schema.TString) ];
    ]
    []

let ftarget =
  Schema.make ~name:"dtgt"
    [
      Schema.table ~key:[ "a" ] "s"
        [ ("a", Schema.TString); ("b", Schema.TString) ];
      Schema.table "t" [ ("b", Schema.TString); ("c", Schema.TString) ];
    ]
    []

let ftgds =
  [
    Dependency.tgd ~name:"m1"
      ~lhs:[ a "r" [ v "x"; v "y" ] ]
      [ a "s" [ v "x"; v "y" ] ];
    Dependency.tgd ~name:"m2"
      ~lhs:[ a "u" [ v "y" ] ]
      [ a "t" [ v "y"; v "z" ] ];
    Dependency.tgd ~name:"m3"
      ~lhs:[ a "r" [ v "x"; v "y" ]; a "u" [ v "y" ] ]
      [ a "s" [ v "x"; v "w" ]; a "t" [ v "w"; v "c" ] ];
  ]

let inst_of rows =
  List.fold_left
    (fun acc (name, header, tup) ->
      Instance.add_tuple acc name ~header (Array.of_list (List.map vs tup)))
    Instance.empty rows

let r_header = [ "a"; "b" ]
let u_header = [ "b" ]

let base_inst =
  inst_of
    [
      ("r", r_header, [ "a1"; "b1" ]);
      ("r", r_header, [ "a2"; "b2" ]);
      ("u", u_header, [ "b1" ]);
    ]

let prepare_exn ?(source = fsource) ?(target = ftarget) tgds =
  match Maintain.prepare ~source ~target ~mappings:tgds () with
  | Ok c -> c
  | Error m -> Alcotest.failf "prepare: %s" m

let init_exn ?shards compiled inst =
  match Maintain.init ?shards compiled inst with
  | Ok st -> st
  | Error m -> Alcotest.failf "init: %s" m

let apply_exn st batch =
  match Maintain.apply st batch with
  | Ok (st, c) -> (st, c)
  | Error m -> Alcotest.failf "apply: %s" m

let rebuild ?pool compiled inst =
  match Engine.execute ?pool compiled inst with
  | Engine.Complete r -> r
  | Engine.Budget_exhausted _ -> Alcotest.fail "rebuild exhausted"
  | Engine.Failed m -> Alcotest.failf "rebuild: %s" m

let check_equiv_rebuild msg st =
  let compiled_target = (Maintain.report st).Engine.r_target in
  let fresh =
    rebuild
      (prepare_exn ftgds)
      (Maintain.source st)
  in
  if not (hom_equiv compiled_target fresh.Engine.r_target) then
    Alcotest.failf "%s: maintained target not ≡hom a full re-chase" msg

(* ---- batch wire format -------------------------------------------------- *)

let test_batch_parse () =
  let text =
    "# a comment\n\n+ r(a3, \"b three, \\\"quoted\\\"\")\n- u(b1)\n+ u(b9)\n"
  in
  match Batch.parse ~schema:fsource text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok ops ->
      Alcotest.(check int) "ops" 3 (List.length ops);
      let ins, del = Batch.counts ops in
      Alcotest.(check int) "inserts" 2 ins;
      Alcotest.(check int) "deletes" 1 del;
      (match List.hd ops with
      | Batch.Insert ("r", tup) ->
          Alcotest.(check string)
            "quoted string" "b three, \"quoted\""
            (match tup.(1) with Value.VString s -> s | _ -> "?")
      | _ -> Alcotest.fail "expected insert into r");
      (* render → reparse round-trips *)
      let text' = Batch.to_string ops in
      (match Batch.parse ~schema:fsource text' with
      | Ok ops' -> Alcotest.(check bool) "round-trip" true (ops = ops')
      | Error m -> Alcotest.failf "reparse: %s" m)

let test_batch_errors () =
  let bad text frag =
    match Batch.parse ~schema:fsource text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error m ->
        if not (contains_sub m frag) then
          Alcotest.failf "error %S lacks %S" m frag
  in
  bad "+ nosuch(1)" "unknown source table";
  bad "+ r(onlyone)" "expects 2 values";
  bad "* r(a, b)" "expected '+' or '-'";
  bad "+ r(a, \"unterminated)" "unterminated"

(* ---- skolemization ------------------------------------------------------ *)

let test_skolemize () =
  let compiled = prepare_exn ftgds in
  List.iter
    (fun (p : Plan.t) ->
      Alcotest.(check int)
        (p.Plan.p_name ^ " mints no anonymous nulls")
        0 p.Plan.p_nnulls)
    compiled.Engine.c_plans;
  (* skolemized plans executed in bulk are ≡hom the restricted chase *)
  let plain =
    match
      Engine.run ~source:fsource ~target:ftarget ~mappings:ftgds base_inst
    with
    | Ok r -> r.Engine.r_target
    | Error m -> Alcotest.failf "plain run: %s" m
  in
  let skolem = (rebuild compiled base_inst).Engine.r_target in
  Alcotest.(check bool) "skolem ≡hom restricted" true (hom_equiv plain skolem)

(* ---- maintenance -------------------------------------------------------- *)

let test_init_matches_bulk () =
  let compiled = prepare_exn ftgds in
  let st = init_exn compiled base_inst in
  let bulk = (rebuild compiled base_inst).Engine.r_target in
  Alcotest.(check bool)
    "init target ≡hom bulk" true
    (hom_equiv (Maintain.target st) bulk);
  check_equiv_rebuild "init" st

let test_insert_delete_equiv () =
  let compiled = prepare_exn ftgds in
  let st = init_exn compiled base_inst in
  let batch =
    [
      Batch.Insert ("r", [| vs "a3"; vs "b2" |]);
      Batch.Insert ("u", [| vs "b2" |]);
      Batch.Delete ("u", [| vs "b1" |]);
    ]
  in
  let st, c = apply_exn st batch in
  Alcotest.(check int) "src inserted" 2 c.Maintain.mc_src_inserted;
  Alcotest.(check int) "src deleted" 1 c.Maintain.mc_src_deleted;
  check_equiv_rebuild "after batch" st;
  (* idempotence: re-inserting and re-deleting the same tuples is a
     no-op batch *)
  let st, c2 =
    apply_exn st
      [
        Batch.Insert ("r", [| vs "a3"; vs "b2" |]);
        Batch.Delete ("u", [| vs "b1" |]);
      ]
  in
  Alcotest.(check int) "no-op inserts" 0 c2.Maintain.mc_src_inserted;
  Alcotest.(check int) "no-op deletes" 0 c2.Maintain.mc_src_deleted;
  check_equiv_rebuild "after no-op" st

(* A delete that removes a null's last supporting derivation must
   retract every fact carrying the null — the null disappears from the
   maintained target entirely. *)
let test_null_collected () =
  let source =
    Schema.make ~name:"nsrc" [ Schema.table "n" [ ("x", Schema.TString) ] ] []
  in
  let target =
    Schema.make ~name:"ntgt"
      [
        Schema.table "p" [ ("x", Schema.TString); ("y", Schema.TString) ];
        Schema.table "q" [ ("y", Schema.TString) ];
      ]
      []
  in
  let tgds =
    [
      Dependency.tgd ~name:"share"
        ~lhs:[ a "n" [ v "x" ] ]
        [ a "p" [ v "x"; v "y" ] ; a "q" [ v "y" ] ];
    ]
  in
  let compiled = prepare_exn ~source ~target tgds in
  let inst =
    List.fold_left
      (fun acc x ->
        Instance.add_tuple acc "n" ~header:[ "x" ] [| vs x |])
      Instance.empty [ "a"; "b" ]
  in
  let st = init_exn compiled inst in
  let nulls_of inst =
    List.fold_left
      (fun acc name ->
        match Instance.relation inst name with
        | None -> acc
        | Some r ->
            List.fold_left
              (fun acc tup ->
                Array.fold_left
                  (fun acc v ->
                    match v with Value.VNull k -> k :: acc | _ -> acc)
                  acc tup)
              acc r.Instance.tuples)
      [] (Instance.names inst)
    |> List.sort_uniq compare
  in
  let before = nulls_of (Maintain.target st) in
  Alcotest.(check int) "two shared nulls" 2 (List.length before);
  let st, c = apply_exn st [ Batch.Delete ("n", [| vs "a" |]) ] in
  Alcotest.(check int) "facts retracted" 2 c.Maintain.mc_facts_retracted;
  Alcotest.(check int) "null collected" 1 c.Maintain.mc_nulls_collected;
  let after = nulls_of (Maintain.target st) in
  Alcotest.(check int) "one null left" 1 (List.length after);
  Alcotest.(check int)
    "target facts" 2
    (Instance.total_tuples (Maintain.target st))

(* Counting: a fact emitted by several derivations survives until the
   last one dies. *)
let test_shared_support () =
  let source =
    Schema.make ~name:"wsrc"
      [ Schema.table "w" [ ("x", Schema.TString); ("y", Schema.TString) ] ]
      []
  in
  let target =
    Schema.make ~name:"wtgt" [ Schema.table "o" [ ("x", Schema.TString) ] ] []
  in
  let tgds =
    [
      Dependency.tgd ~name:"proj"
        ~lhs:[ a "w" [ v "x"; v "y" ] ]
        [ a "o" [ v "x" ] ];
    ]
  in
  let compiled = prepare_exn ~source ~target tgds in
  let inst =
    inst_of
      [
        ("w", [ "x"; "y" ], [ "k"; "1" ]);
        ("w", [ "x"; "y" ], [ "k"; "2" ]);
      ]
  in
  let st = init_exn compiled inst in
  Alcotest.(check int) "one fact" 1 (Instance.total_tuples (Maintain.target st));
  let st, c = apply_exn st [ Batch.Delete ("w", [| vs "k"; vs "1" |]) ] in
  Alcotest.(check int) "not retracted yet" 0 c.Maintain.mc_facts_retracted;
  Alcotest.(check int) "still there" 1 (Instance.total_tuples (Maintain.target st));
  let st, c = apply_exn st [ Batch.Delete ("w", [| vs "k"; vs "2" |]) ] in
  Alcotest.(check int) "retracted" 1 c.Maintain.mc_facts_retracted;
  Alcotest.(check int) "gone" 0 (Instance.total_tuples (Maintain.target st))

(* Key egds: inserts merge nulls incrementally; a retraction of facts
   from a keyed table forces the substitution rebuild — both states
   must agree with a full re-chase. *)
let test_egd_paths () =
  let compiled = prepare_exn ftgds in
  let st = init_exn compiled base_inst in
  (* m1 and m3 both emit s(a1, _): the egd binds m3's skolem null to
     b1, so the maintained report must show merges *)
  let r = Maintain.report st in
  Alcotest.(check bool) "merges happened" true (r.Engine.r_egd_merges > 0);
  check_equiv_rebuild "egd init" st;
  (* retraction touching the keyed table: u(b1) supports m3 *)
  let st, c = apply_exn st [ Batch.Delete ("u", [| vs "b1" |]) ] in
  Alcotest.(check bool) "egd rebuilt" true (c.Maintain.mc_egd_rebuilds > 0);
  check_equiv_rebuild "egd retract" st;
  (* and growing it back *)
  let st, _ = apply_exn st [ Batch.Insert ("u", [| vs "b1" |]) ] in
  check_equiv_rebuild "egd reinsert" st

(* Non-default shard counts are invisible to maintenance: the same
   insert/delete/egd sequence at shards 3 and 7 stays ≡hom a full
   re-chase at every step and lands on the same maintained target as
   the single-shard state. *)
let test_sharded_maintenance () =
  let compiled = prepare_exn ftgds in
  let batches =
    [
      [ Batch.Insert ("r", [| vs "a3"; vs "b2" |]); Batch.Insert ("u", [| vs "b2" |]) ];
      [ Batch.Delete ("u", [| vs "b1" |]) ];
      [ Batch.Insert ("u", [| vs "b1" |]); Batch.Delete ("r", [| vs "a2"; vs "b2" |]) ];
    ]
  in
  let final_target shards =
    let st = init_exn ?shards compiled base_inst in
    List.fold_left
      (fun st batch ->
        let st, _ = apply_exn st batch in
        check_equiv_rebuild
          (Printf.sprintf "shards=%s"
             (match shards with None -> "default" | Some s -> string_of_int s))
          st;
        st)
      st batches
    |> Maintain.target
  in
  let reference = final_target None in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "maintained target ≡hom at %d shard(s)" s)
        true
        (hom_equiv reference (final_target (Some s))))
    [ 3; 7 ]

let test_conflict_poisons () =
  let source =
    Schema.make ~name:"csrc"
      [ Schema.table "c" [ ("k", Schema.TString); ("v", Schema.TString) ] ]
      []
  in
  let target =
    Schema.make ~name:"ctgt"
      [
        Schema.table ~key:[ "k" ] "d"
          [ ("k", Schema.TString); ("v", Schema.TString) ];
      ]
      []
  in
  let tgds =
    [
      Dependency.tgd ~name:"copy"
        ~lhs:[ a "c" [ v "k"; v "x" ] ]
        [ a "d" [ v "k"; v "x" ] ];
    ]
  in
  let compiled = prepare_exn ~source ~target tgds in
  let st = init_exn compiled (inst_of [ ("c", [ "k"; "v" ], [ "k1"; "x" ]) ]) in
  (match Maintain.apply st [ Batch.Insert ("c", [| vs "k1"; vs "y" |]) ] with
  | Ok _ -> Alcotest.fail "constant/constant conflict accepted"
  | Error m ->
      Alcotest.(check bool) "names the egd" true (contains_sub m "key egd"));
  match Maintain.apply st [] with
  | Ok _ -> Alcotest.fail "poisoned state accepted a batch"
  | Error m ->
      Alcotest.(check bool) "poisoned" true (contains_sub m "poisoned")

(* ---- property: generated scenarios -------------------------------------- *)

let gen_params =
  QCheck.Gen.(
    let* seed = int_bound 1_000_000 in
    let* isa_depth = int_bound 2 in
    let* n_roots = int_range 1 3 in
    let* reify = int_bound 2 in
    let* attrs_per_class = int_range 1 3 in
    let* dens = int_range 5 10 in
    let* scale = int_range 20 60 in
    return
      {
        Params.seed;
        isa_depth;
        n_roots;
        reify;
        partof = 1;
        attrs_per_class;
        corr_density = float_of_int dens /. 10.;
        scale;
      })

let arb_params =
  QCheck.make gen_params ~print:(fun p -> Fmt.str "%a" Params.pp p)

let discovered_tgds g =
  match
    Smg_core.Discover.discover ~source:g.Gen.g_source ~target:g.Gen.g_target
      ~corrs:g.Gen.g_corrs ()
  with
  | [] -> []
  | best :: _ ->
      if best.Smg_cq.Mapping.outer then
        Smg_cq.Mapping.outer_variants
          ~target:g.Gen.g_target.Smg_core.Discover.schema best
      else [ Smg_cq.Mapping.to_tgd best ]

(* Split the instance's tuples deterministically: every [k]-th tuple of
   each relation goes to the second component. *)
let split_inst k inst =
  List.fold_left
    (fun (kept, out) name ->
      match Instance.relation inst name with
      | None -> (kept, out)
      | Some r ->
          let keep, drop =
            List.partition
              (fun tup -> Hashtbl.hash (Smg_relational.Index.tuple_key tup) mod k <> 0)
              r.Instance.tuples
          in
          let kept =
            if keep = [] then kept
            else Instance.set kept name { r with Instance.tuples = keep }
          in
          ((kept : Instance.t), (name, r.Instance.header, drop) :: out))
    (Instance.empty, []) (Instance.names inst)

let prop_maintain_equiv =
  QCheck.Test.make
    ~name:
      "maintained target ≡hom full re-chase on generated scenarios; \
       rebuild bytes identical at 1 and 4 domains"
    ~count:(fuzz_count 25) arb_params (fun p ->
      let g = Gen.build p in
      match discovered_tgds g with
      | [] -> true
      | tgds -> (
          let source = g.Gen.g_source.Smg_core.Discover.schema in
          let target = g.Gen.g_target.Smg_core.Discover.schema in
          match Maintain.prepare ~source ~target ~mappings:tgds () with
          | Error m -> QCheck.Test.fail_reportf "prepare: %s" m
          | Ok compiled -> (
              let full = Gen.source_instance g in
              (* start from a strict subset, then batch the withheld
                 tuples back in while deleting a slice of the base *)
              let base, withheld = split_inst 3 full in
              let _, doomed = split_inst 5 base in
              let batch =
                List.concat_map
                  (fun (name, _, tuples) ->
                    List.map (fun t -> Batch.Insert (name, t)) tuples)
                  withheld
                @ List.concat_map
                    (fun (name, _, tuples) ->
                      List.map (fun t -> Batch.Delete (name, t)) tuples)
                    doomed
              in
              (* doomed ⊆ base and base ∩ withheld = ∅, so the post-batch
                 source is just [full] minus the doomed tuples *)
              let final_expected =
                List.fold_left
                  (fun inst (name, _, tuples) ->
                    match Instance.relation inst name with
                    | None -> inst
                    | Some r ->
                        let dead =
                          List.map Smg_relational.Index.tuple_key tuples
                        in
                        let keep =
                          List.filter
                            (fun t ->
                              not
                                (List.mem
                                   (Smg_relational.Index.tuple_key t)
                                   dead))
                            r.Instance.tuples
                        in
                        Instance.set inst name
                          { r with Instance.tuples = keep })
                  full doomed
              in
              (* a key-egd conflict is a legitimate outcome on generated
                 data — the property then is that the bulk chase of the
                 same source reports one too *)
              let oracle_fails inst =
                match Engine.execute compiled inst with
                | Engine.Failed _ -> true
                | _ -> false
              in
              match Maintain.init compiled base with
              | Error m ->
                  oracle_fails base
                  || QCheck.Test.fail_reportf "init: %s (bulk succeeds)" m
              | Ok st -> (
                  match Maintain.apply st batch with
                  | Error m ->
                      oracle_fails final_expected
                      || QCheck.Test.fail_reportf "apply: %s (bulk succeeds)"
                           m
                  | Ok (st, _) ->
                      let final = Maintain.source st in
                      let run domains =
                        Pool.with_pool ~domains (fun pool ->
                            match Engine.execute ~pool compiled final with
                            | Engine.Complete r -> r
                            | Engine.Budget_exhausted _ ->
                                QCheck.Test.fail_report "rebuild exhausted"
                            | Engine.Failed m ->
                                QCheck.Test.fail_reportf "rebuild: %s" m)
                      in
                      let r1 = run 1 and r4 = run 4 in
                      let doc r =
                        Render.exchange_json ~head:[] ~laconic:false r
                      in
                      String.equal (doc r1) (doc r4)
                      && hom_equiv (Maintain.target st) r1.Engine.r_target))))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "delta",
      [
        Alcotest.test_case "batch parses and round-trips" `Quick
          test_batch_parse;
        Alcotest.test_case "batch rejects bad input" `Quick test_batch_errors;
        Alcotest.test_case "skolemized plans are null-free and ≡hom" `Quick
          test_skolemize;
        Alcotest.test_case "init matches bulk execution" `Quick
          test_init_matches_bulk;
        Alcotest.test_case "insert/delete batches track the re-chase" `Quick
          test_insert_delete_equiv;
        Alcotest.test_case "last support retracts the null everywhere" `Quick
          test_null_collected;
        Alcotest.test_case "shared support counts down, not off" `Quick
          test_shared_support;
        Alcotest.test_case "egd merges maintained through both paths" `Quick
          test_egd_paths;
        Alcotest.test_case "maintenance invariant across shard counts" `Quick
          test_sharded_maintenance;
        Alcotest.test_case "key conflict errors and poisons" `Quick
          test_conflict_poisons;
        q prop_maintain_equiv;
      ] );
  ]
