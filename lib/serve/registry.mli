(** The scenario registry: parsed, lowered, discovered, and compiled
    artifacts cached per scenario, keyed by content hash.

    [PUT /scenarios/:name] parses the DSL once; every later request
    against that scenario reuses the cached CM graphs, lowered schemas,
    discovery output, and the exchange engine's compiled tgd plans
    ({!Smg_exchange.Engine.compiled}). Entries are independent — two
    requests against different scenarios never contend — and each
    entry's caches are single-flight: a per-entry mutex makes the first
    request compute while concurrent duplicates wait and then hit.

    The seven built-in evaluation domains (dblp, mondial, amalgam,
    3sdb, ut, hotel, network) can be preloaded so the service mirrors
    [mapdisc exchange --scenario NAME] without a PUT. *)

type kind = Dsl of Smg_dsl.Ast.t | Builtin of Smg_eval.Scenario.t

type entry = {
  en_name : string;
  en_hash : string;  (** MD5 of the DSL source, or ["builtin:<name>"] *)
  en_kind : kind;
  en_source : Smg_core.Discover.side;
  en_target : Smg_core.Discover.side;
  en_corrs : Smg_cq.Mapping.corr list;
  en_created : float;
}

type t

val create :
  ?fault:Smg_robust.Fault.t ->
  ?retry:Smg_robust.Retry.policy ->
  ?on_retry:(tries:int -> ok:bool -> unit) ->
  ?shards:int ->
  unit ->
  t
(** [fault] wires the registry's injection points ([Parse] before a
    PUT's parse, [Registry_store] around mutations, [Plan_compile]
    around plan compilation, and [Engine_step] forwarded into
    {!Smg_exchange.Engine.execute}). Store and compile faults are
    transient: they are retried under [retry] (default
    {!Smg_robust.Retry.default}), with [on_retry] reporting each
    retried operation's total tries and final outcome — the server's
    metrics hook. A parse fault, or a transient one that survives every
    attempt, raises [Smg_robust.Fault.Injected] out of the mutating
    call for the caller's supervisor to turn into a diagnosed 500.

    [shards] is forwarded to every {!Smg_exchange.Engine.execute} and
    {!Smg_delta.Maintain.init} as the stores' hash-partition count
    (omitted: [SMG_SHARDS] env var, else the pool's domain count). It
    never changes response bytes — partitioning is invisible to the
    materialized target. *)

val shard_view : t -> Smg_exchange.Obs.shard_view option
(** Per-shard live/rot counters and the intern-pool size from the most
    recent exchange or delta execution — the [GET /metrics]
    partitioning surface. [None] until something has executed. *)

val sides_of_doc :
  Smg_dsl.Ast.t ->
  (Smg_core.Discover.side * Smg_core.Discover.side, string) result
(** Lower a parsed scenario document to its two discovery sides
    (schema + compiled CM + validated s-trees): the [load] step the CLI
    and the registry share. [Error] when the document does not declare
    exactly two schemas and two CMs, or a side fails validation. *)

val scenario_tgds : Smg_eval.Scenario.t -> Smg_cq.Dependency.tgd list
(** The executable tgds of a built-in domain: the best discovered
    mapping of every benchmark case, labelled by case name, outer
    variants expanded — exactly what [mapdisc exchange --scenario]
    executes. Deterministic. *)

val put :
  t -> name:string -> text:string -> (entry * bool, Smg_robust.Diag.t) result
(** Parse and register a scenario. [true] in the result means the
    registry already held this exact content hash under this name and
    every cached artifact was kept (a cache hit). A same-name PUT with
    different content replaces the entry and drops its caches. *)

val find : t -> string -> entry option
val names : t -> string list
val remove : t -> string -> bool
val preload_builtins : t -> unit
val size : t -> int

type hit = [ `Hit | `Miss ]

val discover :
  t ->
  ?budget:Smg_robust.Budget.t ->
  meth:[ `Semantic | `Ric | `Both ] ->
  dedup:bool ->
  entry ->
  Render.discover_output * hit
(** The discovery document for an entry, cached per (method, dedup)
    variant. The budget only applies to a cold run; a hit returns the
    cached bytes untouched. *)

type exchange_result =
  | Ex_ok of string * hit
  | Ex_partial of Smg_robust.Budget.reason * string
      (** budget exhausted mid-execution: the body is the same document
          shape with [complete: false], the built prefix, and a
          degradation diagnostic *)
  | Ex_bad of string  (** client-side: no data, RIC violations *)
  | Ex_failed of string  (** engine failure (key-egd conflict, …) *)

val exchange :
  t ->
  ?budget:Smg_robust.Budget.t ->
  ?size:int ->
  ?seed:int ->
  ?laconic:bool ->
  entry ->
  exchange_result
(** Execute the entry's mappings. Discovery of the executable tgds, the
    generated witness instance (when the scenario has no data blocks),
    and the compiled plans are all cached; execution itself runs fresh
    per request under the given budget. [hit] reports whether the
    compiled plan was served from the cache. Defaults: [size] 1000,
    [seed] 42, [laconic] true — the CLI's. *)

val entry_tgds : t -> entry -> (Smg_cq.Dependency.tgd list, string) result
(** The entry's executable tgds (cached; discovers on first use). *)

type delta_result =
  | Dl_ok of string
      (** the maintained target as an exchange document, with the
          batch sequence number and per-batch counters in the head *)
  | Dl_bad of string  (** client-side: no data, RIC violations *)
  | Dl_failed of string
      (** key-egd conflict or engine failure; the maintained state is
          dropped and the next delta re-initializes from the last
          successfully maintained instance *)

val counters_json : Smg_delta.Maintain.counters -> string
(** The per-batch counters as a JSON object — the [delta] head field,
    shared with the CLI's [--apply-delta] output so the bytes match a
    served response. *)

val delta :
  t -> ?size:int -> ?seed:int -> entry -> Smg_delta.Batch.t -> delta_result
(** Apply a batch of source inserts/deletes incrementally
    ({!Smg_delta.Maintain}). The maintained state is cached per
    instance key — the same [size:seed] (or data-block) key as the
    cached instances — created on first use by a bulk init over the
    cached instance. On success the cached instance is replaced by the
    maintained source, so later exchange requests against the same key
    see the delta'd data. An empty batch is a consistent read of the
    maintained document. *)

val info_json : t -> entry -> string
(** Registry-entry summary: name, hash, kind, table/corr counts, and
    how many cached artifacts (discovery variants, compiled plans,
    witness instances) the entry holds. *)
