type op =
  | Put of { name : string; text : string }
  | Delete of string
  | Delta of { name : string; text : string }

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let checksum payload = String.sub (Digest.string payload) 0 4

let payload_of = function
  | Put { name; text } -> "P" ^ be32 (String.length name) ^ name ^ text
  | Delete name -> "D" ^ be32 (String.length name) ^ name
  | Delta { name; text } -> "A" ^ be32 (String.length name) ^ name ^ text

let encode op =
  let p = payload_of op in
  be32 (String.length p) ^ checksum p ^ p

let op_of_payload p =
  let len = String.length p in
  if len < 5 then None
  else
    let nlen = read_be32 p 1 in
    if nlen < 0 || 5 + nlen > len then None
    else
      let name = String.sub p 5 nlen in
      match p.[0] with
      | 'P' -> Some (Put { name; text = String.sub p (5 + nlen) (len - 5 - nlen) })
      | 'D' when len = 5 + nlen -> Some (Delete name)
      | 'A' -> Some (Delta { name; text = String.sub p (5 + nlen) (len - 5 - nlen) })
      | _ -> None

(* Decode the longest clean prefix of [data]: ops plus the offset where
   the first torn or corrupt record begins. *)
let decode data =
  let len = String.length data in
  let rec go acc off =
    if off + 8 > len then (List.rev acc, off)
    else
      let plen = read_be32 data off in
      if plen < 0 || off + 8 + plen > len then (List.rev acc, off)
      else
        let payload = String.sub data (off + 8) plen in
        if String.sub data (off + 4) 4 <> checksum payload then
          (List.rev acc, off)
        else
          match op_of_payload payload with
          | None -> (List.rev acc, off)
          | Some op -> go (op :: acc) (off + 8 + plen)
  in
  go [] 0

let replay path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode data
  end

type t = { fd : Unix.file_descr; lock : Mutex.t; mutable pos : int }

let open_append path =
  let _, clean = replay path in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  ignore (Unix.ftruncate fd clean);
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; lock = Mutex.create (); pos = clean }

let append t op =
  let record = encode op in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let len = String.length record in
      let written = ref 0 in
      while !written < len do
        written :=
          !written
          + Unix.write_substring t.fd record !written (len - !written)
      done;
      Unix.fsync t.fd;
      t.pos <- t.pos + len)

let position t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> t.pos)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
