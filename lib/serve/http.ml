type meth = GET | PUT | POST | DELETE

type request = {
  rq_meth : meth;
  rq_path : string;
  rq_segments : string list;
  rq_query : (string * string) list;
  rq_headers : (string * string) list;
  rq_body : string;
  rq_version : string;
}

type reject = { rj_status : int; rj_reason : string }
type event = Request of request | Reject of reject | Eof

type limits = { max_line : int; max_headers : int; max_body : int }

let default_limits =
  { max_line = 8192; max_headers = 64; max_body = 8 * 1024 * 1024 }

(* ---- buffered reader ---------------------------------------------------- *)

type reader = {
  src : bytes -> int -> int -> int;
  limits : limits;
  buf : Buffer.t;  (* bytes read but not yet consumed *)
  mutable pos : int;  (* consumption offset into [buf] *)
  scratch : Bytes.t;
  mutable total_in : int;
}

let reader ?(limits = default_limits) src =
  {
    src;
    limits;
    buf = Buffer.create 4096;
    pos = 0;
    scratch = Bytes.create 4096;
    total_in = 0;
  }

let of_string ?limits ?(chunk = 4096) s =
  let off = ref 0 in
  reader ?limits (fun buf o len ->
      let n = min (min chunk len) (String.length s - !off) in
      if n <= 0 then 0
      else begin
        Bytes.blit_string s !off buf o n;
        off := !off + n;
        n
      end)

let bytes_in r = r.total_in
let available r = Buffer.length r.buf - r.pos

(* Drop already-consumed bytes once they dominate the buffer, so a
   long-lived keep-alive connection doesn't accumulate request bytes. *)
let compact r =
  if r.pos > 65536 && r.pos > Buffer.length r.buf / 2 then begin
    let rest = Buffer.sub r.buf r.pos (available r) in
    Buffer.clear r.buf;
    Buffer.add_string r.buf rest;
    r.pos <- 0
  end

(* [true] when more bytes arrived, [false] at end of stream. *)
let refill r =
  let n = r.src r.scratch 0 (Bytes.length r.scratch) in
  if n > 0 then begin
    Buffer.add_subbytes r.buf r.scratch 0 n;
    r.total_in <- r.total_in + n;
    true
  end
  else false

(* The next CRLF-terminated line, its bound enforced while reading —
   an attacker sending an endless line is cut off at [limit] bytes. *)
type line = Line of string | Line_eof | Line_too_long | Line_malformed

let read_line r ~limit =
  let rec search scan_from =
    let len = Buffer.length r.buf in
    let rec scan i =
      if i >= len - 1 then None
      else if Buffer.nth r.buf i = '\r' && Buffer.nth r.buf (i + 1) = '\n' then
        Some i
      else scan (i + 1)
    in
    match scan (max scan_from r.pos) with
    | Some i -> if i - r.pos <= limit then `Found i else `Too_long
    | None ->
        (* enforce the bound *while* searching: an endless line is cut
           off as soon as the unscanned prefix exceeds it, it never
           grows the buffer further *)
        if available r > limit then `Too_long
        else if refill r then search (max r.pos (len - 1))
        else if available r = 0 then `Eof
        else `Mid_line
  in
  match search r.pos with
  | `Found i ->
      let line = Buffer.sub r.buf r.pos (i - r.pos) in
      r.pos <- i + 2;
      (* a stray CR inside the line means the first CRLF we split at
         was not this line's terminator in the sender's eyes *)
      if String.contains line '\r' then Line_malformed else Line line
  | `Too_long -> Line_too_long
  | `Eof -> Line_eof
  | `Mid_line -> Line_malformed

let read_body r len =
  let rec go () = if available r >= len then true else refill r && go () in
  if not (go ()) then None
  else begin
    let body = Buffer.sub r.buf r.pos len in
    r.pos <- r.pos + len;
    compact r;
    Some body
  end

(* ---- percent decoding --------------------------------------------------- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else
      match s.[i] with
      | '%' ->
          if i + 2 >= n then None
          else (
            match (hex_val s.[i + 1], hex_val s.[i + 2]) with
            | Some h, Some l ->
                let code = (h * 16) + l in
                (* encoded control bytes are as hostile as raw ones *)
                if code < 0x20 || code = 0x7f then None
                else (
                  Buffer.add_char b (Char.chr code);
                  go (i + 3))
            | _ -> None)
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | c when Char.code c < 0x20 || Char.code c = 0x7f -> None
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0

let split_on_char_nonempty c s =
  List.filter (fun x -> x <> "") (String.split_on_char c s)

let parse_query q =
  let pairs = split_on_char_nonempty '&' q in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> (
        let k, v =
          match String.index_opt p '=' with
          | Some i ->
              ( String.sub p 0 i,
                String.sub p (i + 1) (String.length p - i - 1) )
          | None -> (p, "")
        in
        match (percent_decode k, percent_decode v) with
        | Some k, Some v -> go ((k, v) :: acc) rest
        | _ -> None)
  in
  go [] pairs

(* ---- request parsing ---------------------------------------------------- *)

let is_tchar c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
      true
  | _ -> false

let is_token s = s <> "" && String.for_all is_tchar s

let parse_headers r =
  let rec go acc n total =
    if n > r.limits.max_headers then Error { rj_status = 413; rj_reason = "too many headers" }
    else
      match read_line r ~limit:r.limits.max_line with
      | Line_eof | Line_malformed ->
          Error { rj_status = 400; rj_reason = "malformed header" }
      | Line_too_long ->
          Error { rj_status = 413; rj_reason = "header line too long" }
      | Line "" -> Ok (List.rev acc)
      | Line l -> (
          if total + String.length l > r.limits.max_headers * 256 then
            Error { rj_status = 413; rj_reason = "header block too large" }
          else
            match String.index_opt l ':' with
            | None | Some 0 ->
                Error { rj_status = 400; rj_reason = "malformed header" }
            | Some i ->
                let name = String.sub l 0 i in
                let value =
                  String.trim (String.sub l (i + 1) (String.length l - i - 1))
                in
                if not (is_token name) then
                  Error { rj_status = 400; rj_reason = "malformed header name" }
                else
                  go
                    ((String.lowercase_ascii name, value) :: acc)
                    (n + 1)
                    (total + String.length l))
  in
  go [] 0 0

let find_header headers name = List.assoc_opt name headers

let next_request r =
  compact r;
  match read_line r ~limit:r.limits.max_line with
  | Line_eof -> Eof
  | Line_too_long -> Reject { rj_status = 413; rj_reason = "request line too long" }
  | Line_malformed -> Reject { rj_status = 400; rj_reason = "malformed request line" }
  | Line line -> (
      match String.split_on_char ' ' line with
      | [ meth_s; target; version ]
        when meth_s <> "" && target <> "" ->
          let version_ok = version = "HTTP/1.1" || version = "HTTP/1.0" in
          if not version_ok then
            Reject { rj_status = 400; rj_reason = "unsupported HTTP version" }
          else if not (is_token meth_s) then
            Reject { rj_status = 400; rj_reason = "malformed method" }
          else (
            let meth =
              match meth_s with
              | "GET" -> Some GET
              | "PUT" -> Some PUT
              | "POST" -> Some POST
              | "DELETE" -> Some DELETE
              | _ -> None
            in
            match meth with
            | None -> Reject { rj_status = 405; rj_reason = "method not supported" }
            | Some meth -> (
                let path, query_s =
                  match String.index_opt target '?' with
                  | Some i ->
                      ( String.sub target 0 i,
                        String.sub target (i + 1) (String.length target - i - 1)
                      )
                  | None -> (target, "")
                in
                if String.length path = 0 || path.[0] <> '/' then
                  Reject { rj_status = 400; rj_reason = "malformed request target" }
                else
                  let segments =
                    List.map percent_decode (split_on_char_nonempty '/' path)
                  in
                  if List.exists (fun s -> s = None) segments then
                    Reject { rj_status = 400; rj_reason = "malformed percent escape" }
                  else
                    let segments = List.filter_map Fun.id segments in
                    match parse_query query_s with
                    | None ->
                        Reject { rj_status = 400; rj_reason = "malformed query string" }
                    | Some query -> (
                        match parse_headers r with
                        | Error rj -> Reject rj
                        | Ok headers -> (
                            if find_header headers "transfer-encoding" <> None
                            then
                              Reject
                                {
                                  rj_status = 400;
                                  rj_reason =
                                    "transfer codings not supported (use \
                                     Content-Length)";
                                }
                            else
                              let cls =
                                List.filter
                                  (fun (n, _) -> n = "content-length")
                                  headers
                              in
                              let content_length =
                                (* absent means a zero-length body
                                   (RFC 7230 §3.3.3); bodies are framed
                                   by Content-Length alone *)
                                match cls with
                                | [] -> `Len 0
                                | [ (_, v) ] -> (
                                    match int_of_string_opt (String.trim v) with
                                    | Some n when n >= 0 -> `Len n
                                    | Some _ | None -> `Bad)
                                | _ :: _ :: _ -> `Bad
                              in
                              match content_length with
                              | `Bad ->
                                  Reject
                                    {
                                      rj_status = 400;
                                      rj_reason = "malformed Content-Length";
                                    }
                              | `Len n when n > r.limits.max_body ->
                                  Reject
                                    {
                                      rj_status = 413;
                                      rj_reason = "body exceeds the size limit";
                                    }
                              | `Len n -> (
                                  match read_body r n with
                                  | None ->
                                      Reject
                                        {
                                          rj_status = 400;
                                          rj_reason = "truncated body";
                                        }
                                  | Some body ->
                                      Request
                                        {
                                          rq_meth = meth;
                                          rq_path = path;
                                          rq_segments = segments;
                                          rq_query = query;
                                          rq_headers = headers;
                                          rq_body = body;
                                          rq_version = version;
                                        })))))
      | _ -> Reject { rj_status = 400; rj_reason = "malformed request line" })

let keep_alive rq =
  let conn =
    Option.map String.lowercase_ascii (find_header rq.rq_headers "connection")
  in
  match (rq.rq_version, conn) with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

let header rq name = find_header rq.rq_headers (String.lowercase_ascii name)
let query rq name = List.assoc_opt name rq.rq_query

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c when c >= 200 && c < 300 -> "OK"
  | c when c >= 400 && c < 500 -> "Bad Request"
  | _ -> "Error"

let response ?(content_type = "application/json") ?(close = false)
    ?retry_after ~status body =
  let b = Buffer.create (String.length body + 160) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  (match retry_after with
  | Some s -> Buffer.add_string b (Printf.sprintf "Retry-After: %d\r\n" (max 1 s))
  | None -> ());
  Buffer.add_string b
    (if close then "Connection: close\r\n" else "Connection: keep-alive\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b
