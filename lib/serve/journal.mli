(** Crash-safe registry journal: an append-only log of the mutations
    ([PUT] bodies and [DELETE]s) that built the current registry, so a
    restarted [mapdisc serve --journal FILE] replays it and recovers
    every registered scenario.

    Wire format, per record: a 4-byte big-endian payload length, a
    4-byte checksum (the first 4 bytes of the payload's MD5), then the
    payload — an op byte (['P'] put, ['D'] delete, ['A'] delta), a
    4-byte big-endian name length, the name, and (for put and delta)
    the body text — a scenario document for put, a {!Smg_delta.Batch}
    wire-format batch for delta. Replay
    scans from the start and stops at the first record whose length
    field runs past the file or whose checksum disagrees: a torn tail
    (the crash window is an interrupted append) silently truncates to
    the committed prefix, which {!open_append} then makes physical so
    the next append never stacks bytes after garbage. *)

type op =
  | Put of { name : string; text : string }
  | Delete of string
  | Delta of { name : string; text : string }

val encode : op -> string
(** One framed record, exactly as appended — exposed so tests can build
    journals and truncate them at arbitrary byte offsets. *)

val replay : string -> op list * int
(** [replay path] is the committed ops in append order plus the byte
    offset where the clean prefix ends. A missing file is an empty
    journal ([[], 0]). Read errors mid-file end the prefix like a torn
    record; only opening the file can raise ([Unix.Unix_error]). *)

type t

val open_append : string -> t
(** Open (creating if needed) for appending, after truncating to the
    clean-prefix offset {!replay} reports — call [replay] first to
    collect the ops, then [open_append] to resume writing. *)

val append : t -> op -> unit
(** Append one record and flush it to stable storage ([fsync]) before
    returning — an acknowledged mutation survives a crash. *)

val position : t -> int
(** Byte offset after the last committed record — the clean-prefix
    offset at open time plus everything appended since. Surfaced by
    [GET /healthz]. *)

val close : t -> unit
