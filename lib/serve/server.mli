(** The [mapdisc serve] daemon: discovery and exchange as a concurrent
    HTTP service over the scenario {!Registry}.

    One listening socket on the loopback interface; the accept loop
    runs on the calling domain and dispatches each connection onto the
    {!Smg_parallel.Pool} service queue (or handles it inline with one
    domain). Admission control is connection-level: when
    [max_inflight] connections are open, new ones are answered
    [429 Too Many Requests] and closed. Each request gets a fresh
    {!Smg_robust.Budget} from the configured deadline/fuel (overridable
    per request via [budget_ms]/[fuel] query parameters).

    Routes ([:name] is percent-decoded, so slashes can be encoded):
    {v
    GET    /healthz                      liveness + breaker states,
                                         journal position, pool size
    GET    /metrics                      counters + latency quantiles
    GET    /scenarios                    registered names
    PUT    /scenarios/:name             register a .smg body
    GET    /scenarios/:name             entry + cache summary
    DELETE /scenarios/:name             drop the entry
    POST   /scenarios/:name/discover    the CLI discover --json body
    POST   /scenarios/:name/exchange    the CLI exchange --json body
    POST   /scenarios/:name/verify      containment/dedup summary
    POST   /scenarios/:name/compose     round-trip composition report
    POST   /scenarios/:name/delta       incremental source mutation:
                                         the body is a Smg_delta.Batch,
                                         maintained (not re-chased)
                                         into the cached instance
    v}

    Status mapping follows the CLI exit codes: bad input (exit 2) is
    400, no result / engine failure (exit 1) is 500, budget exhausted
    with a partial prefix (exit 3) is 503 with the partial document and
    a degradation diagnostic in [diagnostics]. Error bodies are
    [{"error": .., "diagnostics": [..]}] with {!Render.json_diag}
    objects. *)

type config = {
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  domains : int;  (** handler domains; 1 serves inline *)
  max_inflight : int;  (** connection admission bound *)
  budget_ms : int option;  (** default per-request deadline *)
  fuel : int option;  (** default per-request fuel *)
  seed : int;  (** default witness seed for generated exchange sources *)
  preload : bool;  (** preload the seven builtin domains *)
  journal : string option;
      (** crash-safe registry journal: mutations are appended (fsynced
          before the response) and replayed on startup, re-warming the
          recovered scenarios' caches *)
  fault : Smg_robust.Fault.t option;  (** chaos injection plane *)
  idle_timeout_s : float;
      (** per-connection read/write deadline; an idle socket is
          answered 408 and closed (slowloris containment) *)
  drain_deadline_s : float;
      (** bound on the shutdown drain of in-flight requests *)
  retry : Smg_robust.Retry.policy;
      (** backoff for transient registry / plan-cache / journal ops *)
  breaker : Smg_robust.Breaker.config;  (** per-scenario circuit breaker *)
  shards : int option;
      (** hash-partition count for the engine's store membership
          tables, forwarded to every exchange and delta init (omitted:
          [SMG_SHARDS], else the pool's domain count); invisible to
          response bytes *)
}

val default_config : config
(** port 8080, domains 1, max_inflight 64, no budget, seed 42,
    preload on, no journal, no faults, 5 s idle timeout, 10 s drain
    deadline, default retry policy and breaker config. *)

type t

val create : config -> t
(** Bind and listen on 127.0.0.1. @raise Unix.Unix_error when the port
    is taken. *)

val port : t -> int
(** The bound port — the real one when the config said 0. *)

val registry : t -> Registry.t
val metrics : t -> Metrics.t

val run : t -> bool
(** Accept and serve until {!stop}; then drain in-flight connections
    (bounded by [drain_deadline_s]), close the socket, and return
    whether the drain reached quiescence — [false] means a stuck
    request was abandoned to process exit. Handler exceptions are
    supervised: each becomes a diagnosed 500 on its own request, never
    a dead domain. Installs no signal handlers — the caller owns
    SIGTERM/SIGINT wiring. *)

val stop : t -> unit
(** Ask {!run} to return; safe from a signal handler or another
    domain. *)
