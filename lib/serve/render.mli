(** The machine-readable JSON encodings shared by the CLI ([--json]
    flags) and the HTTP service.

    Byte-identity is the contract: [mapdisc discover FILE --json]
    prints exactly {!discover_output.dj_json}, and a served
    [POST /scenarios/:name/discover] returns the same string, so a
    response body can be diffed against CLI output. Exchange bodies
    renumber labelled nulls canonically (first-occurrence order over
    name-sorted tables), which makes them stable across processes and
    across warm/cold cache paths even though raw null labels are
    process-global. *)

val json_str : string -> string
(** JSON string literal with escaping, quotes included. *)

val json_list : ('a -> string) -> 'a list -> string

val json_diag : Smg_robust.Diag.t -> string
(** The [--diagnostics] object shape:
    [{"severity": .., "stage": .., "subject": .., "message": ..}] —
    also the shape carried by 4xx/5xx response bodies. *)

val json_candidate :
  Smg_relational.Schema.t ->
  Smg_relational.Schema.t ->
  int ->
  Smg_cq.Mapping.t ->
  string
(** One ranked discovery candidate (rank, score, tgd, executable tgds,
    covered correspondences, provenance, source algebra). *)

type discover_output = {
  dj_json : string;  (** the full JSON document, newline-terminated *)
  dj_diags : Smg_robust.Diag.t list;
  dj_exact : bool;
  dj_count : int;  (** candidates over both methods *)
}

val discover_json :
  ?budget:Smg_robust.Budget.t ->
  ?pool:Smg_parallel.Pool.t ->
  ?meth:[ `Semantic | `Ric | `Both ] ->
  ?dedup:bool ->
  file:string ->
  source:Smg_core.Discover.side ->
  target:Smg_core.Discover.side ->
  corrs:Smg_cq.Mapping.corr list ->
  unit ->
  discover_output
(** Run lint + bounded discovery (and the RIC baseline when [meth] is
    [`Ric]/[`Both], default [`Both]) and render the CLI's [--json]
    document. [dedup] (default false) collapses logically equivalent
    candidates first, as [--dedup] does. *)

val label_by_rank : Smg_cq.Mapping.t list -> Smg_cq.Mapping.t list
(** Suffix each candidate name with its rank ([name#1], [name#2], …) —
    the labelling both CLI dedup reporting and the service use. *)

val exchange_json :
  head:(string * string) list ->
  ?exhausted:Smg_robust.Budget.reason ->
  ?diags:Smg_robust.Diag.t list ->
  laconic:bool ->
  Smg_exchange.Engine.report ->
  string
(** The exchange [--json] document. [head] is rendered first, verbatim,
    as [("key", already-encoded-value)] pairs — the CLI puts
    [("file", …)] or [("scenario"/"size"/"seed", …)] there. Timings are
    deliberately excluded so the document is deterministic; labelled
    nulls are canonically renumbered. *)

val value_json : canon:(int -> int) -> Smg_relational.Value.t -> string
(** One relational value as JSON; [canon] maps raw null labels to their
    canonical numbers. *)
