(* A ring of the last [window] latencies per endpoint keeps quantile
   memory bounded however long the service runs. *)

let window = 1024

type ep = {
  mutable e_requests : int;
  mutable e_2xx : int;
  mutable e_4xx : int;
  mutable e_5xx : int;
  mutable e_hits : int;
  mutable e_misses : int;
  mutable e_exhausted : int;
  mutable e_bytes_in : int;
  mutable e_bytes_out : int;
  e_lat : float array;
  mutable e_lat_n : int;  (* total recorded; ring index = n mod window *)
}

type t = {
  m_lock : Mutex.t;
  m_eps : (string, ep) Hashtbl.t;
  m_started : float;
  m_inflight : int Atomic.t;
}

let create () =
  {
    m_lock = Mutex.create ();
    m_eps = Hashtbl.create 8;
    m_started = Unix.gettimeofday ();
    m_inflight = Atomic.make 0;
  }

let inflight t = t.m_inflight

let ep_of t name =
  match Hashtbl.find_opt t.m_eps name with
  | Some e -> e
  | None ->
      let e =
        {
          e_requests = 0;
          e_2xx = 0;
          e_4xx = 0;
          e_5xx = 0;
          e_hits = 0;
          e_misses = 0;
          e_exhausted = 0;
          e_bytes_in = 0;
          e_bytes_out = 0;
          e_lat = Array.make window 0.0;
          e_lat_n = 0;
        }
      in
      Hashtbl.add t.m_eps name e;
      e

let record t ~endpoint ~status ?hit ?(exhausted = false) ~bytes_in ~bytes_out
    ~seconds () =
  Mutex.lock t.m_lock;
  let e = ep_of t endpoint in
  e.e_requests <- e.e_requests + 1;
  if status >= 200 && status < 300 then e.e_2xx <- e.e_2xx + 1
  else if status >= 400 && status < 500 then e.e_4xx <- e.e_4xx + 1
  else if status >= 500 then e.e_5xx <- e.e_5xx + 1;
  (match hit with
  | Some `Hit -> e.e_hits <- e.e_hits + 1
  | Some `Miss -> e.e_misses <- e.e_misses + 1
  | None -> ());
  if exhausted then e.e_exhausted <- e.e_exhausted + 1;
  e.e_bytes_in <- e.e_bytes_in + bytes_in;
  e.e_bytes_out <- e.e_bytes_out + bytes_out;
  e.e_lat.(e.e_lat_n mod window) <- seconds;
  e.e_lat_n <- e.e_lat_n + 1;
  Mutex.unlock t.m_lock

(* nearest-rank quantile over the filled part of the ring *)
let quantile e q =
  let n = min e.e_lat_n window in
  if n = 0 then None
  else begin
    let xs = Array.sub e.e_lat 0 n in
    Array.sort compare xs;
    let idx = min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1) in
    Some xs.(max 0 idx)
  end

let ms = function None -> "null" | Some s -> Printf.sprintf "%.3f" (s *. 1000.)

let to_json t ~scenarios =
  Mutex.lock t.m_lock;
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.m_eps [])
  in
  let ep name =
    let e = Hashtbl.find t.m_eps name in
    Printf.sprintf
      "  %s: {\"requests\": %d, \"2xx\": %d, \"4xx\": %d, \"5xx\": %d, \
       \"cache_hits\": %d, \"cache_misses\": %d, \"budget_exhausted\": %d, \
       \"bytes_in\": %d, \"bytes_out\": %d, \"p50_ms\": %s, \"p95_ms\": %s}"
      (Render.json_str name) e.e_requests e.e_2xx e.e_4xx e.e_5xx e.e_hits
      e.e_misses e.e_exhausted e.e_bytes_in e.e_bytes_out
      (ms (quantile e 0.50))
      (ms (quantile e 0.95))
  in
  let body =
    match names with
    | [] -> "{}"
    | _ -> "{\n" ^ String.concat ",\n" (List.map ep names) ^ "\n }"
  in
  let uptime = Unix.gettimeofday () -. t.m_started in
  let s =
    Printf.sprintf
      "{\"uptime_s\": %.3f,\n \"inflight\": %d,\n \"scenarios\": %d,\n \
       \"endpoints\": %s}\n"
      uptime
      (Atomic.get t.m_inflight)
      scenarios body
  in
  Mutex.unlock t.m_lock;
  s

let pp_summary ppf t =
  Mutex.lock t.m_lock;
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.m_eps [])
  in
  List.iter
    (fun name ->
      let e = Hashtbl.find t.m_eps name in
      Fmt.pf ppf
        "  %-12s %5d req  %d/%d/%d 2xx/4xx/5xx  %d hit %d miss  %d \
         exhausted  p95 %s ms@."
        name e.e_requests e.e_2xx e.e_4xx e.e_5xx e.e_hits e.e_misses
        e.e_exhausted
        (ms (quantile e 0.95)))
    names;
  Mutex.unlock t.m_lock
