(* A ring of the last [window] latencies per endpoint keeps quantile
   memory bounded however long the service runs. *)

let window = 1024

type ep = {
  mutable e_requests : int;
  mutable e_2xx : int;
  mutable e_4xx : int;
  mutable e_5xx : int;
  mutable e_hits : int;
  mutable e_misses : int;
  mutable e_exhausted : int;
  mutable e_bytes_in : int;
  mutable e_bytes_out : int;
  e_lat : float array;
  mutable e_lat_n : int;  (* total recorded; ring index = n mod window *)
}

type t = {
  m_lock : Mutex.t;
  m_eps : (string, ep) Hashtbl.t;
  m_started : float;
  m_inflight : int Atomic.t;
  (* robustness plane: plain atomics — they are bumped from inside
     supervision/retry paths that must never contend on the stats lock *)
  m_retries : int Atomic.t;  (* extra attempts beyond the first *)
  m_retry_ok : int Atomic.t;  (* operations that succeeded after retrying *)
  m_supervised : int Atomic.t;  (* handler exceptions contained as 500s *)
  m_breaker_trips : int Atomic.t;
  m_breaker_shed : int Atomic.t;  (* requests answered 503 by an open breaker *)
  m_timeouts : int Atomic.t;  (* idle connections answered 408 *)
  m_recovered : int Atomic.t;  (* scenarios replayed from the journal *)
  m_recovery_ms : float Atomic.t;  (* startup replay + re-warm latency *)
}

let create () =
  {
    m_lock = Mutex.create ();
    m_eps = Hashtbl.create 8;
    m_started = Unix.gettimeofday ();
    m_inflight = Atomic.make 0;
    m_retries = Atomic.make 0;
    m_retry_ok = Atomic.make 0;
    m_supervised = Atomic.make 0;
    m_breaker_trips = Atomic.make 0;
    m_breaker_shed = Atomic.make 0;
    m_timeouts = Atomic.make 0;
    m_recovered = Atomic.make 0;
    m_recovery_ms = Atomic.make 0.;
  }

let inflight t = t.m_inflight

let retried t ~tries ~ok =
  ignore (Atomic.fetch_and_add t.m_retries (max 0 (tries - 1)));
  if ok then ignore (Atomic.fetch_and_add t.m_retry_ok 1)

let supervised t = ignore (Atomic.fetch_and_add t.m_supervised 1)
let breaker_tripped t = ignore (Atomic.fetch_and_add t.m_breaker_trips 1)
let breaker_shed t = ignore (Atomic.fetch_and_add t.m_breaker_shed 1)
let timed_out t = ignore (Atomic.fetch_and_add t.m_timeouts 1)

let recovered t ~scenarios ~seconds =
  ignore (Atomic.fetch_and_add t.m_recovered scenarios);
  Atomic.set t.m_recovery_ms (seconds *. 1000.)

let retries t = Atomic.get t.m_retries
let breaker_trips t = Atomic.get t.m_breaker_trips
let breaker_shed_count t = Atomic.get t.m_breaker_shed
let supervised_count t = Atomic.get t.m_supervised
let timeout_count t = Atomic.get t.m_timeouts
let recovered_count t = Atomic.get t.m_recovered
let recovery_ms t = Atomic.get t.m_recovery_ms

let ep_of t name =
  match Hashtbl.find_opt t.m_eps name with
  | Some e -> e
  | None ->
      let e =
        {
          e_requests = 0;
          e_2xx = 0;
          e_4xx = 0;
          e_5xx = 0;
          e_hits = 0;
          e_misses = 0;
          e_exhausted = 0;
          e_bytes_in = 0;
          e_bytes_out = 0;
          e_lat = Array.make window 0.0;
          e_lat_n = 0;
        }
      in
      Hashtbl.add t.m_eps name e;
      e

let record t ~endpoint ~status ?hit ?(exhausted = false) ~bytes_in ~bytes_out
    ~seconds () =
  Mutex.lock t.m_lock;
  let e = ep_of t endpoint in
  e.e_requests <- e.e_requests + 1;
  if status >= 200 && status < 300 then e.e_2xx <- e.e_2xx + 1
  else if status >= 400 && status < 500 then e.e_4xx <- e.e_4xx + 1
  else if status >= 500 then e.e_5xx <- e.e_5xx + 1;
  (match hit with
  | Some `Hit -> e.e_hits <- e.e_hits + 1
  | Some `Miss -> e.e_misses <- e.e_misses + 1
  | None -> ());
  if exhausted then e.e_exhausted <- e.e_exhausted + 1;
  e.e_bytes_in <- e.e_bytes_in + bytes_in;
  e.e_bytes_out <- e.e_bytes_out + bytes_out;
  e.e_lat.(e.e_lat_n mod window) <- seconds;
  e.e_lat_n <- e.e_lat_n + 1;
  Mutex.unlock t.m_lock

(* nearest-rank quantile over the filled part of the ring *)
let quantile e q =
  let n = min e.e_lat_n window in
  if n = 0 then None
  else begin
    let xs = Array.sub e.e_lat 0 n in
    Array.sort compare xs;
    let idx = min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1) in
    Some xs.(max 0 idx)
  end

let ms = function None -> "null" | Some s -> Printf.sprintf "%.3f" (s *. 1000.)

let shards_json = function
  | None -> "null"
  | Some sv ->
      let ints a =
        "[" ^ String.concat ", " (List.map string_of_int (Array.to_list a)) ^ "]"
      in
      Printf.sprintf
        "{\"shards\": %d, \"tuples\": %s, \"rot\": %s, \"intern_pool\": %d}"
        sv.Smg_exchange.Obs.sv_shards
        (ints sv.Smg_exchange.Obs.sv_tuples)
        (ints sv.Smg_exchange.Obs.sv_rot)
        sv.Smg_exchange.Obs.sv_intern_pool

let to_json ?shards t ~scenarios =
  Mutex.lock t.m_lock;
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.m_eps [])
  in
  let ep name =
    let e = Hashtbl.find t.m_eps name in
    Printf.sprintf
      "  %s: {\"requests\": %d, \"2xx\": %d, \"4xx\": %d, \"5xx\": %d, \
       \"cache_hits\": %d, \"cache_misses\": %d, \"budget_exhausted\": %d, \
       \"bytes_in\": %d, \"bytes_out\": %d, \"p50_ms\": %s, \"p95_ms\": %s}"
      (Render.json_str name) e.e_requests e.e_2xx e.e_4xx e.e_5xx e.e_hits
      e.e_misses e.e_exhausted e.e_bytes_in e.e_bytes_out
      (ms (quantile e 0.50))
      (ms (quantile e 0.95))
  in
  let body =
    match names with
    | [] -> "{}"
    | _ -> "{\n" ^ String.concat ",\n" (List.map ep names) ^ "\n }"
  in
  let uptime = Unix.gettimeofday () -. t.m_started in
  let s =
    Printf.sprintf
      "{\"uptime_s\": %.3f,\n \"inflight\": %d,\n \"scenarios\": %d,\n \
       \"intern_pool\": %d,\n \"exchange_shards\": %s,\n \
       \"robustness\": {\"retries\": %d, \"retry_success\": %d, \
       \"supervised_errors\": %d, \"breaker_trips\": %d, \"breaker_shed\": \
       %d, \"timeouts_408\": %d, \"recovered_scenarios\": %d, \
       \"recovery_ms\": %.3f},\n \"endpoints\": %s}\n"
      uptime
      (Atomic.get t.m_inflight)
      scenarios
      (Smg_relational.Intern.pool_size ())
      (shards_json shards) (Atomic.get t.m_retries) (Atomic.get t.m_retry_ok)
      (Atomic.get t.m_supervised)
      (Atomic.get t.m_breaker_trips)
      (Atomic.get t.m_breaker_shed)
      (Atomic.get t.m_timeouts)
      (Atomic.get t.m_recovered)
      (Atomic.get t.m_recovery_ms)
      body
  in
  Mutex.unlock t.m_lock;
  s

let pp_summary ppf t =
  Mutex.lock t.m_lock;
  let names =
    List.sort String.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.m_eps [])
  in
  List.iter
    (fun name ->
      let e = Hashtbl.find t.m_eps name in
      Fmt.pf ppf
        "  %-12s %5d req  %d/%d/%d 2xx/4xx/5xx  %d hit %d miss  %d \
         exhausted  p95 %s ms@."
        name e.e_requests e.e_2xx e.e_4xx e.e_5xx e.e_hits e.e_misses
        e.e_exhausted
        (ms (quantile e 0.95)))
    names;
  Mutex.unlock t.m_lock
