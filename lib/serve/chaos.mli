(** The chaos harness: proof that [mapdisc serve] survives injected
    faults.

    A run drives the same deterministic request workload twice over an
    in-process server — once clean to record reference bytes, once with
    a {!Smg_robust.Fault} plane armed — and classifies every faulted
    response against the survival contract: it must be byte-identical
    to the clean run (possibly after client retries), a breaker shed, a
    sound budget partial, or a clean 4xx/5xx carrying an error document
    — never a hang, a crash, or a corrupt body. When a journal path is
    given the faulted server is then killed and restarted from its
    journal, and the recovered server must answer the warm probes with
    the reference bytes again.

    The workload is synthesised from the seed with
    {!Smg_generate.Gen}: two generated scenarios are PUT, exercised
    through exchange / discover / verify / compose / list / healthz
    (plus deliberate malformed queries and tiny-fuel budget partials),
    one is deleted and re-registered near the end, and two warm
    exchange probes close the run. *)

type config = {
  c_seed : int;
  c_requests : int;  (** clamped to at least 8 *)
  c_domains : int;
  c_plan : Smg_robust.Fault.plan;
  c_breaker : Smg_robust.Breaker.config;
  c_retry : Smg_robust.Retry.policy;
  c_journal : string option;
      (** arms the kill-and-recover phase; the file is created by the
          faulted server and replayed by its successor *)
  c_log : string -> unit;  (** progress lines; default drops them *)
}

val default_plan : Smg_robust.Fault.plan
(** The standard chaos mix: raises on every point, delays on the
    engine and socket points, short reads/writes on the sockets. *)

val no_delay_plan : Smg_robust.Fault.plan
(** {!default_plan} with the delay arms folded into passes — the
    time-independent plan the determinism property uses. *)

val config : ?journal:string -> seed:int -> requests:int -> domains:int -> unit -> config
(** {!default_plan}, a chaos-tuned breaker (threshold 3, 250 ms
    cooldown) so trips actually occur in a run, and the default retry
    policy. *)

type report = {
  r_seed : int;
  r_requests : int;
  r_domains : int;
  (* per-request classification *)
  r_identical : int;  (** first response byte-identical to reference *)
  r_retried : int;  (** byte-identical after client transport retries *)
  r_shed : int;  (** 503 from an open circuit breaker *)
  r_partial : int;  (** sound budget partial differing from reference *)
  r_clean_error : int;  (** definite 4xx/5xx with an error document *)
  r_hangs : int;  (** no response within the per-request deadline *)
  r_crashes : int;  (** server unreachable after every retry *)
  r_corrupt : int;  (** a response matching no contract class *)
  r_client_retries : int;  (** extra transport attempts spent *)
  (* server-side robustness counters (from /metrics atomics) *)
  r_server_retries : int;
  r_supervised : int;
  r_breaker_trips : int;
  r_breaker_shed : int;
  r_timeouts : int;
  (* fault plane *)
  r_injected : (string * int) list;  (** per point: consultations fired *)
  r_schedule_digest : string;  (** {!Smg_robust.Fault.schedule_digest} *)
  r_outcome_digest : string;
      (** MD5 over every request's (index, class, status, body-MD5) —
          equal digests mean equal runs *)
  (* journal recovery phase (zeros / [true] when no journal) *)
  r_recovered : int;
  r_recovery_ms : float;
  r_recovery_ok : bool;
      (** restarted server holds every scenario and answers the warm
          probes with the reference bytes *)
  r_drained : bool;  (** both shutdown drains reached quiescence *)
  r_seconds : float;
}

val run : config -> report

val ok : report -> bool
(** The survival verdict: no hangs, no crashes, no corrupt bodies, the
    drains quiesced, and (when journaled) recovery reproduced the
    reference bytes. *)

val survival : report -> float
(** Fraction of requests answered inside the contract (everything but
    hangs, crashes, corrupt). *)

val report_json : report -> string
val pp_report : Format.formatter -> report -> unit
