module Budget = Smg_robust.Budget
module Diag = Smg_robust.Diag
module Fault = Smg_robust.Fault
module Retry = Smg_robust.Retry
module Breaker = Smg_robust.Breaker
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Mapverify = Smg_verify.Mapverify
module Pipeline = Smg_compose.Pipeline
module Invert = Smg_compose.Invert
module Compose = Smg_compose.Compose

type config = {
  port : int;
  domains : int;
  max_inflight : int;
  budget_ms : int option;
  fuel : int option;
  seed : int;
  preload : bool;
  journal : string option;
  fault : Fault.t option;
  idle_timeout_s : float;
  drain_deadline_s : float;
  retry : Retry.policy;
  breaker : Breaker.config;
  shards : int option;
}

let default_config =
  {
    port = 8080;
    domains = 1;
    max_inflight = 64;
    budget_ms = None;
    fuel = None;
    seed = 42;
    preload = true;
    journal = None;
    fault = None;
    idle_timeout_s = 5.0;
    drain_deadline_s = 10.0;
    retry = Retry.default;
    breaker = Breaker.default_config;
    shards = None;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  reg : Registry.t;
  met : Metrics.t;
  stop_flag : bool Atomic.t;
  journal : Journal.t option;
  br_lock : Mutex.t;
  breakers : (string, Breaker.t) Hashtbl.t;  (* per scenario name *)
}

(* A served delta journals its instance key as a leading comment line
   ([# key SIZE SEED]) inside the batch text — the batch parser skips
   it, and replay reads it back so the delta lands on the same
   maintained state it mutated live. *)
let delta_key text =
  let default = (1000, 42) in
  match String.index_opt text '\n' with
  | Some i when i > 6 && String.sub text 0 6 = "# key " -> (
      match
        String.split_on_char ' ' (String.trim (String.sub text 6 (i - 6)))
      with
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some size, Some seed -> (size, seed)
          | _ -> default)
      | _ -> default)
  | _ -> default

(* Replay the journal into the registry. Each op is retried through
   any injected parse/store faults (the journal is ground truth — a
   recovery must not be derailed by the same chaos it proves against),
   then the recovered DSL entries re-warm their discovery caches so
   the first post-restart request is as warm as the last pre-crash
   one. Builtins are never journaled: a journaled DELETE of one is
   replayed like any other op, after the preload. *)
let recover reg met path =
  let t0 = Unix.gettimeofday () in
  let ops, _clean = Journal.replay path in
  let apply op =
    let rec attempt n =
      match
        match op with
        | Journal.Put { name; text } -> (
            match Registry.put reg ~name ~text with
            | Ok _ -> `Done (Some name)
            | Error _ -> `Done None (* journaled yet unparsable: skip *))
        | Journal.Delete name ->
            ignore (Registry.remove reg name);
            `Done None
        | Journal.Delta { name; text } -> (
            match Registry.find reg name with
            | None -> `Done None (* delta after a delete: skip *)
            | Some entry -> (
                let schema = entry.Registry.en_source.Discover.schema in
                match Smg_delta.Batch.parse ~schema text with
                | Error _ -> `Done None
                | Ok batch ->
                    let size, seed = delta_key text in
                    ignore (Registry.delta reg ~size ~seed entry batch);
                    `Done (Some name)))
      with
      | `Done r -> r
      | exception Fault.Injected _ when n < 10 -> attempt (n + 1)
      | exception Fault.Injected _ -> None
    in
    attempt 0
  in
  let recovered = List.filter_map apply ops in
  (* the last op for a name wins; warm only names still registered *)
  let warm name =
    match Registry.find reg name with
    | None -> ()
    | Some entry ->
        (try ignore (Registry.entry_tgds reg entry)
         with Fault.Injected _ -> ());
        (try
           ignore (Registry.discover reg ~meth:`Both ~dedup:false entry)
         with Fault.Injected _ -> ())
  in
  (* a later Delete in the journal wins over an earlier Put: only
     names still registered count as recovered *)
  let names =
    List.sort_uniq String.compare recovered
    |> List.filter (fun n -> Option.is_some (Registry.find reg n))
  in
  List.iter warm names;
  Metrics.recovered met ~scenarios:(List.length names)
    ~seconds:(Unix.gettimeofday () -. t0)

let create cfg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 128;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let met = Metrics.create () in
  let reg =
    Registry.create ?fault:cfg.fault ~retry:cfg.retry
      ~on_retry:(fun ~tries ~ok -> Metrics.retried met ~tries ~ok)
      ?shards:cfg.shards ()
  in
  if cfg.preload then Registry.preload_builtins reg;
  let journal =
    match cfg.journal with
    | None -> None
    | Some path ->
        recover reg met path;
        Some (Journal.open_append path)
  in
  {
    cfg;
    listen_fd = fd;
    bound_port;
    reg;
    met;
    stop_flag = Atomic.make false;
    journal;
    br_lock = Mutex.create ();
    breakers = Hashtbl.create 8;
  }

let port t = t.bound_port
let registry t = t.reg
let metrics t = t.met
let stop t = Atomic.set t.stop_flag true

let breaker_for t name =
  Mutex.lock t.br_lock;
  let b =
    match Hashtbl.find_opt t.breakers name with
    | Some b -> b
    | None ->
        let b = Breaker.create ~config:t.cfg.breaker () in
        Hashtbl.add t.breakers name b;
        b
  in
  Mutex.unlock t.br_lock;
  b

(* Durability barrier: the mutation is only acknowledged once its
   journal record is fsynced. The append is retried through injected
   store faults; if it still fails the in-memory entry is rolled back
   so a client retry replays the whole mutation instead of hitting the
   idempotent-PUT cache over an unjournaled entry. *)
let journal_append t op =
  match t.journal with
  | None -> Ok ()
  | Some j ->
      let o =
        Retry.run t.cfg.retry
          ~retryable:(function Fault.Injected _ -> true | _ -> false)
          (fun () ->
            (match t.cfg.fault with
            | Some f -> Fault.fire f Fault.Registry_store
            | None -> ());
            Journal.append j op)
      in
      if o.Retry.tries > 1 then
        Metrics.retried t.met ~tries:o.Retry.tries
          ~ok:(Result.is_ok o.Retry.result);
      o.Retry.result

(* ---- request answering -------------------------------------------------- *)

(* What a route handler produces; [aw_hit]/[aw_exhausted] feed the
   cache and budget counters. *)
type answer = {
  aw_endpoint : string;
  aw_status : int;
  aw_body : string;
  aw_hit : [ `Hit | `Miss ] option;
  aw_exhausted : bool;
  aw_retry_after : int option;  (* Retry-After seconds on 429/503 *)
}

let answer ?hit ?(exhausted = false) ?retry_after aw_endpoint aw_status aw_body
    =
  {
    aw_endpoint;
    aw_status;
    aw_body;
    aw_hit = hit;
    aw_exhausted = exhausted;
    aw_retry_after =
      (match retry_after with
      | Some _ -> retry_after
      | None -> if aw_status = 503 || aw_status = 429 then Some 1 else None);
  }

let error_body ?(diags = []) msg =
  Printf.sprintf "{\"error\": %s,\n \"diagnostics\": %s}\n"
    (Render.json_str msg)
    (match diags with
    | [] -> "[]"
    | _ ->
        "[\n" ^ String.concat ",\n" (List.map Render.json_diag diags) ^ "\n  ]")

let q_int rq name default =
  match Http.query rq name with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "query parameter %s: not an integer" name))

let request_budget t rq =
  match (q_int rq "budget_ms" (-1), q_int rq "fuel" (-1)) with
  | Error e, _ | _, Error e -> Error e
  | Ok bms, Ok fl ->
      let deadline_ms =
        Option.map float_of_int
          (if bms >= 0 then Some bms else t.cfg.budget_ms)
      in
      let fuel = if fl >= 0 then Some fl else t.cfg.fuel in
      Ok
        (match (deadline_ms, fuel) with
        | None, None -> None
        | _ -> Some (Budget.create ?deadline_ms ?fuel ()))

let scenario_or_404 t name k =
  match Registry.find t.reg name with
  | Some entry -> k entry
  | None ->
      answer "get" 404
        (error_body (Printf.sprintf "no scenario named %s" name))

(* ---- handlers ----------------------------------------------------------- *)

let handle_put t name body =
  match Registry.put t.reg ~name ~text:body with
  | Error d -> answer "put" 400 (error_body ~diags:[ d ] d.Diag.d_message)
  | Ok (entry, cached) -> (
      match
        if cached then Ok ()
        else journal_append t (Journal.Put { name; text = body })
      with
      | Error exn ->
          ignore (try Registry.remove t.reg name with Fault.Injected _ -> true);
          answer "put" 500
            (error_body
               ~diags:[ Diag.of_exn Diag.Validate exn ]
               "journal append failed; the scenario was not registered")
      | Ok () ->
          let status = if cached then 200 else 201 in
          let hit = if cached then `Hit else `Miss in
          answer ~hit "put" status
            (Printf.sprintf "{\"cached\": %b,\n \"scenario\": %s}\n" cached
               (Registry.info_json t.reg entry)))

let handle_discover t rq entry =
  let meth =
    match Http.query rq "method" with
    | None | Some "both" -> Ok `Both
    | Some "semantic" -> Ok `Semantic
    | Some "ric" -> Ok `Ric
    | Some other ->
        Error (Printf.sprintf "unknown method %s (semantic|ric|both)" other)
  in
  match (meth, request_budget t rq) with
  | Error e, _ | _, Error e -> answer "discover" 400 (error_body e)
  | Ok meth, Ok budget ->
      let dedup = Http.query rq "dedup" = Some "true" in
      let out, hit = Registry.discover t.reg ?budget ~meth ~dedup entry in
      answer ~hit "discover" 200 out.Render.dj_json

let handle_exchange t rq entry =
  match (q_int rq "size" 1000, q_int rq "seed" t.cfg.seed, request_budget t rq) with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      answer "exchange" 400 (error_body e)
  | Ok size, Ok seed, Ok budget -> (
      let laconic = Http.query rq "laconic" <> Some "false" in
      match Registry.exchange t.reg ?budget ~size ~seed ~laconic entry with
      | Registry.Ex_ok (body, hit) -> answer ~hit "exchange" 200 body
      | Registry.Ex_partial (_reason, body) ->
          answer ~exhausted:true "exchange" 503 body
      | Registry.Ex_bad msg -> answer "exchange" 400 (error_body msg)
      | Registry.Ex_failed msg -> answer "exchange" 500 (error_body msg))

let handle_verify _t rq (entry : Registry.entry) =
  match q_int rq "limit" 6 with
  | Error e -> answer "verify" 400 (error_body e)
  | Ok limit ->
      let source = entry.Registry.en_source
      and target = entry.Registry.en_target in
      let s_schema = source.Discover.schema
      and t_schema = target.Discover.schema in
      let corrs = entry.Registry.en_corrs in
      let take n xs = List.filteri (fun i _ -> i < n) xs in
      let label tag ms =
        List.mapi
          (fun i m -> Mapping.rename (Printf.sprintf "%s%d" tag (i + 1)) m)
          ms
      in
      let sem = label "S" (take limit (Discover.discover ~source ~target ~corrs ()))
      and ric =
        label "R"
          (take limit
             (Smg_ric.Baseline.generate ~source:s_schema ~target:t_schema
                ~corrs))
      in
      let all = sem @ ric in
      if all = [] then
        answer "verify" 500 (error_body "neither method produced a candidate")
      else begin
        let rp = Mapverify.dedup ~source:s_schema ~target:t_schema all in
        let names =
          Render.json_list
            (fun (m : Mapping.t) -> Render.json_str m.Mapping.m_name)
            rp.Mapverify.rp_kept
        in
        answer "verify" 200
          (Printf.sprintf
             "{\"scenario\": %s,\n \"candidates\": %d,\n \"classes\": %d,\n \
              \"collapsed\": %d,\n \"subsumed\": %d,\n \"kept\": %s}\n"
             (Render.json_str entry.Registry.en_name)
             rp.Mapverify.rp_in (Mapverify.n_classes rp)
             (Mapverify.n_collapsed rp) (Mapverify.n_subsumed rp) names)
      end

(* Incremental source mutation: parse the batch against the scenario's
   source schema, make it durable (journal-first, so a crash between
   the fsync and the in-memory apply replays it), then maintain the
   materialized target through {!Registry.delta}. An empty batch is a
   consistent read of the maintained document and is not journaled. *)
let handle_delta t rq (entry : Registry.entry) =
  match (q_int rq "size" 1000, q_int rq "seed" t.cfg.seed) with
  | Error e, _ | _, Error e -> answer "delta" 400 (error_body e)
  | Ok size, Ok seed -> (
      let schema = entry.Registry.en_source.Discover.schema in
      match Smg_delta.Batch.parse ~schema rq.Http.rq_body with
      | Error m -> answer "delta" 400 (error_body m)
      | Ok batch -> (
          let journaled =
            if batch = [] then Ok ()
            else
              let text =
                Printf.sprintf "# key %d %d\n%s" size seed
                  (Smg_delta.Batch.to_string batch)
              in
              journal_append t
                (Journal.Delta { name = entry.Registry.en_name; text })
          in
          match journaled with
          | Error exn ->
              answer "delta" 500
                (error_body
                   ~diags:[ Diag.of_exn Diag.Validate exn ]
                   "journal append failed; the delta was not applied")
          | Ok () -> (
              match Registry.delta t.reg ~size ~seed entry batch with
              | Registry.Dl_ok body -> answer "delta" 200 body
              | Registry.Dl_bad m -> answer "delta" 400 (error_body m)
              | Registry.Dl_failed m -> answer "delta" 500 (error_body m))))

(* Round-trip composition: the entry's mapping chained with its
   reversal into a primed copy of the source schema — the smallest
   pipeline that exercises {!Smg_compose} end to end. *)
let handle_compose t rq (entry : Registry.entry) =
  match request_budget t rq with
  | Error e -> answer "compose" 400 (error_body e)
  | Ok budget -> (
      match Registry.entry_tgds t.reg entry with
      | Error msg -> answer "compose" 500 (error_body msg)
      | Ok fwd ->
          let src = entry.Registry.en_source.Discover.schema
          and tgt = entry.Registry.en_target.Discover.schema in
          let primed = Invert.prime_schema ~suffix:"_inv" src in
          let hops =
            [
              { Pipeline.h_source = src; h_target = tgt; h_tgds = fwd };
              {
                Pipeline.h_source = tgt;
                h_target = primed;
                h_tgds = Invert.quasi_inverse ~prime:"_inv" fwd;
              };
            ]
          in
          let r = Pipeline.compose_chain ?budget hops in
          let tgds =
            Render.json_list
              (fun tgd ->
                Render.json_str
                  (Fmt.str "%a" Smg_cq.Dependency.pp_tgd tgd))
              r.Compose.c_exec
          in
          let exhausted, diags =
            match r.Compose.c_budget with
            | None -> ("null", [])
            | Some reason ->
                ( Render.json_str (Fmt.str "%a" Budget.pp_reason reason),
                  [
                    Diag.degraded ~subject:entry.Registry.en_name Diag.Verify
                      reason "composition truncated";
                  ] )
          in
          let body =
            Printf.sprintf
              "{\"scenario\": %s,\n \"exact\": %b,\n \"clauses\": %d,\n \
               \"plain\": %d,\n \"residual\": %d,\n \"dropped\": %d,\n \
               \"exhausted\": %s,\n \"tgds\": %s,\n \"diagnostics\": %s}\n"
              (Render.json_str entry.Registry.en_name)
              r.Compose.c_exact
              (List.length r.Compose.c_clauses)
              (List.length r.Compose.c_plain)
              (List.length r.Compose.c_residual)
              r.Compose.c_dropped exhausted tgds
              (match diags with
              | [] -> "[]"
              | _ ->
                  "[\n"
                  ^ String.concat ",\n" (List.map Render.json_diag diags)
                  ^ "\n  ]")
          in
          let status = if r.Compose.c_budget = None then 200 else 503 in
          answer ~exhausted:(r.Compose.c_budget <> None) "compose" status body)

(* ---- routing ------------------------------------------------------------ *)

let route t (rq : Http.request) =
  match (rq.Http.rq_meth, rq.Http.rq_segments) with
  | Http.GET, [ "healthz" ] ->
      let breakers =
        Mutex.lock t.br_lock;
        let l =
          Hashtbl.fold
            (fun name b acc ->
              let st =
                match Breaker.state b with
                | `Closed -> "closed"
                | `Open -> "open"
                | `Half_open -> "half_open"
              in
              (name, st, Breaker.trips b) :: acc)
            t.breakers []
        in
        Mutex.unlock t.br_lock;
        List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) l
      in
      let body =
        Printf.sprintf
          "{\"ok\": true,\n \"scenarios\": %d,\n \"pool\": %d,\n \
           \"journal\": %s,\n \"breakers\": %s}\n"
          (Registry.size t.reg) t.cfg.domains
          (match t.journal with
          | None -> "null"
          | Some j ->
              Printf.sprintf "{\"position\": %d}" (Journal.position j))
          (Render.json_list
             (fun (name, st, trips) ->
               Printf.sprintf
                 "{\"scenario\": %s, \"state\": %s, \"trips\": %d}"
                 (Render.json_str name) (Render.json_str st) trips)
             breakers)
      in
      answer "healthz" 200 body
  | Http.GET, [ "metrics" ] ->
      answer "metrics" 200
        (Metrics.to_json t.met
           ?shards:(Registry.shard_view t.reg)
           ~scenarios:(Registry.size t.reg))
  | Http.GET, [ "scenarios" ] ->
      answer "list" 200
        (Printf.sprintf "{\"scenarios\": %s}\n"
           (Render.json_list Render.json_str (Registry.names t.reg)))
  | Http.PUT, [ "scenarios"; name ] -> handle_put t name rq.Http.rq_body
  | Http.GET, [ "scenarios"; name ] ->
      scenario_or_404 t name (fun entry ->
          answer "get" 200 (Registry.info_json t.reg entry ^ "\n"))
  | Http.DELETE, [ "scenarios"; name ] -> (
      if not (Registry.remove t.reg name) then
        answer "delete" 404
          (error_body (Printf.sprintf "no scenario named %s" name))
      else
        match journal_append t (Journal.Delete name) with
        | Ok () -> answer "delete" 200 "{\"deleted\": true}\n"
        | Error exn ->
            answer "delete" 500
              (error_body
                 ~diags:[ Diag.of_exn Diag.Validate exn ]
                 "journal append failed; the delete is not durable"))
  | Http.POST, [ "scenarios"; name; action ] -> (
      scenario_or_404 t name (fun entry ->
          match action with
          | "discover" -> handle_discover t rq entry
          | "exchange" -> handle_exchange t rq entry
          | "verify" -> handle_verify t rq entry
          | "compose" -> handle_compose t rq entry
          | "delta" -> handle_delta t rq entry
          | _ ->
              answer "other" 404
                (error_body (Printf.sprintf "unknown action %s" action))))
  | _, ("healthz" | "metrics" | "scenarios") :: _ ->
      answer "other" 405 (error_body "method not allowed")
  | _ -> answer "other" 404 (error_body "not found")

(* Supervision: an exception anywhere in a handler — injected or
   genuine — is contained as a diagnosed 500 on this request; the
   domain and the connection live on. *)
let supervise t endpoint f =
  try f ()
  with exn ->
    Metrics.supervised t.met;
    answer endpoint 500
      (error_body
         ~diags:[ Diag.of_exn Diag.Exchange exn ]
         (Printexc.to_string exn))

(* POST actions run behind the scenario's circuit breaker: repeated
   5xx answers trip it and later requests shed immediately with 503 +
   Retry-After instead of burning a domain on work that keeps failing;
   after the cooldown one probe is admitted and its outcome decides
   between closing and re-opening. Only 500s count as failures:
   2xx/3xx/4xx say nothing bad about the scenario's health, and a 503
   budget partial is a successful degraded answer to a client-chosen
   budget, not a fault. *)
let safe_route t rq =
  match (rq.Http.rq_meth, rq.Http.rq_segments) with
  | Http.POST, [ "scenarios"; name; action ] ->
      let br = breaker_for t name in
      (match Breaker.admit br ~now:(Unix.gettimeofday ()) with
      | Breaker.Shed retry_after ->
          Metrics.breaker_shed t.met;
          answer ~retry_after action 503
            (error_body
               (Printf.sprintf
                  "circuit open for scenario %s: shedding after repeated \
                   failures"
                  name))
      | Breaker.Allow ->
          let before = Breaker.trips br in
          let aw = supervise t action (fun () -> route t rq) in
          if aw.aw_status = 500 then begin
            Breaker.failure br ~now:(Unix.gettimeofday ());
            if Breaker.trips br > before then Metrics.breaker_tripped t.met
          end
          else Breaker.success br;
          aw)
  | _ -> supervise t "other" (fun () -> route t rq)

(* ---- connection loop ---------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* An idle or stalled peer hit the read/write deadline. *)
exception Conn_timeout

(* An injected socket fault drops the connection mid-exchange. *)
exception Conn_drop

let handle_conn t fd =
  (* the injected socket decisions are drawn once per connection, so
     the fault schedule depends on connection order alone, never on
     how the kernel chunks the byte stream *)
  let rd_fault =
    match t.cfg.fault with
    | Some f -> Fault.decide f Fault.Socket_read
    | None -> None
  in
  let wr_fault () =
    match t.cfg.fault with
    | Some f -> Fault.decide f Fault.Socket_write
    | None -> None
  in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout_s;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.idle_timeout_s;
  let reads = ref 0 in
  let read buf off len =
    (* a Short read fault delivers the first chunk then fakes EOF, so
       a request spanning reads is seen truncated — a clean 400 *)
    if rd_fault = Some Fault.Short && !reads >= 1 then 0
    else
      match Unix.read fd buf off len with
      | n ->
          incr reads;
          n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise Conn_timeout
  in
  let send resp =
    match wr_fault () with
    | None -> write_all fd resp
    | Some (Fault.Delay s) ->
        if s > 0. then Unix.sleepf s;
        write_all fd resp
    | Some Fault.Raise -> raise Conn_drop
    | Some Fault.Short ->
        (* cut inside the status line: the client sees a torn response
           it can never mistake for a complete one *)
        write_all fd (String.sub resp 0 (min 20 (String.length resp)));
        raise Conn_drop
  in
  let reader = Http.reader read in
  (* bytes consumed up to the last request boundary: when the idle
     deadline strikes, anything past this mark is a half-sent request
     (slowloris) deserving a 408; at the mark, the peer is merely idle
     between keep-alive requests and is closed silently *)
  let boundary = ref 0 in
  let rec loop () =
    let before = Http.bytes_in reader in
    boundary := before;
    let t0 = Unix.gettimeofday () in
    match Http.next_request reader with
    | Http.Eof -> ()
    | Http.Reject rj ->
        let body = error_body rj.Http.rj_reason in
        let resp = Http.response ~close:true ~status:rj.Http.rj_status body in
        send resp;
        Metrics.record t.met ~endpoint:"reject" ~status:rj.Http.rj_status
          ~bytes_in:(Http.bytes_in reader - before)
          ~bytes_out:(String.length resp)
          ~seconds:(Unix.gettimeofday () -. t0)
          ()
    | Http.Request rq ->
        let aw = safe_route t rq in
        let keep = Http.keep_alive rq && not (Atomic.get t.stop_flag) in
        let resp =
          Http.response ~close:(not keep) ?retry_after:aw.aw_retry_after
            ~status:aw.aw_status aw.aw_body
        in
        send resp;
        Metrics.record t.met ~endpoint:aw.aw_endpoint ~status:aw.aw_status
          ?hit:aw.aw_hit ~exhausted:aw.aw_exhausted
          ~bytes_in:(Http.bytes_in reader - before)
          ~bytes_out:(String.length resp)
          ~seconds:(Unix.gettimeofday () -. t0)
          ();
        if keep then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Atomic.fetch_and_add (Metrics.inflight t.met) (-1)))
    (fun () ->
      (* the pool_task point fires inside the protect, so an injected
         task death still closes the socket and releases the inflight
         slot; the raise escapes to the dispatcher's supervisor *)
      (match t.cfg.fault with
      | Some f -> Fault.fire f Fault.Pool_task
      | None -> ());
      (match rd_fault with
      | Some Fault.Raise -> raise Conn_drop
      | Some (Fault.Delay s) -> if s > 0. then Unix.sleepf s
      | Some Fault.Short | None -> ());
      try loop () with
      | Unix.Unix_error _ | Conn_drop -> ()
      | Conn_timeout when Http.bytes_in reader > !boundary ->
          (* slowloris containment: the peer went idle with a request
             half-sent; answer 408 and close *)
          Metrics.timed_out t.met;
          let resp =
            Http.response ~close:true ~status:408
              (error_body "connection idle past the read deadline")
          in
          (try send resp with Unix.Unix_error _ | Conn_drop -> ());
          Metrics.record t.met ~endpoint:"timeout" ~status:408 ~bytes_in:0
            ~bytes_out:(String.length resp) ~seconds:t.cfg.idle_timeout_s ()
      | Conn_timeout ->
          (* idle between keep-alive requests: close without ceremony,
             exactly as if the peer had hung up *)
          ())

let too_busy = "{\"error\": \"too many connections\", \"diagnostics\": []}\n"

let accept_loop t dispatch =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
        | fd, _ ->
            let gauge = Metrics.inflight t.met in
            if Atomic.get gauge >= t.cfg.max_inflight then begin
              let resp =
                Http.response ~close:true ~retry_after:1 ~status:429 too_busy
              in
              (try write_all fd resp with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Metrics.record t.met ~endpoint:"admission" ~status:429
                ~bytes_in:0
                ~bytes_out:(String.length resp)
                ~seconds:0.0 ()
            end
            else begin
              ignore (Atomic.fetch_and_add gauge 1);
              dispatch (fun () -> handle_conn t fd)
            end)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run t =
  let finish () =
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Journal.close t.journal
  in
  Fun.protect ~finally:finish (fun () ->
      if t.cfg.domains <= 1 then begin
        (* inline dispatch still supervises: an injected task death
           must not take the accept loop down with it *)
        accept_loop t (fun f ->
            try f () with _ -> Metrics.supervised t.met);
        true
      end
      else begin
        let pool = Smg_parallel.Pool.create ~domains:t.cfg.domains in
        Smg_parallel.Pool.set_supervisor pool (fun _ ->
            Metrics.supervised t.met);
        accept_loop t (Smg_parallel.Pool.submit pool);
        (* bounded drain: serve what we can within the deadline, but a
           stuck request must not turn SIGTERM into a hang — when the
           drain times out the workers are abandoned (joining a stuck
           domain would block forever) and process exit reaps them *)
        let drained =
          Smg_parallel.Pool.drain_timeout pool
            ~seconds:t.cfg.drain_deadline_s
        in
        if drained then Smg_parallel.Pool.shutdown pool;
        drained
      end)
