module Budget = Smg_robust.Budget
module Diag = Smg_robust.Diag
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Mapverify = Smg_verify.Mapverify
module Pipeline = Smg_compose.Pipeline
module Invert = Smg_compose.Invert
module Compose = Smg_compose.Compose

type config = {
  port : int;
  domains : int;
  max_inflight : int;
  budget_ms : int option;
  fuel : int option;
  seed : int;
  preload : bool;
}

let default_config =
  {
    port = 8080;
    domains = 1;
    max_inflight = 64;
    budget_ms = None;
    fuel = None;
    seed = 42;
    preload = true;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  reg : Registry.t;
  met : Metrics.t;
  stop_flag : bool Atomic.t;
}

let create cfg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port) in
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 128;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let reg = Registry.create () in
  if cfg.preload then Registry.preload_builtins reg;
  {
    cfg;
    listen_fd = fd;
    bound_port;
    reg;
    met = Metrics.create ();
    stop_flag = Atomic.make false;
  }

let port t = t.bound_port
let registry t = t.reg
let metrics t = t.met
let stop t = Atomic.set t.stop_flag true

(* ---- request answering -------------------------------------------------- *)

(* What a route handler produces; [aw_hit]/[aw_exhausted] feed the
   cache and budget counters. *)
type answer = {
  aw_endpoint : string;
  aw_status : int;
  aw_body : string;
  aw_hit : [ `Hit | `Miss ] option;
  aw_exhausted : bool;
}

let answer ?hit ?(exhausted = false) aw_endpoint aw_status aw_body =
  { aw_endpoint; aw_status; aw_body; aw_hit = hit; aw_exhausted = exhausted }

let error_body ?(diags = []) msg =
  Printf.sprintf "{\"error\": %s,\n \"diagnostics\": %s}\n"
    (Render.json_str msg)
    (match diags with
    | [] -> "[]"
    | _ ->
        "[\n" ^ String.concat ",\n" (List.map Render.json_diag diags) ^ "\n  ]")

let q_int rq name default =
  match Http.query rq name with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "query parameter %s: not an integer" name))

let request_budget t rq =
  match (q_int rq "budget_ms" (-1), q_int rq "fuel" (-1)) with
  | Error e, _ | _, Error e -> Error e
  | Ok bms, Ok fl ->
      let deadline_ms =
        Option.map float_of_int
          (if bms >= 0 then Some bms else t.cfg.budget_ms)
      in
      let fuel = if fl >= 0 then Some fl else t.cfg.fuel in
      Ok
        (match (deadline_ms, fuel) with
        | None, None -> None
        | _ -> Some (Budget.create ?deadline_ms ?fuel ()))

let scenario_or_404 t name k =
  match Registry.find t.reg name with
  | Some entry -> k entry
  | None ->
      answer "get" 404
        (error_body (Printf.sprintf "no scenario named %s" name))

(* ---- handlers ----------------------------------------------------------- *)

let handle_put t name body =
  match Registry.put t.reg ~name ~text:body with
  | Error d -> answer "put" 400 (error_body ~diags:[ d ] d.Diag.d_message)
  | Ok (entry, cached) ->
      let status = if cached then 200 else 201 in
      let hit = if cached then `Hit else `Miss in
      answer ~hit "put" status
        (Printf.sprintf "{\"cached\": %b,\n \"scenario\": %s}\n" cached
           (Registry.info_json t.reg entry))

let handle_discover t rq entry =
  let meth =
    match Http.query rq "method" with
    | None | Some "both" -> Ok `Both
    | Some "semantic" -> Ok `Semantic
    | Some "ric" -> Ok `Ric
    | Some other ->
        Error (Printf.sprintf "unknown method %s (semantic|ric|both)" other)
  in
  match (meth, request_budget t rq) with
  | Error e, _ | _, Error e -> answer "discover" 400 (error_body e)
  | Ok meth, Ok budget ->
      let dedup = Http.query rq "dedup" = Some "true" in
      let out, hit = Registry.discover t.reg ?budget ~meth ~dedup entry in
      answer ~hit "discover" 200 out.Render.dj_json

let handle_exchange t rq entry =
  match (q_int rq "size" 1000, q_int rq "seed" t.cfg.seed, request_budget t rq) with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      answer "exchange" 400 (error_body e)
  | Ok size, Ok seed, Ok budget -> (
      let laconic = Http.query rq "laconic" <> Some "false" in
      match Registry.exchange t.reg ?budget ~size ~seed ~laconic entry with
      | Registry.Ex_ok (body, hit) -> answer ~hit "exchange" 200 body
      | Registry.Ex_partial (_reason, body) ->
          answer ~exhausted:true "exchange" 503 body
      | Registry.Ex_bad msg -> answer "exchange" 400 (error_body msg)
      | Registry.Ex_failed msg -> answer "exchange" 500 (error_body msg))

let handle_verify _t rq (entry : Registry.entry) =
  match q_int rq "limit" 6 with
  | Error e -> answer "verify" 400 (error_body e)
  | Ok limit ->
      let source = entry.Registry.en_source
      and target = entry.Registry.en_target in
      let s_schema = source.Discover.schema
      and t_schema = target.Discover.schema in
      let corrs = entry.Registry.en_corrs in
      let take n xs = List.filteri (fun i _ -> i < n) xs in
      let label tag ms =
        List.mapi
          (fun i m -> Mapping.rename (Printf.sprintf "%s%d" tag (i + 1)) m)
          ms
      in
      let sem = label "S" (take limit (Discover.discover ~source ~target ~corrs ()))
      and ric =
        label "R"
          (take limit
             (Smg_ric.Baseline.generate ~source:s_schema ~target:t_schema
                ~corrs))
      in
      let all = sem @ ric in
      if all = [] then
        answer "verify" 500 (error_body "neither method produced a candidate")
      else begin
        let rp = Mapverify.dedup ~source:s_schema ~target:t_schema all in
        let names =
          Render.json_list
            (fun (m : Mapping.t) -> Render.json_str m.Mapping.m_name)
            rp.Mapverify.rp_kept
        in
        answer "verify" 200
          (Printf.sprintf
             "{\"scenario\": %s,\n \"candidates\": %d,\n \"classes\": %d,\n \
              \"collapsed\": %d,\n \"subsumed\": %d,\n \"kept\": %s}\n"
             (Render.json_str entry.Registry.en_name)
             rp.Mapverify.rp_in (Mapverify.n_classes rp)
             (Mapverify.n_collapsed rp) (Mapverify.n_subsumed rp) names)
      end

(* Round-trip composition: the entry's mapping chained with its
   reversal into a primed copy of the source schema — the smallest
   pipeline that exercises {!Smg_compose} end to end. *)
let handle_compose t rq (entry : Registry.entry) =
  match request_budget t rq with
  | Error e -> answer "compose" 400 (error_body e)
  | Ok budget -> (
      match Registry.entry_tgds t.reg entry with
      | Error msg -> answer "compose" 500 (error_body msg)
      | Ok fwd ->
          let src = entry.Registry.en_source.Discover.schema
          and tgt = entry.Registry.en_target.Discover.schema in
          let primed = Invert.prime_schema ~suffix:"_inv" src in
          let hops =
            [
              { Pipeline.h_source = src; h_target = tgt; h_tgds = fwd };
              {
                Pipeline.h_source = tgt;
                h_target = primed;
                h_tgds = Invert.quasi_inverse ~prime:"_inv" fwd;
              };
            ]
          in
          let r = Pipeline.compose_chain ?budget hops in
          let tgds =
            Render.json_list
              (fun tgd ->
                Render.json_str
                  (Fmt.str "%a" Smg_cq.Dependency.pp_tgd tgd))
              r.Compose.c_exec
          in
          let exhausted, diags =
            match r.Compose.c_budget with
            | None -> ("null", [])
            | Some reason ->
                ( Render.json_str (Fmt.str "%a" Budget.pp_reason reason),
                  [
                    Diag.degraded ~subject:entry.Registry.en_name Diag.Verify
                      reason "composition truncated";
                  ] )
          in
          let body =
            Printf.sprintf
              "{\"scenario\": %s,\n \"exact\": %b,\n \"clauses\": %d,\n \
               \"plain\": %d,\n \"residual\": %d,\n \"dropped\": %d,\n \
               \"exhausted\": %s,\n \"tgds\": %s,\n \"diagnostics\": %s}\n"
              (Render.json_str entry.Registry.en_name)
              r.Compose.c_exact
              (List.length r.Compose.c_clauses)
              (List.length r.Compose.c_plain)
              (List.length r.Compose.c_residual)
              r.Compose.c_dropped exhausted tgds
              (match diags with
              | [] -> "[]"
              | _ ->
                  "[\n"
                  ^ String.concat ",\n" (List.map Render.json_diag diags)
                  ^ "\n  ]")
          in
          let status = if r.Compose.c_budget = None then 200 else 503 in
          answer ~exhausted:(r.Compose.c_budget <> None) "compose" status body)

(* ---- routing ------------------------------------------------------------ *)

let route t (rq : Http.request) =
  match (rq.Http.rq_meth, rq.Http.rq_segments) with
  | Http.GET, [ "healthz" ] -> answer "healthz" 200 "{\"ok\": true}\n"
  | Http.GET, [ "metrics" ] ->
      answer "metrics" 200
        (Metrics.to_json t.met ~scenarios:(Registry.size t.reg))
  | Http.GET, [ "scenarios" ] ->
      answer "list" 200
        (Printf.sprintf "{\"scenarios\": %s}\n"
           (Render.json_list Render.json_str (Registry.names t.reg)))
  | Http.PUT, [ "scenarios"; name ] -> handle_put t name rq.Http.rq_body
  | Http.GET, [ "scenarios"; name ] ->
      scenario_or_404 t name (fun entry ->
          answer "get" 200 (Registry.info_json t.reg entry ^ "\n"))
  | Http.DELETE, [ "scenarios"; name ] ->
      if Registry.remove t.reg name then
        answer "delete" 200 "{\"deleted\": true}\n"
      else
        answer "delete" 404
          (error_body (Printf.sprintf "no scenario named %s" name))
  | Http.POST, [ "scenarios"; name; action ] -> (
      scenario_or_404 t name (fun entry ->
          match action with
          | "discover" -> handle_discover t rq entry
          | "exchange" -> handle_exchange t rq entry
          | "verify" -> handle_verify t rq entry
          | "compose" -> handle_compose t rq entry
          | _ ->
              answer "other" 404
                (error_body (Printf.sprintf "unknown action %s" action))))
  | _, ("healthz" | "metrics" | "scenarios") :: _ ->
      answer "other" 405 (error_body "method not allowed")
  | _ -> answer "other" 404 (error_body "not found")

let safe_route t rq =
  try route t rq
  with exn ->
    answer "other" 500
      (error_body
         ~diags:[ Diag.of_exn Diag.Exchange exn ]
         (Printexc.to_string exn))

(* ---- connection loop ---------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let handle_conn t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  let read buf off len =
    match Unix.read fd buf off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        0 (* receive timeout: treat as end of stream *)
  in
  let reader = Http.reader read in
  let rec loop () =
    let before = Http.bytes_in reader in
    let t0 = Unix.gettimeofday () in
    match Http.next_request reader with
    | Http.Eof -> ()
    | Http.Reject rj ->
        let body = error_body rj.Http.rj_reason in
        let resp = Http.response ~close:true ~status:rj.Http.rj_status body in
        write_all fd resp;
        Metrics.record t.met ~endpoint:"reject" ~status:rj.Http.rj_status
          ~bytes_in:(Http.bytes_in reader - before)
          ~bytes_out:(String.length resp)
          ~seconds:(Unix.gettimeofday () -. t0)
          ()
    | Http.Request rq ->
        let aw = safe_route t rq in
        let keep = Http.keep_alive rq && not (Atomic.get t.stop_flag) in
        let resp =
          Http.response ~close:(not keep) ~status:aw.aw_status aw.aw_body
        in
        write_all fd resp;
        Metrics.record t.met ~endpoint:aw.aw_endpoint ~status:aw.aw_status
          ?hit:aw.aw_hit ~exhausted:aw.aw_exhausted
          ~bytes_in:(Http.bytes_in reader - before)
          ~bytes_out:(String.length resp)
          ~seconds:(Unix.gettimeofday () -. t0)
          ();
        if keep then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore (Atomic.fetch_and_add (Metrics.inflight t.met) (-1)))
    (fun () -> try loop () with Unix.Unix_error _ -> ())

let too_busy = "{\"error\": \"too many connections\", \"diagnostics\": []}\n"

let accept_loop t dispatch =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
        | fd, _ ->
            let gauge = Metrics.inflight t.met in
            if Atomic.get gauge >= t.cfg.max_inflight then begin
              let resp = Http.response ~close:true ~status:429 too_busy in
              (try write_all fd resp with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Metrics.record t.met ~endpoint:"admission" ~status:429
                ~bytes_in:0
                ~bytes_out:(String.length resp)
                ~seconds:0.0 ()
            end
            else begin
              ignore (Atomic.fetch_and_add gauge 1);
              dispatch (fun () -> handle_conn t fd)
            end)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run t =
  let finish () = try Unix.close t.listen_fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally:finish (fun () ->
      if t.cfg.domains <= 1 then accept_loop t (fun f -> f ())
      else
        Smg_parallel.Pool.with_pool ~domains:t.cfg.domains (fun pool ->
            accept_loop t (Smg_parallel.Pool.submit pool);
            (* serve every accepted connection before returning *)
            Smg_parallel.Pool.drain pool))
