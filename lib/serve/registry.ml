module Ast = Smg_dsl.Ast
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Diag = Smg_robust.Diag
module Engine = Smg_exchange.Engine
module Scenario = Smg_eval.Scenario
module Batch = Smg_delta.Batch
module Maintain = Smg_delta.Maintain

type kind = Dsl of Ast.t | Builtin of Scenario.t

type entry = {
  en_name : string;
  en_hash : string;
  en_kind : kind;
  en_source : Discover.side;
  en_target : Discover.side;
  en_corrs : Mapping.corr list;
  en_created : float;
}

(* One cell per scenario name: the entry plus every cached artifact.
   [c_lock] makes each cell's caches single-flight; the table lock only
   guards the name -> cell map, so requests against different scenarios
   never contend. *)
type cell = {
  mutable c_entry : entry;
  c_lock : Mutex.t;
  c_discover : (string, Render.discover_output) Hashtbl.t;
  mutable c_tgds : (Smg_cq.Dependency.tgd list, string) result option;
  c_instances : (string, Instance.t) Hashtbl.t;
  c_plans : (string, Engine.compiled) Hashtbl.t;
  c_maintain : (string, Maintain.state) Hashtbl.t;
}

type t = {
  t_lock : Mutex.t;
  t_cells : (string, cell) Hashtbl.t;
  t_fault : Smg_robust.Fault.t option;
  t_retry : Smg_robust.Retry.policy;
  t_on_retry : tries:int -> ok:bool -> unit;
  t_shards : int option;
      (* membership-partition count forwarded to every engine execution
         and delta init; None defers to SMG_SHARDS / pool size *)
  mutable t_shard_view : Smg_exchange.Obs.shard_view option;
      (* the most recent execution's shard/intern snapshot — a single
         word, so the unlocked write is atomic; GET /metrics reads it *)
}

let create ?fault ?(retry = Smg_robust.Retry.default)
    ?(on_retry = fun ~tries:_ ~ok:_ -> ()) ?shards () =
  {
    t_lock = Mutex.create ();
    t_cells = Hashtbl.create 16;
    t_fault = fault;
    t_retry = retry;
    t_on_retry = on_retry;
    t_shards = shards;
    t_shard_view = None;
  }

let shard_view t = t.t_shard_view

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let fire t point =
  match t.t_fault with
  | Some f -> Smg_robust.Fault.fire f point
  | None -> ()

(* Store and compile faults are the transient class: absorbed by the
   retry policy server-side, so a flaky mutation surfaces to the client
   as a (slightly slower) success, not a 500. Anything else — parse
   faults included — is not retried. *)
let transient = function
  | Smg_robust.Fault.Injected
      (Smg_robust.Fault.Registry_store | Smg_robust.Fault.Plan_compile) ->
      true
  | _ -> false

let with_retry t f =
  let o = Smg_robust.Retry.run t.t_retry ~retryable:transient f in
  (match o.Smg_robust.Retry.result with
  | Ok _ when o.Smg_robust.Retry.tries > 1 ->
      t.t_on_retry ~tries:o.Smg_robust.Retry.tries ~ok:true
  | Error _ when o.Smg_robust.Retry.tries > 1 ->
      t.t_on_retry ~tries:o.Smg_robust.Retry.tries ~ok:false
  | _ -> ());
  match o.Smg_robust.Retry.result with Ok v -> v | Error e -> raise e

let fresh_cell entry =
  {
    c_entry = entry;
    c_lock = Mutex.create ();
    c_discover = Hashtbl.create 4;
    c_tgds = None;
    c_instances = Hashtbl.create 4;
    c_plans = Hashtbl.create 4;
    c_maintain = Hashtbl.create 2;
  }

(* ---- lowering ---------------------------------------------------------- *)

let sides_of_doc (doc : Ast.t) =
  match (doc.Ast.doc_schemas, doc.Ast.doc_cms) with
  | [ src_schema; tgt_schema ], [ src_cm; tgt_cm ] ->
      (* mirror of the CLI loader: semantics blocks carry only a table
         name, so pick per table the first block whose s-tree validates
         against this side's CM, falling back to the first name match
         so genuine validation errors still surface in Discover.side *)
      let strees_for (schema : Schema.t) (cm : Smg_cm.Cml.t) =
        let cmg = Smg_cm.Cm_graph.compile cm in
        List.filter_map
          (fun (t : Schema.table) ->
            let blocks =
              List.filter
                (fun (b : Ast.semantics_block) ->
                  String.equal b.Ast.sem_table t.Schema.tbl_name)
                doc.Ast.doc_semantics
            in
            let validates (b : Ast.semantics_block) =
              match Smg_semantics.Stree.validate cmg t b.Ast.sem_stree with
              | () -> true
              | exception Invalid_argument _ -> false
            in
            match (List.find_opt validates blocks, blocks) with
            | Some b, _ | None, b :: _ -> Some b.Ast.sem_stree
            | None, [] -> None)
          schema.Schema.tables
      in
      let mk label schema cm =
        try Ok (Discover.side ~schema ~cm (strees_for schema cm))
        with Invalid_argument msg | Failure msg ->
          Error (Printf.sprintf "%s side: %s" label msg)
      in
      Result.bind (mk "source" src_schema src_cm) (fun source ->
          Result.map
            (fun target -> (source, target))
            (mk "target" tgt_schema tgt_cm))
  | _ -> Error "a scenario needs exactly two schemas and two CMs"

let tgds_of_best ~target (best : Mapping.t) =
  if best.Mapping.outer then Mapping.outer_variants ~target best
  else [ Mapping.to_tgd best ]

let scenario_tgds (scen : Scenario.t) =
  let target = scen.Scenario.target in
  List.concat_map
    (fun (case : Scenario.case) ->
      match Smg_eval.Experiments.run_method Smg_eval.Experiments.Semantic scen case with
      | [] -> []
      | best :: _ ->
          let best = Mapping.rename case.Scenario.case_name best in
          tgds_of_best ~target:target.Discover.schema best)
    scen.Scenario.cases

(* ---- registration ------------------------------------------------------ *)

let put t ~name ~text =
  (* a parse fault is not retryable: it raises out of [put] into the
     server's supervisor, which answers a diagnosed 500 *)
  fire t Smg_robust.Fault.Parse;
  match Smg_dsl.Parser.parse_result ~file:name text with
  | Error d -> Error d
  | Ok doc -> (
      match sides_of_doc doc with
      | Error msg -> Error (Diag.errorf ~subject:name Diag.Validate "%s" msg)
      | Ok (source, target) ->
          if doc.Ast.doc_corrs = [] then
            Error
              (Diag.errorf ~subject:name Diag.Validate
                 "the scenario declares no correspondences")
          else begin
            let hash = Digest.to_hex (Digest.string text) in
            with_lock t.t_lock @@ fun () ->
            match Hashtbl.find_opt t.t_cells name with
            | Some cell when cell.c_entry.en_hash = hash ->
                Ok (cell.c_entry, true)
            | prior ->
                let entry =
                  {
                    en_name = name;
                    en_hash = hash;
                    en_kind = Dsl doc;
                    en_source = source;
                    en_target = target;
                    en_corrs = doc.Ast.doc_corrs;
                    en_created = Unix.gettimeofday ();
                  }
                in
                let cell = fresh_cell entry in
                with_retry t (fun () ->
                    fire t Smg_robust.Fault.Registry_store;
                    match prior with
                    | Some _ -> Hashtbl.replace t.t_cells name cell
                    | None -> Hashtbl.add t.t_cells name cell);
                Ok (entry, false)
          end)

let find t name =
  with_lock t.t_lock @@ fun () ->
  Option.map (fun c -> c.c_entry) (Hashtbl.find_opt t.t_cells name)

let names t =
  with_lock t.t_lock @@ fun () ->
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.t_cells [])

let remove t name =
  with_lock t.t_lock @@ fun () ->
  let existed = Hashtbl.mem t.t_cells name in
  if existed then
    with_retry t (fun () ->
        fire t Smg_robust.Fault.Registry_store;
        Hashtbl.remove t.t_cells name);
  existed

let size t = with_lock t.t_lock @@ fun () -> Hashtbl.length t.t_cells

let preload_builtins t =
  List.iter
    (fun (scen : Scenario.t) ->
      let name = String.lowercase_ascii scen.Scenario.scen_name in
      let corrs =
        List.concat_map (fun (c : Scenario.case) -> c.Scenario.corrs)
          scen.Scenario.cases
      in
      let entry =
        {
          en_name = name;
          en_hash = "builtin:" ^ name;
          en_kind = Builtin scen;
          en_source = scen.Scenario.source;
          en_target = scen.Scenario.target;
          en_corrs = corrs;
          en_created = Unix.gettimeofday ();
        }
      in
      with_lock t.t_lock @@ fun () ->
      if not (Hashtbl.mem t.t_cells name) then
        Hashtbl.add t.t_cells name (fresh_cell entry))
    (Smg_eval.Datasets.all ())

(* The cell backing an entry, if the registry still holds that exact
   content; a concurrent replacement makes requests against the stale
   entry compute uncached rather than pollute the new cell's caches. *)
let cell_of t (entry : entry) =
  with_lock t.t_lock @@ fun () ->
  match Hashtbl.find_opt t.t_cells entry.en_name with
  | Some cell when cell.c_entry.en_hash = entry.en_hash -> Some cell
  | _ -> None

(* ---- discovery --------------------------------------------------------- *)

type hit = [ `Hit | `Miss ]

let discover_key meth dedup =
  (match meth with `Semantic -> "sem" | `Ric -> "ric" | `Both -> "both")
  ^ if dedup then ":dedup" else ""

let compute_discover ?budget ~meth ~dedup (entry : entry) =
  Render.discover_json ?budget ~meth ~dedup ~file:entry.en_name
    ~source:entry.en_source ~target:entry.en_target ~corrs:entry.en_corrs ()

let discover t ?budget ~meth ~dedup entry =
  match cell_of t entry with
  | None -> (compute_discover ?budget ~meth ~dedup entry, `Miss)
  | Some cell -> (
      let key = discover_key meth dedup in
      with_lock cell.c_lock @@ fun () ->
      match Hashtbl.find_opt cell.c_discover key with
      | Some out -> (out, `Hit)
      | None ->
          let out = compute_discover ?budget ~meth ~dedup entry in
          Hashtbl.add cell.c_discover key out;
          (out, `Miss))

(* ---- executable tgds --------------------------------------------------- *)

let compute_tgds (entry : entry) =
  match entry.en_kind with
  | Builtin scen -> (
      match scenario_tgds scen with
      | [] ->
          Error
            (Printf.sprintf "discovery produced no mapping for %s"
               scen.Scenario.scen_name)
      | tgds -> Ok tgds)
  | Dsl _ -> (
      match
        Discover.discover ~source:entry.en_source ~target:entry.en_target
          ~corrs:entry.en_corrs ()
      with
      | [] -> Error "no mapping discovered"
      | best :: _ ->
          Ok (tgds_of_best ~target:entry.en_target.Discover.schema best))

let entry_tgds t entry =
  match cell_of t entry with
  | None -> compute_tgds entry
  | Some cell -> (
      with_lock cell.c_lock @@ fun () ->
      match cell.c_tgds with
      | Some r -> r
      | None ->
          let r = compute_tgds entry in
          cell.c_tgds <- Some r;
          r)

(* ---- exchange ---------------------------------------------------------- *)

type exchange_result =
  | Ex_ok of string * hit
  | Ex_partial of Smg_robust.Budget.reason * string
  | Ex_bad of string
  | Ex_failed of string

(* How to obtain the source instance, and the head fields of the
   response document. A scenario with data blocks executes them (after
   a RIC check, as the CLI does); otherwise a deterministic witness
   instance is generated lazily — so a warm request can reuse the
   cached one — sized like [mapdisc exchange --scenario]: [size] total
   tuples split over the source tables. *)
let instance_plan ~size ~seed (entry : entry) =
  let schema = entry.en_source.Discover.schema in
  let witness () =
    let n_tables = max 1 (List.length schema.Schema.tables) in
    let rows = max 1 (size / n_tables) in
    Smg_eval.Witness.populate_cached ~rows_per_table:rows ~seed schema
  in
  let dims = [ ("size", string_of_int size); ("seed", string_of_int seed) ] in
  match entry.en_kind with
  | Builtin scen ->
      Ok
        ( witness,
          Printf.sprintf "%d:%d" size seed,
          ("scenario", Render.json_str scen.Scenario.scen_name) :: dims )
  | Dsl doc ->
      let inst = Ast.instance_of doc schema in
      if Instance.total_tuples inst = 0 then
        Ok
          ( witness,
            Printf.sprintf "%d:%d" size seed,
            ("file", Render.json_str entry.en_name) :: dims )
      else begin
        match Instance.check_rics schema inst with
        | [] ->
            Ok
              ( (fun () -> inst),
                "data",
                [ ("file", Render.json_str entry.en_name) ] )
        | violations ->
            Error
              (Printf.sprintf
                 "source data violates %d referential constraint(s)"
                 (List.length violations))
      end

let compile_for t ~laconic (entry : entry) inst tgds =
  with_retry t (fun () ->
      fire t Smg_robust.Fault.Plan_compile;
      Engine.compile
        ~card:(fun name -> Instance.cardinality inst name)
        ~laconic ~source:entry.en_source.Discover.schema
        ~target:entry.en_target.Discover.schema ~mappings:tgds ())

let exchange t ?budget ?(size = 1000) ?(seed = 42) ?(laconic = true) entry =
  match entry_tgds t entry with
  | Error msg -> Ex_failed msg
  | Ok tgds -> (
      match instance_plan ~size ~seed entry with
      | Error msg -> Ex_bad msg
      | Ok (make_inst, inst_key, head) -> (
          let plan_key = Printf.sprintf "%s:%b" inst_key laconic in
          let inst, compiled, hit =
            match cell_of t entry with
            | None ->
                let inst = make_inst () in
                (inst, compile_for t ~laconic entry inst tgds, `Miss)
            | Some cell ->
                with_lock cell.c_lock @@ fun () ->
                let inst =
                  match Hashtbl.find_opt cell.c_instances inst_key with
                  | Some i -> i
                  | None ->
                      let i = make_inst () in
                      Hashtbl.add cell.c_instances inst_key i;
                      i
                in
                (match Hashtbl.find_opt cell.c_plans plan_key with
                | Some c -> (inst, Ok c, `Hit)
                | None -> (
                    match compile_for t ~laconic entry inst tgds with
                    | Ok c ->
                        Hashtbl.add cell.c_plans plan_key c;
                        (inst, Ok c, `Miss)
                    | Error msg -> (inst, Error msg, `Miss)))
          in
          match compiled with
          | Error msg -> Ex_failed msg
          | Ok compiled -> (
              (* execution allocates all mutable state per call, so a
                 cached compiled value is safe under concurrency *)
              match
                Engine.execute ?budget ?fault:t.t_fault ?shards:t.t_shards
                  compiled inst
              with
              | Engine.Failed msg -> Ex_failed msg
              | Engine.Complete rep ->
                  t.t_shard_view <- Some rep.Engine.r_shards;
                  Ex_ok (Render.exchange_json ~head ~laconic rep, hit)
              | Engine.Budget_exhausted (reason, rep) ->
                  t.t_shard_view <- Some rep.Engine.r_shards;
                  let diag =
                    Diag.degraded ~subject:entry.en_name Diag.Exchange reason
                      "target instance is a partial prefix"
                  in
                  Ex_partial
                    ( reason,
                      Render.exchange_json ~head ~exhausted:reason
                        ~diags:[ diag ] ~laconic rep ))))

(* ---- incremental deltas ------------------------------------------------- *)

type delta_result = Dl_ok of string | Dl_bad of string | Dl_failed of string

let counters_json (c : Maintain.counters) =
  Printf.sprintf
    "{\"src_inserted\": %d, \"src_deleted\": %d, \"triggers_fired\": %d, \
     \"facts_added\": %d, \"facts_retracted\": %d, \"nulls_minted\": %d, \
     \"nulls_collected\": %d, \"egd_merges\": %d, \"egd_rebuilds\": %d, \
     \"full_rebuilds\": %d, \"seconds\": %.6f}"
    c.Maintain.mc_src_inserted c.Maintain.mc_src_deleted
    c.Maintain.mc_triggers_fired c.Maintain.mc_facts_added
    c.Maintain.mc_facts_retracted c.Maintain.mc_nulls_minted
    c.Maintain.mc_nulls_collected c.Maintain.mc_egd_merges
    c.Maintain.mc_egd_rebuilds c.Maintain.mc_full_rebuilds
    c.Maintain.mc_seconds

(* The maintained state is keyed like the cached instances, so a delta
   against [size, seed] mutates exactly the instance the exchange
   endpoint serves for those parameters. On success the cell's cached
   instance is replaced by the maintained source — later exchanges (and
   a re-init after a poisoning failure) see the delta'd data. *)
let delta t ?(size = 1000) ?(seed = 42) entry (batch : Batch.t) =
  match entry_tgds t entry with
  | Error msg -> Dl_failed msg
  | Ok tgds -> (
      match instance_plan ~size ~seed entry with
      | Error msg -> Dl_bad msg
      | Ok (make_inst, inst_key, head) -> (
          match cell_of t entry with
          | None ->
              Dl_failed "scenario was replaced concurrently; retry the delta"
          | Some cell -> (
              with_lock cell.c_lock @@ fun () ->
              let st_or_err =
                match Hashtbl.find_opt cell.c_maintain inst_key with
                | Some st -> Ok st
                | None -> (
                    let inst =
                      match Hashtbl.find_opt cell.c_instances inst_key with
                      | Some i -> i
                      | None ->
                          let i = make_inst () in
                          Hashtbl.add cell.c_instances inst_key i;
                          i
                    in
                    let prep =
                      with_retry t (fun () ->
                          fire t Smg_robust.Fault.Plan_compile;
                          Maintain.prepare
                            ~card:(fun n -> Instance.cardinality inst n)
                            ~source:entry.en_source.Discover.schema
                            ~target:entry.en_target.Discover.schema
                            ~mappings:tgds ())
                    in
                    match prep with
                    | Error m -> Error m
                    | Ok compiled -> (
                        match Maintain.init ?shards:t.t_shards compiled inst with
                        | Error m -> Error m
                        | Ok st ->
                            Hashtbl.replace cell.c_maintain inst_key st;
                            Ok st))
              in
              match st_or_err with
              | Error m -> Dl_failed m
              | Ok st -> (
                  match Maintain.apply ?fault:t.t_fault st batch with
                  | Error m ->
                      (* poisoned: drop it so the next delta re-inits
                         from the last good instance *)
                      Hashtbl.remove cell.c_maintain inst_key;
                      Dl_failed m
                  | Ok (st, c) ->
                      Hashtbl.replace cell.c_instances inst_key
                        (Maintain.source st);
                      let head =
                        head
                        @ [
                            ("batch", string_of_int (Maintain.batches st));
                            ("delta", counters_json c);
                          ]
                      in
                      let rep = Maintain.report st in
                      t.t_shard_view <- Some rep.Engine.r_shards;
                      Dl_ok (Render.exchange_json ~head ~laconic:false rep)))))

(* ---- info -------------------------------------------------------------- *)

let info_json t entry =
  let kind = match entry.en_kind with Dsl _ -> "dsl" | Builtin _ -> "builtin" in
  let n_tables (side : Discover.side) =
    List.length side.Discover.schema.Schema.tables
  in
  let d, p, i =
    match cell_of t entry with
    | None -> (0, 0, 0)
    | Some cell ->
        with_lock cell.c_lock @@ fun () ->
        ( Hashtbl.length cell.c_discover,
          Hashtbl.length cell.c_plans,
          Hashtbl.length cell.c_instances )
  in
  String.concat ""
    [
      "{\"name\": ";
      Render.json_str entry.en_name;
      ", \"hash\": ";
      Render.json_str entry.en_hash;
      ", \"kind\": ";
      Render.json_str kind;
      ", \"source_tables\": ";
      string_of_int (n_tables entry.en_source);
      ", \"target_tables\": ";
      string_of_int (n_tables entry.en_target);
      ", \"corrs\": ";
      string_of_int (List.length entry.en_corrs);
      ", \"cached\": {\"discover\": ";
      string_of_int d;
      ", \"plans\": ";
      string_of_int p;
      ", \"instances\": ";
      string_of_int i;
      "}}";
    ]
