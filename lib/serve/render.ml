module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Mapverify = Smg_verify.Mapverify
module Diag = Smg_robust.Diag
module Instance = Smg_relational.Instance
module Value = Smg_relational.Value
module Engine = Smg_exchange.Engine

(* Hand-rolled JSON in the same dependency-free style as
   Smg_exchange.Obs.write_bench_json. *)

let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_list f xs = "[" ^ String.concat ", " (List.map f xs) ^ "]"

let json_candidate source target i (m : Mapping.t) =
  let tgd_str = Fmt.str "%a" Smg_cq.Dependency.pp_tgd (Mapping.to_tgd m) in
  let exec =
    if m.Mapping.outer then Mapping.outer_variants ~target m
    else [ Mapping.to_tgd m ]
  in
  let corr (c : Mapping.corr) =
    let st, sc = c.Mapping.c_src and tt, tc = c.Mapping.c_tgt in
    Printf.sprintf "{\"src\": %s, \"tgt\": %s}"
      (json_str (st ^ "." ^ sc))
      (json_str (tt ^ "." ^ tc))
  in
  String.concat ""
    [
      "    {\"rank\": ";
      string_of_int (i + 1);
      ", \"name\": ";
      json_str m.Mapping.m_name;
      ", \"score\": ";
      Printf.sprintf "%.6g" m.Mapping.score;
      ", \"outer\": ";
      string_of_bool m.Mapping.outer;
      ", \"approximate\": ";
      string_of_bool (Mapping.is_approximate m);
      ",\n     \"tgd\": ";
      json_str tgd_str;
      ",\n     \"exec_tgds\": ";
      json_list
        (fun t -> json_str (Fmt.str "%a" Smg_cq.Dependency.pp_tgd t))
        exec;
      ",\n     \"covered\": ";
      json_list corr m.Mapping.covered;
      ",\n     \"provenance\": ";
      json_list json_str m.Mapping.provenance;
      ",\n     \"source_algebra\": ";
      json_str
        (Fmt.str "%a" Smg_relational.Algebra.pp (Mapping.src_algebra source m));
      "}";
    ]

let json_diag (d : Diag.t) =
  String.concat ""
    [
      "    {\"severity\": ";
      json_str (Fmt.str "%a" Diag.pp_severity d.Diag.d_severity);
      ", \"stage\": ";
      json_str (Fmt.str "%a" Diag.pp_stage d.Diag.d_stage);
      ", \"subject\": ";
      (match d.Diag.d_subject with None -> "null" | Some s -> json_str s);
      ", \"message\": ";
      json_str d.Diag.d_message;
      "}";
    ]

let label_by_rank ms =
  List.mapi
    (fun i (m : Mapping.t) ->
      Mapping.rename (Printf.sprintf "%s#%d" m.Mapping.m_name (i + 1)) m)
    ms

(* ---- discover ----------------------------------------------------------- *)

type discover_output = {
  dj_json : string;
  dj_diags : Diag.t list;
  dj_exact : bool;
  dj_count : int;
}

let discover_json ?budget ?pool ?(meth = `Both) ?(dedup = false) ~file ~source
    ~target ~corrs () =
  let source_s = source.Discover.schema and target_s = target.Discover.schema in
  let pre = Discover.lint ~source ~target ~corrs in
  let o = Discover.discover_bounded ?budget ?pool ~source ~target ~corrs () in
  let diags = pre @ o.Discover.o_diags in
  let dedup_silent ms =
    if not dedup then ms
    else
      (Mapverify.dedup ?pool ~source:source_s ~target:target_s
         (label_by_rank ms))
        .Mapverify.rp_kept
  in
  let sem = dedup_silent o.Discover.o_mappings in
  let ric =
    match meth with
    | `Ric | `Both ->
        dedup_silent
          (Smg_ric.Baseline.generate ~source:source_s ~target:target_s ~corrs)
    | `Semantic -> []
  in
  let section ms =
    match ms with
    | [] -> "[]"
    | _ ->
        "[\n"
        ^ String.concat ",\n" (List.mapi (json_candidate source_s target_s) ms)
        ^ "\n  ]"
  in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "{\"file\": %s," (json_str file);
  line " \"exact\": %b," o.Discover.o_exact;
  (match meth with
  | `Semantic | `Both -> line " \"candidates\": %s," (section sem)
  | `Ric -> ());
  (match meth with
  | `Ric | `Both -> line " \"ric_candidates\": %s," (section ric)
  | `Semantic -> ());
  line " \"diagnostics\": %s}"
    (match diags with
    | [] -> "[]"
    | _ -> "[\n" ^ String.concat ",\n" (List.map json_diag diags) ^ "\n  ]");
  {
    dj_json = Buffer.contents b;
    dj_diags = diags;
    dj_exact = o.Discover.o_exact;
    dj_count = List.length sem + List.length ric;
  }

(* ---- exchange ----------------------------------------------------------- *)

let value_json ~canon (v : Value.t) =
  match v with
  | Value.VInt i -> string_of_int i
  | Value.VString s -> json_str s
  | Value.VFloat f -> Printf.sprintf "%.17g" f
  | Value.VBool b -> string_of_bool b
  | Value.VNull k -> Printf.sprintf "\"_N%d\"" (canon k)

let exchange_json ~head ?exhausted ?(diags = []) ~laconic
    (r : Engine.report) =
  let inst = r.Engine.r_target in
  let tables = List.sort String.compare (Instance.names inst) in
  (* canonical null labels: numbered by first occurrence over
     name-sorted tables, tuples in relation order, cells left to right —
     independent of the process-global label counter *)
  let canon_tbl = Hashtbl.create 64 in
  let next = ref 0 in
  let canon k =
    match Hashtbl.find_opt canon_tbl k with
    | Some c -> c
    | None ->
        incr next;
        Hashtbl.add canon_tbl k !next;
        !next
  in
  List.iter
    (fun name ->
      match Instance.relation inst name with
      | None -> ()
      | Some rel ->
          List.iter
            (fun tup ->
              Array.iter
                (fun v -> match v with Value.VNull k -> ignore (canon k) | _ -> ())
                tup)
            rel.Instance.tuples)
    tables;
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  Buffer.add_string b "{";
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\": %s,\n " k v)) head;
  line "\"engine\": \"fast\",";
  line " \"laconic\": %b," laconic;
  line " \"complete\": %b," r.Engine.r_complete;
  line " \"exhausted\": %s,"
    (match exhausted with
    | None -> "null"
    | Some reason -> json_str (Fmt.str "%a" Smg_robust.Budget.pp_reason reason));
  line " \"rounds\": %d," r.Engine.r_rounds;
  line " \"egd_merges\": %d," r.Engine.r_egd_merges;
  line " \"sweep_dropped\": %d," r.Engine.r_sweep_dropped;
  line " \"target_tuples\": %d," (Instance.total_tuples inst);
  let stat (name, (s : Smg_exchange.Obs.stats)) =
    Printf.sprintf
      "    {\"tgd\": %s, \"scanned\": %d, \"probes\": %d, \"hits\": %d, \
       \"misses\": %d, \"checks\": %d, \"satisfied\": %d, \"emitted\": %d, \
       \"nulls\": %d}"
      (json_str name) s.Smg_exchange.Obs.n_scanned s.Smg_exchange.Obs.n_probes
      s.Smg_exchange.Obs.n_hits s.Smg_exchange.Obs.n_misses
      s.Smg_exchange.Obs.n_checks s.Smg_exchange.Obs.n_satisfied
      s.Smg_exchange.Obs.n_emitted s.Smg_exchange.Obs.n_nulls
  in
  line " \"stats\": %s,"
    (match r.Engine.r_stats with
    | [] -> "[]"
    | stats -> "[\n" ^ String.concat ",\n" (List.map stat stats) ^ "\n  ]");
  let relation name =
    match Instance.relation inst name with
    | None -> Printf.sprintf "  %s: {}" (json_str name)
    | Some rel ->
        let tuple tup =
          "["
          ^ String.concat ", "
              (Array.to_list (Array.map (value_json ~canon) tup))
          ^ "]"
        in
        Printf.sprintf "  %s: {\"header\": %s,\n   \"tuples\": [%s]}"
          (json_str name)
          (json_list json_str rel.Instance.header)
          (String.concat ",\n    " (List.map tuple rel.Instance.tuples))
  in
  line " \"target\": %s,"
    (match tables with
    | [] -> "{}"
    | _ -> "{\n" ^ String.concat ",\n" (List.map relation tables) ^ "\n  }");
  line " \"diagnostics\": %s}"
    (match diags with
    | [] -> "[]"
    | _ -> "[\n" ^ String.concat ",\n" (List.map json_diag diags) ^ "\n  ]");
  Buffer.contents b
