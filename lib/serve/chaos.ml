module Fault = Smg_robust.Fault
module Retry = Smg_robust.Retry
module Breaker = Smg_robust.Breaker
module Rng = Smg_generate.Rng

type config = {
  c_seed : int;
  c_requests : int;
  c_domains : int;
  c_plan : Fault.plan;
  c_breaker : Breaker.config;
  c_retry : Retry.policy;
  c_journal : string option;
  c_log : string -> unit;
}

(* Probabilities are tuned so a 1000-request run exercises every arm —
   supervised 500s, breaker trips, client-visible socket damage —
   while most requests still come back byte-identical. [Engine_step]
   is consulted once per plan evaluation, so even a small p_raise
   fails a meaningful fraction of exchanges. *)
let default_plan =
  [
    (Fault.Parse, { Fault.quiet with Fault.p_raise = 0.05 });
    (Fault.Registry_store, { Fault.quiet with Fault.p_raise = 0.20 });
    (Fault.Plan_compile, { Fault.quiet with Fault.p_raise = 0.15 });
    ( Fault.Engine_step,
      { Fault.p_raise = 0.01; p_delay = 0.01; delay_s = 0.002; p_short = 0. }
    );
    (Fault.Pool_task, { Fault.quiet with Fault.p_raise = 0.04 });
    ( Fault.Socket_read,
      { Fault.p_raise = 0.02; p_delay = 0.01; delay_s = 0.001; p_short = 0.02 }
    );
    ( Fault.Socket_write,
      { Fault.p_raise = 0.02; p_delay = 0.01; delay_s = 0.001; p_short = 0.02 }
    );
  ]

let no_delay_plan =
  List.map
    (fun (p, s) -> (p, { s with Fault.p_delay = 0.; delay_s = 0. }))
    default_plan

let config ?journal ~seed ~requests ~domains () =
  {
    c_seed = seed;
    c_requests = requests;
    c_domains = domains;
    c_plan = default_plan;
    c_breaker = { Breaker.threshold = 3; cooldown_s = 0.25 };
    c_retry = Retry.default;
    c_journal = journal;
    c_log = (fun _ -> ());
  }

type report = {
  r_seed : int;
  r_requests : int;
  r_domains : int;
  r_identical : int;
  r_retried : int;
  r_shed : int;
  r_partial : int;
  r_clean_error : int;
  r_hangs : int;
  r_crashes : int;
  r_corrupt : int;
  r_client_retries : int;
  r_server_retries : int;
  r_supervised : int;
  r_breaker_trips : int;
  r_breaker_shed : int;
  r_timeouts : int;
  r_injected : (string * int) list;
  r_schedule_digest : string;
  r_outcome_digest : string;
  r_recovered : int;
  r_recovery_ms : float;
  r_recovery_ok : bool;
  r_drained : bool;
  r_seconds : float;
}

(* ---- workload ----------------------------------------------------------- *)

type req = {
  meth : string;
  path : string;
  body : string;
  retry_5xx : bool;
      (* a rolled-back PUT (or a recovery probe) may be replayed on
         5xx; mid-run POSTs may not, so supervised failures stay
         visible to the classifier *)
}

let req ?(retry_5xx = false) meth path body = { meth; path; body; retry_5xx }

let scenario_text ~seed k =
  let module P = Smg_generate.Params in
  let p =
    P.clamp
      {
        P.default with
        P.seed = (seed * 31) + k;
        n_roots = 2;
        attrs_per_class = 2;
        scale = 150;
      }
  in
  Smg_generate.Gen.dsl ~with_data:true (Smg_generate.Gen.build p)

let warm_probe = req ~retry_5xx:true "POST" "/scenarios/chaos_a/exchange?size=48" ""

(* The request list is a pure function of the seed: two generated
   scenarios registered up front, a seeded mix over every endpoint
   (including deliberate bad queries and tiny-fuel budget partials), a
   delete + re-register near the end, and two warm probes whose
   reference bytes the journal-recovery check replays against. *)
let workload cfg =
  let n = max 8 cfg.c_requests in
  let ta = scenario_text ~seed:cfg.c_seed 1
  and tb = scenario_text ~seed:cfg.c_seed 2 in
  let rng = Rng.make (cfg.c_seed lxor 0x5EED) in
  let name () = if Rng.bool rng then "chaos_a" else "chaos_b" in
  let mid () =
    match Rng.int rng 100 with
    | r when r < 40 ->
        let sz = Rng.pick rng [ 24; 48; 96 ] in
        let fuel = if Rng.int rng 12 = 0 then "&fuel=5" else "" in
        req "POST"
          (Printf.sprintf "/scenarios/%s/exchange?size=%d%s" (name ()) sz fuel)
          ""
    | r when r < 65 ->
        let m = Rng.pick rng [ "semantic"; "ric"; "both" ] in
        let d = if Rng.bool rng then "true" else "false" in
        req "POST"
          (Printf.sprintf "/scenarios/%s/discover?method=%s&dedup=%s" (name ())
             m d)
          ""
    | r when r < 75 ->
        req "POST" (Printf.sprintf "/scenarios/%s/verify?limit=4" (name ())) ""
    | r when r < 80 -> req "POST" "/scenarios/chaos_a/compose" ""
    | r when r < 88 -> req "GET" "/scenarios" ""
    | r when r < 94 -> req "GET" "/healthz" ""
    | _ ->
        req "POST"
          (Printf.sprintf "/scenarios/%s/exchange?size=banana" (name ()))
          ""
  in
  (* build the middle sequentially: the rng draw order is the workload
     identity *)
  let rec build k acc = if k = 0 then List.rev acc else build (k - 1) (mid () :: acc) in
  [ req ~retry_5xx:true "PUT" "/scenarios/chaos_a" ta;
    req ~retry_5xx:true "PUT" "/scenarios/chaos_b" tb ]
  @ build (n - 6) []
  @ [
      req "DELETE" "/scenarios/chaos_b" "";
      req ~retry_5xx:true "PUT" "/scenarios/chaos_b" tb;
      warm_probe;
      warm_probe;
    ]

(* ---- a paranoid HTTP client --------------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let content_length headers =
  let lower = String.lowercase_ascii headers in
  let key = "content-length:" in
  let rec find i =
    if i + String.length key > String.length lower then None
    else if String.sub lower i (String.length key) = key then begin
      let j = ref (i + String.length key) in
      while !j < String.length lower && lower.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < String.length lower && lower.[!k] >= '0' && lower.[!k] <= '9'
      do
        incr k
      done;
      int_of_string_opt (String.sub lower !j (!k - !j))
    end
    else find (i + 1)
  in
  find 0

(* A reply only counts when the status line parses, the header block
   terminates, and the body length matches the declared
   Content-Length — anything less (a short write, a dropped
   connection) is a torn transport, retried, never mistaken for an
   answer. *)
let parse_reply raw =
  let len = String.length raw in
  if len < 12 || String.sub raw 0 9 <> "HTTP/1.1 " then None
  else
    match int_of_string_opt (String.sub raw 9 3) with
    | None -> None
    | Some status -> (
        let rec split i =
          if i + 4 > len then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else split (i + 1)
        in
        match split 0 with
        | None -> None
        | Some b -> (
            let body = String.sub raw b (len - b) in
            match content_length (String.sub raw 0 b) with
            | Some cl when cl <> String.length body -> None
            | _ -> Some (status, body)))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let once ~port ~deadline_s (r : req) =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline_s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO deadline_s;
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      with
      | exception Unix.Unix_error _ -> `Down
      | () -> (
          let raw_rq =
            Printf.sprintf
              "%s %s HTTP/1.1\r\nHost: chaos\r\nContent-Length: %d\r\n\
               Connection: close\r\n\r\n%s"
              r.meth r.path (String.length r.body) r.body
          in
          match write_all fd raw_rq with
          | exception Unix.Unix_error _ -> `Torn
          | () -> (
              let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
              let rec drain () =
                match Unix.read fd chunk 0 4096 with
                | 0 -> `Eof
                | k ->
                    Buffer.add_subbytes buf chunk 0 k;
                    drain ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                    `Hung
                | exception Unix.Unix_error _ -> `Eof
              in
              match drain () with
              | `Hung -> `Hung
              | `Eof -> (
                  match parse_reply (Buffer.contents buf) with
                  | Some (status, body) -> `Reply (status, body)
                  | None -> `Torn))))

(* Transport damage is retried with a short pause; a 5xx is retried
   only when the request opted in. The final attempt's reply (or
   verdict) is what the classifier sees. A 400 "truncated body" is
   transport damage in disguise: the client sent the whole request, so
   the server must have seen an injected short read — retried like any
   torn connection. *)
let drive ?(max_attempts = 25) ?(sleep_s = 0.002) ~port (r : req) =
  let rec go attempt =
    match once ~port ~deadline_s:10.0 r with
    | `Reply (st, _) when st >= 500 && r.retry_5xx && attempt < max_attempts ->
        Unix.sleepf sleep_s;
        go (attempt + 1)
    | `Reply (400, body)
      when contains body "truncated body" && attempt < max_attempts ->
        Unix.sleepf sleep_s;
        go (attempt + 1)
    | `Reply (st, body) -> `Got (st, body, attempt)
    | `Hung -> `Hang attempt
    | (`Torn | `Down) when attempt < max_attempts ->
        Unix.sleepf sleep_s;
        go (attempt + 1)
    | `Torn -> `Dead attempt
    | `Down -> `Dead attempt
  in
  go 1

(* ---- classification ----------------------------------------------------- *)

type cls =
  | Identical
  | Retried
  | Shed
  | Partial
  | Clean_error
  | Hang
  | Crash
  | Corrupt

let cls_name = function
  | Identical -> "identical"
  | Retried -> "retried"
  | Shed -> "shed"
  | Partial -> "partial"
  | Clean_error -> "clean_error"
  | Hang -> "hang"
  | Crash -> "crash"
  | Corrupt -> "corrupt"

(* /healthz reports live operational state — pool size, journal
   position, breaker states — that legitimately differs between the
   clean reference pass and a faulted run (or between domain counts),
   so it is held to a liveness contract, not a byte contract. *)
let is_healthz (r : req) = r.meth = "GET" && r.path = "/healthz"

let classify (r : req) ~ref_status ~ref_body outcome =
  match outcome with
  | `Hang attempts -> (Hang, 0, "", attempts)
  | `Dead attempts -> (Crash, 0, "", attempts)
  | `Got (st, body, attempts) ->
      let c =
        if is_healthz r && st = 200 && contains body "\"ok\": true" then
          if attempts > 1 then Retried else Identical
        else if st = ref_status && String.equal body ref_body then
          if attempts > 1 then Retried else Identical
        else if st = 503 && contains body "circuit open" then Shed
        else if
          st = 503
          && (contains body "\"complete\": false"
             || contains body "\"exhausted\"")
        then Partial
        else if
          (* a replayed PUT lands on the idempotent cache: 200 with
             cached: true instead of the reference's 201 — the content
             is stored, the retry is sound *)
          r.meth = "PUT"
          && (st = 200 || st = 201)
          && contains body "\"cached\":"
        then Retried
        else if st >= 400 && st < 600 && contains body "\"error\"" then
          Clean_error
        else Corrupt
      in
      (c, st, body, attempts)

(* ---- the harness -------------------------------------------------------- *)

let server_config cfg ~domains ~fault ~journal =
  {
    Server.port = 0;
    domains;
    max_inflight = 64;
    budget_ms = None;
    fuel = None;
    seed = 42;
    preload = false;
    journal;
    fault;
    idle_timeout_s = 5.0;
    drain_deadline_s = 10.0;
    retry = cfg.c_retry;
    breaker = cfg.c_breaker;
    shards = None;
  }

let with_running scfg f =
  let srv = Server.create scfg in
  let d = Domain.spawn (fun () -> Server.run srv) in
  match f srv (Server.port srv) with
  | res ->
      Server.stop srv;
      let drained = Domain.join d in
      (res, drained)
  | exception e ->
      Server.stop srv;
      ignore (Domain.join d);
      raise e

let run cfg =
  let t0 = Unix.gettimeofday () in
  Option.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    cfg.c_journal;
  let reqs = workload cfg in
  let n = List.length reqs in
  (* 1. the clean run: reference bytes for every request *)
  cfg.c_log (Printf.sprintf "reference pass: %d requests" n);
  let reference = Array.make n (0, "") in
  let (), ref_drained =
    with_running (server_config cfg ~domains:1 ~fault:None ~journal:None)
      (fun _srv port ->
        List.iteri
          (fun i r ->
            match drive ~port r with
            | `Got (st, body, _) -> reference.(i) <- (st, body)
            | `Hang _ | `Dead _ ->
                failwith "chaos: reference pass got no response")
          reqs)
  in
  (* 2. the faulted run *)
  let fault = Fault.create ~seed:cfg.c_seed cfg.c_plan in
  let counts = Hashtbl.create 8 in
  let bump c = Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)) in
  let count c = Option.value ~default:0 (Hashtbl.find_opt counts c) in
  let client_retries = ref 0 in
  let digest_buf = Buffer.create (n * 48) in
  cfg.c_log
    (Printf.sprintf "chaos pass: seed %d, %d domains" cfg.c_seed cfg.c_domains);
  let (s_retries, s_supervised, s_trips, s_shed, s_timeouts), drained =
    with_running
      (server_config cfg ~domains:cfg.c_domains ~fault:(Some fault)
         ~journal:cfg.c_journal)
      (fun srv port ->
        List.iteri
          (fun i r ->
            let ref_status, ref_body = reference.(i) in
            let c, st, body, attempts =
              classify r ~ref_status ~ref_body (drive ~port r)
            in
            bump c;
            (match c with
            | Hang | Crash | Corrupt ->
                cfg.c_log
                  (Printf.sprintf
                     "  CONTRACT %s on #%d %s %s: got %d %S, reference %d %S"
                     (cls_name c) i r.meth r.path st
                     (String.sub body 0 (min 160 (String.length body)))
                     ref_status
                     (String.sub ref_body 0 (min 160 (String.length ref_body))))
            | _ -> ());
            client_retries := !client_retries + attempts - 1;
            Buffer.add_string digest_buf
              (Printf.sprintf "%d:%s:%d:%s\n" i (cls_name c) st
                 (if is_healthz r then "healthz"
                  else Digest.to_hex (Digest.string body)));
            if (i + 1) mod 200 = 0 then
              cfg.c_log (Printf.sprintf "  %d/%d driven" (i + 1) n))
          reqs;
        let m = Server.metrics srv in
        ( Metrics.retries m,
          Metrics.supervised_count m,
          Metrics.breaker_trips m,
          Metrics.breaker_shed_count m,
          Metrics.timeout_count m ))
  in
  (* 3. kill + restart from the journal; the recovered server (itself
     under fresh chaos) must hold every scenario and answer the warm
     probes with the reference bytes *)
  let recovered, recovery_ms, recovery_ok, rec_drained =
    match cfg.c_journal with
    | None -> (0, 0., true, true)
    | Some _ ->
        cfg.c_log "recovery pass: restarting from the journal";
        let fault2 = Fault.create ~seed:(cfg.c_seed + 1) cfg.c_plan in
        let (rec_n, rec_ms, ok), d2 =
          with_running
            (server_config cfg ~domains:cfg.c_domains ~fault:(Some fault2)
               ~journal:cfg.c_journal)
            (fun srv port ->
              let m = Server.metrics srv in
              let names_ok =
                match
                  drive ~max_attempts:50 ~sleep_s:0.02 ~port
                    (req ~retry_5xx:true "GET" "/scenarios" "")
                with
                | `Got (200, body, _) ->
                    contains body "chaos_a" && contains body "chaos_b"
                | _ -> false
              in
              let _, probe_body = reference.(n - 1) in
              let probe_ok () =
                match
                  drive ~max_attempts:50 ~sleep_s:0.02 ~port warm_probe
                with
                | `Got (200, body, _) -> String.equal body probe_body
                | _ -> false
              in
              ( Metrics.recovered_count m,
                Metrics.recovery_ms m,
                names_ok && probe_ok () && probe_ok () ))
        in
        (rec_n, rec_ms, ok, d2)
  in
  {
    r_seed = cfg.c_seed;
    r_requests = n;
    r_domains = cfg.c_domains;
    r_identical = count Identical;
    r_retried = count Retried;
    r_shed = count Shed;
    r_partial = count Partial;
    r_clean_error = count Clean_error;
    r_hangs = count Hang;
    r_crashes = count Crash;
    r_corrupt = count Corrupt;
    r_client_retries = !client_retries;
    r_server_retries = s_retries;
    r_supervised = s_supervised;
    r_breaker_trips = s_trips;
    r_breaker_shed = s_shed;
    r_timeouts = s_timeouts;
    r_injected =
      List.map
        (fun p -> (Fault.point_name p, Fault.injected fault p))
        Fault.all_points;
    r_schedule_digest = Fault.schedule_digest fault;
    r_outcome_digest = Digest.to_hex (Digest.string (Buffer.contents digest_buf));
    r_recovered = recovered;
    r_recovery_ms = recovery_ms;
    r_recovery_ok = recovery_ok;
    r_drained = ref_drained && drained && rec_drained;
    r_seconds = Unix.gettimeofday () -. t0;
  }

let ok r =
  r.r_hangs = 0 && r.r_crashes = 0 && r.r_corrupt = 0 && r.r_recovery_ok
  && r.r_drained

let survival r =
  if r.r_requests = 0 then 1.
  else
    float_of_int
      (r.r_identical + r.r_retried + r.r_shed + r.r_partial + r.r_clean_error)
    /. float_of_int r.r_requests

let report_json r =
  let injected =
    String.concat ", "
      (List.map
         (fun (name, k) -> Printf.sprintf "\"%s\": %d" name k)
         r.r_injected)
  in
  Printf.sprintf
    "{\"seed\": %d,\n \"requests\": %d,\n \"domains\": %d,\n \"classes\": \
     {\"identical\": %d, \"retried\": %d, \"shed\": %d, \"partial\": %d, \
     \"clean_error\": %d, \"hangs\": %d, \"crashes\": %d, \"corrupt\": %d},\n \
     \"survival\": %.4f,\n \"client_retries\": %d,\n \"server\": \
     {\"retries\": %d, \"supervised\": %d, \"breaker_trips\": %d, \
     \"breaker_shed\": %d, \"timeouts_408\": %d},\n \"faults_injected\": {%s},\n \
     \"schedule_digest\": \"%s\",\n \"outcome_digest\": \"%s\",\n \
     \"recovery\": {\"journaled\": %b, \"recovered_scenarios\": %d, \
     \"recovery_ms\": %.3f, \"ok\": %b},\n \"drained\": %b,\n \"ok\": %b,\n \
     \"seconds\": %.3f}\n"
    r.r_seed r.r_requests r.r_domains r.r_identical r.r_retried r.r_shed
    r.r_partial r.r_clean_error r.r_hangs r.r_crashes r.r_corrupt (survival r)
    r.r_client_retries r.r_server_retries r.r_supervised r.r_breaker_trips
    r.r_breaker_shed r.r_timeouts injected r.r_schedule_digest
    r.r_outcome_digest
    (r.r_recovered > 0 || r.r_recovery_ms > 0.)
    r.r_recovered r.r_recovery_ms r.r_recovery_ok r.r_drained (ok r)
    r.r_seconds

let pp_report ppf r =
  Fmt.pf ppf "chaos seed %d: %d requests over %d domains in %.1fs@."
    r.r_seed r.r_requests r.r_domains r.r_seconds;
  Fmt.pf ppf
    "  identical %d  retried %d  shed %d  partial %d  clean-error %d@."
    r.r_identical r.r_retried r.r_shed r.r_partial r.r_clean_error;
  Fmt.pf ppf "  hangs %d  crashes %d  corrupt %d  survival %.2f%%@." r.r_hangs
    r.r_crashes r.r_corrupt (100. *. survival r);
  Fmt.pf ppf
    "  client retries %d  server retries %d  supervised %d  breaker trips \
     %d  shed %d  408s %d@."
    r.r_client_retries r.r_server_retries r.r_supervised r.r_breaker_trips
    r.r_breaker_shed r.r_timeouts;
  List.iter
    (fun (name, k) -> if k > 0 then Fmt.pf ppf "  injected %-14s %d@." name k)
    r.r_injected;
  Fmt.pf ppf "  schedule %s  outcome %s@." r.r_schedule_digest
    r.r_outcome_digest;
  if r.r_recovered > 0 || r.r_recovery_ms > 0. then
    Fmt.pf ppf "  recovered %d scenario(s) in %.1f ms: %s@." r.r_recovered
      r.r_recovery_ms
      (if r.r_recovery_ok then "byte-identical" else "MISMATCH");
  Fmt.pf ppf "  verdict: %s@."
    (if ok r then "SURVIVED" else "CONTRACT VIOLATED")
