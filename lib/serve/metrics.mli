(** Service observability: per-endpoint counters and latency quantiles,
    updated under one mutex so concurrent handlers never corrupt them,
    rendered as the [GET /metrics] JSON document and as the summary the
    server logs on graceful shutdown. *)

type t

val create : unit -> t

val record :
  t ->
  endpoint:string ->
  status:int ->
  ?hit:[ `Hit | `Miss ] ->
  ?exhausted:bool ->
  bytes_in:int ->
  bytes_out:int ->
  seconds:float ->
  unit ->
  unit
(** Account one answered request. [endpoint] is the route label
    ([discover], [exchange], [metrics], …); [hit] feeds the cache
    counters, [exhausted] the budget-exhaustion counter. *)

val inflight : t -> int Atomic.t
(** Open connections right now — incremented by the accept loop,
    decremented on close; also the admission-control gauge. *)

val to_json : t -> scenarios:int -> string
(** The [GET /metrics] document: uptime, open connections, scenario
    count, and per endpoint requests, status classes (2xx/4xx/5xx),
    cache hits/misses, budget exhaustions, bytes in/out, and p50/p95
    latency in milliseconds over a sliding window of the last 1024
    requests. Endpoints are name-sorted; quantiles are [null] until the
    endpoint has served a request. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per endpoint — the shutdown log. *)
