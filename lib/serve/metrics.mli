(** Service observability: per-endpoint counters and latency quantiles,
    updated under one mutex so concurrent handlers never corrupt them,
    rendered as the [GET /metrics] JSON document and as the summary the
    server logs on graceful shutdown. *)

type t

val create : unit -> t

val record :
  t ->
  endpoint:string ->
  status:int ->
  ?hit:[ `Hit | `Miss ] ->
  ?exhausted:bool ->
  bytes_in:int ->
  bytes_out:int ->
  seconds:float ->
  unit ->
  unit
(** Account one answered request. [endpoint] is the route label
    ([discover], [exchange], [metrics], …); [hit] feeds the cache
    counters, [exhausted] the budget-exhaustion counter. *)

val inflight : t -> int Atomic.t
(** Open connections right now — incremented by the accept loop,
    decremented on close; also the admission-control gauge. *)

(** {1 Robustness counters}

    Lock-free (plain atomics): bumped from supervision, retry, breaker
    and recovery paths. *)

val retried : t -> tries:int -> ok:bool -> unit
(** One retried operation: [tries - 1] extra attempts, [ok] whether it
    ultimately succeeded. *)

val supervised : t -> unit
(** A handler exception contained by supervision (answered 500). *)

val breaker_tripped : t -> unit
val breaker_shed : t -> unit
val timed_out : t -> unit

val recovered : t -> scenarios:int -> seconds:float -> unit
(** Journal recovery accounting: scenarios replayed and the startup
    replay + re-warm latency. *)

val retries : t -> int
val breaker_trips : t -> int
val breaker_shed_count : t -> int
val supervised_count : t -> int
val timeout_count : t -> int
val recovered_count : t -> int
val recovery_ms : t -> float

val to_json :
  ?shards:Smg_exchange.Obs.shard_view -> t -> scenarios:int -> string
(** The [GET /metrics] document: uptime, open connections, scenario
    count, the global intern-pool size (distinct constants interned so
    far), the last execution's per-shard live/rot counters under
    [exchange_shards] ([null] until an exchange or delta has run —
    pass {!Registry.shard_view}), and per endpoint requests, status
    classes (2xx/4xx/5xx), cache hits/misses, budget exhaustions,
    bytes in/out, and p50/p95 latency in milliseconds over a sliding
    window of the last 1024 requests. Endpoints are name-sorted;
    quantiles are [null] until the endpoint has served a request. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per endpoint — the shutdown log. *)
