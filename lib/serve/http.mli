(** A strict, allocation-light HTTP/1.1 request parser and response
    writer for the [mapdisc serve] endpoint.

    Deliberately minimal: [Content-Length] bodies only (no chunked
    transfer coding), no header continuations, CRLF line endings, and
    hard bounds on the request line, header block, and body. Anything
    outside that profile is answered with a definite status code —
    the parser never raises on wire input, whatever the bytes are:

    - 400 for malformed request lines, versions, headers, escapes, a
      malformed or duplicated [Content-Length], or a
      [Transfer-Encoding] header (a missing [Content-Length] means a
      zero-length body, RFC 7230 §3.3.3);
    - 405 for an unknown method token;
    - 413 when the request line, header block, or declared body exceeds
      its bound.

    The reader is pull-based over an abstract byte source, so unit
    tests drive it from strings (chunked arbitrarily) and the server
    drives it from a socket; buffered bytes persist between requests,
    which is what makes pipelined requests work. *)

type meth = GET | PUT | POST | DELETE

type request = {
  rq_meth : meth;
  rq_path : string;  (** raw path, query string stripped *)
  rq_segments : string list;  (** percent-decoded path segments *)
  rq_query : (string * string) list;  (** percent-decoded query pairs *)
  rq_headers : (string * string) list;  (** names lowercased *)
  rq_body : string;
  rq_version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
}

type reject = { rj_status : int; rj_reason : string }

type event =
  | Request of request
  | Reject of reject
      (** answer with [rj_status] and close the connection: after a
          framing violation the stream position is untrustworthy *)
  | Eof  (** clean end of stream between requests *)

type limits = {
  max_line : int;  (** request line and each header line, bytes *)
  max_headers : int;  (** number of header lines *)
  max_body : int;  (** declared [Content-Length], bytes *)
}

val default_limits : limits
(** 8 KiB lines, 64 headers, 8 MiB bodies. *)

type reader

val reader : ?limits:limits -> (bytes -> int -> int -> int) -> reader
(** [reader read] wraps a byte source: [read buf off len] returns the
    number of bytes written into [buf] at [off] (0 for end of stream),
    like [Unix.read]. Exceptions from the source propagate. *)

val of_string : ?limits:limits -> ?chunk:int -> string -> reader
(** A reader over a fixed string, delivered [chunk] (default 4096)
    bytes at a time — test harness for the parser. *)

val next_request : reader -> event
(** Parse the next request off the stream. After [Reject] the reader
    must not be used again. *)

val bytes_in : reader -> int
(** Total bytes consumed from the source so far. *)

val keep_alive : request -> bool
(** Whether the connection should stay open after answering this
    request (HTTP/1.1 without [Connection: close], or HTTP/1.0 with
    [Connection: keep-alive]). *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query : request -> string -> string option
val status_text : int -> string

val response :
  ?content_type:string ->
  ?close:bool ->
  ?retry_after:int ->
  status:int ->
  string ->
  string
(** Serialize a response: status line, [Content-Type] (default
    [application/json]), [Content-Length], an optional [Retry-After]
    in whole seconds (clamped to at least 1 — sent on 429 and 503 so
    well-behaved clients back off), [Connection], blank line, body. *)
