(** The delta wire format: a batch of source inserts and deletes.

    One operation per line against a source schema (within a batch all
    deletes are applied before all inserts, so a tuple both deleted and
    inserted ends up present):

    {v
    # comment
    + person(1, "Ada Lovelace", true)
    - city("London", 8900000)
    v}

    [+] inserts, [-] deletes; values are typed by the table's columns
    (ints, floats, [true]/[false], strings either bare or
    double-quoted with backslash escapes). Blank lines and [#]
    comments are skipped. Inserting a present tuple and deleting an
    absent one are no-ops, so batches are idempotent per operation.
    See docs/INCREMENTAL.md. *)

type op =
  | Insert of string * Smg_relational.Value.t array
  | Delete of string * Smg_relational.Value.t array

type t = op list

val parse : schema:Smg_relational.Schema.t -> string -> (t, string) result
(** Parse and validate against the source schema: unknown tables,
    arity mismatches, and unparsable values are reported with their
    line number. *)

val to_string : t -> string
(** Render in the wire format; [parse] of the result round-trips.
    @raise Invalid_argument on a labelled null (deltas are ground). *)

val counts : t -> int * int
(** [(inserts, deletes)]. *)
