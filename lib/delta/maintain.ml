module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Index = Smg_relational.Index
module Chase = Smg_cq.Chase
module Engine = Smg_exchange.Engine
module Plan = Smg_exchange.Plan
module Obs = Smg_exchange.Obs
module Stores = Engine.Stores
module Fault = Smg_robust.Fault

(* ---- counters ----------------------------------------------------------- *)

type counters = {
  mc_src_inserted : int;
  mc_src_deleted : int;
  mc_triggers_seen : int;
  mc_triggers_fired : int;
  mc_facts_added : int;
  mc_facts_retracted : int;
  mc_nulls_minted : int;
  mc_nulls_collected : int;
  mc_egd_merges : int;
  mc_egd_rebuilds : int;
  mc_full_rebuilds : int;
  mc_seconds : float;
}

let zero_counters =
  {
    mc_src_inserted = 0;
    mc_src_deleted = 0;
    mc_triggers_seen = 0;
    mc_triggers_fired = 0;
    mc_facts_added = 0;
    mc_facts_retracted = 0;
    mc_nulls_minted = 0;
    mc_nulls_collected = 0;
    mc_egd_merges = 0;
    mc_egd_rebuilds = 0;
    mc_full_rebuilds = 0;
    mc_seconds = 0.;
  }

let add_counters a b =
  {
    mc_src_inserted = a.mc_src_inserted + b.mc_src_inserted;
    mc_src_deleted = a.mc_src_deleted + b.mc_src_deleted;
    mc_triggers_seen = a.mc_triggers_seen + b.mc_triggers_seen;
    mc_triggers_fired = a.mc_triggers_fired + b.mc_triggers_fired;
    mc_facts_added = a.mc_facts_added + b.mc_facts_added;
    mc_facts_retracted = a.mc_facts_retracted + b.mc_facts_retracted;
    mc_nulls_minted = a.mc_nulls_minted + b.mc_nulls_minted;
    mc_nulls_collected = a.mc_nulls_collected + b.mc_nulls_collected;
    mc_egd_merges = a.mc_egd_merges + b.mc_egd_merges;
    mc_egd_rebuilds = a.mc_egd_rebuilds + b.mc_egd_rebuilds;
    mc_full_rebuilds = a.mc_full_rebuilds + b.mc_full_rebuilds;
    mc_seconds = a.mc_seconds +. b.mc_seconds;
  }

(* per-apply accumulator, folded into [counters] at the end *)
type acc = {
  mutable a_src_ins : int;
  mutable a_src_del : int;
  mutable a_seen : int;
  mutable a_fired : int;
  mutable a_fadd : int;
  mutable a_fret : int;
  mutable a_nmint : int;
  mutable a_ncoll : int;
  mutable a_emerge : int;
  mutable a_erebuild : int;
  mutable a_frebuild : int;
  a_changed : (string, unit) Hashtbl.t;  (* target tables with new facts *)
  mutable a_keyed_retract : bool;
}

let fresh_acc () =
  {
    a_src_ins = 0;
    a_src_del = 0;
    a_seen = 0;
    a_fired = 0;
    a_fadd = 0;
    a_fret = 0;
    a_nmint = 0;
    a_ncoll = 0;
    a_emerge = 0;
    a_erebuild = 0;
    a_frebuild = 0;
    a_changed = Hashtbl.create 8;
    a_keyed_retract = false;
  }

let counters_of acc seconds =
  {
    mc_src_inserted = acc.a_src_ins;
    mc_src_deleted = acc.a_src_del;
    mc_triggers_seen = acc.a_seen;
    mc_triggers_fired = acc.a_fired;
    mc_facts_added = acc.a_fadd;
    mc_facts_retracted = acc.a_fret;
    mc_nulls_minted = acc.a_nmint;
    mc_nulls_collected = acc.a_ncoll;
    mc_egd_merges = acc.a_emerge;
    mc_egd_rebuilds = acc.a_erebuild;
    mc_full_rebuilds = acc.a_frebuild;
    mc_seconds = seconds;
  }

(* ---- state -------------------------------------------------------------- *)

(* A canonical (pre-egd) target fact with its support count: the number
   of live (derivation, emission) pairs producing it. Facts are
   physically shared between the per-table bucket and the derivation
   records, so retraction is pointer-chasing, not lookups. *)
type fact = {
  ft_table : string;
  ft_tuple : Value.t array;
  mutable ft_supp : int;
}

type facts_tbl = {
  fb_header : string list;
  fb_by_key : (string, fact) Hashtbl.t;
  mutable fb_order : fact list;  (* reverse creation order; may hold dead *)
  mutable fb_dead : int;
}

type deriv = { dv_facts : fact list }

(* How to rebuild the source tuple a scan step matched, from the
   completed env: every scan position is statically a bound slot, a
   constant, or a copy of an earlier position (the compiler covers all
   of them), so the trigger's source tuples need no storage. *)
type cell_src = TFill of int | TLit of Value.t | TCopy of int

type plan_info = {
  pi_plan : Plan.t;
  pi_stats : Obs.tstats;
  pi_scans : (string * cell_src array) array;  (* (pred, tuple template) *)
  pi_perm : int array;
      (* slots in variable-name order: the bulk plan and its per-atom
         delta variants number slots differently (scan order differs),
         so trigger keys are serialized through this permutation to
         make the same logical trigger hash identically everywhere *)
}

type state = {
  ms_compiled : Engine.compiled;
  ms_shards : int;  (* membership partition count of the source stores *)
  ms_plans : plan_info list;
  ms_delta : plan_info list list;
      (* per plan, the reordered variants (scan 0 = one lhs atom each);
         stats are shared with the base plan_info *)
  ms_src : (string, Stores.t) Hashtbl.t;
  ms_tgt : (string, facts_tbl) Hashtbl.t;
  ms_derivs : (string, deriv) Hashtbl.t;
  ms_by_src : (string, string list ref) Hashtbl.t;
  ms_null_occ : (int, int) Hashtbl.t;  (* null label -> occurrences in facts *)
  ms_src_nulls : (int, int) Hashtbl.t;  (* null label -> occurrences in source *)
  ms_subst : (int, Value.t) Hashtbl.t;  (* key-egd bindings over the facts *)
  ms_keyed : (string * int list * bool array) list;
      (* keyed target tables: (name, key positions, per-column is-key) *)
  ms_keyed_set : (string, unit) Hashtbl.t;
  mutable ms_batches : int;
  mutable ms_totals : counters;
  mutable ms_poisoned : string option;
}

exception Internal of string
exception Conflict of string
exception Invalid of string  (* bad batch op: rejected before any mutation *)

(* ---- skolem cells ------------------------------------------------------- *)

let rec sk_arg_value env = function
  | Plan.ASlot s -> env.(s)
  | Plan.AConst c -> c
  | Plan.AApp (g, nested) ->
      Chase.skolem_term ~f:g ~args:(List.map (sk_arg_value env) nested)

let emit_tuple env (em : Plan.emit) =
  Array.map
    (fun cell ->
      match cell with
      | Plan.CSlot s -> env.(s)
      | Plan.CConst c -> c
      | Plan.CSkolem (f, args) ->
          Chase.skolem_term ~f ~args:(List.map (sk_arg_value env) args)
      | Plan.CNull _ ->
          raise (Internal "anonymous null in a skolemized plan"))
    em.Plan.em_cells

(* ---- null / fact bookkeeping -------------------------------------------- *)

let bump tbl k d =
  let v = match Hashtbl.find_opt tbl k with Some v -> v | None -> 0 in
  let v' = v + d in
  if v' <= 0 then Hashtbl.remove tbl k else Hashtbl.replace tbl k v';
  (v, v')

let note_src_tuple st tup d =
  Array.iter
    (fun v ->
      match v with
      | Value.VNull k -> ignore (bump st.ms_src_nulls k d)
      | _ -> ())
    tup

let add_fact st acc table tup =
  let fb =
    match Hashtbl.find_opt st.ms_tgt table with
    | Some fb -> fb
    | None -> raise (Internal ("emission into unknown table " ^ table))
  in
  let key = Index.tuple_key tup in
  match Hashtbl.find_opt fb.fb_by_key key with
  | Some f ->
      f.ft_supp <- f.ft_supp + 1;
      f
  | None ->
      let f = { ft_table = table; ft_tuple = tup; ft_supp = 1 } in
      Hashtbl.replace fb.fb_by_key key f;
      fb.fb_order <- f :: fb.fb_order;
      acc.a_fadd <- acc.a_fadd + 1;
      Hashtbl.replace acc.a_changed table ();
      Array.iter
        (fun v ->
          match v with
          | Value.VNull k ->
              let old, _ = bump st.ms_null_occ k 1 in
              if old = 0 then acc.a_nmint <- acc.a_nmint + 1
          | _ -> ())
        tup;
      f

let retract_fact st acc f =
  let fb = Hashtbl.find st.ms_tgt f.ft_table in
  Hashtbl.remove fb.fb_by_key (Index.tuple_key f.ft_tuple);
  fb.fb_dead <- fb.fb_dead + 1;
  acc.a_fret <- acc.a_fret + 1;
  if Hashtbl.mem st.ms_keyed_set f.ft_table then acc.a_keyed_retract <- true;
  Array.iter
    (fun v ->
      match v with
      | Value.VNull k ->
          let _, now = bump st.ms_null_occ k (-1) in
          if now = 0 then acc.a_ncoll <- acc.a_ncoll + 1
      | _ -> ())
    f.ft_tuple

(* ---- derivation recording ----------------------------------------------- *)

let src_key pred tup = pred ^ "\x01" ^ Index.tuple_key tup

let src_tuple env tpl =
  let n = Array.length tpl in
  let out = Array.make n (Value.VNull 0) in
  Array.iteri
    (fun i c ->
      match c with
      | TFill s -> out.(i) <- env.(s)
      | TLit v -> out.(i) <- v
      | TCopy _ -> ())
    tpl;
  Array.iteri
    (fun i c -> match c with TCopy p -> out.(i) <- out.(p) | _ -> ())
    tpl;
  out

let record_trigger st acc pi env =
  acc.a_seen <- acc.a_seen + 1;
  let dkey =
    pi.pi_plan.Plan.p_name ^ "\x01"
    ^ Index.tuple_key (Array.map (fun s -> env.(s)) pi.pi_perm)
  in
  if not (Hashtbl.mem st.ms_derivs dkey) then begin
    acc.a_fired <- acc.a_fired + 1;
    let facts =
      List.map
        (fun em -> add_fact st acc em.Plan.em_pred (emit_tuple env em))
        pi.pi_plan.Plan.p_emits
    in
    Hashtbl.replace st.ms_derivs dkey { dv_facts = facts };
    Array.iter
      (fun (pred, tpl) ->
        let sk = src_key pred (src_tuple env tpl) in
        match Hashtbl.find_opt st.ms_by_src sk with
        | Some l -> l := dkey :: !l
        | None -> Hashtbl.replace st.ms_by_src sk (ref [ dkey ]))
      pi.pi_scans
  end

let kill_src_tuple st acc pred tup =
  note_src_tuple st tup (-1);
  let sk = src_key pred tup in
  match Hashtbl.find_opt st.ms_by_src sk with
  | None -> ()
  | Some l ->
      Hashtbl.remove st.ms_by_src sk;
      List.iter
        (fun dkey ->
          match Hashtbl.find_opt st.ms_derivs dkey with
          | None -> ()  (* stale entry: already killed via another tuple *)
          | Some d ->
              Hashtbl.remove st.ms_derivs dkey;
              List.iter
                (fun f ->
                  f.ft_supp <- f.ft_supp - 1;
                  if f.ft_supp = 0 then retract_fact st acc f)
                d.dv_facts)
        !l

(* ---- key-egd layer ------------------------------------------------------ *)

let resolve st v =
  let rec go v =
    match v with
    | Value.VNull k -> (
        match Hashtbl.find_opt st.ms_subst k with Some v' -> go v' | None -> v)
    | _ -> v
  in
  go v

(* One grouping pass over the given keyed tables: facts agreeing on
   their resolved key get their non-key columns unified. Returns the
   number of new bindings; [`Src_null] reports whether any binding hit
   a null that also occurs in the source (the caller must then fall
   back to a full rebuild: resolving the source can create triggers the
   un-resolved enumeration never saw). Raises {!Conflict} on a
   constant/constant clash. *)
let egd_tables_pass st acc tables =
  let merges = ref 0 and src_null = ref false in
  let unify table col u v =
    let ru = resolve st u and rv = resolve st v in
    if not (Value.equal ru rv) then
      match (ru, rv) with
      | Value.VNull k, other | other, Value.VNull k ->
          Hashtbl.replace st.ms_subst k other;
          incr merges;
          acc.a_emerge <- acc.a_emerge + 1;
          if Hashtbl.mem st.ms_src_nulls k then src_null := true
      | _ ->
          raise
            (Conflict
               (Printf.sprintf "key egd on %s.%s: %s vs %s" table col
                  (Value.to_string ru) (Value.to_string rv)))
  in
  List.iter
    (fun (name, keypos, is_key) ->
      match Hashtbl.find_opt st.ms_tgt name with
      | None -> ()
      | Some fb ->
          let header = Array.of_list fb.fb_header in
          let reps = Hashtbl.create (Hashtbl.length fb.fb_by_key + 1) in
          List.iter
            (fun f ->
              if f.ft_supp > 0 then begin
                let rtup = Array.map (resolve st) f.ft_tuple in
                let k =
                  Index.key_of_values (List.map (fun p -> rtup.(p)) keypos)
                in
                match Hashtbl.find_opt reps k with
                | None -> Hashtbl.replace reps k rtup
                | Some rep ->
                    Array.iteri
                      (fun i v ->
                        if not is_key.(i) then unify name header.(i) rep.(i) v)
                      rtup
              end)
            (List.rev fb.fb_order)
    )
    tables;
  (!merges, !src_null)

(* Fixpoint: a seeded pass over the tables that changed; any new
   binding can cascade through unchanged tables (their resolved keys
   may now collide), so a productive seed pass escalates to full
   passes until quiet. *)
let egd_fixpoint st acc ~seed =
  let src_null = ref false in
  let m0, s0 = egd_tables_pass st acc seed in
  src_null := s0;
  if m0 > 0 then begin
    let continue_ = ref true in
    while !continue_ do
      let m, s = egd_tables_pass st acc st.ms_keyed in
      if s then src_null := true;
      if m = 0 then continue_ := false
    done
  end;
  !src_null

(* ---- loading / rebuilds ------------------------------------------------- *)

let header_of (tbl : Schema.table) =
  List.map (fun c -> c.Schema.col_name) tbl.Schema.columns

let perm_of (p : Plan.t) =
  let idx = Array.init (Array.length p.Plan.p_slot_names) (fun i -> i) in
  Array.sort
    (fun a b ->
      String.compare p.Plan.p_slot_names.(a) p.Plan.p_slot_names.(b))
    idx;
  idx

let scan_template source (sc : Plan.scan) =
  let tbl = Schema.find_table_exn source sc.Plan.sc_pred in
  let arity = List.length tbl.Schema.columns in
  let tpl = Array.make arity (TCopy (-1)) in
  List.iter
    (fun (pos, b) ->
      tpl.(pos) <-
        (match b with Plan.Slot s -> TFill s | Plan.Const c -> TLit c))
    sc.Plan.sc_eqs;
  List.iter (fun (pos, s) -> tpl.(pos) <- TFill s) sc.Plan.sc_binds;
  List.iter (fun (pos, p0) -> tpl.(pos) <- TCopy p0) sc.Plan.sc_selfeqs;
  Array.iter
    (function
      | TCopy -1 -> raise (Internal ("uncovered scan position in " ^ sc.Plan.sc_pred))
      | _ -> ())
    tpl;
  (sc.Plan.sc_pred, tpl)

(* Clear every container and re-derive everything from [inst] with a
   full (delta-free) enumeration of each plan. *)
let load st acc inst =
  Hashtbl.reset st.ms_src;
  Hashtbl.reset st.ms_tgt;
  Hashtbl.reset st.ms_derivs;
  Hashtbl.reset st.ms_by_src;
  Hashtbl.reset st.ms_null_occ;
  Hashtbl.reset st.ms_src_nulls;
  Hashtbl.reset st.ms_subst;
  List.iter
    (fun (tbl : Schema.table) ->
      let header = header_of tbl in
      let r = Instance.relation_or_empty inst tbl.Schema.tbl_name ~header in
      List.iter (fun tup -> note_src_tuple st tup 1) r.Instance.tuples;
      Hashtbl.replace st.ms_src tbl.Schema.tbl_name
        (Stores.of_tuples ~shards:st.ms_shards ~header r.Instance.tuples))
    st.ms_compiled.Engine.c_source.Schema.tables;
  List.iter
    (fun (tbl : Schema.table) ->
      Hashtbl.replace st.ms_tgt tbl.Schema.tbl_name
        {
          fb_header = header_of tbl;
          fb_by_key = Hashtbl.create 64;
          fb_order = [];
          fb_dead = 0;
        })
    st.ms_compiled.Engine.c_target.Schema.tables;
  let lookup pred = Hashtbl.find st.ms_src pred in
  List.iter
    (fun pi ->
      let (), dt =
        Obs.time (fun () ->
            Engine.enumerate ~src:lookup pi.pi_plan pi.pi_stats
              ~sink:(fun env -> record_trigger st acc pi env))
      in
      pi.pi_stats.Obs.st_seconds <- pi.pi_stats.Obs.st_seconds +. dt)
    st.ms_plans

let source st =
  List.fold_left
    (fun acc (tbl : Schema.table) ->
      match Hashtbl.find_opt st.ms_src tbl.Schema.tbl_name with
      | None -> acc
      | Some s ->
          if Stores.count s = 0 then acc
          else
            Instance.set acc tbl.Schema.tbl_name
              { Instance.header = Stores.header s; tuples = Stores.tuples s })
    Instance.empty st.ms_compiled.Engine.c_source.Schema.tables

(* The source with the current substitution applied and duplicates
   folded — what the bulk engine would chase after rewriting. Only used
   by the full-rebuild fallback. *)
let resolved_source st =
  List.fold_left
    (fun acc (tbl : Schema.table) ->
      match Hashtbl.find_opt st.ms_src tbl.Schema.tbl_name with
      | None -> acc
      | Some s ->
          let seen = Hashtbl.create 64 in
          let tuples =
            List.filter_map
              (fun tup ->
                let tup' = Array.map (resolve st) tup in
                let k = Index.tuple_key tup' in
                if Hashtbl.mem seen k then None
                else begin
                  Hashtbl.replace seen k ();
                  Some tup'
                end)
              (Stores.tuples s)
          in
          if tuples = [] then acc
          else
            Instance.set acc tbl.Schema.tbl_name
              { Instance.header = Stores.header s; tuples })
    Instance.empty st.ms_compiled.Engine.c_source.Schema.tables

(* Hash indexes the delta variants will probe, built outside the
   latency-sensitive apply path. [load] replaces the stores, so this
   runs after every (re)load. *)
let prewarm_variants st =
  let lookup pred = Hashtbl.find st.ms_src pred in
  List.iter
    (List.iter (fun vi -> Engine.prewarm ~src:lookup vi.pi_plan))
    st.ms_delta

(* Rebuild everything from the resolved source. Each iteration strictly
   reduces the number of distinct labelled nulls in the source (every
   triggering merge binds at least one of them away), so this
   terminates. *)
let rec full_rebuild st acc =
  acc.a_frebuild <- acc.a_frebuild + 1;
  let inst = resolved_source st in
  load st acc inst;
  if egd_fixpoint st acc ~seed:st.ms_keyed then full_rebuild st acc
  else prewarm_variants st

(* ---- public construction ------------------------------------------------ *)

let prepare ?card ~source ~target ~mappings () =
  Engine.compile ?card ~laconic:false ~source ~target
    ~mappings:(Skolemize.tgds mappings) ()

let keyed_meta (target : Schema.t) =
  List.filter_map
    (fun (tbl : Schema.table) ->
      if tbl.Schema.key = [] then None
      else begin
        let header = Array.of_list (header_of tbl) in
        let keypos =
          List.map
            (fun k ->
              let rec find i = if header.(i) = k then i else find (i + 1) in
              find 0)
            tbl.Schema.key
        in
        let is_key =
          Array.map (fun c -> List.mem c tbl.Schema.key) header
        in
        Some (tbl.Schema.tbl_name, keypos, is_key)
      end)
    target.Schema.tables

let init ?shards compiled inst =
  if compiled.Engine.c_laconic then
    Error "delta maintenance requires non-laconic plans (Maintain.prepare)"
  else if
    List.exists (fun (p : Plan.t) -> p.Plan.p_nnulls > 0)
      compiled.Engine.c_plans
  then
    Error
      "delta maintenance requires skolemized plans (Maintain.prepare): a \
       plan still mints anonymous nulls"
  else begin
    let source_schema = compiled.Engine.c_source in
    let target_schema = compiled.Engine.c_target in
    let keyed = keyed_meta target_schema in
    let keyed_set = Hashtbl.create 8 in
    List.iter (fun (n, _, _) -> Hashtbl.replace keyed_set n ()) keyed;
    match
      let info stats (p : Plan.t) =
        {
          pi_plan = p;
          pi_stats = stats;
          pi_scans =
            Array.of_list
              (List.map (scan_template source_schema) p.Plan.p_scans);
          pi_perm = perm_of p;
        }
      in
      let plans =
        List.map (fun p -> info (Obs.fresh_tstats ()) p) compiled.Engine.c_plans
      in
      let delta_infos =
        List.map2
          (fun pi variants -> List.map (info pi.pi_stats) variants)
          plans compiled.Engine.c_delta
      in
      let st =
        {
          ms_compiled = compiled;
          ms_shards =
            (match shards with
            | Some s -> max 1 s
            | None -> (
                match Sys.getenv_opt "SMG_SHARDS" with
                | Some s -> (
                    match int_of_string_opt (String.trim s) with
                    | Some v when v > 0 -> v
                    | _ -> 1)
                | None -> 1));
          ms_plans = plans;
          ms_delta = delta_infos;
          ms_src = Hashtbl.create 16;
          ms_tgt = Hashtbl.create 16;
          ms_derivs = Hashtbl.create 1024;
          ms_by_src = Hashtbl.create 1024;
          ms_null_occ = Hashtbl.create 256;
          ms_src_nulls = Hashtbl.create 16;
          ms_subst = Hashtbl.create 16;
          ms_keyed = keyed;
          ms_keyed_set = keyed_set;
          ms_batches = 0;
          ms_totals = zero_counters;
          ms_poisoned = None;
        }
      in
      let acc = fresh_acc () in
      let t0 = Unix.gettimeofday () in
      load st acc inst;
      if egd_fixpoint st acc ~seed:st.ms_keyed then full_rebuild st acc
      else prewarm_variants st;
      st.ms_totals <-
        add_counters st.ms_totals
          (counters_of acc (Unix.gettimeofday () -. t0));
      st
    with
    | st -> Ok st
    | exception Conflict msg -> Error msg
    | exception Internal msg -> Error ("internal: " ^ msg)
    | exception Invalid_argument msg -> Error msg
  end

(* ---- apply -------------------------------------------------------------- *)

let validate st ops =
  List.iter
    (fun op ->
      let pred, tup =
        match op with
        | Batch.Insert (p, t) -> (p, t)
        | Batch.Delete (p, t) -> (p, t)
      in
      match Hashtbl.find_opt st.ms_src pred with
      | None -> raise (Invalid (Printf.sprintf "unknown source table %s" pred))
      | Some s ->
          if Array.length tup <> List.length (Stores.header s) then
            raise
              (Invalid
                 (Printf.sprintf "%s expects %d values, got %d" pred
                    (List.length (Stores.header s))
                    (Array.length tup))))
    ops

let apply ?fault st batch =
  match st.ms_poisoned with
  | Some msg -> Error ("maintain state poisoned by earlier failure: " ^ msg)
  | None -> (
      (match fault with
      | Some f -> Fault.fire f Fault.Delta_apply
      | None -> ());
      let t0 = Unix.gettimeofday () in
      let acc = fresh_acc () in
      match
        validate st batch;
        (* deletes first, then inserts: a tuple both deleted and
           inserted in one batch ends up present. Deletes are grouped
           per table so each store is swept once per batch, not once
           per tuple. *)
        let doomed : (string, Value.t array list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (fun op ->
            match op with
            | Batch.Delete (pred, tup) -> (
                match Hashtbl.find_opt doomed pred with
                | Some l -> l := tup :: !l
                | None -> Hashtbl.replace doomed pred (ref [ tup ]))
            | Batch.Insert _ -> ())
          batch;
        Hashtbl.iter
          (fun pred l ->
            let s = Hashtbl.find st.ms_src pred in
            let removed = Stores.remove_many s (List.rev !l) in
            List.iter
              (fun tup ->
                acc.a_src_del <- acc.a_src_del + 1;
                kill_src_tuple st acc pred tup)
              removed)
          doomed;
        let fresh : (string, Value.t array list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (fun op ->
            match op with
            | Batch.Insert (pred, tup) ->
                let s = Hashtbl.find st.ms_src pred in
                if Stores.insert s tup then begin
                  acc.a_src_ins <- acc.a_src_ins + 1;
                  note_src_tuple st tup 1;
                  match Hashtbl.find_opt fresh pred with
                  | Some l -> l := tup :: !l
                  | None -> Hashtbl.replace fresh pred (ref [ tup ])
                end
            | Batch.Delete _ -> ())
          batch;
        (* one reordered variant per lhs atom, each driven from the
           tuples newly inserted into that atom's table: every new
           trigger contains at least one fresh tuple, so leading with
           the delta covers them all without re-running the bulk plan's
           join prefix. A trigger with fresh tuples in several atoms is
           found once per such atom; the canonical dkey dedups it. *)
        let lookup pred = Hashtbl.find st.ms_src pred in
        List.iter2
          (fun pi variants ->
            let (), dt =
              Obs.time (fun () ->
                  List.iter
                    (fun vi ->
                      match vi.pi_plan.Plan.p_scans with
                      | [] -> ()
                      | sc0 :: _ -> (
                          match Hashtbl.find_opt fresh sc0.Plan.sc_pred with
                          | Some ts ->
                              Engine.enumerate ~src:lookup
                                ~delta:(0, List.rev !ts) vi.pi_plan
                                vi.pi_stats
                                ~sink:(fun env -> record_trigger st acc vi env)
                          | None -> ()))
                    variants)
            in
            pi.pi_stats.Obs.st_seconds <- pi.pi_stats.Obs.st_seconds +. dt)
          st.ms_plans st.ms_delta;
        (* the stores log inserts for the bulk engine's semi-naive
           rounds; the maintainer re-fires from its own batch, so the
           log would only grow without bound *)
        Hashtbl.iter
          (fun pred _ -> Stores.clear_delta (Hashtbl.find st.ms_src pred))
          fresh;
        if st.ms_keyed <> [] then begin
          if acc.a_keyed_retract && Hashtbl.length st.ms_subst > 0 then begin
            (* which merges the retracted facts justified is ambiguous:
               recompute the substitution over the surviving facts *)
            Hashtbl.reset st.ms_subst;
            acc.a_erebuild <- acc.a_erebuild + 1;
            if egd_fixpoint st acc ~seed:st.ms_keyed then full_rebuild st acc
          end
          else begin
            (* retraction alone never creates a key collision, so the
               seed is exactly the keyed tables with new facts *)
            let seed =
              List.filter
                (fun (n, _, _) -> Hashtbl.mem acc.a_changed n)
                st.ms_keyed
            in
            if seed <> [] then
              if egd_fixpoint st acc ~seed then full_rebuild st acc
          end
        end
      with
      | () ->
          st.ms_batches <- st.ms_batches + 1;
          let c = counters_of acc (Unix.gettimeofday () -. t0) in
          st.ms_totals <- add_counters st.ms_totals c;
          Ok (st, c)
      | exception Invalid msg -> Error msg  (* nothing mutated: not poisoned *)
      | exception Conflict msg ->
          st.ms_poisoned <- Some msg;
          Error msg
      | exception Internal msg ->
          st.ms_poisoned <- Some msg;
          Error ("internal: " ^ msg))

(* ---- materialization ---------------------------------------------------- *)

let target st =
  List.fold_left
    (fun acc (tbl : Schema.table) ->
      match Hashtbl.find_opt st.ms_tgt tbl.Schema.tbl_name with
      | None -> acc
      | Some fb ->
          let live =
            List.filter (fun f -> f.ft_supp > 0) (List.rev fb.fb_order)
          in
          if fb.fb_dead > 0 then begin
            fb.fb_order <- List.rev live;
            fb.fb_dead <- 0
          end;
          let seen = Hashtbl.create (List.length live + 1) in
          let tuples =
            List.filter_map
              (fun f ->
                let tup = Array.map (resolve st) f.ft_tuple in
                let k = Index.tuple_key tup in
                if Hashtbl.mem seen k then None
                else begin
                  Hashtbl.replace seen k ();
                  Some tup
                end)
              live
          in
          if tuples = [] then acc
          else
            Instance.set acc tbl.Schema.tbl_name
              { Instance.header = fb.fb_header; tuples })
    Instance.empty st.ms_compiled.Engine.c_target.Schema.tables

let report st =
  {
    Engine.r_target = target st;
    r_complete = true;
    r_rounds = st.ms_batches;
    r_stats =
      List.map
        (fun pi -> (pi.pi_plan.Plan.p_name, Obs.snapshot pi.pi_stats))
        st.ms_plans;
    r_egd_merges = Hashtbl.length st.ms_subst;
    r_sweep_dropped = 0;
    r_seconds = st.ms_totals.mc_seconds;
    r_shards =
      Stores.shard_view
        (Hashtbl.fold (fun _ s acc -> s :: acc) st.ms_src []);
  }

let totals st = st.ms_totals
let batches st = st.ms_batches

let live_stats st =
  let facts =
    Hashtbl.fold (fun _ fb n -> n + Hashtbl.length fb.fb_by_key) st.ms_tgt 0
  in
  (facts, Hashtbl.length st.ms_derivs, Hashtbl.length st.ms_null_occ)
