(** Skolemization of s-t tgds for incremental maintenance.

    The restricted chase decides per trigger whether firing is needed,
    so the set of target facts it builds depends on evaluation order —
    fatal for counting-based retraction, where a fact's support must be
    a pure function of the source. Replacing every existential variable
    with a Skolem term over the tgd's frontier (the universal variables
    shared by both sides) makes the pre-egd target instance the
    semi-oblivious-chase canonical instance: a deterministic function of
    the set of triggers, independent of order, and still a universal
    solution (homomorphically equivalent to the restricted-chase
    output). One compiled plan then serves both bulk execution and
    delta maintenance, emitting the same facts either way. *)

val tgds : Smg_cq.Dependency.tgd list -> Smg_cq.Dependency.tgd list
(** Rewrite each tgd's existential variables to Skolem variables
    ({!Smg_cq.Chase.skolem_var}) applied to the tgd's frontier, using a
    Skolem function name unique to the (tgd position, variable) pair so
    distinct existentials never share nulls. Tgds without existentials
    pass through unchanged. *)
