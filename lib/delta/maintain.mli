(** Incremental maintenance of a materialized exchange target.

    A {!state} holds a source instance (in engine stores), the
    canonical pre-egd target — the semi-oblivious-chase result over
    {!Skolemize}d plans, a deterministic function of the source — with
    a support count per fact, a derivation index from source tuples to
    the triggers they participate in, and the key-egd substitution over
    the canonical facts. {!apply} maintains all of it under a batch of
    source inserts and deletes:

    - inserts re-fire each compiled plan semi-naively, seeded from the
      batch ({!Smg_exchange.Engine.enumerate} with the delta
      restriction), recording one derivation per new trigger;
    - deletes retract by counting: a derivation dies with any of its
      source tuples, each death decrements the support of the facts it
      produced, and a fact (and any labelled null left without a fact)
      vanishes when its support reaches zero;
    - the egd substitution is extended incrementally on insert-only
      batches; when a retraction touches a keyed table, rolled-back
      merges are ambiguous, so the substitution is recomputed from the
      (small) canonical keyed tables — and if a merge ever binds a null
      that occurs in the source itself, the whole state is rebuilt from
      the resolved source, the engine's own semantics.

    The maintained target is homomorphically equivalent to a full
    re-chase of the current source, and its materialization order is a
    deterministic function of the operation history, so journal replay
    reproduces rendered documents byte for byte. *)

type counters = {
  mc_src_inserted : int;  (** source tuples actually added *)
  mc_src_deleted : int;  (** source tuples actually removed *)
  mc_triggers_seen : int;  (** bindings enumerated from the delta *)
  mc_triggers_fired : int;  (** new derivations recorded *)
  mc_facts_added : int;  (** canonical facts created *)
  mc_facts_retracted : int;  (** canonical facts whose support vanished *)
  mc_nulls_minted : int;  (** labelled nulls first seen *)
  mc_nulls_collected : int;  (** nulls no longer occurring in any fact *)
  mc_egd_merges : int;  (** substitution bindings added *)
  mc_egd_rebuilds : int;  (** substitution recomputations (retractions) *)
  mc_full_rebuilds : int;  (** whole-state rebuilds (source-null merge) *)
  mc_seconds : float;  (** wall-clock inside {!apply} *)
}

val zero_counters : counters
val add_counters : counters -> counters -> counters

type state

val prepare :
  ?card:(string -> int) ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  mappings:Smg_cq.Dependency.tgd list ->
  unit ->
  (Smg_exchange.Engine.compiled, string) result
(** Skolemize the mappings and compile them (never laconic: the sweep
    would fold facts out from under the support counts). The compiled
    value also executes in bulk via {!Smg_exchange.Engine.execute},
    producing the same canonical facts — one plan, both paths. *)

val init :
  ?shards:int ->
  Smg_exchange.Engine.compiled ->
  Smg_relational.Instance.t ->
  (state, string) result
(** Build the maintained state by a full (bulk) derivation-recording
    pass. [shards] sets the hash-partition count of the maintained
    source stores' membership tables (default: [SMG_SHARDS] env var,
    else 1); it is invisible to the maintained output. [Error] on a
    key-egd constant/constant conflict, on laconic plans, or on plans
    that still mint anonymous nulls (i.e. the compiled value did not
    come from {!prepare}). *)

val apply :
  ?fault:Smg_robust.Fault.t ->
  state ->
  Batch.t ->
  (state * counters, string) result
(** Apply one batch, mutating and returning the same state. [Error] on
    a key-egd conflict or an op naming an unknown table / wrong arity
    — after which the state is poisoned and refuses further batches
    (the caller should drop it and re-init). [fault] consults the
    [Delta_apply] injection point once, before any mutation. *)

val source : state -> Smg_relational.Instance.t
(** The current maintained source instance. *)

val target : state -> Smg_relational.Instance.t
(** The materialized target: canonical facts resolved through the egd
    substitution, deduplicated, in derivation order. *)

val report : state -> Smg_exchange.Engine.report
(** The maintained target wrapped as an engine report (cumulative
    per-plan counters, egd merges, batches applied as rounds) — feed it
    to the same renderers as a bulk execution. *)

val totals : state -> counters
(** Counters accumulated since {!init}. *)

val batches : state -> int
(** Batches applied so far. *)

val live_stats : state -> int * int * int
(** [(facts, derivations, live nulls)] currently tracked. *)
