module Value = Smg_relational.Value
module Schema = Smg_relational.Schema

type op = Insert of string * Value.t array | Delete of string * Value.t array
type t = op list

let counts ops =
  List.fold_left
    (fun (i, d) op ->
      match op with Insert _ -> (i + 1, d) | Delete _ -> (i, d + 1))
    (0, 0) ops

(* ---- rendering ---------------------------------------------------------- *)

let quote_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      (match c with '"' | '\\' -> Buffer.add_char buf '\\' | _ -> ());
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let render_value = function
  | Value.VInt i -> string_of_int i
  | Value.VFloat f -> Printf.sprintf "%.17g" f
  | Value.VBool b -> if b then "true" else "false"
  | Value.VString s -> quote_string s
  | Value.VNull _ -> invalid_arg "Batch.to_string: labelled null in a delta"

let render_op op =
  let line sign tbl tup =
    Printf.sprintf "%c %s(%s)" sign tbl
      (String.concat ", " (Array.to_list (Array.map render_value tup)))
  in
  match op with
  | Insert (tbl, tup) -> line '+' tbl tup
  | Delete (tbl, tup) -> line '-' tbl tup

let to_string ops = String.concat "\n" (List.map render_op ops) ^ "\n"

(* ---- parsing ------------------------------------------------------------ *)

exception Bad of string

(* Split the text between the parentheses into raw value tokens,
   honouring double quotes and backslash escapes so strings may contain
   commas and parens. A quoted token carries a leading ['"'] marker so
   the typed conversion can tell ["true"] from [true]. *)
let split_values s =
  let n = String.length s in
  let out = ref [] and buf = Buffer.create 16 in
  let quoted = ref false (* the current token began with a quote *)
  and in_q = ref false
  and any = ref false in
  let flush () =
    let tok = Buffer.contents buf in
    Buffer.clear buf;
    let tok = if !quoted then "\"" ^ tok else String.trim tok in
    if !quoted || tok <> "" || !any then out := tok :: !out;
    quoted := false;
    any := false
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if !in_q then begin
      if c = '\\' && !i + 1 < n then begin
        Buffer.add_char buf s.[!i + 1];
        incr i
      end
      else if c = '"' then in_q := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' ->
          if Buffer.length buf <> 0 && String.trim (Buffer.contents buf) <> ""
          then raise (Bad "unexpected quote inside a value");
          Buffer.clear buf;
          in_q := true;
          quoted := true;
          any := true
      | ',' -> flush ()
      | _ ->
          if not (c = ' ' || c = '\t') then any := true;
          Buffer.add_char buf c
    end;
    incr i
  done;
  if !in_q then raise (Bad "unterminated string");
  if Buffer.length buf <> 0 || !quoted || !any then flush ();
  List.rev !out

let value_of_token (col : Schema.column) tok =
  let fail () =
    raise
      (Bad
         (Printf.sprintf "bad %s value for column %s: %s"
            (match col.Schema.col_type with
            | Schema.TInt -> "int"
            | Schema.TString -> "string"
            | Schema.TFloat -> "float"
            | Schema.TBool -> "bool")
            col.Schema.col_name
            (if tok = "" then "<empty>" else tok)))
  in
  let unquoted =
    if String.length tok > 0 && tok.[0] = '"' then
      Some (String.sub tok 1 (String.length tok - 1))
    else None
  in
  match col.Schema.col_type with
  | Schema.TString -> (
      match unquoted with
      | Some s -> Value.VString s
      | None -> if tok = "" then fail () else Value.VString tok)
  | Schema.TInt -> (
      match (unquoted, int_of_string_opt tok) with
      | None, Some i -> Value.VInt i
      | _ -> fail ())
  | Schema.TFloat -> (
      match (unquoted, float_of_string_opt tok) with
      | None, Some f -> Value.VFloat f
      | _ -> fail ())
  | Schema.TBool -> (
      match (unquoted, tok) with
      | None, "true" -> Value.VBool true
      | None, "false" -> Value.VBool false
      | _ -> fail ())

let parse_line ~schema line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let sign =
      match line.[0] with
      | '+' -> `Insert
      | '-' -> `Delete
      | c -> raise (Bad (Printf.sprintf "expected '+' or '-', got %c" c))
    in
    let rest = String.trim (String.sub line 1 (String.length line - 1)) in
    let lpar =
      match String.index_opt rest '(' with
      | Some i -> i
      | None -> raise (Bad "expected table(values...)")
    in
    if rest.[String.length rest - 1] <> ')' then
      raise (Bad "expected closing ')'");
    let tbl_name = String.trim (String.sub rest 0 lpar) in
    let inner = String.sub rest (lpar + 1) (String.length rest - lpar - 2) in
    let tbl =
      match Schema.find_table schema tbl_name with
      | Some t -> t
      | None ->
          raise (Bad (Printf.sprintf "unknown source table %s" tbl_name))
    in
    let toks = split_values inner in
    let cols = tbl.Schema.columns in
    if List.length toks <> List.length cols then
      raise
        (Bad
           (Printf.sprintf "%s expects %d values, got %d" tbl_name
              (List.length cols) (List.length toks)));
    let tup = Array.of_list (List.map2 value_of_token cols toks) in
    Some
      (match sign with
      | `Insert -> Insert (tbl_name, tup)
      | `Delete -> Delete (tbl_name, tup))
  end

let parse ~schema text =
  let lines = String.split_on_char '\n' text in
  let ops = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        match parse_line ~schema line with
        | Some op -> ops := op :: !ops
        | None -> ()
        | exception Bad msg -> err := Some (Printf.sprintf "line %d: %s" (i + 1) msg))
    lines;
  match !err with Some msg -> Error msg | None -> Ok (List.rev !ops)
