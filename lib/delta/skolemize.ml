module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase

let tgd_at i (t : Dependency.tgd) =
  let ex = Dependency.existential_vars t in
  if ex = [] then t
  else begin
    let frontier = Dependency.universal_vars t in
    (* the position [i] disambiguates tgds that share a name, so two
       different dependencies can never intern the same Skolem term *)
    let name y = Printf.sprintf "dx%d!%s!%s" i t.Dependency.tgd_name y in
    let rewrite_term = function
      | Atom.Var v when List.mem v ex ->
          Atom.Var (Chase.skolem_var ~f:(name v) ~args:frontier)
      | term -> term
    in
    let rewrite_atom (a : Atom.t) =
      { a with Atom.args = List.map rewrite_term a.Atom.args }
    in
    { t with Dependency.rhs = List.map rewrite_atom t.Dependency.rhs }
  end

let tgds ts = List.mapi tgd_at ts
