module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Query = Smg_cq.Query
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover

(* Deterministic pseudo-random stream (no Random: reproducibility). *)
let mix seed i j = ((seed * 1103515245) + (i * 12345) + (j * 2654435761)) land 0x3FFFFFFF

let populate ?(rows_per_table = 4) ?(seed = 42) schema =
  (* Pooled constants: the same small value domain is used for every
     column, so natural joins and RIC references frequently hit. *)
  let pool k = Value.VString (Printf.sprintf "c%d" (k mod 7)) in
  let base =
    List.fold_left
      (fun inst (t : Schema.table) ->
        let header = Schema.column_names t in
        let rec add inst i =
          if i >= rows_per_table then inst
          else begin
            let row =
              Array.of_list
                (List.mapi
                   (fun j c ->
                     (* key columns get row-unique values, others pooled *)
                     if List.mem c t.Schema.key then
                       Value.VString
                         (Printf.sprintf "k_%s_%d_%d" t.Schema.tbl_name i j)
                     else pool (mix seed i j))
                   header)
            in
            add (Instance.add_tuple inst t.Schema.tbl_name ~header row) (i + 1)
          end
        in
        add inst 0)
      Instance.empty schema.Schema.tables
  in
  (* Repair the RICs directly: for every dangling reference insert the
     referenced row (labelled nulls outside the referenced columns),
     probing a hash index per RIC instead of chasing the RIC tgds — the
     chase rescans every pair of rows per round, which dominates
     generation at the sizes the exchange-scale experiment uses.
     Inserted rows can dangle in turn, so rounds repeat to a fixpoint
     (bounded like the old chase-based repair). *)
  let col_pos header c =
    let rec go i = function
      | [] -> invalid_arg ("witness: unknown column " ^ c)
      | c' :: rest -> if String.equal c c' then i else go (i + 1) rest
    in
    go 0 header
  in
  let module Index = Smg_relational.Index in
  let rec repair inst round =
    if round >= 10 then inst
    else begin
      let changed = ref false in
      let inst' =
        List.fold_left
          (fun inst (r : Schema.ric) ->
            let from_t = Schema.find_table_exn schema r.Schema.from_table in
            let to_t = Schema.find_table_exn schema r.Schema.to_table in
            let from_header = Schema.column_names from_t in
            let to_header = Schema.column_names to_t in
            let from_rel =
              Instance.relation_or_empty inst r.Schema.from_table
                ~header:from_header
            in
            let to_rel =
              Instance.relation_or_empty inst r.Schema.to_table
                ~header:to_header
            in
            let fpos = List.map (col_pos from_header) r.Schema.from_cols in
            let tpos = List.map (col_pos to_header) r.Schema.to_cols in
            let ix = Index.build ~key:tpos to_rel.Instance.tuples in
            List.fold_left
              (fun inst tup ->
                let vals = List.map (fun p -> tup.(p)) fpos in
                if Index.probe ix vals <> [] then inst
                else begin
                  changed := true;
                  let row =
                    Array.init (List.length to_header) (fun j ->
                        let rec assoc tpos vals =
                          match (tpos, vals) with
                          | p :: _, v :: _ when p = j -> Some v
                          | _ :: ps, _ :: vs -> assoc ps vs
                          | _ -> None
                        in
                        match assoc tpos vals with
                        | Some v -> v
                        | None -> Value.fresh_null ())
                  in
                  Index.add ix row;
                  Instance.add_tuple inst r.Schema.to_table ~header:to_header
                    row
                end)
              inst from_rel.Instance.tuples)
          inst schema.Schema.rics
      in
      if !changed then repair inst' (round + 1) else inst'
    end
  in
  repair base 0

(* Populated witnesses are pure functions of (schema, rows, seed), and
   both the CLI's FILE-witness path and the HTTP registry regenerate
   them per invocation at identical keys — memoize process-wide. The
   schema participates via its printed form, so two structurally equal
   schemas share an entry. Entries are never evicted: the witness
   sizes in play are bounded by the caller's --size. *)
let populate_cache : (string, Instance.t) Hashtbl.t = Hashtbl.create 8
let populate_lock = Mutex.create ()

let populate_cached ?(rows_per_table = 4) ?(seed = 42) schema =
  let key =
    Printf.sprintf "%d:%d:%s" rows_per_table seed
      (Digest.to_hex (Digest.string (Fmt.str "%a" Schema.pp schema)))
  in
  Mutex.lock populate_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock populate_lock)
    (fun () ->
      match Hashtbl.find_opt populate_cache key with
      | Some inst -> inst
      | None ->
          let inst = populate ~rows_per_table ~seed schema in
          Hashtbl.add populate_cache key inst;
          inst)

type verdict = {
  w_case : string;
  w_agree : bool;
  w_discovered : int;
  w_benchmark : int;
}

let answers schema inst (q : Query.t) =
  let rel = Query.eval schema inst q in
  List.map
    (fun tup -> List.map Value.to_string (Array.to_list tup))
    rel.Smg_relational.Instance.tuples
  |> List.sort compare

let check_case ?rows_per_table ?(seed = 42) (scen : Scenario.t)
    (case : Scenario.case) =
  let generated =
    Experiments.run_method Experiments.Semantic scen case
  in
  let schema = scen.Scenario.source.Discover.schema in
  let hit =
    List.find_opt
      (fun m ->
        List.exists
          (fun b ->
            Mapping.same_under ~source:schema
              ~target:scen.Scenario.target.Discover.schema m b)
          case.Scenario.benchmark)
      generated
  in
  match (hit, case.Scenario.benchmark) with
  | Some m, b :: _ ->
      let inst = populate ?rows_per_table ~seed schema in
      let got = answers schema inst m.Mapping.src_query in
      let expected = answers schema inst b.Mapping.src_query in
      Some
        {
          w_case = case.Scenario.case_name;
          w_agree = got = expected;
          w_discovered = List.length got;
          w_benchmark = List.length expected;
        }
  | _, _ -> None

let check_scenario ?seed scen =
  List.filter_map (fun case -> check_case ?seed scen case) scen.Scenario.cases

let pp_verdict ppf v =
  Fmt.pf ppf "%-28s %s (answers: discovered %d, benchmark %d)" v.w_case
    (if v.w_agree then "agree" else "DISAGREE")
    v.w_discovered v.w_benchmark
