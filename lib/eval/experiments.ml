module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Baseline = Smg_ric.Baseline

type method_kind = Semantic | Ric_based

type case_result = {
  cr_case : string;
  cr_method : method_kind;
  cr_outcome : Measures.outcome;
  cr_seconds : float;
}

type domain_result = {
  dr_scenario : Scenario.t;
  dr_cases : case_result list;
  dr_sem_precision : float;
  dr_sem_recall : float;
  dr_ric_precision : float;
  dr_ric_recall : float;
  dr_sem_seconds : float;
  dr_ric_seconds : float;
}

(* The semantic method eliminates incompatible candidates and
   *downgrades* dubious ones (Example 1.3); mappings whose score falls
   far below the best tier would not be presented first. We count the
   candidates within a fixed presentation window of the best score,
   with strict partOf filtering on (the paper's "eliminated"
   reading). *)
let presentation_window = 2.0

let semantic_options =
  { Discover.default_options with strict_partof = true }

let run_method kind (scen : Scenario.t) (case : Scenario.case) =
  match kind with
  | Semantic ->
      let all =
        Discover.discover ~options:semantic_options
          ~source:scen.Scenario.source ~target:scen.Scenario.target
          ~corrs:case.Scenario.corrs ()
      in
      (match all with
      | [] -> []
      | best :: _ ->
          List.filter
            (fun m ->
              m.Mapping.score <= best.Mapping.score +. presentation_window)
            all)
  | Ric_based ->
      Baseline.generate ~source:scen.Scenario.source.Discover.schema
        ~target:scen.Scenario.target.Discover.schema ~corrs:case.Scenario.corrs

let run_semantic_bounded ?budget ?pool (scen : Scenario.t) (case : Scenario.case)
    =
  let o =
    Discover.discover_bounded ~options:semantic_options ?budget ?pool
      ~source:scen.Scenario.source ~target:scen.Scenario.target
      ~corrs:case.Scenario.corrs ()
  in
  let kept =
    match o.Discover.o_mappings with
    | [] -> []
    | best :: _ as all ->
        List.filter
          (fun m -> m.Mapping.score <= best.Mapping.score +. presentation_window)
          all
  in
  { o with Discover.o_mappings = kept }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_case scen case =
  List.map
    (fun kind ->
      let generated, seconds = time (fun () -> run_method kind scen case) in
      {
        cr_case = case.Scenario.case_name;
        cr_method = kind;
        cr_outcome =
          Measures.score
            ~schemas:
              ( scen.Scenario.source.Discover.schema,
                scen.Scenario.target.Discover.schema )
            ~generated ~benchmark:case.Scenario.benchmark ();
        cr_seconds = seconds;
      })
    [ Semantic; Ric_based ]

let run scen =
  let dr_cases = List.concat_map (run_case scen) scen.Scenario.cases in
  let of_kind k =
    List.filter (fun c -> c.cr_method = k) dr_cases
    |> List.map (fun c -> (c.cr_outcome.Measures.precision, c.cr_outcome.Measures.recall))
  in
  let sem_p, sem_r = Measures.average (of_kind Semantic) in
  let ric_p, ric_r = Measures.average (of_kind Ric_based) in
  let secs k =
    List.fold_left
      (fun acc c -> if c.cr_method = k then acc +. c.cr_seconds else acc)
      0. dr_cases
  in
  {
    dr_scenario = scen;
    dr_cases;
    dr_sem_precision = sem_p;
    dr_sem_recall = sem_r;
    dr_ric_precision = ric_p;
    dr_ric_recall = ric_r;
    dr_sem_seconds = secs Semantic;
    dr_ric_seconds = secs Ric_based;
  }

let run_all = List.map run

(* ---- RIC redundancy (lib/verify) ---------------------------------------- *)

type redundancy = {
  rd_ric_total : int;
  rd_ric_equivalent : int;
  rd_ric_subsumed : int;
}

let redundancy scen =
  let source = scen.Scenario.source.Discover.schema in
  let target = scen.Scenario.target.Discover.schema in
  List.fold_left
    (fun acc case ->
      let sem = run_method Semantic scen case in
      let ric = run_method Ric_based scen case in
      List.fold_left
        (fun acc r ->
          if List.exists (fun s -> Smg_verify.Mapverify.equivalent ~source ~target s r) sem
          then { acc with rd_ric_equivalent = acc.rd_ric_equivalent + 1 }
          else if
            List.exists (fun s -> Smg_verify.Mapverify.implies ~source ~target s r) sem
          then { acc with rd_ric_subsumed = acc.rd_ric_subsumed + 1 }
          else acc)
        { acc with rd_ric_total = acc.rd_ric_total + List.length ric }
        ric)
    { rd_ric_total = 0; rd_ric_equivalent = 0; rd_ric_subsumed = 0 }
    scen.Scenario.cases

let pp_redundancy ppf rows =
  Fmt.pf ppf
    "@[<v>RIC-baseline redundancy vs the semantic candidates (lib/verify)@,%s@,"
    (String.make 64 '-');
  Fmt.pf ppf "%-10s %6s %12s %10s@," "Domain" "#RIC" "equivalent" "subsumed";
  List.iter
    (fun ((scen : Scenario.t), r) ->
      Fmt.pf ppf "%-10s %6d %12d %10d@," scen.Scenario.scen_name
        r.rd_ric_total r.rd_ric_equivalent r.rd_ric_subsumed)
    rows;
  let tot f = List.fold_left (fun acc (_, r) -> acc + f r) 0 rows in
  Fmt.pf ppf "%-10s %6d %12d %10d@,@]" "ALL"
    (tot (fun r -> r.rd_ric_total))
    (tot (fun r -> r.rd_ric_equivalent))
    (tot (fun r -> r.rd_ric_subsumed))

(* ---- rendering ---------------------------------------------------------- *)

let pp_table1 ppf results =
  Fmt.pf ppf "@[<v>%-10s %8s  %-18s %7s %9s %9s@,"
    "Schema" "#tables" "associated CM" "#nodes" "#mappings" "time(s)";
  Fmt.pf ppf "%s@," (String.make 68 '-');
  List.iter
    (fun r ->
      let s = r.dr_scenario in
      let src_tables =
        List.length s.Scenario.source.Discover.schema.Smg_relational.Schema.tables
      in
      let tgt_tables =
        List.length s.Scenario.target.Discover.schema.Smg_relational.Schema.tables
      in
      let src_nodes =
        Scenario.n_class_nodes
          (Smg_cm.Cm_graph.cm s.Scenario.source.Discover.cmg)
      in
      let tgt_nodes =
        Scenario.n_class_nodes
          (Smg_cm.Cm_graph.cm s.Scenario.target.Discover.cmg)
      in
      Fmt.pf ppf "%-10s %8d  %-18s %7d %9d %9.3f@," s.Scenario.source_label
        src_tables s.Scenario.source_cm_label src_nodes
        (List.length s.Scenario.cases)
        r.dr_sem_seconds;
      Fmt.pf ppf "%-10s %8d  %-18s %7d %9s %9s@," s.Scenario.target_label
        tgt_tables s.Scenario.target_cm_label tgt_nodes "" "")
    results;
  Fmt.pf ppf "@]"

let bar width v =
  let k = int_of_float (v *. float_of_int width +. 0.5) in
  String.make k '#' ^ String.make (width - k) ' '

let pp_measure ~title ~get_sem ~get_ric ppf results =
  Fmt.pf ppf "@[<v>%s@,%s@," title (String.make 64 '-');
  Fmt.pf ppf "%-10s %-28s %-28s@," "Domain" "semantic" "RIC-based";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %s %4.2f   %s %4.2f@,"
        r.dr_scenario.Scenario.scen_name
        (bar 20 (get_sem r))
        (get_sem r)
        (bar 20 (get_ric r))
        (get_ric r))
    results;
  let avg get =
    match results with
    | [] -> 0.
    | _ ->
        List.fold_left (fun acc r -> acc +. get r) 0. results
        /. float_of_int (List.length results)
  in
  Fmt.pf ppf "%-10s %s %4.2f   %s %4.2f@,@]" "ALL"
    (bar 20 (avg get_sem)) (avg get_sem)
    (bar 20 (avg get_ric)) (avg get_ric)

let pp_fig6 ppf results =
  pp_measure ~title:"Figure 6: average precision"
    ~get_sem:(fun r -> r.dr_sem_precision)
    ~get_ric:(fun r -> r.dr_ric_precision)
    ppf results

let pp_fig7 ppf results =
  pp_measure ~title:"Figure 7: average recall"
    ~get_sem:(fun r -> r.dr_sem_recall)
    ~get_ric:(fun r -> r.dr_ric_recall)
    ppf results

let pp_cases ppf r =
  Fmt.pf ppf "@[<v>%s cases:@," r.dr_scenario.Scenario.scen_name;
  List.iter
    (fun c ->
      let m = match c.cr_method with Semantic -> "sem" | Ric_based -> "ric" in
      Fmt.pf ppf "  %-28s %-4s |P|=%2d hits=%d P=%4.2f R=%4.2f (%.3fs)@,"
        c.cr_case m c.cr_outcome.Measures.n_generated
        c.cr_outcome.Measures.n_hits c.cr_outcome.Measures.precision
        c.cr_outcome.Measures.recall c.cr_seconds)
    r.dr_cases;
  Fmt.pf ppf "@]"
