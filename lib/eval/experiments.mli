(** Experiment driver: runs both methods over scenarios and regenerates
    the paper's Table 1 and Figures 6/7. *)

type method_kind = Semantic | Ric_based

type case_result = {
  cr_case : string;
  cr_method : method_kind;
  cr_outcome : Measures.outcome;
  cr_seconds : float;  (** wall-clock mapping-generation time *)
}

type domain_result = {
  dr_scenario : Scenario.t;
  dr_cases : case_result list;
  dr_sem_precision : float;
  dr_sem_recall : float;
  dr_ric_precision : float;
  dr_ric_recall : float;
  dr_sem_seconds : float;  (** total semantic generation time, all cases *)
  dr_ric_seconds : float;
}

val semantic_options : Smg_core.Discover.options
(** Options used for the semantic method in experiments: strict partOf
    filtering on, defaults otherwise. *)

val presentation_window : float
(** Candidates scored within this window of the best are counted as the
    method's output [P]. *)

val run_method :
  method_kind -> Scenario.t -> Scenario.case -> Smg_cq.Mapping.t list
(** Generate candidate mappings for one case. The semantic method keeps
    its ranked non-trivial candidates up to the score of the first
    benchmark-quality tier; the RIC method returns all candidates. *)

val run_semantic_bounded :
  ?budget:Smg_robust.Budget.t ->
  ?pool:Smg_parallel.Pool.t ->
  Scenario.t ->
  Scenario.case ->
  Smg_core.Discover.outcome
(** The semantic method under a resource budget: candidates are filtered
    through the presentation window as in {!run_method}, diagnostics and
    the exactness flag pass through from
    {!Smg_core.Discover.discover_bounded}. With a [pool] the per-CSG
    searches fan out across its domains; the ranked output is identical
    for any domain count. *)

val run_case : Scenario.t -> Scenario.case -> case_result list
(** Both methods on one case. *)

val run : Scenario.t -> domain_result
val run_all : Scenario.t list -> domain_result list

type redundancy = {
  rd_ric_total : int;       (** RIC candidates across the domain's cases *)
  rd_ric_equivalent : int;  (** … logically equivalent to a semantic candidate *)
  rd_ric_subsumed : int;    (** … strictly implied by a semantic candidate *)
}

val redundancy : Scenario.t -> redundancy
(** How much of the RIC baseline's output the semantic method already
    covers, decided by chase-based tgd implication
    ({!Smg_verify.Mapverify}). *)

val pp_redundancy : Format.formatter -> (Scenario.t * redundancy) list -> unit

val pp_table1 : Format.formatter -> domain_result list -> unit
(** The Table 1 reproduction: per schema — #tables, associated CM,
    #class-like nodes in CM, #mappings tested, semantic time (s). *)

val pp_fig6 : Format.formatter -> domain_result list -> unit
(** Average precision per domain, both methods (Figure 6). *)

val pp_fig7 : Format.formatter -> domain_result list -> unit
(** Average recall per domain (Figure 7). *)

val pp_cases : Format.formatter -> domain_result -> unit
(** Per-case breakdown, for debugging and EXPERIMENTS.md. *)
