(** Instance-level witnesses: empirical confirmation that a discovered
    mapping and the benchmark mapping produce the same data.

    Symbolic equivalence ({!Smg_cq.Mapping.same_under}) is checked up to
    a chase bound; this module complements it by *executing* both
    mappings' source queries over a synthesized source instance that
    satisfies the schema's keys and RICs, and comparing the answer sets.
    Disagreement on a witness instance is definitive evidence that two
    mappings are different; agreement on generated instances is strong
    (not conclusive) evidence they coincide. *)

val populate :
  ?rows_per_table:int ->
  ?seed:int ->
  Smg_relational.Schema.t ->
  Smg_relational.Instance.t
(** Generate an instance: each table is seeded with rows of pooled
    constants (so joins have matches), then dangling references are
    repaired round by round — each missing referenced row is inserted
    with labelled nulls outside the referenced columns, probing a hash
    index per RIC — so referential integrity holds. The result is a
    deterministic function of [seed] (default 42); keys hold because
    each row's key is distinct by construction. *)

val populate_cached :
  ?rows_per_table:int ->
  ?seed:int ->
  Smg_relational.Schema.t ->
  Smg_relational.Instance.t
(** {!populate}, memoized process-wide by (schema digest, rows, seed)
    under a mutex — the CLI witness path and the HTTP registry share
    one generated instance per key instead of rebuilding it every
    invocation. Callers must not mutate the result. *)

type verdict = {
  w_case : string;
  w_agree : bool;       (** discovered answers = benchmark answers *)
  w_discovered : int;   (** answer-set size of the discovered mapping *)
  w_benchmark : int;
}

val check_case :
  ?rows_per_table:int ->
  ?seed:int ->
  Scenario.t ->
  Scenario.case ->
  verdict option
(** Execute the *best hit* among the semantic method's candidates (the
    one matching the benchmark) and the benchmark itself over a
    generated source instance; [None] when the method produced no hit
    for this case. *)

val check_scenario : ?seed:int -> Scenario.t -> verdict list
val pp_verdict : Format.formatter -> verdict -> unit
