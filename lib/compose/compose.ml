module Budget = Smg_robust.Budget
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Dependency = Smg_cq.Dependency
module Sotgd = Smg_cq.Sotgd

type result = {
  c_clauses : Sotgd.t list;
  c_plain : Dependency.tgd list;
  c_residual : (Sotgd.t * string) list;
  c_exec : Dependency.tgd list;
  c_exact : bool;
  c_dropped : int;
  c_budget : Budget.reason option;
}

exception Out_of_budget of Budget.reason

let tick budget =
  match budget with
  | None -> ()
  | Some b ->
      if not (Budget.tick b) then
        raise (Out_of_budget (Option.get (Budget.exhausted b)))

(* Rename hop-2 function symbols away from hop-1's: fresh copies of a
   hop-1 clause share function symbols on purpose (that is how
   unification re-identifies two copies when the data forces it), so an
   accidental name collision between the hops would wrongly merge
   unrelated witnesses. *)
let rename_functions_apart ~used sos =
  let renamed = Hashtbl.create 8 in
  let fresh f =
    match Hashtbl.find_opt renamed f with
    | Some f' -> f'
    | None ->
        let rec go i =
          let cand = Printf.sprintf "%s_h%d" f i in
          if Hashtbl.mem used cand then go (i + 1) else cand
        in
        let f' = if Hashtbl.mem used f then go 2 else f in
        Hashtbl.replace used f' ();
        Hashtbl.replace renamed f f';
        f'
  in
  let rec term (t : Sotgd.term) =
    match t with
    | Sotgd.TVar _ | Sotgd.TCst _ -> t
    | Sotgd.TApp (f, args) -> Sotgd.TApp (fresh f, List.map term args)
  in
  List.map
    (fun (so : Sotgd.t) ->
      {
        so with
        Sotgd.so_rhs =
          List.map
            (fun (s : Sotgd.satom) ->
              { s with Sotgd.s_args = List.map term s.Sotgd.s_args })
            so.Sotgd.so_rhs;
      })
    sos

(* Does the term contain a function application? Premise variables of
   the first hop may be bound to constants during unification, but a
   binding to an application would put a Skolem term — a labelled
   null — into the composed premise; source instances are ground, so
   such a branch is unsatisfiable and is dropped. *)
let has_app (t : Sotgd.term) =
  match t with
  | Sotgd.TVar _ | Sotgd.TCst _ -> false
  | Sotgd.TApp _ -> true

let first_order_atom (s : Sotgd.satom) =
  if List.exists has_app s.Sotgd.s_args then None
  else Some (Sotgd.atom_of_satom s)

let dedup_atoms atoms =
  List.fold_left
    (fun acc a -> if List.exists (Atom.equal a) acc then acc else a :: acc)
    [] atoms
  |> List.rev

(* Core the composed premise: keep exactly the variables the conclusion
   needs (including Skolem arguments) as the head, and fold away
   redundant joins introduced by overlapping hop-1 copies. *)
let minimize_lhs ~rhs lhs =
  let needed =
    List.concat_map
      (fun (s : Sotgd.satom) -> List.concat_map Sotgd.term_vars s.Sotgd.s_args)
      rhs
  in
  let lhs_vars = Atom.vars_of_list lhs in
  let head =
    List.sort_uniq compare (List.filter (fun x -> List.mem x lhs_vars) needed)
    |> List.map (fun x -> Atom.Var x)
  in
  (Query.minimize (Query.make ~name:"lhs" ~head lhs)).Query.body

(* One hop-2 clause against the Skolemized hop-1 set: resolve every
   premise atom of [chi] against the conclusion of a fresh copy of some
   hop-1 clause, backtracking over all choices. Fresh copies rename
   variables but keep function symbols, so two copies collapse exactly
   when unification equates their Skolem applications. *)
let resolve_clause ?budget ~so12 ~emit ~drop (chi : Sotgd.t) =
  let copies = ref 0 in
  let chi_lhs = List.map Sotgd.satom_of_atom chi.Sotgd.so_lhs in
  let rec go subst acc_lhs = function
    | [] -> begin
        (* premise: the chosen hop-1 copies' premises under the unifier *)
        let premise =
          List.map (Sotgd.apply_satom subst)
            (List.map Sotgd.satom_of_atom acc_lhs)
        in
        match
          List.fold_left
            (fun acc s ->
              match (acc, first_order_atom s) with
              | Some atoms, Some a -> Some (a :: atoms)
              | _, _ -> None)
            (Some []) premise
        with
        | None -> drop ()
        | Some atoms ->
            let lhs = dedup_atoms (List.rev atoms) in
            let rhs = List.map (Sotgd.apply_satom subst) chi.Sotgd.so_rhs in
            if lhs = [] then drop ()
            else
              let lhs = minimize_lhs ~rhs lhs in
              emit { chi with Sotgd.so_lhs = lhs; Sotgd.so_rhs = rhs }
      end
    | a :: rest ->
        List.iter
          (fun (sigma : Sotgd.t) ->
            incr copies;
            let sigma =
              Sotgd.rename_apart ~suffix:(Printf.sprintf "!%d" !copies) sigma
            in
            List.iter
              (fun r ->
                tick budget;
                match Sotgd.unify_satoms subst a r with
                | Some subst' ->
                    go subst' (acc_lhs @ sigma.Sotgd.so_lhs) rest
                | None -> ())
              sigma.Sotgd.so_rhs)
          so12
  in
  go Sotgd.subst_empty [] chi_lhs

let compose ?budget ?(max_clauses = 256) ~m12 ~m23 () =
  let so12 = Sotgd.skolemize_set m12 in
  (* Hop-2 conclusions keep their plain existentials: they are never
     unified against, so Skolemizing them would only manufacture nested
     terms the presentation would have to undo again. Pre-existing
     [sk!] variables still decode to the applications they denote. *)
  let so23 = List.map Sotgd.of_tgd m23 in
  let so23 =
    let used = Hashtbl.create 16 in
    List.iter
      (fun so -> List.iter (fun f -> Hashtbl.replace used f ()) (Sotgd.functions so))
      so12;
    rename_functions_apart ~used so23
  in
  let clauses = ref [] in
  let n_clauses = ref 0 in
  let dropped = ref 0 in
  let truncated = ref false in
  let budget_hit = ref None in
  let emit so =
    if !n_clauses >= max_clauses then truncated := true
    else begin
      let canon = Sotgd.canonical so in
      if not (List.exists (fun (_, c) -> Sotgd.equal c canon) !clauses) then begin
        let named =
          { so with Sotgd.so_name = Printf.sprintf "%s.%d" so.Sotgd.so_name !n_clauses }
        in
        clauses := (named, canon) :: !clauses;
        incr n_clauses
      end
    end
  in
  let drop () = incr dropped in
  (try
     List.iter
       (fun chi ->
         (* hop-2 clauses are renamed apart from every hop-1 copy *)
         let chi = Sotgd.rename_apart ~suffix:"?2" chi in
         resolve_clause ?budget ~so12 ~emit ~drop chi)
       so23
   with Out_of_budget r -> budget_hit := Some r);
  let clauses = List.rev_map fst !clauses in
  let { Sotgd.ds_plain; ds_residual } = Sotgd.deskolemize clauses in
  {
    c_clauses = clauses;
    c_plain = ds_plain;
    c_residual = ds_residual;
    c_exec = List.map Sotgd.to_exec_tgd clauses;
    c_exact = (not !truncated) && !budget_hit = None;
    c_dropped = !dropped;
    c_budget = !budget_hit;
  }

let pp ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter (fun t -> Fmt.pf ppf "%a@," Dependency.pp_tgd t) r.c_plain;
  List.iter
    (fun (so, reason) ->
      Fmt.pf ppf "%a@,  (second-order: %s)@," Sotgd.pp so reason)
    r.c_residual;
  Fmt.pf ppf "%d clause%s, %d plain, %d residual, %d dropped branch%s%s%s@]"
    (List.length r.c_clauses)
    (if List.length r.c_clauses = 1 then "" else "s")
    (List.length r.c_plain) (List.length r.c_residual) r.c_dropped
    (if r.c_dropped = 1 then "" else "es")
    (if r.c_exact then "" else " (inexact)")
    (match r.c_budget with
    | Some reason -> Fmt.str " [budget: %a]" Budget.pp_reason reason
    | None -> "")
