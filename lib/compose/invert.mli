(** Reversal-based quasi-inverses of s-t tgd sets.

    The reversal of [∀x̄ φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)] is
    [∀x̄,z̄ ψ(x̄,z̄) → ∃ȳ φ(x̄,ȳ)]: exported data is migrated back, and
    the source facts that produced it are recovered up to the
    variables the original mapping never exported (those return as
    existentials). This is the recovery sense of inversion (Arenas,
    Pérez, Riveros, "The recovery of a schema mapping") — reversal
    always yields a recovery, and composing a mapping with its
    reversal round-trips each source fact to a homomorphic image of
    itself. It is not the full quasi-inverse construction: no
    disjunction, no inequality side-conditions. *)

val reverse_tgd : Smg_cq.Dependency.tgd -> Smg_cq.Dependency.tgd
(** Swap premise and conclusion, canonically renaming all variables
    (Skolem-named variables become ordinary ones — the inverse treats
    invented values as opaque). The result is named [inv:<name>]. *)

val quasi_inverse :
  ?prime:string -> Smg_cq.Dependency.tgd list -> Smg_cq.Dependency.tgd list
(** Reverse every tgd and deduplicate. [?prime] appends the given
    suffix to every conclusion predicate, targeting the primed schema
    copy from {!prime_schema} — chained pipelines (A → B → A′) need
    the round-trip target to be a distinct schema. *)

val prime_schema : suffix:string -> Smg_relational.Schema.t -> Smg_relational.Schema.t
(** A copy of the schema with every table (and RIC endpoint) renamed
    by the suffix. *)
