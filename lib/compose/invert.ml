module Schema = Smg_relational.Schema
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency

(* Swap the two sides and canonically rename every variable to [v0,
   v1, …] (first-seen order over the new premise, then the new
   conclusion). The renaming matters: the original conclusion may
   contain [sk!…]-named Skolem variables, which become ordinary
   universal variables of the reversed premise — renaming strips the
   Skolem spelling so neither executor mistakes them for computed
   terms. Variables private to the original premise become existential
   in the reversal (the inverse cannot reconstruct them). *)
let reverse_tgd (t : Dependency.tgd) =
  let tbl = Hashtbl.create 16 in
  let r x =
    match Hashtbl.find_opt tbl x with
    | Some y -> y
    | None ->
        let y = Printf.sprintf "v%d" (Hashtbl.length tbl) in
        Hashtbl.replace tbl x y;
        y
  in
  let rename_atom (a : Atom.t) =
    {
      a with
      Atom.args =
        List.map
          (function Atom.Var x -> Atom.Var (r x) | Atom.Cst _ as c -> c)
          a.Atom.args;
    }
  in
  let lhs = List.map rename_atom t.Dependency.rhs in
  let rhs = List.map rename_atom t.Dependency.lhs in
  Dependency.tgd ~name:("inv:" ^ t.Dependency.tgd_name) ~lhs rhs

let prime_table suffix (tb : Schema.table) =
  { tb with Schema.tbl_name = tb.Schema.tbl_name ^ suffix }

let prime_schema ~suffix (s : Schema.t) =
  Schema.make
    ~name:(s.Schema.schema_name ^ suffix)
    (List.map (prime_table suffix) s.Schema.tables)
    (List.map
       (fun (rc : Schema.ric) ->
         {
           rc with
           Schema.from_table = rc.Schema.from_table ^ suffix;
           Schema.to_table = rc.Schema.to_table ^ suffix;
         })
       s.Schema.rics)

let prime_rhs suffix (t : Dependency.tgd) =
  {
    t with
    Dependency.rhs =
      List.map
        (fun (a : Atom.t) -> { a with Atom.pred = a.Atom.pred ^ suffix })
        t.Dependency.rhs;
  }

let quasi_inverse ?prime tgds =
  let reversed = List.map reverse_tgd tgds in
  let reversed =
    match prime with
    | None -> reversed
    | Some suffix -> List.map (prime_rhs suffix) reversed
  in
  (* reversal of near-duplicate candidates collapses often; dedup by
     the canonical CQ-pair reading *)
  List.fold_left
    (fun acc t ->
      if List.exists (Dependency.equal_tgd t) acc then acc else t :: acc)
    [] reversed
  |> List.rev
