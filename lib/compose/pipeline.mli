(** Multi-hop mapping pipelines: chained composition, sequential and
    one-shot execution, and the end-to-end equivalence verdict.

    A pipeline is a list of hops [A → B → … → Z], each carrying its
    schemas and tgd set. {!compose_chain} folds {!Compose.compose} over
    the hops into a single [A → Z] mapping; {!verify} materializes the
    chain both ways — hop by hop with {!Smg_exchange.Engine}, and in
    one shot with the composed mapping — and compares the results with
    {!Smg_verify.Equiv} hom-equivalence.

    Intermediate semantics are egd-free: composition is defined over
    the tgds alone, so the sequential leg strips key constraints from
    every intermediate schema (a mid-pipeline key merge would be
    composition under target constraints, outside the FKPT algebra).
    The final target's keys apply to both legs. *)

type hop = {
  h_source : Smg_relational.Schema.t;
  h_target : Smg_relational.Schema.t;
  h_tgds : Smg_cq.Dependency.tgd list;
}

type error = Exhausted of Smg_robust.Budget.reason | Failed of string

val strip_keys : Smg_relational.Schema.t -> Smg_relational.Schema.t

val check : hop list -> string list
(** Compatibility warnings: predicates a hop reads that the previous
    hop's target schema does not provide. *)

val compose_chain :
  ?budget:Smg_robust.Budget.t ->
  ?max_clauses:int ->
  hop list ->
  Compose.result
(** Left fold of binary composition over the chain (at least two
    hops); exactness, dropped-branch counts, and budget exhaustion
    accumulate across the steps. *)

val sequential :
  ?budget:Smg_robust.Budget.t ->
  ?pool:Smg_parallel.Pool.t ->
  ?laconic:bool ->
  hop list ->
  Smg_relational.Instance.t ->
  (Smg_relational.Instance.t, error) result
(** Materialize hop by hop, feeding each hop's target instance to the
    next hop's plans. With a [pool], each hop's initial scan pass fans
    out across its domains ({!Smg_exchange.Engine.run}). *)

val one_shot :
  ?budget:Smg_robust.Budget.t ->
  ?pool:Smg_parallel.Pool.t ->
  ?laconic:bool ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  exec:Smg_cq.Dependency.tgd list ->
  Smg_relational.Instance.t ->
  (Smg_relational.Instance.t, error) result
(** Execute a composed mapping's executable clauses directly. *)

type verdict = {
  vd_equiv : bool;  (** one-shot ≡hom sequential *)
  vd_seq_seconds : float;
  vd_comp_seconds : float;
  vd_seq_tuples : int;
  vd_comp_tuples : int;
}

val verify :
  ?budget:Smg_robust.Budget.t ->
  ?pool:Smg_parallel.Pool.t ->
  ?laconic:bool ->
  hop list ->
  exec:Smg_cq.Dependency.tgd list ->
  Smg_relational.Instance.t ->
  (verdict, error) result
(** Run both legs over the given source instance and compare. Both legs
    use the [pool] when given; the verdict is unaffected by the domain
    count (engine outputs are hom-equivalent either way). *)

val pp_verdict : Format.formatter -> verdict -> unit
