(** Composition of schema mappings (Fagin–Kolaitis–Popa–Tan).

    Given s-t tgd sets [M12 : A → B] and [M23 : B → C], computes a
    single mapping [A → C] whose exchange result is homomorphically
    equivalent to running the two exchanges in sequence: Skolemize
    [M12] ({!Smg_cq.Sotgd.skolemize_set}), resolve every premise atom
    of each [M23] clause against the conclusions of fresh copies of
    [M12] clauses by first-order unification (backtracking over all
    choices), and keep the branches whose composed premise stays
    first-order — a premise variable unified with a Skolem application
    would demand a labelled null inside the (ground) source instance,
    so those branches are dropped as unsatisfiable.

    The result is reported in two forms: de-Skolemized plain st-tgds
    where that is sound, residual second-order clauses (with the
    reason) where it is not, and an executable encoding of every clause
    for {!Smg_exchange.Engine}. *)

type result = {
  c_clauses : Smg_cq.Sotgd.t list;  (** composed clauses, deduplicated *)
  c_plain : Smg_cq.Dependency.tgd list;
      (** clauses equivalent to plain st-tgds (presentation form) *)
  c_residual : (Smg_cq.Sotgd.t * string) list;
      (** genuinely second-order clauses, with the reason *)
  c_exec : Smg_cq.Dependency.tgd list;
      (** every clause in the executable [sk!] encoding — execute this
          set, never [c_plain], so cross-clause Skolem merging is kept *)
  c_exact : bool;
      (** false when the clause cap or the budget truncated the search *)
  c_dropped : int;  (** unification branches dropped as null-joins *)
  c_budget : Smg_robust.Budget.reason option;
}

val compose :
  ?budget:Smg_robust.Budget.t ->
  ?max_clauses:int ->
  m12:Smg_cq.Dependency.tgd list ->
  m23:Smg_cq.Dependency.tgd list ->
  unit ->
  result
(** Compose two tgd sets. Every unification attempt ticks [budget]; on
    exhaustion the clauses found so far are returned with
    [c_exact = false] and [c_budget] set. [max_clauses] (default 256)
    caps the composed clause count the same way. *)

val pp : Format.formatter -> result -> unit
