module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Dependency = Smg_cq.Dependency
module Budget = Smg_robust.Budget
module Engine = Smg_exchange.Engine
module Obs = Smg_exchange.Obs
module Equiv = Smg_verify.Equiv

type hop = {
  h_source : Schema.t;
  h_target : Schema.t;
  h_tgds : Dependency.tgd list;
}

type error = Exhausted of Budget.reason | Failed of string

let strip_keys (s : Schema.t) =
  Schema.make ~name:s.Schema.schema_name
    (List.map (fun tb -> { tb with Schema.key = [] }) s.Schema.tables)
    s.Schema.rics

let check hops =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  let rec go = function
    | h1 :: (h2 :: _ as rest) ->
        let mid_tables =
          List.map (fun tb -> tb.Schema.tbl_name) h1.h_target.Schema.tables
        in
        List.iter
          (fun (t : Dependency.tgd) ->
            List.iter
              (fun (a : Smg_cq.Atom.t) ->
                if not (List.mem a.Smg_cq.Atom.pred mid_tables) then
                  warn
                    "tgd %s reads %s, which the previous hop's target (%s) \
                     does not provide"
                    t.Dependency.tgd_name a.Smg_cq.Atom.pred
                    h1.h_target.Schema.schema_name)
              t.Dependency.lhs)
          h2.h_tgds;
        go rest
    | _ -> ()
  in
  go hops;
  List.rev !warnings

(* Composition is defined over the tgds alone (egd-free intermediate
   semantics): mid-pipeline key merges would be composition under
   target constraints, which the FKPT algorithm does not model. The
   sequential leg therefore strips keys from every intermediate
   schema; the final target's keys apply to both legs. *)
let compose_chain ?budget ?max_clauses hops =
  match hops with
  | [] | [ _ ] -> invalid_arg "compose_chain: need at least two hops"
  | h1 :: rest ->
      let extra_dropped = ref 0 in
      let extra_inexact = ref false in
      let extra_budget = ref None in
      let note (r : Compose.result) =
        extra_dropped := !extra_dropped + r.Compose.c_dropped;
        if not r.Compose.c_exact then extra_inexact := true;
        match r.Compose.c_budget with
        | Some _ as s when !extra_budget = None -> extra_budget := s
        | _ -> ()
      in
      let rec go m12 = function
        | [] -> assert false
        | [ h ] ->
            let r = Compose.compose ?budget ?max_clauses ~m12 ~m23:h.h_tgds () in
            {
              r with
              Compose.c_exact = r.Compose.c_exact && not !extra_inexact;
              c_dropped = r.Compose.c_dropped + !extra_dropped;
              c_budget =
                (match r.Compose.c_budget with
                | Some _ as s -> s
                | None -> !extra_budget);
            }
        | h :: tl ->
            let r = Compose.compose ?budget ?max_clauses ~m12 ~m23:h.h_tgds () in
            note r;
            go r.Compose.c_exec tl
      in
      go h1.h_tgds rest

let sequential ?budget ?pool ?(laconic = false) hops inst =
  let rec go inst = function
    | [] -> Ok inst
    | h :: tl ->
        let target = if tl = [] then h.h_target else strip_keys h.h_target in
        (match
           Engine.run_bounded ?budget ?pool ~laconic ~source:h.h_source ~target
             ~mappings:h.h_tgds inst
         with
        | Engine.Complete rep -> go rep.Engine.r_target tl
        | Engine.Budget_exhausted (r, _) -> Error (Exhausted r)
        | Engine.Failed msg -> Error (Failed msg))
  in
  go inst hops

let one_shot ?budget ?pool ?(laconic = false) ~source ~target ~exec inst =
  match
    Engine.run_bounded ?budget ?pool ~laconic ~source ~target ~mappings:exec
      inst
  with
  | Engine.Complete rep -> Ok rep.Engine.r_target
  | Engine.Budget_exhausted (r, _) -> Error (Exhausted r)
  | Engine.Failed msg -> Error (Failed msg)

type verdict = {
  vd_equiv : bool;
  vd_seq_seconds : float;
  vd_comp_seconds : float;
  vd_seq_tuples : int;
  vd_comp_tuples : int;
}

let verify ?budget ?pool ?laconic hops ~exec inst =
  match hops with
  | [] -> invalid_arg "verify: no hops"
  | first :: _ ->
      let last = List.nth hops (List.length hops - 1) in
      let seq, seq_s =
        Obs.time (fun () -> sequential ?budget ?pool ?laconic hops inst)
      in
      (match seq with
      | Error e -> Error e
      | Ok seq ->
          let comp, comp_s =
            Obs.time (fun () ->
                one_shot ?budget ?pool ?laconic ~source:first.h_source
                  ~target:last.h_target ~exec inst)
          in
          (match comp with
          | Error e -> Error e
          | Ok comp ->
              Ok
                {
                  vd_equiv = Equiv.equivalent seq comp;
                  vd_seq_seconds = seq_s;
                  vd_comp_seconds = comp_s;
                  vd_seq_tuples = Instance.total_tuples seq;
                  vd_comp_tuples = Instance.total_tuples comp;
                }))

let pp_verdict ppf v =
  Fmt.pf ppf
    "@[<v>sequential: %d tuples in %.3fs@,composed:   %d tuples in %.3fs@,\
     hom-equivalent: %b@]"
    v.vd_seq_tuples v.vd_seq_seconds v.vd_comp_tuples v.vd_comp_seconds
    v.vd_equiv
