(* Flat columnar tuple storage over interned int codes, hash-partitioned
   into shards.

   One relation = one row-major int arena (insertion-ordered, append
   only) + one liveness byte per row + [nshards] disjoint membership
   tables. A tuple's owning shard is [hash mod nshards], so concurrent
   writers configured around disjoint shard sets never contend on a
   membership table, and dedup probes touch exactly one shard. The arena
   itself is shared: iteration order (and therefore everything downstream
   that fires triggers in scan order) is independent of the shard count.

   Membership tables are open-addressing with linear probing; slots hold
   [row + 1], [0] for empty, [-1] for a tombstone. Column-subset indexes
   are hash buckets: bucket key is the hash of the probed cells, so a
   bucket may mix distinct keys — callers must re-verify equality
   positions on each candidate (they need the liveness check anyway). *)

type shard = {
  mutable sh_slots : int array;
  mutable sh_live : int;
  mutable sh_used : int; (* live + tombstones, drives resize *)
  mutable sh_rot : int;  (* rows removed via this shard, never reset *)
}

type index = {
  x_cols : int array;
  x_tbl : (int, int list ref) Hashtbl.t; (* cell hash -> rows, newest first *)
}

type t = {
  cs_arity : int;
  cs_nshards : int;
  mutable cs_data : int array;
  mutable cs_rows : int; (* rows ever appended, live or dead *)
  mutable cs_cap : int;
  mutable cs_live : Bytes.t;
  cs_shards : shard array;
  mutable cs_count : int; (* live rows *)
  mutable cs_dead : int;
  mutable cs_indexes : index list;
  mutable cs_ix_dead : int; (* removals since last index rebuild *)
  cs_tracked : bool;
}

let fnv_offset = 0x1435cb3777f7f
let fnv_prime = 0x100000001b3

let hash_cells (cells : int array) =
  let h = ref fnv_offset in
  for i = 0 to Array.length cells - 1 do
    h := (!h lxor Array.unsafe_get cells i) * fnv_prime
  done;
  !h land max_int

let hash_row t row =
  let base = row * t.cs_arity in
  let h = ref fnv_offset in
  for i = 0 to t.cs_arity - 1 do
    h := (!h lxor Array.unsafe_get t.cs_data (base + i)) * fnv_prime
  done;
  !h land max_int

(* hash of a column subset of a row, in [cols] order — must agree with
   [hash_cells] applied to the extracted cells *)
let hash_row_cols t row (cols : int array) =
  let base = row * t.cs_arity in
  let h = ref fnv_offset in
  for i = 0 to Array.length cols - 1 do
    h :=
      (!h lxor Array.unsafe_get t.cs_data (base + Array.unsafe_get cols i))
      * fnv_prime
  done;
  !h land max_int

let next_pow2 n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?(tracked = true) ~shards ~arity hint =
  let shards = max 1 shards in
  let cap = max 16 hint in
  let per_shard = next_pow2 (max 16 (2 * (hint / shards + 1))) in
  {
    cs_arity = arity;
    cs_nshards = shards;
    cs_data = Array.make (cap * max 1 arity) 0;
    cs_rows = 0;
    cs_cap = cap;
    cs_live = Bytes.make cap '\001';
    cs_shards =
      Array.init shards (fun _ ->
          {
            sh_slots = Array.make per_shard 0;
            sh_live = 0;
            sh_used = 0;
            sh_rot = 0;
          });
    cs_count = 0;
    cs_dead = 0;
    cs_indexes = [];
    cs_ix_dead = 0;
    cs_tracked = tracked;
  }

let arity t = t.cs_arity
let nshards t = t.cs_nshards
let count t = t.cs_count
let dead t = t.cs_dead
let rows t = t.cs_rows
let tracked t = t.cs_tracked
let data t = t.cs_data
let is_live t row = Bytes.unsafe_get t.cs_live row <> '\000'
let get t row j = t.cs_data.((row * t.cs_arity) + j)

let row_cells t row =
  Array.sub t.cs_data (row * t.cs_arity) t.cs_arity

let shard_live t = Array.map (fun s -> s.sh_live) t.cs_shards
let shard_rot t = Array.map (fun s -> s.sh_rot) t.cs_shards

(* ---- arena -------------------------------------------------------------- *)

let grow t =
  let ncap = 2 * t.cs_cap in
  let nd = Array.make (ncap * max 1 t.cs_arity) 0 in
  Array.blit t.cs_data 0 nd 0 (t.cs_rows * t.cs_arity);
  t.cs_data <- nd;
  let nl = Bytes.make ncap '\001' in
  Bytes.blit t.cs_live 0 nl 0 t.cs_rows;
  t.cs_live <- nl;
  t.cs_cap <- ncap

let append_row t cells =
  if t.cs_rows >= t.cs_cap then grow t;
  let row = t.cs_rows in
  Array.blit cells 0 t.cs_data (row * t.cs_arity) t.cs_arity;
  Bytes.unsafe_set t.cs_live row '\001';
  t.cs_rows <- row + 1;
  t.cs_count <- t.cs_count + 1;
  List.iter
    (fun ix ->
      let h = hash_row_cols t row ix.x_cols in
      match Hashtbl.find_opt ix.x_tbl h with
      | Some l -> l := row :: !l
      | None -> Hashtbl.replace ix.x_tbl h (ref [ row ]))
    t.cs_indexes;
  row

(* ---- membership --------------------------------------------------------- *)

let row_eq t row (cells : int array) =
  let base = row * t.cs_arity in
  let rec go i =
    i >= t.cs_arity
    || Array.unsafe_get t.cs_data (base + i) = Array.unsafe_get cells i
       && go (i + 1)
  in
  go 0

let shard_of_hash t h = t.cs_shards.(h mod t.cs_nshards)

let rehash_shard t sh =
  let old = sh.sh_slots in
  let ncap =
    next_pow2 (max 16 (if sh.sh_live * 4 > Array.length old * 3 then
                         2 * Array.length old
                       else Array.length old))
  in
  sh.sh_slots <- Array.make ncap 0;
  sh.sh_used <- 0;
  let mask = ncap - 1 in
  Array.iter
    (fun slot ->
      if slot > 0 then begin
        let row = slot - 1 in
        let h = hash_row t row in
        let i = ref (h land mask) in
        while sh.sh_slots.(!i) <> 0 do
          i := (!i + 1) land mask
        done;
        sh.sh_slots.(!i) <- slot;
        sh.sh_used <- sh.sh_used + 1
      end)
    old

(* find the slot index holding [cells], or [- insertion_point - 1] *)
let shard_lookup t sh h cells =
  let mask = Array.length sh.sh_slots - 1 in
  let i = ref (h land mask) in
  let free = ref (-1) in
  let res = ref 0 in
  (try
     while true do
       let slot = Array.unsafe_get sh.sh_slots !i in
       if slot = 0 then begin
         res := - (if !free >= 0 then !free else !i) - 1;
         raise Exit
       end
       else if slot = -1 then begin
         if !free < 0 then free := !i
       end
       else if row_eq t (slot - 1) cells then begin
         res := !i;
         raise Exit
       end;
       i := (!i + 1) land mask
     done
   with Exit -> ());
  !res

let mem t cells =
  if not t.cs_tracked then begin
    (* untracked stores (trusted duplicate-free sources) have empty
       membership tables; fall back to a scan *)
    let rec go row =
      row < t.cs_rows
      && ((is_live t row && row_eq t row cells) || go (row + 1))
    in
    go 0
  end
  else
    let h = hash_cells cells in
    shard_lookup t (shard_of_hash t h) h cells >= 0

let find_row t cells =
  if not t.cs_tracked then invalid_arg "Colstore.find_row: untracked store";
  let h = hash_cells cells in
  let sh = shard_of_hash t h in
  let s = shard_lookup t sh h cells in
  if s >= 0 then Some (sh.sh_slots.(s) - 1) else None

let insert t cells =
  if not t.cs_tracked then invalid_arg "Colstore.insert: untracked store";
  let h = hash_cells cells in
  let sh = shard_of_hash t h in
  let s = shard_lookup t sh h cells in
  if s >= 0 then None
  else begin
    let at = -s - 1 in
    let row = append_row t cells in
    let was_free = sh.sh_slots.(at) = -1 in
    sh.sh_slots.(at) <- row + 1;
    sh.sh_live <- sh.sh_live + 1;
    if not was_free then sh.sh_used <- sh.sh_used + 1;
    if sh.sh_used * 4 > Array.length sh.sh_slots * 3 then rehash_shard t sh;
    Some row
  end

let remove t cells =
  if not t.cs_tracked then invalid_arg "Colstore.remove: untracked store";
  let h = hash_cells cells in
  let sh = shard_of_hash t h in
  let s = shard_lookup t sh h cells in
  if s < 0 then None
  else begin
    let row = sh.sh_slots.(s) - 1 in
    sh.sh_slots.(s) <- -1;
    sh.sh_live <- sh.sh_live - 1;
    sh.sh_rot <- sh.sh_rot + 1;
    Bytes.unsafe_set t.cs_live row '\000';
    t.cs_count <- t.cs_count - 1;
    t.cs_dead <- t.cs_dead + 1;
    if t.cs_indexes <> [] then t.cs_ix_dead <- t.cs_ix_dead + 1;
    Some row
  end

(* adopt a pre-coded flat row-major arena (untracked bulk load: the
   rows are trusted duplicate-free, so no membership build) *)
let of_flat ~shards ~arity ~rows:n data =
  let shards = max 1 shards in
  let ar = max 1 arity in
  let cap = max 16 n in
  let data =
    if Array.length data >= cap * ar then data
    else begin
      let nd = Array.make (cap * ar) 0 in
      Array.blit data 0 nd 0 (n * ar);
      nd
    end
  in
  {
    cs_arity = arity;
    cs_nshards = shards;
    cs_data = data;
    cs_rows = n;
    cs_cap = cap;
    cs_live = Bytes.make cap '\001';
    cs_shards =
      Array.init shards (fun _ ->
          { sh_slots = Array.make 16 0; sh_live = 0; sh_used = 0; sh_rot = 0 });
    cs_count = n;
    cs_dead = 0;
    cs_indexes = [];
    cs_ix_dead = 0;
    cs_tracked = false;
  }

let of_rows ?(tracked = true) ~shards ~arity rows =
  let t = create ~tracked ~shards ~arity (List.length rows) in
  List.iter
    (fun cells ->
      if tracked then ignore (insert t cells)
      else ignore (append_row t cells))
    rows;
  t

(* ---- iteration ---------------------------------------------------------- *)

let iter_live t f =
  for row = 0 to t.cs_rows - 1 do
    if Bytes.unsafe_get t.cs_live row <> '\000' then f row
  done

let fold_live t f acc =
  let acc = ref acc in
  for row = 0 to t.cs_rows - 1 do
    if Bytes.unsafe_get t.cs_live row <> '\000' then acc := f !acc row
  done;
  !acc

(* ---- column-subset indexes ---------------------------------------------- *)

let build_index t cols =
  let ix = { x_cols = cols; x_tbl = Hashtbl.create (max 64 t.cs_count) } in
  iter_live t (fun row ->
      let h = hash_row_cols t row ix.x_cols in
      match Hashtbl.find_opt ix.x_tbl h with
      | Some l -> l := row :: !l
      | None -> Hashtbl.replace ix.x_tbl h (ref [ row ]));
  ix

let same_cols a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let find_index t cols =
  List.find_opt (fun ix -> same_cols ix.x_cols cols) t.cs_indexes

let ensure_index t cols =
  match find_index t cols with
  | Some ix -> ix
  | None ->
      let ix = build_index t cols in
      t.cs_indexes <- ix :: t.cs_indexes;
      ix

let probe ix (cells : int array) =
  match Hashtbl.find_opt ix.x_tbl (hash_cells cells) with
  | Some l -> !l
  | None -> []

let has_indexes t = t.cs_indexes <> []
let index_rot t = t.cs_ix_dead

let prune_indexes t =
  t.cs_indexes <- List.map (fun ix -> build_index t ix.x_cols) t.cs_indexes;
  t.cs_ix_dead <- 0

(* amortized: rebuild index buckets once tombstones dominate, matching the
   boxed engine's 50%-rot policy *)
let maybe_prune t =
  if t.cs_ix_dead > 64 && t.cs_ix_dead * 2 > max 1 t.cs_count then
    prune_indexes t

let drop_indexes t =
  t.cs_indexes <- [];
  t.cs_ix_dead <- 0
