(** Atomic values stored in relations.

    [VNull n] is a labelled null (marked variable) as used in data
    exchange: two labelled nulls are equal iff their labels are equal,
    and a labelled null never equals a constant. *)

type t =
  | VInt of int
  | VString of string
  | VFloat of float
  | VBool of bool
  | VNull of int

val equal : t -> t -> bool
val compare : t -> t -> int
val is_null : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val fresh_null : unit -> t
(** A labelled null with a process-unique label. *)

val alloc_nulls : int -> int
(** [alloc_nulls n] reserves a block of [n] consecutive labels in one
    counter bump and returns the first; labels [first .. first+n-1] are
    then the caller's to mint as [VNull]. Batched null generation for
    the data-exchange engine. *)

val reset_null_counter : unit -> unit
(** Reset the label source (tests only, for determinism). *)
