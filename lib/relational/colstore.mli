(** Flat columnar tuple storage over interned int codes (see {!Intern}),
    hash-partitioned into disjoint membership shards.

    One value = one relation: an insertion-ordered row-major int arena
    with per-row liveness bytes, [nshards] open-addressing membership
    tables (a tuple's owning shard is [hash mod nshards]), and optional
    column-subset hash indexes. Iteration order is the arena order and
    is independent of the shard count.

    Index buckets are keyed by the {e hash} of the probed cells, so a
    bucket may contain rows whose probed cells differ from the query:
    callers must re-verify equality positions (and liveness, when
    {!dead} is non-zero) on every candidate. *)

type t

type index

val create : ?tracked:bool -> shards:int -> arity:int -> int -> t
(** [create ~shards ~arity hint] makes an empty store sized for [hint]
    rows. [~tracked:false] skips membership tables entirely (for trusted
    duplicate-free source relations): {!insert}/{!remove}/{!find_row}
    are unavailable and {!mem} degrades to a scan. *)

val of_rows : ?tracked:bool -> shards:int -> arity:int -> int array list -> t
(** Build from rows in insertion order. Tracked stores drop duplicates. *)

val of_flat : shards:int -> arity:int -> rows:int -> int array -> t
(** Adopt a pre-coded flat row-major arena of [rows] rows (stride
    [max 1 arity]) without copying — the bulk-load path fed by
    {!Smg_relational.Intern.code_rows}. Untracked, rows trusted
    duplicate-free; the array must hold at least [16 * max 1 arity]
    cells and is owned by the store afterwards. *)

val arity : t -> int
val nshards : t -> int
val count : t -> int
(** Live rows. *)

val dead : t -> int
(** Tombstoned rows still occupying the arena. *)

val rows : t -> int
(** Total arena rows, live and dead. Row ids range over [0 .. rows-1]. *)

val tracked : t -> bool

val data : t -> int array
(** The raw arena; cell [j] of row [r] is [data.(r * arity + j)]. The
    array is replaced on growth — do not cache across inserts. *)

val is_live : t -> int -> bool
val get : t -> int -> int -> int
val row_cells : t -> int -> int array

val shard_live : t -> int array
(** Live tuples owned by each shard. All zeros on untracked stores. *)

val shard_rot : t -> int array
(** Cumulative removals routed through each shard. *)

val insert : t -> int array -> int option
(** [insert t cells] adds the tuple unless already present; returns the
    new row id when inserted. The cell array is copied. *)

val mem : t -> int array -> bool
val find_row : t -> int array -> int option

val remove : t -> int array -> int option
(** Tombstone the tuple in place; returns its row id when found. Index
    buckets keep the row until {!prune_indexes} — probes must filter. *)

val iter_live : t -> (int -> unit) -> unit
val fold_live : t -> ('a -> int -> 'a) -> 'a -> 'a

val ensure_index : t -> int array -> index
(** Index on a column subset (positions in probe order), built over live
    rows and maintained by {!insert}. *)

val find_index : t -> int array -> index option

val probe : index -> int array -> int list
(** Candidate rows whose indexed cells {e hash} like the query cells,
    newest first. Superset of the exact matches — re-verify. *)

val has_indexes : t -> bool
val index_rot : t -> int
val prune_indexes : t -> unit
val maybe_prune : t -> unit
(** Rebuild index buckets once tombstones dominate (amortized O(1)). *)

val drop_indexes : t -> unit
