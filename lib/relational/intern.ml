(* Global value interning: every constant is mapped to a small
   non-negative integer code, and labelled nulls occupy the disjoint
   negative range, so the exchange engine's hot paths (membership,
   hash-join probes, key egds) compare and hash machine integers
   instead of boxed values and printed strings.

   The pool is append-only and process-global: a code, once assigned,
   never changes meaning, so codes can be cached in compiled artifacts
   and compared across engine instances. Writers (interning a new
   constant) serialize on a mutex; readers ([value], [find]) are
   lock-free — the chunked directory never moves a published element,
   the directory pointer and the published size are [Atomic], and every
   chunk cell is written before the size that covers it is released. *)

let chunk_bits = 12
let chunk_size = 1 lsl chunk_bits

(* constant code -> value, chunked so growth never relocates cells *)
let directory : Value.t array array Atomic.t = Atomic.make [||]
let published : int Atomic.t = Atomic.make 0

(* value -> code, writers only *)
let codes : (Value.t, int) Hashtbl.t = Hashtbl.create 1024
let lock = Mutex.create ()

(* ---- null range --------------------------------------------------------- *)

(* label [n] (n >= 0) <-> code [-n - 1]: all nulls are negative, all
   constants non-negative, and both directions are O(1) arithmetic. *)
let null_code n = -n - 1
let is_null_code c = c < 0
let null_label c = -c - 1

(* ---- constants ---------------------------------------------------------- *)

let intern_locked v =
  match Hashtbl.find_opt codes v with
  | Some c -> c
  | None ->
      let c = Atomic.get published in
      let dir = Atomic.get directory in
      let chunk = c lsr chunk_bits in
      let dir =
        if chunk < Array.length dir then dir
        else begin
          let ndir =
            Array.init
              (max 4 (2 * Array.length dir))
              (fun i ->
                if i < Array.length dir then dir.(i)
                else Array.make chunk_size (Value.VNull 0))
          in
          (* published cells live in the chunks, which are shared between
             the old and new directory: swapping the directory is safe *)
          Atomic.set directory ndir;
          ndir
        end
      in
      dir.(chunk).(c land (chunk_size - 1)) <- v;
      Atomic.set published (c + 1);
      Hashtbl.replace codes v c;
      c

let code v =
  match v with
  | Value.VNull n -> null_code n
  | _ ->
      Mutex.lock lock;
      let c = intern_locked v in
      Mutex.unlock lock;
      c

let find v =
  match v with
  | Value.VNull n -> Some (null_code n)
  | _ ->
      Mutex.lock lock;
      let c = Hashtbl.find_opt codes v in
      Mutex.unlock lock;
      c

let value c =
  if c < 0 then Value.VNull (null_label c)
  else if c >= Atomic.get published then
    invalid_arg (Printf.sprintf "Intern.value: unknown code %d" c)
  else (Atomic.get directory).(c lsr chunk_bits).(c land (chunk_size - 1))

(* ---- tuples ------------------------------------------------------------- *)

let code_tuple tup =
  let n = Array.length tup in
  let out = Array.make n 0 in
  Mutex.lock lock;
  for i = 0 to n - 1 do
    out.(i) <-
      (match tup.(i) with
      | Value.VNull k -> null_code k
      | v -> intern_locked v)
  done;
  Mutex.unlock lock;
  out

(* Bulk row interning for store construction: one lock acquisition for
   the whole relation, codes written straight into a fresh row-major
   arena of [rows * arity] cells (capacity at least 16 rows) — the
   shape {!Colstore.of_flat} adopts without copying. *)
let code_rows ~arity tuples =
  let arity = max 1 arity in
  let n = List.length tuples in
  let data = Array.make (max 16 n * arity) 0 in
  Mutex.lock lock;
  let off = ref 0 in
  List.iter
    (fun tup ->
      let m = min arity (Array.length tup) in
      for i = 0 to m - 1 do
        data.(!off + i) <-
          (match tup.(i) with
          | Value.VNull k -> null_code k
          | v -> intern_locked v)
      done;
      off := !off + arity)
    tuples;
  Mutex.unlock lock;
  (n, data)

let find_tuple tup =
  let n = Array.length tup in
  let out = Array.make n 0 in
  Mutex.lock lock;
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       out.(i) <-
         (match tup.(i) with
         | Value.VNull k -> null_code k
         | v -> (
             match Hashtbl.find_opt codes v with
             | Some c -> c
             | None ->
                 ok := false;
                 raise Exit))
     done
   with Exit -> ());
  Mutex.unlock lock;
  if !ok then Some out else None

let decode_tuple tup = Array.map value tup

let pool_size () = Atomic.get published
