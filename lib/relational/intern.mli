(** Global value interning: constants map to non-negative int codes,
    labelled nulls occupy the disjoint negative range. Codes are
    process-global and stable for the lifetime of the process, so they
    may be cached inside compiled plans and columnar stores and compared
    across engine instances. Thread-safe: writers serialize on a mutex,
    readers are lock-free. *)

val code : Value.t -> int
(** [code v] interns [v] and returns its code. Nulls are not stored in
    the pool: [VNull n] maps arithmetically to [-n - 1]. *)

val find : Value.t -> int option
(** [find v] looks up the code of [v] without interning it. Always
    succeeds for nulls. *)

val value : int -> Value.t
(** Inverse of [code]. Raises [Invalid_argument] on a constant code
    that was never issued. *)

val null_code : int -> int
(** [null_code n] is the code of [VNull n]: [-n - 1]. *)

val is_null_code : int -> bool
(** Codes of labelled nulls are exactly the negative codes. *)

val null_label : int -> int
(** [null_label c] recovers [n] from the code of [VNull n]. *)

val code_tuple : Value.t array -> int array
(** Intern every cell of a tuple (single lock acquisition). *)

val code_rows : arity:int -> Value.t array list -> int * int array
(** [code_rows ~arity tuples] interns a whole relation under one lock
    acquisition, returning [(rows, data)] where [data] is a flat
    row-major arena of at least [16 * arity] cells with stride
    [max 1 arity] — the shape {!Colstore.of_flat} adopts directly. *)

val find_tuple : Value.t array -> int array option
(** Code a tuple without interning; [None] if any constant cell is
    unknown to the pool (such a tuple cannot be stored anywhere). *)

val decode_tuple : int array -> Value.t array

val pool_size : unit -> int
(** Number of distinct constants interned so far (nulls excluded). *)
