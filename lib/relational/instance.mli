(** Database instances: named relations holding tuples of {!Value.t}.

    Tuples are positionally aligned with a column-name header. Instances
    are persistent maps; all updates return new instances. *)

type relation = {
  header : string list;
  tuples : Value.t array list;  (** each array has [List.length header] cells *)
}

type t

val empty : t
val of_list : (string * relation) list -> t
val relation : t -> string -> relation option

val relation_or_empty : t -> string -> header:string list -> relation
(** Like {!relation} but a missing table yields an empty relation with
    the given header. *)

val set : t -> string -> relation -> t
val names : t -> string list

val add_tuple : t -> string -> header:string list -> Value.t array -> t
(** Insert a tuple, creating the relation (with [header]) on first use;
    duplicate tuples are kept out (set semantics).
    @raise Invalid_argument on arity mismatch with the existing header. *)

val cardinality : t -> string -> int
val total_tuples : t -> int

val mem_tuple : relation -> Value.t array -> bool

val equal : t -> t -> bool
(** Same non-empty relations with the same tuple sets (headers are not
    compared; tuples are compared as sets, which relations kept through
    {!add_tuple} already are). *)

val project_tuple : relation -> Value.t array -> string list -> Value.t array
(** Reorder/select cells of a tuple of this relation by column names.
    @raise Invalid_argument on an unknown column. *)

val check_keys : Schema.t -> t -> (string * Value.t array * Value.t array) list
(** Key violations: [(table, t1, t2)] pairs agreeing on the key but
    differing elsewhere. *)

val check_rics : Schema.t -> t -> (string * Value.t array) list
(** RIC violations: [(ric_name, dangling_tuple)]. *)

val pp : Format.formatter -> t -> unit
val pp_relation : Format.formatter -> relation -> unit
