type t =
  | VInt of int
  | VString of string
  | VFloat of float
  | VBool of bool
  | VNull of int

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VString x, VString y -> String.equal x y
  | VFloat x, VFloat y -> x = y
  | VBool x, VBool y -> x = y
  | VNull x, VNull y -> x = y
  | (VInt _ | VString _ | VFloat _ | VBool _ | VNull _), _ -> false

let compare = Stdlib.compare
let is_null = function VNull _ -> true | _ -> false

let pp ppf = function
  | VInt i -> Fmt.int ppf i
  | VString s -> Fmt.pf ppf "%S" s
  | VFloat f -> Fmt.float ppf f
  | VBool b -> Fmt.bool ppf b
  | VNull n -> Fmt.pf ppf "_N%d" n

let to_string v = Fmt.str "%a" pp v
let counter = ref 0

let fresh_null () =
  incr counter;
  VNull !counter

let alloc_nulls n =
  if n < 0 then invalid_arg "alloc_nulls";
  let first = !counter + 1 in
  counter := !counter + n;
  first

let reset_null_counter () = counter := 0
