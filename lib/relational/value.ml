type t =
  | VInt of int
  | VString of string
  | VFloat of float
  | VBool of bool
  | VNull of int

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VString x, VString y -> String.equal x y
  | VFloat x, VFloat y -> x = y
  | VBool x, VBool y -> x = y
  | VNull x, VNull y -> x = y
  | (VInt _ | VString _ | VFloat _ | VBool _ | VNull _), _ -> false

let compare = Stdlib.compare
let is_null = function VNull _ -> true | _ -> false

let pp ppf = function
  | VInt i -> Fmt.int ppf i
  | VString s -> Fmt.pf ppf "%S" s
  | VFloat f -> Fmt.float ppf f
  | VBool b -> Fmt.bool ppf b
  | VNull n -> Fmt.pf ppf "_N%d" n

let to_string v = Fmt.str "%a" pp v
(* Atomic so that any domain can mint labels: parallel runs only need
   fresh labels to be distinct, not consecutive. *)
let counter = Atomic.make 0

let fresh_null () = VNull (Atomic.fetch_and_add counter 1 + 1)

let alloc_nulls n =
  if n < 0 then invalid_arg "alloc_nulls";
  Atomic.fetch_and_add counter n + 1

let reset_null_counter () = Atomic.set counter 0
