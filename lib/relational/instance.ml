module SMap = Map.Make (String)

type relation = { header : string list; tuples : Value.t array list }

type t = relation SMap.t

let empty = SMap.empty
let of_list l = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty l
let relation i name = SMap.find_opt name i

let relation_or_empty i name ~header =
  match SMap.find_opt name i with
  | Some r -> r
  | None -> { header; tuples = [] }

let set i name r = SMap.add name r i
let names i = SMap.bindings i |> List.map fst

let tuple_equal a b =
  Array.length a = Array.length b
  &&
  let rec go k = k >= Array.length a || (Value.equal a.(k) b.(k) && go (k + 1)) in
  go 0

let mem_tuple r t = List.exists (tuple_equal t) r.tuples

let equal a b =
  let nonempty i =
    SMap.bindings i
    |> List.filter_map (fun (n, r) -> if r.tuples = [] then None else Some n)
  in
  let na = nonempty a and nb = nonempty b in
  List.length na = List.length nb
  && List.for_all2 String.equal na nb
  && List.for_all
       (fun n ->
         match (SMap.find_opt n a, SMap.find_opt n b) with
         | Some ra, Some rb ->
             List.length ra.tuples = List.length rb.tuples
             && List.for_all (fun t -> mem_tuple rb t) ra.tuples
         | _, _ -> false)
       na

let add_tuple i name ~header tup =
  let r = relation_or_empty i name ~header in
  if List.length r.header <> Array.length tup then
    invalid_arg
      (Printf.sprintf "add_tuple %s: arity %d vs header %d" name
         (Array.length tup) (List.length r.header));
  if mem_tuple r tup then i
  else SMap.add name { r with tuples = tup :: r.tuples } i

let cardinality i name =
  match SMap.find_opt name i with None -> 0 | Some r -> List.length r.tuples

let total_tuples i =
  SMap.fold (fun _ r acc -> acc + List.length r.tuples) i 0

let index_of header c =
  let rec go k = function
    | [] -> invalid_arg (Printf.sprintf "no column %s" c)
    | h :: t -> if String.equal h c then k else go (k + 1) t
  in
  go 0 header

let project_tuple r tup cols =
  Array.of_list (List.map (fun c -> tup.(index_of r.header c)) cols)

let check_keys schema inst =
  List.concat_map
    (fun (t : Schema.table) ->
      if t.key = [] then []
      else
        match SMap.find_opt t.tbl_name inst with
        | None -> []
        | Some r ->
            let tbl = Hashtbl.create 64 in
            List.filter_map
              (fun tup ->
                let k =
                  List.map
                    (fun c -> Value.to_string tup.(index_of r.header c))
                    t.key
                  |> String.concat "\x00"
                in
                match Hashtbl.find_opt tbl k with
                | Some prev when not (tuple_equal prev tup) ->
                    Some (t.tbl_name, prev, tup)
                | Some _ -> None
                | None ->
                    Hashtbl.replace tbl k tup;
                    None)
              r.tuples)
    schema.Schema.tables

let check_rics schema inst =
  List.concat_map
    (fun (r : Schema.ric) ->
      match SMap.find_opt r.from_table inst with
      | None -> []
      | Some from_rel ->
          let to_rel =
            relation_or_empty inst r.to_table ~header:r.to_cols
          in
          let targets = Hashtbl.create 64 in
          List.iter
            (fun tup ->
              let k =
                List.map
                  (fun c -> Value.to_string tup.(index_of to_rel.header c))
                  r.to_cols
                |> String.concat "\x00"
              in
              Hashtbl.replace targets k ())
            to_rel.tuples;
          List.filter_map
            (fun tup ->
              let k =
                List.map
                  (fun c -> Value.to_string tup.(index_of from_rel.header c))
                  r.from_cols
                |> String.concat "\x00"
              in
              if Hashtbl.mem targets k then None else Some (r.ric_name, tup))
            from_rel.tuples)
    schema.Schema.rics

let pp_relation ppf r =
  Fmt.pf ppf "@[<v>(%a)@,%a@]"
    Fmt.(list ~sep:comma string)
    r.header
    (Fmt.list ~sep:Fmt.cut (fun ppf tup ->
         Fmt.pf ppf "(%a)"
           Fmt.(list ~sep:comma Value.pp)
           (Array.to_list tup)))
    (List.rev r.tuples)

let pp ppf i =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, r) ->
         Fmt.pf ppf "@[<v2>%s:@,%a@]" name pp_relation r))
    (SMap.bindings i)
