(** Hash indexes over tuple lists, keyed on a subset of column
    positions.

    The execution engine in [lib/exchange] builds one index per
    (relation, join-attribute set) pair and probes it with the values
    bound so far, replacing the nested-loop joins of the naive chase.
    Keys are serialized with the library-wide [Value.to_string] + NUL
    convention, so a probe is a single hash lookup. *)

type t

val create : key:int list -> t
(** An empty index on the given column positions (applied in order). *)

val build : key:int list -> Value.t array list -> t

val add : t -> Value.t array -> unit
(** Register one more tuple (appends to its bucket). *)

val remove : t -> Value.t array -> unit
(** Drop the physically-identical tuple from its bucket (a no-op when
    the exact array was never added). Physical identity is the right
    notion here: the callers in [lib/exchange] index the store's own
    tuple arrays, so removal must not confuse two structurally equal
    arrays inserted at different times. *)

val probe : t -> Value.t list -> Value.t array list
(** Tuples whose key cells equal the given values (in key-position
    order); [[]] when the key is absent. *)

val probe_key : t -> string -> Value.t array list
(** Like {!probe} for a pre-serialized key (see {!key_of_values}). *)

val key_of_positions : int array -> Value.t array -> string
(** Serialize the cells of [tup] at the given positions. *)

val key_of_values : Value.t list -> string

val tuple_key : Value.t array -> string
(** Whole-tuple key — the serialization used for set-semantics
    deduplication. *)

val entries : t -> int
val distinct_keys : t -> int
