(* Hash indexes over tuple lists, keyed on a subset of column
   positions. The key is the canonical serialization of the key cells
   (the same [Value.to_string] + NUL-separator convention the rest of
   the library uses for tuple hashing), so probing is O(1) per lookup
   regardless of relation size. *)

type t = {
  ix_key : int array;  (* column positions forming the key, in order *)
  ix_tbl : (string, Value.t array list ref) Hashtbl.t;
  mutable ix_entries : int;
}

let tuple_key tup =
  let b = Buffer.create 32 in
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b '\x00';
      Buffer.add_string b (Value.to_string v))
    tup;
  Buffer.contents b

let key_of_positions pos tup =
  let b = Buffer.create 32 in
  Array.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b '\x00';
      Buffer.add_string b (Value.to_string tup.(p)))
    pos;
  Buffer.contents b

let key_of_values vs =
  let b = Buffer.create 32 in
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b '\x00';
      Buffer.add_string b (Value.to_string v))
    vs;
  Buffer.contents b

let create ~key = { ix_key = Array.of_list key; ix_tbl = Hashtbl.create 64; ix_entries = 0 }

let add ix tup =
  let k = key_of_positions ix.ix_key tup in
  (match Hashtbl.find_opt ix.ix_tbl k with
  | Some bucket -> bucket := tup :: !bucket
  | None -> Hashtbl.replace ix.ix_tbl k (ref [ tup ]));
  ix.ix_entries <- ix.ix_entries + 1

let remove ix tup =
  let k = key_of_positions ix.ix_key tup in
  match Hashtbl.find_opt ix.ix_tbl k with
  | None -> ()
  | Some bucket ->
      let before = List.length !bucket in
      bucket := List.filter (fun t -> t != tup) !bucket;
      ix.ix_entries <- ix.ix_entries - (before - List.length !bucket);
      if !bucket = [] then Hashtbl.remove ix.ix_tbl k

let build ~key tuples =
  let ix = create ~key in
  List.iter (add ix) tuples;
  ix

let probe ix vs =
  match Hashtbl.find_opt ix.ix_tbl (key_of_values vs) with
  | Some bucket -> !bucket
  | None -> []

let probe_key ix k =
  match Hashtbl.find_opt ix.ix_tbl k with Some bucket -> !bucket | None -> []

let entries ix = ix.ix_entries
let distinct_keys ix = Hashtbl.length ix.ix_tbl
