module Cml = Smg_cm.Cml
module Cm_graph = Smg_cm.Cm_graph
module Schema = Smg_relational.Schema
module Digraph = Smg_graph.Digraph

type node_ref = { nr_class : string; nr_copy : int }

type sedge_kind = SRel of string | SRole of string | SIsa

type sedge = { se_src : node_ref; se_kind : sedge_kind; se_dst : node_ref }

type t = {
  st_table : string;
  st_nodes : node_ref list;
  st_edges : sedge list;
  st_anchor : node_ref option;
  col_map : (string * node_ref * string) list;
  id_map : (node_ref * string list) list;
}

let nref ?(copy = 0) cls = { nr_class = cls; nr_copy = copy }

let equal_ref a b =
  String.equal a.nr_class b.nr_class && a.nr_copy = b.nr_copy

let make ~table ?anchor ?(edges = []) ?(cols = []) ?(ids = []) nodes =
  {
    st_table = table;
    st_nodes = nodes;
    st_edges = edges;
    st_anchor = anchor;
    col_map = cols;
    id_map = ids;
  }

let declaring_class cm cls attr =
  let candidates = cls :: Cml.ancestors cm cls in
  List.find_opt
    (fun c ->
      match Cml.find_class cm c with
      | Some d -> List.mem attr d.Cml.attributes
      | None -> (
          (* reified relationship "classes" may also carry attributes *)
          match
            List.find_opt (fun r -> String.equal r.Cml.rr_name c) cm.Cml.reified
          with
          | Some r -> List.mem attr r.Cml.rr_attributes
          | None -> false))
    candidates

let node_of_column st col =
  List.find_map
    (fun (c, n, a) -> if String.equal c col then Some (n, a) else None)
    st.col_map

let columns_of_node st n =
  List.filter_map
    (fun (c, n', a) -> if equal_ref n n' then Some (c, a) else None)
    st.col_map

let id_columns st n =
  List.find_map
    (fun (n', cols) -> if equal_ref n n' then Some cols else None)
    st.id_map

let graph_node g (n : node_ref) = Cm_graph.class_node_exn g n.nr_class

let fail table fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "s-tree of %s: %s" table msg))
    fmt

let validate g (tbl : Schema.table) st =
  let cm = Cm_graph.cm g in
  if not (String.equal st.st_table tbl.Schema.tbl_name) then
    fail st.st_table "table name mismatch with %s" tbl.Schema.tbl_name;
  if st.st_nodes = [] then fail st.st_table "no nodes";
  let mem_node n = List.exists (equal_ref n) st.st_nodes in
  List.iter
    (fun n ->
      match Cm_graph.class_node g n.nr_class with
      | Some _ -> ()
      | None -> fail st.st_table "unknown class %s" n.nr_class)
    st.st_nodes;
  (match st.st_anchor with
  | Some a when not (mem_node a) -> fail st.st_table "anchor not a node"
  | Some _ | None -> ());
  (* Edge well-formedness against the CM. *)
  List.iter
    (fun e ->
      if not (mem_node e.se_src && mem_node e.se_dst) then
        fail st.st_table "edge endpoint outside node list";
      match e.se_kind with
      | SRel r -> (
          match
            List.find_opt (fun b -> String.equal b.Cml.rel_name r) cm.Cml.binaries
          with
          | None -> fail st.st_table "unknown relationship %s" r
          | Some b ->
              if
                not
                  (String.equal b.Cml.rel_src e.se_src.nr_class
                  && String.equal b.Cml.rel_dst e.se_dst.nr_class)
              then
                fail st.st_table "relationship %s does not link %s to %s" r
                  e.se_src.nr_class e.se_dst.nr_class)
      | SRole ro -> (
          match
            List.find_opt
              (fun rr -> String.equal rr.Cml.rr_name e.se_src.nr_class)
              cm.Cml.reified
          with
          | None -> fail st.st_table "edge role %s: %s is not reified" ro e.se_src.nr_class
          | Some rr -> (
              match
                List.find_opt
                  (fun x -> String.equal x.Cml.role_name ro)
                  rr.Cml.roles
              with
              | None -> fail st.st_table "reified %s has no role %s" rr.Cml.rr_name ro
              | Some role ->
                  if not (String.equal role.Cml.filler e.se_dst.nr_class) then
                    fail st.st_table "role %s filler mismatch" ro))
      | SIsa ->
          if
            not
              (List.exists
                 (fun i ->
                   String.equal i.Cml.sub e.se_src.nr_class
                   && String.equal i.Cml.super e.se_dst.nr_class)
                 cm.Cml.isas)
          then
            fail st.st_table "no ISA %s < %s" e.se_src.nr_class
              e.se_dst.nr_class)
    st.st_edges;
  (* Tree shape: connected and |E| = |V| - 1 (undirected, no dup edges). *)
  let n_nodes = List.length st.st_nodes in
  if List.length st.st_edges <> n_nodes - 1 then
    fail st.st_table "not a tree: %d nodes, %d edges" n_nodes
      (List.length st.st_edges);
  if n_nodes > 1 then begin
    let idx n =
      let rec go k = function
        | [] -> assert false
        | x :: rest -> if equal_ref x n then k else go (k + 1) rest
      in
      go 0 st.st_nodes
    in
    let adj = Array.make n_nodes [] in
    List.iter
      (fun e ->
        let a = idx e.se_src and b = idx e.se_dst in
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b))
      st.st_edges;
    let seen = Array.make n_nodes false in
    let rec dfs v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter dfs adj.(v)
      end
    in
    dfs 0;
    if not (Array.for_all Fun.id seen) then fail st.st_table "disconnected"
  end;
  (* Columns: bijection between table columns and col_map entries. *)
  let cols = Schema.column_names tbl in
  List.iter
    (fun c ->
      match List.filter (fun (c', _, _) -> String.equal c c') st.col_map with
      | [ (_, n, a) ] -> (
          if not (mem_node n) then
            fail st.st_table "column %s maps to unknown node" c;
          match declaring_class cm n.nr_class a with
          | Some _ -> ()
          | None ->
              fail st.st_table "column %s: class %s has no attribute %s" c
                n.nr_class a)
      | [] -> fail st.st_table "column %s unmapped" c
      | _ -> fail st.st_table "column %s mapped twice" c)
    cols;
  List.iter
    (fun (c, _, _) ->
      if not (List.mem c cols) then
        fail st.st_table "col_map mentions unknown column %s" c)
    st.col_map;
  List.iter
    (fun (n, id_cols) ->
      if not (mem_node n) then fail st.st_table "id_map node missing";
      if id_cols = [] then fail st.st_table "empty id column list";
      List.iter
        (fun c ->
          if not (List.mem c cols) then
            fail st.st_table "id_map mentions unknown column %s" c)
        id_cols)
    st.id_map

let matches_sedge g (e : Cm_graph.edge_lbl Digraph.edge) se =
  let src_ok = e.src = graph_node g se.se_src
  and dst_ok = e.dst = graph_node g se.se_dst in
  match (se.se_kind, e.lbl.Cm_graph.kind) with
  | SRel r, Cm_graph.Rel r' -> src_ok && dst_ok && String.equal r r'
  | SRole ro, Cm_graph.Role ro' -> src_ok && dst_ok && String.equal ro ro'
  | SIsa, Cm_graph.Isa -> src_ok && dst_ok
  | _, _ -> false

let forward_graph_edges g st =
  let graph = Cm_graph.graph g in
  List.concat_map
    (fun se ->
      Digraph.edges graph
      |> List.filter_map (fun e ->
             if matches_sedge g e se then Some e.Digraph.id else None))
    st.st_edges
  |> List.sort_uniq compare

let graph_edge_ids g st =
  let forward = forward_graph_edges g st in
  let with_inv =
    List.concat_map
      (fun id ->
        match Cm_graph.inverse_edge g id with
        | Some inv -> [ id; inv ]
        | None -> [ id ])
      forward
  in
  List.sort_uniq compare with_inv

let pp_ref ppf n =
  if n.nr_copy = 0 then Fmt.string ppf n.nr_class
  else Fmt.pf ppf "%s~%d" n.nr_class n.nr_copy

let pp_edge ppf e =
  let k =
    match e.se_kind with SRel r -> r | SRole r -> "role:" ^ r | SIsa -> "isa"
  in
  Fmt.pf ppf "%a --%s--> %a" pp_ref e.se_src k pp_ref e.se_dst

let pp ppf st =
  Fmt.pf ppf "@[<v2>s-tree(%s):@,nodes: %a@,edges: %a@,cols: %a@,ids: %a@]"
    st.st_table
    (Fmt.list ~sep:Fmt.comma pp_ref)
    st.st_nodes
    (Fmt.list ~sep:Fmt.comma pp_edge)
    st.st_edges
    (Fmt.list ~sep:Fmt.comma (fun ppf (c, n, a) ->
         Fmt.pf ppf "%s↦%a.%s" c pp_ref n a))
    st.col_map
    (Fmt.list ~sep:Fmt.comma (fun ppf (n, cols) ->
         Fmt.pf ppf "%a:[%a]" pp_ref n Fmt.(list ~sep:comma string) cols))
    st.id_map

(* Result-typed validation for lint passes: the same checks as
   [validate], but a failure becomes data instead of an exception. *)
let validate_result g tbl st =
  match validate g tbl st with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error msg
