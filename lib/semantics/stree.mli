(** Semantic trees (s-trees): the semantics of one table as a subtree of
    a CM graph (§2 of the paper).

    Nodes are class references with copy indices (copies support multiple
    or recursive relationships between the same classes). Each table
    column is associated with exactly one attribute of one node; the
    [id_map] records which columns identify which node's instances — the
    "rule expressing how classes involved in the s-tree of T are
    identified by columns of T". *)

type node_ref = { nr_class : string; nr_copy : int }

type sedge_kind =
  | SRel of string   (** binary relationship, canonical src → dst *)
  | SRole of string  (** reified class → filler, role name *)
  | SIsa             (** subclass → superclass *)

type sedge = { se_src : node_ref; se_kind : sedge_kind; se_dst : node_ref }

type t = {
  st_table : string;
  st_nodes : node_ref list;
  st_edges : sedge list;
  st_anchor : node_ref option;
  col_map : (string * node_ref * string) list;
      (** (table column, node, attribute name); attribute may be declared
          on the node's class or inherited from an ancestor *)
  id_map : (node_ref * string list) list;
      (** node instances are identified by these table columns *)
}

val nref : ?copy:int -> string -> node_ref
val equal_ref : node_ref -> node_ref -> bool

val make :
  table:string ->
  ?anchor:node_ref ->
  ?edges:sedge list ->
  ?cols:(string * node_ref * string) list ->
  ?ids:(node_ref * string list) list ->
  node_ref list ->
  t

val validate : Smg_cm.Cm_graph.t -> Smg_relational.Schema.table -> t -> unit
(** Check the s-tree against its CM and table: every node's class exists;
    every edge matches a CM relationship/role/ISA with the right end
    classes; nodes form a tree; every table column is mapped exactly
    once; mapped attributes exist on the class or an ancestor; id_map
    references mapped-or-known columns and s-tree nodes.
    @raise Invalid_argument with a diagnostic otherwise. *)

val validate_result :
  Smg_cm.Cm_graph.t ->
  Smg_relational.Schema.table ->
  t ->
  (unit, string) result
(** {!validate} with the failure as data — for upfront lint passes that
    collect diagnostics across all tables instead of aborting on the
    first bad s-tree. *)

val node_of_column : t -> string -> (node_ref * string) option
(** The (node, attribute) a column maps to. *)

val columns_of_node : t -> node_ref -> (string * string) list
(** [(column, attribute)] pairs carried by a node. *)

val id_columns : t -> node_ref -> string list option

val graph_node : Smg_cm.Cm_graph.t -> node_ref -> int
(** Underlying CM-graph node of a reference (copies collapse). *)

val graph_edge_ids : Smg_cm.Cm_graph.t -> t -> int list
(** CM-graph edge ids realised by the s-tree's edges, including the
    paired inverses — the table's "pre-selected" edges whose traversal
    is free during tree search. *)

val forward_graph_edges : Smg_cm.Cm_graph.t -> t -> int list
(** Like {!graph_edge_ids} but one (canonical-direction) id per s-tree
    edge, without the inverses. *)

val declaring_class : Smg_cm.Cml.t -> string -> string -> string option
(** [declaring_class cm cls attr] is the class in [{cls} ∪ ancestors]
    that declares [attr], searching upwards. *)

val pp : Format.formatter -> t -> unit
