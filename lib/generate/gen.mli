(** Assemble a complete discovery scenario from a parameter vector.

    Both sides lower the *same* generated universe CM through
    {!Smg_er2rel.Design} under different configurations (the source is
    always the merged Table_per_class design; the target flips the ISA
    encoding and/or functional merging), so the two schemas genuinely
    differ while sharing conceptual semantics. Correspondences are
    derived from s-tree column provenance: a target column maps to the
    source column carrying the same (globally unique) attribute,
    preferring an identically-named column (so role copies stay
    distinct), then columns anchored on their own entity table;
    [corr_density] keeps a seeded subset.

    Everything — CM, configs, correspondences, data — is a pure function
    of the clamped {!Params.t}. *)

type t = {
  g_params : Params.t;  (** the clamped vector that produced this *)
  g_cm_source : Smg_cm.Cml.t;
  g_cm_target : Smg_cm.Cml.t;
  g_source : Smg_core.Discover.side;
  g_target : Smg_core.Discover.side;
  g_cases : (string * Smg_cq.Mapping.corr list) list;
      (** one correspondence case per target table — discovery's unit of
          work is a single mapping requirement whose marked nodes fit
          one target CSG, so consumers sweeping the whole scenario run
          discovery per case (like {!Smg_eval.Scenario.case}s) *)
  g_corrs : Smg_cq.Mapping.corr list;
      (** the focus case embedded in the emitted [.smg]: the case of a
          seeded pick among the join-heaviest target tables *)
}

val build : Params.t -> t
(** @raise Invalid_argument only on an er2rel/validation bug — generated
    shapes are designed to lower and validate; the qcheck harness pins
    this down. *)

val source_instance : ?scale:int -> t -> Smg_relational.Instance.t
(** Seeded witness data for the source schema satisfying its keys and
    RICs ({!Data.populate}); [scale] defaults to the vector's. *)

val target_instance : ?scale:int -> t -> Smg_relational.Instance.t

val doc : ?with_data:bool -> t -> Smg_dsl.Ast.t
(** The scenario as a parsed document (two schemas, two CMs, semantics
    blocks, correspondences); [with_data] embeds the source instance as
    [data] blocks — only sensible at small scale. *)

val dsl : ?with_data:bool -> t -> string
(** {!doc} through {!Smg_dsl.Printer} — valid [.smg] text that
    round-trips through the parser. *)
