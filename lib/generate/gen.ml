module Cml = Smg_cm.Cml
module Design = Smg_er2rel.Design
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Ast = Smg_dsl.Ast

type t = {
  g_params : Params.t;
  g_cm_source : Cml.t;
  g_cm_target : Cml.t;
  g_source : Discover.side;
  g_target : Discover.side;
  g_cases : (string * Mapping.corr list) list;
  g_corrs : Mapping.corr list;
}

(* Attribute names are globally unique across the universe, so provenance
   matching reduces to attribute lookup. Among several source columns
   carrying the same attribute (an entity column plus merged FK copies),
   prefer the one whose node is its table's own anchor, then the
   lexicographically first (table, column) — a total, deterministic
   order. *)
let source_column_index (strees : Stree.t list) =
  let by_attr = Hashtbl.create 64 in
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (st : Stree.t) ->
      let anchor_class =
        match st.Stree.st_anchor with
        | Some a -> a.Stree.nr_class
        | None -> ""
      in
      List.iter
        (fun (col, (node : Stree.node_ref), attr) ->
          let pref = if String.equal node.Stree.nr_class anchor_class then 0 else 1 in
          let cand = (pref, st.Stree.st_table, col) in
          let upd tbl key =
            match Hashtbl.find_opt tbl key with
            | Some best when compare best cand <= 0 -> ()
            | _ -> Hashtbl.replace tbl key cand
          in
          upd by_attr attr;
          upd by_name (col, attr))
        st.Stree.col_map)
    strees;
  (by_attr, by_name)

(* One correspondence case per target table — discovery's unit of work
   is a single mapping requirement, whose marked nodes must fit one
   target CSG (§3: a case's correspondences land in one s-tree /
   functional tree, not across the whole schema). Density thins each
   case independently, keeping at least one column. *)
let derive_cases rng density ~source_strees ~target_strees =
  let by_attr, by_name = source_column_index source_strees in
  List.filter_map
    (fun (st : Stree.t) ->
      let all =
        List.filter_map
          (fun (col, _, attr) ->
            (* prefer the identically-named source column: when a table
               reifies two roles over the same class, both role columns
               carry the class-key attribute, and resolving both to one
               source column would assert the two fillers equal — a
               constraint the witness data (rightly) refutes *)
            let resolved =
              match Hashtbl.find_opt by_name (col, attr) with
              | Some _ as hit -> hit
              | None -> Hashtbl.find_opt by_attr attr
            in
            match resolved with
            | None -> None
            | Some (_, s_table, s_col) ->
                Some
                  (Mapping.corr ~src:(s_table, s_col)
                     ~tgt:(st.Stree.st_table, col)))
          st.Stree.col_map
      in
      let kept =
        if density >= 1.0 then all
        else begin
          let n = List.length all in
          let keep = max 1 (int_of_float (ceil (density *. float_of_int n))) in
          let shuffled = Rng.shuffle rng all in
          List.filteri (fun i _ -> i < keep) shuffled
        end
      in
      match kept with [] -> None | _ -> Some (st.Stree.st_table, List.sort compare kept))
    target_strees

(* The scenario's headline correspondence set: the case of one "focus"
   table, preferring targets whose s-tree spans several nodes (those
   exercise the join-discovery machinery rather than pure renames). *)
let pick_focus rng (target_strees : Stree.t list) cases =
  let weight tbl =
    match
      List.find_opt
        (fun (st : Stree.t) -> String.equal st.Stree.st_table tbl)
        target_strees
    with
    | Some st -> List.length st.Stree.st_nodes
    | None -> 0
  in
  let ranked =
    List.sort
      (fun (a, _) (b, _) -> compare (weight b, a) (weight a, b))
      cases
  in
  let top = List.filteri (fun i _ -> i < 3) ranked in
  Rng.pick rng top

let build params =
  let p = Params.clamp params in
  let rng = Rng.make p.Params.seed in
  let universe = Gencm.build p rng in
  let cm_source = { universe with Cml.cm_name = "Source" } in
  let cm_target = { universe with Cml.cm_name = "Target" } in
  let src_cfg =
    {
      Design.isa = Design.Table_per_class;
      merge_functional = true;
      table_name = (fun c -> "s_" ^ String.lowercase_ascii c);
    }
  in
  (* the target flips at least one design axis so the sides always
     differ structurally *)
  let tgt_isa =
    if p.Params.isa_depth > 0 && Rng.bool rng then Design.Table_per_concrete
    else Design.Table_per_class
  in
  let tgt_merge =
    match tgt_isa with
    | Design.Table_per_class -> false
    | Design.Table_per_concrete -> Rng.bool rng
  in
  let tgt_cfg =
    {
      Design.isa = tgt_isa;
      merge_functional = tgt_merge;
      table_name = (fun c -> "t_" ^ String.lowercase_ascii c);
    }
  in
  let s_schema, s_strees = Design.design ~config:src_cfg cm_source in
  let t_schema, t_strees = Design.design ~config:tgt_cfg cm_target in
  let cases =
    derive_cases rng p.Params.corr_density ~source_strees:s_strees
      ~target_strees:t_strees
  in
  let _, corrs = pick_focus rng t_strees cases in
  {
    g_params = p;
    g_cm_source = cm_source;
    g_cm_target = cm_target;
    g_source = Discover.side ~schema:s_schema ~cm:cm_source s_strees;
    g_target = Discover.side ~schema:t_schema ~cm:cm_target t_strees;
    g_cases = cases;
    g_corrs = corrs;
  }

let source_instance ?scale g =
  let scale = Option.value ~default:g.g_params.Params.scale scale in
  Data.populate ~scale ~seed:g.g_params.Params.seed
    g.g_source.Discover.schema

let target_instance ?scale g =
  let scale = Option.value ~default:g.g_params.Params.scale scale in
  Data.populate ~scale ~seed:g.g_params.Params.seed
    g.g_target.Discover.schema

let doc ?(with_data = false) g =
  let blocks side =
    List.map
      (fun (st : Stree.t) ->
        { Ast.sem_table = st.Stree.st_table; sem_stree = st })
      side.Discover.strees
  in
  let data =
    if not with_data then []
    else
      let inst = source_instance g in
      List.filter_map
        (fun (t : Schema.table) ->
          match Instance.relation inst t.Schema.tbl_name with
          | None | Some { Instance.tuples = []; _ } -> None
          | Some rel ->
              Some
                ( t.Schema.tbl_name,
                  List.map Array.to_list rel.Instance.tuples ))
        g.g_source.Discover.schema.Schema.tables
  in
  {
    Ast.doc_schemas =
      [ g.g_source.Discover.schema; g.g_target.Discover.schema ];
    doc_cms = [ g.g_cm_source; g.g_cm_target ];
    doc_semantics = blocks g.g_source @ blocks g.g_target;
    doc_corrs = g.g_corrs;
    doc_tgds = [];
    doc_data = data;
  }

let dsl ?with_data g = Smg_dsl.Printer.to_string (doc ?with_data g)
