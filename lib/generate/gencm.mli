(** Synthesize a "universe" conceptual model from a parameter vector.

    The universe covers every construct of the paper's case analysis in
    one connected CM: a spine of root entity classes linked by
    functional relationships, an ISA chain (optionally with a disjoint
    side branch) under each root, a partOf chain hanging off the first
    root, reified n-ary relationships over the concrete classes, and an
    optional many-many binary. Source and target sides of a scenario
    are two er2rel lowerings of this one universe — the same trick the
    paper's own evaluation plays with schemas derived from a shared
    conceptual design.

    Attribute names are globally unique (prefixed by their class), which
    is what lets {!Gen} derive correspondences purely from s-tree column
    provenance. *)

val build : Params.t -> Rng.t -> Smg_cm.Cml.t
(** Deterministic in the (clamped) params and the stream state.
    @raise Invalid_argument never — shapes are valid by construction. *)

val concrete_leaves : Smg_cm.Cml.t -> string list
(** Classes without subclasses, in declaration order. *)
