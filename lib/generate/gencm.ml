module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality

let lc = String.lowercase_ascii
let root_name i = Printf.sprintf "E%d" i
let sub_name i d = Printf.sprintf "E%dS%d" i d
let branch_name i = Printf.sprintf "E%dB" i
let part_name j = Printf.sprintf "P%d" j
let id_of cls = lc cls ^ "_id"

let attrs_of cls k = List.init k (fun a -> Printf.sprintf "%s_a%d" (lc cls) a)

let mk_entity ?(with_id = true) cls k =
  if with_id then Cml.cls ~id:[ id_of cls ] cls (id_of cls :: attrs_of cls k)
  else Cml.cls cls (attrs_of cls k)

let concrete_leaves (cm : Cml.t) =
  List.filter_map
    (fun (c : Cml.class_decl) ->
      if Cml.subclasses cm c.Cml.class_name = [] then Some c.Cml.class_name
      else None)
    cm.Cml.classes

let build (p : Params.t) rng =
  let k = p.Params.attrs_per_class in
  let roots = List.init p.Params.n_roots root_name in
  let root_classes = List.map (fun c -> mk_entity c k) roots in
  (* ISA chains: E<i>S1 < … < E<i>S<depth> below each root, subclasses
     inherit the root identifier; an optional side branch E<i>B makes
     the first level genuinely disjoint. *)
  let branch = p.Params.isa_depth >= 1 && Rng.bool rng in
  let sub_classes, isas, disjointness =
    List.fold_left
      (fun (cs, is, ds) i ->
        let chain =
          List.init p.Params.isa_depth (fun d -> sub_name i (d + 1))
        in
        let chain_classes =
          List.map (fun c -> mk_entity ~with_id:false c k) chain
        in
        let chain_isas =
          List.mapi
            (fun d sub ->
              let super = if d = 0 then root_name i else sub_name i d in
              { Cml.sub; super })
            chain
        in
        if branch then
          let b = branch_name i in
          ( cs @ chain_classes @ [ mk_entity ~with_id:false b k ],
            is @ chain_isas @ [ { Cml.sub = b; super = root_name i } ],
            ds @ [ [ sub_name i 1; b ] ] )
        else (cs @ chain_classes, is @ chain_isas, ds))
      ([], [], [])
      (List.init p.Params.n_roots Fun.id)
  in
  (* partOf chain off the first root: P1 partOf E0, P2 partOf P1, … *)
  let part_classes =
    List.init p.Params.partof (fun j -> mk_entity (part_name (j + 1)) k)
  in
  let part_rels =
    List.init p.Params.partof (fun j ->
        let j = j + 1 in
        let whole = if j = 1 then root_name 0 else part_name (j - 1) in
        Cml.functional ~kind:Cml.PartOf ~total:true
          (Printf.sprintf "w%d" j)
          ~src:(part_name j) ~dst:whole)
  in
  (* functional spine E<i> -> E<i-1>: always oriented towards lower
     indices so merged foreign keys can never form a RIC cycle *)
  let fun_rels =
    List.init
      (max 0 (p.Params.n_roots - 1))
      (fun i ->
        Cml.functional
          ~total:(Rng.bool rng)
          (Printf.sprintf "f%d" (i + 1))
          ~src:(root_name (i + 1))
          ~dst:(root_name i))
  in
  let mm_rels =
    if p.Params.n_roots >= 2 && Rng.bool rng then
      [
        Cml.many_many "m0" ~src:(root_name 0)
          ~dst:(root_name (p.Params.n_roots - 1));
      ]
    else []
  in
  let classes = root_classes @ sub_classes @ part_classes in
  let class_names = List.map (fun (c : Cml.class_decl) -> c.Cml.class_name) classes in
  (* role fillers range over every class (roots, subclasses, parts):
     abstract fillers exercise inherited identifiers and, under
     Table_per_concrete, foreign keys without a target table *)
  let reified =
    List.init p.Params.reify (fun j ->
        let n_roles =
          if List.length class_names >= 3 && Rng.bool rng then 3 else 2
        in
        let pool = Rng.shuffle rng class_names in
        let fillers =
          List.init n_roles (fun r -> List.nth pool (r mod List.length pool))
        in
        let functional_first = Rng.bool rng in
        let roles =
          List.mapi
            (fun r f ->
              ( Printf.sprintf "r%d_ro%d" j r,
                f,
                if r = 0 && functional_first then Cardinality.at_most_one
                else Cardinality.many ))
            fillers
        in
        Cml.reified
          ~attrs:[ Printf.sprintf "r%d_x0" j ]
          (Printf.sprintf "R%d" j)
          roles)
  in
  Cml.make ~name:"Universe"
    ~binaries:(fun_rels @ part_rels @ mm_rels)
    ~reified ~isas ~disjointness classes
