module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Value = Smg_relational.Value

let topo_tables (schema : Schema.t) =
  let deps t =
    List.filter_map
      (fun (r : Schema.ric) ->
        if String.equal r.Schema.to_table t then None else Some r.Schema.to_table)
      (Schema.rics_from schema t)
  in
  let rec go placed remaining =
    match
      List.partition
        (fun t -> List.for_all (fun d -> List.mem d placed) (deps t))
        remaining
    with
    | [], rest -> placed @ rest (* RIC cycle: give up on the remainder *)
    | ready, rest -> go (placed @ ready) rest
  in
  go [] (List.map (fun (t : Schema.table) -> t.Schema.tbl_name) schema.Schema.tables)

(* A foreign-key group during row construction: the positions the
   from-columns occupy in the row, and the parent key tuples (projected
   onto to_cols, so component order matches from_cols). *)
type group = { positions : int array; parents : Value.t array array }

let populate ~scale ~seed (schema : Schema.t) =
  let n_tables = max 1 (List.length schema.Schema.tables) in
  let per_table = max 1 (scale / n_tables) in
  let master = Rng.make (seed lxor 0x9e3779b9) in
  List.fold_left
    (fun inst tname ->
      let rng = Rng.split master in
      let tbl = Schema.find_table_exn schema tname in
      let header = Schema.column_names tbl in
      let ncols = List.length header in
      let pos_of =
        let h = Hashtbl.create ncols in
        List.iteri (fun i c -> Hashtbl.replace h c i) header;
        fun c -> Hashtbl.find h c
      in
      let rics = Schema.rics_from schema tname in
      let groups =
        List.filter_map
          (fun (r : Schema.ric) ->
            match Instance.relation inst r.Schema.to_table with
            | None -> None
            | Some prel ->
                let parents =
                  Array.of_list
                    (List.map
                       (fun tup ->
                         Instance.project_tuple prel tup r.Schema.to_cols)
                       prel.Instance.tuples)
                in
                if Array.length parents = 0 then None
                else
                  Some
                    ( r.Schema.from_cols,
                      {
                        positions =
                          Array.of_list (List.map pos_of r.Schema.from_cols);
                        parents;
                      } ))
          rics
      in
      if List.length groups < List.length rics then
        (* some referenced table is empty: any row would dangle *)
        Instance.set inst tname { Instance.header; tuples = [] }
      else begin
        let key = tbl.Schema.key in
        let in_key c = List.mem c key in
        let covered_key_cols =
          List.concat_map
            (fun (cols, _) -> List.filter in_key cols)
            groups
        in
        let free_key_cols =
          List.filter (fun c -> not (List.mem c covered_key_cols)) key
        in
        (* with a free key column the counter alone makes keys unique,
           so every FK group may sample; otherwise the key-overlapping
           groups must enumerate distinct parent combinations *)
        let key_groups, fk_groups =
          if key = [] || free_key_cols <> [] then ([], List.map snd groups)
          else
            let kg, fg =
              List.partition (fun (cols, _) -> List.exists in_key cols) groups
            in
            (List.map snd kg, List.map snd fg)
        in
        let cap =
          List.fold_left
            (fun acc (g : group) ->
              if acc >= per_table then acc
              else acc * Array.length g.parents)
            1 key_groups
        in
        let n =
          if key_groups = [] then per_table else min per_table cap
        in
        let offsets =
          List.map (fun (g : group) -> Rng.int rng (Array.length g.parents))
            key_groups
        in
        let free_positions = List.map pos_of free_key_cols in
        let key_positions = List.map pos_of key in
        let colname = Array.of_list header in
        let tuples = ref [] in
        for i = n - 1 downto 0 do
          let row = Array.make ncols Value.(VString "") in
          let assigned = Array.make ncols false in
          let put g pi =
            let ptup = g.parents.(pi) in
            Array.iteri
              (fun k pos ->
                if not assigned.(pos) then begin
                  row.(pos) <- ptup.(k);
                  assigned.(pos) <- true
                end)
              g.positions
          in
          (* mixed-radix digits over the key groups: injective for
             i < cap, hence distinct keys *)
          ignore
            (List.fold_left2
               (fun quot (g : group) off ->
                 let m = Array.length g.parents in
                 put g (((quot mod m) + off) mod m);
                 quot / m)
               i key_groups offsets);
          List.iter
            (fun pos ->
              row.(pos) <- Value.VString (Printf.sprintf "k_%s_%d" tname i);
              assigned.(pos) <- true)
            free_positions;
          List.iter
            (fun (g : group) -> put g (Rng.int rng (Array.length g.parents)))
            fk_groups;
          (* plain attributes are a function of the key cells, so rows
             agreeing on (any superset of) the key agree everywhere and
             key-derived functional dependencies survive mapping joins
             into keyed target tables; keyless tables just sample *)
          Array.iteri
            (fun pos filled ->
              if not filled then
                let pick =
                  match key_positions with
                  | [] -> Rng.int rng 7
                  | kps ->
                      let cells = List.map (fun kp -> row.(kp)) kps in
                      Hashtbl.hash (colname.(pos), cells) mod 7
                in
                row.(pos) <- Value.VString (Printf.sprintf "c%d" pick))
            assigned;
          tuples := row :: !tuples
        done;
        Instance.set inst tname { Instance.header; tuples = !tuples }
      end)
    Instance.empty (topo_tables schema)
