(** The generator's parameter vector.

    One vector fully determines one scenario: the CM shape knobs follow
    the paper's case analysis (ISA hierarchies, reified n-ary
    relationships, partOf chains), [corr_density] thins the derived
    correspondence set, and [scale] sizes the seeded source instance.
    Equal vectors always produce byte-identical scenarios and data. *)

type t = {
  seed : int;  (** master seed; every derived stream forks from it *)
  isa_depth : int;  (** ISA-chain depth under each root class (0 = none) *)
  n_roots : int;  (** root entity classes *)
  reify : int;  (** reified n-ary relationships *)
  partof : int;  (** partOf-chain length hanging off the first root *)
  attrs_per_class : int;  (** non-identifier attributes per class *)
  corr_density : float;  (** fraction of derivable correspondences kept *)
  scale : int;  (** approximate total source tuples *)
}

val default : t
(** [seed 42; isa_depth 1; n_roots 3; reify 1; partof 1;
    attrs_per_class 2; corr_density 1.0; scale 200]. *)

val clamp : t -> t
(** Clip every knob into its supported range (depths 0–4, 1–8 roots,
    density 0.05–1.0, scale 10–2,000,000, …) so arbitrary vectors — CLI
    input, qcheck shrinking — always denote a valid scenario. *)

val label : t -> string
(** Compact deterministic name, usable as a registry/scenario id. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One-line JSON object with every knob — embedded in bench artifacts
    so any row is reproducible from the file alone. *)
