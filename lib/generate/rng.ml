type t = { mutable s : int }

let make seed = { s = seed land max_int }

(* Splitmix-style: a Weyl sequence through an avalanche mixer. The
   multipliers are odd constants chosen to fit OCaml's 63-bit int; the
   goal is a stable, well-scrambled deterministic stream, not
   cryptographic quality. *)
let next t =
  t.s <- (t.s + 0x2545F4914F6CDD1D) land max_int;
  let z = t.s in
  let z = (z lxor (z lsr 30)) * 0x1B03738712FAD5C9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D land max_int in
  z lxor (z lsr 31)

let int t n = if n <= 0 then 0 else next t mod n
let bool t = next t land 1 = 1
let float t = Float.of_int (next t land 0xFFFFFFFF) /. 4294967296.0
let split t = make (next t)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  List.map (fun x -> (next t, x)) xs
  |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd
