(** Seeded witness data that satisfies a schema's keys and RICs by
    construction, at 10²–10⁶-tuple scale.

    {!Smg_eval.Witness.populate} generates then *repairs*, inserting
    through [Instance.add_tuple]'s linear-scan dedup — quadratic, and
    unusable at the 100k–1M-tuple sizes the parallel/scale benches need.
    This module instead walks tables in reverse topological order of the
    (acyclic) RIC graph and builds each relation as a plain list:

    - foreign-key column groups that overlap the primary key draw
      *distinct* combinations of already-materialized parent key tuples
      (mixed-radix enumeration with a seeded offset), so keys are unique
      and the RICs hold with zero repair rounds;
    - key columns no RIC covers get injective [k_<table>_<i>] values;
    - non-key foreign keys sample a random parent tuple;
    - remaining columns draw from a small constant pool so joins have
      selectivity.

    Every relation is installed with [Instance.set]; total cost is
    linear in the number of cells. *)

val topo_tables : Smg_relational.Schema.t -> string list
(** Table names ordered so every RIC's target precedes its source.
    Assumes the RIC graph is acyclic (er2rel designs are); a cycle
    degrades to the declaration order of the tables involved. *)

val populate :
  scale:int -> seed:int -> Smg_relational.Schema.t -> Smg_relational.Instance.t
(** [scale] is the approximate total tuple count, split evenly across
    tables (key-coverage caps can shrink a table below its share; no
    table is left empty). Deterministic in [(scale, seed, schema)]. *)
