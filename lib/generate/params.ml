type t = {
  seed : int;
  isa_depth : int;
  n_roots : int;
  reify : int;
  partof : int;
  attrs_per_class : int;
  corr_density : float;
  scale : int;
}

let default =
  {
    seed = 42;
    isa_depth = 1;
    n_roots = 3;
    reify = 1;
    partof = 1;
    attrs_per_class = 2;
    corr_density = 1.0;
    scale = 200;
  }

let clamp p =
  {
    seed = p.seed land max_int;
    isa_depth = max 0 (min 4 p.isa_depth);
    n_roots = max 1 (min 8 p.n_roots);
    reify = max 0 (min 4 p.reify);
    partof = max 0 (min 4 p.partof);
    attrs_per_class = max 1 (min 6 p.attrs_per_class);
    corr_density = Float.max 0.05 (Float.min 1.0 p.corr_density);
    scale = max 10 (min 2_000_000 p.scale);
  }

let label p =
  Printf.sprintf "gen_s%d_i%d_r%d_p%d_c%02d_n%d" p.seed p.isa_depth p.reify
    p.partof
    (int_of_float (Float.round (p.corr_density *. 100.)))
    p.scale

let pp ppf p =
  Fmt.pf ppf
    "seed=%d isa_depth=%d n_roots=%d reify=%d partof=%d attrs=%d \
     corr_density=%.2f scale=%d"
    p.seed p.isa_depth p.n_roots p.reify p.partof p.attrs_per_class
    p.corr_density p.scale

let to_json p =
  Printf.sprintf
    "{\"seed\": %d, \"isa_depth\": %d, \"n_roots\": %d, \"reify\": %d, \
     \"partof\": %d, \"attrs_per_class\": %d, \"corr_density\": %.2f, \
     \"scale\": %d}"
    p.seed p.isa_depth p.n_roots p.reify p.partof p.attrs_per_class
    p.corr_density p.scale
