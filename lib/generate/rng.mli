(** A small deterministic PRNG for the scenario generator.

    Scenario synthesis must be reproducible from a single integer seed —
    across OCaml versions, domain counts, and process runs — so the
    generator owns its stream instead of going through [Stdlib.Random]
    (whose algorithm is not part of our determinism contract). The mixer
    is a splitmix-style sequence over the 63-bit native int range:
    statistically decent, trivially portable, and stable by
    construction. *)

type t

val make : int -> t
(** A fresh stream; equal seeds give equal streams. *)

val next : t -> int
(** Next raw draw in [0, max_int]. *)

val int : t -> int -> int
(** [int t n] draws from [0, n)]; [n <= 0] yields 0. *)

val bool : t -> bool

val float : t -> float
(** Uniform draw in [0, 1). *)

val split : t -> t
(** Derive an independent stream (e.g. one per table) so consumption in
    one component cannot shift the draws of another. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Deterministic permutation keyed by the stream. *)
