(** Second-order tgds: s-t dependencies whose conclusions may contain
    Skolem-function applications (Fagin–Kolaitis–Popa–Tan, "Composing
    schema mappings: second-order dependencies to the rescue").

    This is the explicit-term view of the [sk!f!args] variable-name
    convention shared by {!Chase} and the plan engine: a clause
    [∀x̄ φ(x̄) → ψ] where [ψ]'s argument terms are variables, constants,
    or (possibly nested) applications [f(t̄)] of existentially
    quantified function symbols. Plain tgds embed via {!of_tgd}; the
    composition engine ([Smg_compose]) works on this representation and
    lowers results back to executable tgds with {!to_exec_tgd}. *)

type term =
  | TVar of string
  | TCst of Smg_relational.Value.t
  | TApp of string * term list  (** Skolem-function application *)

type satom = { s_pred : string; s_args : term list }

type t = { so_name : string; so_lhs : Atom.t list; so_rhs : satom list }
(** One SO-tgd clause. The premise is first-order (plain atoms); only
    conclusion terms may be applications. A conclusion [TVar] absent
    from the premise is a plain existential variable. *)

(** {1 Variable-name codec} *)

val term_of_var : string -> term
(** Interpret a variable name: [sk!…]-named variables decode to the
    application they denote (recursively), anything else is a [TVar]. *)

val term_of_atom_term : Atom.term -> term
val atom_term_of_term : term -> Atom.term
(** [atom_term_of_term] encodes applications back into [sk!…] variable
    names (the executable spelling); inverse of {!term_of_atom_term}. *)

val satom_of_atom : Atom.t -> satom
val atom_of_satom : satom -> Atom.t

(** {1 Inspection} *)

val vars : t -> string list
(** All variables, premise first, in first-occurrence order. *)

val rhs_vars : t -> string list
val functions : t -> string list
(** Function symbols of the conclusion, in first-occurrence order. *)

val term_vars : term -> string list

(** {1 Substitution and unification} *)

type subst

val subst_empty : subst
val subst_find : subst -> string -> term option
val apply_term : subst -> term -> term
val apply_satom : subst -> satom -> satom

val unify : subst -> term -> term -> subst option
(** First-order unification with occur check, extending the given
    substitution; function applications unify only symbol-wise. *)

val unify_satoms : subst -> satom -> satom -> subst option

(** {1 Renaming and comparison} *)

val rename_apart : suffix:string -> t -> t
val canonical : t -> t
(** Variables renamed to [v0, v1, …] in first-occurrence order. *)

val equal : t -> t -> bool
(** Syntactic equality up to variable renaming ([canonical] forms
    compared), names ignored. Unlike {!Dependency.equal_tgd} this keeps
    Skolem functions apart: clauses differing only in function symbols
    merge data differently and are not identified. *)

(** {1 Conversion} *)

val of_tgd : Dependency.tgd -> t
(** Embed a plain tgd, decoding any [sk!…]-named existentials into the
    applications they denote. *)

val to_exec_tgd : t -> Dependency.tgd
(** Lower to an executable tgd: applications become [sk!…]-named
    existential variables, which both {!Chase} and the plan engine
    evaluate as deterministic Skolem terms (nested applications
    included). *)

val skolemize_set : Dependency.tgd list -> t list
(** Skolemize a tgd set: every plain existential becomes an application
    of a fresh function symbol to the clause's premise∩conclusion
    variables (the restricted chase's merging granularity). Function
    names are unique across the whole set — including symbols already
    present — so unification identifies two applications only when they
    denote the same witness of the same clause. *)

type deskolemized = {
  ds_plain : Dependency.tgd list;
      (** clauses equivalent to plain st-tgds, lowered *)
  ds_residual : (t * string) list;
      (** genuinely second-order clauses, with the reason *)
}

val deskolemize : t list -> deskolemized
(** Lower each clause to a plain tgd when that is sound: every
    application must be flat, variable-only, cover the clause's
    conclusion universals, use one argument pattern, and own its
    function symbol exclusively. Clauses failing the test are returned
    as residual SO-tgds with a human-readable reason. *)

(** {1 Pretty-printing} *)

val pp_term : Format.formatter -> term -> unit
val pp_satom : Format.formatter -> satom -> unit
val pp : Format.formatter -> t -> unit
(** Renders [name: ∃f,g. φ → ψ] with explicit function terms. *)
