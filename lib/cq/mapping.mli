(** Schema-mapping candidates: a pair of source/target conjunctive
    queries over tables, the covered correspondences, and derived forms
    (source-to-target tgd, relational algebra).

    The source and target queries have positionally aligned heads: head
    position [i] carries the value flowing along the [i]-th covered
    correspondence. *)

type corr = { c_src : string * string; c_tgt : string * string }
(** A correspondence between a source [(table, column)] and a target
    [(table, column)]. *)

type t = {
  m_name : string;
  src_query : Query.t;
  tgt_query : Query.t;
  covered : corr list;
  outer : bool;  (** outer-join realisation recommended (ISA merging) *)
  score : float; (** ranking key; lower is better *)
  provenance : string list;
      (** human-readable derivation notes (how the candidate was found);
          empty when the producing method records none *)
}

val corr : src:string * string -> tgt:string * string -> corr
val corr_of_strings : string -> string -> corr
(** [corr_of_strings "t.c" "t'.c'"]. @raise Invalid_argument without a dot. *)

val compare_corr : corr -> corr -> int
val pp_corr : Format.formatter -> corr -> unit

val make :
  ?name:string ->
  ?outer:bool ->
  ?score:float ->
  ?provenance:string list ->
  src_query:Query.t ->
  tgt_query:Query.t ->
  covered:corr list ->
  unit ->
  t
(** Sorts [covered] canonically and permutes both query heads
    accordingly.
    @raise Invalid_argument when head arities disagree with [covered]. *)

val rename : string -> t -> t
(** Replace [m_name] (e.g. to label candidates by method and rank before
    a verification or dedup pass). *)

val mark_approximate : string -> t -> t
(** Flag a candidate as derived under resource-budget degradation (an
    exhausted search answered by an approximation): prepends an
    ["approximate: <why>"] provenance line. Idempotent. *)

val is_approximate : t -> bool
(** Whether the candidate carries an ["approximate: …"] provenance
    flag. *)

val to_tgd : t -> Dependency.tgd
(** The GLAV source-to-target tuple-generating dependency: source body
    implies target body, sharing the head variables; all other target
    variables are existential. *)

val algebra_of_query :
  Smg_relational.Schema.t -> Query.t -> Smg_relational.Algebra.t
(** Body as joins (with renames aligning shared variables and selects
    for constants and repeated variables), projected on the head. *)

val src_algebra : Smg_relational.Schema.t -> t -> Smg_relational.Algebra.t
(** Like {!algebra_of_query} on the source side, except that an [outer]
    mapping turns the top-level joins into full outer joins. *)

val outer_variants :
  target:Smg_relational.Schema.t -> t -> Dependency.tgd list
(** Realise an [outer] mapping as a set of Skolemized tgds: one variant
    per non-empty subset of the source atoms (full join first); target
    key existentials become Skolem terms over the join variables, so
    the chase (with the target's key egds) merges the variants' rows
    into the full-outer-join result. Non-[outer] mappings — and outer
    bodies whose shape is not a sibling join (more than three atoms, or
    atoms not sharing the join variables) — return the plain
    {!to_tgd}. *)

val boolean_equivalent : Query.t -> Query.t -> bool
(** Equivalence of the bodies as boolean queries (heads ignored). *)

val same : t -> t -> bool
(** The paper's "same pair of connections": boolean-equivalent source
    bodies, boolean-equivalent target bodies, identical covered
    correspondences, same outer flag. Used for deduplication. *)

val same_under :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  t ->
  t ->
  bool
(** Like {!same} but with body equivalence judged *under the schemas'
    referential constraints* ({!Query.contained_under}) — two mappings
    differing only by chase-implied atoms count as the same connection.
    Used for precision/recall measurement. *)

val is_trivial : t -> bool
(** Single source table and single target table. *)

val pp : Format.formatter -> t -> unit
