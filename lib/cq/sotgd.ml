module Value = Smg_relational.Value

type term = TVar of string | TCst of Value.t | TApp of string * term list
type satom = { s_pred : string; s_args : term list }
type t = { so_name : string; so_lhs : Atom.t list; so_rhs : satom list }

(* ---- variable-name codec ------------------------------------------------ *)

(* Variable names following the [sk!f!args] convention denote Skolem
   applications; arguments are themselves encoded names (variables,
   ['=']-prefixed constants, or nested [sk!…] applications), so the two
   directions below are mutually recursive through the escape-aware
   codec in {!Chase}. *)
let rec term_of_var x =
  match Chase.parse_skolem_var x with
  | Some (f, args) -> TApp (f, List.map term_of_arg args)
  | None -> TVar x

and term_of_arg a =
  match Chase.parse_skolem_var a with
  | Some (f, args) -> TApp (f, List.map term_of_arg args)
  | None -> (
      match Chase.decode_skolem_arg a with
      | Chase.Sk_var v -> TVar v
      | Chase.Sk_cst c -> TCst c)

let rec encode_arg = function
  | TVar v -> Chase.encode_skolem_arg (Chase.Sk_var v)
  | TCst c -> Chase.encode_skolem_arg (Chase.Sk_cst c)
  | TApp (f, args) -> Chase.skolem_var ~f ~args:(List.map encode_arg args)

let var_of_app f args = Chase.skolem_var ~f ~args:(List.map encode_arg args)

let term_of_atom_term = function
  | Atom.Var x -> term_of_var x
  | Atom.Cst c -> TCst c

let atom_term_of_term = function
  | TVar v -> Atom.Var v
  | TCst c -> Atom.Cst c
  | TApp (f, args) -> Atom.Var (var_of_app f args)

let satom_of_atom (a : Atom.t) =
  { s_pred = a.Atom.pred; s_args = List.map term_of_atom_term a.Atom.args }

let atom_of_satom s =
  Atom.atom s.s_pred (List.map atom_term_of_term s.s_args)

(* ---- inspection --------------------------------------------------------- *)

let rec term_vars = function
  | TVar x -> [ x ]
  | TCst _ -> []
  | TApp (_, args) -> List.concat_map term_vars args

let rec term_functions = function
  | TVar _ | TCst _ -> []
  | TApp (f, args) -> f :: List.concat_map term_functions args

let uniq xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let rhs_vars so =
  uniq (List.concat_map (fun s -> List.concat_map term_vars s.s_args) so.so_rhs)

let vars so = uniq (Atom.vars_of_list so.so_lhs @ rhs_vars so)

let functions so =
  uniq
    (List.concat_map
       (fun s -> List.concat_map term_functions s.s_args)
       so.so_rhs)

(* ---- substitutions and unification -------------------------------------- *)

module Sub = Map.Make (String)

type subst = term Sub.t

let subst_empty = Sub.empty
let subst_find s x = Sub.find_opt x s

let rec apply_term s = function
  | TVar x as t -> (
      match Sub.find_opt x s with
      | Some t' -> apply_term s t' (* substitutions are built as chains *)
      | None -> t)
  | TCst _ as t -> t
  | TApp (f, args) -> TApp (f, List.map (apply_term s) args)

let apply_satom s sa = { sa with s_args = List.map (apply_term s) sa.s_args }

let rec occurs s x = function
  | TVar y -> (
      x = y
      || match Sub.find_opt y s with Some t -> occurs s x t | None -> false)
  | TCst _ -> false
  | TApp (_, args) -> List.exists (occurs s x) args

(* Sound and complete first-order unification (with occur check) over
   {!term}; the substitution is kept in triangular form, so lookups
   chase bindings through {!apply_term}. *)
let rec unify s t1 t2 =
  let t1 = apply_term s t1 and t2 = apply_term s t2 in
  match (t1, t2) with
  | TVar x, TVar y when x = y -> Some s
  | TVar x, t | t, TVar x -> if occurs s x t then None else Some (Sub.add x t s)
  | TCst a, TCst b -> if Value.equal a b then Some s else None
  | TApp (f, fa), TApp (g, ga) ->
      if f = g && List.length fa = List.length ga then unify_all s fa ga
      else None
  | (TCst _ | TApp _), _ -> None

and unify_all s xs ys =
  match (xs, ys) with
  | [], [] -> Some s
  | x :: xs, y :: ys -> (
      match unify s x y with Some s -> unify_all s xs ys | None -> None)
  | _ -> None

let unify_satoms s a b =
  if a.s_pred = b.s_pred && List.length a.s_args = List.length b.s_args then
    unify_all s a.s_args b.s_args
  else None

(* ---- renaming ----------------------------------------------------------- *)

let rec rename_term r = function
  | TVar x -> TVar (r x)
  | TCst _ as t -> t
  | TApp (f, args) -> TApp (f, List.map (rename_term r) args)

let rename_vars r so =
  {
    so with
    so_lhs =
      List.map
        (fun (a : Atom.t) ->
          {
            a with
            Atom.args =
              List.map
                (function
                  | Atom.Var x -> Atom.Var (r x)
                  | Atom.Cst _ as t -> t)
                a.Atom.args;
          })
        so.so_lhs;
    so_rhs =
      List.map (fun s -> { s with s_args = List.map (rename_term r) s.s_args })
        so.so_rhs;
  }

let rename_apart ~suffix so = rename_vars (fun x -> x ^ suffix) so

(* Canonical first-seen variable numbering; the normal form under which
   two clauses differing only in variable names compare equal. Function
   names are preserved — clauses with different Skolem functions are
   genuinely different mappings (they merge differently), so unlike
   [Dependency.equal_tgd] this never identifies them. *)
let canonical so =
  let tbl = Hashtbl.create 16 in
  let r x =
    match Hashtbl.find_opt tbl x with
    | Some y -> y
    | None ->
        let y = Printf.sprintf "v%d" (Hashtbl.length tbl) in
        Hashtbl.replace tbl x y;
        y
  in
  List.iter (fun a -> List.iter (fun v -> ignore (r v)) (Atom.vars a)) so.so_lhs;
  List.iter
    (fun s -> List.iter (fun v -> ignore (r v)) (List.concat_map term_vars s.s_args))
    so.so_rhs;
  rename_vars r so

let equal a b =
  let ca = canonical { a with so_name = "" }
  and cb = canonical { b with so_name = "" } in
  ca = cb

(* ---- conversion to and from plain tgds ---------------------------------- *)

let of_tgd (t : Dependency.tgd) =
  {
    so_name = t.Dependency.tgd_name;
    so_lhs = t.Dependency.lhs;
    so_rhs = List.map satom_of_atom t.Dependency.rhs;
  }

let to_exec_tgd so =
  Dependency.tgd ~name:so.so_name ~lhs:so.so_lhs
    (List.map atom_of_satom so.so_rhs)

(* Skolemize every plain existential of every tgd in the set, keeping
   pre-existing [sk!] variables as the applications they already denote.
   Function names are fresh across the whole set (including functions
   already present), so later unification identifies two applications
   only when they really are the same function of the same mapping —
   the invariant the composition algorithm relies on. *)
let skolemize_set tgds =
  let sos = List.map of_tgd tgds in
  let used = Hashtbl.create 16 in
  List.iter
    (fun so -> List.iter (fun f -> Hashtbl.replace used f ()) (functions so))
    sos;
  let fresh_fn base =
    let rec go i =
      let cand = if i = 0 then base else Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem used cand then go (i + 1)
      else begin
        Hashtbl.replace used cand ();
        cand
      end
    in
    go 0
  in
  List.mapi
    (fun i so ->
      let lhs_vars = Atom.vars_of_list so.so_lhs in
      let shared =
        List.filter (fun x -> List.mem x lhs_vars) (rhs_vars so)
      in
      let args = List.map (fun x -> TVar x) shared in
      let assigned = Hashtbl.create 4 in
      let rec sk t =
        match t with
        | TVar x when not (List.mem x lhs_vars) -> (
            match Hashtbl.find_opt assigned x with
            | Some a -> a
            | None ->
                let f = fresh_fn (Printf.sprintf "sk%d_%s" i x) in
                let a = TApp (f, args) in
                Hashtbl.replace assigned x a;
                a)
        | TVar _ | TCst _ -> t
        | TApp (f, aa) -> TApp (f, List.map sk aa)
      in
      {
        so with
        so_rhs =
          List.map (fun s -> { s with s_args = List.map sk s.s_args }) so.so_rhs;
      })
    sos

type deskolemized = {
  ds_plain : Dependency.tgd list;
  ds_residual : (t * string) list;
}

(* A clause de-Skolemizes soundly when each application is flat, has
   variable-only arguments covering every universal variable of the
   clause's conclusion, occurs with a single argument pattern, and its
   function appears in no other clause of the set: then two triggers
   agreeing on any application's arguments generate identical
   conclusions, so replacing each application by a fresh existential
   changes nothing up to logical equivalence. Anything else is reported
   as a genuine second-order residue with the reason. *)
let deskolemize sos =
  let owner = Hashtbl.create 16 in
  List.iteri
    (fun i so ->
      List.iter
        (fun f ->
          match Hashtbl.find_opt owner f with
          | Some j when j <> i -> Hashtbl.replace owner f (-1) (* shared *)
          | Some _ -> ()
          | None -> Hashtbl.replace owner f i)
        (functions so))
    sos;
  let results =
    List.map
      (fun so ->
        let lhs_vars = Atom.vars_of_list so.so_lhs in
        let shared = List.filter (fun x -> List.mem x lhs_vars) (rhs_vars so) in
        let patterns = Hashtbl.create 4 in
        let reason = ref None in
        let note r = if !reason = None then reason := Some r in
        let rec scan t =
          match t with
          | TVar _ | TCst _ -> ()
          | TApp (f, args) ->
              if Hashtbl.find_opt owner f = Some (-1) then
                note
                  (Printf.sprintf "function %s is shared across clauses" f);
              List.iter
                (fun a ->
                  match a with
                  | TVar _ -> ()
                  | TCst c ->
                      note
                        (Printf.sprintf "%s has constant argument %s" f
                           (Value.to_string c))
                  | TApp (g, _) ->
                      note
                        (Printf.sprintf "nested Skolem term %s(… %s(…) …)" f g))
                args;
              let arg_vars = List.concat_map term_vars args in
              List.iter
                (fun x ->
                  if not (List.mem x arg_vars) then
                    note
                      (Printf.sprintf
                         "arguments of %s omit universal variable %s" f x))
                shared;
              (match Hashtbl.find_opt patterns f with
              | Some args' when args' <> args ->
                  note
                    (Printf.sprintf "%s is used with differing argument lists"
                       f)
              | Some _ -> ()
              | None -> Hashtbl.replace patterns f args);
              List.iter scan args
        in
        List.iter (fun s -> List.iter scan s.s_args) so.so_rhs;
        match !reason with
        | Some r -> Either.Right (so, r)
        | None ->
            (* each distinct application becomes a fresh existential *)
            let fresh = Hashtbl.create 4 in
            let taken = vars so in
            let next = ref 0 in
            let fresh_var () =
              let rec go () =
                let v = Printf.sprintf "e%d" !next in
                incr next;
                if List.mem v taken then go () else v
              in
              go ()
            in
            let term = function
              | TVar x -> Atom.Var x
              | TCst c -> Atom.Cst c
              | TApp (f, _) -> (
                  match Hashtbl.find_opt fresh f with
                  | Some v -> Atom.Var v
                  | None ->
                      let v = fresh_var () in
                      Hashtbl.replace fresh f v;
                      Atom.Var v)
            in
            let rhs =
              List.map
                (fun s -> Atom.atom s.s_pred (List.map term s.s_args))
                so.so_rhs
            in
            Either.Left (Dependency.tgd ~name:so.so_name ~lhs:so.so_lhs rhs))
      sos
  in
  {
    ds_plain = List.filter_map (function Either.Left t -> Some t | _ -> None) results;
    ds_residual =
      List.filter_map (function Either.Right r -> Some r | _ -> None) results;
  }

(* ---- pretty-printing ---------------------------------------------------- *)

let rec pp_term ppf = function
  | TVar x -> Fmt.string ppf x
  | TCst c -> Value.pp ppf c
  | TApp (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:Fmt.comma pp_term) args

let pp_satom ppf s =
  Fmt.pf ppf "%s(%a)" s.s_pred (Fmt.list ~sep:Fmt.comma pp_term) s.s_args

let pp ppf so =
  let fns = functions so in
  let pp_fns ppf = function
    | [] -> ()
    | fs -> Fmt.pf ppf "∃%a. " (Fmt.list ~sep:Fmt.comma Fmt.string) fs
  in
  Fmt.pf ppf "@[<hov2>%s:@ %a%a@ →@ %a@]" so.so_name pp_fns fns
    (Fmt.list ~sep:(Fmt.any " ∧ ") Atom.pp)
    so.so_lhs
    (Fmt.list ~sep:(Fmt.any " ∧ ") pp_satom)
    so.so_rhs
