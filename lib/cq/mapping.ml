module Schema = Smg_relational.Schema
module Algebra = Smg_relational.Algebra

type corr = { c_src : string * string; c_tgt : string * string }

type t = {
  m_name : string;
  src_query : Query.t;
  tgt_query : Query.t;
  covered : corr list;
  outer : bool;
  score : float;
  provenance : string list;
      (* human-readable derivation notes, best first; empty when the
         producing method records none *)
}

let corr ~src ~tgt = { c_src = src; c_tgt = tgt }

let split_tc s =
  match String.index_opt s '.' with
  | None -> invalid_arg (Printf.sprintf "correspondence %S: expected table.column" s)
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let corr_of_strings a b = { c_src = split_tc a; c_tgt = split_tc b }
let compare_corr = Stdlib.compare

let pp_corr ppf c =
  let s_t, s_c = c.c_src and t_t, t_c = c.c_tgt in
  Fmt.pf ppf "%s.%s ↔ %s.%s" s_t s_c t_t t_c

let make ?(name = "mapping") ?(outer = false) ?(score = 0.)
    ?(provenance = []) ~src_query ~tgt_query ~covered () =
  let n = List.length covered in
  if List.length src_query.Query.head <> n then
    invalid_arg "mapping: source head arity mismatch";
  if List.length tgt_query.Query.head <> n then
    invalid_arg "mapping: target head arity mismatch";
  (* Sort correspondences canonically and permute the heads alongside. *)
  let indexed = List.mapi (fun i c -> (c, i)) covered in
  let sorted = List.sort (fun (a, _) (b, _) -> compare_corr a b) indexed in
  let perm = List.map snd sorted in
  let permute l = List.map (fun i -> List.nth l i) perm in
  {
    m_name = name;
    src_query = { src_query with Query.head = permute src_query.Query.head };
    tgt_query = { tgt_query with Query.head = permute tgt_query.Query.head };
    covered = List.map fst sorted;
    outer;
    score;
    provenance;
  }

let rename name m = { m with m_name = name }

(* Degraded candidates (budget-exhausted searches answered by an
   approximation) are flagged by a recognisable provenance prefix, so
   the flag survives serialisation, renaming, and dedup. *)
let approx_prefix = "approximate: "

let mark_approximate why m =
  if
    List.exists
      (fun p -> String.length p >= String.length approx_prefix
                && String.sub p 0 (String.length approx_prefix) = approx_prefix)
      m.provenance
  then m
  else { m with provenance = (approx_prefix ^ why) :: m.provenance }

let is_approximate m =
  List.exists
    (fun p ->
      String.length p >= String.length approx_prefix
      && String.sub p 0 (String.length approx_prefix) = approx_prefix)
    m.provenance

let to_tgd m =
  (* Rename the target query apart, then identify its head variables with
     the source head terms. *)
  let tgt = Query.rename_apart ~suffix:"_t" m.tgt_query in
  let subst =
    List.fold_left2
      (fun acc t_term s_term ->
        match t_term with
        | Atom.Var x -> Atom.Subst.bind acc x s_term
        | Atom.Cst _ -> acc)
      Atom.Subst.empty tgt.Query.head m.src_query.Query.head
  in
  let rhs = List.map (Atom.apply subst) tgt.Query.body in
  Dependency.tgd ~name:m.m_name ~lhs:m.src_query.Query.body rhs

(* --- algebra ----------------------------------------------------------- *)

let algebra_of_atoms schema atoms ~head ~outer =
  let fresh = ref 0 in
  let selects = ref [] in
  let exprs =
    List.map
      (fun (a : Atom.t) ->
        let tbl = Schema.find_table_exn schema a.Atom.pred in
        let cols = Schema.column_names tbl in
        if List.length cols <> List.length a.args then
          invalid_arg (Printf.sprintf "algebra: arity mismatch on %s" a.pred);
        let seen = Hashtbl.create 8 in
        let pairs =
          List.map2
            (fun col term ->
              match term with
              | Atom.Var x when not (Hashtbl.mem seen x) ->
                  Hashtbl.replace seen x ();
                  (col, x)
              | Atom.Var x ->
                  (* repeated variable within one atom: equality select *)
                  incr fresh;
                  let tmp = Printf.sprintf "%s__%d" x !fresh in
                  selects := Algebra.Eq (Algebra.Col x, Algebra.Col tmp) :: !selects;
                  (col, tmp)
              | Atom.Cst c ->
                  incr fresh;
                  let tmp = Printf.sprintf "_c__%d" !fresh in
                  selects := Algebra.Eq (Algebra.Col tmp, Algebra.Const c) :: !selects;
                  (col, tmp))
            cols a.args
        in
        Algebra.Rename (pairs, Algebra.Table a.pred))
      atoms
  in
  let joined =
    match exprs with
    | [] -> invalid_arg "algebra: empty body"
    | e :: rest ->
        List.fold_left
          (fun acc e' ->
            if outer then Algebra.FullOuter (acc, e') else Algebra.Join (acc, e'))
          e rest
  in
  let with_selects =
    List.fold_left (fun acc p -> Algebra.Select (p, acc)) joined !selects
  in
  let head_cols =
    List.map
      (function
        | Atom.Var x -> x
        | Atom.Cst _ -> invalid_arg "algebra: constant head")
      head
  in
  Algebra.Project (head_cols, with_selects)

let algebra_of_query schema (q : Query.t) =
  algebra_of_atoms schema q.Query.body ~head:q.Query.head ~outer:false

let src_algebra schema m =
  algebra_of_atoms schema m.src_query.Query.body ~head:m.src_query.Query.head
    ~outer:m.outer

(* --- outer-join realisation as Skolemized tgd variants ------------------ *)

(* For an [outer] mapping whose source body joins sibling tables, the
   full-outer-join semantics is a *set* of tgds — one per subset of the
   joined atoms — whose target key existentials are Skolemized over the
   join variables. Triggers from different variants then agree on the
   Skolem term, and the target's key egds merge their partial rows into
   the outer-join result (the nested-mapping mechanism of [Fuxman et
   al. VLDB'06] that the paper cites). *)
let outer_variants ~target m =
  let tgd = to_tgd m in
  let atoms = tgd.Dependency.lhs in
  let n = List.length atoms in
  let var_atoms x =
    List.filter (fun (a : Atom.t) -> List.mem x (Atom.vars a)) atoms
  in
  let join_vars =
    List.filter
      (fun x -> List.length (var_atoms x) >= 2)
      (Atom.vars_of_list atoms)
  in
  let all_atoms_share_joins =
    List.for_all
      (fun (a : Atom.t) ->
        List.for_all (fun j -> List.mem j (Atom.vars a)) join_vars)
      atoms
  in
  if (not m.outer) || n < 2 || n > 3 || join_vars = []
     || not all_atoms_share_joins
  then [ tgd ]
  else begin
    let universal = Dependency.universal_vars tgd in
    (* skolemize target-key existentials over the join variables; the
       Skolem function is named after the key column it fills *)
    let key_site (rhs : Atom.t list) x =
      List.find_map
        (fun (a : Atom.t) ->
          let t = Schema.find_table_exn target a.Atom.pred in
          let cols = Schema.column_names t in
          List.find_map
            (fun (col, term) ->
              if
                List.mem col t.Schema.key
                &&
                match term with
                | Atom.Var y -> String.equal x y
                | Atom.Cst _ -> false
              then Some (a.Atom.pred ^ "_" ^ col)
              else None)
            (List.combine cols a.Atom.args))
        rhs
    in
    let skolemize f = Chase.skolem_var ~f ~args:join_vars in
    (* non-empty subsets of the atom list, full set first *)
    let rec subsets = function
      | [] -> [ [] ]
      | a :: rest ->
          let s = subsets rest in
          List.map (fun t -> a :: t) s @ s
    in
    let variants =
      List.filter (fun s -> s <> []) (subsets atoms)
      |> List.sort (fun a b -> compare (List.length b) (List.length a))
    in
    List.mapi
      (fun i lhs ->
        let available = Atom.vars_of_list lhs in
        let fresh = ref 0 in
        let rhs =
          List.map
            (fun (a : Atom.t) ->
              {
                a with
                Atom.args =
                  List.map
                    (fun term ->
                      match term with
                      | Atom.Cst _ -> term
                      | Atom.Var x -> (
                          match
                            if List.mem x universal then None
                            else key_site tgd.Dependency.rhs x
                          with
                          | Some f -> Atom.Var (skolemize f)
                          | None ->
                          if List.mem x available then term
                          else begin
                            (* a head variable this variant cannot bind *)
                            incr fresh;
                            Atom.Var (Printf.sprintf "nx_%s_%d" x !fresh)
                          end))
                    a.Atom.args;
              })
            tgd.Dependency.rhs
        in
        Dependency.tgd
          ~name:(Printf.sprintf "%s~%d" m.m_name i)
          ~lhs rhs)
      variants
  end

(* --- comparison -------------------------------------------------------- *)

let boolean_equivalent (a : Query.t) (b : Query.t) =
  let strip q = { q with Query.head = [] } in
  Query.equivalent (strip a) (strip b)

let same_metadata a b =
  List.length a.covered = List.length b.covered
  && List.for_all2 (fun x y -> compare_corr x y = 0) a.covered b.covered
  && a.outer = b.outer

let same a b =
  same_metadata a b
  && boolean_equivalent a.src_query b.src_query
  && boolean_equivalent a.tgt_query b.tgt_query

let same_under ~source ~target a b =
  (* Heads stay in play: both heads are canonically ordered by the
     sorted covered list, and homomorphisms align them positionally, so
     this distinguishes *which* columns feed each correspondence —
     stripping heads before saturating would conflate all connected
     joins over the same tables. *)
  let equiv_under schema (x : Query.t) (y : Query.t) =
    Query.contained_under ~schema x y && Query.contained_under ~schema y x
  in
  same_metadata a b
  && equiv_under source a.src_query b.src_query
  && equiv_under target a.tgt_query b.tgt_query

let tables_of (q : Query.t) =
  List.sort_uniq compare (List.map (fun (a : Atom.t) -> a.Atom.pred) q.Query.body)

let is_trivial m =
  List.length (tables_of m.src_query) <= 1
  && List.length (tables_of m.tgt_query) <= 1

let pp ppf m =
  Fmt.pf ppf "@[<v2>%s (score %.2f%s):@,src: %a@,tgt: %a@,covers: %a%a@]"
    m.m_name m.score
    (if m.outer then ", outer" else "")
    Query.pp m.src_query Query.pp m.tgt_query
    (Fmt.list ~sep:Fmt.comma pp_corr)
    m.covered
    (fun ppf notes ->
      List.iter (fun n -> Fmt.pf ppf "@,· %s" n) notes)
    m.provenance
