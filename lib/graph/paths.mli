(** Bounded enumeration of simple paths, with lexicographic costs.

    Used to find "minimally lossy" connections (§3.3 of the paper):
    among paths between two marked nodes we prefer the ones with the
    fewest functional-direction reversals, breaking ties by length. *)

type 'e path = {
  edge_ids : int list;  (** in path order *)
  nodes : int list;     (** [src; ...; dst], one more than edges *)
}

val simple_paths :
  ?budget:Smg_robust.Budget.t ->
  'e Digraph.t ->
  src:int ->
  dst:int ->
  max_len:int ->
  ok:('e Digraph.edge -> bool) ->
  'e path list
(** All simple (node-repetition-free) paths from [src] to [dst] of at
    most [max_len] edges, using only edges accepted by [ok]. The
    degenerate [src = dst] case yields the empty path. The enumeration
    burns one unit of [budget] fuel per DFS expansion; on exhaustion it
    stops and returns the paths found so far (a beam rather than the
    full set — check {!Smg_robust.Budget.exhausted} to tell). *)

val best_paths :
  ?budget:Smg_robust.Budget.t ->
  'e Digraph.t ->
  src:int ->
  dst:int ->
  max_len:int ->
  ok:('e Digraph.edge -> bool) ->
  score:('e path -> float) ->
  'e path list
(** The simple paths minimising [score] (all ties kept), over the
    possibly budget-truncated enumeration of {!simple_paths}. *)
