type tree = { root : int; edge_ids : int list; cost : float }

type solution = { trees : tree list; exact : bool }

module Budget = Smg_robust.Budget

let eps = 1e-9

(* Dreyfus–Wagner for directed Steiner arborescence.

   A(X, v) = cheapest arborescence rooted at v reaching terminal set X.
     A({t}, v)      = d(v, t)
     A(X, v), |X|>1 = min_w ( d(v, w) + min_{0 ⊂ X1 ⊂ X} A(X1, w) + A(X\X1, w) )

   Terminal sets are bitmasks over the terminal list. Reconstruction
   records, per (X, v), either a Via(w, X1) split or the direct path for
   singletons.

   The DP is exponential in the terminal count, so it runs under an
   optional budget: fuel is burnt per inner relaxation row (one check
   per n cheap operations, keeping guard overhead negligible), and when
   the budget exhausts the whole DP is abandoned in favour of the
   shortest-path-tree 2-approximation below. *)

type choice =
  | Leaf of int (* terminal node: shortest path v -> t *)
  | Via of int * int (* (w, submask): path v -> w, then split X1 / X\X1 at w *)

exception Out_of_budget

let reconstruct_with sp g a ch full root =
  ignore g;
  if a.(full).(root) = infinity then None
  else begin
    let edges = Hashtbl.create 16 in
    let add_path u v =
      match Dijkstra.path_edges sp.(u) v with
      | None -> assert false
      | Some ids -> List.iter (fun id -> Hashtbl.replace edges id ()) ids
    in
    let rec go mask v =
      match ch.(mask).(v) with
      | Leaf t -> add_path v t
      | Via (w, sub) ->
          add_path v w;
          go sub w;
          go (mask lxor sub) w
    in
    go full root;
    let edge_ids =
      Hashtbl.fold (fun id () acc -> id :: acc) edges [] |> List.sort compare
    in
    Some { root; edge_ids; cost = a.(full).(root) }
  end

(* The exact DP over precomputed all-pairs distances; [None] when the
   budget exhausts before it completes. *)
let dreyfus_wagner ?budget g sp ~terminals =
  let n = Digraph.n_nodes g in
  let terms = Array.of_list terminals in
  let k = Array.length terms in
  let burn m =
    match budget with
    | None -> ()
    | Some b -> if not (Budget.burn b m) then raise Out_of_budget
  in
  let d u v = Option.value ~default:infinity (Dijkstra.dist sp.(u) v) in
  let full = (1 lsl k) - 1 in
  (* a.(mask).(v) : cost; ch.(mask).(v) : reconstruction choice *)
  let a = Array.make_matrix (full + 1) n infinity in
  let ch = Array.make_matrix (full + 1) n (Leaf (-1)) in
  try
    for i = 0 to k - 1 do
      let mask = 1 lsl i in
      burn n;
      for v = 0 to n - 1 do
        a.(mask).(v) <- d v terms.(i);
        ch.(mask).(v) <- Leaf terms.(i)
      done
    done;
    for mask = 1 to full do
      if mask land (mask - 1) <> 0 then begin
        (* |mask| >= 2: first the best split at each node w *)
        let split_cost = Array.make n infinity in
        let split_sub = Array.make n 0 in
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let other = mask lxor !sub in
          (* Consider each unordered partition once: sub < other. *)
          if !sub < other then begin
            burn n;
            for w = 0 to n - 1 do
              let c = a.(!sub).(w) +. a.(other).(w) in
              if c < split_cost.(w) then begin
                split_cost.(w) <- c;
                split_sub.(w) <- !sub
              end
            done
          end;
          sub := (!sub - 1) land mask
        done;
        (* Then the cheapest w reached from each v.  This is itself a
           shortest-path relaxation: a.(mask).(v) = min_w (d v w + split(w)).
           With all-pairs distances available we do it directly. *)
        for v = 0 to n - 1 do
          burn n;
          for w = 0 to n - 1 do
            if split_cost.(w) < infinity then begin
              let c = d v w +. split_cost.(w) in
              if c < a.(mask).(v) then begin
                a.(mask).(v) <- c;
                ch.(mask).(v) <- Via (w, split_sub.(w))
              end
            end
          done
        done
      end
    done;
    Some (fun root -> reconstruct_with sp g a ch full root)
  with Out_of_budget -> None

(* Degradation ladder, rung two: the union of cheapest root→terminal
   paths. Polynomial, and a classic 2-approximation of the optimal
   Steiner arborescence (each terminal's path is no longer than its
   branch in the optimum, and edges shared between paths are counted
   once). *)
let shortest_path_tree g sp ~cost ~root ~terminals =
  let edge_cost id = Option.value ~default:infinity (cost (Digraph.edge g id)) in
  let edges = Hashtbl.create 16 in
  let complete =
    List.for_all
      (fun t ->
        match Dijkstra.path_edges sp.(root) t with
        | None -> false
        | Some ids ->
            List.iter (fun id -> Hashtbl.replace edges id ()) ids;
            true)
      terminals
  in
  if not complete then None
  else begin
    let edge_ids =
      Hashtbl.fold (fun id () acc -> id :: acc) edges [] |> List.sort compare
    in
    let total =
      List.fold_left (fun acc id -> acc +. edge_cost id) 0. edge_ids
    in
    Some { root; edge_ids; cost = total }
  end

(* ---- shared all-pairs context + per-caller DP memo --------------------- *)

(* The all-pairs matrix depends only on (graph, cost) and burns no fuel,
   so it is safe to share across domains: computed once under the mutex,
   read-only afterwards. *)
type 'e context = {
  cg : 'e Digraph.t;
  ccost : 'e Digraph.edge -> float option;
  clock : Mutex.t;
  mutable csp : Dijkstra.result array option;
}

let context g ~cost = { cg = g; ccost = cost; clock = Mutex.create (); csp = None }

let context_sp ctx =
  Mutex.lock ctx.clock;
  let sp =
    match ctx.csp with
    | Some sp -> sp
    | None ->
        let sp = Dijkstra.all_pairs ctx.cg ~cost:ctx.ccost in
        ctx.csp <- Some sp;
        sp
  in
  Mutex.unlock ctx.clock;
  sp

(* The DP memo is per session, not per context: a memo hit skips the
   DP's fuel burn, so sharing it across concurrently running tasks would
   make fuel accounting depend on the steal schedule. One session per
   task keeps each task's burn a function of its own inputs only. Only
   budget-complete (exact) solutions are cached — a degraded result
   reflects how much fuel happened to remain at the time. *)
type 'e session = {
  sctx : 'e context;
  memo : (int list, int -> tree option) Hashtbl.t;
}

let session sctx = { sctx; memo = Hashtbl.create 16 }

let solve_all_in ?budget s ~terminals =
  let key = List.sort_uniq compare terminals in
  match Hashtbl.find_opt s.memo key with
  | Some reconstruct -> (reconstruct, true)
  | None -> (
      let sp = context_sp s.sctx in
      match dreyfus_wagner ?budget s.sctx.cg sp ~terminals:key with
      | Some reconstruct ->
          Hashtbl.replace s.memo key reconstruct;
          (reconstruct, true)
      | None ->
          ( (fun root ->
              shortest_path_tree s.sctx.cg sp ~cost:s.sctx.ccost ~root
                ~terminals:key),
            false ))

let solve_all ?budget g ~cost ~terminals =
  let sp = Dijkstra.all_pairs g ~cost in
  match dreyfus_wagner ?budget g sp ~terminals with
  | Some reconstruct -> (reconstruct, true)
  | None -> ((fun root -> shortest_path_tree g sp ~cost ~root ~terminals), false)

let arborescence ?budget g ~cost ~root ~terminals =
  if terminals = [] then None
  else
    let solve, _exact = solve_all ?budget g ~cost ~terminals in
    solve root

let keep_minimal candidates =
  match candidates with
  | [] -> []
  | _ ->
      let best =
        List.fold_left (fun m t -> min m t.cost) infinity candidates
      in
      List.filter (fun t -> t.cost <= best +. eps) candidates

let minimal_trees_bounded ?budget g ~cost ~roots ~terminals =
  if terminals = [] || roots = [] then { trees = []; exact = true }
  else
    let solve, exact = solve_all ?budget g ~cost ~terminals in
    { trees = keep_minimal (List.filter_map solve roots); exact }

let minimal_trees_in ?budget s ~roots ~terminals =
  if terminals = [] || roots = [] then { trees = []; exact = true }
  else
    let solve, exact = solve_all_in ?budget s ~terminals in
    { trees = keep_minimal (List.filter_map solve roots); exact }

let minimal_trees g ~cost ~roots ~terminals =
  (minimal_trees_bounded g ~cost ~roots ~terminals).trees

let tree_nodes g t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.replace tbl t.root ();
  List.iter
    (fun id ->
      let e = Digraph.edge g id in
      Hashtbl.replace tbl e.src ();
      Hashtbl.replace tbl e.dst ())
    t.edge_ids;
  Hashtbl.fold (fun v () acc -> v :: acc) tbl [] |> List.sort compare
