(** Minimum-cost Steiner arborescences: exact Dreyfus–Wagner under an
    optional resource budget, degrading to a shortest-path-tree
    2-approximation when the budget exhausts.

    Used to compute the paper's "minimal functional trees": trees rooted
    at a node from which every terminal is reached along (cheap,
    typically functional) directed paths. Terminal counts here are small
    (≤ 10 or so), which is exactly the regime where the Dreyfus–Wagner
    dynamic program over terminal subsets is practical — but the DP is
    exponential in the terminal count, so callers facing adversarial
    inputs thread a {!Smg_robust.Budget.t} through it. *)

type tree = {
  root : int;
  edge_ids : int list;  (** edges of the arborescence, deduplicated *)
  cost : float;
}

type solution = {
  trees : tree list;
  exact : bool;
      (** [false] when the exact DP ran out of budget and the trees come
          from the shortest-path-tree approximation instead *)
}

val arborescence :
  ?budget:Smg_robust.Budget.t ->
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  root:int ->
  terminals:int list ->
  tree option
(** Minimum-cost arborescence rooted at [root] reaching every terminal,
    or [None] if some terminal is unreachable. Terminals may include the
    root; an empty terminal list is degenerate and yields [None]. With a
    [budget], exhaustion mid-DP falls back to the union of cheapest
    root→terminal paths (a 2-approximation). *)

val minimal_trees_bounded :
  ?budget:Smg_robust.Budget.t ->
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  roots:int list ->
  terminals:int list ->
  solution
(** Arborescences over every candidate root, keeping exactly the ones
    whose cost ties the minimum over the roots (within [eps = 1e-9]).
    Empty if no root reaches all terminals, or the terminal list is
    empty. [exact] records whether the Dreyfus–Wagner DP completed
    within budget; when it did not, the kept trees are shortest-path
    unions and their costs upper-bound the optimum by at most 2×. *)

val minimal_trees :
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  roots:int list ->
  terminals:int list ->
  tree list
(** [minimal_trees_bounded] without a budget: always exact. *)

val tree_nodes : 'e Digraph.t -> tree -> int list
(** All nodes touched by the tree (root included), ascending. *)
