(** Minimum-cost Steiner arborescences: exact Dreyfus–Wagner under an
    optional resource budget, degrading to a shortest-path-tree
    2-approximation when the budget exhausts.

    Used to compute the paper's "minimal functional trees": trees rooted
    at a node from which every terminal is reached along (cheap,
    typically functional) directed paths. Terminal counts here are small
    (≤ 10 or so), which is exactly the regime where the Dreyfus–Wagner
    dynamic program over terminal subsets is practical — but the DP is
    exponential in the terminal count, so callers facing adversarial
    inputs thread a {!Smg_robust.Budget.t} through it. *)

type tree = {
  root : int;
  edge_ids : int list;  (** edges of the arborescence, deduplicated *)
  cost : float;
}

type solution = {
  trees : tree list;
  exact : bool;
      (** [false] when the exact DP ran out of budget and the trees come
          from the shortest-path-tree approximation instead *)
}

val arborescence :
  ?budget:Smg_robust.Budget.t ->
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  root:int ->
  terminals:int list ->
  tree option
(** Minimum-cost arborescence rooted at [root] reaching every terminal,
    or [None] if some terminal is unreachable. Terminals may include the
    root; an empty terminal list is degenerate and yields [None]. With a
    [budget], exhaustion mid-DP falls back to the union of cheapest
    root→terminal paths (a 2-approximation). *)

val minimal_trees_bounded :
  ?budget:Smg_robust.Budget.t ->
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  roots:int list ->
  terminals:int list ->
  solution
(** Arborescences over every candidate root, keeping exactly the ones
    whose cost ties the minimum over the roots (within [eps = 1e-9]).
    Empty if no root reaches all terminals, or the terminal list is
    empty. [exact] records whether the Dreyfus–Wagner DP completed
    within budget; when it did not, the kept trees are shortest-path
    unions and their costs upper-bound the optimum by at most 2×. *)

val minimal_trees :
  'e Digraph.t ->
  cost:('e Digraph.edge -> float option) ->
  roots:int list ->
  terminals:int list ->
  tree list
(** [minimal_trees_bounded] without a budget: always exact. *)

type 'e context
(** Shared all-pairs shortest-path state for one (graph, cost) pair.
    The matrix is computed lazily on first use, under a mutex, and is
    read-only afterwards — safe to share between domains. It burns no
    fuel, so sharing it never perturbs budget accounting. *)

val context :
  'e Digraph.t -> cost:('e Digraph.edge -> float option) -> 'e context

type 'e session
(** A per-caller solver over a shared {!context}: memoizes exact
    Dreyfus–Wagner solutions by terminal set, so repeated solves over
    the same terminals (e.g. across candidate roots, or across the
    shrinking-subset search) pay for the DP once. Not thread-safe —
    one session per task; memo hits skip the DP's fuel burn, so a
    session shared across concurrent tasks would make fuel accounting
    schedule-dependent. Budget-degraded solutions are never cached. *)

val session : 'e context -> 'e session

val minimal_trees_in :
  ?budget:Smg_robust.Budget.t ->
  'e session ->
  roots:int list ->
  terminals:int list ->
  solution
(** {!minimal_trees_bounded} through a session's memo and its context's
    shared all-pairs matrix. *)

val tree_nodes : 'e Digraph.t -> tree -> int list
(** All nodes touched by the tree (root included), ascending. *)
