type 'e path = { edge_ids : int list; nodes : int list }

module Budget = Smg_robust.Budget

let simple_paths ?budget g ~src ~dst ~max_len ~ok =
  let within () =
    match budget with None -> true | Some b -> Budget.tick b
  in
  let acc = ref [] in
  let on_path = Hashtbl.create 16 in
  let rec dfs v edges_rev nodes_rev len =
    if v = dst then
      acc :=
        { edge_ids = List.rev edges_rev; nodes = List.rev nodes_rev } :: !acc;
    (* Keep extending even after touching dst only if dst <> v later; a
       simple path visiting dst must end there, so stop here. *)
    if v <> dst && len < max_len then
      Digraph.iter_out g v (fun e ->
          if ok e && (not (Hashtbl.mem on_path e.dst)) && within () then begin
            Hashtbl.replace on_path e.dst ();
            dfs e.dst (e.id :: edges_rev) (e.dst :: nodes_rev) (len + 1);
            Hashtbl.remove on_path e.dst
          end)
  in
  Hashtbl.replace on_path src ();
  dfs src [] [ src ] 0;
  List.rev !acc

let best_paths ?budget g ~src ~dst ~max_len ~ok ~score =
  let all = simple_paths ?budget g ~src ~dst ~max_len ~ok in
  match all with
  | [] -> []
  | _ ->
      let best = List.fold_left (fun m p -> min m (score p)) infinity all in
      List.filter (fun p -> score p <= best +. 1e-9) all
