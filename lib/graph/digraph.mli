(** Labelled directed multigraphs over integer nodes [0 .. n-1].

    The graph is immutable once built. Node payloads are the caller's
    business; edges carry an arbitrary label. Parallel edges and self
    loops are allowed.

    Adjacency is stored in CSR (compressed sparse row) form — flat int
    arrays of edge ids grouped by endpoint — so neighbourhood iteration
    ({!iter_out} / {!iter_in}) is allocation-free and cache-friendly.
    Immutability also makes a graph safe to share between domains. *)

type 'e edge = private {
  id : int;  (** position in {!edges}; unique *)
  src : int;
  dst : int;
  lbl : 'e;
}

type 'e t

val make : n:int -> (int * int * 'e) list -> 'e t
(** [make ~n es] builds a graph with [n] nodes and one edge per
    [(src, dst, lbl)] triple, numbered in list order.
    @raise Invalid_argument if an endpoint is outside [0 .. n-1]. *)

val n_nodes : 'e t -> int
val n_edges : 'e t -> int

val edge : 'e t -> int -> 'e edge
(** [edge g id] is the edge with identifier [id]. *)

val edges : 'e t -> 'e edge list
(** All edges, in identifier order. *)

val out_edges : 'e t -> int -> 'e edge list
(** Edges leaving the given node, in identifier order. Allocates; hot
    loops should use {!iter_out} over the CSR arrays instead. *)

val in_edges : 'e t -> int -> 'e edge list
(** Edges entering the given node, in identifier order. Allocates; hot
    loops should use {!iter_in}. *)

val out_degree : 'e t -> int -> int
val in_degree : 'e t -> int -> int

val iter_out : 'e t -> int -> ('e edge -> unit) -> unit
(** [iter_out g v f] applies [f] to each edge leaving [v], in identifier
    order, without allocating — a direct walk of [v]'s CSR slice. *)

val iter_in : 'e t -> int -> ('e edge -> unit) -> unit
(** Allocation-free iteration over the edges entering [v], in identifier
    order. *)

val nodes : 'e t -> int list
(** [0; 1; ...; n-1]. *)

val fold_edges : ('a -> 'e edge -> 'a) -> 'a -> 'e t -> 'a

val map_labels : ('e -> 'f) -> 'e t -> 'f t
(** Same structure, relabelled edges (identifiers preserved). *)

val reverse : 'e t -> 'e t
(** Every edge flipped; identifiers preserved. *)

val is_tree_under : 'e t -> root:int -> edge_ids:int list -> bool
(** [is_tree_under g ~root ~edge_ids] checks that the given edge subset
    forms an arborescence rooted at [root]: every edge's destination has
    in-degree exactly one within the subset, the root has in-degree zero,
    and all edges are reachable from the root through the subset. *)
