type 'e edge = { id : int; src : int; dst : int; lbl : 'e }

(* CSR (compressed sparse row) adjacency: [out_e] holds edge ids grouped
   by source node, [out_idx.(v) .. out_idx.(v+1) - 1] is node [v]'s
   slice, ids ascending within a slice (counting sort is stable and the
   edge array is already in id order). Same for [in_idx]/[in_e] keyed by
   destination. Two int reads locate a node's neighbourhood and the
   whole structure is four flat int arrays — no per-node boxing, no
   pointer chasing in the Dijkstra / path-search hot loops. *)
type 'e t = {
  n : int;
  edge_arr : 'e edge array;
  out_idx : int array;  (* length n+1 *)
  out_e : int array;  (* length n_edges, edge ids grouped by src *)
  in_idx : int array;
  in_e : int array;
}

let csr ~n ~m ~(key : int -> int) =
  let idx = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    let k = key e in
    idx.(k + 1) <- idx.(k + 1) + 1
  done;
  for v = 1 to n do
    idx.(v) <- idx.(v) + idx.(v - 1)
  done;
  let cursor = Array.copy idx in
  let cells = Array.make m 0 in
  for e = 0 to m - 1 do
    let k = key e in
    cells.(cursor.(k)) <- e;
    cursor.(k) <- cursor.(k) + 1
  done;
  (idx, cells)

let of_edge_array ~n edge_arr =
  let m = Array.length edge_arr in
  let out_idx, out_e = csr ~n ~m ~key:(fun e -> edge_arr.(e).src) in
  let in_idx, in_e = csr ~n ~m ~key:(fun e -> edge_arr.(e).dst) in
  { n; edge_arr; out_idx; out_e; in_idx; in_e }

let make ~n triples =
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Digraph.make: node %d outside 0..%d" v (n - 1))
  in
  let edge_arr =
    Array.of_list
      (List.mapi
         (fun id (src, dst, lbl) ->
           check src;
           check dst;
           { id; src; dst; lbl })
         triples)
  in
  of_edge_array ~n edge_arr

let n_nodes g = g.n
let n_edges g = Array.length g.edge_arr
let edge g id = g.edge_arr.(id)
let edges g = Array.to_list g.edge_arr
let nodes g = List.init g.n Fun.id
let fold_edges f acc g = Array.fold_left f acc g.edge_arr

let slice_list g idx cells v =
  let lo = idx.(v) and hi = idx.(v + 1) in
  List.init (hi - lo) (fun k -> g.edge_arr.(cells.(lo + k)))

let out_edges g v = slice_list g g.out_idx g.out_e v
let in_edges g v = slice_list g g.in_idx g.in_e v
let out_degree g v = g.out_idx.(v + 1) - g.out_idx.(v)
let in_degree g v = g.in_idx.(v + 1) - g.in_idx.(v)

let iter_out g v f =
  for k = g.out_idx.(v) to g.out_idx.(v + 1) - 1 do
    f g.edge_arr.(g.out_e.(k))
  done

let iter_in g v f =
  for k = g.in_idx.(v) to g.in_idx.(v + 1) - 1 do
    f g.edge_arr.(g.in_e.(k))
  done

let map_labels f g =
  {
    g with
    edge_arr = Array.map (fun e -> { e with lbl = f e.lbl }) g.edge_arr;
  }

let reverse g =
  let edge_arr =
    Array.map (fun e -> { e with src = e.dst; dst = e.src }) g.edge_arr
  in
  {
    n = g.n;
    edge_arr;
    out_idx = g.in_idx;
    out_e = g.in_e;
    in_idx = g.out_idx;
    in_e = g.out_e;
  }

let is_tree_under g ~root ~edge_ids =
  let in_deg = Hashtbl.create 16 in
  let ok =
    List.for_all
      (fun id ->
        let e = g.edge_arr.(id) in
        let d = Option.value ~default:0 (Hashtbl.find_opt in_deg e.dst) in
        Hashtbl.replace in_deg e.dst (d + 1);
        d = 0 && e.dst <> root)
      edge_ids
  in
  if not ok then false
  else begin
    (* Reachability from the root through the subset. *)
    let chosen = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace chosen id ()) edge_ids;
    let visited = Hashtbl.create 16 in
    let rec go v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        iter_out g v (fun e -> if Hashtbl.mem chosen e.id then go e.dst)
      end
    in
    go root;
    List.for_all
      (fun id ->
        let e = g.edge_arr.(id) in
        Hashtbl.mem visited e.src && Hashtbl.mem visited e.dst)
      edge_ids
  end
