type result = {
  src : int;
  dist_arr : float array;  (* infinity = unreachable *)
  via : int array;         (* incoming edge id on best path; -1 = none *)
  pred : int array;        (* predecessor node on best path; -1 = none *)
}

(* Binary min-heap on (priority, node); small but Dijkstra runs often. *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0., 0); size = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let run g ~cost ~src =
  let n = Digraph.n_nodes g in
  let dist_arr = Array.make n infinity in
  let via = Array.make n (-1) in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  dist_arr.(src) <- 0.;
  let heap = Heap.create () in
  Heap.push heap (0., src);
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          Digraph.iter_out g v (fun e ->
              match cost e with
              | None -> ()
              | Some c ->
                  let nd = d +. c in
                  if nd < dist_arr.(e.dst) then begin
                    dist_arr.(e.dst) <- nd;
                    via.(e.dst) <- e.id;
                    pred.(e.dst) <- e.src;
                    Heap.push heap (nd, e.dst)
                  end)
        end;
        loop ()
  in
  loop ();
  { src; dist_arr; via; pred }

let dist r v =
  if v < 0 || v >= Array.length r.dist_arr then None
  else
    let d = r.dist_arr.(v) in
    if d = infinity then None else Some d

let path_edges r v =
  match dist r v with
  | None -> None
  | Some _ ->
      let rec back v acc =
        if v = r.src then acc
        else back r.pred.(v) (r.via.(v) :: acc)
      in
      Some (back v [])

let all_pairs g ~cost =
  Array.init (Digraph.n_nodes g) (fun src -> run g ~cost ~src)
