(** A lock-free work-stealing deque (Chase–Lev).

    One domain — the owner — pushes and pops at the bottom in LIFO
    order; any other domain steals from the top in FIFO order. The only
    synchronisation point is a compare-and-set on the top index when
    owner and thief race for the last element, so the owner's fast path
    is two plain atomic reads and a write.

    The buffer is circular and grows geometrically; growth never
    mutates a previously published array, so a thief holding a stale
    buffer still reads a consistent element or loses its
    compare-and-set. Every pushed element is taken exactly once, split
    between {!pop} and {!steal}. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add an element at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: remove the most recently pushed element; [None] when
    the deque is empty (or the last element was stolen first). *)

val steal : 'a t -> 'a option
(** Any domain: remove the oldest element. [None] when the deque looks
    empty or the compare-and-set lost a race — callers treat both as
    "nothing here right now" and move on to another victim. *)

val size : 'a t -> int
(** A snapshot estimate of the number of queued elements (racy; for
    heuristics and tests only). *)
