(** A work-stealing domain pool over OCaml 5 multicore (stdlib only).

    A pool owns [domains - 1] worker domains plus the calling domain,
    which participates in every parallel section. Each participant has
    its own {!Deque}: the section's tasks are seeded into the caller's
    deque and idle participants steal from the others, so load balances
    without a central locked queue.

    Determinism: {!map}, {!map_list} and {!for_} key every result by
    its input index, so the output is independent of the number of
    domains and of the steal schedule — a prerequisite for the
    byte-identical discovery guarantee upstream. Tasks must not mutate
    shared state except through their own result slot.

    Budgets ({!Smg_robust.Budget}) are not shared between domains —
    they are mutable and unsynchronised. Callers split a budget into
    per-task sub-budgets ({!Smg_robust.Budget.split}), hand one to each
    task, and {!Smg_robust.Budget.absorb} them back after the join;
    because the split is per task (not per domain), fuel accounting is
    the same for every domain count.

    Sections do not nest: a task that calls back into its own pool runs
    the nested section inline on its own domain. When [domains = 1] the
    pool spawns nothing and every entry point degrades to the plain
    sequential fold. *)

type t

val create : domains:int -> t
(** A pool with [max 1 domains] participants (spawning [domains - 1]
    worker domains). Shut it down with {!shutdown} — worker domains are
    not collected by the GC. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent; the pool must
    not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

val size : t -> int
(** Number of participating domains, including the caller. *)

val default_domains : unit -> int
(** The [SMG_DOMAINS] environment variable when set and positive;
    otherwise [Domain.recommended_domain_count ()] capped at 8. *)

val run : t -> (unit -> unit) array -> unit
(** Execute every task, work-stealing across the pool's domains, and
    return when all have finished. The first exception a task raises is
    re-raised in the caller after the join (remaining tasks still
    run). *)

val map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], order-preserving. Inputs are grouped into
    chunks of [chunk] elements (default: adaptive, targetting ~4 tasks
    per domain) and each chunk is one task. *)

val map_list : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel order-preserving [List.map] (via {!map}). *)

val mapi_list : t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a list -> 'b list

val for_ : t -> ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [for_ pool lo hi body] runs [body i] for [lo <= i < hi] across the
    pool. The body must only write state owned by index [i]. *)

(** {1 Service mode}

    A long-running producer (the [lib/serve] accept loop) pushes tasks
    one at a time with {!submit}; worker domains pick them up as they
    arrive, with no join per task. Service mode and the sectioned
    {!run}/{!map} entry points must not be interleaved on the same pool
    (they share the completion counter); tasks submitted to a service
    pool may themselves call {!run} on a {e different} pool, or on this
    one — where, running on a worker domain, the section degrades to
    inline sequential execution as usual. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one task. Must be called from the domain that created the
    pool (tasks are pushed onto the caller's own deque). On a pool of
    size 1 the task runs inline before [submit] returns. Exceptions the
    task raises are reported to the {!set_supervisor} callback (and
    swallowed when none is set) — a raising service task can never
    kill its worker domain. *)

val set_supervisor : t -> (exn -> unit) -> unit
(** Install the service-mode exception sink: called, on the domain the
    task ran on, with any exception a {!submit}ted task raises.
    Exceptions the callback itself raises are dropped. Sectioned
    {!run}/{!map} exceptions still propagate to the caller as before.
    Set before the first {!submit}; not synchronised. *)

val drain : t -> unit
(** Block until every submitted task has finished, helping to run still
    unclaimed tasks from the calling domain. Quiescence point for
    graceful shutdown: [drain] then {!shutdown}. *)

val drain_timeout : t -> seconds:float -> bool
(** Like {!drain} but bounded: helps with unclaimed tasks, then waits
    at most [seconds] for in-flight ones. [true] when the pool reached
    quiescence — only then is {!shutdown} safe to call without
    risking a join on a stuck domain. *)
