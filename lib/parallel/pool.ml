(* Work-stealing domain pool.

   Lifecycle: workers sleep on [wake] between parallel sections. A
   section is: the caller pushes every task into its own deque, bumps
   [epoch], broadcasts, then drains alongside the workers. Each
   participant pops its own deque first and steals from the others when
   empty; a participant whose full steal sweep finds nothing goes back
   to sleep (tasks never spawn subtasks into other deques, so an empty
   sweep means every task is claimed). [pending] counts unfinished
   tasks; whoever finishes the last one broadcasts [done_] to release
   the caller.

   A task claimed by a worker that is still draining a previous epoch
   is executed exactly once all the same — claims go through the
   deques' compare-and-set, and [pending] only counts executions. *)

type t = {
  size : int;
  deques : (unit -> unit) Deque.t array;  (* index 0 = the caller *)
  lock : Mutex.t;
  wake : Condition.t;
  done_ : Condition.t;
  mutable epoch : int;
  mutable live : bool;
  mutable in_section : bool;
  pending : int Atomic.t;
  fault : (exn * Printexc.raw_backtrace) option Atomic.t;
  mutable workers : unit Domain.t array;
  mutable worker_ids : Domain.id list;
  mutable supervisor : (exn -> unit) option;
      (* service-mode exception sink; see [set_supervisor] *)
}

let finish_task t =
  if Atomic.fetch_and_add t.pending (-1) = 1 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.done_;
    Mutex.unlock t.lock
  end

let run_task t f =
  (try f ()
   with exn ->
     let bt = Printexc.get_raw_backtrace () in
     ignore (Atomic.compare_and_set t.fault None (Some (exn, bt))));
  finish_task t

(* One round of work for participant [me]: own deque first, then a
   steal sweep over the others. [true] if a task was run. *)
let try_work t me =
  match Deque.pop t.deques.(me) with
  | Some f ->
      run_task t f;
      true
  | None ->
      let rec sweep k =
        if k = t.size then false
        else
          let victim = (me + k) mod t.size in
          match Deque.steal t.deques.(victim) with
          | Some f ->
              run_task t f;
              true
          | None -> sweep (k + 1)
      in
      sweep 1

let worker_loop t me =
  let seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.lock;
    while t.live && t.epoch = !seen do
      Condition.wait t.wake t.lock
    done;
    let alive = t.live in
    seen := t.epoch;
    Mutex.unlock t.lock;
    if not alive then continue_ := false
    else while try_work t me do () done
  done

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      deques = Array.init size (fun _ -> Deque.create ());
      lock = Mutex.create ();
      wake = Condition.create ();
      done_ = Condition.create ();
      epoch = 0;
      live = true;
      in_section = false;
      pending = Atomic.make 0;
      fault = Atomic.make None;
      workers = [||];
      worker_ids = [];
      supervisor = None;
    }
  in
  let workers =
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)))
  in
  t.workers <- workers;
  t.worker_ids <- Array.to_list (Array.map Domain.get_id workers);
  t

let shutdown t =
  if t.live then begin
    Mutex.lock t.lock;
    t.live <- false;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let size t = t.size

let cap = 8

let default_domains () =
  match Sys.getenv_opt "SMG_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> min cap (Domain.recommended_domain_count ())

let sequential tasks = Array.iter (fun f -> f ()) tasks

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if
    t.size = 1 || n = 1 || t.in_section
    || List.mem (Domain.self ()) t.worker_ids
  then sequential tasks
  else begin
    t.in_section <- true;
    Atomic.set t.fault None;
    Atomic.set t.pending n;
    Array.iter (Deque.push t.deques.(0)) tasks;
    Mutex.lock t.lock;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    while try_work t 0 do () done;
    Mutex.lock t.lock;
    while Atomic.get t.pending > 0 do
      Condition.wait t.done_ t.lock
    done;
    Mutex.unlock t.lock;
    t.in_section <- false;
    match Atomic.get t.fault with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

(* ---- service mode -------------------------------------------------------

   No sections, no per-task join: the owning domain pushes tasks as
   they arrive (one epoch bump per submit keeps the no-lost-wakeup
   argument of [run]: the bump happens under the lock workers re-check
   before sleeping) and [drain] waits for [pending] to reach zero,
   helping with unclaimed tasks first so a burst the workers have not
   stolen yet cannot strand the caller. *)

let set_supervisor t f = t.supervisor <- Some f

let supervised t f () =
  try f ()
  with exn -> (
    match t.supervisor with
    | Some s -> ( try s exn with _ -> ())
    | None -> ())

let submit t f =
  if t.size = 1 then supervised t f ()
  else begin
    ignore (Atomic.fetch_and_add t.pending 1);
    Deque.push t.deques.(0) (supervised t f);
    Mutex.lock t.lock;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock
  end

let drain t =
  if t.size > 1 then begin
    while try_work t 0 do () done;
    Mutex.lock t.lock;
    while Atomic.get t.pending > 0 do
      Condition.wait t.done_ t.lock
    done;
    Mutex.unlock t.lock
  end

(* OCaml's Condition has no timed wait, so the bounded drain helps
   with unclaimed work and then polls [pending] on a short sleep. The
   poll only runs while a stuck task is the bottleneck, so the 1 ms
   granularity costs nothing on the happy path (the helping loop has
   already emptied the deques by then). *)
let drain_timeout t ~seconds =
  if t.size <= 1 then true
  else begin
    while try_work t 0 do () done;
    let give_up = Unix.gettimeofday () +. Float.max 0. seconds in
    let rec wait () =
      if Atomic.get t.pending <= 0 then true
      else if Unix.gettimeofday () >= give_up then false
      else begin
        while try_work t 0 do () done;
        if Atomic.get t.pending <= 0 then true
        else begin
          Unix.sleepf 0.001;
          wait ()
        end
      end
    in
    wait ()
  end

let chunk_size t ?chunk n =
  match chunk with
  | Some c -> max 1 c
  | None ->
      (* adaptive: enough chunks to balance (≈4 per domain) without
         making tasks so small that scheduling dominates *)
      max 1 ((n + (4 * t.size) - 1) / (4 * t.size))

let for_ t ?chunk lo hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let c = chunk_size t ?chunk n in
    let ntasks = (n + c - 1) / c in
    if ntasks <= 1 || t.size = 1 then
      for i = lo to hi - 1 do
        body i
      done
    else
      run t
        (Array.init ntasks (fun k () ->
             let i0 = lo + (k * c) in
             let i1 = min hi (i0 + c) in
             for i = i0 to i1 - 1 do
               body i
             done))
  end

let map t ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    for_ t ?chunk 0 n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every index ran *))
      out
  end

let mapi_list t ?chunk f xs =
  let arr = Array.of_list xs in
  Array.to_list (map t ?chunk (fun (i, x) -> f i x) (Array.mapi (fun i x -> (i, x)) arr))

let map_list t ?chunk f xs = Array.to_list (map t ?chunk f (Array.of_list xs))
