(* Chase–Lev work-stealing deque over OCaml 5 atomics.

   Layout: a growable circular buffer indexed by monotonically
   increasing [top] (steal end) and [bottom] (owner end) counters,
   masked into the array. Invariants:

   - only the owner writes [bottom] and the buffer;
   - [top] only ever advances, by exactly one, through a successful
     compare-and-set (thief) or the owner's last-element pop;
   - growth copies the live window [top, bottom) into a fresh array and
     publishes it through an [Atomic]; old arrays are never mutated, so
     a thief that read the buffer before a growth still sees the
     correct element for any index its subsequent compare-and-set can
     win.

   A slot can only be reused by [push] after [bottom] wraps past it,
   which the growth check prevents while any index in the live window
   still points there — so a thief's read-then-CAS either returns the
   element that was at its index or fails the CAS. *)

type 'a buffer = { mask : int; data : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;  (* written by the owner, read by thieves *)
  buf : 'a buffer Atomic.t;
}

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make { mask = 31; data = Array.make 32 None };
  }

let grow q ~bottom ~top =
  let old = Atomic.get q.buf in
  let size = 2 * (old.mask + 1) in
  let data = Array.make size None in
  for i = top to bottom - 1 do
    data.(i land (size - 1)) <- old.data.(i land old.mask)
  done;
  Atomic.set q.buf { mask = size - 1; data }

let push q v =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  if b - t > (Atomic.get q.buf).mask then grow q ~bottom:b ~top:t;
  let buf = Atomic.get q.buf in
  buf.data.(b land buf.mask) <- Some v;
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the canonical empty state *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let buf = Atomic.get q.buf in
    let slot = b land buf.mask in
    let v = buf.data.(slot) in
    if b > t then begin
      buf.data.(slot) <- None;
      v
    end
    else begin
      (* last element: race a thief for it through [top] *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        buf.data.(slot) <- None;
        v
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let v = buf.data.(t land buf.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then v else None
  end

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
