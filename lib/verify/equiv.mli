(** Homomorphic equivalence of instances with labelled nulls — the
    equivalence oracle for data-exchange outputs.

    Two universal solutions for the same (mapping, source) pair are
    homomorphically equivalent, so this is the correctness criterion for
    comparing the plan-based execution engine ([Smg_exchange]) against
    the naive chase. The check decomposes by null-connected components:
    a fact without nulls must occur verbatim in the other instance, and
    each group of facts connected through shared nulls embeds
    independently of the others — turning one homomorphism search over
    the whole instance into many small ones. *)

val hom_into :
  Smg_relational.Instance.t -> Smg_relational.Instance.t -> bool
(** [hom_into a b]: a homomorphism from [a] into [b] exists — identity
    on constants, labelled nulls free to bind. *)

val equivalent :
  Smg_relational.Instance.t -> Smg_relational.Instance.t -> bool
(** Homomorphisms exist in both directions. *)
