(** A CQ homomorphism engine.

    Finds homomorphisms of a list of atoms (the "flexible" side, whose
    variables may bind) into a list of facts (the "rigid" side, whose
    terms — variables included — behave as constants). This is the
    workhorse beneath containment, equivalence, minimization, mapping
    verification, and core computation.

    Unlike the left-to-right matcher in {!Smg_cq.Query}, the search here
    is fail-first: at every step the engine extends the atom whose set
    of consistent images is currently smallest (ties broken toward the
    most instantiated atom), and a pending atom with no consistent image
    prunes the branch immediately (forward checking). On the pathological
    queries produced by saturation and chase output this is the
    difference between milliseconds and minutes. *)

val frozen_value : string -> Smg_relational.Value.t
(** [frozen_value x] is the distinguished constant that the variable [x]
    freezes to when a query is turned into its canonical instance. The
    value is prefixed so that it can never collide with a constant
    appearing in a real query or instance. *)

val is_frozen : Smg_relational.Value.t -> bool

val all :
  ?init:Smg_cq.Atom.Subst.t ->
  ?limit:int ->
  rigid:Smg_cq.Atom.t list ->
  Smg_cq.Atom.t list ->
  Smg_cq.Atom.Subst.t list
(** All homomorphisms (up to [limit], when given) of the atom list into
    the rigid fact list, extending the pre-bindings of [init]. *)

val find :
  ?init:Smg_cq.Atom.Subst.t ->
  rigid:Smg_cq.Atom.t list ->
  Smg_cq.Atom.t list ->
  Smg_cq.Atom.Subst.t option
(** The first homomorphism found, if any. *)

val holds :
  ?init:Smg_cq.Atom.Subst.t ->
  rigid:Smg_cq.Atom.t list ->
  Smg_cq.Atom.t list ->
  bool
