module Value = Smg_relational.Value
module Instance = Smg_relational.Instance
module Index = Smg_relational.Index
module Atom = Smg_cq.Atom

(* A homomorphism between instances decomposes: constants map to
   themselves, so a fact without nulls must occur verbatim in the
   target, and facts connected through shared nulls must embed jointly —
   but two facts sharing no null embed independently. Checking each
   null-connected component separately turns one intractable search over
   hundreds of atoms into many small ones; chase outputs rarely have
   components beyond a handful of facts. *)

type fact = { f_pred : string; f_tup : Value.t array }

let facts_of inst =
  List.concat_map
    (fun name ->
      match Instance.relation inst name with
      | None -> []
      | Some r ->
          List.map (fun tup -> { f_pred = name; f_tup = tup }) r.Instance.tuples)
    (Instance.names inst)

let fact_key f = f.f_pred ^ "\x01" ^ Index.tuple_key f.f_tup

let nulls_of_fact f =
  Array.to_list f.f_tup
  |> List.filter_map (function Value.VNull k -> Some k | _ -> None)

let atom_of_fact f =
  Atom.atom f.f_pred
    (List.map
       (fun v ->
         match v with
         | Value.VNull k -> Atom.Var (Printf.sprintf "?n%d" k)
         | v -> Atom.Cst v)
       (Array.to_list f.f_tup))

(* union-find over null labels *)
let rec uf_find parent k =
  match Hashtbl.find_opt parent k with
  | None -> k
  | Some p ->
      let r = uf_find parent p in
      if r <> p then Hashtbl.replace parent k r;
      r

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

(* Facts of [inst] grouped by null-connected component, plus the ground
   facts (no nulls at all). *)
let components inst =
  let facts = facts_of inst in
  let parent = Hashtbl.create 64 in
  List.iter
    (fun f ->
      match nulls_of_fact f with
      | [] -> ()
      | k0 :: rest -> List.iter (fun k -> uf_union parent k0 k) rest)
    facts;
  let ground = ref [] in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun f ->
      match nulls_of_fact f with
      | [] -> ground := f :: !ground
      | k0 :: _ ->
          let root = uf_find parent k0 in
          Hashtbl.replace groups root
            (f :: Option.value ~default:[] (Hashtbl.find_opt groups root)))
    facts;
  (!ground, Hashtbl.fold (fun _ fs acc -> fs :: acc) groups [])

let hom_into a b =
  let ground, comps = components a in
  let b_keys = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace b_keys (fact_key f) ()) (facts_of b);
  List.for_all (fun f -> Hashtbl.mem b_keys (fact_key f)) ground
  &&
  let rigid = List.map atom_of_fact (facts_of b) in
  List.for_all
    (fun comp -> Hom.holds ~rigid (List.map atom_of_fact comp))
    comps

let equivalent a b = hom_into a b && hom_into b a
