module Atom = Smg_cq.Atom
module Query = Smg_cq.Query

type frozen = { fz_head : Atom.term list; fz_facts : Atom.t list }

let freeze (q : Query.t) =
  let s =
    List.fold_left
      (fun s x -> Atom.Subst.bind s x (Atom.Cst (Hom.frozen_value x)))
      Atom.Subst.empty (Query.all_vars q)
  in
  {
    fz_head = List.map (Atom.apply_term s) q.Query.head;
    fz_facts = List.map (Atom.apply s) q.Query.body;
  }

(* Pre-bind [from_head] positionally onto [to_head]; fails on a constant
   mismatch or an inconsistent repeated head variable. *)
let seed_head from_head to_head =
  if List.length from_head <> List.length to_head then None
  else
    List.fold_left2
      (fun acc fh th ->
        match acc with
        | None -> None
        | Some s -> (
            match fh with
            | Atom.Cst _ -> if Atom.equal_term fh th then acc else None
            | Atom.Var x -> (
                match Atom.Subst.find s x with
                | Some bound ->
                    if Atom.equal_term bound th then acc else None
                | None -> Some (Atom.Subst.bind s x th))))
      (Some Atom.Subst.empty) from_head to_head

let homomorphism ~from_ ~to_ =
  let fz = freeze to_ in
  match seed_head from_.Query.head fz.fz_head with
  | None -> None
  | Some seed -> Hom.find ~init:seed ~rigid:fz.fz_facts from_.Query.body

let contained_in q1 q2 = Option.is_some (homomorphism ~from_:q2 ~to_:q1)
let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

(* Dropping atoms only ever weakens a query (q ⊆ q'); the fold check
   [homomorphism ~from_:q ~to_:q'] supplies the other direction. *)
let minimize q =
  let foldable q' = Option.is_some (homomorphism ~from_:q ~to_:q') in
  let rec shrink body =
    let try_drop i =
      let body' = List.filteri (fun j _ -> j <> i) body in
      if foldable { q with Query.body = body' } then Some body' else None
    in
    let rec first i =
      if i >= List.length body then None
      else match try_drop i with Some b -> Some b | None -> first (i + 1)
    in
    match first 0 with None -> body | Some b -> shrink b
  in
  { q with Query.body = shrink q.Query.body }

let is_minimal q =
  List.length (minimize q).Query.body = List.length q.Query.body

let contained_under ~schema q1 q2 =
  Option.is_some (homomorphism ~from_:q2 ~to_:(Query.saturate ~schema q1))
