module Value = Smg_relational.Value
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Chase = Smg_cq.Chase

let null_var k = Printf.sprintf "?n%d" k

let term_of_value = function
  | Value.VNull k -> Atom.Var (null_var k)
  | v -> Atom.Cst v

let fold_relations inst f acc =
  List.fold_left
    (fun acc name ->
      match Instance.relation inst name with
      | None -> acc
      | Some r -> f acc name r)
    acc (Instance.names inst)

let atoms_of inst =
  fold_relations inst
    (fun acc name (r : Instance.relation) ->
      acc
      @ List.map
          (fun tup ->
            Atom.atom name (List.map term_of_value (Array.to_list tup)))
          r.Instance.tuples)
    []

let apply_endomorphism inst subst =
  fold_relations inst
    (fun acc name (r : Instance.relation) ->
      List.fold_left
        (fun acc tup ->
          let tup' =
            Array.map
              (fun v ->
                match v with
                | Value.VNull k -> (
                    match Atom.Subst.find subst (null_var k) with
                    | Some (Atom.Cst v') -> v'
                    | Some (Atom.Var _) | None -> v)
                | v -> v)
              tup
          in
          Instance.add_tuple acc name ~header:r.Instance.header tup')
        acc r.Instance.tuples)
    Instance.empty

(* ---- fold search, restricted to null-connected components --------------
   A retraction avoiding null [n] exists on the whole instance iff one
   exists on [n]'s component — the facts reachable from [n] through
   shared nulls: facts of other components never mention [n], so the
   identity extends any component retraction, and conversely any full
   retraction restricts to one. Searching only the component (with the
   full frozen instance minus [n]'s facts as the rigid side) replaces
   the old whole-instance search, which rescanned and re-matched every
   fact for every null — the quadratic hot spot of core computation. *)

let rec uf_find parent k =
  match Hashtbl.find_opt parent k with
  | None -> k
  | Some p ->
      let r = uf_find parent p in
      if r <> p then Hashtbl.replace parent k r;
      r

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

type pass_state = {
  ps_facts : (string * Value.t array) array;
  ps_frozen : Atom.t array;  (* every value (nulls included) as a constant *)
  ps_null_facts : (int, int list) Hashtbl.t;  (* null -> indices of its facts *)
  ps_parent : (int, int) Hashtbl.t;  (* union-find over null labels *)
  ps_comps : (int, int list) Hashtbl.t;  (* component root -> fact indices *)
}

let nulls_of_tuple tup =
  Array.fold_left
    (fun acc v -> match v with Value.VNull k -> k :: acc | _ -> acc)
    [] tup

let build_state inst =
  let facts =
    fold_relations inst
      (fun acc name (r : Instance.relation) ->
        List.fold_left (fun acc tup -> (name, tup) :: acc) acc r.Instance.tuples)
      []
    |> Array.of_list
  in
  let frozen =
    Array.map
      (fun (name, tup) ->
        Atom.atom name (List.map (fun v -> Atom.Cst v) (Array.to_list tup)))
      facts
  in
  let null_facts = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  Array.iteri
    (fun i (_, tup) ->
      match List.sort_uniq compare (nulls_of_tuple tup) with
      | [] -> ()
      | k0 :: rest as ks ->
          List.iter
            (fun k ->
              Hashtbl.replace null_facts k
                (i :: Option.value ~default:[] (Hashtbl.find_opt null_facts k)))
            ks;
          List.iter (fun k -> uf_union parent k0 k) rest)
    facts;
  let comps = Hashtbl.create 16 in
  Array.iteri
    (fun i (_, tup) ->
      match nulls_of_tuple tup with
      | [] -> ()
      | k :: _ ->
          let root = uf_find parent k in
          Hashtbl.replace comps root
            (i :: Option.value ~default:[] (Hashtbl.find_opt comps root)))
    facts;
  {
    ps_facts = facts;
    ps_frozen = frozen;
    ps_null_facts = null_facts;
    ps_parent = parent;
    ps_comps = comps;
  }

(* Try to retract null [n] away: a homomorphism of [n]'s component into
   the frozen instance minus the facts mentioning [n]. *)
let try_fold st inst n =
  match Hashtbl.find_opt st.ps_null_facts n with
  | None -> None (* already folded away *)
  | Some mention_ids ->
      let mentions = Hashtbl.create (List.length mention_ids) in
      List.iter (fun i -> Hashtbl.replace mentions i ()) mention_ids;
      let comp_ids = Hashtbl.find st.ps_comps (uf_find st.ps_parent n) in
      let flex =
        List.map
          (fun i ->
            let name, tup = st.ps_facts.(i) in
            Atom.atom name (List.map term_of_value (Array.to_list tup)))
          comp_ids
      in
      let rigid = ref [] in
      Array.iteri
        (fun i atom -> if not (Hashtbl.mem mentions i) then rigid := atom :: !rigid)
        st.ps_frozen;
      Option.map (apply_endomorphism inst) (Hom.find ~rigid:!rigid flex)

(* One pass tries every null of the instance once, folding as it goes
   (nulls eliminated by an earlier fold are skipped); a fold can enable
   further folds, so passes repeat until one changes nothing. *)
let core inst =
  let rec pass inst =
    let st0 = build_state inst in
    let nulls =
      Hashtbl.fold (fun k _ acc -> k :: acc) st0.ps_null_facts []
      |> List.sort compare
    in
    let rec attempt inst st changed = function
      | [] -> (inst, changed)
      | n :: rest -> (
          match try_fold st inst n with
          | None -> attempt inst st changed rest
          | Some inst' -> attempt inst' (build_state inst') true rest)
    in
    let inst', changed = attempt inst st0 false nulls in
    if changed then pass inst' else inst'
  in
  pass inst

let is_core inst =
  let st = build_state inst in
  Hashtbl.fold (fun k _ acc -> k :: acc) st.ps_null_facts []
  |> List.for_all (fun n -> Option.is_none (try_fold st inst n))

let of_outcome = function
  | Chase.Saturated i -> Chase.Saturated (core i)
  | Chase.Bounded i -> Chase.Bounded (core i)
  | Chase.Failed _ as f -> f
