module Value = Smg_relational.Value
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Chase = Smg_cq.Chase

let null_var k = Printf.sprintf "?n%d" k

let term_of_value = function
  | Value.VNull k -> Atom.Var (null_var k)
  | v -> Atom.Cst v

let fold_relations inst f acc =
  List.fold_left
    (fun acc name ->
      match Instance.relation inst name with
      | None -> acc
      | Some r -> f acc name r)
    acc (Instance.names inst)

let atoms_of inst =
  fold_relations inst
    (fun acc name (r : Instance.relation) ->
      acc
      @ List.map
          (fun tup ->
            Atom.atom name (List.map term_of_value (Array.to_list tup)))
          r.Instance.tuples)
    []

let nulls_of inst =
  fold_relations inst
    (fun acc _ (r : Instance.relation) ->
      List.fold_left
        (fun acc tup ->
          Array.fold_left
            (fun acc v ->
              match v with
              | Value.VNull k when not (List.mem k acc) -> k :: acc
              | _ -> acc)
            acc tup)
        acc r.Instance.tuples)
    []
  |> List.sort compare

(* Ground facts of the sub-instance whose tuples do not mention null [n]
   (nulls are ordinary rigid values there). *)
let ground_without inst n =
  fold_relations inst
    (fun acc name (r : Instance.relation) ->
      acc
      @ List.filter_map
          (fun tup ->
            if Array.exists (Value.equal (Value.VNull n)) tup then None
            else
              Some
                (Atom.atom name
                   (List.map (fun v -> Atom.Cst v) (Array.to_list tup))))
          r.Instance.tuples)
    []

let apply_endomorphism inst subst =
  fold_relations inst
    (fun acc name (r : Instance.relation) ->
      List.fold_left
        (fun acc tup ->
          let tup' =
            Array.map
              (fun v ->
                match v with
                | Value.VNull k -> (
                    match Atom.Subst.find subst (null_var k) with
                    | Some (Atom.Cst v') -> v'
                    | Some (Atom.Var _) | None -> v)
                | v -> v)
              tup
          in
          Instance.add_tuple acc name ~header:r.Instance.header tup')
        acc r.Instance.tuples)
    Instance.empty

(* One greedy fold: the first null admitting a retraction that avoids
   every tuple mentioning it. *)
let fold_step inst =
  let flex = atoms_of inst in
  List.find_map
    (fun n ->
      Option.map
        (apply_endomorphism inst)
        (Hom.find ~rigid:(ground_without inst n) flex))
    (nulls_of inst)

let rec core inst =
  match fold_step inst with Some inst' -> core inst' | None -> inst

let is_core inst = Option.is_none (fold_step inst)

let of_outcome = function
  | Chase.Saturated i -> Chase.Saturated (core i)
  | Chase.Bounded i -> Chase.Bounded (core i)
  | Chase.Failed _ as f -> f
