module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase
module Mapping = Smg_cq.Mapping

let atoms_of_instance inst =
  List.concat_map
    (fun name ->
      match Instance.relation inst name with
      | None -> []
      | Some r ->
          List.map
            (fun tup ->
              Atom.atom name
                (List.map (fun v -> Atom.Cst v) (Array.to_list tup)))
            r.Instance.tuples)
    (Instance.names inst)

let canonical_instance schema atoms =
  List.fold_left
    (fun inst (a : Atom.t) ->
      let header = Schema.column_names (Schema.find_table_exn schema a.Atom.pred) in
      let tup =
        Array.of_list
          (List.map
             (function Atom.Var x -> Hom.frozen_value x | Atom.Cst c -> c)
             a.Atom.args)
      in
      Instance.add_tuple inst a.Atom.pred ~header tup)
    Instance.empty atoms

(* The chase machinery is predicate-name based, and a source and target
   schema may share table names (the Mondial pair names both sides'
   country tables [country]). Namespace the two sides apart: an s-t
   tgd's lhs always reads over source tables and its rhs over target
   tables, so prefixing is deterministic. *)
let src_ns = "s\xc2\xa7"
let tgt_ns = "t\xc2\xa7"

let prefix_atoms p = List.map (fun (a : Atom.t) -> { a with Atom.pred = p ^ a.Atom.pred })

let ns_tgd (t : Dependency.tgd) =
  {
    t with
    Dependency.lhs = prefix_atoms src_ns t.Dependency.lhs;
    Dependency.rhs = prefix_atoms tgt_ns t.Dependency.rhs;
  }

let ns_tables p (s : Schema.t) =
  List.map
    (fun (tbl : Schema.table) ->
      { tbl with Schema.tbl_name = p ^ tbl.Schema.tbl_name })
    s.Schema.tables

(* Chase the canonical (frozen-lhs) instance of [t] with [by] over the
   namespaced combined schema; returns the namespaced [t] alongside the
   chase result so callers can test its rhs against the output. *)
let chase_canonical_ns ~source ~target ~by (t : Dependency.tgd) =
  let combined =
    Schema.make
      ~name:(source.Schema.schema_name ^ "+" ^ target.Schema.schema_name)
      (ns_tables src_ns source @ ns_tables tgt_ns target)
      []
  in
  let t = ns_tgd t and by = List.map ns_tgd by in
  let canonical = canonical_instance combined t.Dependency.lhs in
  let out =
    match Chase.run ~schema:combined ~tgds:by ~egds:[] canonical with
    | Chase.Failed _ -> None
    | Chase.Saturated out | Chase.Bounded out -> Some out
  in
  (t, out)

let chase_canonical ~source ~target ~by t =
  snd (chase_canonical_ns ~source ~target ~by t)

let tgd_implied_by ~source ~target ~by (t : Dependency.tgd) =
  match chase_canonical_ns ~source ~target ~by t with
  | _, None -> false
  | t, Some out ->
      let lhs_vars = Atom.vars_of_list t.Dependency.lhs in
      let rhs =
        List.map
          (fun (a : Atom.t) ->
            {
              a with
              Atom.args =
                List.map
                  (function
                    | Atom.Var x when List.mem x lhs_vars ->
                        Atom.Cst (Hom.frozen_value x)
                    | term -> term)
                  a.Atom.args;
            })
          t.Dependency.rhs
      in
      Hom.holds ~rigid:(atoms_of_instance out) rhs

let implies ~source ~target a b =
  tgd_implied_by ~source ~target ~by:[ Mapping.to_tgd a ] (Mapping.to_tgd b)

let equivalent ~source ~target a b =
  implies ~source ~target a b && implies ~source ~target b a

type rel = Equivalent | Implies | ImpliedBy | Incomparable

let relate ~source ~target a b =
  match (implies ~source ~target a b, implies ~source ~target b a) with
  | true, true -> Equivalent
  | true, false -> Implies
  | false, true -> ImpliedBy
  | false, false -> Incomparable

let rel_symbol = function
  | Equivalent -> "="
  | Implies -> ">"
  | ImpliedBy -> "<"
  | Incomparable -> "."

type report = {
  rp_in : int;
  rp_kept : Mapping.t list;
  rp_classes : (Mapping.t * Mapping.t list) list;
  rp_subsumed : (Mapping.t * int) list;
}

let n_classes r = List.length r.rp_classes
let n_collapsed r = List.fold_left (fun acc (_, eqs) -> acc + List.length eqs) 0 r.rp_classes
let n_subsumed r = List.length r.rp_subsumed

let annotate (m : Mapping.t) note =
  { m with Mapping.provenance = m.Mapping.provenance @ [ note ] }

let dedup ?pool ~source ~target ms =
  let arr = Array.of_list ms in
  let n = Array.length arr in
  (* Each chase-based implication check is independent of the others, so
     with a pool the whole pairwise matrix is computed up front as
     parallel tasks keyed by (i, j) — schedule-independent, hence the
     same answers for any domain count. Without a pool, checks run
     lazily with the original greedy short-circuiting. *)
  let cache = Hashtbl.create (max 16 (n * n)) in
  let imp i j =
    match Hashtbl.find_opt cache (i, j) with
    | Some b -> b
    | None ->
        let b = implies ~source ~target arr.(i) arr.(j) in
        Hashtbl.add cache (i, j) b;
        b
  in
  (match pool with
  | Some pool when n > 1 ->
      let pairs =
        Array.init (n * (n - 1)) (fun k ->
            let i = k / (n - 1) and r = k mod (n - 1) in
            (i, if r >= i then r + 1 else r))
      in
      let res =
        Smg_parallel.Pool.map pool
          (fun (i, j) -> implies ~source ~target arr.(i) arr.(j))
          pairs
      in
      Array.iteri (fun k p -> Hashtbl.replace cache p res.(k)) pairs
  | Some _ | None -> ());
  let eqv i j = imp i j && imp j i in
  (* Pass 1: group into logical equivalence classes, best-ranked
     representative first. *)
  let classes_idx =
    List.fold_left
      (fun classes i ->
        let rec absorb = function
          | [] -> None
          | (rep, eqs) :: rest ->
              if eqv rep i then Some ((rep, eqs @ [ i ]) :: rest)
              else Option.map (fun cs -> (rep, eqs) :: cs) (absorb rest)
        in
        match absorb classes with
        | Some classes -> classes
        | None -> classes @ [ (i, []) ])
      []
      (List.init n Fun.id)
  in
  (* Pass 2: a representative strictly implied by a better-ranked one is
     subsumed — it asserts nothing the stronger candidate does not. *)
  let reps_idx = List.map fst classes_idx in
  let subsumed_idx =
    List.concat
      (List.mapi
         (fun i m ->
           let better = List.filteri (fun j _ -> j < i) reps_idx in
           match List.find_index (fun s -> imp s m) better with
           | Some j -> [ (m, j + 1) ]
           | None -> [])
         reps_idx)
  in
  let classes =
    List.map
      (fun (rep, eqs) -> (arr.(rep), List.map (fun i -> arr.(i)) eqs))
      classes_idx
  in
  let subsumed = List.map (fun (m, j) -> (arr.(m), j)) subsumed_idx in
  let kept =
    List.map2
      (fun (rep_i, eqs_i) (rep, eqs) ->
        let rep =
          if eqs = [] then rep
          else
            annotate rep
              (Printf.sprintf
                 "dedup: absorbed %d logically equivalent candidate(s): %s"
                 (List.length eqs)
                 (String.concat ", "
                    (List.map (fun (m : Mapping.t) -> m.Mapping.m_name) eqs)))
        in
        ignore eqs_i;
        match List.assoc_opt rep_i subsumed_idx with
        | Some j ->
            annotate rep
              (Printf.sprintf
                 "dedup: subsumed — logically implied by stronger candidate #%d"
                 j)
        | None -> rep)
      classes_idx classes
  in
  { rp_in = n; rp_kept = kept; rp_classes = classes; rp_subsumed = subsumed }

let summary r =
  Printf.sprintf
    "dedup: %d candidate(s) in, %d equivalence class(es) out (%d collapsed), %d subsumed"
    r.rp_in (n_classes r) (n_collapsed r) (n_subsumed r)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s@," (summary r);
  List.iteri
    (fun i (rep, eqs) ->
      Fmt.pf ppf "class #%d: %s (score %.2f)%a@," (i + 1) rep.Mapping.m_name
        rep.Mapping.score
        (fun ppf eqs ->
          List.iter
            (fun (m : Mapping.t) ->
              Fmt.pf ppf "@,  ≡ %s (score %.2f)" m.Mapping.m_name
                m.Mapping.score)
            eqs)
        eqs)
    r.rp_classes;
  List.iter
    (fun ((m : Mapping.t), j) ->
      Fmt.pf ppf "subsumed: %s — implied by class #%d@," m.Mapping.m_name j)
    r.rp_subsumed;
  Fmt.pf ppf "@]"
