(** CQ containment, equivalence, and minimization, via canonical
    instances (Chandra–Merlin) and the fail-first engine of {!Hom}.

    [contained_in q1 q2] freezes [q1] into its canonical instance —
    every variable becomes a distinguished constant — and searches for a
    homomorphism of [q2] into it that maps [q2]'s head onto the frozen
    head of [q1]. These are the same notions as in {!Smg_cq.Query} but
    computed with degree-ordered search, so they stay usable on the
    larger queries produced by saturation and on the n² comparisons the
    verification layer performs. *)

type frozen = {
  fz_head : Smg_cq.Atom.term list;  (** head terms, variables frozen *)
  fz_facts : Smg_cq.Atom.t list;    (** body as ground facts *)
}

val freeze : Smg_cq.Query.t -> frozen
(** The canonical instance of a query: each variable replaced by the
    distinguished constant {!Hom.frozen_value}. *)

val homomorphism :
  from_:Smg_cq.Query.t -> to_:Smg_cq.Query.t -> Smg_cq.Atom.Subst.t option
(** A head-respecting homomorphism from [from_] into the canonical
    instance of [to_]; [None] when head arities differ or none exists. *)

val contained_in : Smg_cq.Query.t -> Smg_cq.Query.t -> bool
(** [contained_in q1 q2]: the answers of [q1] are a subset of those of
    [q2] on every instance. *)

val equivalent : Smg_cq.Query.t -> Smg_cq.Query.t -> bool
val minimize : Smg_cq.Query.t -> Smg_cq.Query.t
(** The core of the query: a minimal equivalent subquery, computed by
    greedily dropping atoms while a head-fixing fold exists. *)

val is_minimal : Smg_cq.Query.t -> bool
(** No single atom can be dropped: [minimize] would return the query
    unchanged (up to the order atoms are tried). *)

val contained_under :
  schema:Smg_relational.Schema.t -> Smg_cq.Query.t -> Smg_cq.Query.t -> bool
(** Containment under the schema's referential constraints: [q2] must
    map into the RIC-saturation of [q1] (see {!Smg_cq.Query.saturate}). *)
