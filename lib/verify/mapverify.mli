(** Containment, equivalence, and dedup of schema-mapping candidates.

    A GLAV candidate ({!Smg_cq.Mapping.t}) reads as a single s-t tgd.
    Whether one set of tgds logically implies another tgd is decided the
    classical way (Calì–Torlone): freeze the tgd's left-hand side into a
    canonical source instance, chase it with the candidate set, and test
    whether the right-hand side (universal variables frozen, existential
    ones flexible) maps homomorphically into the chase result. Because
    the dependencies are source-to-target, the chase terminates after
    one round of firings.

    [dedup] uses these tests to collapse a ranked candidate list into
    logical equivalence classes — keeping the best-ranked representative
    of each class, annotated with what it absorbed — and to annotate the
    remaining candidates that are strictly implied by a better-ranked
    one (subsumed: they assert nothing new). Outer-join candidates are
    compared through their inner-join tgd reading ({!Smg_cq.Mapping.to_tgd}). *)

val chase_canonical :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  by:Smg_cq.Dependency.tgd list ->
  Smg_cq.Dependency.tgd ->
  Smg_relational.Instance.t option
(** [chase_canonical ~source ~target ~by t]: the canonical universal
    solution for [t]'s frozen left-hand side under the tgds [by] —
    i.e. the chase of the canonical instance over the namespaced
    combined schema. [None] if the chase fails. Existential variables
    appear as labelled nulls, so the result feeds {!Icore.core}
    directly. *)

val tgd_implied_by :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  by:Smg_cq.Dependency.tgd list ->
  Smg_cq.Dependency.tgd ->
  bool
(** [tgd_implied_by ~source ~target ~by t]: every source instance that
    fires [t] already receives [t]'s conclusion when chased with [by]. *)

val implies :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  Smg_cq.Mapping.t ->
  Smg_cq.Mapping.t ->
  bool
(** [implies ~source ~target a b]: candidate [a] logically entails
    candidate [b] (as s-t tgds). *)

val equivalent :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  Smg_cq.Mapping.t ->
  Smg_cq.Mapping.t ->
  bool

type rel =
  | Equivalent      (** each implies the other *)
  | Implies         (** the left candidate strictly implies the right *)
  | ImpliedBy       (** the left candidate is strictly implied by the right *)
  | Incomparable

val relate :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  Smg_cq.Mapping.t ->
  Smg_cq.Mapping.t ->
  rel

val rel_symbol : rel -> string
(** One-character rendering for matrices: ["="], [">"], ["<"], ["."]. *)

type report = {
  rp_in : int;  (** candidates examined *)
  rp_kept : Smg_cq.Mapping.t list;
      (** ranked survivors: class representatives (annotated with what
          they absorbed) and subsumed candidates (annotated with their
          subsumer) *)
  rp_classes : (Smg_cq.Mapping.t * Smg_cq.Mapping.t list) list;
      (** representative, absorbed equivalents (possibly empty) *)
  rp_subsumed : (Smg_cq.Mapping.t * int) list;
      (** subsumed survivor, 1-based rank of its subsuming survivor *)
}

val n_classes : report -> int
val n_collapsed : report -> int
val n_subsumed : report -> int

val dedup :
  ?pool:Smg_parallel.Pool.t ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  Smg_cq.Mapping.t list ->
  report
(** The input list must be ranked best-first; representatives keep their
    relative order. With a [pool], the pairwise implication matrix is
    computed up front as independent parallel chase tasks; the report is
    identical for any domain count (the matrix, not the schedule,
    determines it). *)

val summary : report -> string
(** e.g. ["dedup: 12 candidate(s) in, 7 equivalence class(es) out (5 collapsed), 2 subsumed"]. *)

val pp_report : Format.formatter -> report -> unit
