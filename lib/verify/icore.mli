(** Core universal solutions: minimize a chase result by folding
    labelled nulls.

    A chase ({!Smg_cq.Chase.exchange}) result is a universal solution,
    but usually not a minimal one — different tgd firings introduce
    nulls that a homomorphism could identify with existing values. The
    core is the smallest universal solution (Fagin–Kolaitis–Popa), and
    the laconic-mappings line of work motivates presenting exactly it.

    [core] folds greedily: while some labelled null [n] admits a proper
    endomorphism — a homomorphism of the instance into the sub-instance
    of tuples not mentioning [n], identity on non-null values — replace
    the instance by the image and repeat. Each fold strictly shrinks the
    instance, so this terminates; when no null can be folded away the
    instance is its own core. *)

val atoms_of : Smg_relational.Instance.t -> Smg_cq.Atom.t list
(** The instance as atoms, labelled nulls as variables and every other
    value as a constant (the "flexible" reading used by the fold
    search). *)

val core : Smg_relational.Instance.t -> Smg_relational.Instance.t
(** The core of the instance. Idempotent: [core (core i)] adds nothing. *)

val is_core : Smg_relational.Instance.t -> bool
(** No labelled null can be folded away. *)

val of_outcome : Smg_cq.Chase.outcome -> Smg_cq.Chase.outcome
(** Map {!core} through [Saturated]/[Bounded]; [Failed] passes through. *)
