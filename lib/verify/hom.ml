module Value = Smg_relational.Value
module Atom = Smg_cq.Atom

let frozen_prefix = "\000frz!"
let frozen_value x = Value.VString (frozen_prefix ^ x)

let is_frozen = function
  | Value.VString s ->
      String.length s >= String.length frozen_prefix
      && String.equal (String.sub s 0 (String.length frozen_prefix)) frozen_prefix
  | Value.VInt _ | Value.VFloat _ | Value.VBool _ | Value.VNull _ -> false

(* Extend [subst] so that the flexible argument list maps onto the rigid
   one; rigid terms (variables included) act as constants. *)
let unify_args subst qargs fargs =
  let rec go subst qargs fargs =
    match (qargs, fargs) with
    | [], [] -> Some subst
    | qa :: qrest, fa :: frest -> (
        match qa with
        | Atom.Cst _ ->
            if Atom.equal_term qa fa then go subst qrest frest else None
        | Atom.Var x -> (
            match Atom.Subst.find subst x with
            | Some bound ->
                if Atom.equal_term bound fa then go subst qrest frest else None
            | None -> go (Atom.Subst.bind subst x fa) qrest frest))
    | _, _ -> None
  in
  go subst qargs fargs

exception Enough

let search ?(init = Atom.Subst.empty) ?limit ~rigid atoms =
  let idx = Hashtbl.create 16 in
  List.iter
    (fun (f : Atom.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt idx f.Atom.pred) in
      Hashtbl.replace idx f.Atom.pred (f :: cur))
    rigid;
  let facts_for pred = Option.value ~default:[] (Hashtbl.find_opt idx pred) in
  let extensions subst (a : Atom.t) =
    List.filter_map
      (fun (f : Atom.t) ->
        if List.length f.Atom.args = List.length a.Atom.args then
          unify_args subst a.Atom.args f.Atom.args
        else None)
      (facts_for a.Atom.pred)
  in
  let unbound subst (a : Atom.t) =
    List.length
      (List.filter
         (fun x -> Option.is_none (Atom.Subst.find subst x))
         (Atom.vars a))
  in
  let found = ref [] in
  let n_found = ref 0 in
  let rec go subst pending =
    match pending with
    | [] -> (
        found := subst :: !found;
        incr n_found;
        match limit with
        | Some k when !n_found >= k -> raise Enough
        | Some _ | None -> ())
    | _ -> (
        (* fail-first: expand the atom with the fewest consistent images;
           on ties prefer the more instantiated atom *)
        let scored =
          List.mapi
            (fun i a ->
              let exts = extensions subst a in
              (i, (List.length exts, unbound subst a), exts))
            pending
        in
        let best =
          List.fold_left
            (fun acc (i, key, exts) ->
              match acc with
              | Some (_, best_key, _) when compare best_key key <= 0 -> acc
              | _ -> Some (i, key, exts))
            None scored
        in
        match best with
        | None | Some (_, _, []) -> ()
        | Some (i, _, exts) ->
            let rest = List.filteri (fun j _ -> j <> i) pending in
            List.iter (fun s -> go s rest) exts)
  in
  (try go init atoms with Enough -> ());
  List.rev !found

let all ?init ?limit ~rigid atoms = search ?init ?limit ~rigid atoms

let find ?init ~rigid atoms =
  match search ?init ~limit:1 ~rigid atoms with s :: _ -> Some s | [] -> None

let holds ?init ~rigid atoms = Option.is_some (find ?init ~rigid atoms)
