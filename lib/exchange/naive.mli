(** Baseline executor: the naive {!Smg_cq.Chase.exchange}, wrapped so
    its output is comparable with {!Engine.run}'s.

    The chase keeps source and target relations in one namespace; this
    wrapper prefixes every target relation before chasing and strips the
    prefix afterwards, so schemas whose sides share table names (e.g.
    Mondial) execute without clashing. Used as the reference
    implementation in tests and as the comparison point in the
    exchange-scale experiment. *)

val exchange :
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  mappings:Smg_cq.Dependency.tgd list ->
  Smg_relational.Instance.t ->
  Smg_cq.Chase.outcome
(** Chase the mappings over the source instance; the outcome's instance
    contains target relations only, under their original names. *)
