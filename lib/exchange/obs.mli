(** Observability: per-tgd execution counters, wall-clock timing, and
    benchmark-row JSON export for [BENCH_exchange.json].

    The mutable {!tstats} accumulator is strictly per-run scratch state:
    the engine allocates a fresh one per plan per execution and never
    shares it — reports expose only the immutable {!stats} snapshot, so
    two requests executing the same cached plan concurrently (the
    [lib/serve] case) cannot corrupt each other's counters. *)

type tstats = {
  mutable st_scanned : int;  (** tuples read by the driving scan *)
  mutable st_probes : int;  (** hash-index probes issued *)
  mutable st_hits : int;  (** probes that found at least one tuple *)
  mutable st_misses : int;  (** probes that found none *)
  mutable st_checks : int;  (** satisfaction checks run (triggers) *)
  mutable st_satisfied : int;  (** triggers already satisfied *)
  mutable st_emitted : int;  (** target tuples actually inserted *)
  mutable st_nulls : int;  (** labelled nulls minted *)
  mutable st_seconds : float;  (** wall-clock time in this plan *)
}

val fresh_tstats : unit -> tstats
val pp_tstats : Format.formatter -> tstats -> unit

(** Immutable per-run counter snapshot — what reports carry. *)
type stats = {
  n_scanned : int;
  n_probes : int;
  n_hits : int;
  n_misses : int;
  n_checks : int;
  n_satisfied : int;
  n_emitted : int;
  n_nulls : int;
  n_seconds : float;
}

val snapshot : tstats -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Shard and intern observability: live target tuples and cumulative
    tombstones per membership shard of the engine's partitioned stores
    (summed over the target relations), plus the global intern-pool
    size at snapshot time. Carried by engine reports, rendered in the
    `mapdisc exchange` summary and in [GET /metrics]. *)
type shard_view = {
  sv_shards : int;
  sv_tuples : int array;  (** live target tuples owned by each shard *)
  sv_rot : int array;  (** cumulative removals routed through each shard *)
  sv_intern_pool : int;  (** distinct constants interned, process-global *)
}

val pp_shard_view : Format.formatter -> shard_view -> unit

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), seconds)] by [Unix.gettimeofday]. *)

type bench_row = {
  br_name : string;
  br_size : int;
  br_ns_per_run : float;
  br_tuples_per_s : float;
}

val write_bench_json : path:string -> bench_row list -> unit
(** Write rows as a JSON array of objects with fields [name], [size],
    [ns_per_run], [tuples_per_s]. *)
