(** Observability: per-tgd execution counters, wall-clock timing, and
    benchmark-row JSON export for [BENCH_exchange.json]. *)

type tstats = {
  mutable st_scanned : int;  (** tuples read by the driving scan *)
  mutable st_probes : int;  (** hash-index probes issued *)
  mutable st_hits : int;  (** probes that found at least one tuple *)
  mutable st_misses : int;  (** probes that found none *)
  mutable st_checks : int;  (** satisfaction checks run (triggers) *)
  mutable st_satisfied : int;  (** triggers already satisfied *)
  mutable st_emitted : int;  (** target tuples actually inserted *)
  mutable st_nulls : int;  (** labelled nulls minted *)
  mutable st_seconds : float;  (** wall-clock time in this plan *)
}

val fresh_tstats : unit -> tstats
val pp_tstats : Format.formatter -> tstats -> unit

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), seconds)] by [Unix.gettimeofday]. *)

type bench_row = {
  br_name : string;
  br_size : int;
  br_ns_per_run : float;
  br_tuples_per_s : float;
}

val write_bench_json : path:string -> bench_row list -> unit
(** Write rows as a JSON array of objects with fields [name], [size],
    [ns_per_run], [tuples_per_s]. *)
