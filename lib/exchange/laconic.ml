module Value = Smg_relational.Value
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase

(* Variables a tgd "exports": universal variables that occur on the
   right-hand side, plus the arguments of every Skolem term there
   (Skolem variables carry their argument names inside the variable
   name, invisible to Atom.vars). *)
let exported (t : Dependency.tgd) =
  let lhs_vars = Atom.vars_of_list t.Dependency.lhs in
  let rhs_vars = Atom.vars_of_list t.Dependency.rhs in
  let direct = List.filter (fun x -> List.mem x lhs_vars) rhs_vars in
  let skolem_args =
    List.concat_map
      (fun x ->
        match Chase.parse_skolem_var x with
        | Some _ ->
            (* all variables of the application, nested args included *)
            List.filter
              (fun v -> List.mem v lhs_vars)
              (Smg_cq.Sotgd.term_vars (Smg_cq.Sotgd.term_of_var x))
        | None -> [])
      rhs_vars
  in
  List.sort_uniq compare (direct @ skolem_args)

let plain_existentials (t : Dependency.tgd) =
  List.filter
    (fun x -> Chase.parse_skolem_var x = None)
    (Dependency.existential_vars t)

let minimize_tgd (t : Dependency.tgd) =
  let head = List.map (fun x -> Atom.Var x) (exported t) in
  let lhs =
    (Query.minimize (Query.make ~name:"lhs" ~head t.Dependency.lhs)).Query.body
  in
  (* On the rhs, Skolem variables denote computed values, so they are
     pinned alongside the universal head — only plain existentials may
     fold away. *)
  let skolems =
    List.filter
      (fun x -> Chase.parse_skolem_var x <> None)
      (Atom.vars_of_list t.Dependency.rhs)
  in
  let rhs_head = head @ List.map (fun x -> Atom.Var x) skolems in
  let rhs =
    (Query.minimize (Query.make ~name:"rhs" ~head:rhs_head t.Dependency.rhs))
      .Query.body
  in
  { t with Dependency.lhs; rhs }

let specificity (t : Dependency.tgd) =
  (* Fewer plain existentials = more informative conclusions; among
     equals, a larger rhs asserts more. Firing the most informative
     tgds first lets the restricted-chase satisfaction check absorb the
     triggers of less informative ones, so fewer redundant nulls are
     minted in the first place. *)
  (List.length (plain_existentials t), -List.length t.Dependency.rhs)

let prepare tgds =
  let minimized = List.map minimize_tgd tgds in
  let deduped =
    List.fold_left
      (fun acc t ->
        if List.exists (Dependency.equal_tgd t) acc then acc else t :: acc)
      [] minimized
    |> List.rev
  in
  List.stable_sort (fun a b -> compare (specificity a) (specificity b)) deduped

(* ---- post-execution subsumption sweep ---------------------------------- *)

(* Drop a tuple [t] when (i) every labelled null in [t] occurs nowhere
   else in the instance and (ii) some other live tuple [t'] of the same
   relation agrees with [t] on every non-null cell, with a consistent
   assignment for [t]'s nulls. Each drop is the image of a proper
   endomorphism (map those nulls to [t']'s cells, identity elsewhere),
   so the result stays homomorphically equivalent — this removes the
   single-fact redundancy the greedy core fold spends most of its time
   on, in near-linear time. Nulls shared across facts (genuine joins on
   invented values) are left for {!Smg_verify.Icore}. *)
let sweep inst =
  let counts = Hashtbl.create 256 in
  let note v =
    match v with
    | Value.VNull k ->
        Hashtbl.replace counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    | _ -> ()
  in
  List.iter
    (fun name ->
      match Instance.relation inst name with
      | None -> ()
      | Some r -> List.iter (fun tup -> Array.iter note tup) r.Instance.tuples)
    (Instance.names inst);
  let dropped = ref 0 in
  let sweep_relation (r : Instance.relation) =
    let tuples = Array.of_list r.Instance.tuples in
    let n = Array.length tuples in
    let alive = Array.make n true in
    let null_positions tup =
      let acc = ref [] in
      Array.iteri
        (fun i v -> if Value.is_null v then acc := i :: !acc)
        tup;
      List.rev !acc
    in
    let local_count tup k =
      Array.fold_left
        (fun acc v -> if Value.equal v (Value.VNull k) then acc + 1 else acc)
        0 tup
    in
    let key_at positions tup =
      Smg_relational.Index.key_of_values
        (List.map (fun p -> tup.(p)) positions)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      (* group live tuples by null mask; index each mask's complement *)
      let by_mask = Hashtbl.create 8 in
      Array.iteri
        (fun i tup ->
          if alive.(i) then begin
            let mask = null_positions tup in
            let tbl =
              match Hashtbl.find_opt by_mask mask with
              | Some t -> t
              | None ->
                  let t = Hashtbl.create 32 in
                  Hashtbl.replace by_mask mask t;
                  t
          in
            let nonnull =
              List.filter (fun p -> not (List.mem p mask))
                (List.init (Array.length tup) Fun.id)
            in
            let k = key_at nonnull tup in
            Hashtbl.replace tbl k
              (i :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
          end)
        tuples;
      Array.iteri
        (fun i tup ->
          if alive.(i) then begin
            let mask = null_positions tup in
            if mask <> [] then begin
              let only_here =
                List.for_all
                  (fun p ->
                    match tup.(p) with
                    | Value.VNull k ->
                        Hashtbl.find_opt counts k = Some (local_count tup k)
                    | _ -> true)
                  mask
              in
              if only_here then begin
                (* a live tuple agreeing on every non-null cell, with a
                   consistent image for the nulls *)
                let consistent j =
                  j <> i && alive.(j)
                  &&
                  let t' = tuples.(j) in
                  let m = Hashtbl.create 4 in
                  let n = Array.length tup in
                  let rec go p =
                    p = n
                    ||
                    (match tup.(p) with
                      | Value.VNull k -> (
                          match Hashtbl.find_opt m k with
                          | Some v -> Value.equal v t'.(p)
                          | None ->
                              Hashtbl.replace m k t'.(p);
                              true)
                      | v -> Value.equal v t'.(p))
                    && go (p + 1)
                  in
                  go 0
                in
                let candidates =
                  (* A subsuming tuple must agree on our non-null cells
                     (a null there could not equal our constant), so its
                     mask is a subset of ours. Same-mask candidates come
                     from one hash probe on the shared non-null
                     positions — the common case of duplicated null
                     patterns; strictly-smaller-mask groups (rarer) are
                     enumerated. *)
                  let nonnull =
                    List.filter
                      (fun p -> not (List.mem p mask))
                      (List.init (Array.length tup) Fun.id)
                  in
                  let exact =
                    match Hashtbl.find_opt by_mask mask with
                    | None -> []
                    | Some tbl ->
                        Option.value ~default:[]
                          (Hashtbl.find_opt tbl (key_at nonnull tup))
                  in
                  Hashtbl.fold
                    (fun mask' tbl acc ->
                      if
                        mask' <> mask
                        && List.for_all (fun p -> List.mem p mask) mask'
                      then Hashtbl.fold (fun _ is acc -> is @ acc) tbl acc
                      else acc)
                    by_mask exact
                in
                match List.find_opt consistent candidates with
                | Some _ ->
                    alive.(i) <- false;
                    incr dropped;
                    changed := true;
                    List.iter
                      (fun p ->
                        match tup.(p) with
                        | Value.VNull k ->
                            Hashtbl.replace counts k
                              (Option.value ~default:0
                                 (Hashtbl.find_opt counts k)
                              - 1)
                        | _ -> ())
                      mask
                | None -> ()
              end
            end
          end)
        tuples
    done;
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then kept := tuples.(i) :: !kept
    done;
    { r with Instance.tuples = List.rev !kept }
  in
  let inst' =
    List.fold_left
      (fun acc name ->
        match Instance.relation inst name with
        | None -> acc
        | Some r -> Instance.set acc name (sweep_relation r))
      inst (Instance.names inst)
  in
  (inst', !dropped)
