(** Laconic-style preparation of mappings and near-core output cleanup.

    Ten Cate et al. (PVLDB 2009) show a schema mapping can be rewritten
    so that direct execution produces the core universal solution. We
    implement the practically effective portion of that idea for the
    discovered-mapping setting: normalise the tgd list before execution
    ({!prepare}) so fewer redundant triggers fire, and fold the residual
    single-fact redundancy after execution ({!sweep}) in near-linear
    time. Nulls genuinely shared between facts are left to the exact
    core engine, [Smg_verify.Icore]. *)

val prepare : Smg_cq.Dependency.tgd list -> Smg_cq.Dependency.tgd list
(** Deduplicate (up to logical equivalence), minimise each tgd's lhs
    and rhs as conjunctive queries (pinning exported universal
    variables, Skolem arguments, and Skolem terms), and order
    most-specific-first — fewest plain existentials, then largest rhs —
    so that the restricted chase's satisfaction check absorbs the
    triggers of less informative tgds instead of minting fresh nulls. *)

val sweep :
  Smg_relational.Instance.t -> Smg_relational.Instance.t * int
(** Drop every tuple whose labelled nulls occur nowhere else and which
    is subsumed by another tuple of the same relation under a consistent
    null assignment. Each drop is the image of an endomorphism, so the
    swept instance is homomorphically equivalent to the input. Returns
    the instance and the number of tuples dropped. *)
