module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase

(* The naive chase executes source and target in one namespace, so a
   table name occurring on both sides (e.g. [country] in Mondial) would
   collide. Prefix every target relation, chase, then strip the prefix
   from the result — the same trick the engine makes unnecessary by
   keeping the sides in separate stores. *)

let prefix = "tgt!"
let ns p = prefix ^ p

let ns_schema (s : Schema.t) =
  Schema.make
    ~name:(s.Schema.schema_name ^ "!ns")
    (List.map
       (fun (t : Schema.table) -> { t with Schema.tbl_name = ns t.tbl_name })
       s.Schema.tables)
    []

let ns_tgds tgds =
  List.map
    (fun (t : Dependency.tgd) ->
      {
        t with
        Dependency.rhs =
          List.map
            (fun (at : Atom.t) -> { at with Atom.pred = ns at.Atom.pred })
            t.Dependency.rhs;
      })
    tgds

let unns_instance inst =
  let plen = String.length prefix in
  List.fold_left
    (fun acc name ->
      match Instance.relation inst name with
      | None -> acc
      | Some r ->
          let base =
            if String.length name > plen && String.sub name 0 plen = prefix
            then String.sub name plen (String.length name - plen)
            else name
          in
          Instance.set acc base r)
    Instance.empty (Instance.names inst)

let exchange ~source ~target ~mappings inst =
  match
    Chase.exchange ~source ~target:(ns_schema target)
      ~mappings:(ns_tgds mappings) inst
  with
  | Chase.Saturated i -> Chase.Saturated (unns_instance i)
  | Chase.Bounded i -> Chase.Bounded (unns_instance i)
  | Chase.Failed _ as f -> f
