module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Atom = Smg_cq.Atom
module Dependency = Smg_cq.Dependency
module Chase = Smg_cq.Chase

type binding = Slot of int | Const of Value.t

type scan = {
  sc_pred : string;
  sc_eqs : (int * binding) list;
      (* positions equated with an already-bound slot or a constant;
         together they form the probe key of this step's index *)
  sc_selfeqs : (int * int) list;
      (* repeated variable within this atom: position must equal the
         cell at the other (earlier) position *)
  sc_binds : (int * int) list;  (* position -> fresh slot bound here *)
}

type sk_arg = ASlot of int | AConst of Value.t | AApp of string * sk_arg list

type cell =
  | CSlot of int
  | CConst of Value.t
  | CNull of int  (* index into the trigger's fresh-null vector *)
  | CSkolem of string * sk_arg list
      (* Skolem function, arguments drawn from bound slots or embedded
         constants (composition substitutes constants into Skolem
         arguments) *)

type emit = { em_pred : string; em_cells : cell array }

type check_cell =
  | KSlot of int
  | KConst of Value.t
  | KEx of int
  | KSkolem of string * sk_arg list

type check = {
  ck_pred : string;
  ck_cells : check_cell array;
  ck_probe : int list;
      (* positions statically known when this check atom runs: bound
         slots, constants, and existentials introduced by earlier check
         atoms — the probe key of the satisfaction lookup *)
}

type t = {
  p_name : string;
  p_tgd : Dependency.tgd;
  p_nslots : int;
  p_scans : scan list;
  p_emits : emit list;
  p_checks : check list;
  p_nnulls : int;  (* plain (non-Skolem) existentials per trigger *)
  p_nex : int;  (* all existentials, as wildcards of the check *)
  p_slot_names : string array;
}

(* ---- compilation ------------------------------------------------------- *)

let order_atoms ?card ?lead atoms =
  (* Left-deep greedy join order: start from the most selective atom
     (most constants, then smallest relation), then repeatedly take the
     atom sharing the most variables with the bound set (ties: smallest
     relation). Disconnected atoms become cross products, last. *)
  let cardinality (a : Atom.t) =
    match card with Some f -> f a.Atom.pred | None -> 0
  in
  let n_consts (a : Atom.t) =
    List.length
      (List.filter (function Atom.Cst _ -> true | Atom.Var _ -> false) a.args)
  in
  let rec go bound acc = function
    | [] -> List.rev acc
    | remaining ->
        let score (a : Atom.t) =
          let joined =
            List.length
              (List.filter
                 (function
                   | Atom.Cst _ -> true
                   | Atom.Var x -> List.mem x bound)
                 a.args)
          in
          (joined, -cardinality a)
        in
        let best =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some a
              | Some b -> if score a > score b then Some a else best)
            None remaining
        in
        let a = Option.get best in
        let remaining = List.filter (fun a' -> a' != a) remaining in
        go (Atom.vars a @ bound) (a :: acc) remaining
  in
  match atoms with
  | [] -> []
  | _ ->
      let first =
        match lead with
        | Some i -> List.nth atoms i
        | None ->
            Option.get
              (List.fold_left
                 (fun best a ->
                   match best with
                   | None -> Some a
                   | Some b ->
                       if
                         (n_consts a, -cardinality a)
                         > (n_consts b, -cardinality b)
                       then Some a
                       else best)
                 None atoms)
      in
      let a = first in
      go (Atom.vars a) [ a ] (List.filter (fun a' -> a' != a) atoms)

let compile ?card ?lead ~source ~target (tgd : Dependency.tgd) =
  let slot_of = Hashtbl.create 16 in
  let slot_names = ref [] in
  let nslots = ref 0 in
  let fresh_slot x =
    let s = !nslots in
    Hashtbl.replace slot_of x s;
    slot_names := x :: !slot_names;
    incr nslots;
    s
  in
  let arity schema (a : Atom.t) =
    let t = Schema.find_table_exn schema a.Atom.pred in
    let n = List.length t.Schema.columns in
    if n <> List.length a.args then
      invalid_arg
        (Printf.sprintf "plan %s: arity mismatch on %s" tgd.Dependency.tgd_name
           a.Atom.pred);
    n
  in
  (* scans *)
  let scans =
    List.map
      (fun (a : Atom.t) ->
        ignore (arity source a);
        let eqs = ref [] and selfeqs = ref [] and binds = ref [] in
        let local = Hashtbl.create 8 in
        List.iteri
          (fun pos term ->
            match term with
            | Atom.Cst c -> eqs := (pos, Const c) :: !eqs
            | Atom.Var x -> (
                match Hashtbl.find_opt local x with
                | Some p0 -> selfeqs := (pos, p0) :: !selfeqs
                | None -> (
                    Hashtbl.replace local x pos;
                    match Hashtbl.find_opt slot_of x with
                    | Some s -> eqs := (pos, Slot s) :: !eqs
                    | None -> binds := (pos, fresh_slot x) :: !binds)))
          a.args;
        {
          sc_pred = a.pred;
          sc_eqs = List.rev !eqs;
          sc_selfeqs = List.rev !selfeqs;
          sc_binds = List.rev !binds;
        })
      (order_atoms ?card ?lead tgd.Dependency.lhs)
  in
  (* existentials: rhs variables with no lhs slot *)
  let nnulls = ref 0 and nex = ref 0 in
  let null_of = Hashtbl.create 8 and ex_of = Hashtbl.create 8 in
  let skolem_of = Hashtbl.create 8 in
  let existential x =
    if not (Hashtbl.mem ex_of x) then begin
      Hashtbl.replace ex_of x !nex;
      incr nex;
      match Chase.parse_skolem_var x with
      | Some (f, args) ->
          (* arguments: bound slots, embedded constants, or nested
             applications (composition output) compiled recursively *)
          let rec compile_arg a =
            match Chase.decode_skolem_arg a with
            | Chase.Sk_cst c -> AConst c
            | Chase.Sk_var v -> (
                match Hashtbl.find_opt slot_of v with
                | Some s -> ASlot s
                | None -> (
                    match Chase.parse_skolem_var v with
                    | Some (g, nested) -> AApp (g, List.map compile_arg nested)
                    | None ->
                        invalid_arg
                          (Printf.sprintf
                             "plan %s: skolem argument %s not universal"
                             tgd.Dependency.tgd_name v)))
          in
          Hashtbl.replace skolem_of x (f, List.map compile_arg args)
      | None ->
          Hashtbl.replace null_of x !nnulls;
          incr nnulls
    end
  in
  let emits =
    List.map
      (fun (a : Atom.t) ->
        ignore (arity target a);
        let cells =
          Array.of_list
            (List.map
               (fun term ->
                 match term with
                 | Atom.Cst c -> CConst c
                 | Atom.Var x -> (
                     match Hashtbl.find_opt slot_of x with
                     | Some s -> CSlot s
                     | None -> (
                         existential x;
                         match Hashtbl.find_opt skolem_of x with
                         | Some (f, args) -> CSkolem (f, args)
                         | None -> CNull (Hashtbl.find null_of x))))
               a.args)
        in
        { em_pred = a.pred; em_cells = cells })
      tgd.Dependency.rhs
  in
  (* satisfaction-check templates: plain existentials are wildcards, as
     in the restricted chase, but a Skolem-named existential has a value
     determined by the trigger's bindings — the check must compute it,
     or a trigger would be skipped because a *different* Skolem row is
     already present. *)
  let introduced = Hashtbl.create 8 in
  let checks =
    List.map
      (fun (a : Atom.t) ->
        let cells =
          Array.of_list
            (List.map
               (fun term ->
                 match term with
                 | Atom.Cst c -> KConst c
                 | Atom.Var x -> (
                     match Hashtbl.find_opt slot_of x with
                     | Some s -> KSlot s
                     | None -> (
                         existential x;
                         match Hashtbl.find_opt skolem_of x with
                         | Some (f, args) -> KSkolem (f, args)
                         | None -> KEx (Hashtbl.find ex_of x))))
               a.args)
        in
        let probe = ref [] in
        let fresh_here = Hashtbl.create 4 in
        Array.iteri
          (fun pos cell ->
            match cell with
            | KSlot _ | KConst _ | KSkolem _ -> probe := pos :: !probe
            | KEx e ->
                if Hashtbl.mem introduced e then probe := pos :: !probe
                else if not (Hashtbl.mem fresh_here e) then
                  Hashtbl.replace fresh_here e ())
          cells;
        Hashtbl.iter (fun e () -> Hashtbl.replace introduced e ()) fresh_here;
        { ck_pred = a.pred; ck_cells = cells; ck_probe = List.rev !probe })
      tgd.Dependency.rhs
  in
  let names = Array.of_list (List.rev !slot_names) in
  {
    p_name = tgd.Dependency.tgd_name;
    p_tgd = tgd;
    p_nslots = !nslots;
    p_scans = scans;
    p_emits = emits;
    p_checks = checks;
    p_nnulls = !nnulls;
    p_nex = !nex;
    p_slot_names = names;
  }

(* ---- pretty-printing (EXPLAIN) ----------------------------------------- *)

let pp_binding names ppf = function
  | Slot s -> Fmt.string ppf names.(s)
  | Const c -> Value.pp ppf c

let pp_scan names ppf (i, sc) =
  if i = 0 && sc.sc_eqs = [] then Fmt.pf ppf "scan %s" sc.sc_pred
  else if sc.sc_eqs = [] then Fmt.pf ppf "product %s" sc.sc_pred
  else
    Fmt.pf ppf "probe %s on (%a)" sc.sc_pred
      (Fmt.list ~sep:Fmt.comma (fun ppf (pos, b) ->
           Fmt.pf ppf "#%d=%a" pos (pp_binding names) b))
      sc.sc_eqs;
  List.iter (fun (p, p0) -> Fmt.pf ppf " [#%d=#%d]" p p0) sc.sc_selfeqs;
  List.iter (fun (p, s) -> Fmt.pf ppf " #%d->%s" p names.(s)) sc.sc_binds

let pp_cell names ppf = function
  | CSlot s -> Fmt.string ppf names.(s)
  | CConst c -> Value.pp ppf c
  | CNull k -> Fmt.pf ppf "null_%d" k
  | CSkolem (f, args) ->
      let rec pp_arg ppf = function
        | ASlot s -> Fmt.string ppf names.(s)
        | AConst c -> Value.pp ppf c
        | AApp (g, nested) ->
            Fmt.pf ppf "%s(%a)" g (Fmt.list ~sep:Fmt.comma pp_arg) nested
      in
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:Fmt.comma pp_arg) args

let pp ppf p =
  Fmt.pf ppf "@[<v2>plan %s:@," p.p_name;
  List.iteri (fun i sc -> Fmt.pf ppf "%a@," (pp_scan p.p_slot_names) (i, sc)) p.p_scans;
  List.iter
    (fun e ->
      Fmt.pf ppf "emit %s(%a)@," e.em_pred
        (Fmt.list ~sep:Fmt.comma (pp_cell p.p_slot_names))
        (Array.to_list e.em_cells))
    p.p_emits;
  Fmt.pf ppf "nulls/trigger: %d@]" p.p_nnulls
