(* Frozen boxed-value reference engine.

   This is the pre-interning execution engine (hash joins over
   [Value.t array] tuples with serialized-string novelty keys), kept as
   a sequential reference implementation after {!Engine} moved to the
   interned columnar substrate. It exists for two jobs:

   - differential testing: [Engine] output must stay hom-equivalent to
     this engine's output on every scenario, at every shard and domain
     count;
   - benchmarking: `experiments parallel-scale` reports speedups
     against this engine as the fixed sequential baseline, so the
     substrate's gain is measured and not grandfathered away.

   Deliberately frozen: no budgets, no faults, no pool, no incremental
   surface. Do not optimize this file. *)

module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Index = Smg_relational.Index

type store = {
  s_header : string list;
  mutable s_tuples : Value.t array list; (* reverse insertion order *)
  s_seen : (string, Value.t array) Hashtbl.t;
  mutable s_indexes : (int list * Index.t) list;
  mutable s_delta : Value.t array list;
  mutable s_count : int;
}

let store_of_tuples ?(track = true) header tuples =
  let n = List.length tuples in
  let seen = Hashtbl.create (if track then (n * 2) + 1 else 16) in
  if track then
    List.iter (fun tup -> Hashtbl.replace seen (Index.tuple_key tup) tup) tuples;
  {
    s_header = header;
    s_tuples = List.rev tuples;
    s_seen = seen;
    s_indexes = [];
    s_delta = [];
    s_count = n;
  }

let insert st tup =
  let k = Index.tuple_key tup in
  if Hashtbl.mem st.s_seen k then false
  else begin
    Hashtbl.replace st.s_seen k tup;
    st.s_tuples <- tup :: st.s_tuples;
    st.s_count <- st.s_count + 1;
    st.s_delta <- tup :: st.s_delta;
    List.iter (fun (_, ix) -> Index.add ix tup) st.s_indexes;
    true
  end

let index_threshold = 64

let get_index st cols =
  match List.assoc_opt cols st.s_indexes with
  | Some ix -> ix
  | None ->
      let ix = Index.build ~key:cols st.s_tuples in
      st.s_indexes <- (cols, ix) :: st.s_indexes;
      ix

let probe_linear st cols vals =
  List.filter
    (fun tup -> List.for_all2 (fun c v -> Value.equal tup.(c) v) cols vals)
    st.s_tuples

let probe_store st cols vals =
  match List.assoc_opt cols st.s_indexes with
  | Some ix -> Index.probe ix vals
  | None ->
      if st.s_count < index_threshold then probe_linear st cols vals
      else Index.probe (get_index st cols) vals

type t = {
  e_src : (string, store) Hashtbl.t;
  e_tgt : (string, store) Hashtbl.t;
  e_target_schema : Schema.t;
  mutable e_next_null : int;
  mutable e_null_limit : int;
}

let null_block = 256

let mint_null e =
  if e.e_next_null > e.e_null_limit then begin
    let first = Value.alloc_nulls null_block in
    e.e_next_null <- first;
    e.e_null_limit <- first + null_block - 1
  end;
  let k = e.e_next_null in
  e.e_next_null <- e.e_next_null + 1;
  Value.VNull k

let header_of (tbl : Schema.table) =
  List.map (fun c -> c.Schema.col_name) tbl.Schema.columns

let create ~source ~target inst =
  let src = Hashtbl.create 16 and tgt = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Schema.table) ->
      let header = header_of tbl in
      let r = Instance.relation_or_empty inst tbl.Schema.tbl_name ~header in
      Hashtbl.replace src tbl.Schema.tbl_name
        (store_of_tuples ~track:false header r.Instance.tuples))
    source.Schema.tables;
  List.iter
    (fun (tbl : Schema.table) ->
      Hashtbl.replace tgt tbl.Schema.tbl_name
        (store_of_tuples (header_of tbl) []))
    target.Schema.tables;
  {
    e_src = src;
    e_tgt = tgt;
    e_target_schema = target;
    e_next_null = 1;
    e_null_limit = 0;
  }

let rec sk_arg_value env = function
  | Plan.ASlot s -> env.(s)
  | Plan.AConst c -> c
  | Plan.AApp (g, nested) ->
      Smg_cq.Chase.skolem_term ~f:g ~args:(List.map (sk_arg_value env) nested)

let skolem_cell_value env f args =
  Smg_cq.Chase.skolem_term ~f ~args:(List.map (sk_arg_value env) args)

let satisfied e (plan : Plan.t) env =
  let exenv = Array.make (max plan.Plan.p_nex 1) None in
  let cell_value cell =
    match cell with
    | Plan.KSlot s -> env.(s)
    | Plan.KConst c -> c
    | Plan.KSkolem (f, args) -> skolem_cell_value env f args
    | Plan.KEx x -> (
        match exenv.(x) with Some v -> v | None -> assert false)
  in
  let rec go checks =
    match checks with
    | [] -> true
    | (ck : Plan.check) :: rest ->
        let st = Hashtbl.find e.e_tgt ck.Plan.ck_pred in
        let candidates =
          match ck.Plan.ck_probe with
          | [] -> st.s_tuples
          | probe ->
              probe_store st probe
                (List.map (fun p -> cell_value ck.Plan.ck_cells.(p)) probe)
        in
        List.exists
          (fun tup ->
            let trail = ref [] in
            let undo () = List.iter (fun x -> exenv.(x) <- None) !trail in
            let n = Array.length ck.Plan.ck_cells in
            let rec cells pos =
              pos = n
              ||
              (match ck.Plan.ck_cells.(pos) with
                | Plan.KSlot s -> Value.equal tup.(pos) env.(s)
                | Plan.KConst c -> Value.equal tup.(pos) c
                | Plan.KSkolem (f, args) ->
                    Value.equal tup.(pos) (skolem_cell_value env f args)
                | Plan.KEx x -> (
                    match exenv.(x) with
                    | Some v -> Value.equal tup.(pos) v
                    | None ->
                        exenv.(x) <- Some tup.(pos);
                        trail := x :: !trail;
                        true))
              && cells (pos + 1)
            in
            if cells 0 && go rest then true
            else begin
              undo ();
              false
            end)
          candidates
  in
  go plan.Plan.p_checks

let fire e (plan : Plan.t) env =
  if not (satisfied e plan env) then begin
    let nulls = Array.init plan.Plan.p_nnulls (fun _ -> mint_null e) in
    List.iter
      (fun (em : Plan.emit) ->
        let tup =
          Array.map
            (fun cell ->
              match cell with
              | Plan.CSlot s -> env.(s)
              | Plan.CConst c -> c
              | Plan.CNull k -> nulls.(k)
              | Plan.CSkolem (f, args) -> skolem_cell_value env f args)
            em.Plan.em_cells
        in
        ignore (insert (Hashtbl.find e.e_tgt em.Plan.em_pred) tup))
      plan.Plan.p_emits
  end

let eval_plan e (plan : Plan.t) ?delta () =
  let env = Array.make (max plan.Plan.p_nslots 1) (Value.VNull 0) in
  let scans = Array.of_list plan.Plan.p_scans in
  let nscans = Array.length scans in
  let binding_value b =
    match b with Plan.Slot s -> env.(s) | Plan.Const c -> c
  in
  let matches (sc : Plan.scan) tup =
    List.for_all
      (fun (pos, b) -> Value.equal tup.(pos) (binding_value b))
      sc.Plan.sc_eqs
    && List.for_all
         (fun (pos, p0) -> Value.equal tup.(pos) tup.(p0))
         sc.Plan.sc_selfeqs
  in
  let bind (sc : Plan.scan) tup =
    List.iter (fun (pos, s) -> env.(s) <- tup.(pos)) sc.Plan.sc_binds
  in
  let rec step i =
    if i = nscans then fire e plan env
    else begin
      let sc = scans.(i) in
      let use_delta = match delta with Some (j, _) -> j = i | None -> false in
      if use_delta then begin
        let tuples = match delta with Some (_, ts) -> ts | None -> [] in
        List.iter
          (fun tup ->
            if matches sc tup then begin
              bind sc tup;
              step (i + 1)
            end)
          tuples
      end
      else begin
        let st = Hashtbl.find e.e_src sc.Plan.sc_pred in
        match sc.Plan.sc_eqs with
        | [] ->
            List.iter
              (fun tup ->
                if
                  List.for_all
                    (fun (pos, p0) -> Value.equal tup.(pos) tup.(p0))
                    sc.Plan.sc_selfeqs
                then begin
                  bind sc tup;
                  step (i + 1)
                end)
              st.s_tuples
        | eqs ->
            let cols = List.map fst eqs in
            let bucket =
              probe_store st cols (List.map (fun (_, b) -> binding_value b) eqs)
            in
            List.iter
              (fun tup ->
                if
                  List.for_all
                    (fun (pos, p0) -> Value.equal tup.(pos) tup.(p0))
                    sc.Plan.sc_selfeqs
                then begin
                  bind sc tup;
                  step (i + 1)
                end)
              bucket
      end
    end
  in
  if nscans > 0 then step 0

type egd_result =
  | EgdConflict of string
  | EgdSubst of (int, Value.t) Hashtbl.t * int

let egd_pass e =
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match v with
    | Value.VNull k -> (
        match Hashtbl.find_opt subst k with
        | Some v' ->
            let r = resolve v' in
            if r != v' then Hashtbl.replace subst k r;
            r
        | None -> v)
    | _ -> v
  in
  let merges = ref 0 in
  let conflict = ref None in
  let unify table col u v =
    let ru = resolve u and rv = resolve v in
    if not (Value.equal ru rv) then
      match (ru, rv) with
      | Value.VNull k, _ ->
          Hashtbl.replace subst k rv;
          incr merges
      | _, Value.VNull k ->
          Hashtbl.replace subst k ru;
          incr merges
      | _ ->
          if !conflict = None then
            conflict :=
              Some
                (Printf.sprintf "key egd on %s.%s: %s vs %s" table col
                   (Value.to_string ru) (Value.to_string rv))
  in
  List.iter
    (fun (tbl : Schema.table) ->
      if tbl.Schema.key <> [] && !conflict = None then
        match Hashtbl.find_opt e.e_tgt tbl.Schema.tbl_name with
        | None -> ()
        | Some st ->
            let header = Array.of_list st.s_header in
            let keypos =
              List.map
                (fun k ->
                  let rec find i = if header.(i) = k then i else find (i + 1) in
                  find 0)
                tbl.Schema.key
            in
            let is_key =
              Array.map (fun c -> List.mem c tbl.Schema.key) header
            in
            let reps = Hashtbl.create (st.s_count + 1) in
            List.iter
              (fun tup ->
                if !conflict = None then begin
                  let rtup = Array.map resolve tup in
                  let k =
                    Index.key_of_values (List.map (fun p -> rtup.(p)) keypos)
                  in
                  match Hashtbl.find_opt reps k with
                  | None -> Hashtbl.replace reps k rtup
                  | Some rep ->
                      Array.iteri
                        (fun i v ->
                          if (not is_key.(i)) && !conflict = None then
                            unify tbl.Schema.tbl_name header.(i) rep.(i) v)
                        rtup
                end)
              st.s_tuples)
    e.e_target_schema.Schema.tables;
  match !conflict with
  | Some msg -> EgdConflict msg
  | None -> EgdSubst (subst, !merges)

let apply_subst e subst =
  let rec resolve v =
    match v with
    | Value.VNull k -> (
        match Hashtbl.find_opt subst k with Some v' -> resolve v' | None -> v)
    | _ -> v
  in
  let rewrite _name st =
    let changed = ref [] in
    let seen = Hashtbl.create ((st.s_count * 2) + 1) in
    let tuples =
      List.fold_left
        (fun acc tup ->
          let touched = ref false in
          let tup' =
            Array.map
              (fun v ->
                let r = resolve v in
                if not (Value.equal r v) then touched := true;
                r)
              tup
          in
          let k = Index.tuple_key tup' in
          if Hashtbl.mem seen k then acc
          else begin
            Hashtbl.replace seen k tup';
            if !touched then changed := tup' :: !changed;
            tup' :: acc
          end)
        [] st.s_tuples
    in
    st.s_tuples <- tuples;
    st.s_count <- Hashtbl.length seen;
    Hashtbl.reset st.s_seen;
    Hashtbl.iter (fun k tup -> Hashtbl.replace st.s_seen k tup) seen;
    st.s_indexes <- [];
    st.s_delta <- !changed
  in
  Hashtbl.iter rewrite e.e_src;
  Hashtbl.iter rewrite e.e_tgt

let clear_deltas e =
  Hashtbl.iter (fun _ st -> st.s_delta <- []) e.e_src;
  Hashtbl.iter (fun _ st -> st.s_delta <- []) e.e_tgt

type report = {
  r_target : Instance.t;
  r_complete : bool;
  r_rounds : int;
}

let target_instance e =
  Hashtbl.fold
    (fun name st acc ->
      if st.s_count = 0 then acc
      else
        Instance.set acc name
          { Instance.header = st.s_header; tuples = List.rev st.s_tuples })
    e.e_tgt Instance.empty

let run ?(max_rounds = 100) ?(laconic = false) ~source ~target ~mappings inst =
  try
    let card name = Instance.cardinality inst name in
    let mappings = if laconic then Laconic.prepare mappings else mappings in
    let plans = List.map (Plan.compile ~card ~source ~target) mappings in
    let e = create ~source ~target inst in
    let rounds = ref 1 in
    let complete = ref true in
    let failed = ref None in
    List.iter (fun plan -> eval_plan e plan ()) plans;
    clear_deltas e;
    let continue_ = ref true in
    while !continue_ && !failed = None do
      match egd_pass e with
      | EgdConflict msg -> failed := Some msg
      | EgdSubst (_, 0) -> continue_ := false
      | EgdSubst (subst, _) ->
          apply_subst e subst;
          incr rounds;
          if !rounds > max_rounds then begin
            complete := false;
            continue_ := false
          end
          else begin
            let deltas = Hashtbl.create 8 in
            Hashtbl.iter
              (fun name st ->
                if st.s_delta <> [] then Hashtbl.replace deltas name st.s_delta)
              e.e_src;
            clear_deltas e;
            List.iter
              (fun (plan : Plan.t) ->
                List.iteri
                  (fun i (sc : Plan.scan) ->
                    match Hashtbl.find_opt deltas sc.Plan.sc_pred with
                    | Some ts -> eval_plan e plan ~delta:(i, ts) ()
                    | None -> ())
                  plan.Plan.p_scans)
              plans;
            clear_deltas e
          end
    done;
    match !failed with
    | Some msg -> Error msg
    | None ->
        let tgt = target_instance e in
        let tgt, _ = if laconic then Laconic.sweep tgt else (tgt, 0) in
        Ok { r_target = tgt; r_complete = !complete; r_rounds = !rounds }
  with Invalid_argument msg -> Error msg
