(** The data-exchange execution engine.

    Executes a set of source-to-target tgds (discovered mappings) over a
    source instance by compiling each to a {!Plan.t} and evaluating the
    plans with hash-join probes over per-(relation, join-attribute)
    indexes, batched labelled-null allocation, and Skolem-term cells
    shared with the chase. Target key egds are enforced by a union-find
    pass over each keyed table, and after a substitution the plans are
    re-fired semi-naively — only through scan steps whose relation
    actually changed.

    The result is a universal solution for the mapping, homomorphically
    equivalent to the naive {!Smg_cq.Chase.exchange} output; with
    [~laconic:true] the tgds are normalised first and single-fact
    redundancy is swept afterwards ({!Laconic}), yielding a near-core
    instance directly. Unlike [Chase.exchange], source and target live
    in separate namespaces, so schemas sharing table names execute
    without renaming. *)

type report = {
  r_target : Smg_relational.Instance.t;  (** the target instance *)
  r_complete : bool;  (** false when the round budget was exhausted *)
  r_rounds : int;
  r_stats : (string * Obs.stats) list;
      (** per-tgd counters in plan order — immutable snapshots, safe to
          hold across (and aggregate over) concurrent executions *)
  r_egd_merges : int;  (** null bindings made by key egds *)
  r_sweep_dropped : int;  (** tuples folded by the laconic sweep *)
  r_seconds : float;  (** end-to-end wall-clock *)
  r_shards : Obs.shard_view;
      (** per-shard live/rot counters over the target stores plus the
          intern-pool size — the partitioning observability surface *)
}

val run :
  ?pool:Smg_parallel.Pool.t ->
  ?shards:int ->
  ?max_rounds:int ->
  ?laconic:bool ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  mappings:Smg_cq.Dependency.tgd list ->
  Smg_relational.Instance.t ->
  (report, string) result
(** Execute the mappings over a source instance. [max_rounds] (default
    100) bounds egd/re-fire rounds; [laconic] (default off) enables the
    {!Laconic} preparation and sweep. [Error] on a key-egd
    constant/constant conflict or an ill-formed tgd (unknown predicate,
    arity mismatch, non-universal Skolem argument).

    With a [pool], each plan's initial pass fans its driving scan out
    across the pool's domains: workers enumerate join bindings against
    pre-built indexes (read-only) and pre-filter triggers already
    satisfied in the target snapshot; all inserting, null minting and
    Skolem interning happens on the calling domain while replaying the
    surviving bindings in deterministic chunk order. The output is
    homomorphically equivalent to the sequential run's for any domain
    count (null labels may differ). Egd rounds and semi-naive re-firing
    stay sequential.

    [shards] sets the hash-partition count of every store's membership
    tables (explicit argument > [SMG_SHARDS] env var > the pool's
    domain count > 1). The partitioning is invisible to the output:
    stores share one insertion-ordered arena, so firing order — and the
    materialized target — is identical at every shard count. *)

type outcome =
  | Complete of report
  | Budget_exhausted of Smg_robust.Budget.reason * report
      (** the budget ran out mid-execution; the report carries the
          target built so far (a sound prefix, [r_complete = false]) *)
  | Failed of string
      (** key-egd constant conflict or ill-formed tgd *)

val run_bounded :
  ?budget:Smg_robust.Budget.t ->
  ?fault:Smg_robust.Fault.t ->
  ?pool:Smg_parallel.Pool.t ->
  ?shards:int ->
  ?max_rounds:int ->
  ?laconic:bool ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  mappings:Smg_cq.Dependency.tgd list ->
  Smg_relational.Instance.t ->
  outcome
(** {!run} under a resource budget: every scanned tuple ticks the
    budget and every minted labelled null burns a unit of fuel, so both
    runaway joins and null-generation blowups stop cleanly with
    [Budget_exhausted] instead of hanging. Without a budget this is
    {!run} with the result as an {!outcome}. In pooled runs each scan
    chunk receives an equal fuel share ({!Smg_robust.Budget.split} over
    a fixed chunk count, so accounting is independent of the domain
    count); a chunk exhausting its share still contributes the bindings
    it collected, and the target built when the budget runs out remains
    a sound prefix.

    [fault] consults the [Engine_step] injection point once per plan
    evaluation (initial pass and each semi-naive re-fire): an injected
    raise escapes to the caller (chaos supervision turns it into a
    diagnosed 500); an injected delay burns wall clock against the
    budget. *)

(** {1 Compile / execute split}

    A {!compiled} value is immutable plan data: the tgds lowered to
    {!Plan.t} (after the optional laconic preparation), plus the two
    schemas. Compiling is the parse/lower/order work a long-running
    service wants to pay once per scenario; executing allocates all
    mutable state (stores, counters, null labels) per call, so one
    [compiled] value may be executed by several domains concurrently. *)

type compiled = {
  c_source : Smg_relational.Schema.t;
  c_target : Smg_relational.Schema.t;
  c_plans : Plan.t list;
  c_delta : Plan.t list list;
      (** per plan (same order as [c_plans]), one reordered variant per
          lhs atom: variant [j] puts atom [j] at scan 0, so incremental
          maintenance can drive the join from a batch of tuples newly
          inserted into that atom's table instead of re-running the
          bulk plan's full join prefix. Empty lists under [laconic]. *)
  c_laconic : bool;
}

val compile :
  ?card:(string -> int) ->
  ?laconic:bool ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  mappings:Smg_cq.Dependency.tgd list ->
  unit ->
  (compiled, string) result
(** Compile the mappings to executable plans. [card] gives per-table
    source cardinalities for the greedy join ordering (pass the
    cardinalities of a representative instance; omitted, the order is
    purely structural). [laconic] (default off) runs the {!Laconic}
    preparation and marks the compiled value so {!execute} applies the
    closing sweep. [Error] on an ill-formed tgd (unknown predicate,
    arity mismatch, non-universal Skolem argument). *)

val execute :
  ?budget:Smg_robust.Budget.t ->
  ?fault:Smg_robust.Fault.t ->
  ?pool:Smg_parallel.Pool.t ->
  ?shards:int ->
  ?max_rounds:int ->
  compiled ->
  Smg_relational.Instance.t ->
  outcome
(** Execute compiled plans over a source instance. Semantics are those
    of {!run_bounded} minus the compilation: without a [budget] the
    outcome is [Complete] or [Failed]; with one it may be
    [Budget_exhausted] carrying the sound prefix built so far. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Stores and trigger enumeration}

    The engine's mutable per-relation store and the compiled-plan scan
    loop, exposed for incremental maintenance (lib/delta): a maintainer
    owns its own stores across update batches and re-enumerates
    triggers seeded from each batch's delta, reusing exactly the
    hash-join evaluation the bulk path runs. *)

module Stores : sig
  type t
  (** A mutable tuple store with set semantics, lazily-built hash-join
      indexes, and O(1) membership. *)

  val of_tuples :
    ?shards:int -> header:string list -> Smg_relational.Value.t array list -> t
  (** Build a store over duplicate-free initial tuples. [shards] sets
      the membership partition count (default: [SMG_SHARDS] env var,
      else 1). *)

  val header : t -> string list

  val tuples : t -> Smg_relational.Value.t array list
  (** Current tuples in insertion order. *)

  val count : t -> int
  val mem : t -> Smg_relational.Value.t array -> bool

  val insert : t -> Smg_relational.Value.t array -> bool
  (** [false] if the tuple was already present. Maintains any built
      indexes. *)

  val remove_many :
    t -> Smg_relational.Value.t array list -> Smg_relational.Value.t array list
  (** Remove a batch of tuples in O(batch), not O(store): each doomed
      tuple is unregistered from the membership set and tombstoned in
      place — both in the scan list and in any built index bucket.
      Probes filter tombstones while rot exists, and rot past the live
      count triggers an amortized rebuild. Returns the tuples actually
      removed, in batch order (absent ones are skipped silently). *)

  val clear_delta : t -> unit
  (** Forget the tuples recorded as "new this round" by {!insert} — an
      incremental maintainer drives re-evaluation from its own batch,
      so it drains this engine-side log after each apply to keep the
      store O(live tuples). *)

  val shard_view : ?intern_pool:bool -> t list -> Obs.shard_view
  (** Aggregate per-shard live/rot counters over a list of stores
      (which must share a shard count). [intern_pool:false] reports 0
      for the pool size instead of reading the global counter. *)
end

val prewarm : src:(string -> Stores.t) -> Plan.t -> unit
(** Build the hash indexes the plan's probing scans will use, so the
    first {!enumerate} after construction doesn't pay the O(store)
    index builds inside a latency-sensitive path. *)

val enumerate :
  src:(string -> Stores.t) ->
  ?budget:Smg_robust.Budget.t ->
  ?delta:int * Smg_relational.Value.t array list ->
  Plan.t ->
  Obs.tstats ->
  sink:(Smg_relational.Value.t array -> unit) ->
  unit
(** Enumerate every complete binding (trigger) of a compiled plan's
    scans over the stores named by [src], calling [sink] on each. With
    [delta:(i, tuples)], scan step [i] iterates only the given tuples —
    the semi-naive restriction: a binding is produced only if its
    [i]-th atom comes from the delta. The env array passed to [sink] is
    reused between bindings; copy it if it must survive the callback.
    Every scanned tuple ticks the [budget] ({!Smg_robust.Budget.tick_exn},
    so runaway joins raise [Budget.Exhausted] exactly as in bulk
    execution). *)
