module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Intern = Smg_relational.Intern
module Colstore = Smg_relational.Colstore
module Dependency = Smg_cq.Dependency
module Budget = Smg_robust.Budget

(* The execution substrate: every tuple cell is an interned int code
   ({!Smg_relational.Intern} — constants non-negative, labelled nulls
   negative), every relation a {!Smg_relational.Colstore} — a flat
   row-major int arena with hash-partitioned membership shards. The
   hot loops (scan, probe, novelty, key egds) compare and hash machine
   ints; boxed [Value.t]s appear only at the edges (building stores
   from an [Instance], materializing the target, Skolem terms).

   The arena is insertion-ordered and shared across shards, so firing
   order — and with it the minted null labels and the materialized
   target — is independent of the shard count. *)

(* ---- mutable per-relation stores --------------------------------------- *)

type store = {
  s_header : string list;
  mutable s_cs : Colstore.t;  (* replaced wholesale by [apply_subst] *)
  mutable s_delta : int list;  (* row ids new/changed this round, newest first *)
}

(* Below this live count, a filtered scan beats paying for the hash
   index (see PR 5's small-instance fix). Stores that already have the
   index keep using it — inserts maintain it either way. *)
let index_threshold = 64

(* ---- engine state ------------------------------------------------------- *)

type t = {
  e_src : (string, store) Hashtbl.t;
  e_lazy : (string, string list * Value.t array list) Hashtbl.t;
      (* source tables no plan scans, held unbuilt (header, tuples):
         interning their tuples would dominate generator-scale runs
         where the mappings touch a few of many tables. Never read by
         any plan, so skipping them in [apply_subst] is invisible; a
         late {!src_store} force (defensive only) happens on the caller
         domain. *)
  e_tgt : (string, store) Hashtbl.t;
  e_target_schema : Schema.t;
  e_nshards : int;
  e_skmemo : (string * int list, int) Hashtbl.t;
      (* (skolem fn, interned arg codes) -> interned term code. A pure
         cache over [Chase.skolem_term] (deterministic, append-only), so
         the hot loops skip its rendered-string key and mutex; touched
         only by [satisfied]/[fire], which run on the caller domain. *)
  mutable e_next_null : int;  (* next label in the reserved block *)
  mutable e_null_limit : int;  (* last label of the reserved block *)
}

let null_block = 256

(* labels still come from the global [Value] allocator (so engine nulls
   and chase/Skolem nulls never collide), but the engine works with the
   interned code *)
let mint_null_code e =
  if e.e_next_null > e.e_null_limit then begin
    let first = Value.alloc_nulls null_block in
    e.e_next_null <- first;
    e.e_null_limit <- first + null_block - 1
  end;
  let k = e.e_next_null in
  e.e_next_null <- e.e_next_null + 1;
  Intern.null_code k

let header_of (tbl : Schema.table) =
  List.map (fun c -> c.Schema.col_name) tbl.Schema.columns

(* [tracked = false] skips hashing the initial tuples into the
   membership shards: right for source stores, which only receive
   inserts after a substitution rebuilt them (fire inserts into target
   stores only) and whose initial tuples are trusted duplicate-free. *)
(* Coded-arena cache: a relation's tuple list, once interned, keeps its
   flat coded arena keyed weakly by the list's physical identity (the
   lists are immutable and codes are global append-only, so a hit is
   exact). Repeat executions over one instance — the serve steady state
   and every benchmark loop — skip the interning pass entirely. Arenas
   are shared read-only between the engines that adopt them: engine
   source stores never append (fire inserts into targets, and a key-egd
   substitution rebuilds sources into fresh tracked stores), so sharing
   is safe; the mutex covers concurrent executes from pool domains. *)
let arena_lock = Mutex.create ()

let arena_cache :
    (Value.t array list Weak.t * int * (int * int array)) list ref =
  ref []

let coded_arena ~arity tuples =
  match tuples with
  | [] -> Intern.code_rows ~arity []
  | _ -> (
      Mutex.lock arena_lock;
      let live =
        List.filter (fun (w, _, _) -> Weak.check w 0) !arena_cache
      in
      arena_cache := live;
      let hit =
        List.find_opt
          (fun (w, ar, _) ->
            ar = arity
            && match Weak.get w 0 with Some l -> l == tuples | None -> false)
          live
      in
      match hit with
      | Some (_, _, res) ->
          Mutex.unlock arena_lock;
          res
      | None ->
          Mutex.unlock arena_lock;
          let res = Intern.code_rows ~arity tuples in
          let w = Weak.create 1 in
          Weak.set w 0 (Some tuples);
          Mutex.lock arena_lock;
          arena_cache := (w, arity, res) :: !arena_cache;
          Mutex.unlock arena_lock;
          res)

let store_of_instance ~shards header tuples =
  let arity = max 1 (List.length header) in
  let n, data = coded_arena ~arity tuples in
  {
    s_header = header;
    s_cs = Colstore.of_flat ~shards ~arity ~rows:n data;
    s_delta = [];
  }

(* [only pred] gates eager store construction: tables outside the
   plans' scan set park their boxed tuples in [e_lazy] instead of
   paying the interning pass. *)
let create ~shards ~only ~source ~target inst =
  let src = Hashtbl.create 16
  and lzy = Hashtbl.create 16
  and tgt = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Schema.table) ->
      let header = header_of tbl in
      let r = Instance.relation_or_empty inst tbl.Schema.tbl_name ~header in
      if only tbl.Schema.tbl_name then
        Hashtbl.replace src tbl.Schema.tbl_name
          (store_of_instance ~shards header r.Instance.tuples)
      else Hashtbl.replace lzy tbl.Schema.tbl_name (header, r.Instance.tuples))
    source.Schema.tables;
  List.iter
    (fun (tbl : Schema.table) ->
      let header = header_of tbl in
      Hashtbl.replace tgt tbl.Schema.tbl_name
        {
          s_header = header;
          s_cs =
            Colstore.create ~shards ~arity:(max 1 (List.length header)) 16;
          s_delta = [];
        })
    target.Schema.tables;
  {
    e_src = src;
    e_lazy = lzy;
    e_tgt = tgt;
    e_target_schema = target;
    e_nshards = shards;
    e_skmemo = Hashtbl.create 256;
    e_next_null = 1;
    e_null_limit = 0;
  }

(* caller-domain only: the parallel phase touches scan predicates,
   which [execute] builds eagerly *)
let src_store e pred =
  match Hashtbl.find_opt e.e_src pred with
  | Some st -> st
  | None ->
      let header, tuples = Hashtbl.find e.e_lazy pred in
      Hashtbl.remove e.e_lazy pred;
      let st = store_of_instance ~shards:e.e_nshards header tuples in
      Hashtbl.replace e.e_src pred st;
      st

(* ---- interned plan views -------------------------------------------------

   A compiled {!Plan.t} is boxed immutable data; before executing, the
   engine lowers it once to a view whose constants are interned codes
   and whose lists are arrays, so the inner loops never touch a boxed
   value. Skolem arguments are lowered too: ground terms still intern
   through the chase's global term table (one labelled null per ground
   term) for cross-engine identity, but the engine reaches it through
   the per-engine [e_skmemo] code cache, so the common case never
   renders a term string. *)

type ibind = IbSlot of int | IbConst of int

(* a Skolem argument with constants pre-interned *)
type isk = SkSlot of int | SkConst of int | SkApp of string * isk list

type iscan = {
  is_pred : string;
  is_eqs : (int * ibind) array;
  is_cols : int array;  (* eq positions, in probe order *)
  is_selfeqs : (int * int) array;
  is_binds : (int * int) array;
}

type icell =
  | IcSlot of int
  | IcConst of int
  | IcNull of int
  | IcSkolem of string * isk list

type iemit = { ie_pred : string; ie_cells : icell array; ie_scratch : int array }

type ikcell =
  | IkSlot of int
  | IkConst of int
  | IkEx of int
  | IkSkolem of string * isk list

type icheck = {
  ic_pred : string;
  ic_cells : ikcell array;
  ic_probe : int array;
  ic_scratch : int array;  (* probe codes, refilled per satisfaction check *)
}

(* The scratch fields ([ic_scratch], [ip_exenv], [ip_trail],
   [ie_scratch]) are reused across triggers so the hot loops allocate
   nothing per row; they are touched only by [satisfied]/[fire], which
   run on the caller domain. *)
type iplan = {
  ip_name : string;
  ip_nslots : int;
  ip_scans : iscan array;
  ip_emits : iemit array;
  ip_checks : icheck array;
  ip_nnulls : int;
  ip_nex : int;
  ip_exenv : int array;  (* existential wildcard bindings *)
  ip_trail : int array;  (* wildcards bound by the current check row *)
}

let intern_plan (plan : Plan.t) =
  let ibind = function
    | Plan.Slot s -> IbSlot s
    | Plan.Const c -> IbConst (Intern.code c)
  in
  let rec isk = function
    | Plan.ASlot s -> SkSlot s
    | Plan.AConst c -> SkConst (Intern.code c)
    | Plan.AApp (g, nested) -> SkApp (g, List.map isk nested)
  in
  let iscan (sc : Plan.scan) =
    {
      is_pred = sc.Plan.sc_pred;
      is_eqs =
        Array.of_list (List.map (fun (p, b) -> (p, ibind b)) sc.Plan.sc_eqs);
      is_cols = Array.of_list (List.map fst sc.Plan.sc_eqs);
      is_selfeqs = Array.of_list sc.Plan.sc_selfeqs;
      is_binds = Array.of_list sc.Plan.sc_binds;
    }
  in
  let icell = function
    | Plan.CSlot s -> IcSlot s
    | Plan.CConst c -> IcConst (Intern.code c)
    | Plan.CNull k -> IcNull k
    | Plan.CSkolem (f, args) -> IcSkolem (f, List.map isk args)
  in
  let iemit (em : Plan.emit) =
    {
      ie_pred = em.Plan.em_pred;
      ie_cells = Array.map icell em.Plan.em_cells;
      ie_scratch = Array.make (Array.length em.Plan.em_cells) 0;
    }
  in
  let ikcell = function
    | Plan.KSlot s -> IkSlot s
    | Plan.KConst c -> IkConst (Intern.code c)
    | Plan.KEx x -> IkEx x
    | Plan.KSkolem (f, args) -> IkSkolem (f, List.map isk args)
  in
  let icheck (ck : Plan.check) =
    let probe = Array.of_list ck.Plan.ck_probe in
    {
      ic_pred = ck.Plan.ck_pred;
      ic_cells = Array.map ikcell ck.Plan.ck_cells;
      ic_probe = probe;
      ic_scratch = Array.make (Array.length probe) 0;
    }
  in
  {
    ip_name = plan.Plan.p_name;
    ip_nslots = plan.Plan.p_nslots;
    ip_scans = Array.of_list (List.map iscan plan.Plan.p_scans);
    ip_emits = Array.of_list (List.map iemit plan.Plan.p_emits);
    ip_checks = Array.of_list (List.map icheck plan.Plan.p_checks);
    ip_nnulls = plan.Plan.p_nnulls;
    ip_nex = plan.Plan.p_nex;
    ip_exenv = Array.make (max plan.Plan.p_nex 1) 0;
    ip_trail = Array.make (max plan.Plan.p_nex 1) 0;
  }

(* ---- probing ------------------------------------------------------------ *)

(* Candidate rows whose [cols] cells equal [codes], passed to [f] in
   bucket (or arena) order. Index buckets are hash buckets — they may
   contain rows with different cell values and rows tombstoned since
   the last rebuild — so every candidate is re-verified here by int
   compare before reaching [f]. [tick] runs per candidate considered
   (budget accounting, matching the boxed engine's per-bucket-tuple
   ticks). [cache = false] guarantees the probe never mutates the
   store: required by the parallel scan phase, where worker domains
   probe concurrently and only pre-built indexes may be used. *)
let probe_iter ?(cache = true) st (cols : int array) (codes : int array) ~tick
    ~f =
  let cs = st.s_cs in
  let data = Colstore.data cs in
  let ar = Colstore.arity cs in
  let check_dead = Colstore.dead cs > 0 in
  let ncols = Array.length cols in
  let hit = ref false in
  let consider row =
    tick ();
    if (not check_dead) || Colstore.is_live cs row then begin
      let base = row * ar in
      let ok = ref true in
      for i = 0 to ncols - 1 do
        if
          Array.unsafe_get data (base + Array.unsafe_get cols i)
          <> Array.unsafe_get codes i
        then ok := false
      done;
      if !ok then begin
        hit := true;
        f row
      end
    end
  in
  (match Colstore.find_index cs cols with
  | Some ix -> List.iter consider (Colstore.probe ix codes)
  | None ->
      if (not cache) || Colstore.count cs < index_threshold then
        for row = 0 to Colstore.rows cs - 1 do
          consider row
        done
      else
        List.iter consider (Colstore.probe (Colstore.ensure_index cs cols) codes));
  !hit

(* ---- satisfaction check ------------------------------------------------- *)

(* A ground Skolem term's interned code, through the per-engine memo.
   A miss falls back to [Chase.skolem_term] — the global table keeps
   one labelled null per ground term across engines and the verifier's
   chase — then caches its code keyed by the interned argument codes,
   so recurrences never render the term string again. Caller-domain
   only, like null minting. *)
let rec skolem_app e f codes =
  match Hashtbl.find_opt e.e_skmemo (f, codes) with
  | Some c -> c
  | None ->
      let c =
        Intern.code
          (Smg_cq.Chase.skolem_term ~f ~args:(List.map Intern.value codes))
      in
      Hashtbl.add e.e_skmemo (f, codes) c;
      c

and sk_code e env = function
  | SkSlot s -> env.(s)
  | SkConst c -> c
  | SkApp (g, nested) -> skolem_app e g (List.map (sk_code e env) nested)

let skolem_cell_code e env f args =
  skolem_app e f (List.map (sk_code e env) args)

(* no interned code is [min_int]: free sentinel for unbound wildcards *)
let unbound = min_int

(* Restricted-chase trigger test: does some assignment of the
   existential wildcards extend [env] so every rhs atom is present?
   Skolem cells are computed from [env], not wildcarded. Backtracking
   over the check templates; each template probes the target store on
   its statically-known positions. *)
let satisfied ?(cache = true) e (ip : iplan) (env : int array)
    (stats : Obs.tstats) =
  let exenv = ip.ip_exenv and trail = ip.ip_trail in
  Array.fill exenv 0 (Array.length exenv) unbound;
  let tn = ref 0 in
  let cell_code cell =
    match cell with
    | IkSlot s -> env.(s)
    | IkConst c -> c
    | IkSkolem (f, args) -> skolem_cell_code e env f args
    | IkEx x ->
        (* probe positions are statically known to be bound *)
        assert (exenv.(x) <> unbound);
        exenv.(x)
  in
  let nchecks = Array.length ip.ip_checks in
  let rec go ci =
    ci = nchecks
    ||
    let ck = ip.ip_checks.(ci) in
    let st = Hashtbl.find e.e_tgt ck.ic_pred in
    let cs = st.s_cs in
    let data = Colstore.data cs in
    let ar = Colstore.arity cs in
    let ncells = Array.length ck.ic_cells in
    let try_row row =
      let base = row * ar in
      let t0 = !tn in
      let rec cells pos =
        pos = ncells
        ||
        let v = Array.unsafe_get data (base + pos) in
        (match ck.ic_cells.(pos) with
        | IkSlot s -> v = env.(s)
        | IkConst c -> v = c
        | IkSkolem (f, args) -> v = skolem_cell_code e env f args
        | IkEx x ->
            if exenv.(x) <> unbound then v = exenv.(x)
            else begin
              exenv.(x) <- v;
              trail.(!tn) <- x;
              incr tn;
              true
            end)
        && cells (pos + 1)
      in
      if cells 0 && go (ci + 1) then true
      else begin
        (* unwind this row's wildcard bindings *)
        while !tn > t0 do
          decr tn;
          exenv.(trail.(!tn)) <- unbound
        done;
        false
      end
    in
    if Array.length ck.ic_probe = 0 then begin
      let check_dead = Colstore.dead cs > 0 in
      let found = ref false in
      let row = ref 0 in
      let n = Colstore.rows cs in
      while (not !found) && !row < n do
        if ((not check_dead) || Colstore.is_live cs !row) && try_row !row then
          found := true;
        incr row
      done;
      !found
    end
    else begin
      stats.Obs.st_probes <- stats.Obs.st_probes + 1;
      let codes = ck.ic_scratch in
      Array.iteri
        (fun j p -> codes.(j) <- cell_code ck.ic_cells.(p))
        ck.ic_probe;
      let found = ref false in
      let hit =
        probe_iter ~cache st ck.ic_probe codes
          ~tick:(fun () -> ())
          ~f:(fun row -> if (not !found) && try_row row then found := true)
      in
      if hit then stats.Obs.st_hits <- stats.Obs.st_hits + 1
      else stats.Obs.st_misses <- stats.Obs.st_misses + 1;
      !found
    end
  in
  go 0

(* ---- firing ------------------------------------------------------------- *)

let fire ?budget e (ip : iplan) env (stats : Obs.tstats) =
  stats.Obs.st_checks <- stats.Obs.st_checks + 1;
  if satisfied e ip env stats then
    stats.Obs.st_satisfied <- stats.Obs.st_satisfied + 1
  else begin
    (* each minted null costs a fuel unit: a blown null budget stops the
       run before the instance explodes *)
    (match budget with
    | Some b when ip.ip_nnulls > 0 -> Budget.burn_exn b ip.ip_nnulls
    | Some _ | None -> ());
    let nulls = Array.init ip.ip_nnulls (fun _ -> mint_null_code e) in
    stats.Obs.st_nulls <- stats.Obs.st_nulls + ip.ip_nnulls;
    Array.iter
      (fun em ->
        let tup = em.ie_scratch in
        Array.iteri
          (fun i cell ->
            tup.(i) <-
              (match cell with
              | IcSlot s -> env.(s)
              | IcConst c -> c
              | IcNull k -> nulls.(k)
              | IcSkolem (f, args) -> skolem_cell_code e env f args))
          em.ie_cells;
        let st = Hashtbl.find e.e_tgt em.ie_pred in
        match Colstore.insert st.s_cs tup with
        | Some row ->
            st.s_delta <- row :: st.s_delta;
            stats.Obs.st_emitted <- stats.Obs.st_emitted + 1
        | None -> ())
      ip.ip_emits
  end

(* ---- plan evaluation ---------------------------------------------------- *)

(* [delta]: when [Some (i, rows)], scan step [i] iterates only the given
   coded tuples — the semi-naive restriction (egd re-fires, lib/delta
   batches). [range]: restrict scan 0 to arena rows [lo, hi) — how the
   parallel pass hands each worker a contiguous driving chunk. [src]
   maps a predicate to its store. [sink] consumes each completed
   binding; the env array is reused across bindings. *)
let enumerate_int ~src ?budget ?(cache = true) (ip : iplan)
    ?(delta : (int * int array list) option) ?range (stats : Obs.tstats) ~sink
    =
  let env = Array.make (max ip.ip_nslots 1) 0 in
  let nscans = Array.length ip.ip_scans in
  (* per-call probe-code buffers, one per scan: a scan level is never
     re-entered while its own probe is being iterated, so each buffer
     is refilled at most once per partial binding *)
  let codes_scratch =
    Array.map
      (fun (sc : iscan) -> Array.make (Array.length sc.is_eqs) 0)
      ip.ip_scans
  in
  let tick () =
    match budget with Some b -> Budget.tick_exn b | None -> ()
  in
  let bval b = match b with IbSlot s -> env.(s) | IbConst c -> c in
  let rec step i =
    if i = nscans then sink env
    else begin
      let sc = ip.ip_scans.(i) in
      let use_delta = match delta with Some (j, _) -> j = i | None -> false in
      if use_delta then begin
        let rows = match delta with Some (_, ts) -> ts | None -> [] in
        let neqs = Array.length sc.is_eqs in
        let nself = Array.length sc.is_selfeqs in
        List.iter
          (fun (cells : int array) ->
            tick ();
            stats.Obs.st_scanned <- stats.Obs.st_scanned + 1;
            let ok = ref true in
            for j = 0 to neqs - 1 do
              let pos, b = sc.is_eqs.(j) in
              if cells.(pos) <> bval b then ok := false
            done;
            for j = 0 to nself - 1 do
              let pos, p0 = sc.is_selfeqs.(j) in
              if cells.(pos) <> cells.(p0) then ok := false
            done;
            if !ok then begin
              Array.iter (fun (pos, s) -> env.(s) <- cells.(pos)) sc.is_binds;
              step (i + 1)
            end)
          rows
      end
      else begin
        let st = src sc.is_pred in
        let cs = st.s_cs in
        let data = Colstore.data cs in
        let ar = Colstore.arity cs in
        let nself = Array.length sc.is_selfeqs in
        let selfeqs_ok base =
          let ok = ref true in
          for j = 0 to nself - 1 do
            let pos, p0 = sc.is_selfeqs.(j) in
            if
              Array.unsafe_get data (base + pos)
              <> Array.unsafe_get data (base + p0)
            then ok := false
          done;
          !ok
        in
        let bind base =
          Array.iter
            (fun (pos, s) -> env.(s) <- Array.unsafe_get data (base + pos))
            sc.is_binds
        in
        if i = 0 && range <> None then begin
          (* chunked driving scan: verify eq constraints inline (at scan
             0 they can only be constants) instead of probing, so the
             row range is respected *)
          let lo, hi = match range with Some r -> r | None -> (0, 0) in
          let check_dead = Colstore.dead cs > 0 in
          let neqs = Array.length sc.is_eqs in
          for row = lo to hi - 1 do
            tick ();
            stats.Obs.st_scanned <- stats.Obs.st_scanned + 1;
            if (not check_dead) || Colstore.is_live cs row then begin
              let base = row * ar in
              let ok = ref true in
              for j = 0 to neqs - 1 do
                let pos, b = sc.is_eqs.(j) in
                if Array.unsafe_get data (base + pos) <> bval b then
                  ok := false
              done;
              if !ok && selfeqs_ok base then begin
                bind base;
                step (i + 1)
              end
            end
          done
        end
        else if Array.length sc.is_eqs = 0 then begin
          let check_dead = Colstore.dead cs > 0 in
          for row = 0 to Colstore.rows cs - 1 do
            tick ();
            stats.Obs.st_scanned <- stats.Obs.st_scanned + 1;
            if (not check_dead) || Colstore.is_live cs row then begin
              let base = row * ar in
              if selfeqs_ok base then begin
                bind base;
                step (i + 1)
              end
            end
          done
        end
        else begin
          stats.Obs.st_probes <- stats.Obs.st_probes + 1;
          let codes = codes_scratch.(i) in
          Array.iteri (fun j (_, b) -> codes.(j) <- bval b) sc.is_eqs;
          let hit =
            probe_iter ~cache st sc.is_cols codes ~tick ~f:(fun row ->
                let base = row * ar in
                if selfeqs_ok base then begin
                  bind base;
                  step (i + 1)
                end)
          in
          if hit then stats.Obs.st_hits <- stats.Obs.st_hits + 1
          else stats.Obs.st_misses <- stats.Obs.st_misses + 1
        end
      end
    end
  in
  if nscans > 0 then step 0

let eval_plan ?budget ?(cache = true) ?sink e (ip : iplan) ?delta
    (stats : Obs.tstats) =
  let sink =
    match sink with
    | Some f -> f
    | None -> fun env -> fire ?budget e ip env stats
  in
  enumerate_int ~src:(src_store e) ?budget ~cache ip ?delta stats ~sink

(* ---- parallel initial pass ---------------------------------------------- *)

module Pool = Smg_parallel.Pool

(* The initial (non-delta) pass of one plan, fanned out over a pool.

   Phase 1 (parallel, read-only): the driving scan's arena is split into
   coarse contiguous row ranges — at least [min_chunk_rows] driving rows
   per task, so task overhead amortizes at generator scale, and at most
   [parallel_chunks] tasks, a fan-out independent of the domain count so
   budget accounting is too. Each worker enumerates its join bindings
   against pre-built indexes and collects env copies. Unlike the boxed
   predecessor, phase 1 runs no satisfaction checks: workers allocate
   nothing but the env copies and never touch the chase's global Skolem
   table, so there is no cross-domain contention to serialize on.

   Phase 2 (sequential): collected envs replay through {!fire} in chunk
   order — the same order the sequential scan visits them — so
   satisfaction checks, null minting, Skolem interning, and store
   mutation all happen on the caller's domain, and the output is
   identical to the sequential pass's.

   Budgets: each chunk gets an equal fuel share ([Budget.split] over the
   data-determined chunk count); a chunk that exhausts its share stops
   early but its collected prefix is still merged, and the exhaustion is
   re-raised after the merge — the target built so far is a sound
   prefix, exactly the [run_bounded] contract. *)
let parallel_chunks = 32
let min_chunk_rows = 2048

let eval_plan_parallel pool ?budget e (ip : iplan) (stats : Obs.tstats) =
  if Array.length ip.ip_scans = 0 then ()
  else begin
    let st0 = src_store e ip.ip_scans.(0).is_pred in
    let n = Colstore.rows st0.s_cs in
    let nchunks =
      min parallel_chunks ((n + min_chunk_rows - 1) / min_chunk_rows)
    in
    if nchunks <= 1 || Pool.size pool <= 1 then eval_plan ?budget e ip stats
    else begin
      (* pre-build every index the read-only phase will probe *)
      Array.iteri
        (fun i (sc : iscan) ->
          if i > 0 && Array.length sc.is_eqs > 0 then begin
            let st = src_store e sc.is_pred in
            if Colstore.count st.s_cs >= index_threshold then
              ignore (Colstore.ensure_index st.s_cs sc.is_cols)
          end)
        ip.ip_scans;
      let chunk = (n + nchunks - 1) / nchunks in
      let subs =
        match budget with
        | None -> Array.make nchunks None
        | Some b ->
            Array.of_list (List.map Option.some (Budget.split b ~parts:nchunks))
      in
      let results =
        Pool.map pool ~chunk:1
          (fun k ->
            let cstats = Obs.fresh_tstats () in
            let lo = k * chunk in
            let hi = min n (lo + chunk) in
            let acc = ref [] in
            let hit = ref None in
            (try
               enumerate_int
                 ~src:(fun pred -> Hashtbl.find e.e_src pred)
                 ?budget:subs.(k) ~cache:false ip ~range:(lo, hi) cstats
                 ~sink:(fun env -> acc := Array.copy env :: !acc)
             with Budget.Exhausted r -> hit := Some r);
            (List.rev !acc, cstats, !hit))
          (Array.init nchunks Fun.id)
      in
      let exhausted = ref None in
      Array.iteri
        (fun k (_, cstats, hit) ->
          (match (budget, subs.(k)) with
          | Some b, Some sub -> Budget.absorb b sub
          | _, _ -> ());
          (match hit with
          | Some r when !exhausted = None -> exhausted := Some r
          | _ -> ());
          stats.Obs.st_scanned <- stats.Obs.st_scanned + cstats.Obs.st_scanned;
          stats.Obs.st_probes <- stats.Obs.st_probes + cstats.Obs.st_probes;
          stats.Obs.st_hits <- stats.Obs.st_hits + cstats.Obs.st_hits;
          stats.Obs.st_misses <- stats.Obs.st_misses + cstats.Obs.st_misses)
        results;
      Array.iter
        (fun (envs, _, _) ->
          List.iter (fun env -> fire ?budget e ip env stats) envs)
        results;
      match !exhausted with
      | Some r -> raise (Budget.Exhausted r)
      | None -> ()
    end
  end

(* ---- key-egd pass ------------------------------------------------------- *)

type egd_result =
  | EgdConflict of string
  | EgdSubst of (int, int) Hashtbl.t * int  (* null code -> code, merges *)

(* Group every keyed target table by its (resolved) key cells and unify
   the non-key columns of each group — union-find over null codes with
   path compression; a constant/constant clash is a hard failure, as in
   the chase. Group keys are exact [int list]s (never raw hashes), so a
   hash collision can never conflate two groups. Cascades are caught by
   the next round's pass. *)
let egd_pass e =
  let subst : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve c =
    if c >= 0 then c
    else
      match Hashtbl.find_opt subst c with
      | Some c' ->
          let r = resolve c' in
          if r <> c' then Hashtbl.replace subst c r;
          r
      | None -> c
  in
  let merges = ref 0 in
  let conflict = ref None in
  let unify table col u v =
    let ru = resolve u and rv = resolve v in
    if ru <> rv then
      if Intern.is_null_code ru then begin
        Hashtbl.replace subst ru rv;
        incr merges
      end
      else if Intern.is_null_code rv then begin
        Hashtbl.replace subst rv ru;
        incr merges
      end
      else if !conflict = None then
        conflict :=
          Some
            (Printf.sprintf "key egd on %s.%s: %s vs %s" table col
               (Value.to_string (Intern.value ru))
               (Value.to_string (Intern.value rv)))
  in
  List.iter
    (fun (tbl : Schema.table) ->
      if tbl.Schema.key <> [] && !conflict = None then
        match Hashtbl.find_opt e.e_tgt tbl.Schema.tbl_name with
        | None -> ()
        | Some st ->
            let cs = st.s_cs in
            let data = Colstore.data cs in
            let ar = Colstore.arity cs in
            let header = Array.of_list st.s_header in
            let keypos =
              List.map
                (fun k ->
                  let rec find i = if header.(i) = k then i else find (i + 1) in
                  find 0)
                tbl.Schema.key
            in
            let is_key =
              Array.map (fun c -> List.mem c tbl.Schema.key) header
            in
            let reps : (int list, int array) Hashtbl.t =
              Hashtbl.create (Colstore.count cs + 1)
            in
            Colstore.iter_live cs (fun row ->
                if !conflict = None then begin
                  let base = row * ar in
                  let rtup =
                    Array.init ar (fun i -> resolve data.(base + i))
                  in
                  let k = List.map (fun p -> rtup.(p)) keypos in
                  match Hashtbl.find_opt reps k with
                  | None -> Hashtbl.replace reps k rtup
                  | Some rep ->
                      Array.iteri
                        (fun i v ->
                          if (not is_key.(i)) && !conflict = None then
                            unify tbl.Schema.tbl_name header.(i) rep.(i) v)
                        rtup
                end))
    e.e_target_schema.Schema.tables;
  match !conflict with
  | Some msg -> EgdConflict msg
  | None -> EgdSubst (subst, !merges)

(* Rewrite every store (source AND target) through the substitution by
   rebuilding its arena: resolved live rows re-insert in arena order
   (dedup through the fresh membership shards), changed rows become the
   store's delta for semi-naive re-firing, and cached indexes are
   dropped (rebuilt lazily). Rebuilt stores are always tracked — this
   is where source stores pay for membership, exactly like the boxed
   engine's s_seen rebuild. *)
let apply_subst e subst =
  let rec resolve c =
    if c >= 0 then c
    else
      match Hashtbl.find_opt subst c with Some c' -> resolve c' | None -> c
  in
  let rewrite _name st =
    let cs = st.s_cs in
    let ar = Colstore.arity cs in
    let data = Colstore.data cs in
    let ncs =
      Colstore.create ~shards:(Colstore.nshards cs) ~arity:ar
        (Colstore.count cs)
    in
    let scratch = Array.make ar 0 in
    let delta = ref [] in
    Colstore.iter_live cs (fun row ->
        let base = row * ar in
        let touched = ref false in
        for j = 0 to ar - 1 do
          let v = data.(base + j) in
          let r = resolve v in
          if r <> v then touched := true;
          scratch.(j) <- r
        done;
        match Colstore.insert ncs scratch with
        | Some nrow -> if !touched then delta := nrow :: !delta
        | None -> ());
    st.s_cs <- ncs;
    st.s_delta <- !delta
  in
  Hashtbl.iter rewrite e.e_src;
  Hashtbl.iter rewrite e.e_tgt

let clear_deltas e =
  Hashtbl.iter (fun _ st -> st.s_delta <- []) e.e_src;
  Hashtbl.iter (fun _ st -> st.s_delta <- []) e.e_tgt

(* ---- driver ------------------------------------------------------------- *)

type report = {
  r_target : Instance.t;
  r_complete : bool;
  r_rounds : int;
  r_stats : (string * Obs.stats) list;
  r_egd_merges : int;
  r_sweep_dropped : int;
  r_seconds : float;
  r_shards : Obs.shard_view;
}

let decode_row data ar base =
  Array.init ar (fun i -> Intern.value data.(base + i))

let target_instance e =
  Hashtbl.fold
    (fun name st acc ->
      let cs = st.s_cs in
      if Colstore.count cs = 0 then acc
      else begin
        let data = Colstore.data cs in
        let ar = Colstore.arity cs in
        let tuples =
          Colstore.fold_live cs
            (fun tl row -> decode_row data ar (row * ar) :: tl)
            []
        in
        Instance.set acc name
          { Instance.header = st.s_header; tuples = List.rev tuples }
      end)
    e.e_tgt Instance.empty

let shard_view e =
  let nsh = e.e_nshards in
  let tuples = Array.make nsh 0 and rot = Array.make nsh 0 in
  Hashtbl.iter
    (fun _ st ->
      Array.iteri
        (fun i v -> tuples.(i) <- tuples.(i) + v)
        (Colstore.shard_live st.s_cs);
      Array.iteri
        (fun i v -> rot.(i) <- rot.(i) + v)
        (Colstore.shard_rot st.s_cs))
    e.e_tgt;
  {
    Obs.sv_shards = nsh;
    sv_tuples = tuples;
    sv_rot = rot;
    sv_intern_pool = Intern.pool_size ();
  }

type outcome =
  | Complete of report
  | Budget_exhausted of Budget.reason * report
      (** the target built before the budget ran out — a sound but
          possibly incomplete prefix of the universal solution *)
  | Failed of string

(* ---- compile / execute split -------------------------------------------

   A [compiled] value is pure immutable data (schemas + plans): compile
   once, execute over any number of instances — including concurrently
   from several domains, since every execution allocates its own engine
   state, interned plan views, and counter accumulators. This is the
   artifact the lib/serve scenario registry caches. *)

type compiled = {
  c_source : Schema.t;
  c_target : Schema.t;
  c_plans : Plan.t list;
  c_delta : Plan.t list list;
  c_laconic : bool;
}

let compile ?card ?(laconic = false) ~source ~target ~mappings () =
  try
    let mappings = if laconic then Laconic.prepare mappings else mappings in
    let plans = List.map (Plan.compile ?card ~source ~target) mappings in
    (* one reordered variant per lhs atom: scan 0 is that atom, so a
       semi-naive re-evaluation can drive the join from the delta
       instead of re-running the full prefix of the bulk plan. Laconic
       plans are never maintained incrementally, so skip the work. *)
    let delta =
      if laconic then List.map (fun _ -> []) mappings
      else
        List.map
          (fun (tgd : Dependency.tgd) ->
            List.mapi
              (fun i _ -> Plan.compile ?card ~lead:i ~source ~target tgd)
              tgd.Dependency.lhs)
          mappings
    in
    Ok
      {
        c_source = source;
        c_target = target;
        c_plans = plans;
        c_delta = delta;
        c_laconic = laconic;
      }
  with Invalid_argument msg -> Error msg

(* shard-count resolution: explicit arg > SMG_SHARDS env > pool size > 1 *)
let resolve_shards ?shards ?pool () =
  match shards with
  | Some s -> max 1 s
  | None -> (
      match Sys.getenv_opt "SMG_SHARDS" with
      | Some s when (match int_of_string_opt (String.trim s) with
                    | Some v -> v > 0
                    | None -> false) ->
          int_of_string (String.trim s)
      | _ -> ( match pool with Some p -> Pool.size p | None -> 1))

let execute ?budget ?fault ?pool ?shards ?(max_rounds = 100) compiled inst =
  let {
    c_source = source;
    c_target = target;
    c_plans = plans;
    c_delta = _;
    c_laconic = laconic;
  } =
    compiled
  in
  (* the engine_step injection point fires once per plan evaluation
     (initial pass and every semi-naive re-fire): a Raise escapes to
     the caller's supervisor, a Delay burns wall clock against the
     budget — both failure modes the chaos harness classifies *)
  let step () =
    match fault with
    | Some f -> Smg_robust.Fault.fire f Smg_robust.Fault.Engine_step
    | None -> ()
  in
  try
    let nshards = resolve_shards ?shards ?pool () in
    (* only the plans' scan predicates need interned stores up front
       (delta variants scan the same relations) *)
    let needed = Hashtbl.create 16 in
    List.iter
      (fun (p : Plan.t) ->
        List.iter
          (fun (sc : Plan.scan) -> Hashtbl.replace needed sc.Plan.sc_pred ())
          p.Plan.p_scans)
      plans;
    let e = create ~shards:nshards ~only:(Hashtbl.mem needed) ~source ~target
        inst in
    let iplans = List.map intern_plan plans in
    let stats =
      List.map (fun (ip : iplan) -> (ip.ip_name, Obs.fresh_tstats ())) iplans
    in
    let t0 = Unix.gettimeofday () in
    let egd_merges = ref 0 in
    let rounds = ref 1 in
    let complete = ref true in
    let failed = ref None in
    let exhausted = ref None in
    (try
       List.iter2
         (fun ip (_, st) ->
           step ();
           let (), dt =
             Obs.time (fun () ->
                 match pool with
                 | Some pool -> eval_plan_parallel pool ?budget e ip st
                 | None -> eval_plan ?budget e ip st)
           in
           st.Obs.st_seconds <- st.Obs.st_seconds +. dt)
         iplans stats;
       clear_deltas e;
       let continue_ = ref true in
       while !continue_ && !failed = None do
         match egd_pass e with
         | EgdConflict msg -> failed := Some msg
         | EgdSubst (_, 0) -> continue_ := false
         | EgdSubst (subst, n) ->
             egd_merges := !egd_merges + n;
             apply_subst e subst;
             incr rounds;
             if !rounds > max_rounds then begin
               complete := false;
               continue_ := false
             end
             else begin
               (* semi-naive: re-fire each plan only through scan steps
                  whose relation has changed tuples *)
               let deltas = Hashtbl.create 8 in
               Hashtbl.iter
                 (fun name st ->
                   if st.s_delta <> [] then
                     Hashtbl.replace deltas name
                       (List.rev_map (Colstore.row_cells st.s_cs) st.s_delta))
                 e.e_src;
               clear_deltas e;
               List.iter2
                 (fun (ip : iplan) (_, st) ->
                   step ();
                   let (), dt =
                     Obs.time (fun () ->
                         Array.iteri
                           (fun i (sc : iscan) ->
                             match Hashtbl.find_opt deltas sc.is_pred with
                             | Some ts ->
                                 eval_plan ?budget e ip ~delta:(i, ts) st
                             | None -> ())
                           ip.ip_scans)
                   in
                   st.Obs.st_seconds <- st.Obs.st_seconds +. dt)
                 iplans stats;
               clear_deltas e
             end
       done
     with Budget.Exhausted reason ->
       exhausted := Some reason;
       complete := false);
    match !failed with
    | Some msg -> Failed msg
    | None ->
        let tgt = target_instance e in
        let tgt, dropped =
          (* sweeping a budget-truncated instance is still sound: it only
             folds redundant tuples within what was built *)
          if laconic then Laconic.sweep tgt else (tgt, 0)
        in
        let report =
          {
            r_target = tgt;
            r_complete = !complete;
            r_rounds = !rounds;
            r_stats =
              List.map (fun (name, st) -> (name, Obs.snapshot st)) stats;
            r_egd_merges = !egd_merges;
            r_sweep_dropped = dropped;
            r_seconds = Unix.gettimeofday () -. t0;
            r_shards = shard_view e;
          }
        in
        (match !exhausted with
        | Some reason -> Budget_exhausted (reason, report)
        | None -> Complete report)
  with Invalid_argument msg -> Failed msg

let run_core ?budget ?fault ?pool ?shards ?max_rounds ?laconic ~source ~target
    ~mappings inst =
  let card name = Instance.cardinality inst name in
  match compile ~card ?laconic ~source ~target ~mappings () with
  | Error msg -> Failed msg
  | Ok compiled -> execute ?budget ?fault ?pool ?shards ?max_rounds compiled inst

let run ?pool ?shards ?max_rounds ?laconic ~source ~target ~mappings inst =
  match
    run_core ?pool ?shards ?max_rounds ?laconic ~source ~target ~mappings inst
  with
  | Complete r -> Ok r
  | Budget_exhausted (_, r) -> Ok r (* unreachable without a budget *)
  | Failed msg -> Error msg

let run_bounded ?budget ?fault ?pool ?shards ?max_rounds ?laconic ~source
    ~target ~mappings inst =
  run_core ?budget ?fault ?pool ?shards ?max_rounds ?laconic ~source ~target
    ~mappings inst

(* ---- store + enumeration surface for incremental maintenance ----------- *)

module Stores = struct
  type nonrec t = store

  let of_tuples ?shards ~header tuples =
    let nshards = resolve_shards ?shards () in
    let arity = max 1 (List.length header) in
    let cs =
      Colstore.create ~shards:nshards ~arity (List.length tuples)
    in
    List.iter
      (fun tup -> ignore (Colstore.insert cs (Intern.code_tuple tup)))
      tuples;
    { s_header = header; s_cs = cs; s_delta = [] }

  let header st = st.s_header

  let tuples st =
    let cs = st.s_cs in
    let data = Colstore.data cs in
    let ar = Colstore.arity cs in
    List.rev
      (Colstore.fold_live cs
         (fun tl row -> decode_row data ar (row * ar) :: tl)
         [])

  let count st = Colstore.count st.s_cs

  let mem st tup =
    match Intern.find_tuple tup with
    | Some cells -> Colstore.mem st.s_cs cells
    | None -> false

  let insert st tup =
    match Colstore.insert st.s_cs (Intern.code_tuple tup) with
    | Some row ->
        st.s_delta <- row :: st.s_delta;
        true
    | None -> false

  let remove_many st tups =
    let removed = ref [] in
    let any = ref false in
    List.iter
      (fun tup ->
        match Intern.find_tuple tup with
        | None -> ()
        | Some cells -> (
            match Colstore.remove st.s_cs cells with
            | Some _row ->
                any := true;
                removed := tup :: !removed
            | None -> ()))
      tups;
    if !any then begin
      if st.s_delta <> [] then
        st.s_delta <- List.filter (Colstore.is_live st.s_cs) st.s_delta;
      Colstore.maybe_prune st.s_cs
    end;
    List.rev !removed

  let clear_delta st = st.s_delta <- []

  let shard_view ?(intern_pool = true) sts =
    match sts with
    | [] ->
        {
          Obs.sv_shards = 0;
          sv_tuples = [||];
          sv_rot = [||];
          sv_intern_pool = (if intern_pool then Intern.pool_size () else 0);
        }
    | st0 :: _ ->
        let nsh = Colstore.nshards st0.s_cs in
        let tuples = Array.make nsh 0 and rot = Array.make nsh 0 in
        List.iter
          (fun st ->
            Array.iteri
              (fun i v -> tuples.(i) <- tuples.(i) + v)
              (Colstore.shard_live st.s_cs);
            Array.iteri
              (fun i v -> rot.(i) <- rot.(i) + v)
              (Colstore.shard_rot st.s_cs))
          sts;
        {
          Obs.sv_shards = nsh;
          sv_tuples = tuples;
          sv_rot = rot;
          sv_intern_pool = (if intern_pool then Intern.pool_size () else 0);
        }
end

(* Build the hash indexes a plan's probing scans will want, so the
   first incremental evaluation after [init] doesn't pay an O(store)
   index build inside its timed path. *)
let prewarm ~src (plan : Plan.t) =
  List.iter
    (fun (sc : Plan.scan) ->
      match sc.Plan.sc_eqs with
      | [] -> ()
      | eqs ->
          let st = src sc.Plan.sc_pred in
          if Colstore.count st.s_cs >= index_threshold then
            ignore
              (Colstore.ensure_index st.s_cs
                 (Array.of_list (List.map fst eqs))))
    plan.Plan.p_scans

(* Value-facing enumeration over interned stores: the boxed plan is
   lowered to its interned view, delta tuples are coded on the way in,
   and each completed binding is decoded into a reused Value env for
   the sink — the surface lib/delta maintains against. *)
let enumerate ~src ?budget ?delta plan stats ~sink =
  let ip = intern_plan plan in
  let delta =
    Option.map (fun (i, ts) -> (i, List.map Intern.code_tuple ts)) delta
  in
  let venv = Array.make (max ip.ip_nslots 1) (Value.VNull 0) in
  enumerate_int ~src ?budget ip ?delta stats ~sink:(fun env ->
      for i = 0 to ip.ip_nslots - 1 do
        venv.(i) <- Intern.value env.(i)
      done;
      sink venv)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>rounds: %d%s  egd merges: %d  swept: %d  %.3f ms@,"
    r.r_rounds
    (if r.r_complete then "" else " (bounded)")
    r.r_egd_merges r.r_sweep_dropped (1000. *. r.r_seconds);
  List.iter
    (fun (name, st) -> Fmt.pf ppf "%-24s %a@," name Obs.pp_stats st)
    r.r_stats;
  Fmt.pf ppf "%a@," Obs.pp_shard_view r.r_shards;
  Fmt.pf ppf "target tuples: %d@]" (Instance.total_tuples r.r_target)
