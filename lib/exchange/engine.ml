module Value = Smg_relational.Value
module Schema = Smg_relational.Schema
module Instance = Smg_relational.Instance
module Index = Smg_relational.Index
module Dependency = Smg_cq.Dependency
module Budget = Smg_robust.Budget

(* ---- mutable per-relation stores --------------------------------------- *)

type store = {
  s_header : string list;
  mutable s_tuples : Value.t array list;
      (* reverse insertion order; holds [s_dead] tombstoned tuples
         until the next [compact] *)
  s_seen : (string, Value.t array) Hashtbl.t;
      (* set semantics: serialized key -> the live physical tuple *)
  mutable s_indexes : (int list * Index.t) list;
      (* lazily built, kept up to date by [insert] and [remove_many],
         invalidated by substitution *)
  mutable s_delta : Value.t array list;  (* tuples new/changed this round *)
  mutable s_count : int;  (* live tuples *)
  mutable s_dead : int;  (* tombstones still present in [s_tuples] *)
  mutable s_ix_dead : int;  (* tombstones still present in the indexes *)
}

(* [track = false] skips hashing the initial tuples into [s_seen]:
   right for stores that only receive [insert] after a substitution
   rebuilt [s_seen] (i.e. source stores — [fire] inserts into target
   stores only). Initial tuples are trusted to be duplicate-free, as
   [Instance] relations are. Hashing every source tuple up front was
   the single largest fixed cost on small exchanges. *)
let store_of_tuples ?(track = true) header tuples =
  let n = List.length tuples in
  let seen = Hashtbl.create (if track then (n * 2) + 1 else 16) in
  if track then
    List.iter (fun tup -> Hashtbl.replace seen (Index.tuple_key tup) tup) tuples;
  {
    s_header = header;
    s_tuples = List.rev tuples;
    s_seen = seen;
    s_indexes = [];
    s_delta = [];
    s_count = n;
    s_dead = 0;
    s_ix_dead = 0;
  }

(* Is this exact array the store's live copy of its tuple? Only
   meaningful on tracked stores; tombstoned tuples (and stale copies of
   a tuple that was removed and re-inserted) answer false. *)
let live st tup =
  match Hashtbl.find_opt st.s_seen (Index.tuple_key tup) with
  | Some t0 -> t0 == tup
  | None -> false

(* Sweep tombstones out of [s_tuples]. Insertion order is preserved, so
   materialization stays deterministic no matter how removal and
   compaction interleave. *)
let compact st =
  if st.s_dead > 0 then begin
    st.s_tuples <- List.filter (live st) st.s_tuples;
    st.s_dead <- 0
  end

let insert st tup =
  let k = Index.tuple_key tup in
  if Hashtbl.mem st.s_seen k then false
  else begin
    Hashtbl.replace st.s_seen k tup;
    st.s_tuples <- tup :: st.s_tuples;
    st.s_count <- st.s_count + 1;
    st.s_delta <- tup :: st.s_delta;
    List.iter (fun (_, ix) -> Index.add ix tup) st.s_indexes;
    true
  end

(* Rebuild the cached indexes from the live tuples. Paid only when the
   rot bound in [remove_many] trips, so the cost is amortized O(1) per
   removal. *)
let prune_indexes st =
  compact st;
  st.s_indexes <-
    List.map (fun (cols, _) -> (cols, Index.build ~key:cols st.s_tuples))
      st.s_indexes;
  st.s_ix_dead <- 0

(* Below this tuple count, a filtered scan beats paying for the hash
   index: building it costs a full pass plus hashing every tuple, which
   at dblp-size instances (hundreds of tuples) was measurably slower
   than the naive chase. Stores that already have the index keep using
   it (inserts maintain it either way). *)
let index_threshold = 64

(* Batch removal, O(|batch|) rather than O(|store|): each doomed tuple
   is unregistered from [s_seen] but stays in [s_tuples] — and in any
   cached index bucket — as a tombstone. Probes filter tombstones with
   the liveness check only while rot exists (the bulk path never
   removes, so it never pays), and rot past the live count triggers an
   amortized rebuild. Returns the tuples actually removed (the store's
   own arrays), in batch order. *)
let remove_many st tups =
  let removed = ref [] in
  List.iter
    (fun tup ->
      let k = Index.tuple_key tup in
      match Hashtbl.find_opt st.s_seen k with
      | None -> ()
      | Some t0 ->
          Hashtbl.remove st.s_seen k;
          removed := t0 :: !removed;
          st.s_count <- st.s_count - 1;
          st.s_dead <- st.s_dead + 1;
          if st.s_indexes <> [] then st.s_ix_dead <- st.s_ix_dead + 1)
    tups;
  if !removed <> [] && st.s_delta <> [] then
    st.s_delta <- List.filter (live st) st.s_delta;
  if st.s_ix_dead > index_threshold && st.s_ix_dead > st.s_count then
    prune_indexes st;
  List.rev !removed

let get_index st cols =
  match List.assoc_opt cols st.s_indexes with
  | Some ix -> ix
  | None ->
      compact st;
      let ix = Index.build ~key:cols st.s_tuples in
      st.s_indexes <- (cols, ix) :: st.s_indexes;
      ix

let probe_linear st cols vals =
  List.filter
    (fun tup ->
      (st.s_dead = 0 || live st tup)
      && List.for_all2 (fun c v -> Value.equal tup.(c) v) cols vals)
    st.s_tuples

(* [cache = false] additionally guarantees the probe never mutates the
   store — required by the parallel scan phase, where worker domains
   probe stores concurrently and only pre-built indexes may be used. *)
let probe_store ?(cache = true) st cols vals =
  let indexed ix =
    let bucket = Index.probe ix vals in
    if st.s_ix_dead = 0 then bucket else List.filter (live st) bucket
  in
  match List.assoc_opt cols st.s_indexes with
  | Some ix -> indexed ix
  | None ->
      if (not cache) || st.s_count < index_threshold then
        probe_linear st cols vals
      else indexed (get_index st cols)

(* ---- engine state ------------------------------------------------------- *)

(* Source and target tables live in separate stores, so mappings between
   schemas that share table names (e.g. Mondial's country/city on both
   sides) execute without renaming — something [Chase.exchange] cannot
   do, since it merges both schemas into one namespace. *)
type t = {
  e_src : (string, store) Hashtbl.t;
  e_tgt : (string, store) Hashtbl.t;
  e_target_schema : Schema.t;
  mutable e_next_null : int;  (* next label in the reserved block *)
  mutable e_null_limit : int;  (* last label of the reserved block *)
}

let null_block = 256

let mint_null e =
  if e.e_next_null > e.e_null_limit then begin
    let first = Value.alloc_nulls null_block in
    e.e_next_null <- first;
    e.e_null_limit <- first + null_block - 1
  end;
  let k = e.e_next_null in
  e.e_next_null <- e.e_next_null + 1;
  Value.VNull k

let header_of (tbl : Schema.table) =
  List.map (fun c -> c.Schema.col_name) tbl.Schema.columns

let create ~source ~target inst =
  let src = Hashtbl.create 16 and tgt = Hashtbl.create 16 in
  List.iter
    (fun (tbl : Schema.table) ->
      let header = header_of tbl in
      let r = Instance.relation_or_empty inst tbl.Schema.tbl_name ~header in
      Hashtbl.replace src tbl.Schema.tbl_name
        (store_of_tuples ~track:false header r.Instance.tuples))
    source.Schema.tables;
  List.iter
    (fun (tbl : Schema.table) ->
      Hashtbl.replace tgt tbl.Schema.tbl_name
        (store_of_tuples (header_of tbl) []))
    target.Schema.tables;
  {
    e_src = src;
    e_tgt = tgt;
    e_target_schema = target;
    e_next_null = 1;
    e_null_limit = 0;
  }

(* ---- satisfaction check ------------------------------------------------- *)

(* The value of a compiled Skolem argument under the trigger's
   bindings; nested applications (composition output) recurse. *)
let rec sk_arg_value env = function
  | Plan.ASlot s -> env.(s)
  | Plan.AConst c -> c
  | Plan.AApp (g, nested) ->
      Smg_cq.Chase.skolem_term ~f:g ~args:(List.map (sk_arg_value env) nested)

let skolem_cell_value env f args =
  Smg_cq.Chase.skolem_term ~f ~args:(List.map (sk_arg_value env) args)

(* Restricted-chase trigger test: does some assignment of the
   existential wildcards extend [env] so every rhs atom is present?
   Skolem cells are computed from [env], not wildcarded. Backtracking
   over the check templates; each template probes the target index on
   its statically-known positions. *)
let satisfied ?(cache = true) e (plan : Plan.t) env (stats : Obs.tstats) =
  let exenv = Array.make (max plan.Plan.p_nex 1) None in
  let cell_value cell =
    match cell with
    | Plan.KSlot s -> env.(s)
    | Plan.KConst c -> c
    | Plan.KSkolem (f, args) -> skolem_cell_value env f args
    | Plan.KEx x -> (
        match exenv.(x) with
        | Some v -> v
        | None -> assert false (* probe positions are statically known *))
  in
  let rec go checks =
    match checks with
    | [] -> true
    | (ck : Plan.check) :: rest ->
        let st = Hashtbl.find e.e_tgt ck.Plan.ck_pred in
        let candidates =
          match ck.Plan.ck_probe with
          | [] -> st.s_tuples
          | probe ->
              stats.Obs.st_probes <- stats.Obs.st_probes + 1;
              let tuples =
                probe_store ~cache st probe
                  (List.map (fun p -> cell_value ck.Plan.ck_cells.(p)) probe)
              in
              if tuples = [] then
                stats.Obs.st_misses <- stats.Obs.st_misses + 1
              else stats.Obs.st_hits <- stats.Obs.st_hits + 1;
              tuples
        in
        List.exists
          (fun tup ->
            let trail = ref [] in
            let undo () = List.iter (fun x -> exenv.(x) <- None) !trail in
            let n = Array.length ck.Plan.ck_cells in
            let rec cells pos =
              pos = n
              ||
              (match ck.Plan.ck_cells.(pos) with
                | Plan.KSlot s -> Value.equal tup.(pos) env.(s)
                | Plan.KConst c -> Value.equal tup.(pos) c
                | Plan.KSkolem (f, args) ->
                    Value.equal tup.(pos) (skolem_cell_value env f args)
                | Plan.KEx x -> (
                    match exenv.(x) with
                    | Some v -> Value.equal tup.(pos) v
                    | None ->
                        exenv.(x) <- Some tup.(pos);
                        trail := x :: !trail;
                        true))
              && cells (pos + 1)
            in
            if cells 0 && go rest then true
            else begin
              undo ();
              false
            end)
          candidates
  in
  go plan.Plan.p_checks

(* ---- plan evaluation ---------------------------------------------------- *)

let fire ?budget e (plan : Plan.t) env (stats : Obs.tstats) =
  stats.Obs.st_checks <- stats.Obs.st_checks + 1;
  if satisfied e plan env stats then
    stats.Obs.st_satisfied <- stats.Obs.st_satisfied + 1
  else begin
    (* each minted null costs a fuel unit: a blown null budget stops the
       run before the instance explodes *)
    (match budget with
    | Some b when plan.Plan.p_nnulls > 0 -> Budget.burn_exn b plan.Plan.p_nnulls
    | Some _ | None -> ());
    let nulls = Array.init plan.Plan.p_nnulls (fun _ -> mint_null e) in
    stats.Obs.st_nulls <- stats.Obs.st_nulls + plan.Plan.p_nnulls;
    List.iter
      (fun (em : Plan.emit) ->
        let tup =
          Array.map
            (fun cell ->
              match cell with
              | Plan.CSlot s -> env.(s)
              | Plan.CConst c -> c
              | Plan.CNull k -> nulls.(k)
              | Plan.CSkolem (f, args) -> skolem_cell_value env f args)
            em.Plan.em_cells
        in
        let st = Hashtbl.find e.e_tgt em.Plan.em_pred in
        if insert st tup then stats.Obs.st_emitted <- stats.Obs.st_emitted + 1)
      plan.Plan.p_emits
  end

(* [delta]: when [Some (i, tuples)], scan step [i] iterates only the
   given delta tuples — the semi-naive re-evaluation after an egd
   substitution changed some source tuples (the parallel scan phase
   reuses the same restriction to hand each worker its driving chunk;
   lib/delta seeds it with a batch's inserted tuples). [src] maps a
   predicate to its store — the engine passes its own source table, an
   incremental maintainer passes the stores it owns. [sink] consumes
   each completed binding (the env array is reused across bindings:
   copy it if it must outlive the callback). [cache = false] keeps the
   evaluation read-only (see {!probe_store}). *)
let enumerate ~src ?budget ?(cache = true) (plan : Plan.t) ?delta
    (stats : Obs.tstats) ~sink =
  let env = Array.make (max plan.Plan.p_nslots 1) (Value.VNull 0) in
  let scans = Array.of_list plan.Plan.p_scans in
  let nscans = Array.length scans in
  let tick () =
    match budget with Some b -> Budget.tick_exn b | None -> ()
  in
  let binding_value b =
    match b with Plan.Slot s -> env.(s) | Plan.Const c -> c
  in
  let matches (sc : Plan.scan) tup =
    List.for_all
      (fun (pos, b) -> Value.equal tup.(pos) (binding_value b))
      sc.Plan.sc_eqs
    && List.for_all
         (fun (pos, p0) -> Value.equal tup.(pos) tup.(p0))
         sc.Plan.sc_selfeqs
  in
  let bind (sc : Plan.scan) tup =
    List.iter (fun (pos, s) -> env.(s) <- tup.(pos)) sc.Plan.sc_binds
  in
  let emit = sink in
  let rec step i =
    if i = nscans then emit env
    else begin
      let sc = scans.(i) in
      let use_delta = match delta with Some (j, _) -> j = i | None -> false in
      if use_delta then begin
        let tuples = match delta with Some (_, ts) -> ts | None -> [] in
        List.iter
          (fun tup ->
            tick ();
            stats.Obs.st_scanned <- stats.Obs.st_scanned + 1;
            if matches sc tup then begin
              bind sc tup;
              step (i + 1)
            end)
          tuples
      end
      else begin
        let st = src sc.Plan.sc_pred in
        match sc.Plan.sc_eqs with
        | [] ->
            List.iter
              (fun tup ->
                tick ();
                stats.Obs.st_scanned <- stats.Obs.st_scanned + 1;
                if
                  (st.s_dead = 0 || live st tup)
                  && List.for_all
                       (fun (pos, p0) -> Value.equal tup.(pos) tup.(p0))
                       sc.Plan.sc_selfeqs
                then begin
                  bind sc tup;
                  step (i + 1)
                end)
              st.s_tuples
        | eqs ->
            let cols = List.map fst eqs in
            stats.Obs.st_probes <- stats.Obs.st_probes + 1;
            let bucket =
              probe_store ~cache st cols
                (List.map (fun (_, b) -> binding_value b) eqs)
            in
            if bucket = [] then stats.Obs.st_misses <- stats.Obs.st_misses + 1
            else stats.Obs.st_hits <- stats.Obs.st_hits + 1;
            List.iter
              (fun tup ->
                tick ();
                if
                  List.for_all
                    (fun (pos, p0) -> Value.equal tup.(pos) tup.(p0))
                    sc.Plan.sc_selfeqs
                then begin
                  bind sc tup;
                  step (i + 1)
                end)
              bucket
      end
    end
  in
  if nscans > 0 then step 0

let eval_plan ?budget ?(cache = true) ?sink e (plan : Plan.t) ?delta
    (stats : Obs.tstats) =
  let sink =
    match sink with
    | Some f -> f
    | None -> fun env -> fire ?budget e plan env stats
  in
  enumerate
    ~src:(fun pred -> Hashtbl.find e.e_src pred)
    ?budget ~cache plan ?delta stats ~sink

(* ---- parallel initial pass ---------------------------------------------- *)

module Pool = Smg_parallel.Pool

(* The initial (non-delta) pass of one plan, fanned out over a pool.

   Phase 1 (parallel, read-only): the driving scan's tuples are split
   into chunks — a fixed fan-out independent of the domain count — and
   each chunk worker enumerates its join bindings against pre-built
   indexes. Bindings already satisfied in the current target snapshot
   are dropped (satisfaction is monotone: inserting tuples can only
   satisfy more triggers, so a snapshot-satisfied trigger stays
   satisfied); surviving bindings are collected as env copies.

   Phase 2 (sequential): the collected envs are re-played through
   {!fire} in chunk order. [fire] re-checks satisfaction against the
   live target — a binding satisfied by an earlier binding's inserts is
   skipped exactly as in a sequential run — and does all null minting
   and inserting on the caller's domain, so the one-null-per-ground-
   Skolem-term interning and the store mutations stay single-threaded.
   The result is the same restricted-chase output as the sequential
   pass (null labels may differ: a homomorphic isomorphism).

   Budgets: each chunk gets an equal fuel share ([Budget.split] over
   the fixed chunk count, so fuel accounting does not depend on the
   domain count); a chunk that exhausts its share stops early but its
   collected prefix is still merged, and the exhaustion is re-raised
   after the merge — the target built so far is a sound prefix, exactly
   the [run_bounded] contract. *)
let parallel_chunks = 32

let eval_plan_parallel pool ?budget e (plan : Plan.t) (stats : Obs.tstats) =
  match plan.Plan.p_scans with
  | [] -> ()
  | sc0 :: rest ->
      (* pre-build every index the read-only phase will probe *)
      List.iter
        (fun (sc : Plan.scan) ->
          if sc.Plan.sc_eqs <> [] then begin
            let st = Hashtbl.find e.e_src sc.Plan.sc_pred in
            if st.s_count >= index_threshold then
              ignore (get_index st (List.map fst sc.Plan.sc_eqs))
          end)
        rest;
      List.iter
        (fun (ck : Plan.check) ->
          if ck.Plan.ck_probe <> [] then begin
            let st = Hashtbl.find e.e_tgt ck.Plan.ck_pred in
            if st.s_count >= index_threshold then
              ignore (get_index st ck.Plan.ck_probe)
          end)
        plan.Plan.p_checks;
      let driving =
        Array.of_list (Hashtbl.find e.e_src sc0.Plan.sc_pred).s_tuples
      in
      let n = Array.length driving in
      if n > 0 then begin
        let chunk = max 1 ((n + parallel_chunks - 1) / parallel_chunks) in
        let nchunks = (n + chunk - 1) / chunk in
        let subs =
          match budget with
          | None -> Array.make nchunks None
          | Some b ->
              Array.of_list
                (List.map Option.some (Budget.split b ~parts:nchunks))
        in
        let results =
          Pool.map pool ~chunk:1
            (fun k ->
              let cstats = Obs.fresh_tstats () in
              let lo = k * chunk in
              let tuples =
                Array.to_list (Array.sub driving lo (min chunk (n - lo)))
              in
              let acc = ref [] in
              let hit = ref None in
              (try
                 eval_plan ?budget:subs.(k) ~cache:false e plan
                   ~delta:(0, tuples) cstats
                   ~sink:(fun env ->
                     (* count a check only for bindings settled here: the
                        survivors are re-checked (and counted) by [fire]
                        at merge, keeping the totals equal to a
                        sequential run's *)
                     if satisfied ~cache:false e plan env cstats then begin
                       cstats.Obs.st_checks <- cstats.Obs.st_checks + 1;
                       cstats.Obs.st_satisfied <-
                         cstats.Obs.st_satisfied + 1
                     end
                     else acc := Array.copy env :: !acc)
               with Budget.Exhausted r -> hit := Some r);
              (List.rev !acc, cstats, !hit))
            (Array.init nchunks Fun.id)
        in
        let exhausted = ref None in
        Array.iteri
          (fun k (_, cstats, hit) ->
            (match (budget, subs.(k)) with
            | Some b, Some sub -> Budget.absorb b sub
            | _, _ -> ());
            (match hit with
            | Some r when !exhausted = None -> exhausted := Some r
            | _ -> ());
            stats.Obs.st_scanned <- stats.Obs.st_scanned + cstats.Obs.st_scanned;
            stats.Obs.st_probes <- stats.Obs.st_probes + cstats.Obs.st_probes;
            stats.Obs.st_hits <- stats.Obs.st_hits + cstats.Obs.st_hits;
            stats.Obs.st_misses <- stats.Obs.st_misses + cstats.Obs.st_misses;
            stats.Obs.st_checks <- stats.Obs.st_checks + cstats.Obs.st_checks;
            stats.Obs.st_satisfied <-
              stats.Obs.st_satisfied + cstats.Obs.st_satisfied)
          results;
        Array.iter
          (fun (envs, _, _) ->
            List.iter (fun env -> fire ?budget e plan env stats) envs)
          results;
        match !exhausted with
        | Some r -> raise (Budget.Exhausted r)
        | None -> ()
      end

(* ---- key-egd pass ------------------------------------------------------- *)

type egd_result =
  | EgdConflict of string
  | EgdSubst of (int, Value.t) Hashtbl.t * int  (* bindings, merge count *)

(* Group every keyed target table by its (resolved) key cells and unify
   the non-key columns of each group — union-find over null labels with
   path compression; a constant/constant clash is a hard failure, as in
   the chase. Cascades (key cells that only become equal after a
   substitution) are caught by the next round's pass. *)
let egd_pass e =
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve v =
    match v with
    | Value.VNull k -> (
        match Hashtbl.find_opt subst k with
        | Some v' ->
            let r = resolve v' in
            if r != v' then Hashtbl.replace subst k r;
            r
        | None -> v)
    | _ -> v
  in
  let merges = ref 0 in
  let conflict = ref None in
  let unify table col u v =
    let ru = resolve u and rv = resolve v in
    if not (Value.equal ru rv) then
      match (ru, rv) with
      | Value.VNull k, _ ->
          Hashtbl.replace subst k rv;
          incr merges
      | _, Value.VNull k ->
          Hashtbl.replace subst k ru;
          incr merges
      | _ ->
          if !conflict = None then
            conflict :=
              Some
                (Printf.sprintf "key egd on %s.%s: %s vs %s" table col
                   (Value.to_string ru) (Value.to_string rv))
  in
  List.iter
    (fun (tbl : Schema.table) ->
      if tbl.Schema.key <> [] && !conflict = None then
        match Hashtbl.find_opt e.e_tgt tbl.Schema.tbl_name with
        | None -> ()
        | Some st ->
            let header = Array.of_list st.s_header in
            let keypos =
              List.map
                (fun k ->
                  let rec find i =
                    if header.(i) = k then i else find (i + 1)
                  in
                  find 0)
                tbl.Schema.key
            in
            let is_key = Array.map (fun c -> List.mem c tbl.Schema.key) header in
            let reps = Hashtbl.create (st.s_count + 1) in
            List.iter
              (fun tup ->
                if !conflict = None then begin
                  let rtup = Array.map resolve tup in
                  let k =
                    Index.key_of_values (List.map (fun p -> rtup.(p)) keypos)
                  in
                  match Hashtbl.find_opt reps k with
                  | None -> Hashtbl.replace reps k rtup
                  | Some rep ->
                      Array.iteri
                        (fun i v ->
                          if (not is_key.(i)) && !conflict = None then
                            unify tbl.Schema.tbl_name header.(i) rep.(i) v)
                        rtup
                end)
              st.s_tuples)
    e.e_target_schema.Schema.tables;
  match !conflict with
  | Some msg -> EgdConflict msg
  | None -> EgdSubst (subst, !merges)

(* Rewrite every store (source AND target) through the substitution;
   changed tuples become the store's delta for semi-naive re-firing, and
   cached indexes are dropped (rebuilt lazily). *)
let apply_subst e subst =
  let rec resolve v =
    match v with
    | Value.VNull k -> (
        match Hashtbl.find_opt subst k with Some v' -> resolve v' | None -> v)
    | _ -> v
  in
  let rewrite _name st =
    compact st;
    let changed = ref [] in
    let seen = Hashtbl.create (st.s_count * 2 + 1) in
    let tuples =
      List.fold_left
        (fun acc tup ->
          let touched = ref false in
          let tup' =
            Array.map
              (fun v ->
                let r = resolve v in
                if not (Value.equal r v) then touched := true;
                r)
              tup
          in
          let k = Index.tuple_key tup' in
          if Hashtbl.mem seen k then acc
          else begin
            Hashtbl.replace seen k tup';
            if !touched then changed := tup' :: !changed;
            tup' :: acc
          end)
        [] st.s_tuples
    in
    st.s_tuples <- tuples;
    st.s_count <- Hashtbl.length seen;
    st.s_dead <- 0;
    st.s_ix_dead <- 0;
    Hashtbl.reset st.s_seen;
    Hashtbl.iter (fun k tup -> Hashtbl.replace st.s_seen k tup) seen;
    st.s_indexes <- [];
    st.s_delta <- !changed
  in
  Hashtbl.iter rewrite e.e_src;
  Hashtbl.iter rewrite e.e_tgt

let clear_deltas e =
  Hashtbl.iter (fun _ st -> st.s_delta <- []) e.e_src;
  Hashtbl.iter (fun _ st -> st.s_delta <- []) e.e_tgt

(* ---- driver ------------------------------------------------------------- *)

type report = {
  r_target : Instance.t;
  r_complete : bool;
  r_rounds : int;
  r_stats : (string * Obs.stats) list;
  r_egd_merges : int;
  r_sweep_dropped : int;
  r_seconds : float;
}

let target_instance e =
  Hashtbl.fold
    (fun name st acc ->
      if st.s_count = 0 then acc
      else
        Instance.set acc name
          { Instance.header = st.s_header; tuples = List.rev st.s_tuples })
    e.e_tgt Instance.empty

type outcome =
  | Complete of report
  | Budget_exhausted of Budget.reason * report
      (** the target built before the budget ran out — a sound but
          possibly incomplete prefix of the universal solution *)
  | Failed of string

(* ---- compile / execute split -------------------------------------------

   A [compiled] value is pure immutable data (schemas + plans): compile
   once, execute over any number of instances — including concurrently
   from several domains, since every execution allocates its own engine
   state and counter accumulators. This is the artifact the lib/serve
   scenario registry caches. *)

type compiled = {
  c_source : Schema.t;
  c_target : Schema.t;
  c_plans : Plan.t list;
  c_delta : Plan.t list list;
  c_laconic : bool;
}

let compile ?card ?(laconic = false) ~source ~target ~mappings () =
  try
    let mappings = if laconic then Laconic.prepare mappings else mappings in
    let plans = List.map (Plan.compile ?card ~source ~target) mappings in
    (* one reordered variant per lhs atom: scan 0 is that atom, so a
       semi-naive re-evaluation can drive the join from the delta
       instead of re-running the full prefix of the bulk plan. Laconic
       plans are never maintained incrementally, so skip the work. *)
    let delta =
      if laconic then List.map (fun _ -> []) mappings
      else
        List.map
          (fun (tgd : Dependency.tgd) ->
            List.mapi
              (fun i _ -> Plan.compile ?card ~lead:i ~source ~target tgd)
              tgd.Dependency.lhs)
          mappings
    in
    Ok
      {
        c_source = source;
        c_target = target;
        c_plans = plans;
        c_delta = delta;
        c_laconic = laconic;
      }
  with Invalid_argument msg -> Error msg

let execute ?budget ?fault ?pool ?(max_rounds = 100) compiled inst =
  let {
    c_source = source;
    c_target = target;
    c_plans = plans;
    c_delta = _;
    c_laconic = laconic;
  } =
    compiled
  in
  (* the engine_step injection point fires once per plan evaluation
     (initial pass and every semi-naive re-fire): a Raise escapes to
     the caller's supervisor, a Delay burns wall clock against the
     budget — both failure modes the chaos harness classifies *)
  let step () =
    match fault with
    | Some f -> Smg_robust.Fault.fire f Smg_robust.Fault.Engine_step
    | None -> ()
  in
  try
    let e = create ~source ~target inst in
    let stats = List.map (fun (p : Plan.t) -> (p.Plan.p_name, Obs.fresh_tstats ())) plans in
    let t0 = Unix.gettimeofday () in
    let egd_merges = ref 0 in
    let rounds = ref 1 in
    let complete = ref true in
    let failed = ref None in
    let exhausted = ref None in
    (try
       List.iter2
         (fun plan (_, st) ->
           step ();
           let (), dt =
             Obs.time (fun () ->
                 match pool with
                 | Some pool -> eval_plan_parallel pool ?budget e plan st
                 | None -> eval_plan ?budget e plan st)
           in
           st.Obs.st_seconds <- st.Obs.st_seconds +. dt)
         plans stats;
       clear_deltas e;
       let continue_ = ref true in
       while !continue_ && !failed = None do
         match egd_pass e with
         | EgdConflict msg -> failed := Some msg
         | EgdSubst (_, 0) -> continue_ := false
         | EgdSubst (subst, n) ->
             egd_merges := !egd_merges + n;
             apply_subst e subst;
             incr rounds;
             if !rounds > max_rounds then begin
               complete := false;
               continue_ := false
             end
             else begin
               (* semi-naive: re-fire each plan only through scan steps
                  whose relation has changed tuples *)
               let deltas = Hashtbl.create 8 in
               Hashtbl.iter
                 (fun name st ->
                   if st.s_delta <> [] then
                     Hashtbl.replace deltas name st.s_delta)
                 e.e_src;
               clear_deltas e;
               List.iter2
                 (fun (plan : Plan.t) (_, st) ->
                   step ();
                   let (), dt =
                     Obs.time (fun () ->
                         List.iteri
                           (fun i (sc : Plan.scan) ->
                             match Hashtbl.find_opt deltas sc.Plan.sc_pred with
                             | Some ts -> eval_plan ?budget e plan ~delta:(i, ts) st
                             | None -> ())
                           plan.Plan.p_scans)
                   in
                   st.Obs.st_seconds <- st.Obs.st_seconds +. dt)
                 plans stats;
               clear_deltas e
             end
       done
     with Budget.Exhausted reason ->
       exhausted := Some reason;
       complete := false);
    match !failed with
    | Some msg -> Failed msg
    | None ->
        let tgt = target_instance e in
        let tgt, dropped =
          (* sweeping a budget-truncated instance is still sound: it only
             folds redundant tuples within what was built *)
          if laconic then Laconic.sweep tgt else (tgt, 0)
        in
        let report =
          {
            r_target = tgt;
            r_complete = !complete;
            r_rounds = !rounds;
            r_stats =
              List.map (fun (name, st) -> (name, Obs.snapshot st)) stats;
            r_egd_merges = !egd_merges;
            r_sweep_dropped = dropped;
            r_seconds = Unix.gettimeofday () -. t0;
          }
        in
        (match !exhausted with
        | Some reason -> Budget_exhausted (reason, report)
        | None -> Complete report)
  with Invalid_argument msg -> Failed msg

let run_core ?budget ?fault ?pool ?max_rounds ?laconic ~source ~target
    ~mappings inst =
  let card name = Instance.cardinality inst name in
  match compile ~card ?laconic ~source ~target ~mappings () with
  | Error msg -> Failed msg
  | Ok compiled -> execute ?budget ?fault ?pool ?max_rounds compiled inst

let run ?pool ?max_rounds ?laconic ~source ~target ~mappings inst =
  match run_core ?pool ?max_rounds ?laconic ~source ~target ~mappings inst with
  | Complete r -> Ok r
  | Budget_exhausted (_, r) -> Ok r (* unreachable without a budget *)
  | Failed msg -> Error msg

let run_bounded ?budget ?fault ?pool ?max_rounds ?laconic ~source ~target
    ~mappings inst =
  run_core ?budget ?fault ?pool ?max_rounds ?laconic ~source ~target ~mappings
    inst

(* ---- store + enumeration surface for incremental maintenance ----------- *)

module Stores = struct
  type nonrec t = store

  let of_tuples ~header tuples = store_of_tuples header tuples
  let header st = st.s_header

  let tuples st =
    compact st;
    List.rev st.s_tuples

  let count st = st.s_count
  let mem st tup = Hashtbl.mem st.s_seen (Index.tuple_key tup)
  let insert = insert
  let remove_many = remove_many
  let clear_delta st = st.s_delta <- []
end

(* Build the hash indexes a plan's probing scans will want, so the
   first incremental evaluation after [init] doesn't pay an O(store)
   index build inside its timed path. *)
let prewarm ~src (plan : Plan.t) =
  List.iter
    (fun (sc : Plan.scan) ->
      match sc.Plan.sc_eqs with
      | [] -> ()
      | eqs ->
          let st = src sc.Plan.sc_pred in
          if st.s_count >= index_threshold then
            ignore (get_index st (List.map fst eqs)))
    plan.Plan.p_scans

let enumerate ~src ?budget ?delta plan stats ~sink =
  enumerate ~src ?budget plan ?delta stats ~sink

let pp_report ppf r =
  Fmt.pf ppf "@[<v>rounds: %d%s  egd merges: %d  swept: %d  %.3f ms@,"
    r.r_rounds
    (if r.r_complete then "" else " (bounded)")
    r.r_egd_merges r.r_sweep_dropped (1000. *. r.r_seconds);
  List.iter
    (fun (name, st) -> Fmt.pf ppf "%-24s %a@," name Obs.pp_stats st)
    r.r_stats;
  Fmt.pf ppf "target tuples: %d@]" (Instance.total_tuples r.r_target)
