(** Compilation of s-t tgds into relational execution plans.

    A plan is a left-deep sequence of scan/probe steps over the source
    instance (each step after the first probes a hash index on the
    positions equated with already-bound variables or constants), a set
    of emission templates for the right-hand side (cells drawn from
    bound slots, constants, trigger-local labelled nulls, or Skolem
    terms computed from bound slots), and satisfaction-check templates
    implementing the restricted-chase "is the rhs already satisfied"
    test with existentials as wildcards.

    Variables are compiled to integer slots; a trigger is a [Value.t
    array] environment, so the engine's inner loop allocates nothing
    but the environment itself. *)

type binding = Slot of int | Const of Smg_relational.Value.t

type scan = {
  sc_pred : string;
  sc_eqs : (int * binding) list;
  sc_selfeqs : (int * int) list;
  sc_binds : (int * int) list;
}

type sk_arg =
  | ASlot of int
  | AConst of Smg_relational.Value.t
  | AApp of string * sk_arg list  (** nested Skolem application *)

type cell =
  | CSlot of int
  | CConst of Smg_relational.Value.t
  | CNull of int
  | CSkolem of string * sk_arg list

type emit = { em_pred : string; em_cells : cell array }

type check_cell =
  | KSlot of int
  | KConst of Smg_relational.Value.t
  | KEx of int  (** plain existential: a wildcard of the check *)
  | KSkolem of string * sk_arg list
      (** Skolem-named existential: its value is determined by the
          trigger's bindings and is computed, never wildcarded *)

type check = {
  ck_pred : string;
  ck_cells : check_cell array;
  ck_probe : int list;
}

type t = {
  p_name : string;
  p_tgd : Smg_cq.Dependency.tgd;
  p_nslots : int;
  p_scans : scan list;
  p_emits : emit list;
  p_checks : check list;
  p_nnulls : int;
  p_nex : int;
  p_slot_names : string array;
}

val compile :
  ?card:(string -> int) ->
  ?lead:int ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  Smg_cq.Dependency.tgd ->
  t
(** Compile a tgd whose lhs predicates are [source] tables and whose
    rhs predicates are [target] tables. [card] gives per-table
    cardinalities for the greedy join ordering (most-selective-first);
    without it the order is purely structural. [lead] forces the lhs
    atom at that index (in the tgd's own atom order) to become scan 0,
    with the rest ordered greedily around it — how the incremental
    maintainer gets one plan variant per atom, each driven by the
    tuples newly inserted into that atom's table.
    @raise Invalid_argument on unknown predicates, arity mismatches, or
    a Skolem argument that is not universally quantified. *)

val pp : Format.formatter -> t -> unit
(** EXPLAIN-style rendering of the scan order, probes, and emissions. *)
