(** Frozen boxed-value reference engine (pre-interning), kept for
    differential testing and as the fixed sequential baseline of
    `experiments parallel-scale`. Sequential only: no budgets, no
    faults, no pool, no incremental surface. {!Engine} output must stay
    homomorphically equivalent to this engine's on every scenario. *)

type report = {
  r_target : Smg_relational.Instance.t;
  r_complete : bool;  (** false when the round budget was exhausted *)
  r_rounds : int;
}

val run :
  ?max_rounds:int ->
  ?laconic:bool ->
  source:Smg_relational.Schema.t ->
  target:Smg_relational.Schema.t ->
  mappings:Smg_cq.Dependency.tgd list ->
  Smg_relational.Instance.t ->
  (report, string) result
