type tstats = {
  mutable st_scanned : int;
  mutable st_probes : int;
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_checks : int;
  mutable st_satisfied : int;
  mutable st_emitted : int;
  mutable st_nulls : int;
  mutable st_seconds : float;
}

let fresh_tstats () =
  {
    st_scanned = 0;
    st_probes = 0;
    st_hits = 0;
    st_misses = 0;
    st_checks = 0;
    st_satisfied = 0;
    st_emitted = 0;
    st_nulls = 0;
    st_seconds = 0.;
  }

let pp_tstats ppf s =
  Fmt.pf ppf
    "scanned %d  probes %d (%d hit/%d miss)  checks %d (%d sat)  emitted %d  \
     nulls %d  %.3f ms"
    s.st_scanned s.st_probes s.st_hits s.st_misses s.st_checks s.st_satisfied
    s.st_emitted s.st_nulls (1000. *. s.st_seconds)

type stats = {
  n_scanned : int;
  n_probes : int;
  n_hits : int;
  n_misses : int;
  n_checks : int;
  n_satisfied : int;
  n_emitted : int;
  n_nulls : int;
  n_seconds : float;
}

let snapshot (s : tstats) =
  {
    n_scanned = s.st_scanned;
    n_probes = s.st_probes;
    n_hits = s.st_hits;
    n_misses = s.st_misses;
    n_checks = s.st_checks;
    n_satisfied = s.st_satisfied;
    n_emitted = s.st_emitted;
    n_nulls = s.st_nulls;
    n_seconds = s.st_seconds;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "scanned %d  probes %d (%d hit/%d miss)  checks %d (%d sat)  emitted %d  \
     nulls %d  %.3f ms"
    s.n_scanned s.n_probes s.n_hits s.n_misses s.n_checks s.n_satisfied
    s.n_emitted s.n_nulls (1000. *. s.n_seconds)

(* ---- shard / intern observability -------------------------------------- *)

type shard_view = {
  sv_shards : int;
  sv_tuples : int array;
  sv_rot : int array;
  sv_intern_pool : int;
}

let pp_int_array ppf a =
  Array.iteri (fun i v -> Fmt.pf ppf "%s%d" (if i = 0 then "" else " ") v) a

let pp_shard_view ppf v =
  Fmt.pf ppf "shards %d  tuples [%a]  rot [%a]  intern pool %d" v.sv_shards
    pp_int_array v.sv_tuples pp_int_array v.sv_rot v.sv_intern_pool

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* ---- benchmark export -------------------------------------------------- *)

type bench_row = {
  br_name : string;
  br_size : int;
  br_ns_per_run : float;
  br_tuples_per_s : float;
}

(* Hand-rolled JSON writer: names and numbers only, no string escaping
   needed beyond quotes (benchmark names are plain identifiers). *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_json ~path rows =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"name\": \"%s\", \"size\": %d, \"ns_per_run\": %.1f, \
         \"tuples_per_s\": %.1f}%s\n"
        (json_escape r.br_name) r.br_size r.br_ns_per_run r.br_tuples_per_s
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc
