(** Per-resource circuit breaker: Closed -> Open -> Half_open.

    Counts consecutive failures against a threshold; once tripped the
    breaker sheds further work for a cooldown (callers translate a
    [Shed] verdict into 503 + [Retry-After]), then half-opens to admit
    a single probe. A successful probe closes the breaker; a failed one
    re-opens it for another cooldown. Time is passed in by the caller
    ([now], any monotone-enough seconds scale) so tests drive the state
    machine without sleeping. Thread-safe. *)

type config = {
  threshold : int;  (** consecutive failures before tripping; min 1 *)
  cooldown_s : float;  (** how long Open sheds before half-opening *)
}

val default_config : config
(** threshold 5, cooldown 1 s. *)

type t

val create : ?config:config -> unit -> t

type verdict =
  | Allow
  | Shed of int
      (** shed now; the payload is the suggested [Retry-After] in whole
          seconds (at least 1) *)

val admit : t -> now:float -> verdict
(** Consult before doing the work. In Open state, [Allow] is returned
    once the cooldown has passed (the caller becomes the half-open
    probe); while a probe is outstanding, further calls shed. *)

val success : t -> unit
(** Report after the admitted work succeeded. Resets to Closed. *)

val failure : t -> now:float -> unit
(** Report after the admitted work failed. Trips to Open when the
    consecutive-failure count reaches the threshold, and immediately
    re-opens from Half_open. *)

val state : t -> [ `Closed | `Open | `Half_open ]
val trips : t -> int
(** How many times the breaker has transitioned into Open. *)
