type config = { threshold : int; cooldown_s : float }

let default_config = { threshold = 5; cooldown_s = 1. }

type state = Closed | Open of float (* shed until *) | Half_open

type t = {
  cfg : config;
  lock : Mutex.t;
  mutable st : state;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable trips : int;
  mutable probing : bool;  (* a half-open probe is outstanding *)
}

let create ?(config = default_config) () =
  {
    cfg = { config with threshold = max 1 config.threshold };
    lock = Mutex.create ();
    st = Closed;
    failures = 0;
    trips = 0;
    probing = false;
  }

type verdict = Allow | Shed of int

let retry_after cfg = max 1 (int_of_float (Float.ceil cfg.cooldown_s))

let admit t ~now =
  Mutex.lock t.lock;
  let v =
    match t.st with
    | Closed -> Allow
    | Open until when now >= until ->
        t.st <- Half_open;
        t.probing <- true;
        Allow
    | Open until ->
        Shed (max 1 (int_of_float (Float.ceil (until -. now))))
    | Half_open when not t.probing ->
        t.probing <- true;
        Allow
    | Half_open -> Shed (retry_after t.cfg)
  in
  Mutex.unlock t.lock;
  v

let success t =
  Mutex.lock t.lock;
  t.st <- Closed;
  t.failures <- 0;
  t.probing <- false;
  Mutex.unlock t.lock

let failure t ~now =
  Mutex.lock t.lock;
  (match t.st with
  | Half_open ->
      t.st <- Open (now +. t.cfg.cooldown_s);
      t.trips <- t.trips + 1;
      t.probing <- false
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.cfg.threshold then begin
        t.st <- Open (now +. t.cfg.cooldown_s);
        t.trips <- t.trips + 1;
        t.failures <- 0
      end
  | Open _ -> ());
  Mutex.unlock t.lock

let state t =
  Mutex.lock t.lock;
  let s =
    match t.st with Closed -> `Closed | Open _ -> `Open | Half_open -> `Half_open
  in
  Mutex.unlock t.lock;
  s

let trips t =
  Mutex.lock t.lock;
  let n = t.trips in
  Mutex.unlock t.lock;
  n
