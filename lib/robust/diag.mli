(** Typed diagnostics: structured severity / stage / subject / location
    records replacing ad-hoc [failwith] and [Invalid_argument] at
    pipeline boundaries.

    Stages fail *into* diagnostics: a malformed correspondence, an
    unvalidatable s-tree, or a blown budget yields a diagnostic and a
    partial result instead of aborting the run. The CLI renders them as
    [file:line:col: severity [stage] subject: message] and maps them to
    exit codes. *)

type severity = Info | Warning | Error

type stage = Parse | Validate | Discover | Exchange | Verify

type loc = { loc_file : string option; loc_line : int; loc_col : int }

type t = {
  d_severity : severity;
  d_stage : stage;
  d_subject : string option;
      (** what the diagnostic is about: a table, class, correspondence,
          or candidate name *)
  d_loc : loc option;
  d_message : string;
}

val loc : ?file:string -> line:int -> col:int -> unit -> loc

val v : ?loc:loc -> ?subject:string -> severity -> stage -> string -> t

val errorf :
  ?loc:loc -> ?subject:string -> stage -> ('a, unit, string, t) format4 -> 'a

val warnf :
  ?loc:loc -> ?subject:string -> stage -> ('a, unit, string, t) format4 -> 'a

val infof :
  ?loc:loc -> ?subject:string -> stage -> ('a, unit, string, t) format4 -> 'a

val of_exn : ?subject:string -> stage -> exn -> t
(** Wrap a stray exception ([Invalid_argument], [Failure], anything) as
    an [Error] diagnostic — the containment net at stage boundaries. *)

val degraded : ?subject:string -> stage -> Budget.reason -> string -> t
(** A [Warning] recording that a search exhausted its budget and a
    fallback answered instead: ["budget exhausted (fuel): <what>"]. *)

val is_error : t -> bool
val has_errors : t list -> bool

val count : t list -> int * int * int
(** (errors, warnings, infos). *)

val summary : t list -> string
(** e.g. ["2 error(s), 1 warning(s)"]; ["no diagnostics"] when empty. *)

val exit_code : t list -> int
(** 0 when nothing error-severity, 2 otherwise — the CLI's "bad input"
    exit code. *)

val pp_severity : Format.formatter -> severity -> unit
val pp_stage : Format.formatter -> stage -> unit
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit

(** An append-only accumulator threaded through a pipeline run. *)
type collector

val collector : unit -> collector
val add : collector -> t -> unit
val diags : collector -> t list
(** Diagnostics in emission order. *)
