(** Bounded retry with exponential backoff and deterministic jitter.

    Wraps transient operations (registry mutations, plan-cache
    compiles, journal appends) so an injected or real transient failure
    is absorbed server-side instead of surfacing as a 500. The backoff
    sequence is a pure function of the policy, so tests can assert the
    exact delays; jitter comes from the policy's own seeded stream, not
    the global RNG. *)

type policy = {
  attempts : int;  (** total tries including the first; min 1 *)
  base_delay_s : float;  (** backoff before the first retry *)
  multiplier : float;  (** backoff growth per retry *)
  max_delay_s : float;  (** backoff cap *)
  jitter : float;  (** fraction of the delay drawn uniformly, [0..1] *)
  seed : int;  (** jitter stream seed *)
}

val default : policy
(** 3 attempts, 1 ms base, x8 growth, 50 ms cap, 0.5 jitter, seed 0. *)

val delay_s : policy -> retry:int -> float
(** The exact sleep before retry number [retry] (1-based): clamped
    exponential backoff plus that retry's deterministic jitter draw. *)

type 'a outcome = {
  result : ('a, exn) result;  (** [Error] carries the last exception *)
  tries : int;  (** total executions, [>= 1] *)
}

val run :
  ?sleep:(float -> unit) ->
  policy ->
  retryable:(exn -> bool) ->
  (unit -> 'a) ->
  'a outcome
(** Run the thunk, retrying while it raises an exception [retryable]
    accepts and attempts remain. Non-retryable exceptions and
    exhaustion both end in [Error] (nothing is raised — the caller
    chooses whether to re-raise). [sleep] defaults to [Unix.sleepf];
    tests inject a recorder. *)
