(** Deterministic fault injection for chaos testing.

    A fault plane is a set of named injection points, each with its own
    seeded random stream and a probability vector over three actions:
    raise, delay, or a short (truncated) read/write. Subsystems consult
    their point at well-defined moments ({!fire} / {!decide}); the k-th
    consultation of a point always yields the same decision for the
    same seed, independent of domain count or scheduling, because each
    point owns an independent splittable stream (the same splitmix
    mixer as [Smg_generate.Rng] — inlined here since [smg_robust] sits
    below [smg_generate] in the dependency order) advanced by a
    per-point counter. Replaying a run therefore replays its failure
    schedule byte for byte. *)

type point =
  | Parse  (** scenario text parsing inside a registry [PUT] *)
  | Registry_store  (** registry mutation / journal append *)
  | Plan_compile  (** TGD plan compilation in the plan cache *)
  | Engine_step  (** one plan-evaluation step inside [Engine.execute] *)
  | Pool_task  (** a connection task entering a pool domain *)
  | Socket_read  (** consulted once per accepted connection *)
  | Socket_write  (** consulted once per response write *)
  | Delta_apply
      (** one delta batch entering incremental maintenance (appended
          after the original seven points, so pre-existing seeded
          schedules are unchanged) *)

val all_points : point list
(** In declaration order — the order {!schedule} reports. *)

val point_name : point -> string
(** Stable lower-snake name ([parse], [registry_store], ...). *)

type action =
  | Raise  (** the point raises {!Injected} *)
  | Delay of float  (** sleep this many seconds, then continue *)
  | Short  (** truncate the read/write (socket points only) *)

type spec = {
  p_raise : float;
  p_delay : float;
  delay_s : float;  (** sleep length when the delay arm fires *)
  p_short : float;
}
(** Per-point probability vector. Arms are disjoint: a uniform draw
    [u] in [[0,1)] fires raise when [u < p_raise], delay when
    [u < p_raise +. p_delay], short when [u < p_raise +. p_delay +.
    p_short], and passes otherwise. *)

val quiet : spec
(** All probabilities zero — the point never fires. *)

type plan = (point * spec) list
(** Points absent from the plan never fire. *)

type t

val create : seed:int -> plan -> t
(** Thread-safe: every point may be consulted from any domain. *)

exception Injected of point
(** What {!fire} raises when the raise arm (or, outside socket code,
    the short arm) fires. *)

val decide : t -> point -> action option
(** Draw the point's next decision and record it in the schedule.
    [None] means pass. Callers that can honour [Delay]/[Short]
    natively (the socket paths) use this directly. *)

val fire : t -> point -> unit
(** {!decide}, then apply the generic behaviour: [Raise] and [Short]
    raise {!Injected}, [Delay s] sleeps [s] seconds. *)

val decisions : t -> point -> int
(** How many times the point has been consulted. *)

val injected : t -> point -> int
(** How many consultations fired (any arm). *)

val total_injected : t -> int

val schedule : t -> (string * string) list
(** One row per point (in {!all_points} order): the point name and its
    decision log, one char per consultation — ['.'] pass, ['R'] raise,
    ['D'] delay, ['S'] short. Two runs with the same seed and the same
    per-point consultation order produce byte-identical schedules. *)

val schedule_digest : t -> string
(** MD5 hex over {!schedule} — the replay fingerprint. *)
