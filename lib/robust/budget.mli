(** Composable resource budgets: wall-clock deadlines plus deterministic
    fuel counters.

    A budget is threaded through hot search loops (the Steiner DP, path
    enumeration, plan evaluation) and consumed with {!tick} / {!burn}.
    Fuel is exact and deterministic — the same inputs burn the same
    amount — while the deadline is checked against the clock only
    every [interval] ticks, so the per-tick cost is a decrement and a
    compare. Once a budget is exhausted it stays exhausted (sticky), so
    all stages sharing it stop promptly.

    Deadlines are monotonic-safe: the allowance is drained by an
    elapsed-time accumulator that ignores negative deltas between
    successive [Unix.gettimeofday] observations (the stdlib has no
    monotonic-clock binding), so an NTP step backwards can never arm a
    deadline forever, and a step forwards at worst fires it early —
    the safe direction for a guard rail. *)

type reason =
  | Fuel  (** the deterministic operation counter ran out *)
  | Deadline  (** the wall-clock deadline passed *)

type t

val create : ?deadline_ms:float -> ?fuel:int -> ?interval:int -> unit -> t
(** A budget with an optional wall-clock deadline (milliseconds from
    now) and an optional fuel allowance. Omitted resources are
    unlimited. [interval] (default 256) is the number of ticks between
    wall-clock checks. *)

val unlimited : unit -> t
(** A budget that never exhausts. *)

val tick : t -> bool
(** Consume one unit of fuel; [true] while the budget still has
    resources. After exhaustion every call returns [false]. *)

val burn : t -> int -> bool
(** Consume [n] units at once (one check for a block of [n] cheap
    operations — this is what keeps guard overhead negligible). *)

val ok : t -> bool
(** [true] while the budget is not exhausted; forces a wall-clock check,
    so use at loop heads of non-hot code, not per-element. *)

val exhausted : t -> reason option
(** Why the budget ran out, if it did. Pure read, no clock check. *)

exception Exhausted of reason

val tick_exn : t -> unit
val burn_exn : t -> int -> unit
(** Like {!tick} / {!burn} but raise {!Exhausted} on (first or repeated)
    exhaustion — for deep recursions where unwinding is the cleanest way
    out. Callers are expected to catch the exception at a stage
    boundary. *)

val remaining_fuel : t -> int option
(** [None] when fuel is unlimited. *)

val split : t -> parts:int -> t list
(** [split b ~parts] divides [b]'s remaining fuel into [parts] equal
    shares (remainder going to the first children), each under [b]'s
    remaining time allowance. [b] itself is unchanged (beyond a clock
    sync) — charge the children's
    consumption back with {!absorb} after the forked work joins. The
    share sizes depend only on [b]'s remaining fuel and [parts], so
    forked fuel accounting is deterministic for any domain count. *)

val absorb : t -> t -> unit
(** [absorb b child] charges the fuel a {!split} child consumed back to
    [b] (exhausting [b] if its fuel reaches zero) and propagates a
    deadline exhaustion — the child's deadline is [b]'s own. A child
    that merely spent its fuel share does not exhaust [b]: [b] may
    still have fuel left for the remaining work. *)

val pp_reason : Format.formatter -> reason -> unit
