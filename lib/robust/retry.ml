type policy = {
  attempts : int;
  base_delay_s : float;
  multiplier : float;
  max_delay_s : float;
  jitter : float;
  seed : int;
}

let default =
  {
    attempts = 3;
    base_delay_s = 0.001;
    multiplier = 8.;
    max_delay_s = 0.05;
    jitter = 0.5;
    seed = 0;
  }

(* Same mixer as Fault; the jitter for retry [k] is drawn from the
   policy seed and [k] alone, so the backoff sequence is reproducible
   without threading a stream through callers. *)
let mix z =
  let z = (z + 0x2545F4914F6CDD1D) land max_int in
  let z = (z lxor (z lsr 30)) * 0x1B03738712FAD5C9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D land max_int in
  z lxor (z lsr 31)

let delay_s p ~retry =
  let retry = max 1 retry in
  let exp_backoff =
    p.base_delay_s *. (p.multiplier ** Float.of_int (retry - 1))
  in
  let capped = Float.min p.max_delay_s exp_backoff in
  let u =
    Float.of_int (mix (p.seed lxor (retry * 0x1E3779B97F4A7C15)) land 0xFFFFFFFF)
    /. 4294967296.0
  in
  Float.max 0. (capped *. (1. -. (p.jitter *. u)))

type 'a outcome = { result : ('a, exn) result; tries : int }

let run ?(sleep = Unix.sleepf) p ~retryable f =
  let attempts = max 1 p.attempts in
  let rec go tried =
    match f () with
    | v -> { result = Ok v; tries = tried + 1 }
    | exception exn ->
        let tried = tried + 1 in
        if tried >= attempts || not (retryable exn) then
          { result = Error exn; tries = tried }
        else begin
          sleep (delay_s p ~retry:tried);
          go tried
        end
  in
  go 0
