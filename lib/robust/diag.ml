type severity = Info | Warning | Error

type stage = Parse | Validate | Discover | Exchange | Verify

type loc = { loc_file : string option; loc_line : int; loc_col : int }

type t = {
  d_severity : severity;
  d_stage : stage;
  d_subject : string option;
  d_loc : loc option;
  d_message : string;
}

let loc ?file ~line ~col () = { loc_file = file; loc_line = line; loc_col = col }

let v ?loc ?subject severity stage message =
  {
    d_severity = severity;
    d_stage = stage;
    d_subject = subject;
    d_loc = loc;
    d_message = message;
  }

let errorf ?loc ?subject stage fmt =
  Printf.ksprintf (v ?loc ?subject Error stage) fmt

let warnf ?loc ?subject stage fmt =
  Printf.ksprintf (v ?loc ?subject Warning stage) fmt

let infof ?loc ?subject stage fmt =
  Printf.ksprintf (v ?loc ?subject Info stage) fmt

let of_exn ?subject stage exn =
  let message =
    match exn with
    | Invalid_argument m | Failure m -> m
    | e -> Printexc.to_string e
  in
  v ?subject Error stage message

let degraded ?subject stage reason what =
  warnf ?subject stage "budget exhausted (%s): %s"
    (Fmt.str "%a" Budget.pp_reason reason)
    what

let is_error d = d.d_severity = Error
let has_errors ds = List.exists is_error ds

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.d_severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let summary ds =
  match count ds with
  | 0, 0, 0 -> "no diagnostics"
  | e, w, i ->
      String.concat ", "
        (List.filter_map
           (fun (n, what) ->
             if n = 0 then None else Some (Printf.sprintf "%d %s(s)" n what))
           [ (e, "error"); (w, "warning"); (i, "info") ])

let exit_code ds = if has_errors ds then 2 else 0

let pp_severity ppf = function
  | Info -> Fmt.string ppf "info"
  | Warning -> Fmt.string ppf "warning"
  | Error -> Fmt.string ppf "error"

let pp_stage ppf = function
  | Parse -> Fmt.string ppf "parse"
  | Validate -> Fmt.string ppf "validate"
  | Discover -> Fmt.string ppf "discover"
  | Exchange -> Fmt.string ppf "exchange"
  | Verify -> Fmt.string ppf "verify"

let pp ppf d =
  (match d.d_loc with
  | Some l ->
      Fmt.pf ppf "%s%d:%d: "
        (match l.loc_file with Some f -> f ^ ":" | None -> "")
        l.loc_line l.loc_col
  | None -> ());
  Fmt.pf ppf "%a [%a]" pp_severity d.d_severity pp_stage d.d_stage;
  (match d.d_subject with Some s -> Fmt.pf ppf " %s" s | None -> ());
  Fmt.pf ppf ": %s" d.d_message

let pp_list ppf ds = List.iter (fun d -> Fmt.pf ppf "%a@." pp d) ds

type collector = { mutable items : t list (* reversed *) }

let collector () = { items = [] }
let add c d = c.items <- d :: c.items
let diags c = List.rev c.items
