type reason = Fuel | Deadline

type t = {
  mutable fuel : int;  (* remaining; max_int means unlimited *)
  granted : int;  (* initial fuel allowance, for split/absorb accounting *)
  has_fuel_limit : bool;
  deadline : float;  (* absolute, Unix.gettimeofday scale; infinity = none *)
  interval : int;
  mutable countdown : int;  (* ticks until the next wall-clock check *)
  mutable spent : reason option;  (* sticky *)
}

exception Exhausted of reason

let make ~fuel ~has_fuel_limit ~deadline ~interval =
  {
    fuel;
    granted = fuel;
    has_fuel_limit;
    deadline;
    interval = max 1 interval;
    countdown = max 1 interval;
    spent = None;
  }

let create ?deadline_ms ?fuel ?(interval = 256) () =
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> Unix.gettimeofday () +. (ms /. 1000.)
  in
  make
    ~fuel:(match fuel with None -> max_int | Some f -> max 0 f)
    ~has_fuel_limit:(fuel <> None) ~deadline ~interval

let unlimited () = create ()

let check_clock b =
  b.countdown <- b.interval;
  if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
    b.spent <- Some Deadline

let burn b n =
  match b.spent with
  | Some _ -> false
  | None ->
      (if b.has_fuel_limit then begin
         b.fuel <- b.fuel - n;
         if b.fuel < 0 then begin
           b.fuel <- 0;
           b.spent <- Some Fuel
         end
       end);
      if b.spent = None then begin
        b.countdown <- b.countdown - 1;
        if b.countdown <= 0 then check_clock b
      end;
      b.spent = None

let tick b = burn b 1

let ok b =
  (match b.spent with None -> check_clock b | Some _ -> ());
  b.spent = None

let exhausted b = b.spent

let tick_exn b =
  if not (tick b) then
    raise (Exhausted (match b.spent with Some r -> r | None -> Fuel))

let burn_exn b n =
  if not (burn b n) then
    raise (Exhausted (match b.spent with Some r -> r | None -> Fuel))

let remaining_fuel b = if b.has_fuel_limit then Some b.fuel else None

(* Equal fuel shares (remainder to the first children) under the parent's
   absolute deadline. The parent keeps its own state — children are the
   currency: consume them with [absorb] after the forked work joins. The
   split is a function of the parent's remaining fuel and [parts] only,
   never of scheduling, which is what keeps parallel fuel accounting
   deterministic for any domain count. *)
let split b ~parts =
  let parts = max 1 parts in
  if not b.has_fuel_limit then
    List.init parts (fun _ ->
        make ~fuel:max_int ~has_fuel_limit:false ~deadline:b.deadline
          ~interval:b.interval)
  else
    let share = b.fuel / parts and extra = b.fuel mod parts in
    List.init parts (fun i ->
        let fuel = share + if i < extra then 1 else 0 in
        make ~fuel ~has_fuel_limit:true ~deadline:b.deadline
          ~interval:b.interval)

let absorb b child =
  (if b.has_fuel_limit && child.has_fuel_limit then begin
     let consumed = child.granted - max 0 child.fuel in
     b.fuel <- b.fuel - consumed;
     if b.fuel <= 0 then begin
       b.fuel <- 0;
       if b.spent = None then b.spent <- Some Fuel
     end
   end);
  (* a child's deadline is the parent's own deadline, so its passing is
     the parent's passing; a child merely running out of its fuel share
     is not — the parent may still have fuel for sequential follow-up *)
  match child.spent with
  | Some Deadline when b.spent = None -> b.spent <- Some Deadline
  | _ -> ()

let pp_reason ppf = function
  | Fuel -> Fmt.string ppf "fuel"
  | Deadline -> Fmt.string ppf "deadline"
