type reason = Fuel | Deadline

(* The deadline is a relative allowance drained by a monotonic-ized
   elapsed-time accumulator, not an absolute gettimeofday target. The
   stdlib's Unix has no clock_gettime(MONOTONIC) binding, and
   gettimeofday is wall clock: an NTP step would either fire the
   deadline spuriously (forward jump) or arm it forever (backward
   jump against an absolute target). Accumulating only the positive
   deltas between successive observations keeps a backward jump from
   ever rewinding the budget; a forward jump still overcounts that
   one interval, which errs on the side of stopping — the safe
   direction for a guard rail. *)
type t = {
  mutable fuel : int;  (* remaining; max_int means unlimited *)
  granted : int;  (* initial fuel allowance, for split/absorb accounting *)
  has_fuel_limit : bool;
  allowance : float;  (* seconds of wall time granted; infinity = none *)
  mutable elapsed : float;  (* positive-delta accumulated seconds *)
  mutable last : float;  (* previous clock observation *)
  interval : int;
  mutable countdown : int;  (* ticks until the next wall-clock check *)
  mutable spent : reason option;  (* sticky *)
}

exception Exhausted of reason

let make ~fuel ~has_fuel_limit ~allowance ~interval =
  {
    fuel;
    granted = fuel;
    has_fuel_limit;
    allowance;
    elapsed = 0.;
    last = (if allowance < infinity then Unix.gettimeofday () else 0.);
    interval = max 1 interval;
    countdown = max 1 interval;
    (* a zero allowance is spent from birth: waiting for the clock to
       visibly advance past 0 would leave the budget's fate to timer
       resolution *)
    spent = (if allowance <= 0. then Some Deadline else None);
  }

let create ?deadline_ms ?fuel ?(interval = 256) () =
  let allowance =
    match deadline_ms with None -> infinity | Some ms -> ms /. 1000.
  in
  make
    ~fuel:(match fuel with None -> max_int | Some f -> max 0 f)
    ~has_fuel_limit:(fuel <> None) ~allowance ~interval

let unlimited () = create ()

let check_clock b =
  b.countdown <- b.interval;
  if b.allowance < infinity then begin
    let now = Unix.gettimeofday () in
    let dt = now -. b.last in
    b.last <- now;
    if dt > 0. then b.elapsed <- b.elapsed +. dt;
    if b.elapsed > b.allowance then b.spent <- Some Deadline
  end

let burn b n =
  match b.spent with
  | Some _ -> false
  | None ->
      (if b.has_fuel_limit then begin
         b.fuel <- b.fuel - n;
         if b.fuel < 0 then begin
           b.fuel <- 0;
           b.spent <- Some Fuel
         end
       end);
      if b.spent = None then begin
        b.countdown <- b.countdown - 1;
        if b.countdown <= 0 then check_clock b
      end;
      b.spent = None

let tick b = burn b 1

let ok b =
  (match b.spent with None -> check_clock b | Some _ -> ());
  b.spent = None

let exhausted b = b.spent

let tick_exn b =
  if not (tick b) then
    raise (Exhausted (match b.spent with Some r -> r | None -> Fuel))

let burn_exn b n =
  if not (burn b n) then
    raise (Exhausted (match b.spent with Some r -> r | None -> Fuel))

let remaining_fuel b = if b.has_fuel_limit then Some b.fuel else None

(* Equal fuel shares (remainder to the first children) under the
   parent's remaining time allowance. The parent keeps its own state —
   children are the currency: consume them with [absorb] after the
   forked work joins. The split is a function of the parent's remaining
   fuel and [parts] only, never of scheduling, which is what keeps
   parallel fuel accounting deterministic for any domain count. *)
let split b ~parts =
  let parts = max 1 parts in
  (* sync the parent's clock so the children's allowance reflects time
     already spent; their own accumulators start from the fork *)
  if b.allowance < infinity && b.spent = None then check_clock b;
  let allowance =
    if b.allowance < infinity then Float.max 0. (b.allowance -. b.elapsed)
    else infinity
  in
  if not b.has_fuel_limit then
    List.init parts (fun _ ->
        make ~fuel:max_int ~has_fuel_limit:false ~allowance
          ~interval:b.interval)
  else
    let share = b.fuel / parts and extra = b.fuel mod parts in
    List.init parts (fun i ->
        let fuel = share + if i < extra then 1 else 0 in
        make ~fuel ~has_fuel_limit:true ~allowance ~interval:b.interval)

let absorb b child =
  (if b.has_fuel_limit && child.has_fuel_limit then begin
     let consumed = child.granted - max 0 child.fuel in
     b.fuel <- b.fuel - consumed;
     if b.fuel <= 0 then begin
       b.fuel <- 0;
       if b.spent = None then b.spent <- Some Fuel
     end
   end);
  (* a child's allowance is the parent's remaining allowance at the
     fork, so its deadline passing is the parent's passing; a child
     merely running out of its fuel share is not — the parent may
     still have fuel for sequential follow-up *)
  match child.spent with
  | Some Deadline when b.spent = None -> b.spent <- Some Deadline
  | _ -> ()

let pp_reason ppf = function
  | Fuel -> Fmt.string ppf "fuel"
  | Deadline -> Fmt.string ppf "deadline"
