type reason = Fuel | Deadline

type t = {
  mutable fuel : int;  (* remaining; max_int means unlimited *)
  has_fuel_limit : bool;
  deadline : float;  (* absolute, Unix.gettimeofday scale; infinity = none *)
  interval : int;
  mutable countdown : int;  (* ticks until the next wall-clock check *)
  mutable spent : reason option;  (* sticky *)
}

exception Exhausted of reason

let create ?deadline_ms ?fuel ?(interval = 256) () =
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> Unix.gettimeofday () +. (ms /. 1000.)
  in
  {
    fuel = (match fuel with None -> max_int | Some f -> max 0 f);
    has_fuel_limit = fuel <> None;
    deadline;
    interval = max 1 interval;
    countdown = max 1 interval;
    spent = None;
  }

let unlimited () = create ()

let check_clock b =
  b.countdown <- b.interval;
  if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
    b.spent <- Some Deadline

let burn b n =
  match b.spent with
  | Some _ -> false
  | None ->
      (if b.has_fuel_limit then begin
         b.fuel <- b.fuel - n;
         if b.fuel < 0 then begin
           b.fuel <- 0;
           b.spent <- Some Fuel
         end
       end);
      if b.spent = None then begin
        b.countdown <- b.countdown - 1;
        if b.countdown <= 0 then check_clock b
      end;
      b.spent = None

let tick b = burn b 1

let ok b =
  (match b.spent with None -> check_clock b | Some _ -> ());
  b.spent = None

let exhausted b = b.spent

let tick_exn b =
  if not (tick b) then
    raise (Exhausted (match b.spent with Some r -> r | None -> Fuel))

let burn_exn b n =
  if not (burn b n) then
    raise (Exhausted (match b.spent with Some r -> r | None -> Fuel))

let remaining_fuel b = if b.has_fuel_limit then Some b.fuel else None

let pp_reason ppf = function
  | Fuel -> Fmt.string ppf "fuel"
  | Deadline -> Fmt.string ppf "deadline"
