type point =
  | Parse
  | Registry_store
  | Plan_compile
  | Engine_step
  | Pool_task
  | Socket_read
  | Socket_write
  | Delta_apply

let all_points =
  [
    Parse;
    Registry_store;
    Plan_compile;
    Engine_step;
    Pool_task;
    Socket_read;
    Socket_write;
    Delta_apply;
  ]

let point_index = function
  | Parse -> 0
  | Registry_store -> 1
  | Plan_compile -> 2
  | Engine_step -> 3
  | Pool_task -> 4
  | Socket_read -> 5
  | Socket_write -> 6
  | Delta_apply -> 7

let point_name = function
  | Parse -> "parse"
  | Registry_store -> "registry_store"
  | Plan_compile -> "plan_compile"
  | Engine_step -> "engine_step"
  | Pool_task -> "pool_task"
  | Socket_read -> "socket_read"
  | Socket_write -> "socket_write"
  | Delta_apply -> "delta_apply"

type action = Raise | Delay of float | Short

type spec = { p_raise : float; p_delay : float; delay_s : float; p_short : float }

let quiet = { p_raise = 0.; p_delay = 0.; delay_s = 0.; p_short = 0. }

type plan = (point * spec) list

(* Same splitmix-style mixer as Smg_generate.Rng (inlined: smg_robust
   sits below smg_generate). Each point gets its own stream, seeded by
   mixing the master seed with the point index, so consultation order
   across points cannot perturb any single point's decisions. *)
let mix z =
  let z = (z + 0x2545F4914F6CDD1D) land max_int in
  let z = (z lxor (z lsr 30)) * 0x1B03738712FAD5C9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x2545F4914F6CDD1D land max_int in
  z lxor (z lsr 31)

type slot = {
  spec : spec;
  mutable state : int;  (* per-point stream cursor *)
  mutable consulted : int;
  mutable fired : int;
  log : Buffer.t;
}

type t = { lock : Mutex.t; slots : slot array }

exception Injected of point

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Fmt.str "Fault.Injected(%s)" (point_name p))
    | _ -> None)

let create ~seed plan =
  let slots =
    Array.of_list
      (List.map
         (fun p ->
           let spec =
             match List.assoc_opt p plan with Some s -> s | None -> quiet
           in
           {
             spec;
             state = mix (seed lxor ((point_index p + 1) * 0x1E3779B97F4A7C15)) land max_int;
             consulted = 0;
             fired = 0;
             log = Buffer.create 64;
           })
         all_points)
  in
  { lock = Mutex.create (); slots }

let uniform slot =
  slot.state <- (slot.state + 0x2545F4914F6CDD1D) land max_int;
  let z = mix slot.state in
  Float.of_int (z land 0xFFFFFFFF) /. 4294967296.0

let decide t point =
  let slot = t.slots.(point_index point) in
  Mutex.lock t.lock;
  let u = uniform slot in
  slot.consulted <- slot.consulted + 1;
  let s = slot.spec in
  let action =
    if u < s.p_raise then Some Raise
    else if u < s.p_raise +. s.p_delay then Some (Delay s.delay_s)
    else if u < s.p_raise +. s.p_delay +. s.p_short then Some Short
    else None
  in
  Buffer.add_char slot.log
    (match action with
    | None -> '.'
    | Some Raise -> 'R'
    | Some (Delay _) -> 'D'
    | Some Short -> 'S');
  if action <> None then slot.fired <- slot.fired + 1;
  Mutex.unlock t.lock;
  action

let fire t point =
  match decide t point with
  | None -> ()
  | Some (Delay s) -> if s > 0. then Unix.sleepf s
  | Some (Raise | Short) -> raise (Injected point)

let decisions t point = t.slots.(point_index point).consulted
let injected t point = t.slots.(point_index point).fired

let total_injected t =
  Array.fold_left (fun acc s -> acc + s.fired) 0 t.slots

let schedule t =
  Mutex.lock t.lock;
  let rows =
    List.map
      (fun p ->
        (point_name p, Buffer.contents t.slots.(point_index p).log))
      all_points
  in
  Mutex.unlock t.lock;
  rows

let schedule_digest t =
  schedule t
  |> List.map (fun (name, log) -> name ^ ":" ^ log)
  |> String.concat "\n"
  |> Digest.string |> Digest.to_hex
