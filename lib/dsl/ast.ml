type semantics_block = {
  sem_table : string;
  sem_stree : Smg_semantics.Stree.t;
}

type t = {
  doc_schemas : Smg_relational.Schema.t list;
  doc_cms : Smg_cm.Cml.t list;
  doc_semantics : semantics_block list;
  doc_corrs : Smg_cq.Mapping.corr list;
  doc_tgds : Smg_cq.Dependency.tgd list;
  doc_data : (string * Smg_relational.Value.t list list) list;
}

let empty =
  {
    doc_schemas = [];
    doc_cms = [];
    doc_semantics = [];
    doc_corrs = [];
    doc_tgds = [];
    doc_data = [];
  }

let find_schema d name =
  List.find_opt
    (fun s -> String.equal s.Smg_relational.Schema.schema_name name)
    d.doc_schemas

let find_cm d name =
  List.find_opt (fun c -> String.equal c.Smg_cm.Cml.cm_name name) d.doc_cms

let strees d = List.map (fun s -> s.sem_stree) d.doc_semantics

let instance_of (d : t) (schema : Smg_relational.Schema.t) =
  List.fold_left
    (fun inst (table, rows) ->
      match Smg_relational.Schema.find_table schema table with
      | None -> inst
      | Some t ->
          let header = Smg_relational.Schema.column_names t in
          List.fold_left
            (fun inst row ->
              Smg_relational.Instance.add_tuple inst table ~header
                (Array.of_list row))
            inst rows)
    Smg_relational.Instance.empty d.doc_data
