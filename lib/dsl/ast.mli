(** Parsed scenario documents.

    A document describes one mapping scenario: named schemas, named CMs,
    per-table semantics (each bound to a schema and a CM by name), and
    correspondences. *)

type semantics_block = {
  sem_table : string;
  sem_stree : Smg_semantics.Stree.t;
}

type t = {
  doc_schemas : Smg_relational.Schema.t list;
  doc_cms : Smg_cm.Cml.t list;
  doc_semantics : semantics_block list;
  doc_corrs : Smg_cq.Mapping.corr list;
  doc_tgds : Smg_cq.Dependency.tgd list;
      (** explicit dependencies ([tgd] blocks): saved discovery or
          composition output, Skolem terms in the [sk f(…)] spelling *)
  doc_data : (string * Smg_relational.Value.t list list) list;
      (** instance rows per table, in column order *)
}

val empty : t
val find_schema : t -> string -> Smg_relational.Schema.t option
val find_cm : t -> string -> Smg_cm.Cml.t option
val strees : t -> Smg_semantics.Stree.t list

val instance_of : t -> Smg_relational.Schema.t -> Smg_relational.Instance.t
(** Collect the document's data rows for the tables of one schema.
    @raise Invalid_argument on arity mismatches. *)
