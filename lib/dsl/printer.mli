(** Pretty-printer for scenario documents, inverse of {!Parser.parse}:
    [Parser.parse (to_string doc)] reconstructs an equal document. *)

val pp : Format.formatter -> Ast.t -> unit
val to_string : Ast.t -> string

val pp_schema : Format.formatter -> Smg_relational.Schema.t -> unit
val pp_cm : Format.formatter -> Smg_cm.Cml.t -> unit
val pp_semantics : Format.formatter -> Ast.semantics_block -> unit
val pp_corr : Format.formatter -> Smg_cq.Mapping.corr -> unit

val pp_tgd : Format.formatter -> Smg_cq.Dependency.tgd -> unit
(** A [tgd "name" { lhs …; rhs …; }] block. Skolem-named existential
    variables print as explicit [sk f(…)] applications and re-parse to
    the identical [sk!…] encoding; variable names outside the
    identifier charset use the [var "…"] spelling. Printing then
    re-parsing any discovered or composed tgd is the identity. *)
