(** Recursive-descent parser for the scenario description language.

    Grammar sketch (see the README for a complete example):
    {v
    document   := (schema | cm | semantics | corr | tgd | data)*
    schema     := "schema" IDENT "{" (table | ric)* "}"
    table      := "table" IDENT "{" (col | key)* "}"
    col        := "col" IDENT ":" type ";"
    key        := "key" "(" idents ")" ";"
    ric        := "ric" IDENT ":" IDENT "(" idents ")" "->" IDENT "(" idents ")" ";"
    cm         := "cm" IDENT "{" (class | rel | reified | isa | disjoint | cover)* "}"
    class      := "class" IDENT "{" ["attrs" "(" idents ")" ";"] ["id" "(" idents ")" ";"] "}"
    rel        := ("rel" | "partof") IDENT ":" IDENT card "--" card IDENT ";"
    card       := "(" INT ".." (INT | "*") ")"
    reified    := "reified" IDENT ["partof"] "{" (role | "attrs" ...)* "}"
    role       := "role" IDENT ":" IDENT card ";"
    isa        := "isa" IDENT "<" IDENT ";"
    disjoint   := "disjoint" "(" idents ")" ";"
    cover      := "cover" IDENT "=" "(" idents ")" ";"
    semantics  := "semantics" IDENT "{" (node | anchor | edge | colmap | id)* "}"
    node       := "node" noderef ";"
    anchor     := "anchor" noderef ";"
    edge       := "edge" noderef "-" ("rel" | "role") IDENT "->" noderef ";"
                | "edge" noderef "-" "isa" "->" noderef ";"
    colmap     := "col" IDENT "->" noderef "." IDENT ";"
    id         := "id" noderef "(" idents ")" ";"
    corr       := "corr" IDENT "." IDENT "<->" IDENT "." IDENT ";"
    tgd        := "tgd" (STRING | IDENT) "{" "lhs" atoms ";" "rhs" atoms ";" "}"
    atoms      := atom ("," atom)*
    atom       := IDENT "(" [term ("," term)*] ")"
    term       := IDENT | "var" STRING | "sk" (IDENT | STRING) "(" terms ")"
                | value | "float" STRING
    data       := "data" IDENT "{" ("row" "(" value ("," value)* ")" ";")* "}"
    value      := STRING | INT | "null" | "true" | "false"
    v}
    Node references use [~k] suffixes for copies, e.g. [Person~1]. *)

exception Error of string * int * int
(** Parse error: message, line, column — same shape as
    {!Lexer.Error}, so CLI layers can render [file:line:col: message]
    uniformly. Lexer errors surface as [Error] too. *)

val parse : string -> Ast.t
(** @raise Error on malformed input; CM/schema validation errors from
    the underlying constructors propagate as [Invalid_argument]. *)

val parse_file : string -> Ast.t
(** @raise Error on malformed input.
    @raise Sys_error when the file cannot be read. *)

val parse_result : ?file:string -> string -> (Ast.t, Smg_robust.Diag.t) result
(** {!parse} with every failure class — lexer, parser, and constructor
    validation ([Invalid_argument]) — captured as a located [Parse]
    diagnostic instead of an exception. *)
