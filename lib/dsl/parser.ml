module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping

exception Error of string * int * int

type state = { mutable toks : Lexer.located list }

let fail (l : Lexer.located) fmt =
  Printf.ksprintf (fun msg -> raise (Error (msg, l.line, l.col))) fmt

let peek st =
  match st.toks with [] -> assert false | l :: _ -> l

let next st =
  let l = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  l

let expect st tok =
  let l = next st in
  if l.Lexer.tok <> tok then
    fail l "expected %a, found %a" (fun () -> Fmt.str "%a" Lexer.pp_token) tok
      (fun () -> Fmt.str "%a" Lexer.pp_token)
      l.Lexer.tok

let ident st =
  let l = next st in
  match l.Lexer.tok with
  | Lexer.IDENT s -> s
  | t -> fail l "expected an identifier, found %s" (Fmt.str "%a" Lexer.pp_token t)

let keyword st kw =
  let l = next st in
  match l.Lexer.tok with
  | Lexer.IDENT s when String.equal s kw -> ()
  | t -> fail l "expected %S, found %s" kw (Fmt.str "%a" Lexer.pp_token t)

let try_keyword st kw =
  match (peek st).Lexer.tok with
  | Lexer.IDENT s when String.equal s kw ->
      ignore (next st);
      true
  | _ -> false

(* "(" idents ")" — possibly empty, which the printer emits for e.g. a
   class with attributes but no identifier *)
let ident_list st =
  expect st Lexer.LPAREN;
  if (peek st).Lexer.tok = Lexer.RPAREN then begin
    ignore (next st);
    []
  end
  else
    let rec go acc =
      let x = ident st in
      match (peek st).Lexer.tok with
      | Lexer.COMMA ->
          ignore (next st);
          go (x :: acc)
      | _ ->
          expect st Lexer.RPAREN;
          List.rev (x :: acc)
    in
    go []

let col_type st =
  let l = next st in
  match l.Lexer.tok with
  | Lexer.IDENT "string" -> Schema.TString
  | Lexer.IDENT "int" -> Schema.TInt
  | Lexer.IDENT "float" -> Schema.TFloat
  | Lexer.IDENT "bool" -> Schema.TBool
  | t -> fail l "expected a column type, found %s" (Fmt.str "%a" Lexer.pp_token t)

(* "(" INT ".." (INT | "*") ")" *)
let cardinality st =
  expect st Lexer.LPAREN;
  let l = next st in
  let cmin =
    match l.Lexer.tok with
    | Lexer.INT k -> k
    | t -> fail l "expected a lower bound, found %s" (Fmt.str "%a" Lexer.pp_token t)
  in
  expect st Lexer.DDOT;
  let l = next st in
  let cmax =
    match l.Lexer.tok with
    | Lexer.INT k -> Some k
    | Lexer.STAR -> None
    | t -> fail l "expected an upper bound, found %s" (Fmt.str "%a" Lexer.pp_token t)
  in
  expect st Lexer.RPAREN;
  Cardinality.make cmin cmax

(* node reference: IDENT with optional ~k already folded into the ident
   by the lexer's ident charset *)
let noderef st =
  let l = peek st in
  let s = ident st in
  match String.index_opt s '~' with
  | None -> Stree.nref s
  | Some i ->
      let cls = String.sub s 0 i in
      let copy =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> fail l "bad copy index in %s" s
      in
      Stree.nref ~copy cls

(* ---- schema ----- *)

let parse_table st =
  let name = ident st in
  expect st Lexer.LBRACE;
  let cols = ref [] and key = ref [] in
  let rec go () =
    if try_keyword st "col" then begin
      let c = ident st in
      expect st Lexer.COLON;
      let ty = col_type st in
      expect st Lexer.SEMI;
      cols := (c, ty) :: !cols;
      go ()
    end
    else if try_keyword st "key" then begin
      key := ident_list st;
      expect st Lexer.SEMI;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  Schema.table ~key:!key name (List.rev !cols)

let parse_ric st =
  let name = ident st in
  expect st Lexer.COLON;
  let from_t = ident st in
  let from_c = ident_list st in
  expect st Lexer.ARROW;
  let to_t = ident st in
  let to_c = ident_list st in
  expect st Lexer.SEMI;
  Schema.ric ~name ~from_:(from_t, from_c) ~to_:(to_t, to_c)

let parse_schema st =
  let name = ident st in
  expect st Lexer.LBRACE;
  let tables = ref [] and rics = ref [] in
  let rec go () =
    if try_keyword st "table" then begin
      tables := parse_table st :: !tables;
      go ()
    end
    else if try_keyword st "ric" then begin
      rics := parse_ric st :: !rics;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  Schema.make ~name (List.rev !tables) (List.rev !rics)

(* ---- cm ----- *)

let parse_class st =
  let name = ident st in
  expect st Lexer.LBRACE;
  let attrs = ref [] and id = ref [] in
  let rec go () =
    if try_keyword st "attrs" then begin
      attrs := ident_list st;
      expect st Lexer.SEMI;
      go ()
    end
    else if try_keyword st "id" then begin
      id := ident_list st;
      expect st Lexer.SEMI;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  Cml.cls ~id:!id name !attrs

let parse_rel ~kind st =
  let name = ident st in
  expect st Lexer.COLON;
  let src = ident st in
  let card_dst = cardinality st in
  expect st Lexer.DASHDASH;
  let card_src = cardinality st in
  let dst = ident st in
  expect st Lexer.SEMI;
  Cml.rel ~kind name ~src ~dst ~card:(card_dst, card_src)

let parse_reified st =
  let name = ident st in
  let kind = if try_keyword st "partof" then Cml.PartOf else Cml.Ordinary in
  expect st Lexer.LBRACE;
  let roles = ref [] and attrs = ref [] in
  let rec go () =
    if try_keyword st "role" then begin
      let role = ident st in
      expect st Lexer.COLON;
      let filler = ident st in
      let card = cardinality st in
      expect st Lexer.SEMI;
      roles := (role, filler, card) :: !roles;
      go ()
    end
    else if try_keyword st "attrs" then begin
      attrs := ident_list st;
      expect st Lexer.SEMI;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  Cml.reified ~kind ~attrs:!attrs name (List.rev !roles)

let parse_cm st =
  let name = ident st in
  expect st Lexer.LBRACE;
  let classes = ref []
  and binaries = ref []
  and reified = ref []
  and isas = ref []
  and disjointness = ref []
  and covers = ref [] in
  let rec go () =
    if try_keyword st "class" then begin
      classes := parse_class st :: !classes;
      go ()
    end
    else if try_keyword st "rel" then begin
      binaries := parse_rel ~kind:Cml.Ordinary st :: !binaries;
      go ()
    end
    else if try_keyword st "partof" then begin
      binaries := parse_rel ~kind:Cml.PartOf st :: !binaries;
      go ()
    end
    else if try_keyword st "reified" then begin
      reified := parse_reified st :: !reified;
      go ()
    end
    else if try_keyword st "isa" then begin
      let sub = ident st in
      expect st Lexer.LT;
      let super = ident st in
      expect st Lexer.SEMI;
      isas := { Cml.sub; super } :: !isas;
      go ()
    end
    else if try_keyword st "disjoint" then begin
      disjointness := ident_list st :: !disjointness;
      expect st Lexer.SEMI;
      go ()
    end
    else if try_keyword st "cover" then begin
      let sup = ident st in
      expect st Lexer.EQ;
      let subs = ident_list st in
      expect st Lexer.SEMI;
      covers := (sup, subs) :: !covers;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  Cml.make ~name ~binaries:(List.rev !binaries) ~reified:(List.rev !reified)
    ~isas:(List.rev !isas)
    ~disjointness:(List.rev !disjointness)
    ~covers:(List.rev !covers) (List.rev !classes)

(* ---- semantics ----- *)

let parse_semantics st =
  let table = ident st in
  expect st Lexer.LBRACE;
  let nodes = ref []
  and anchor = ref None
  and edges = ref []
  and cols = ref []
  and ids = ref [] in
  let rec go () =
    if try_keyword st "node" then begin
      nodes := noderef st :: !nodes;
      expect st Lexer.SEMI;
      go ()
    end
    else if try_keyword st "anchor" then begin
      anchor := Some (noderef st);
      expect st Lexer.SEMI;
      go ()
    end
    else if try_keyword st "edge" then begin
      let src = noderef st in
      expect st Lexer.DASH;
      let kind =
        if try_keyword st "rel" then Stree.SRel (ident st)
        else if try_keyword st "role" then Stree.SRole (ident st)
        else begin
          keyword st "isa";
          Stree.SIsa
        end
      in
      expect st Lexer.ARROW;
      let dst = noderef st in
      expect st Lexer.SEMI;
      edges := { Stree.se_src = src; se_kind = kind; se_dst = dst } :: !edges;
      go ()
    end
    else if try_keyword st "col" then begin
      let c = ident st in
      expect st Lexer.ARROW;
      let node = noderef st in
      expect st Lexer.DOT;
      let attr = ident st in
      expect st Lexer.SEMI;
      cols := (c, node, attr) :: !cols;
      go ()
    end
    else if try_keyword st "id" then begin
      let node = noderef st in
      let idc = ident_list st in
      expect st Lexer.SEMI;
      ids := (node, idc) :: !ids;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  {
    Ast.sem_table = table;
    sem_stree =
      Stree.make ~table ?anchor:!anchor ~edges:(List.rev !edges)
        ~cols:(List.rev !cols) ~ids:(List.rev !ids) (List.rev !nodes);
  }

(* ---- data ----- *)

let parse_value st =
  let l = next st in
  match l.Lexer.tok with
  | Lexer.STRING s -> Smg_relational.Value.VString s
  | Lexer.INT k -> Smg_relational.Value.VInt k
  | Lexer.IDENT "null" -> Smg_relational.Value.fresh_null ()
  | Lexer.IDENT "true" -> Smg_relational.Value.VBool true
  | Lexer.IDENT "false" -> Smg_relational.Value.VBool false
  | Lexer.IDENT "float" -> (
      let l2 = next st in
      match l2.Lexer.tok with
      | Lexer.STRING s -> (
          match float_of_string_opt s with
          | Some f -> Smg_relational.Value.VFloat f
          | None -> fail l2 "bad float literal %S" s)
      | t ->
          fail l2 "expected a float string, found %s"
            (Fmt.str "%a" Lexer.pp_token t))
  | t -> fail l "expected a value literal, found %s" (Fmt.str "%a" Lexer.pp_token t)

let parse_data st =
  let table = ident st in
  expect st Lexer.LBRACE;
  let rows = ref [] in
  let rec go () =
    if try_keyword st "row" then begin
      expect st Lexer.LPAREN;
      let rec vals acc =
        let v = parse_value st in
        match (peek st).Lexer.tok with
        | Lexer.COMMA ->
            ignore (next st);
            vals (v :: acc)
        | _ ->
            expect st Lexer.RPAREN;
            List.rev (v :: acc)
      in
      let row = vals [] in
      expect st Lexer.SEMI;
      rows := row :: !rows;
      go ()
    end
    else expect st Lexer.RBRACE
  in
  go ();
  (table, List.rev !rows)

(* ---- tgd ----- *)

(* Terms of a dependency atom. Variables are bare identifiers (or
   [var "…"] when the name is not lexable — composition suffixes
   variables with characters outside the identifier charset); Skolem
   applications are spelled [sk f(…)] and lowered back to the
   [sk!f!args] variable encoding shared by the executors; constants
   are value literals, with [float "…"] for floats (the lexer has no
   float token). *)
let rec parse_term st : Smg_cq.Sotgd.term =
  let module Sotgd = Smg_cq.Sotgd in
  let l = next st in
  match l.Lexer.tok with
  | Lexer.STRING s -> Sotgd.TCst (Smg_relational.Value.VString s)
  | Lexer.INT k -> Sotgd.TCst (Smg_relational.Value.VInt k)
  | Lexer.IDENT "null" -> Sotgd.TCst (Smg_relational.Value.fresh_null ())
  | Lexer.IDENT "true" -> Sotgd.TCst (Smg_relational.Value.VBool true)
  | Lexer.IDENT "false" -> Sotgd.TCst (Smg_relational.Value.VBool false)
  | Lexer.IDENT "float" -> (
      let l2 = next st in
      match l2.Lexer.tok with
      | Lexer.STRING s -> (
          match float_of_string_opt s with
          | Some f -> Sotgd.TCst (Smg_relational.Value.VFloat f)
          | None -> fail l2 "bad float literal %S" s)
      | t -> fail l2 "expected a float string, found %s" (Fmt.str "%a" Lexer.pp_token t))
  | Lexer.IDENT "var" -> (
      let l2 = next st in
      match l2.Lexer.tok with
      | Lexer.STRING s -> Sotgd.TVar s
      | t -> fail l2 "expected a variable string, found %s" (Fmt.str "%a" Lexer.pp_token t))
  | Lexer.IDENT "sk" ->
      let l2 = next st in
      let f =
        match l2.Lexer.tok with
        | Lexer.IDENT f | Lexer.STRING f -> f
        | t ->
            fail l2 "expected a Skolem function name, found %s"
              (Fmt.str "%a" Lexer.pp_token t)
      in
      Sotgd.TApp (f, parse_term_list st)
  | Lexer.IDENT x -> Sotgd.TVar x
  | t -> fail l "expected a term, found %s" (Fmt.str "%a" Lexer.pp_token t)

and parse_term_list st =
  expect st Lexer.LPAREN;
  if (peek st).Lexer.tok = Lexer.RPAREN then begin
    ignore (next st);
    []
  end
  else
    let rec go acc =
      let t = parse_term st in
      match (peek st).Lexer.tok with
      | Lexer.COMMA ->
          ignore (next st);
          go (t :: acc)
      | _ ->
          expect st Lexer.RPAREN;
          List.rev (t :: acc)
    in
    go []

let parse_dep_atom st =
  let pred = ident st in
  let terms = parse_term_list st in
  Smg_cq.Atom.atom pred (List.map Smg_cq.Sotgd.atom_term_of_term terms)

(* atom, atom, … ";" *)
let parse_atom_list st =
  let rec go acc =
    let a = parse_dep_atom st in
    match (peek st).Lexer.tok with
    | Lexer.COMMA ->
        ignore (next st);
        go (a :: acc)
    | _ ->
        expect st Lexer.SEMI;
        List.rev (a :: acc)
  in
  go []

let parse_tgd st =
  let l = next st in
  let name =
    match l.Lexer.tok with
    | Lexer.STRING s -> s
    | Lexer.IDENT s -> s
    | t -> fail l "expected a tgd name, found %s" (Fmt.str "%a" Lexer.pp_token t)
  in
  expect st Lexer.LBRACE;
  keyword st "lhs";
  let lhs = parse_atom_list st in
  keyword st "rhs";
  let rhs = parse_atom_list st in
  expect st Lexer.RBRACE;
  Smg_cq.Dependency.tgd ~name ~lhs rhs

(* ---- corr ----- *)

let parse_corr st =
  let t1 = ident st in
  expect st Lexer.DOT;
  let c1 = ident st in
  expect st Lexer.BIDIR;
  let t2 = ident st in
  expect st Lexer.DOT;
  let c2 = ident st in
  expect st Lexer.SEMI;
  Mapping.corr ~src:(t1, c1) ~tgt:(t2, c2)

(* ---- document ----- *)

let parse src =
  (* tokenization is eager, so lift lexer errors into [Error] here — the
     callers then have a single located exception to handle *)
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col))
  in
  let st = { toks } in
  let doc = ref Ast.empty in
  let rec go () =
    let l = peek st in
    match l.Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.IDENT "schema" ->
        ignore (next st);
        doc := { !doc with Ast.doc_schemas = !doc.Ast.doc_schemas @ [ parse_schema st ] };
        go ()
    | Lexer.IDENT "cm" ->
        ignore (next st);
        doc := { !doc with Ast.doc_cms = !doc.Ast.doc_cms @ [ parse_cm st ] };
        go ()
    | Lexer.IDENT "semantics" ->
        ignore (next st);
        doc :=
          { !doc with Ast.doc_semantics = !doc.Ast.doc_semantics @ [ parse_semantics st ] };
        go ()
    | Lexer.IDENT "corr" ->
        ignore (next st);
        doc := { !doc with Ast.doc_corrs = !doc.Ast.doc_corrs @ [ parse_corr st ] };
        go ()
    | Lexer.IDENT "tgd" ->
        ignore (next st);
        doc := { !doc with Ast.doc_tgds = !doc.Ast.doc_tgds @ [ parse_tgd st ] };
        go ()
    | Lexer.IDENT "data" ->
        ignore (next st);
        doc := { !doc with Ast.doc_data = !doc.Ast.doc_data @ [ parse_data st ] };
        go ()
    | t ->
        fail l "expected a top-level declaration, found %s"
          (Fmt.str "%a" Lexer.pp_token t)
  in
  (try go ()
   with Lexer.Error (msg, line, col) -> raise (Error (msg, line, col)));
  !doc

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

(* Result-typed front door: every failure class a malformed scenario can
   produce becomes a located Parse diagnostic. *)
let parse_result ?file src =
  let module Diag = Smg_robust.Diag in
  match parse src with
  | doc -> Ok doc
  | exception Error (msg, line, col) ->
      Error (Diag.v ~loc:(Diag.loc ?file ~line ~col ()) Diag.Error Diag.Parse msg)
  | exception Lexer.Error (msg, line, col) ->
      Error (Diag.v ~loc:(Diag.loc ?file ~line ~col ()) Diag.Error Diag.Parse msg)
  | exception Invalid_argument msg ->
      Error (Diag.v ?subject:file Diag.Error Diag.Parse msg)
