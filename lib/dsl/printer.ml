module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping

let pp_idents ppf xs =
  Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) xs

let pp_col_type ppf = function
  | Schema.TString -> Fmt.string ppf "string"
  | Schema.TInt -> Fmt.string ppf "int"
  | Schema.TFloat -> Fmt.string ppf "float"
  | Schema.TBool -> Fmt.string ppf "bool"

let pp_table ppf (t : Schema.table) =
  Fmt.pf ppf "@[<v2>table %s {@,%a%a@]@,}" t.Schema.tbl_name
    (Fmt.list ~sep:Fmt.cut (fun ppf (c : Schema.column) ->
         Fmt.pf ppf "col %s : %a;" c.Schema.col_name pp_col_type
           c.Schema.col_type))
    t.Schema.columns
    (fun ppf key ->
      match key with
      | [] -> ()
      | _ -> Fmt.pf ppf "@,key %a;" pp_idents key)
    t.Schema.key

let pp_ric ppf (r : Schema.ric) =
  Fmt.pf ppf "ric %s : %s%a -> %s%a;" r.Schema.ric_name r.Schema.from_table
    pp_idents r.Schema.from_cols r.Schema.to_table pp_idents r.Schema.to_cols

let pp_schema ppf (s : Schema.t) =
  Fmt.pf ppf "@[<v2>schema %s {@,%a%a@]@,}" s.Schema.schema_name
    (Fmt.list ~sep:Fmt.cut pp_table)
    s.Schema.tables
    (fun ppf rics ->
      match rics with
      | [] -> ()
      | _ -> Fmt.pf ppf "@,%a" (Fmt.list ~sep:Fmt.cut pp_ric) rics)
    s.Schema.rics

let pp_card ppf (c : Cardinality.t) =
  match c.Cardinality.cmax with
  | None -> Fmt.pf ppf "(%d..*)" c.Cardinality.cmin
  | Some m -> Fmt.pf ppf "(%d..%d)" c.Cardinality.cmin m

let pp_class ppf (c : Cml.class_decl) =
  Fmt.pf ppf "@[<v2>class %s {" c.Cml.class_name;
  if c.Cml.attributes <> [] then
    Fmt.pf ppf "@,attrs %a;" pp_idents c.Cml.attributes;
  if c.Cml.identifier <> [] then
    Fmt.pf ppf "@,id %a;" pp_idents c.Cml.identifier;
  Fmt.pf ppf "@]@,}"

let pp_rel ppf (r : Cml.binary_rel) =
  let kw = match r.Cml.rel_kind with Cml.PartOf -> "partof" | Cml.Ordinary -> "rel" in
  Fmt.pf ppf "%s %s : %s %a -- %a %s;" kw r.Cml.rel_name r.Cml.rel_src pp_card
    r.Cml.card_dst pp_card r.Cml.card_src r.Cml.rel_dst

let pp_reified ppf (r : Cml.reified_rel) =
  Fmt.pf ppf "@[<v2>reified %s%s {" r.Cml.rr_name
    (match r.Cml.rr_kind with Cml.PartOf -> " partof" | Cml.Ordinary -> "");
  List.iter
    (fun (ro : Cml.role) ->
      Fmt.pf ppf "@,role %s : %s %a;" ro.Cml.role_name ro.Cml.filler pp_card
        ro.Cml.card_inv)
    r.Cml.roles;
  if r.Cml.rr_attributes <> [] then
    Fmt.pf ppf "@,attrs %a;" pp_idents r.Cml.rr_attributes;
  Fmt.pf ppf "@]@,}"

let pp_cm ppf (cm : Cml.t) =
  Fmt.pf ppf "@[<v2>cm %s {" cm.Cml.cm_name;
  List.iter (fun c -> Fmt.pf ppf "@,%a" pp_class c) cm.Cml.classes;
  List.iter (fun r -> Fmt.pf ppf "@,%a" pp_rel r) cm.Cml.binaries;
  List.iter (fun r -> Fmt.pf ppf "@,%a" pp_reified r) cm.Cml.reified;
  List.iter
    (fun (i : Cml.isa) -> Fmt.pf ppf "@,isa %s < %s;" i.Cml.sub i.Cml.super)
    cm.Cml.isas;
  List.iter
    (fun group -> Fmt.pf ppf "@,disjoint %a;" pp_idents group)
    cm.Cml.disjointness;
  List.iter
    (fun (sup, subs) -> Fmt.pf ppf "@,cover %s = %a;" sup pp_idents subs)
    cm.Cml.covers;
  Fmt.pf ppf "@]@,}"

let pp_noderef ppf (n : Stree.node_ref) =
  if n.Stree.nr_copy = 0 then Fmt.string ppf n.Stree.nr_class
  else Fmt.pf ppf "%s~%d" n.Stree.nr_class n.Stree.nr_copy

let pp_semantics ppf (b : Ast.semantics_block) =
  let st = b.Ast.sem_stree in
  Fmt.pf ppf "@[<v2>semantics %s {" b.Ast.sem_table;
  List.iter (fun n -> Fmt.pf ppf "@,node %a;" pp_noderef n) st.Stree.st_nodes;
  (match st.Stree.st_anchor with
  | Some a -> Fmt.pf ppf "@,anchor %a;" pp_noderef a
  | None -> ());
  List.iter
    (fun (e : Stree.sedge) ->
      let kind =
        match e.Stree.se_kind with
        | Stree.SRel r -> "rel " ^ r
        | Stree.SRole r -> "role " ^ r
        | Stree.SIsa -> "isa"
      in
      Fmt.pf ppf "@,edge %a -%s-> %a;" pp_noderef e.Stree.se_src kind
        pp_noderef e.Stree.se_dst)
    st.Stree.st_edges;
  List.iter
    (fun (c, n, a) -> Fmt.pf ppf "@,col %s -> %a.%s;" c pp_noderef n a)
    st.Stree.col_map;
  List.iter
    (fun (n, cols) -> Fmt.pf ppf "@,id %a %a;" pp_noderef n pp_idents cols)
    st.Stree.id_map;
  Fmt.pf ppf "@]@,}"

let pp_string_lit ppf s =
  Fmt.pf ppf "\"%s\""
    (String.concat ""
       (List.map
          (fun c ->
            if c = '"' || c = '\\' then "\\" ^ String.make 1 c
            else String.make 1 c)
          (List.init (String.length s) (String.get s))))

let pp_value ppf (v : Smg_relational.Value.t) =
  match v with
  | Smg_relational.Value.VString s -> pp_string_lit ppf s
  | Smg_relational.Value.VInt k -> Fmt.int ppf k
  | Smg_relational.Value.VBool b -> Fmt.bool ppf b
  | Smg_relational.Value.VFloat f ->
      (* hex float in the [float "…"] spelling: the lexer has no float
         token, and %h round-trips exactly *)
      Fmt.pf ppf "float \"%h\"" f
  | Smg_relational.Value.VNull _ -> Fmt.string ppf "null"

let pp_data ppf (table, rows) =
  Fmt.pf ppf "@[<v2>data %s {" table;
  List.iter
    (fun row ->
      Fmt.pf ppf "@,row (%a);" (Fmt.list ~sep:(Fmt.any ", ") pp_value) row)
    rows;
  Fmt.pf ppf "@]@,}"

(* ---- tgd blocks ----- *)

let term_keywords = [ "var"; "sk"; "null"; "true"; "false"; "float" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '~'

(* Would the lexer read this back as one identifier token (and the term
   parser not mistake it for a keyword)? Composition suffixes variables
   with [!]/[?], which need the [var "…"] escape hatch. *)
let lexable_ident s =
  String.length s > 0
  && is_ident_start s.[0]
  && String.for_all is_ident_char s
  && not (List.mem s term_keywords)

let rec pp_dep_term ppf (t : Smg_cq.Sotgd.term) =
  match t with
  | Smg_cq.Sotgd.TVar v ->
      if lexable_ident v then Fmt.string ppf v
      else Fmt.pf ppf "var %a" pp_string_lit v
  | Smg_cq.Sotgd.TCst (Smg_relational.Value.VFloat f) ->
      (* hex float: exact round-trip, and the lexer has no float token *)
      Fmt.pf ppf "float \"%h\"" f
  | Smg_cq.Sotgd.TCst v -> pp_value ppf v
  | Smg_cq.Sotgd.TApp (f, args) ->
      let pp_f ppf f =
        if lexable_ident f then Fmt.string ppf f else pp_string_lit ppf f
      in
      Fmt.pf ppf "sk %a(%a)" pp_f f
        (Fmt.list ~sep:(Fmt.any ", ") pp_dep_term)
        args

let pp_dep_atom ppf (a : Smg_cq.Atom.t) =
  Fmt.pf ppf "%s(%a)" a.Smg_cq.Atom.pred
    (Fmt.list ~sep:(Fmt.any ", ") pp_dep_term)
    (List.map Smg_cq.Sotgd.term_of_atom_term a.Smg_cq.Atom.args)

let pp_tgd ppf (t : Smg_cq.Dependency.tgd) =
  Fmt.pf ppf "@[<v2>tgd %a {@,lhs %a;@,rhs %a;@]@,}" pp_string_lit
    t.Smg_cq.Dependency.tgd_name
    (Fmt.list ~sep:(Fmt.any ", ") pp_dep_atom)
    t.Smg_cq.Dependency.lhs
    (Fmt.list ~sep:(Fmt.any ", ") pp_dep_atom)
    t.Smg_cq.Dependency.rhs

let pp_corr ppf (c : Mapping.corr) =
  let st, sc = c.Mapping.c_src and tt, tc = c.Mapping.c_tgt in
  Fmt.pf ppf "corr %s.%s <-> %s.%s;" st sc tt tc

let pp ppf (d : Ast.t) =
  Fmt.pf ppf "@[<v>";
  List.iter (fun s -> Fmt.pf ppf "%a@,@," pp_schema s) d.Ast.doc_schemas;
  List.iter (fun c -> Fmt.pf ppf "%a@,@," pp_cm c) d.Ast.doc_cms;
  List.iter (fun b -> Fmt.pf ppf "%a@,@," pp_semantics b) d.Ast.doc_semantics;
  List.iter (fun c -> Fmt.pf ppf "%a@," pp_corr c) d.Ast.doc_corrs;
  List.iter (fun t -> Fmt.pf ppf "%a@,@," pp_tgd t) d.Ast.doc_tgds;
  List.iter (fun b -> Fmt.pf ppf "%a@,@," pp_data b) d.Ast.doc_data;
  Fmt.pf ppf "@]"

let to_string d = Fmt.str "%a" pp d
