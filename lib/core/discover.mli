(** The semantic mapping-discovery algorithm (§3 of the paper).

    Given a source and a target side — each a relational schema, a CM
    graph, and per-table s-trees — and a set of column correspondences,
    the algorithm:

    + lifts the correspondences to marked class nodes in both CM graphs;
    + determines target conceptual subgraphs (CSGs): the s-tree of a
      single covering table (Case A) or minimal functional trees
      connecting the marked target nodes (Case B);
    + finds "semantically similar" source CSGs: minimal functional
      Steiner trees rooted at the node corresponding to the target
      anchor (Case A.1), minimal functional trees over all roots
      (Case A.2), minimally-lossy non-functional paths for many-many
      target connections (§3.3 / Example 3.2), with partial coverage
      and correspondence splitting as a fallback;
    + filters pairs by disjointness consistency, cardinality-shape
      compatibility, and [partOf] category (Example 1.3);
    + translates both CSGs into table-level queries through the s-tree
      views (§3.4) and emits ranked GLAV mapping candidates. *)

type side = {
  schema : Smg_relational.Schema.t;
  cmg : Smg_cm.Cm_graph.t;
  strees : Smg_semantics.Stree.t list;
}

val side :
  schema:Smg_relational.Schema.t ->
  cm:Smg_cm.Cml.t ->
  Smg_semantics.Stree.t list ->
  side
(** Compiles the CM and validates every s-tree against it and its table.
    @raise Invalid_argument when a table lacks an s-tree or validation
    fails. *)

type options = {
  max_path_len : int;      (** bound for non-functional path search *)
  strict_partof : bool;    (** drop (rather than downgrade) partOf mismatches *)
  allow_lossy : bool;      (** Wald–Sorenson fallback through non-functional edges *)
  max_candidates : int;
  include_partial : bool;  (** emit split-coverage candidates when full coverage fails *)
  use_partof : bool;       (** ablation: partOf category filtering at all *)
  use_shapes : bool;       (** ablation: cardinality-shape compatibility *)
  use_preselection : bool; (** ablation: pre-selected s-tree edges are free *)
  outer_on_optional : bool;
      (** §6 future work: flag mappings whose source connection traverses
          a minimum-cardinality-0 edge as outer joins *)
}

val default_options : options

val discover :
  ?options:options ->
  ?dedup:bool ->
  ?pool:Smg_parallel.Pool.t ->
  source:side ->
  target:side ->
  corrs:Smg_cq.Mapping.corr list ->
  unit ->
  Smg_cq.Mapping.t list
(** Ranked candidate mappings (best first), deduplicated with
    {!Smg_cq.Mapping.same}. With [~dedup:true] (default false) a
    verification pass ({!Smg_verify.Mapverify.dedup}) additionally
    collapses logically equivalent candidates — keeping the best-ranked
    representative of each class, renamed ["semantic#rank"] and
    annotated via provenance — and marks candidates strictly implied by
    a better-ranked one as subsumed.

    Legacy entry point: unbudgeted, and faults (bad s-tree, unliftable
    correspondence) propagate as exceptions. Prefer {!discover_bounded}
    for robust pipelines.

    With a [pool], the per-target-CSG searches and the dedup pass's
    implication checks fan out across its domains. The ranked output is
    byte-identical for every domain count (including 1): tasks are keyed
    by CSG rank and merged in rank order, and each task receives an
    equal fuel share via {!Smg_robust.Budget.split}, so fuel accounting
    never depends on the steal schedule. (A pooled run may differ from a
    pool-less run of the same inputs under a fuel budget — the fuel is
    pre-split rather than consumed first-come-first-served.) *)

type outcome = {
  o_mappings : Smg_cq.Mapping.t list;
      (** ranked candidates; degraded ones are flagged via
          {!Smg_cq.Mapping.is_approximate} *)
  o_diags : Smg_robust.Diag.t list;
      (** per-stage diagnostics, in emission order *)
  o_exact : bool;
      (** [false] when any search exhausted the budget and fell back to
          an approximation, or the run ended on an exhausted budget *)
}

val discover_bounded :
  ?options:options ->
  ?dedup:bool ->
  ?budget:Smg_robust.Budget.t ->
  ?pool:Smg_parallel.Pool.t ->
  source:side ->
  target:side ->
  corrs:Smg_cq.Mapping.corr list ->
  unit ->
  outcome
(** Resource-bounded, never-raising {!discover}. The budget's fuel and
    deadline are threaded through the Steiner DP, path enumeration, and
    terminal-subset shrinking; when it runs out the exact searches
    degrade to shortest-path-tree / truncated-enumeration fallbacks and
    the affected candidates are marked approximate in their provenance.
    Every correspondence and every target CSG is a fault-isolation
    domain: an exception there becomes an [Error] diagnostic plus
    partial results, never an escaped exception. *)

val lint :
  source:side ->
  target:side ->
  corrs:Smg_cq.Mapping.corr list ->
  Smg_robust.Diag.t list
(** Upfront validation pass, run without touching the search: every
    s-tree is checked against its CM and table ([Validate] errors),
    tables without semantics get a warning, and each correspondence is
    test-lifted ([Validate] error when it cannot be). An empty result
    means {!discover} will not trip over its inputs. *)
