module Digraph = Smg_graph.Digraph
module Steiner = Smg_graph.Steiner
module Paths = Smg_graph.Paths
module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Cm_graph = Smg_cm.Cm_graph
module Stree = Smg_semantics.Stree
module Encode = Smg_semantics.Encode
module Rewrite = Smg_semantics.Rewrite
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query
module Mapping = Smg_cq.Mapping
module Budget = Smg_robust.Budget
module Diag = Smg_robust.Diag
module Pool = Smg_parallel.Pool

let log = Logs.Src.create "smg.discover" ~doc:"semantic mapping discovery"

module Log = (val Logs.src_log log)

type side = {
  schema : Schema.t;
  cmg : Cm_graph.t;
  strees : Stree.t list;
}

let stree_of side table =
  match
    List.find_opt (fun st -> String.equal st.Stree.st_table table) side.strees
  with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "no s-tree for table %s" table)

let side ~schema ~cm strees =
  let cmg = Cm_graph.compile cm in
  let s = { schema; cmg; strees } in
  List.iter
    (fun (t : Schema.table) ->
      let st = stree_of s t.Schema.tbl_name in
      Stree.validate cmg t st)
    schema.Schema.tables;
  s

type options = {
  max_path_len : int;
  strict_partof : bool;
  allow_lossy : bool;
  max_candidates : int;
  include_partial : bool;
  use_partof : bool;
  use_shapes : bool;
  use_preselection : bool;
  outer_on_optional : bool;
}

let default_options =
  {
    max_path_len = 8;
    strict_partof = false;
    allow_lossy = true;
    max_candidates = 50;
    include_partial = true;
    use_partof = true;
    use_shapes = true;
    use_preselection = true;
    outer_on_optional = false;
  }

(* ---- lifting correspondences ------------------------------------------ *)

type lifted = {
  l_corr : Mapping.corr;
  l_snode : int;
  l_sattr : string;
  l_tnode : int;
  l_tattr : string;
}

(* Lift one correspondence to marked class nodes; the failure (unknown
   table, unmapped column) becomes data so callers choose between
   raising (legacy [lift]) and per-correspondence isolation. *)
let lift1 source target (c : Mapping.corr) =
  let s_table, s_col = c.Mapping.c_src in
  let t_table, t_col = c.Mapping.c_tgt in
  let find sd table col =
    match
      List.find_opt
        (fun st -> String.equal st.Stree.st_table table)
        sd.strees
    with
    | None -> Error (Printf.sprintf "correspondence: no s-tree for table %s" table)
    | Some st -> (
        match Stree.node_of_column st col with
        | Some (n, a) -> (
            match Stree.graph_node sd.cmg n with
            | gn -> Ok (gn, a)
            | exception Invalid_argument m | exception Failure m -> Error m)
        | None ->
            Error
              (Printf.sprintf "correspondence: column %s.%s unmapped" table col))
  in
  match (find source s_table s_col, find target t_table t_col) with
  | Ok (l_snode, l_sattr), Ok (l_tnode, l_tattr) ->
      Ok { l_corr = c; l_snode; l_sattr; l_tnode; l_tattr }
  | Error m, _ | _, Error m -> Error m

let lift source target corrs =
  List.map
    (fun c ->
      match lift1 source target c with
      | Ok l -> l
      | Error msg -> invalid_arg msg)
    corrs

let uniq xs = List.sort_uniq compare xs

(* ---- subgraph traversal ------------------------------------------------ *)

(* Traversal adjacency within an edge-id set: from each endpoint, an edge
   can be walked forward (its own id) or backward (its inverse's id). *)
let sub_adj cmg edge_ids =
  let g = Cm_graph.graph cmg in
  let adj = Hashtbl.create 16 in
  let add v entry =
    let cur = Option.value ~default:[] (Hashtbl.find_opt adj v) in
    Hashtbl.replace adj v (entry :: cur)
  in
  List.iter
    (fun id ->
      let e = Digraph.edge g id in
      add e.Digraph.src (id, e.Digraph.dst);
      match Cm_graph.inverse_edge cmg id with
      | Some inv -> add e.Digraph.dst (inv, e.Digraph.src)
      | None -> ())
    (uniq edge_ids);
  fun v -> Option.value ~default:[] (Hashtbl.find_opt adj v)

(* Path (as traversal edge ids) between two nodes inside an edge set. *)
let tree_path cmg edge_ids a b =
  if a = b then Some []
  else begin
    let adj = sub_adj cmg edge_ids in
    let seen = Hashtbl.create 16 in
    Hashtbl.replace seen a ();
    let rec bfs frontier =
      (* frontier: (node, reversed traversal) list *)
      match frontier with
      | [] -> None
      | _ -> (
          let next =
            List.concat_map
              (fun (v, path) ->
                List.filter_map
                  (fun (id, w) ->
                    if Hashtbl.mem seen w then None
                    else begin
                      Hashtbl.replace seen w ();
                      Some (w, id :: path)
                    end)
                  (adj v))
              frontier
          in
          match List.find_opt (fun (w, _) -> w = b) next with
          | Some (_, path) -> Some (List.rev path)
          | None -> bfs next)
    in
    bfs [ (a, []) ]
  end

let subgraph_nodes cmg edge_ids extra =
  let g = Cm_graph.graph cmg in
  uniq
    (extra
    @ List.concat_map
        (fun id ->
          let e = Digraph.edge g id in
          [ e.Digraph.src; e.Digraph.dst ])
        edge_ids)

(* A node of the subgraph from which all marked nodes are reachable along
   functional traversals. *)
let functional_root cmg edge_ids ~marked ~prefer =
  let g = Cm_graph.graph cmg in
  let adj = sub_adj cmg edge_ids in
  let reaches_all r =
    let seen = Hashtbl.create 16 in
    let rec go v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        List.iter
          (fun (id, w) ->
            if Cm_graph.is_functional_edge (Digraph.edge g id).Digraph.lbl
            then go w)
          (adj v)
      end
    in
    go r;
    List.for_all (Hashtbl.mem seen) marked
  in
  let candidates =
    match prefer with
    | Some p -> p :: subgraph_nodes cmg edge_ids marked
    | None -> subgraph_nodes cmg edge_ids marked
  in
  List.find_opt reaches_all candidates

let is_partof_path cmg edge_ids =
  let g = Cm_graph.graph cmg in
  let non_isa =
    List.filter
      (fun id ->
        match (Digraph.edge g id).Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Isa | Cm_graph.IsaInv -> false
        | Cm_graph.Rel _ | Cm_graph.RelInv _ | Cm_graph.Role _
        | Cm_graph.RoleInv _ | Cm_graph.HasAttr _ ->
            true)
      edge_ids
  in
  non_isa <> []
  && List.for_all
       (fun id ->
         (Digraph.edge g id).Digraph.lbl.Cm_graph.sem = Cml.PartOf)
       non_isa

let leq_shape a b =
  let open Cardinality in
  match (a, b) with
  | OneOne, (OneOne | ManyOne | OneMany | ManyMany) -> true
  | ManyOne, (ManyOne | ManyMany) -> true
  | OneMany, (OneMany | ManyMany) -> true
  | ManyMany, ManyMany -> true
  | ManyOne, (OneOne | OneMany) -> false
  | OneMany, (OneOne | ManyOne) -> false
  | ManyMany, (OneOne | ManyOne | OneMany) -> false

(* ---- candidate conceptual subgraphs ------------------------------------ *)

type cand = {
  c_nodes : int list;
  c_edges : int list;
  c_cost : float;
  c_anchor : int option;
  c_how : string;  (* which search found it, for provenance *)
  c_approx : bool;
      (* produced after a budget exhausted: the search degraded to an
         approximation (shortest-path tree / truncated enumeration) *)
}

let cand_of_tree ?(approx = false) cmg (t : Steiner.tree) =
  {
    c_nodes = Steiner.tree_nodes (Cm_graph.graph cmg) t;
    c_edges = t.Steiner.edge_ids;
    c_cost = t.Steiner.cost;
    c_anchor = Some t.Steiner.root;
    c_how = "";
    c_approx = approx;
  }

(* The Steiner solver reconstructs one optimal tree per root, but ties
   matter (Example 1.3: chairOf and deanOf are both minimal). Enumerate
   same-cost variants as unions of tied cheapest root→terminal paths and
   keep every union whose cost ties the solver's optimum. *)
let tree_variants ?budget ?(approx = false) cmg ~cost ~terminals
    (t : Steiner.tree) =
  let graph = Cm_graph.graph cmg in
  let edge_cost id =
    Option.value ~default:infinity (cost (Digraph.edge graph id))
  in
  let path_cost (p : _ Paths.path) =
    List.fold_left (fun acc id -> acc +. edge_cost id) 0. p.Paths.edge_ids
  in
  let per_terminal =
    List.map
      (fun term ->
        Paths.best_paths ?budget graph ~src:t.Steiner.root ~dst:term ~max_len:6
          ~ok:(fun e -> cost e <> None)
          ~score:path_cost
        |> fun ps -> List.filteri (fun i _ -> i < 4) ps)
      terminals
  in
  if List.exists (fun ps -> ps = []) per_terminal then
    [ cand_of_tree ~approx cmg t ]
  else begin
    let unions =
      List.fold_left
        (fun acc ps ->
          List.concat_map
            (fun partial ->
              List.map (fun (p : _ Paths.path) ->
                  List.sort_uniq compare (partial @ p.Paths.edge_ids))
                ps)
            acc)
        [ [] ] per_terminal
      |> List.sort_uniq compare
    in
    let union_cost edges =
      List.fold_left (fun acc id -> acc +. edge_cost id) 0. edges
    in
    let tied =
      List.filter (fun es -> union_cost es <= t.Steiner.cost +. 1e-6) unions
    in
    let variants =
      List.map
        (fun es ->
          {
            c_nodes = subgraph_nodes cmg es [ t.Steiner.root ];
            c_edges = es;
            c_cost = union_cost es;
            c_anchor = Some t.Steiner.root;
            c_how = "";
            c_approx = approx;
          })
        tied
    in
    let all = cand_of_tree ~approx cmg t :: variants in
    (* dedupe by edge set *)
    List.fold_left
      (fun acc c ->
        if
          List.exists
            (fun c' -> List.sort compare c'.c_edges = List.sort compare c.c_edges)
            acc
        then acc
        else c :: acc)
      [] all
    |> List.rev
  end

let class_like_nodes cmg =
  List.filter (Cm_graph.is_class_like cmg) (Digraph.nodes (Cm_graph.graph cmg))

let preselected_pred side tables =
  let ids =
    List.concat_map
      (fun t -> Stree.graph_edge_ids side.cmg (stree_of side t))
      (uniq tables)
  in
  let tbl = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.replace tbl id ()) ids;
  fun id -> Hashtbl.mem tbl id

(* All k-subsets of a list. *)
let rec subsets k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

(* ---- the algorithm: a stage pipeline ----------------------------------- *)

type outcome = {
  o_mappings : Mapping.t list;
  o_diags : Diag.t list;
  o_exact : bool;
}

(* Run context threaded through every stage: the shared resource budget,
   the diagnostic sink, and whether any search degraded. With
   [x_collect = None] (the legacy {!discover} entry point) faults
   propagate as exceptions, exactly as before; with a collector, each
   correspondence and each target CSG is a fault-isolation domain whose
   failure yields a diagnostic and partial results instead of aborting
   the run. *)
type ctx = {
  x_budget : Budget.t;
  x_collect : Diag.collector option;
  mutable x_degraded : bool;
  x_pool : Pool.t option;
      (* when set, the per-target-CSG searches fan out across the pool's
         domains. Each task runs under its own sub-context — sub-budget
         from [Budget.split], private collector and degradation flag —
         merged back in CSG order, so the output is byte-identical for
         any domain count (including 1). *)
}

(* Per-subject containment: in collecting mode any exception a stage
   throws — bad s-tree, rewriting failure, stray [Invalid_argument] —
   becomes an [Error] diagnostic and the stage contributes nothing. *)
let isolate ctx ~subject ~empty f =
  match ctx.x_collect with
  | None -> f ()
  | Some c -> (
      try f ()
      with exn ->
        Diag.add c (Diag.of_exn ~subject Diag.Discover exn);
        empty)

let approx_note =
  "budget exhausted during tree search; candidate comes from the \
   shortest-path / truncated-enumeration fallback"

(* Stage 1: lift correspondences to marked CM-graph nodes. In collecting
   mode an unliftable correspondence is skipped with a diagnostic. *)
let stage_lift ctx source target corrs =
  match ctx.x_collect with
  | None -> lift source target corrs
  | Some c ->
      List.filter_map
        (fun corr ->
          match lift1 source target corr with
          | Ok l -> Some l
          | Error msg ->
              Diag.add c
                (Diag.errorf
                   ~subject:(Fmt.str "%a" Mapping.pp_corr corr)
                   Diag.Discover "%s (correspondence skipped)" msg);
              None)
        corrs

let discover_core ctx ~options ~dedup ~source ~target ~corrs =
  let lifted = stage_lift ctx source target corrs in
  if lifted = [] then []
  else begin
    let marked_t = uniq (List.map (fun l -> l.l_tnode) lifted) in
    let corr_tables_t =
      uniq (List.map (fun l -> fst l.l_corr.Mapping.c_tgt) lifted)
    in
    let corr_tables_s =
      uniq (List.map (fun l -> fst l.l_corr.Mapping.c_src) lifted)
    in
    let pre_t =
      if options.use_preselection then preselected_pred target corr_tables_t
      else fun _ -> false
    in
    let pre_s =
      if options.use_preselection then preselected_pred source corr_tables_s
      else fun _ -> false
    in
    let tgt_graph = Cm_graph.graph target.cmg in
    let src_graph = Cm_graph.graph source.cmg in

    (* -- stage 2: target CSGs (per-table fault isolation) -- *)
    let case_a =
      List.filter_map
        (fun tbl ->
          isolate ctx ~subject:("table " ^ tbl) ~empty:None (fun () ->
              let st = stree_of target tbl in
              let st_nodes =
                uniq (List.map (Stree.graph_node target.cmg) st.Stree.st_nodes)
              in
              if List.for_all (fun m -> List.mem m st_nodes) marked_t then
                Some
                  {
                    c_nodes = st_nodes;
                    c_edges = Stree.forward_graph_edges target.cmg st;
                    c_cost = 0.;
                    c_anchor =
                      Option.map (Stree.graph_node target.cmg) st.Stree.st_anchor;
                    c_how =
                      Printf.sprintf "Case A: target CSG is the s-tree of %s" tbl;
                    c_approx = false;
                  }
              else None))
        corr_tables_t
    in
    let tgt_csgs =
      if case_a <> [] then case_a
      else
        let cost =
          Cm_graph.steiner_cost target.cmg ~lossy:options.allow_lossy
            ~pre_selected:pre_t ()
        in
        let sol =
          Steiner.minimal_trees_bounded ~budget:ctx.x_budget tgt_graph ~cost
            ~roots:(class_like_nodes target.cmg)
            ~terminals:marked_t
        in
        if not sol.Steiner.exact then ctx.x_degraded <- true;
        sol.Steiner.trees
        |> List.map (cand_of_tree ~approx:(not sol.Steiner.exact) target.cmg)
        |> List.map (fun c ->
               { c with c_how = "Case B: target CSG is a minimal functional tree" })
    in
    Log.debug (fun m -> m "%d target CSG candidate(s)" (List.length tgt_csgs));

    (* Source-side Steiner state shared by every target CSG: the two cost
       functions are fixed for the whole run, so their all-pairs matrices
       (fuel-free, mutex-guarded) are computed once and shared — across
       CSGs sequentially, and across domains in pooled runs. *)
    let src_cost_strict =
      Cm_graph.steiner_cost source.cmg ~lossy:false ~pre_selected:pre_s ()
    in
    let src_cost_lossy =
      Cm_graph.steiner_cost source.cmg ~lossy:true ~pre_selected:pre_s ()
    in
    let src_sctx_strict = Steiner.context src_graph ~cost:src_cost_strict in
    let src_sctx_lossy = Steiner.context src_graph ~cost:src_cost_lossy in

    (* -- per-target-CSG source search -- *)
    let process_tgt ctx d2 =
      (* DP memo sessions are per task: a memo hit skips the DP's fuel
         burn, so sharing them across concurrent tasks would make fuel
         accounting depend on the steal schedule. *)
      let sess_strict = Steiner.session src_sctx_strict in
      let sess_lossy = Steiner.session src_sctx_lossy in
      let relevant = List.filter (fun l -> List.mem l.l_tnode d2.c_nodes) lifted in
      if relevant = [] || not (Cm_graph.consistent_subgraph target.cmg d2.c_edges)
      then []
      else begin
        let marked_here = uniq (List.map (fun l -> l.l_tnode) relevant) in
        let root_t =
          functional_root target.cmg d2.c_edges ~marked:marked_here
            ~prefer:d2.c_anchor
        in
        let trees ~roots ~terminals ~lossy =
          if roots = [] || terminals = [] then []
          else
            let cost = if lossy then src_cost_lossy else src_cost_strict in
            let sess = if lossy then sess_lossy else sess_strict in
            let sol =
              Steiner.minimal_trees_in ~budget:ctx.x_budget sess ~roots
                ~terminals
            in
            if not sol.Steiner.exact then ctx.x_degraded <- true;
            sol.Steiner.trees
            |> List.concat_map
                 (tree_variants ~budget:ctx.x_budget
                    ~approx:(not sol.Steiner.exact) source.cmg ~cost ~terminals)
        in
        (* Source nodes corresponding to the target root (Case A.1). *)
        let a1_roots =
          match root_t with
          | Some r when not (Cm_graph.is_reified target.cmg r) ->
              uniq
                (List.filter_map
                   (fun l -> if l.l_tnode = r then Some l.l_snode else None)
                   relevant)
          | Some _ | None -> []
        in
        (* Whether some target pair is connected non-functionally: then
           non-functional source connections are admissible (§3.3). *)
        let target_pair_shape a b =
          match tree_path target.cmg d2.c_edges a b with
          | Some p -> Some (Cm_graph.path_shape target.cmg p)
          | None -> None
        in
        let tag how = List.map (fun c -> { c with c_how = how }) in
        let search terminals =
          let functional =
            let a1 = trees ~roots:a1_roots ~terminals ~lossy:false in
            if a1 <> [] then
              tag
                "Case A.1: minimal functional tree rooted at the source \
                 counterpart of the target anchor"
                a1
            else
              tag "Case A.2: minimal functional tree (anchor has no counterpart)"
                (trees ~roots:(class_like_nodes source.cmg) ~terminals
                   ~lossy:false)
          in
          let path_based =
            match terminals with
            | [ a; b ] -> (
                (* only for many-many target connections *)
                let ta =
                  List.find_opt (fun l -> l.l_snode = a) relevant
                and tb = List.find_opt (fun l -> l.l_snode = b) relevant in
                match (ta, tb) with
                | Some la, Some lb -> (
                    match target_pair_shape la.l_tnode lb.l_tnode with
                    | Some Cardinality.ManyMany ->
                        let ok (e : Cm_graph.edge_lbl Digraph.edge) =
                          Cm_graph.is_connection_edge e.Digraph.lbl
                        in
                        let score (p : _ Paths.path) =
                          float_of_int
                            ((1000 * Cm_graph.reversals source.cmg p.Paths.edge_ids)
                            + List.length p.Paths.edge_ids)
                        in
                        let before = Budget.exhausted ctx.x_budget = None in
                        let ps =
                          Paths.best_paths ~budget:ctx.x_budget src_graph
                            ~src:a ~dst:b ~max_len:options.max_path_len ~ok
                            ~score
                        in
                        let truncated =
                          before && Budget.exhausted ctx.x_budget <> None
                        in
                        if truncated || not before then
                          ctx.x_degraded <- true;
                        ps
                        |> List.map (fun (p : _ Paths.path) ->
                               {
                                 c_nodes = uniq p.Paths.nodes;
                                 c_edges = p.Paths.edge_ids;
                                 c_cost =
                                   float_of_int (List.length p.Paths.edge_ids)
                                   +. (3.
                                      *. float_of_int
                                           (Cm_graph.reversals source.cmg
                                              p.Paths.edge_ids));
                                 c_anchor = None;
                                 c_how =
                                   Printf.sprintf
                                     "§3.3: non-functional path with %d lossy \
                                      join(s) for a many-many target \
                                      connection"
                                     (Cm_graph.reversals source.cmg
                                        p.Paths.edge_ids);
                                 c_approx =
                                   Budget.exhausted ctx.x_budget <> None;
                               })
                    | Some _ | None -> [])
                | _, _ -> [])
            | _ -> []
          in
          let base = functional @ path_based in
          if base <> [] then base
          else if options.allow_lossy then
            tag "Wald–Sorenson fallback: minimal tree through lossy edges"
              (trees ~roots:(class_like_nodes source.cmg) ~terminals
                 ~lossy:true)
          else []
        in
        let terminals_full = uniq (List.map (fun l -> l.l_snode) relevant) in
        let with_coverage =
          let full = search terminals_full in
          if full <> [] then List.map (fun d1 -> (d1, relevant)) full
          else if options.include_partial && List.length terminals_full > 1
          then begin
            (* shrink the terminal set until something connects; once the
               budget is spent, stop generating ever-smaller subsets *)
            let rec shrink k =
              if k = 0 || not (Budget.ok ctx.x_budget) then []
              else
                let results =
                  List.concat_map
                    (fun sub ->
                      List.map
                        (fun d1 ->
                          ( d1,
                            List.filter
                              (fun l -> List.mem l.l_snode sub)
                              relevant ))
                        (search sub))
                    (subsets k terminals_full)
                in
                if results <> [] then results else shrink (k - 1)
            in
            shrink (List.length terminals_full - 1)
          end
          else []
        in
        (* -- filters + translation -- *)
        List.concat_map
          (fun (d1, covered) ->
            if not (Cm_graph.consistent_subgraph source.cmg d1.c_edges) then []
            else begin
              let penalty = ref (d1.c_cost +. d2.c_cost) in
              (* §3.3: a reified target anchor prefers a reified source
                 anchor of the same arity *)
              (match (d1.c_anchor, d2.c_anchor) with
              | Some a1, Some a2 -> (
                  match
                    (Cm_graph.arity source.cmg a1, Cm_graph.arity target.cmg a2)
                  with
                  | Some k1, Some k2 when k1 <> k2 -> penalty := !penalty +. 2.
                  | _, _ -> ())
              | _, _ -> ());
              let compatible =
                let pairs =
                  List.concat_map
                    (fun (la : lifted) ->
                      List.filter_map
                        (fun (lb : lifted) ->
                          if
                            la.l_snode < lb.l_snode
                            && la.l_tnode <> lb.l_tnode
                          then Some (la, lb)
                          else None)
                        covered)
                    covered
                in
                List.for_all
                  (fun (la, lb) ->
                    match
                      ( tree_path source.cmg d1.c_edges la.l_snode lb.l_snode,
                        tree_path target.cmg d2.c_edges la.l_tnode lb.l_tnode
                      )
                    with
                    | Some sp, Some tp ->
                        let s_shape = Cm_graph.path_shape source.cmg sp in
                        let t_shape = Cm_graph.path_shape target.cmg tp in
                        if options.use_shapes && not (leq_shape s_shape t_shape)
                        then false
                        else begin
                          (if
                             options.use_partof
                             && is_partof_path target.cmg tp
                             && not (is_partof_path source.cmg sp)
                           then
                             if options.strict_partof then penalty := infinity
                             else penalty := !penalty +. 5.);
                          !penalty < infinity
                        end
                    | _, _ -> true)
                  pairs
              in
              if not compatible then []
              else begin
                let outputs_of nodes attrs =
                  List.mapi
                    (fun i (n, a) -> (n, a, Printf.sprintf "v%d" i))
                    (List.combine nodes attrs)
                in
                let src_csg =
                  {
                    Encode.csg_nodes = d1.c_nodes;
                    csg_edges = d1.c_edges;
                    csg_outputs =
                      outputs_of
                        (List.map (fun l -> l.l_snode) covered)
                        (List.map (fun l -> l.l_sattr) covered);
                    csg_anchor = d1.c_anchor;
                  }
                in
                let tgt_csg =
                  {
                    Encode.csg_nodes = d2.c_nodes;
                    csg_edges = d2.c_edges;
                    csg_outputs =
                      outputs_of
                        (List.map (fun l -> l.l_tnode) covered)
                        (List.map (fun l -> l.l_tattr) covered);
                    csg_anchor = d2.c_anchor;
                  }
                in
                let rewrites sd csg required =
                  let q = Encode.query_of_csg sd.cmg csg in
                  let strict =
                    Rewrite.rewrite ~cmg:sd.cmg ~schema:sd.schema
                      ~strees:sd.strees ~required_tables:required q
                  in
                  if strict <> [] then strict
                  else
                    (* fall back to unconstrained rewritings rather than
                       losing the candidate altogether *)
                    Rewrite.rewrite ~cmg:sd.cmg ~schema:sd.schema
                      ~strees:sd.strees q
                in
                let req_s =
                  uniq (List.map (fun l -> fst l.l_corr.Mapping.c_src) covered)
                in
                let req_t =
                  uniq (List.map (fun l -> fst l.l_corr.Mapping.c_tgt) covered)
                in
                let src_rws = rewrites source src_csg req_s in
                let tgt_rws = rewrites target tgt_csg req_t in
                (* outer-join recommendation: sibling non-disjoint classes
                   merged through ISA in the source CSG *)
                (* future-work feature (§6): a traversed source edge with
                   minimum cardinality 0 hints that the join should be an
                   outer join; opt-in via [outer_on_optional]. *)
                let optional_hint =
                  options.outer_on_optional
                  && List.exists
                       (fun id ->
                         let e = Digraph.edge src_graph id in
                         Cm_graph.is_connection_edge e.Digraph.lbl
                         && e.Digraph.lbl.Cm_graph.card.Cardinality.cmin = 0)
                       d1.c_edges
                in
                let outer =
                  let cm = Cm_graph.cm source.cmg in
                  let g = src_graph in
                  let isa_sibs =
                    List.concat_map
                      (fun id ->
                        let e = Digraph.edge g id in
                        match e.Digraph.lbl.Cm_graph.kind with
                        | Cm_graph.Isa -> [ (e.Digraph.dst, e.Digraph.src) ]
                        | Cm_graph.IsaInv -> [ (e.Digraph.src, e.Digraph.dst) ]
                        | Cm_graph.Rel _ | Cm_graph.RelInv _ | Cm_graph.Role _
                        | Cm_graph.RoleInv _ | Cm_graph.HasAttr _ ->
                            [])
                      d1.c_edges
                  in
                  List.exists
                    (fun (sup, sub1) ->
                      List.exists
                        (fun (sup', sub2) ->
                          sup = sup' && sub1 <> sub2
                          && not
                               (Cml.disjoint cm
                                  (Cm_graph.node_name source.cmg sub1)
                                  (Cm_graph.node_name source.cmg sub2)))
                        isa_sibs)
                    isa_sibs
                in
                let outer = outer || optional_hint in
                if Sys.getenv_opt "SMG_DEBUG_DISCOVER" <> None then begin
                  Fmt.epr "[discover] D1 edges:@.";
                  List.iter
                    (fun id -> Fmt.epr "  %a@." (Cm_graph.pp_edge source.cmg) id)
                    d1.c_edges;
                  Fmt.epr "[discover] D2 edges:@.";
                  List.iter
                    (fun id -> Fmt.epr "  %a@." (Cm_graph.pp_edge target.cmg) id)
                    d2.c_edges;
                  Fmt.epr "[discover] src rewritings: %d, tgt rewritings: %d@."
                    (List.length src_rws) (List.length tgt_rws)
                end;
                List.concat_map
                  (fun (srw : Rewrite.result) ->
                    List.map
                      (fun (trw : Rewrite.result) ->
                        let size =
                          List.length srw.rw_query.Query.body
                          + List.length trw.rw_query.Query.body
                        in
                        let uncovered =
                          List.length lifted - List.length covered
                        in
                        let describe cmg ids =
                          String.concat ", "
                            (List.map
                               (fun id -> Fmt.str "%a" (Cm_graph.pp_edge cmg) id)
                               ids)
                        in
                        let provenance =
                          (if d1.c_how = "" then [] else [ d1.c_how ])
                          @ (if d2.c_how = "" then [] else [ d2.c_how ])
                          @ [
                              (match d1.c_edges with
                              | [] ->
                                  "source connection: a single concept"
                              | es ->
                                  "source connection: "
                                  ^ describe source.cmg es);
                              (match d2.c_edges with
                              | [] -> "target connection: a single concept"
                              | es ->
                                  "target connection: "
                                  ^ describe target.cmg es);
                            ]
                          @ (if outer then
                               [
                                 "outer join recommended: merged sibling \
                                  subclasses (or optional participation)";
                               ]
                             else [])
                          @
                          if uncovered > 0 then
                            [
                              Printf.sprintf
                                "partial coverage: %d correspondence(s) left \
                                 out"
                                uncovered;
                            ]
                          else []
                        in
                        let m =
                          Mapping.make ~name:"semantic" ~outer ~provenance
                            ~score:
                              (!penalty
                              +. (0.01 *. float_of_int size)
                              +. (10. *. float_of_int uncovered))
                            ~src_query:srw.rw_query ~tgt_query:trw.rw_query
                            ~covered:(List.map (fun l -> l.l_corr) covered)
                            ()
                        in
                        if d1.c_approx || d2.c_approx then
                          Mapping.mark_approximate approx_note m
                        else m)
                      tgt_rws)
                  src_rws
              end
            end)
          with_coverage
      end
    in
    let subject d2 = "target CSG [" ^ d2.c_how ^ "]" in
    let all =
      match ctx.x_pool with
      | None ->
          List.concat_map
            (fun d2 ->
              isolate ctx ~subject:(subject d2) ~empty:[] (fun () ->
                  process_tgt ctx d2))
            tgt_csgs
      | Some pool ->
          (* Deterministic parallel fan-out: one task per target CSG,
             each under an equal fuel share of the run budget, results
             merged in CSG order. Fuel shares depend on the CSG count
             only — never on the number of domains or the steal
             schedule — so any domain count yields the same output. *)
          let csgs = Array.of_list tgt_csgs in
          let n = Array.length csgs in
          let subs =
            Array.of_list (Budget.split ctx.x_budget ~parts:n)
          in
          let tasks =
            Pool.map pool ~chunk:1
              (fun i ->
                let d2 = csgs.(i) in
                let tctx =
                  {
                    x_budget = subs.(i);
                    x_collect =
                      Option.map (fun _ -> Diag.collector ()) ctx.x_collect;
                    x_degraded = false;
                    x_pool = None;
                  }
                in
                let ms =
                  isolate tctx ~subject:(subject d2) ~empty:[] (fun () ->
                      process_tgt tctx d2)
                in
                (ms, tctx))
              (Array.init n Fun.id)
          in
          List.concat_map
            (fun (ms, tctx) ->
              Budget.absorb ctx.x_budget tctx.x_budget;
              if tctx.x_degraded then ctx.x_degraded <- true;
              (match (ctx.x_collect, tctx.x_collect) with
              | Some c, Some sub -> List.iter (Diag.add c) (Diag.diags sub)
              | _, _ -> ());
              ms)
            (Array.to_list tasks)
    in
    let deduped =
      List.fold_left
        (fun acc m ->
          match List.find_opt (Mapping.same m) acc with
          | Some existing ->
              if m.Mapping.score < existing.Mapping.score then
                m :: List.filter (fun x -> not (x == existing)) acc
              else acc
          | None -> m :: acc)
        [] all
    in
    let sorted =
      List.sort (fun a b -> compare a.Mapping.score b.Mapping.score) deduped
    in
    let ranked = List.filteri (fun i _ -> i < options.max_candidates) sorted in
    if not dedup then ranked
    else
      (* Verification pass: collapse logically equivalent candidates and
         annotate subsumed ones (lib/verify). Label by rank first so the
         dedup provenance can refer to candidates unambiguously. In
         collecting mode a verifier fault degrades to the ranked list. *)
      isolate ctx ~subject:"dedup" ~empty:ranked (fun () ->
          let labelled =
            List.mapi
              (fun i m ->
                Mapping.rename
                  (Printf.sprintf "%s#%d" m.Mapping.m_name (i + 1))
                  m)
              ranked
          in
          let report =
            Smg_verify.Mapverify.dedup ?pool:ctx.x_pool ~source:source.schema
              ~target:target.schema labelled
          in
          Log.debug (fun m -> m "%s" (Smg_verify.Mapverify.summary report));
          report.Smg_verify.Mapverify.rp_kept)
  end

(* ---- public entry points ----------------------------------------------- *)

let discover ?(options = default_options) ?(dedup = false) ?pool ~source
    ~target ~corrs () =
  let ctx =
    {
      x_budget = Budget.unlimited ();
      x_collect = None;
      x_degraded = false;
      x_pool = pool;
    }
  in
  discover_core ctx ~options ~dedup ~source ~target ~corrs

let discover_bounded ?(options = default_options) ?(dedup = false) ?budget
    ?pool ~source ~target ~corrs () =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let collector = Diag.collector () in
  let ctx =
    {
      x_budget = budget;
      x_collect = Some collector;
      x_degraded = false;
      x_pool = pool;
    }
  in
  let mappings =
    (* last-resort containment: a fault outside any per-subject isolation
       domain still yields a diagnosed, empty outcome rather than an
       escaped exception *)
    try discover_core ctx ~options ~dedup ~source ~target ~corrs
    with exn ->
      Diag.add collector (Diag.of_exn Diag.Discover exn);
      []
  in
  let n_approx = List.length (List.filter Mapping.is_approximate mappings) in
  (match Budget.exhausted budget with
  | Some reason when ctx.x_degraded ->
      Diag.add collector
        (Diag.degraded Diag.Discover reason
           (Fmt.str
              "tree search fell back to approximate candidates (%d of %d \
               candidate(s) flagged approximate)"
              n_approx (List.length mappings)))
  | Some reason ->
      Diag.add collector
        (Diag.warnf Diag.Discover
           "%s budget exhausted near the end of the search; results are \
            complete for the explored space"
           (Fmt.str "%a" Budget.pp_reason reason))
  | None -> ());
  {
    o_mappings = mappings;
    o_diags = Diag.diags collector;
    o_exact = (not ctx.x_degraded) && Budget.exhausted budget = None;
  }

(* ---- upfront validation ------------------------------------------------ *)

let lint ~source ~target ~corrs =
  let ds = ref [] in
  let push d = ds := d :: !ds in
  let side_lint label (s : side) =
    List.iter
      (fun (st : Stree.t) ->
        let tbl = st.Stree.st_table in
        match Schema.find_table s.schema tbl with
        | None ->
            push
              (Diag.errorf
                 ~subject:(label ^ " semantics " ^ tbl)
                 Diag.Validate
                 "s-tree refers to a table absent from the %s schema" label)
        | Some t -> (
            match Stree.validate_result s.cmg t st with
            | Ok () -> ()
            | Error msg ->
                push
                  (Diag.errorf
                     ~subject:(label ^ " table " ^ tbl)
                     Diag.Validate "%s" msg)))
      s.strees;
    List.iter
      (fun (t : Schema.table) ->
        if
          not
            (List.exists
               (fun (st : Stree.t) ->
                 String.equal st.Stree.st_table t.Schema.tbl_name)
               s.strees)
        then
          push
            (Diag.warnf
               ~subject:(label ^ " table " ^ t.Schema.tbl_name)
               Diag.Validate
               "table has no semantics block; correspondences on it cannot \
                be lifted"))
      s.schema.Schema.tables
  in
  side_lint "source" source;
  side_lint "target" target;
  List.iter
    (fun c ->
      match lift1 source target c with
      | Ok _ -> ()
      | Error msg ->
          push
            (Diag.errorf
               ~subject:(Fmt.str "%a" Mapping.pp_corr c)
               Diag.Validate "%s" msg))
    corrs;
  List.rev !ds
