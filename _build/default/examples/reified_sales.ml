(* §3.3 of the paper: n-ary relationships are reified — stores sell
   products to persons, with a purchase date on the relationship
   itself. This example builds the Sell scenario of Figure 4 with
   er2rel (deriving the sells table and its semantics automatically),
   prints the LAV formula of the table, and discovers a mapping into a
   differently-shaped target that splits the ternary relationship into
   a transactions table. *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Stree = Smg_semantics.Stree
module Encode = Smg_semantics.Encode
module Mapping = Smg_cq.Mapping
module Design = Smg_er2rel.Design
module Discover = Smg_core.Discover


let source_cm =
  Cml.make ~name:"sales"
    ~reified:
      [
        Cml.reified ~attrs:[ "dateOfPurchase" ] "sell"
          [
            ("seller", "Store", Cardinality.many);
            ("buyer", "Person", Cardinality.many);
            ("sold", "Product", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "sid" ] "Store" [ "sid" ];
      Cml.cls ~id:[ "pid" ] "Person" [ "pid" ];
      Cml.cls ~id:[ "prodid" ] "Product" [ "prodid" ];
    ]

let () =
  (* forward-engineer the source: entity tables + the reified sells *)
  let source_schema, source_strees = Design.design source_cm in
  Fmt.pr "er2rel-derived source schema:@.%a@.@." Schema.pp source_schema;
  let source = Discover.side ~schema:source_schema ~cm:source_cm source_strees in
  let sell_st =
    List.find (fun st -> st.Stree.st_table = "sell") source_strees
  in
  Fmt.pr "LAV semantics of the sell table (cf. the formula in §3.3):@.  %a@.@."
    Smg_cq.Query.pp
    (Encode.view_of_stree source.Discover.cmg sell_st);

  (* target: same ternary relationship, modelled independently *)
  let target_cm =
    Cml.make ~name:"transactions"
      ~reified:
        [
          Cml.reified ~attrs:[ "tdate" ] "transaction"
            [
              ("tx_shop", "Shop", Cardinality.many);
              ("tx_client", "Client", Cardinality.many);
              ("tx_item", "Item", Cardinality.many);
            ];
        ]
      [
        Cml.cls ~id:[ "shopid" ] "Shop" [ "shopid" ];
        Cml.cls ~id:[ "clientid" ] "Client" [ "clientid" ];
        Cml.cls ~id:[ "itemid" ] "Item" [ "itemid" ];
      ]
  in
  let target_schema, target_strees = Design.design target_cm in
  let target = Discover.side ~schema:target_schema ~cm:target_cm target_strees in
  let corrs =
    [
      Mapping.corr_of_strings "store.sid" "shop.shopid";
      Mapping.corr_of_strings "person.pid" "client.clientid";
      Mapping.corr_of_strings "product.prodid" "item.itemid";
      Mapping.corr_of_strings "sell.dateOfPurchase" "transaction.tdate";
    ]
  in
  Fmt.pr "=== semantic discovery across the two ternary reifications ===@.";
  let ms = Discover.discover ~source ~target ~corrs () in
  List.iter (fun m -> Fmt.pr "%a@.@." Mapping.pp m) ms;
  (* the ternary anchors must be paired: the mapping covers all four
     correspondences through sell ↔ transaction *)
  let best = List.hd ms in
  assert (List.length best.Mapping.covered = 4)
