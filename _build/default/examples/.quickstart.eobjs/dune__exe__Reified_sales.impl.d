examples/reified_sales.ml: Fmt List Smg_cm Smg_core Smg_cq Smg_er2rel Smg_relational Smg_semantics
