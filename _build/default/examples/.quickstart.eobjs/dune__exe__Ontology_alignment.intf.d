examples/ontology_alignment.mli:
