examples/ontology_alignment.ml: Fmt List Smg_cm Smg_core
