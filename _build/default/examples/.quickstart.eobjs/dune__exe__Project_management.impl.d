examples/project_management.ml: Fmt List Smg_cm Smg_core Smg_cq Smg_relational Smg_semantics
