examples/isa_merge.mli:
