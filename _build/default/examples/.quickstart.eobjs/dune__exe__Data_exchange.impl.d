examples/data_exchange.ml: Fmt List Option Smg_core Smg_cq Smg_dsl Smg_relational
