examples/quickstart.mli:
