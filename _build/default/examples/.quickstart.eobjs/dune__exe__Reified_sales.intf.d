examples/reified_sales.mli:
