examples/isa_merge.ml: Fmt List Smg_cm Smg_core Smg_cq Smg_relational Smg_ric Smg_semantics
