(* Quickstart: Example 1.1 of the paper (books sold at bookstores).

   Builds the source and target schemas, their conceptual models and
   table semantics, runs both the RIC-based baseline and the semantic
   discovery algorithm on the two correspondences, and prints the
   candidate mappings. The semantic method finds the M5 mapping that
   pairs authors with the bookstores selling their books; the baseline
   cannot. *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Baseline = Smg_ric.Baseline

(* ---- source side ------------------------------------------------------ *)

let source_schema =
  Schema.make ~name:"src"
    [
      Schema.table ~key:[ "pname" ] "person" [ ("pname", Schema.TString) ];
      Schema.table ~key:[ "pname"; "bid" ] "writes"
        [ ("pname", Schema.TString); ("bid", Schema.TString) ];
      Schema.table ~key:[ "bid" ] "book" [ ("bid", Schema.TString) ];
      Schema.table ~key:[ "bid"; "sid" ] "soldAt"
        [ ("bid", Schema.TString); ("sid", Schema.TString) ];
      Schema.table ~key:[ "sid" ] "bookstore" [ ("sid", Schema.TString) ];
    ]
    [
      Schema.ric ~name:"r1" ~from_:("writes", [ "pname" ]) ~to_:("person", [ "pname" ]);
      Schema.ric ~name:"r2" ~from_:("writes", [ "bid" ]) ~to_:("book", [ "bid" ]);
      Schema.ric ~name:"r3" ~from_:("soldAt", [ "bid" ]) ~to_:("book", [ "bid" ]);
      Schema.ric ~name:"r4" ~from_:("soldAt", [ "sid" ]) ~to_:("bookstore", [ "sid" ]);
    ]

let source_cm =
  Cml.make ~name:"src-cm"
    ~reified:
      [
        Cml.reified "writes"
          [
            ("writes_author", "Person", Cardinality.many);
            ("writes_work", "Book", Cardinality.at_least_one);
          ];
        Cml.reified "soldAt"
          [
            ("soldAt_item", "Book", Cardinality.many);
            ("soldAt_store", "Bookstore", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "pname" ] "Person" [ "pname" ];
      Cml.cls ~id:[ "bid" ] "Book" [ "bid" ];
      Cml.cls ~id:[ "sid" ] "Bookstore" [ "sid" ];
    ]

let n = Stree.nref

let source_strees =
  [
    Stree.make ~table:"person" ~anchor:(n "Person")
      ~cols:[ ("pname", n "Person", "pname") ]
      ~ids:[ (n "Person", [ "pname" ]) ]
      [ n "Person" ];
    Stree.make ~table:"book" ~anchor:(n "Book")
      ~cols:[ ("bid", n "Book", "bid") ]
      ~ids:[ (n "Book", [ "bid" ]) ]
      [ n "Book" ];
    Stree.make ~table:"bookstore" ~anchor:(n "Bookstore")
      ~cols:[ ("sid", n "Bookstore", "sid") ]
      ~ids:[ (n "Bookstore", [ "sid" ]) ]
      [ n "Bookstore" ];
    Stree.make ~table:"writes" ~anchor:(n "writes")
      ~edges:
        [
          { se_src = n "writes"; se_kind = Stree.SRole "writes_author"; se_dst = n "Person" };
          { se_src = n "writes"; se_kind = Stree.SRole "writes_work"; se_dst = n "Book" };
        ]
      ~cols:[ ("pname", n "Person", "pname"); ("bid", n "Book", "bid") ]
      ~ids:
        [
          (n "Person", [ "pname" ]);
          (n "Book", [ "bid" ]);
          (n "writes", [ "pname"; "bid" ]);
        ]
      [ n "writes"; n "Person"; n "Book" ];
    Stree.make ~table:"soldAt" ~anchor:(n "soldAt")
      ~edges:
        [
          { se_src = n "soldAt"; se_kind = Stree.SRole "soldAt_item"; se_dst = n "Book" };
          { se_src = n "soldAt"; se_kind = Stree.SRole "soldAt_store"; se_dst = n "Bookstore" };
        ]
      ~cols:[ ("bid", n "Book", "bid"); ("sid", n "Bookstore", "sid") ]
      ~ids:
        [
          (n "Book", [ "bid" ]);
          (n "Bookstore", [ "sid" ]);
          (n "soldAt", [ "bid"; "sid" ]);
        ]
      [ n "soldAt"; n "Book"; n "Bookstore" ];
  ]

(* ---- target side ------------------------------------------------------ *)

let target_schema =
  Schema.make ~name:"tgt"
    [
      Schema.table ~key:[ "aname"; "sid" ] "hasBookSoldAt"
        [ ("aname", Schema.TString); ("sid", Schema.TString) ];
    ]
    []

let target_cm =
  Cml.make ~name:"tgt-cm"
    ~reified:
      [
        Cml.reified "hasBookSoldAt"
          [
            ("hb_author", "Author", Cardinality.many);
            ("hb_store", "Bookstore", Cardinality.many);
          ];
      ]
    [
      Cml.cls ~id:[ "aname" ] "Author" [ "aname" ];
      Cml.cls ~id:[ "sid" ] "Bookstore" [ "sid" ];
    ]

let target_strees =
  [
    Stree.make ~table:"hasBookSoldAt" ~anchor:(n "hasBookSoldAt")
      ~edges:
        [
          { se_src = n "hasBookSoldAt"; se_kind = Stree.SRole "hb_author"; se_dst = n "Author" };
          { se_src = n "hasBookSoldAt"; se_kind = Stree.SRole "hb_store"; se_dst = n "Bookstore" };
        ]
      ~cols:
        [ ("aname", n "Author", "aname"); ("sid", n "Bookstore", "sid") ]
      ~ids:
        [
          (n "Author", [ "aname" ]);
          (n "Bookstore", [ "sid" ]);
          (n "hasBookSoldAt", [ "aname"; "sid" ]);
        ]
      [ n "hasBookSoldAt"; n "Author"; n "Bookstore" ];
  ]

(* ---- run both methods -------------------------------------------------- *)

let () =
  let corrs =
    [
      Mapping.corr_of_strings "person.pname" "hasBookSoldAt.aname";
      Mapping.corr_of_strings "bookstore.sid" "hasBookSoldAt.sid";
    ]
  in
  let source = Discover.side ~schema:source_schema ~cm:source_cm source_strees in
  let target = Discover.side ~schema:target_schema ~cm:target_cm target_strees in
  Fmt.pr "=== RIC-based baseline (Clio-style) ===@.";
  let ric = Baseline.generate ~source:source_schema ~target:target_schema ~corrs in
  List.iter (fun m -> Fmt.pr "%a@.@." Mapping.pp m) ric;
  Fmt.pr "=== Semantic discovery ===@.";
  let sem = Discover.discover ~source ~target ~corrs () in
  List.iter (fun m -> Fmt.pr "%a@.@." Mapping.pp m) sem;
  (* The headline claim: the semantic method produces the M5 mapping whose
     source expression joins person, writes, soldAt and bookstore. *)
  let m5 =
    List.exists
      (fun (m : Mapping.t) ->
        let tables =
          List.sort_uniq compare
            (List.map (fun (a : Smg_cq.Atom.t) -> a.Smg_cq.Atom.pred)
               m.Mapping.src_query.Smg_cq.Query.body)
        in
        List.mem "person" tables && List.mem "writes" tables
        && List.mem "soldAt" tables && List.mem "bookstore" tables
        && List.length m.Mapping.covered = 2)
      sem
  in
  Fmt.pr "M5 (author-bookstore composition) found by semantic method: %b@." m5;
  if not m5 then exit 1;
  Fmt.pr "Best candidate as a tgd:@.  %a@." Smg_cq.Dependency.pp_tgd
    (Mapping.to_tgd (List.hd sem))
