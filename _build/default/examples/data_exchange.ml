(* Data exchange end-to-end: discover a mapping with the semantic
   method, turn it into a source-to-target tgd, and *execute* it with
   the chase on a small source database, materialising a target
   instance (with labelled nulls for unknown values).

   The scenario is Example 1.1: the discovered M5 mapping pairs authors
   with the bookstores that sell their books. *)

module Value = Smg_relational.Value
module Instance = Smg_relational.Instance
module Mapping = Smg_cq.Mapping
module Chase = Smg_cq.Chase
module Discover = Smg_core.Discover

(* The books scenario ships as a DSL file; parse it. *)
let scenario_file = "scenarios/books.smg"

let () =
  let doc = Smg_dsl.Parser.parse_file scenario_file in
  let src_schema, tgt_schema =
    match doc.Smg_dsl.Ast.doc_schemas with
    | [ s; t ] -> (s, t)
    | _ -> failwith "expected two schemas"
  in
  let src_cm, tgt_cm =
    match doc.Smg_dsl.Ast.doc_cms with
    | [ s; t ] -> (s, t)
    | _ -> failwith "expected two CMs"
  in
  let strees_for schema =
    List.filter_map
      (fun (b : Smg_dsl.Ast.semantics_block) ->
        if
          Option.is_some
            (Smg_relational.Schema.find_table schema b.Smg_dsl.Ast.sem_table)
        then Some b.Smg_dsl.Ast.sem_stree
        else None)
      doc.Smg_dsl.Ast.doc_semantics
  in
  let source = Discover.side ~schema:src_schema ~cm:src_cm (strees_for src_schema) in
  let target = Discover.side ~schema:tgt_schema ~cm:tgt_cm (strees_for tgt_schema) in
  let mappings =
    Discover.discover ~source ~target ~corrs:doc.Smg_dsl.Ast.doc_corrs ()
  in
  let m = List.hd mappings in
  Fmt.pr "Discovered mapping:@.  %a@.@." Smg_cq.Dependency.pp_tgd
    (Mapping.to_tgd m);

  (* a small library of books *)
  let vs s = Value.VString s in
  let add table header row i = Instance.add_tuple i table ~header row in
  let src_inst =
    Instance.empty
    |> add "person" [ "pname" ] [| vs "knuth" |]
    |> add "person" [ "pname" ] [| vs "dijkstra" |]
    |> add "book" [ "bid" ] [| vs "taocp" |]
    |> add "book" [ "bid" ] [| vs "discipline" |]
    |> add "writes" [ "pname"; "bid" ] [| vs "knuth"; vs "taocp" |]
    |> add "writes" [ "pname"; "bid" ] [| vs "dijkstra"; vs "discipline" |]
    |> add "bookstore" [ "sid" ] [| vs "strand" |]
    |> add "bookstore" [ "sid" ] [| vs "powell" |]
    |> add "soldAt" [ "bid"; "sid" ] [| vs "taocp"; vs "strand" |]
    |> add "soldAt" [ "bid"; "sid" ] [| vs "taocp"; vs "powell" |]
    |> add "soldAt" [ "bid"; "sid" ] [| vs "discipline"; vs "powell" |]
  in
  (* integrity holds on the source *)
  assert (Instance.check_rics src_schema src_inst = []);
  assert (Instance.check_keys src_schema src_inst = []);

  Fmt.pr "Source instance:@.%a@.@." Instance.pp src_inst;
  match
    Chase.exchange ~source:src_schema ~target:tgt_schema
      ~mappings:[ Mapping.to_tgd m ] src_inst
  with
  | Chase.Saturated out ->
      Fmt.pr "Exchanged target instance (chase saturated):@.%a@." Instance.pp
        out;
      assert (Instance.cardinality out "hasBookSoldAt" = 3)
  | Chase.Bounded _ -> failwith "chase did not saturate"
  | Chase.Failed msg -> failwith ("chase failed: " ^ msg)
