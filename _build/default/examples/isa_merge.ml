(* Example 1.2 of the paper: two databases encode the same ISA hierarchy
   differently — the source splits employees into programmer/engineer
   tables keyed by ssn, the target has one flat employee table keyed by
   a different identifier (eid). The RIC-based technique maps the two
   source tables separately; the semantic method uses the superclass in
   the CM (absent from the schema!) to merge them, recommending outer
   joins. *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover
module Baseline = Smg_ric.Baseline

let n = Stree.nref

let source_cm =
  Cml.make ~name:"src-cm"
    ~isas:
      [
        { Cml.sub = "Engineer"; super = "Employee" };
        { Cml.sub = "Programmer"; super = "Employee" };
      ]
    ~covers:[ ("Employee", [ "Engineer"; "Programmer" ]) ]
    [
      Cml.cls ~id:[ "ssn" ] "Employee" [ "ssn"; "name" ];
      Cml.cls "Engineer" [ "site" ];
      Cml.cls "Programmer" [ "acnt" ];
    ]

let source_schema =
  Schema.make ~name:"src"
    [
      Schema.table ~key:[ "ssn" ] "programmer"
        [ ("ssn", Schema.TString); ("name", Schema.TString); ("acnt", Schema.TString) ];
      Schema.table ~key:[ "ssn" ] "engineer"
        [ ("ssn", Schema.TString); ("name", Schema.TString); ("site", Schema.TString) ];
    ]
    []

let source_strees =
  [
    Stree.make ~table:"programmer" ~anchor:(n "Programmer")
      ~edges:[ { Stree.se_src = n "Programmer"; se_kind = Stree.SIsa; se_dst = n "Employee" } ]
      ~cols:
        [
          ("ssn", n "Programmer", "ssn");
          ("name", n "Programmer", "name");
          ("acnt", n "Programmer", "acnt");
        ]
      ~ids:[ (n "Programmer", [ "ssn" ]) ]
      [ n "Programmer"; n "Employee" ];
    Stree.make ~table:"engineer" ~anchor:(n "Engineer")
      ~edges:[ { Stree.se_src = n "Engineer"; se_kind = Stree.SIsa; se_dst = n "Employee" } ]
      ~cols:
        [
          ("ssn", n "Engineer", "ssn");
          ("name", n "Engineer", "name");
          ("site", n "Engineer", "site");
        ]
      ~ids:[ (n "Engineer", [ "ssn" ]) ]
      [ n "Engineer"; n "Employee" ];
  ]

let target_cm =
  Cml.make ~name:"tgt-cm"
    ~isas:
      [
        { Cml.sub = "Engineer"; super = "Employee" };
        { Cml.sub = "Programmer"; super = "Employee" };
      ]
    ~covers:[ ("Employee", [ "Engineer"; "Programmer" ]) ]
    [
      Cml.cls ~id:[ "eid" ] "Employee" [ "eid"; "name" ];
      Cml.cls "Engineer" [ "site" ];
      Cml.cls "Programmer" [ "acnt" ];
    ]

let target_schema =
  Schema.make ~name:"tgt"
    [
      Schema.table ~key:[ "eid" ] "employee"
        [
          ("eid", Schema.TString);
          ("name", Schema.TString);
          ("site", Schema.TString);
          ("acnt", Schema.TString);
        ];
    ]
    []

let target_strees =
  [
    Stree.make ~table:"employee" ~anchor:(n "Employee")
      ~edges:
        [
          { Stree.se_src = n "Engineer"; se_kind = Stree.SIsa; se_dst = n "Employee" };
          { Stree.se_src = n "Programmer"; se_kind = Stree.SIsa; se_dst = n "Employee" };
        ]
      ~cols:
        [
          ("eid", n "Employee", "eid");
          ("name", n "Employee", "name");
          ("site", n "Engineer", "site");
          ("acnt", n "Programmer", "acnt");
        ]
      ~ids:[ (n "Employee", [ "eid" ]) ]
      [ n "Employee"; n "Engineer"; n "Programmer" ];
  ]

let () =
  let corrs =
    [
      Mapping.corr_of_strings "programmer.name" "employee.name";
      Mapping.corr_of_strings "programmer.acnt" "employee.acnt";
      Mapping.corr_of_strings "engineer.site" "employee.site";
    ]
  in
  Fmt.pr "=== RIC-based baseline ===@.";
  let ric = Baseline.generate ~source:source_schema ~target:target_schema ~corrs in
  List.iter (fun m -> Fmt.pr "%a@.@." Mapping.pp m) ric;
  Fmt.pr "(no candidate merges programmer and engineer: there is no RIC@.";
  Fmt.pr " between them — the superclass exists only in the CM)@.@.";
  Fmt.pr "=== Semantic discovery ===@.";
  let source = Discover.side ~schema:source_schema ~cm:source_cm source_strees in
  let target = Discover.side ~schema:target_schema ~cm:target_cm target_strees in
  let sem = Discover.discover ~source ~target ~corrs () in
  List.iter (fun m -> Fmt.pr "%a@.@." Mapping.pp m) sem;
  let best = List.hd sem in
  assert best.Mapping.outer;
  Fmt.pr "The best candidate joins both tables on ssn and is flagged for@.";
  Fmt.pr "outer-join realisation (engineers who are not programmers and@.";
  Fmt.pr "vice versa are preserved):@.  %a@.@."
    Smg_relational.Algebra.pp
    (Mapping.src_algebra source_schema best);
  (* realise the outer join as Skolemized tgd variants and execute them *)
  let tgds = Mapping.outer_variants ~target:target_schema best in
  Fmt.pr "Outer-join realisation as %d Skolemized tgds:@." (List.length tgds);
  List.iter (fun t -> Fmt.pr "  %a@." Smg_cq.Dependency.pp_tgd t) tgds;
  let module I = Smg_relational.Instance in
  let vs s = Smg_relational.Value.VString s in
  let src_inst =
    I.empty
    |> fun i ->
    I.add_tuple i "programmer" ~header:[ "ssn"; "name"; "acnt" ]
      [| vs "1"; vs "ada"; vs "acnt1" |]
    |> fun i ->
    I.add_tuple i "engineer" ~header:[ "ssn"; "name"; "site" ]
      [| vs "1"; vs "ada"; vs "site1" |]
    |> fun i ->
    I.add_tuple i "engineer" ~header:[ "ssn"; "name"; "site" ]
      [| vs "2"; vs "bob"; vs "site2" |]
  in
  match
    Smg_cq.Chase.exchange ~source:source_schema ~target:target_schema
      ~mappings:tgds src_inst
  with
  | Smg_cq.Chase.Saturated out ->
      Fmt.pr "@.Exchanged employees (ssn 1 merged across both tables, ssn 2@.";
      Fmt.pr "engineer-only with nulls — the outer join, materialised):@.%a@."
        I.pp out
  | _ -> failwith "exchange failed"
