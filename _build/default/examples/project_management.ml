(* Example 3.1 of the paper (Cases A.1 and A.2): a source with
   control(proj, dept) and manage(dept, mgr), and a target with a single
   proj(pnum, dept, emp) table whose s-tree is an anchored functional
   tree rooted at Proj.

   With all three correspondences given, the anchor Proj corresponds to
   the source's Project and Case A.1 finds the functional tree
   Project -controlledBy->> Department -hasManager->> Employee. Dropping
   the v1 correspondence exercises Case A.2 (no corresponding root):
   minimal functional trees over all roots give the same connection. *)

module Schema = Smg_relational.Schema
module Cml = Smg_cm.Cml
module Stree = Smg_semantics.Stree
module Mapping = Smg_cq.Mapping
module Discover = Smg_core.Discover

let n = Stree.nref

let source_cm =
  Cml.make ~name:"src-cm"
    ~binaries:
      [
        Cml.functional ~total:true "controlledBy" ~src:"Project" ~dst:"Department";
        Cml.functional ~total:true "hasManager" ~src:"Department" ~dst:"Employee";
      ]
    [
      Cml.cls ~id:[ "proj" ] "Project" [ "proj" ];
      Cml.cls ~id:[ "dept" ] "Department" [ "dept" ];
      Cml.cls ~id:[ "mgr" ] "Employee" [ "mgr" ];
    ]

let source_schema =
  Schema.make ~name:"src"
    [
      Schema.table ~key:[ "proj" ] "control"
        [ ("proj", Schema.TString); ("dept", Schema.TString) ];
      Schema.table ~key:[ "dept" ] "manage"
        [ ("dept", Schema.TString); ("mgr", Schema.TString) ];
    ]
    [ Schema.ric ~name:"fk" ~from_:("control", [ "dept" ]) ~to_:("manage", [ "dept" ]) ]

let source_strees =
  [
    Stree.make ~table:"control" ~anchor:(n "Project")
      ~edges:
        [
          { Stree.se_src = n "Project"; se_kind = Stree.SRel "controlledBy"; se_dst = n "Department" };
        ]
      ~cols:[ ("proj", n "Project", "proj"); ("dept", n "Department", "dept") ]
      ~ids:[ (n "Project", [ "proj" ]); (n "Department", [ "dept" ]) ]
      [ n "Project"; n "Department" ];
    Stree.make ~table:"manage" ~anchor:(n "Department")
      ~edges:
        [
          { Stree.se_src = n "Department"; se_kind = Stree.SRel "hasManager"; se_dst = n "Employee" };
        ]
      ~cols:[ ("dept", n "Department", "dept"); ("mgr", n "Employee", "mgr") ]
      ~ids:[ (n "Department", [ "dept" ]); (n "Employee", [ "mgr" ]) ]
      [ n "Department"; n "Employee" ];
  ]

let target_cm =
  Cml.make ~name:"tgt-cm"
    ~binaries:
      [
        Cml.functional ~total:true "inDept" ~src:"Proj" ~dst:"Department";
        Cml.functional "managedBy" ~src:"Proj" ~dst:"Employee";
      ]
    [
      Cml.cls ~id:[ "pnum" ] "Proj" [ "pnum" ];
      Cml.cls ~id:[ "dept" ] "Department" [ "dept" ];
      Cml.cls ~id:[ "emp" ] "Employee" [ "emp" ];
    ]

let target_schema =
  Schema.make ~name:"tgt"
    [
      Schema.table ~key:[ "pnum" ] "proj"
        [ ("pnum", Schema.TString); ("dept", Schema.TString); ("emp", Schema.TString) ];
    ]
    []

let target_strees =
  [
    Stree.make ~table:"proj" ~anchor:(n "Proj")
      ~edges:
        [
          { Stree.se_src = n "Proj"; se_kind = Stree.SRel "inDept"; se_dst = n "Department" };
          { Stree.se_src = n "Proj"; se_kind = Stree.SRel "managedBy"; se_dst = n "Employee" };
        ]
      ~cols:
        [
          ("pnum", n "Proj", "pnum");
          ("dept", n "Department", "dept");
          ("emp", n "Employee", "emp");
        ]
      ~ids:
        [ (n "Proj", [ "pnum" ]); (n "Department", [ "dept" ]); (n "Employee", [ "emp" ]) ]
      [ n "Proj"; n "Department"; n "Employee" ];
  ]

let () =
  let source = Discover.side ~schema:source_schema ~cm:source_cm source_strees in
  let target = Discover.side ~schema:target_schema ~cm:target_cm target_strees in
  Fmt.pr "=== Case A.1: all three correspondences (v1, v2, v3) ===@.";
  let corrs_full =
    [
      Mapping.corr_of_strings "control.proj" "proj.pnum";
      Mapping.corr_of_strings "control.dept" "proj.dept";
      Mapping.corr_of_strings "manage.mgr" "proj.emp";
    ]
  in
  List.iter
    (fun m -> Fmt.pr "%a@.@." Mapping.pp m)
    (Discover.discover ~source ~target ~corrs:corrs_full ());
  Fmt.pr "=== Case A.2: root correspondence v1 missing ===@.";
  let corrs_rootless =
    [
      Mapping.corr_of_strings "control.dept" "proj.dept";
      Mapping.corr_of_strings "manage.mgr" "proj.emp";
    ]
  in
  List.iter
    (fun m -> Fmt.pr "%a@.@." Mapping.pp m)
    (Discover.discover ~source ~target ~corrs:corrs_rootless ())
