(* The paper's §6 closes with "the related problem of finding complex
   semantic mappings between two CMs/ontologies, given a set of element
   correspondences" — implemented here as Smg_core.Cm_discover.

   Two independently modelled e-commerce ontologies are aligned from
   four attribute correspondences; the output is pairs of conjunctive
   queries over the CM predicates (no relational schemas involved). *)

module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Cm_discover = Smg_core.Cm_discover

let shop_a =
  Cml.make ~name:"shopA"
    ~isas:[ { Cml.sub = "PremiumCustomer"; super = "Customer" } ]
    ~binaries:
      [
        Cml.functional ~total:true "placedBy" ~src:"Order" ~dst:"Customer";
        Cml.functional "shipsTo" ~src:"Order" ~dst:"Address";
        Cml.functional ~kind:Cml.PartOf "lineOf" ~src:"LineItem" ~dst:"Order";
        Cml.functional ~total:true "itemProduct" ~src:"LineItem" ~dst:"Product";
      ]
    [
      Cml.cls ~id:[ "custid" ] "Customer" [ "custid"; "custname" ];
      Cml.cls "PremiumCustomer" [ "tier" ];
      Cml.cls ~id:[ "orderno" ] "Order" [ "orderno"; "odate" ];
      Cml.cls ~id:[ "sku" ] "Product" [ "sku"; "pname"; "price" ];
      Cml.cls ~id:[ "lineno" ] "LineItem" [ "lineno"; "qty" ];
      Cml.cls ~id:[ "addr" ] "Address" [ "addr" ];
    ]

let shop_b =
  Cml.make ~name:"shopB"
    ~binaries:
      [
        Cml.functional ~total:true "boughtBy" ~src:"Purchase" ~dst:"Client";
        Cml.functional ~kind:Cml.PartOf "entryOf" ~src:"Entry" ~dst:"Purchase";
        Cml.functional ~total:true "entryGoods" ~src:"Entry" ~dst:"Goods";
      ]
    [
      Cml.cls ~id:[ "clientid" ] "Client" [ "clientid"; "clientname" ];
      Cml.cls ~id:[ "pno" ] "Purchase" [ "pno"; "pdate" ];
      Cml.cls ~id:[ "gid" ] "Goods" [ "gid"; "gname"; "cost" ];
      Cml.cls ~id:[ "eno" ] "Entry" [ "eno"; "amount" ];
    ]

let () =
  let c = Cm_discover.corr in
  Fmt.pr "=== customer of an order ===@.";
  List.iter
    (fun r -> Fmt.pr "%a@.@." Cm_discover.pp_result r)
    (Cm_discover.discover ~source:shop_a ~target:shop_b
       ~corrs:
         [
           c ~src:("Customer", "custname") ~tgt:("Client", "clientname");
           c ~src:("Order", "odate") ~tgt:("Purchase", "pdate");
         ]
       ());
  Fmt.pr "=== product of a line item, through the partOf chain ===@.";
  let rs =
    Cm_discover.discover ~source:shop_a ~target:shop_b
      ~corrs:
        [
          c ~src:("Product", "pname") ~tgt:("Goods", "gname");
          c ~src:("LineItem", "qty") ~tgt:("Entry", "amount");
          c ~src:("Order", "odate") ~tgt:("Purchase", "pdate");
        ]
      ()
  in
  List.iter (fun r -> Fmt.pr "%a@.@." Cm_discover.pp_result r) rs;
  assert (rs <> [])
