module Cml = Smg_cm.Cml
module Cm_graph = Smg_cm.Cm_graph
module Schema = Smg_relational.Schema
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query

type result = { rw_query : Query.t; rw_tables : string list }

(* ---- term-level union-find with constant anchors --------------------- *)

module Tuf = struct
  type t = {
    parent : (string, string) Hashtbl.t;
    anchor : (string, Atom.term) Hashtbl.t;  (* rep -> constant *)
    preferred : (string, unit) Hashtbl.t;    (* answer variables *)
  }

  let create ~preferred_vars =
    let preferred = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace preferred v ()) preferred_vars;
    { parent = Hashtbl.create 16; anchor = Hashtbl.create 8; preferred }

  let rec find t x =
    match Hashtbl.find_opt t.parent x with
    | None -> x
    | Some p ->
        let r = find t p in
        Hashtbl.replace t.parent x r;
        r

  (* Returns false on constant conflict. *)
  let union t a b =
    let ra = find t a and rb = find t b in
    if String.equal ra rb then true
    else begin
      (* Keep a preferred (answer) variable as representative. *)
      let keep, drop =
        if Hashtbl.mem t.preferred ra then (ra, rb) else (rb, ra)
      in
      match (Hashtbl.find_opt t.anchor keep, Hashtbl.find_opt t.anchor drop) with
      | Some c1, Some c2 when not (Atom.equal_term c1 c2) -> false
      | _, c2 ->
          Hashtbl.replace t.parent drop keep;
          (match (Hashtbl.find_opt t.anchor keep, c2) with
          | None, Some c -> Hashtbl.replace t.anchor keep c
          | _, _ -> ());
          Hashtbl.remove t.anchor drop;
          true
    end

  let unify_const t x c =
    let r = find t x in
    match Hashtbl.find_opt t.anchor r with
    | Some c' -> Atom.equal_term c c'
    | None ->
        Hashtbl.replace t.anchor r c;
        true

  let resolve t = function
    | Atom.Cst _ as c -> c
    | Atom.Var x -> (
        let r = find t x in
        match Hashtbl.find_opt t.anchor r with
        | Some c -> c
        | None -> Atom.Var r)
end

(* ---- view-instance state --------------------------------------------- *)

type inst = {
  i_st : Stree.t;
  i_asg : (Stree.node_ref * string) list;  (* s-tree node -> query variable *)
  i_cols : (string * Atom.term) list;      (* column -> bound term *)
}

(* isa-equivalence of s-tree nodes (identity flows through SIsa edges) *)
let isa_key (n : Stree.node_ref) =
  Printf.sprintf "%s~%d" n.Stree.nr_class n.Stree.nr_copy

let isa_rep_fn (st : Stree.t) =
  let parent = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun (e : Stree.sedge) ->
      match e.se_kind with
      | Stree.SIsa -> union (isa_key e.se_src) (isa_key e.se_dst)
      | Stree.SRel _ | Stree.SRole _ -> ())
    st.Stree.st_edges;
  fun n -> find (isa_key n)

(* A coverage option: which s-tree, which node assignments, which column
   bindings the option contributes. *)
type opt = {
  o_st : Stree.t;
  o_asg : (Stree.node_ref * string) list;
  o_cols : (string * Atom.term) list;
}

let as_var = function
  | Atom.Var x -> x
  | Atom.Cst _ -> invalid_arg "rewrite: constant in object position"

let subsumes cm ~have ~want =
  (* Objects of class [have] are also objects of class [want]? *)
  String.equal have want || List.mem want (Cml.ancestors cm have)

let options_for cm strees (a : Atom.t) : opt list =
  match Encode.parse_pred a.Atom.pred with
  | None -> invalid_arg (Printf.sprintf "rewrite: non-CM predicate %s" a.pred)
  | Some kind -> (
      match (kind, a.Atom.args) with
      | Encode.PCls c, [ x ] ->
          let x = as_var x in
          List.concat_map
            (fun (st : Stree.t) ->
              List.filter_map
                (fun (n : Stree.node_ref) ->
                  if subsumes cm ~have:n.nr_class ~want:c then
                    Some { o_st = st; o_asg = [ (n, x) ]; o_cols = [] }
                  else None)
                st.st_nodes)
            strees
      | Encode.PRel r, [ x; y ] ->
          let x = as_var x and y = as_var y in
          List.concat_map
            (fun (st : Stree.t) ->
              List.filter_map
                (fun (e : Stree.sedge) ->
                  match e.se_kind with
                  | Stree.SRel r' when String.equal r r' ->
                      Some
                        {
                          o_st = st;
                          o_asg = [ (e.se_src, x); (e.se_dst, y) ];
                          o_cols = [];
                        }
                  | Stree.SRel _ | Stree.SRole _ | Stree.SIsa -> None)
                st.st_edges)
            strees
      | Encode.PRole (rr, ro), [ x; y ] ->
          let x = as_var x and y = as_var y in
          List.concat_map
            (fun (st : Stree.t) ->
              List.filter_map
                (fun (e : Stree.sedge) ->
                  match e.se_kind with
                  | Stree.SRole ro'
                    when String.equal ro ro'
                         && String.equal e.se_src.nr_class rr ->
                      Some
                        {
                          o_st = st;
                          o_asg = [ (e.se_src, x); (e.se_dst, y) ];
                          o_cols = [];
                        }
                  | Stree.SRole _ | Stree.SRel _ | Stree.SIsa -> None)
                st.st_edges)
            strees
      | Encode.PAttr (owner, attr), [ x; w ] ->
          let x = as_var x in
          List.concat_map
            (fun (st : Stree.t) ->
              List.filter_map
                (fun (col, n, a) ->
                  if
                    String.equal a attr
                    && Stree.declaring_class cm n.Stree.nr_class a
                       = Some owner
                  then
                    Some
                      {
                        o_st = st;
                        o_asg = [ (n, x) ];
                        o_cols = [ (col, w) ];
                      }
                  else None)
                st.Stree.col_map)
            strees
      | (Encode.PCls _ | Encode.PRel _ | Encode.PRole _ | Encode.PAttr _), _
        ->
          invalid_arg (Printf.sprintf "rewrite: bad arity for %s" a.pred))

(* Try to extend an existing instance with an option (same s-tree only). *)
let extend isa_reps inst (o : opt) =
  if not (String.equal inst.i_st.Stree.st_table o.o_st.Stree.st_table) then None
  else
    let rep = List.assoc inst.i_st.Stree.st_table isa_reps in
    let ok_asg =
      List.for_all
        (fun (n, x) ->
          (* n may already be assigned: must agree. And no *different*
             object of this instance may carry x. *)
          let existing_n =
            List.find_opt (fun (n', _) -> Stree.equal_ref n n') inst.i_asg
          in
          (match existing_n with
          | Some (_, x') -> String.equal x x'
          | None -> true)
          && List.for_all
               (fun (m, x') ->
                 (not (String.equal x x'))
                 || String.equal (rep m) (rep n))
               inst.i_asg)
        o.o_asg
    in
    let ok_cols =
      List.for_all
        (fun (c, t) ->
          match List.assoc_opt c inst.i_cols with
          | None -> true
          | Some t' -> Atom.equal_term t t')
        o.o_cols
    in
    if ok_asg && ok_cols then
      let i_asg =
        List.fold_left
          (fun acc (n, x) ->
            if List.exists (fun (n', _) -> Stree.equal_ref n n') acc then acc
            else (n, x) :: acc)
          inst.i_asg o.o_asg
      in
      let i_cols =
        List.fold_left
          (fun acc (c, t) ->
            if List.mem_assoc c acc then acc else (c, t) :: acc)
          inst.i_cols o.o_cols
      in
      Some { inst with i_asg; i_cols }
    else None

let fresh_inst (o : opt) = { i_st = o.o_st; i_asg = o.o_asg; i_cols = o.o_cols }

(* id columns of a node, searching its isa-equivalence class. *)
let id_cols_of isa_reps (st : Stree.t) n =
  match Stree.id_columns st n with
  | Some cols -> Some cols
  | None ->
      let rep = List.assoc st.Stree.st_table isa_reps in
      let target = rep n in
      List.find_map
        (fun (m, cols) ->
          if String.equal (rep m) target then Some cols else None)
        st.Stree.id_map

(* ---- finalisation ----------------------------------------------------- *)

let finalize ~schema ~isa_reps ~head insts =
  let answer_vars =
    List.concat_map (function Atom.Var x -> [ x ] | Atom.Cst _ -> []) head
  in
  let tuf = Tuf.create ~preferred_vars:answer_vars in
  (* Which instances mention each variable? *)
  let var_insts = Hashtbl.create 16 in
  List.iteri
    (fun i inst ->
      List.iter
        (fun (_, x) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt var_insts x) in
          if not (List.mem i cur) then Hashtbl.replace var_insts x (i :: cur))
        inst.i_asg)
    insts;
  let shared x =
    match Hashtbl.find_opt var_insts x with
    | Some (_ :: _ :: _) -> true
    | _ -> false
  in
  (* Propagate identifier bindings; abort on failure. *)
  let exception Reject in
  try
    let insts =
      List.map
        (fun inst ->
          let cols = ref inst.i_cols in
          List.iter
            (fun (n, x) ->
              match id_cols_of isa_reps inst.i_st n with
              | None -> if shared x then raise Reject
              | Some idc ->
                  List.iteri
                    (fun k c ->
                      let canon = Printf.sprintf "id:%s:%d" x k in
                      match List.assoc_opt c !cols with
                      | Some (Atom.Var y) ->
                          if not (Tuf.union tuf canon y) then raise Reject
                      | Some (Atom.Cst cst) ->
                          if not (Tuf.unify_const tuf canon (Atom.Cst cst))
                          then
                            raise Reject
                      | None -> cols := (c, Atom.Var canon) :: !cols)
                    idc)
            inst.i_asg;
          { inst with i_cols = !cols })
        insts
    in
    (* Build table atoms with full column lists. *)
    let fresh = ref 0 in
    let atoms =
      List.map
        (fun inst ->
          let table = inst.i_st.Stree.st_table in
          let tbl = Schema.find_table_exn schema table in
          let args =
            List.map
              (fun c ->
                match List.assoc_opt c inst.i_cols with
                | Some t -> Tuf.resolve tuf t
                | None ->
                    incr fresh;
                    Atom.Var (Printf.sprintf "f%d" !fresh))
              (Schema.column_names tbl)
          in
          Atom.atom table args)
        insts
    in
    let head = List.map (Tuf.resolve tuf) head in
    Some (Query.make ~name:"rw" ~head atoms)
  with Reject -> None


(* ---- key-based atom merging ------------------------------------------- *)

(* Two atoms over the same table whose key-position arguments coincide
   denote the same tuple (the table's key functionally determines the
   rest), so their remaining arguments can be unified. This is the
   query-level face of "merging Skolem functions through keys" (§3.4).
   Unification prefers head variables; a constant/constant clash keeps
   the atoms apart (the rewriting is then unsatisfiable anyway under the
   key, but we stay conservative). *)
let merge_by_keys ~schema (q : Query.t) =
  let head_vars = Query.head_vars q in
  let subst_term m = function
    | Atom.Var x as t -> (
        match List.assoc_opt x m with Some t' -> t' | None -> t)
    | Atom.Cst _ as t -> t
  in
  let subst_atom m (a : Atom.t) =
    { a with Atom.args = List.map (subst_term m) a.Atom.args }
  in
  let rec fixpoint (atoms, head) =
    let try_merge () =
      let rec pick = function
        | [] -> None
        | (a : Atom.t) :: rest -> (
            let t = Schema.find_table_exn schema a.Atom.pred in
            let key = t.Schema.key in
            let cols = Schema.column_names t in
            let key_args (x : Atom.t) =
              List.filteri (fun i _ -> List.mem (List.nth cols i) key) x.Atom.args
            in
            if key = [] then pick rest
            else
              match
                List.find_opt
                  (fun (b : Atom.t) ->
                    String.equal a.Atom.pred b.Atom.pred
                    && List.for_all2 Atom.equal_term (key_args a) (key_args b))
                  rest
              with
              | Some b -> (
                  (* unify non-key args pairwise *)
                  let rec unify m args1 args2 =
                    match (args1, args2) with
                    | [], [] -> Some m
                    | t1 :: r1, t2 :: r2 -> (
                        let t1 = subst_term m t1 and t2 = subst_term m t2 in
                        if Atom.equal_term t1 t2 then unify m r1 r2
                        else
                          match (t1, t2) with
                          | Atom.Var x, Atom.Var y ->
                              (* keep head variables as representatives *)
                              if List.mem x head_vars then
                                unify ((y, Atom.Var x) :: m) r1 r2
                              else unify ((x, Atom.Var y) :: m) r1 r2
                          | Atom.Var x, (Atom.Cst _ as c)
                          | (Atom.Cst _ as c), Atom.Var x ->
                              unify ((x, c) :: m) r1 r2
                          | Atom.Cst _, Atom.Cst _ -> None)
                    | _, _ -> None
                  in
                  match unify [] a.Atom.args b.Atom.args with
                  | Some m -> Some (a, b, m)
                  | None -> pick rest)
              | None -> pick rest)
      in
      pick atoms
    in
    match try_merge () with
    | None -> (atoms, head)
    | Some (_, b, m) ->
        let atoms =
          List.filter (fun x -> not (x == b)) atoms
          |> List.map (subst_atom m)
        in
        (* two *head* variables can be unified (two correspondences fed
           by the same column); the head must follow the substitution or
           it ends up unsafe *)
        fixpoint (atoms, List.map (subst_term m) head)
  in
  let body, head = fixpoint (q.Query.body, q.Query.head) in
  { q with Query.body = body; head }

(* ---- main ------------------------------------------------------------- *)

let rewrite ~cmg ~schema ~strees ?(max_covers = 800) ?(required_tables = []) q =
  let cm = Cm_graph.cm cmg in
  let isa_reps =
    List.map (fun (st : Stree.t) -> (st.Stree.st_table, isa_rep_fn st)) strees
  in
  (* Classes asserted on each query variable: an option may only assign
     a variable to an s-tree node whose class is *comparable* (equal, or
     related by ISA) to every asserted class. Binding a Gateway-typed
     variable to a sibling Bridge node would silently intersect two
     subclasses — not a mapping the method should propose. *)
  let var_classes =
    List.filter_map
      (fun (a : Atom.t) ->
        match (Encode.parse_pred a.Atom.pred, a.Atom.args) with
        | Some (Encode.PCls c), [ Atom.Var x ] -> Some (x, c)
        | _, _ -> None)
      q.Query.body
  in
  let comparable a b =
    String.equal a b
    || List.mem b (Cml.ancestors cm a)
    || List.mem a (Cml.ancestors cm b)
  in
  let option_well_typed (o : opt) =
    List.for_all
      (fun ((node : Stree.node_ref), x) ->
        let asserted =
          List.filter_map
            (fun (x', c) -> if String.equal x x' then Some c else None)
            var_classes
        in
        (* Either the node's class is itself asserted on the variable
           (a deliberate merge, as in ISA-merged CSGs), or it must be
           ISA-comparable with everything asserted. *)
        List.mem node.nr_class asserted
        || List.for_all (comparable node.nr_class) asserted)
      o.o_asg
  in
  (* Cover connection atoms first, then attributes, then classes: the
     more constrained atoms prune the search sooner. *)
  let weight (a : Atom.t) =
    match Encode.parse_pred a.Atom.pred with
    | Some (Encode.PRel _ | Encode.PRole _) -> 0
    | Some (Encode.PAttr _) -> 1
    | Some (Encode.PCls _) -> 2
    | None -> 3
  in
  let atoms = List.stable_sort (fun a b -> compare (weight a) (weight b)) q.Query.body in
  let results = ref [] in
  let count = ref 0 in
  let rec cover insts = function
    | [] ->
        if !count < max_covers then begin
          incr count;
          match finalize ~schema ~isa_reps ~head:q.Query.head (List.rev insts) with
          | Some rw -> results := rw :: !results
          | None -> ()
        end
    | a :: rest ->
        if !count >= max_covers then ()
        else begin
          let opts = List.filter option_well_typed (options_for cm strees a) in
          (* If some instance already covers this atom (a no-op
             extension), the atom adds nothing: continue once and skip
             the alternative branches. This prunes the exponential
             duplication caused by class atoms whose object is already
             pinned by a relationship atom. *)
          let noop =
            List.exists
              (fun o ->
                List.exists
                  (fun inst ->
                    match extend isa_reps inst o with
                    | Some inst' ->
                        List.length inst'.i_asg = List.length inst.i_asg
                        && List.length inst'.i_cols = List.length inst.i_cols
                    | None -> false)
                  insts)
              opts
          in
          if noop then cover insts rest
          else
            List.iter
              (fun o ->
                (* extend each compatible existing instance *)
                List.iteri
                  (fun i inst ->
                    match extend isa_reps inst o with
                    | Some inst' ->
                        let insts' =
                          List.mapi (fun j x -> if i = j then inst' else x) insts
                        in
                        cover insts' rest
                    | None -> ())
                  insts;
                (* or open a new instance *)
                cover (fresh_inst o :: insts) rest)
              opts
        end
  in
  cover [] atoms;
  (* The paper's elimination order: first drop rewritings that do not
     mention every correspondence-linked table (q'_1 of Example 3.4),
     then minimize and keep only maximal survivors (q'_2 vs q'_3). *)
  let mentions_required (q : Query.t) =
    List.for_all
      (fun t ->
        List.exists (fun (a : Atom.t) -> String.equal a.Atom.pred t) q.Query.body)
      required_tables
  in
  let results = List.filter mentions_required !results in
  let results = List.map (merge_by_keys ~schema) results in
  let minimized = List.map Query.minimize results in
  if Sys.getenv_opt "SMG_DEBUG_REWRITE" <> None then
    List.iter (fun q -> Fmt.epr "[rewrite.min] %a@." Query.pp q) minimized;
  (* fast syntactic dedupe first, then the semantic one *)
  let syntactic = Hashtbl.create 64 in
  let minimized =
    List.filter
      (fun (q : Query.t) ->
        let key =
          String.concat "|"
            (List.sort compare
               (List.map (fun a -> Fmt.str "%a" Atom.pp a) q.Query.body))
        in
        if Hashtbl.mem syntactic key then false
        else begin
          Hashtbl.replace syntactic key ();
          true
        end)
      minimized
  in
  let deduped =
    List.fold_left
      (fun acc q ->
        if List.exists (fun q' -> Query.equivalent q q') acc then acc
        else q :: acc)
      [] minimized
  in
  let maximal =
    List.filter
      (fun q ->
        not
          (List.exists
             (fun q' ->
               (not (q == q'))
               && Query.contained_in q q'
               && not (Query.contained_in q' q))
             deduped))
      deduped
  in
  List.map
    (fun (q : Query.t) ->
      let tables =
        List.sort_uniq compare (List.map (fun a -> a.Atom.pred) q.Query.body)
      in
      { rw_query = q; rw_tables = tables })
    maximal
