lib/semantics/rewrite.mli: Smg_cm Smg_cq Smg_relational Stree
