lib/semantics/encode.mli: Smg_cm Smg_cq Stree
