lib/semantics/encode.ml: Hashtbl List Printf Smg_cm Smg_cq Smg_graph Stree String
