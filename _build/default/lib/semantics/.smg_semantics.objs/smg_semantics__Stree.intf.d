lib/semantics/stree.mli: Format Smg_cm Smg_relational
