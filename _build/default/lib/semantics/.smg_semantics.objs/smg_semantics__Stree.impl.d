lib/semantics/stree.ml: Array Fmt Fun List Printf Smg_cm Smg_graph Smg_relational String
