lib/semantics/rewrite.ml: Encode Fmt Hashtbl List Option Printf Smg_cm Smg_cq Smg_relational Stree String Sys
