module Cml = Smg_cm.Cml
module Cm_graph = Smg_cm.Cm_graph
module Digraph = Smg_graph.Digraph
module Atom = Smg_cq.Atom
module Query = Smg_cq.Query

type pred_kind =
  | PCls of string
  | PRel of string
  | PRole of string * string
  | PAttr of string * string

let cls_pred c = "o:cls:" ^ c
let rel_pred r = "o:rel:" ^ r
let role_pred ~rr role = "o:role:" ^ rr ^ "." ^ role
let attr_pred ~owner a = "o:attr:" ^ owner ^ "." ^ a

let strip prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let split_dot s =
  match String.index_opt s '.' with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_pred s =
  match strip "o:cls:" s with
  | Some c -> Some (PCls c)
  | None -> (
      match strip "o:rel:" s with
      | Some r -> Some (PRel r)
      | None -> (
          match strip "o:role:" s with
          | Some rest -> (
              match split_dot rest with
              | Some (rr, role) -> Some (PRole (rr, role))
              | None -> None)
          | None -> (
              match strip "o:attr:" s with
              | Some rest -> (
                  match split_dot rest with
                  | Some (owner, a) -> Some (PAttr (owner, a))
                  | None -> None)
              | None -> None)))

(* --- view of an s-tree ------------------------------------------------ *)

let ref_var (n : Stree.node_ref) =
  if n.Stree.nr_copy = 0 then "x_" ^ n.Stree.nr_class
  else Printf.sprintf "x_%s~%d" n.Stree.nr_class n.Stree.nr_copy

(* Union-find over node_refs keyed by their variable name. *)
module Uf = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find (uf : t) x =
    match Hashtbl.find_opt uf x with
    | None -> x
    | Some p ->
        let r = find uf p in
        Hashtbl.replace uf x r;
        r

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf ra rb
end

let view_of_stree g st =
  let cm = Cm_graph.cm g in
  let uf = Uf.create () in
  List.iter
    (fun (e : Stree.sedge) ->
      match e.se_kind with
      | Stree.SIsa -> Uf.union uf (ref_var e.se_src) (ref_var e.se_dst)
      | Stree.SRel _ | Stree.SRole _ -> ())
    st.Stree.st_edges;
  let v n = Atom.Var (Uf.find uf (ref_var n)) in
  let class_atoms =
    List.map
      (fun (n : Stree.node_ref) -> Atom.atom (cls_pred n.nr_class) [ v n ])
      st.st_nodes
  in
  let edge_atoms =
    List.filter_map
      (fun (e : Stree.sedge) ->
        match e.se_kind with
        | Stree.SRel r -> Some (Atom.atom (rel_pred r) [ v e.se_src; v e.se_dst ])
        | Stree.SRole ro ->
            Some
              (Atom.atom
                 (role_pred ~rr:e.se_src.nr_class ro)
                 [ v e.se_src; v e.se_dst ])
        | Stree.SIsa -> None)
      st.st_edges
  in
  let attr_atoms =
    List.map
      (fun (c, n, a) ->
        let owner =
          match Stree.declaring_class cm n.Stree.nr_class a with
          | Some o -> o
          | None -> n.Stree.nr_class
        in
        Atom.atom (attr_pred ~owner a) [ v n; Atom.Var c ])
      st.col_map
  in
  let head = List.map (fun (c, _, _) -> Atom.Var c) st.col_map in
  Query.make ~name:("view_" ^ st.st_table) ~head
    (class_atoms @ edge_atoms @ attr_atoms)

(* --- CSG encoding ------------------------------------------------------ *)

type csg = {
  csg_nodes : int list;
  csg_edges : int list;
  csg_outputs : (int * string * string) list;
  csg_anchor : int option;
}

let normalize g csg =
  let graph = Cm_graph.graph g in
  let endpoints =
    List.concat_map
      (fun id ->
        let e = Digraph.edge graph id in
        [ e.Digraph.src; e.Digraph.dst ])
      csg.csg_edges
  in
  let nodes =
    List.sort_uniq compare
      (csg.csg_nodes @ endpoints
      @ List.map (fun (n, _, _) -> n) csg.csg_outputs)
  in
  { csg with csg_nodes = nodes; csg_edges = List.sort_uniq compare csg.csg_edges }

let var_of_node n = "x" ^ string_of_int n

let query_of_csg g csg =
  let csg = normalize g csg in
  let cm = Cm_graph.cm g in
  let graph = Cm_graph.graph g in
  let uf = Uf.create () in
  List.iter
    (fun id ->
      let e = Digraph.edge graph id in
      match e.Digraph.lbl.Cm_graph.kind with
      | Cm_graph.Isa | Cm_graph.IsaInv ->
          Uf.union uf (var_of_node e.src) (var_of_node e.dst)
      | Cm_graph.Rel _ | Cm_graph.RelInv _ | Cm_graph.Role _
      | Cm_graph.RoleInv _ | Cm_graph.HasAttr _ ->
          ())
    csg.csg_edges;
  let v n = Atom.Var (Uf.find uf (var_of_node n)) in
  let class_atoms =
    List.filter_map
      (fun n ->
        if Cm_graph.is_class_like g n then
          Some (Atom.atom (cls_pred (Cm_graph.node_name g n)) [ v n ])
        else None)
      csg.csg_nodes
  in
  let edge_atoms =
    List.filter_map
      (fun id ->
        let e = Digraph.edge graph id in
        match e.Digraph.lbl.Cm_graph.kind with
        | Cm_graph.Rel r -> Some (Atom.atom (rel_pred r) [ v e.src; v e.dst ])
        | Cm_graph.RelInv r ->
            Some (Atom.atom (rel_pred r) [ v e.dst; v e.src ])
        | Cm_graph.Role ro ->
            Some
              (Atom.atom
                 (role_pred ~rr:(Cm_graph.node_name g e.src) ro)
                 [ v e.src; v e.dst ])
        | Cm_graph.RoleInv ro ->
            Some
              (Atom.atom
                 (role_pred ~rr:(Cm_graph.node_name g e.dst) ro)
                 [ v e.dst; v e.src ])
        | Cm_graph.Isa | Cm_graph.IsaInv -> None
        | Cm_graph.HasAttr _ -> None)
      csg.csg_edges
  in
  let attr_atoms =
    List.map
      (fun (n, a, ans) ->
        let cls = Cm_graph.node_name g n in
        let owner =
          match Stree.declaring_class cm cls a with
          | Some o -> o
          | None -> cls
        in
        Atom.atom (attr_pred ~owner a) [ v n; Atom.Var ans ])
      csg.csg_outputs
  in
  (* Deduplicate atoms that ISA unification may have made identical. *)
  let body =
    List.fold_left
      (fun acc a -> if List.exists (Atom.equal a) acc then acc else acc @ [ a ])
      []
      (class_atoms @ edge_atoms @ attr_atoms)
  in
  let head = List.map (fun (_, _, ans) -> Atom.Var ans) csg.csg_outputs in
  Query.make ~name:"csg" ~head body
