(** Rewriting CM-level conjunctive queries into table-level queries
    (§3.4): the inverse-rule method with key-based merging of Skolem
    terms.

    Every table's s-tree acts as a LAV view. A rewriting covers each CM
    atom of the input query by (a fragment of) some view instance;
    object variables shared between view instances are joined through
    the columns that identify them ([Stree.id_map]) — the "merging of
    Skolem functions through key information". Covers where a shared
    object variable is not identifiable in some instance are unsound
    and rejected.

    The output keeps only maximal rewritings: candidates strictly
    contained in another candidate are dropped (the [q'₂ ⊆ q'₃]
    elimination of Example 3.4), and equivalent duplicates are merged. *)

type result = {
  rw_query : Smg_cq.Query.t;     (** over table predicates, minimized *)
  rw_tables : string list;       (** tables mentioned, deduplicated *)
}

val rewrite :
  cmg:Smg_cm.Cm_graph.t ->
  schema:Smg_relational.Schema.t ->
  strees:Stree.t list ->
  ?max_covers:int ->
  ?required_tables:string list ->
  Smg_cq.Query.t ->
  result list
(** Rewrite a query produced by {!Encode.query_of_csg} /
    {!Encode.view_of_stree} naming conventions. [max_covers] bounds the
    raw cover enumeration (default 800) before filtering.
    [required_tables] lists tables every kept rewriting must mention
    (the correspondence-linked tables of §3.4) — this filter applies
    *before* the maximal-containment pruning, as in the paper's
    elimination order. Atoms whose predicate does not parse as a CM
    predicate raise [Invalid_argument]. *)
