(** Encoding s-trees and conceptual subgraphs (CSGs) as conjunctive
    formulas over CM predicates ([3]'s recursive encoding, §2/§3.4).

    Predicate naming convention (parsed back by {!parse_pred}):
    - classes:        [o:cls:C]
    - relationships:  [o:rel:r]           (canonical src → dst argument order)
    - roles:          [o:role:RR.role]    (reified instance, filler)
    - attributes:     [o:attr:Owner.attr] (owner = declaring class) *)

type pred_kind =
  | PCls of string
  | PRel of string
  | PRole of string * string  (** (reified class, role name) *)
  | PAttr of string * string  (** (declaring class, attribute) *)

val cls_pred : string -> string
val rel_pred : string -> string
val role_pred : rr:string -> string -> string
val attr_pred : owner:string -> string -> string

val parse_pred : string -> pred_kind option
(** [None] for non-CM predicates (e.g. table names). *)

val view_of_stree : Smg_cm.Cm_graph.t -> Stree.t -> Smg_cq.Query.t
(** The LAV view [T(cols) → ∃ȳ Φ]: head = the table's columns (as
    variables named after them, in [col_map] order), body = the CM
    atoms of the s-tree. ISA edges unify the variables of their two
    endpoints (identity flows through ISA). *)

(** A conceptual subgraph over a CM graph: class-like nodes, connection
    edges, and requested attribute outputs. *)
type csg = {
  csg_nodes : int list;
  csg_edges : int list;  (** CM-graph edge identifiers *)
  csg_outputs : (int * string * string) list;
      (** (node, attribute, answer-variable name) *)
  csg_anchor : int option;
}

val normalize : Smg_cm.Cm_graph.t -> csg -> csg
(** Add edge endpoints to the node list; deduplicate and sort. *)

val query_of_csg : Smg_cm.Cm_graph.t -> csg -> Smg_cq.Query.t
(** Encode the CSG: one variable per node (merged across ISA edges),
    class atoms for every node, relationship/role atoms per edge, and
    attribute atoms for the outputs; the head lists the answer
    variables in [csg_outputs] order. *)

val var_of_node : int -> string
(** The variable name used for a CM-graph node. *)
