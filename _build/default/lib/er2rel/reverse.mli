(** Basic reverse engineering: recover a plausible CM (and the table
    semantics connecting schema to CM) from a relational schema and its
    constraints — the "reverse engineered ER model" used for several
    datasets in the paper's evaluation (DBLP2, Mondial2).

    Heuristics:
    - a table whose key is exactly the union of ≥ 2 foreign keys is a
      *relationship table* and becomes a reified relationship whose
      roles follow the RICs;
    - a RIC mapping a table's whole key onto another table's key is
      read as ISA;
    - any other table is an *entity table*: a class whose attributes
      are its non-foreign-key columns, keyed by its primary key; its
      remaining foreign keys become functional binary relationships. *)

val class_name_of : string -> string
(** Table name → class name ([String.capitalize_ascii]). *)

val recover :
  Smg_relational.Schema.t ->
  Smg_cm.Cml.t * Smg_semantics.Stree.t list
(** @raise Invalid_argument on schemas where a referenced table has no
    key (identifiers cannot be recovered). *)
