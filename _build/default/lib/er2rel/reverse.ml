module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Schema = Smg_relational.Schema
module Stree = Smg_semantics.Stree

let class_name_of = String.capitalize_ascii

type kind =
  | Entity of { isa_ric : Schema.ric option; fk_rics : Schema.ric list }
  | Relationship of Schema.ric list

let classify schema (t : Schema.table) =
  let rics = Schema.rics_from schema t.Schema.tbl_name in
  let key = List.sort compare t.Schema.key in
  let fk_cols = List.sort_uniq compare (List.concat_map (fun r -> r.Schema.from_cols) rics) in
  (* a relationship table's key is exactly the union of its foreign
     keys; extra non-key columns become attributes of the reified
     relationship *)
  let is_rel_table = List.length rics >= 2 && key <> [] && key = fk_cols in
  if is_rel_table then Relationship rics
  else begin
    let isa_ric =
      List.find_opt
        (fun r ->
          List.sort compare r.Schema.from_cols = key
          &&
          let target = Schema.find_table_exn schema r.Schema.to_table in
          List.sort compare r.Schema.to_cols
          = List.sort compare target.Schema.key)
        rics
    in
    let fk_rics =
      List.filter
        (fun r ->
          match isa_ric with
          | Some i -> not (String.equal i.Schema.ric_name r.Schema.ric_name)
          | None -> true)
        rics
    in
    Entity { isa_ric; fk_rics }
  end

let recover schema =
  let n = Stree.nref in
  let kinds =
    List.map (fun t -> (t, classify schema t)) schema.Schema.tables
  in
  let entity_class (t : Schema.table) = class_name_of t.Schema.tbl_name in
  (* entity classes *)
  let classes =
    List.filter_map
      (fun ((t : Schema.table), k) ->
        match k with
        | Relationship _ -> None
        | Entity { isa_ric; fk_rics } ->
            let fk_cols =
              List.concat_map (fun r -> r.Schema.from_cols) fk_rics
            in
            let own_attrs =
              List.filter
                (fun c -> not (List.mem c fk_cols))
                (Schema.column_names t)
            in
            (* under ISA the key columns belong to the ancestor *)
            let own_attrs =
              match isa_ric with
              | Some _ ->
                  List.filter (fun c -> not (List.mem c t.Schema.key)) own_attrs
              | None -> own_attrs
            in
            let id = match isa_ric with Some _ -> [] | None -> List.filter (fun c -> List.mem c own_attrs) t.Schema.key in
            Some (Cml.cls ~id (entity_class t) own_attrs))
      kinds
  in
  let isas =
    List.filter_map
      (fun ((t : Schema.table), k) ->
        match k with
        | Entity { isa_ric = Some r; _ } ->
            Some
              {
                Cml.sub = entity_class t;
                super = class_name_of r.Schema.to_table;
              }
        | Entity { isa_ric = None; _ } | Relationship _ -> None)
      kinds
  in
  let binaries =
    List.concat_map
      (fun ((t : Schema.table), k) ->
        match k with
        | Entity { fk_rics; _ } ->
            List.map
              (fun (r : Schema.ric) ->
                Cml.rel r.Schema.ric_name ~src:(entity_class t)
                  ~dst:(class_name_of r.Schema.to_table)
                  ~card:(Cardinality.at_most_one, Cardinality.many))
              fk_rics
        | Relationship _ -> [])
      kinds
  in
  let reified =
    List.filter_map
      (fun ((t : Schema.table), k) ->
        match k with
        | Relationship rics ->
            let fk_cols =
              List.concat_map (fun (r : Schema.ric) -> r.Schema.from_cols) rics
            in
            let attrs =
              List.filter
                (fun c -> not (List.mem c fk_cols))
                (Schema.column_names t)
            in
            Some
              (Cml.reified ~attrs
                 (class_name_of t.Schema.tbl_name)
                 (List.map
                    (fun (r : Schema.ric) ->
                      ( r.Schema.ric_name,
                        class_name_of r.Schema.to_table,
                        Cardinality.many ))
                    rics))
        | Entity _ -> None)
      kinds
  in
  let cm =
    Cml.make
      ~name:(schema.Schema.schema_name ^ "_cm")
      ~binaries ~reified ~isas classes
  in
  (* s-trees *)
  let strees =
    List.map
      (fun ((t : Schema.table), k) ->
        let table = t.Schema.tbl_name in
        match k with
        | Entity { isa_ric; fk_rics } ->
            let cls = entity_class t in
            (* one node per foreign key, with copies for repeated or
               self-referential targets; the ISA superclass (if any)
               claims copy 0 of its class *)
            let seen = Hashtbl.create 4 in
            (match isa_ric with
            | Some r -> Hashtbl.replace seen (class_name_of r.Schema.to_table) 1
            | None -> ());
            let fk_nodes =
              List.map
                (fun (r : Schema.ric) ->
                  let target = class_name_of r.Schema.to_table in
                  let base = if String.equal target cls then 1 else 0 in
                  let k = Option.value ~default:base (Hashtbl.find_opt seen target) in
                  Hashtbl.replace seen target (k + 1);
                  (r.Schema.ric_name, Stree.nref ~copy:k target))
                fk_rics
            in
            let node_of_ric (r : Schema.ric) =
              List.assoc r.Schema.ric_name fk_nodes
            in
            let fk_map =
              List.concat_map
                (fun (r : Schema.ric) ->
                  List.map2
                    (fun fc tc -> (fc, r, tc))
                    r.Schema.from_cols r.Schema.to_cols)
                fk_rics
            in
            let super_parts =
              match isa_ric with
              | Some r -> [ (class_name_of r.Schema.to_table, r) ]
              | None -> []
            in
            let nodes =
              (n cls
              :: List.map (fun (sup, _) -> n sup) super_parts)
              @ List.map (fun (r : Schema.ric) -> node_of_ric r) fk_rics
            in
            let edges =
              List.map
                (fun (sup, _) ->
                  { Stree.se_src = n cls; se_kind = Stree.SIsa; se_dst = n sup })
                super_parts
              @ List.map
                  (fun (r : Schema.ric) ->
                    {
                      Stree.se_src = n cls;
                      se_kind = Stree.SRel r.Schema.ric_name;
                      se_dst = node_of_ric r;
                    })
                  fk_rics
            in
            let cols =
              List.map
                (fun c ->
                  match
                    List.find_opt (fun (fc, _, _) -> String.equal fc c) fk_map
                  with
                  | Some (_, r, tc) -> (c, node_of_ric r, tc)
                  | None -> (c, n cls, c))
                (Schema.column_names t)
            in
            let ids =
              (if t.Schema.key <> [] then [ (n cls, t.Schema.key) ] else [])
              @ (match (isa_ric, t.Schema.key) with
                | Some r, _ :: _ ->
                    [ (n (class_name_of r.Schema.to_table), t.Schema.key) ]
                | _, _ -> [])
              @ List.map
                  (fun (r : Schema.ric) -> (node_of_ric r, r.Schema.from_cols))
                  fk_rics
            in
            Stree.make ~table ~anchor:(n cls) ~edges ~cols ~ids nodes
        | Relationship rics ->
            let rr = class_name_of table in
            let seen = Hashtbl.create 4 in
            let ric_nodes =
              List.map
                (fun (r : Schema.ric) ->
                  let target = class_name_of r.Schema.to_table in
                  let k = Option.value ~default:0 (Hashtbl.find_opt seen target) in
                  Hashtbl.replace seen target (k + 1);
                  (r.Schema.ric_name, Stree.nref ~copy:k target))
                rics
            in
            let node_of_ric (r : Schema.ric) =
              List.assoc r.Schema.ric_name ric_nodes
            in
            let nodes = n rr :: List.map snd ric_nodes in
            let edges =
              List.map
                (fun (r : Schema.ric) ->
                  {
                    Stree.se_src = n rr;
                    se_kind = Stree.SRole r.Schema.ric_name;
                    se_dst = node_of_ric r;
                  })
                rics
            in
            let cols =
              List.map
                (fun c ->
                  match
                    List.find_opt
                      (fun (r : Schema.ric) -> List.mem c r.Schema.from_cols)
                      rics
                  with
                  | Some r ->
                      let tc =
                        List.assoc c
                          (List.combine r.Schema.from_cols r.Schema.to_cols)
                      in
                      (c, node_of_ric r, tc)
                  | None -> (c, n rr, c))
                (Schema.column_names t)
            in
            let ids =
              (n rr, t.Schema.key)
              :: List.map
                   (fun (r : Schema.ric) -> (node_of_ric r, r.Schema.from_cols))
                   rics
            in
            Stree.make ~table ~anchor:(n rr) ~edges ~cols ~ids nodes)
      kinds
  in
  (cm, strees)
