(** er2rel forward engineering (Markowitz–Shoshani style, [12] in the
    paper): derive a relational schema from a CM together with the
    table semantics (s-trees) that the design guarantees.

    - Every class with a (possibly inherited) identifier becomes an
      *entity table* keyed by the identifier.
    - Functional binary relationships are merged into the source
      entity's table as foreign-key columns ([merge_functional]), or get
      their own table otherwise.
    - Non-functional binaries and reified relationships become
      *relationship tables* keyed by the participant identifiers, with
      RICs into the participants.
    - ISA hierarchies are encoded per [isa_encoding]: one table per
      class (subclass tables keyed like the root, with a RIC to the
      superclass table), or one table per concrete (leaf) class
      carrying all inherited attributes. *)

type isa_encoding = Table_per_class | Table_per_concrete

type config = {
  isa : isa_encoding;
  merge_functional : bool;
  table_name : string -> string;  (** class/relationship name → table name *)
}

val default_config : config

val design : ?config:config -> Smg_cm.Cml.t -> Smg_relational.Schema.t * Smg_semantics.Stree.t list
(** @raise Invalid_argument when some class reachable from a
    relationship has no resolvable identifier. *)

val key_of_class : Smg_cm.Cml.t -> string -> (string * string list) option
(** [(owner, id_attrs)]: the nearest class (itself or an ancestor)
    declaring a non-empty identifier. *)
