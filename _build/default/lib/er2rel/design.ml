module Cml = Smg_cm.Cml
module Cardinality = Smg_cm.Cardinality
module Schema = Smg_relational.Schema
module Stree = Smg_semantics.Stree

type isa_encoding = Table_per_class | Table_per_concrete

type config = {
  isa : isa_encoding;
  merge_functional : bool;
  table_name : string -> string;
}

let default_config =
  {
    isa = Table_per_class;
    merge_functional = true;
    table_name = String.lowercase_ascii;
  }

let key_of_class cm cls =
  let rec go seen frontier =
    match frontier with
    | [] -> None
    | c :: rest -> (
        if List.mem c seen then go seen rest
        else
          match Cml.find_class cm c with
          | Some d when d.Cml.identifier <> [] -> Some (c, d.Cml.identifier)
          | Some _ | None -> go (c :: seen) (rest @ Cml.superclasses cm c))
  in
  go [] [ cls ]

let key_of_class_exn cm cls =
  match key_of_class cm cls with
  | Some k -> k
  | None ->
      invalid_arg (Printf.sprintf "er2rel: class %s has no identifier" cls)

(* All attributes of a class including inherited ones, nearest first. *)
let all_attributes cm cls =
  let rec go seen acc frontier =
    match frontier with
    | [] -> acc
    | c :: rest ->
        if List.mem c seen then go seen acc rest
        else
          let own =
            match Cml.find_class cm c with
            | Some d -> List.map (fun a -> (c, a)) d.Cml.attributes
            | None -> []
          in
          go (c :: seen)
            (acc @ List.filter (fun x -> not (List.mem x acc)) own)
            (rest @ Cml.superclasses cm c)
  in
  go [] [] [ cls ]

let is_concrete cm cls = Cml.subclasses cm cls = []

let design ?(config = default_config) cm =
  let tn = config.table_name in
  let has_table cls =
    match config.isa with
    | Table_per_class -> true
    | Table_per_concrete -> is_concrete cm cls
  in
  let n = Stree.nref in
  (* --- entity tables --- *)
  let entity_parts =
    List.filter_map
      (fun (c : Cml.class_decl) ->
        if not (has_table c.class_name) then None
        else begin
          let cls = c.class_name in
          let _owner, key = key_of_class_exn cm cls in
          let attrs =
            match config.isa with
            | Table_per_class ->
                (* own attributes + inherited key columns *)
                let own = List.map (fun a -> (cls, a)) c.attributes in
                let key_cols =
                  List.filter_map
                    (fun k ->
                      if List.exists (fun (_, a) -> String.equal a k) own then
                        None
                      else Some (cls, k))
                    key
                in
                key_cols @ own
            | Table_per_concrete -> all_attributes cm cls
          in
          let cols =
            List.map (fun (_, a) -> (a, Schema.TString)) attrs
          in
          let table = Schema.table ~key (tn cls) cols in
          let st =
            Stree.make ~table:(tn cls) ~anchor:(n cls)
              ~cols:(List.map (fun (_, a) -> (a, n cls, a)) attrs)
              ~ids:[ (n cls, key) ]
              [ n cls ]
          in
          (* RIC to the direct superclass table under Table_per_class *)
          let rics =
            match (config.isa, Cml.superclasses cm cls) with
            | Table_per_class, sup :: _ when has_table sup ->
                [
                  Schema.ric
                    ~name:(Printf.sprintf "isa_%s_%s" (tn cls) (tn sup))
                    ~from_:(tn cls, key)
                    ~to_:(tn sup, key);
                ]
            | (Table_per_class | Table_per_concrete), _ -> []
          in
          Some (cls, table, st, rics)
        end)
      cm.Cml.classes
  in
  let entity_tables = Hashtbl.create 16 in
  List.iter
    (fun (cls, table, _, _) -> Hashtbl.replace entity_tables cls table)
    entity_parts;
  (* Column naming inside relationship tables: the filler's id attribute,
     prefixed by the role/side name on clashes. *)
  let rel_columns sides =
    (* sides: (side_name, filler_class) list; returns per side the
       (column, id_attr) list *)
    let raw =
      List.map
        (fun (side, filler) ->
          let _, key = key_of_class_exn cm filler in
          (side, filler, key))
        sides
    in
    let all_attrs = List.concat_map (fun (_, _, k) -> k) raw in
    let ambiguous a =
      List.length (List.filter (String.equal a) all_attrs) > 1
    in
    List.map
      (fun (side, filler, key) ->
        ( side,
          filler,
          List.map
            (fun a ->
              if ambiguous a then (side ^ "_" ^ a, a) else (a, a))
            key ))
      raw
  in
  let ric_to_entity ~name ~from_table ~cols filler =
    if Hashtbl.mem entity_tables (fst (key_of_class_exn cm filler)) then
      let owner, key = key_of_class_exn cm filler in
      if Hashtbl.mem entity_tables filler then
        [ Schema.ric ~name ~from_:(from_table, cols) ~to_:(tn filler, key) ]
      else if Hashtbl.mem entity_tables owner then
        [ Schema.ric ~name ~from_:(from_table, cols) ~to_:(tn owner, key) ]
      else []
    else []
  in
  (* --- binary relationships --- *)
  let merged_into = Hashtbl.create 16 in
  (* class -> (extra columns, extra s-tree parts, rics) accumulated *)
  let has_concrete_descendant cls =
    let rec go c =
      has_table c || List.exists go (Cml.subclasses cm c)
    in
    go cls
  in
  let merged_rels, standalone_rels =
    List.partition
      (fun (r : Cml.binary_rel) ->
        config.merge_functional
        && Cardinality.is_functional r.card_dst
        && has_concrete_descendant r.rel_src)
      cm.Cml.binaries
  in
  List.iter
    (fun (r : Cml.binary_rel) ->
      let _, dkey = key_of_class_exn cm r.rel_dst in
      let cols = List.map (fun a -> (r.rel_name ^ "_" ^ a, a)) dkey in
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt merged_into r.rel_src)
      in
      Hashtbl.replace merged_into r.rel_src (cur @ [ (r, cols) ]))
    merged_rels;
  let rel_parts =
    List.map
      (fun (r : Cml.binary_rel) ->
        let name = tn r.rel_name in
        let sides =
          rel_columns [ ("src", r.rel_src); ("dst", r.rel_dst) ]
        in
        let side side =
          match
            List.find_opt (fun (s, _, _) -> String.equal s side) sides
          with
          | Some (_, filler, cols) -> (filler, cols)
          | None -> assert false
        in
        let s_filler, s_cols = side "src" and d_filler, d_cols = side "dst" in
        (* a self-referencing relationship needs a node copy for the
           destination end *)
        let src_ref = n r.rel_src in
        let dst_ref =
          if String.equal r.rel_src r.rel_dst then Stree.nref ~copy:1 r.rel_dst
          else n r.rel_dst
        in
        let all_cols = s_cols @ d_cols in
        let key =
          if Cardinality.is_functional r.card_dst then List.map fst s_cols
          else if Cardinality.is_functional r.card_src then
            List.map fst d_cols
          else List.map fst all_cols
        in
        let table =
          Schema.table ~key name
            (List.map (fun (c, _) -> (c, Schema.TString)) all_cols)
        in
        let st =
          Stree.make ~table:name ~anchor:src_ref
            ~edges:
              [
                {
                  Stree.se_src = src_ref;
                  se_kind = Stree.SRel r.rel_name;
                  se_dst = dst_ref;
                };
              ]
            ~cols:
              (List.map (fun (c, a) -> (c, src_ref, a)) s_cols
              @ List.map (fun (c, a) -> (c, dst_ref, a)) d_cols)
            ~ids:
              [
                (src_ref, List.map fst s_cols);
                (dst_ref, List.map fst d_cols);
              ]
            [ src_ref; dst_ref ]
        in
        let rics =
          ric_to_entity
            ~name:(Printf.sprintf "fk_%s_src" name)
            ~from_table:name ~cols:(List.map fst s_cols) s_filler
          @ ric_to_entity
              ~name:(Printf.sprintf "fk_%s_dst" name)
              ~from_table:name ~cols:(List.map fst d_cols) d_filler
        in
        (table, st, rics))
      standalone_rels
  in
  (* --- reified relationships --- *)
  let reified_parts =
    List.map
      (fun (r : Cml.reified_rel) ->
        let name = tn r.rr_name in
        let sides =
          rel_columns
            (List.map (fun ro -> (ro.Cml.role_name, ro.Cml.filler)) r.roles)
        in
        (* assign node copies when a filler class appears in several roles *)
        let seen_fillers = Hashtbl.create 4 in
        let role_cols =
          List.map
            (fun (role, filler, cols) ->
              let k =
                Option.value ~default:0 (Hashtbl.find_opt seen_fillers filler)
              in
              Hashtbl.replace seen_fillers filler (k + 1);
              (role, filler, Stree.nref ~copy:k filler, cols))
            sides
        in
        let id_cols = List.concat_map (fun (_, _, _, cols) -> cols) role_cols in
        (* a functional role (inverse card at most 1) keys the table *)
        let key =
          match
            List.find_opt
              (fun (ro : Cml.role) -> Cardinality.is_functional ro.card_inv)
              r.roles
          with
          | Some ro -> (
              match
                List.find_opt
                  (fun (role, _, _, _) -> String.equal role ro.role_name)
                  role_cols
              with
              | Some (_, _, _, cols) -> List.map fst cols
              | None -> List.map fst id_cols)
          | None -> List.map fst id_cols
        in
        let attr_cols = List.map (fun a -> (a, a)) r.rr_attributes in
        let table =
          Schema.table ~key name
            (List.map
               (fun (c, _) -> (c, Schema.TString))
               (id_cols @ attr_cols))
        in
        let st =
          Stree.make ~table:name ~anchor:(n r.rr_name)
            ~edges:
              (List.map
                 (fun (role, _, node, _) ->
                   {
                     Stree.se_src = n r.rr_name;
                     se_kind = Stree.SRole role;
                     se_dst = node;
                   })
                 role_cols)
            ~cols:
              (List.concat_map
                 (fun (_, _, node, cols) ->
                   List.map (fun (c, a) -> (c, node, a)) cols)
                 role_cols
              @ List.map (fun (c, a) -> (c, n r.rr_name, a)) attr_cols)
            ~ids:
              (List.map
                 (fun (_, _, node, cols) -> (node, List.map fst cols))
                 role_cols
              @ [ (n r.rr_name, List.map fst id_cols) ])
            (n r.rr_name :: List.map (fun (_, _, node, _) -> node) role_cols)
        in
        let rics =
          List.concat_map
            (fun (role, filler, _, cols) ->
              ric_to_entity
                ~name:(Printf.sprintf "fk_%s_%s" name role)
                ~from_table:name ~cols:(List.map fst cols) filler)
            role_cols
        in
        (table, st, rics))
      cm.Cml.reified
  in
  (* --- assemble, applying functional-relationship merging --- *)
  (* Under Table_per_concrete a concrete class also inherits the merged
     functional relationships of its ancestors; the s-tree then records
     the ISA chain up to the relationship's declaring class. *)
  let merges_for cls =
    let own =
      List.map
        (fun m -> (cls, m))
        (Option.value ~default:[] (Hashtbl.find_opt merged_into cls))
    in
    match config.isa with
    | Table_per_class -> own
    | Table_per_concrete ->
        own
        @ List.concat_map
            (fun anc ->
              List.map
                (fun m -> (anc, m))
                (Option.value ~default:[] (Hashtbl.find_opt merged_into anc)))
            (Cml.ancestors cm cls)
  in
  let entity_assembled =
    List.map
      (fun (cls, (table : Schema.table), st, rics) ->
        match merges_for cls with
        | [] -> (table, st, rics)
        | merges ->
            let extra_cols =
              List.concat_map
                (fun (_, ((_ : Cml.binary_rel), cols)) ->
                  List.map (fun (c, _) -> Schema.col c Schema.TString) cols)
                merges
            in
            let table = { table with Schema.columns = table.Schema.columns @ extra_cols } in
            (* ISA chain from cls up to an ancestor (inclusive) *)
            let chain_to anc =
              let rec path cur =
                if String.equal cur anc then Some [ cur ]
                else
                  List.find_map
                    (fun sup ->
                      Option.map (fun rest -> cur :: rest) (path sup))
                    (Cml.superclasses cm cur)
              in
              Option.value ~default:[ cls; anc ] (path cls)
            in
            (* Claim the ISA-chain nodes of every inherited merge first:
               they denote the *same* object as cls (copy 0 of each
               ancestor class); relationship destinations then allocate
               the next free copy, so an ancestor class appearing both
               as chain node and as relationship target gets two
               distinct nodes. *)
            let chains =
              List.filter_map
                (fun (owner, _) ->
                  if String.equal owner cls then None else Some (chain_to owner))
                merges
            in
            let chain_nodes =
              List.concat_map (fun chain -> List.map n chain) chains
              |> List.filter (fun x -> not (Stree.equal_ref x (n cls)))
              |> List.fold_left
                   (fun acc x ->
                     if List.exists (Stree.equal_ref x) acc then acc
                     else acc @ [ x ])
                   []
            in
            let chain_edges =
              let rec isa_edges = function
                | a :: (b :: _ as rest) ->
                    { Stree.se_src = n a; se_kind = Stree.SIsa; se_dst = n b }
                    :: isa_edges rest
                | [ _ ] | [] -> []
              in
              List.concat_map isa_edges chains
              |> List.fold_left
                   (fun acc e -> if List.mem e acc then acc else acc @ [ e ])
                   []
            in
            let nodes, edges, colmap, ids =
              List.fold_left
                (fun (nodes, edges, colmap, ids)
                     (owner, ((r : Cml.binary_rel), cols)) ->
                  (* each merged relationship targets its own object:
                     allocate the next free copy index for the class *)
                  let dst =
                    let rec free k =
                      let cand = Stree.nref ~copy:k r.rel_dst in
                      if List.exists (fun x -> Stree.equal_ref x cand) nodes
                      then free (k + 1)
                      else cand
                    in
                    free 0
                  in
                  ( nodes @ [ dst ],
                    edges
                    @ [
                        {
                          Stree.se_src = n owner;
                          se_kind = Stree.SRel r.rel_name;
                          se_dst = dst;
                        };
                      ],
                    colmap @ List.map (fun (c, a) -> (c, dst, a)) cols,
                    ids @ [ (dst, List.map fst cols) ] ))
                ( st.Stree.st_nodes @ chain_nodes,
                  st.Stree.st_edges @ chain_edges,
                  st.Stree.col_map,
                  st.Stree.id_map )
                merges
            in
            let st =
              {
                st with
                Stree.st_nodes = nodes;
                st_edges = edges;
                col_map = colmap;
                id_map = ids;
              }
            in
            let extra_rics =
              List.concat_map
                (fun (_, ((r : Cml.binary_rel), cols)) ->
                  ric_to_entity
                    ~name:(Printf.sprintf "fk_%s_%s" (tn cls) r.rel_name)
                    ~from_table:(tn cls) ~cols:(List.map fst cols) r.rel_dst)
                merges
            in
            (table, st, rics @ extra_rics))
      entity_parts
  in
  let parts = entity_assembled @ rel_parts @ reified_parts in
  let tables = List.map (fun (t, _, _) -> t) parts in
  let rics = List.concat_map (fun (_, _, r) -> r) parts in
  let schema = Schema.make ~name:(cm.Cml.cm_name ^ "_db") tables rics in
  let strees = List.map (fun (_, st, _) -> st) parts in
  (schema, strees)
