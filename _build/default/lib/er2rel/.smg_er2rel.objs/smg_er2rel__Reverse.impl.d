lib/er2rel/reverse.ml: Hashtbl List Option Smg_cm Smg_relational Smg_semantics String
