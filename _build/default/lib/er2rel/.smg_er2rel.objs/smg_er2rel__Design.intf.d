lib/er2rel/design.mli: Smg_cm Smg_relational Smg_semantics
