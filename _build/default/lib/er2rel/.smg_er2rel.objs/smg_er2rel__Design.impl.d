lib/er2rel/design.ml: Hashtbl List Option Printf Smg_cm Smg_relational Smg_semantics String
