lib/er2rel/reverse.mli: Smg_cm Smg_relational Smg_semantics
