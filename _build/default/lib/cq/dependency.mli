(** Tuple- and equality-generating dependencies.

    A tgd [∀x̄ (lhs → ∃ȳ rhs)] shares its universal variables between
    sides; variables appearing only on the right are existential. A
    source-to-target tgd is one whose lhs predicates come from a source
    schema and rhs predicates from a target schema — the paper's GLAV
    mapping expressions. *)

type tgd = {
  tgd_name : string;
  lhs : Atom.t list;
  rhs : Atom.t list;
}

type egd = {
  egd_name : string;
  elhs : Atom.t list;
  eq : string * string;  (** the two variables equated *)
}

val tgd : ?name:string -> lhs:Atom.t list -> Atom.t list -> tgd
(** [tgd ~lhs rhs].
    @raise Invalid_argument when either side is empty. *)

val egd : ?name:string -> lhs:Atom.t list -> string * string -> egd

val universal_vars : tgd -> string list
(** Variables shared between lhs and rhs. *)

val existential_vars : tgd -> string list
(** rhs-only variables. *)

val key_egds : Smg_relational.Schema.t -> egd list
(** One egd per non-key column of every keyed table, expressing its
    primary key as equality-generating dependencies. *)

val ric_tgds : Smg_relational.Schema.t -> tgd list
(** One tgd per RIC of the schema: the referencing tuple implies the
    existence of a referenced tuple (fresh existential variables for
    the unconstrained columns). *)

val equal_tgd : tgd -> tgd -> bool
(** Structural equality up to variable renaming (both directions of
    homomorphic coverage on each side, heads fixed by the shared
    variables). Used for deduplication of generated mappings. *)

val pp_tgd : Format.formatter -> tgd -> unit
val pp_egd : Format.formatter -> egd -> unit
