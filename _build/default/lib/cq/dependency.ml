module Schema = Smg_relational.Schema

type tgd = { tgd_name : string; lhs : Atom.t list; rhs : Atom.t list }
type egd = { egd_name : string; elhs : Atom.t list; eq : string * string }

let tgd ?(name = "tgd") ~lhs rhs =
  if lhs = [] || rhs = [] then invalid_arg "tgd: empty side";
  { tgd_name = name; lhs; rhs }

let egd ?(name = "egd") ~lhs eq = { egd_name = name; elhs = lhs; eq }

let universal_vars t =
  let rvars = Atom.vars_of_list t.rhs in
  List.filter (fun x -> List.mem x rvars) (Atom.vars_of_list t.lhs)

let existential_vars t =
  let lvars = Atom.vars_of_list t.lhs in
  List.filter (fun x -> not (List.mem x lvars)) (Atom.vars_of_list t.rhs)

let table_atom (t : Schema.table) ~var_of =
  Atom.atom t.tbl_name
    (List.map (fun c -> Atom.Var (var_of c.Schema.col_name)) t.columns)

let key_egds schema =
  List.concat_map
    (fun (t : Schema.table) ->
      if t.Schema.key = [] then []
      else
        let cols = Schema.column_names t in
        let non_key = List.filter (fun c -> not (List.mem c t.key)) cols in
        List.map
          (fun nk ->
            let a1 =
              table_atom t ~var_of:(fun c ->
                  if List.mem c t.key then "k_" ^ c else "a_" ^ c)
            in
            let a2 =
              table_atom t ~var_of:(fun c ->
                  if List.mem c t.key then "k_" ^ c else "b_" ^ c)
            in
            egd
              ~name:(Printf.sprintf "key:%s/%s" t.tbl_name nk)
              ~lhs:[ a1; a2 ]
              ("a_" ^ nk, "b_" ^ nk))
          non_key)
    schema.Schema.tables

let ric_tgds schema =
  List.map
    (fun (r : Schema.ric) ->
      let from_t = Schema.find_table_exn schema r.from_table in
      let to_t = Schema.find_table_exn schema r.to_table in
      let lhs_atom = table_atom from_t ~var_of:(fun c -> "f_" ^ c) in
      (* Align referenced columns with the referencing variables. *)
      let pairings = List.combine r.to_cols r.from_cols in
      let rhs_atom =
        table_atom to_t ~var_of:(fun c ->
            match List.assoc_opt c pairings with
            | Some fc -> "f_" ^ fc
            | None -> "e_" ^ c)
      in
      tgd ~name:("ric:" ^ r.ric_name) ~lhs:[ lhs_atom ] [ rhs_atom ])
    schema.Schema.rics

let equal_tgd a b =
  (* Compare via the canonical query reading: a tgd maps to the pair of
     CQs (lhs with universal vars as head, rhs with the same head). *)
  let canon (t : tgd) =
    let u = universal_vars t in
    let head = List.map (fun x -> Atom.Var x) u in
    ( Query.make ~name:"l" ~head t.lhs,
      Query.make ~name:"r" ~head t.rhs )
  in
  let la, ra = canon a and lb, rb = canon b in
  List.length la.Query.head = List.length lb.Query.head
  && Query.equivalent la lb && Query.equivalent ra rb

let pp_tgd ppf t =
  let ex = existential_vars t in
  let pp_ex ppf = function
    | [] -> ()
    | xs -> Fmt.pf ppf "∃%a. " (Fmt.list ~sep:Fmt.comma Fmt.string) xs
  in
  Fmt.pf ppf "@[<hov2>%s:@ %a@ →@ %a%a@]" t.tgd_name
    (Fmt.list ~sep:(Fmt.any " ∧ ") Atom.pp)
    t.lhs pp_ex ex
    (Fmt.list ~sep:(Fmt.any " ∧ ") Atom.pp)
    t.rhs

let pp_egd ppf e =
  let x, y = e.eq in
  Fmt.pf ppf "@[<hov2>%s:@ %a@ →@ %s = %s@]" e.egd_name
    (Fmt.list ~sep:(Fmt.any " ∧ ") Atom.pp)
    e.elhs x y
