(** Atoms and substitutions for conjunctive queries and dependencies. *)

type term = Var of string | Cst of Smg_relational.Value.t

type t = { pred : string; args : term list }

module Subst : sig
  type nonrec t
  (** Finite map from variable names to terms. *)

  val empty : t
  val find : t -> string -> term option
  val bind : t -> string -> term -> t
  val bindings : t -> (string * term) list
  val of_list : (string * term) list -> t
end

val v : string -> term
val c : Smg_relational.Value.t -> term
val str : string -> term
(** Shorthand for a string constant. *)

val atom : string -> term list -> t

val apply_term : Subst.t -> term -> term
(** Substitute; unbound variables stay themselves. *)

val apply : Subst.t -> t -> t
val term_vars : term -> string list
val vars : t -> string list
val vars_of_list : t list -> string list  (** deduplicated, first-seen order *)

val equal_term : term -> term -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> t -> unit
